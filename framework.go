package vadasa

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"vadasa/internal/anon"
	"vadasa/internal/categorize"
	"vadasa/internal/cluster"
	"vadasa/internal/datalog"
	"vadasa/internal/govern"
	"vadasa/internal/hierarchy"
	"vadasa/internal/mdb"
	"vadasa/internal/programs"
	"vadasa/internal/risk"
)

// Framework is the Vada-SA session object: it owns the metadata dictionary,
// the experience base and similarity functions for attribute categorization,
// the domain-hierarchy knowledge base, the company-ownership graph, and the
// plug-in registry of risk measures. All of it together is the enterprise
// Knowledge Base of Section 4; datasets registered with the framework go
// through categorization exactly as new microdata DBs do at the Research
// Data Center.
type Framework struct {
	dict       *mdb.Dictionary
	experience []categorize.Entry
	sims       []categorize.Similarity
	hier       *hierarchy.Hierarchy
	ownership  *cluster.Graph
	measures   map[string]func() RiskMeasure
	// maxWork caps the reasoning engine's fact-match budget for calls made
	// on behalf of this framework (ExplainRisk and friends); zero selects
	// the engine default. See SetReasonerBudget.
	maxWork int64
}

// New returns a framework preloaded with the default experience base, the
// standard similarity functions, the Italian-geography hierarchy, and the
// off-the-shelf risk measures of Section 4.2 registered under their names.
func New() *Framework {
	f := &Framework{
		dict:       mdb.NewDictionary(),
		experience: categorize.DefaultExperience(),
		sims: []categorize.Similarity{
			categorize.Exact{},
			categorize.Normalized{},
			categorize.TokenOverlap{Min: 0.5},
		},
		hier:      hierarchy.ItalianGeography(),
		ownership: cluster.NewGraph(),
		measures:  make(map[string]func() RiskMeasure),
	}
	f.RegisterMeasure("re-identification", func() RiskMeasure { return ReIdentification{} })
	f.RegisterMeasure("k-anonymity", func() RiskMeasure { return KAnonymity{K: 2} })
	f.RegisterMeasure("individual-risk", func() RiskMeasure {
		return IndividualRisk{Estimator: PosteriorEstimator}
	})
	f.RegisterMeasure("suda", func() RiskMeasure { return SUDA{Threshold: 3} })
	return f
}

// Dictionary exposes the metadata dictionary.
func (f *Framework) Dictionary() *Dictionary { return f.dict }

// Hierarchy exposes the domain-hierarchy knowledge base (extend it with
// business knowledge before anonymizing with global recoding).
func (f *Framework) Hierarchy() *Hierarchy { return f.hier }

// Ownership exposes the company-ownership graph used by cluster risk.
func (f *Framework) Ownership() *OwnershipGraph { return f.ownership }

// AddExperience extends the categorization experience base — the expert
// knowledge of Algorithm 1.
func (f *Framework) AddExperience(entries ...ExperienceEntry) {
	f.experience = append(f.experience, entries...)
}

// SetSimilarities replaces the pluggable similarity functions.
func (f *Framework) SetSimilarities(sims ...Similarity) {
	f.sims = append([]categorize.Similarity(nil), sims...)
}

// RegisterMeasure installs a named risk-measure factory — the plug-in
// mechanism of Section 4.2 that lets business users select implementations
// at runtime.
func (f *Framework) RegisterMeasure(name string, factory func() RiskMeasure) {
	f.measures[name] = factory
}

// Measure instantiates a registered risk measure by name.
func (f *Framework) Measure(name string) (RiskMeasure, error) {
	factory, ok := f.measures[name]
	if !ok {
		return nil, fmt.Errorf("vadasa: unknown risk measure %q (have %v)", name, f.MeasureNames())
	}
	return factory(), nil
}

// MeasureNames lists the registered risk measures, sorted.
func (f *Framework) MeasureNames() []string {
	out := make([]string, 0, len(f.measures))
	for n := range f.measures {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Register adds a microdata DB to the metadata dictionary, runs attribute
// categorization (Algorithm 1) over its attribute names, and applies the
// inferred categories to both the dictionary and the dataset. Attributes
// already categorized on the dataset act as additional experience; conflicts
// and unknowns are returned for human inspection and leave the dataset's
// declared categories untouched.
func (f *Framework) Register(d *Dataset) (*CategorizationResult, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := f.dict.RegisterDataset(d); err != nil {
		return nil, err
	}
	names := make([]string, len(d.Attrs))
	for i, a := range d.Attrs {
		names[i] = a.Name
	}
	c := &categorize.Categorizer{
		Experience:  f.experience,
		Sims:        f.sims,
		Consolidate: true,
	}
	res := c.Categorize(names)
	for attr, cat := range res.Categories {
		if err := f.dict.SetCategory(d.Name, attr, cat); err != nil {
			return nil, err
		}
	}
	if err := f.dict.Apply(d); err != nil {
		return nil, err
	}
	return res, nil
}

// SetReasonerBudget caps the reasoning engine's work budget (fact-match
// attempts) for subsequent reasoning-backed calls such as ExplainRisk — the
// per-request knob an operational deployment exposes so one expensive
// explanation cannot monopolize the service. Zero (the default) restores
// the engine's built-in budget.
func (f *Framework) SetReasonerBudget(maxWork int64) { f.maxWork = maxWork }

// ReasonerBudget returns the currently configured engine work budget
// (0 = engine default).
func (f *Framework) ReasonerBudget() int64 { return f.maxWork }

// reasonerOptions assembles the engine options for one evaluation made
// on behalf of this framework: the configured work budget, plus — when
// ctx carries a resource governor — a per-evaluation child scope whose
// byte charges roll up to the request or job above it. The returned
// cleanup must run when the evaluation ends; it releases the whole
// evaluation footprint.
func (f *Framework) reasonerOptions(ctx context.Context) (*datalog.Options, func()) {
	var opt datalog.Options
	if f.maxWork > 0 {
		opt.MaxWork = f.maxWork
	}
	cleanup := func() {}
	if g := govern.From(ctx); g != nil {
		eg := g.Child("evaluation", govern.Limits{})
		opt.Governor = eg
		cleanup = eg.Close
	}
	if opt.MaxWork == 0 && opt.Governor == nil {
		return nil, cleanup
	}
	return &opt, cleanup
}

// AssessRisk estimates per-tuple disclosure risk under maybe-match
// semantics. Cluster propagation is applied automatically when the
// ownership graph is non-empty (the enhanced cycle of Algorithm 9).
func (f *Framework) AssessRisk(d *Dataset, measure RiskMeasure) ([]float64, error) {
	return f.AssessRiskContext(context.Background(), d, measure)
}

// AssessRiskContext is AssessRisk honouring ctx: the built-in measures poll
// the context on their outer row/combination loops, so a deadline or a
// client disconnect stops the evaluation promptly. The returned error wraps
// ctx.Err() when cancellation was the cause.
func (f *Framework) AssessRiskContext(ctx context.Context, d *Dataset, measure RiskMeasure) ([]float64, error) {
	return risk.AssessContext(ctx, f.assessor(measure), d, MaybeMatch)
}

func (f *Framework) assessor(measure RiskMeasure) RiskMeasure {
	if f.ownership.EdgeCount() > 0 {
		return ClusterRisk{Base: measure, Graph: f.ownership}
	}
	return measure
}

// ExplainRisk explains why a tuple carries its disclosure risk. For the
// frequency-based measures (re-identification, k-anonymity, individual risk)
// the explanation is the derivation tree of the corresponding declarative
// program evaluated by the reasoning engine — the standard-entailment
// explainability the paper guarantees; for SUDA it lists the tuple's minimal
// sample uniques. The whole dataset is re-reasoned over, so this is an
// interactive-inspection tool, not a bulk API.
//
// Attribute-restricted measures (Attrs set) are not supported: the
// explanation always covers all quasi-identifiers.
func (f *Framework) ExplainRisk(d *Dataset, measure RiskMeasure, rowID int) (string, error) {
	return f.ExplainRiskContext(context.Background(), d, measure, rowID)
}

// ExplainRiskContext is ExplainRisk honouring ctx: the reasoning engine
// polls the context at fixpoint-round boundaries and inside its join loops,
// and the SUDA combination search polls it per combination, so an
// interactive explanation can be abandoned without burning CPU.
func (f *Framework) ExplainRiskContext(ctx context.Context, d *Dataset, measure RiskMeasure, rowID int) (string, error) {
	qi := d.QuasiIdentifiers()
	if len(qi) == 0 {
		return "", fmt.Errorf("vadasa: dataset %q has no quasi-identifiers", d.Name)
	}
	found := false
	for _, r := range d.Rows {
		if r.ID == rowID {
			found = true
			break
		}
	}
	if !found {
		return "", fmt.Errorf("vadasa: dataset %q has no tuple with id %d", d.Name, rowID)
	}

	var prog *Program
	switch m := measure.(type) {
	case ReIdentification:
		if len(m.Attrs) > 0 {
			return "", fmt.Errorf("vadasa: ExplainRisk does not support attribute-restricted measures")
		}
		prog = programs.ReIdentification(len(qi))
	case KAnonymity:
		if len(m.Attrs) > 0 {
			return "", fmt.Errorf("vadasa: ExplainRisk does not support attribute-restricted measures")
		}
		prog = programs.KAnonymity(len(qi), m.K)
	case IndividualRisk:
		if len(m.Attrs) > 0 {
			return "", fmt.Errorf("vadasa: ExplainRisk does not support attribute-restricted measures")
		}
		prog = programs.IndividualRisk(len(qi))
	case SUDA:
		return f.explainSUDA(ctx, d, m, rowID)
	default:
		return "", fmt.Errorf("vadasa: no explanation support for measure %q", measure.Name())
	}

	edb := datalog.NewDatabase()
	programs.TupleFacts(edb, d)
	opt, done := f.reasonerOptions(ctx)
	defer done()
	res, err := datalog.RunContext(ctx, prog, edb, opt)
	if err != nil {
		return "", fmt.Errorf("vadasa: explaining risk: %w", err)
	}
	for _, fact := range res.Facts("riskout") {
		if int(fact[0].NumVal()) != rowID {
			continue
		}
		return res.Explain("riskout", fact...)
	}
	return "", fmt.Errorf("vadasa: no risk derived for tuple %d", rowID)
}

func (f *Framework) explainSUDA(ctx context.Context, d *Dataset, m SUDA, rowID int) (string, error) {
	if len(m.Attrs) > 0 {
		return "", fmt.Errorf("vadasa: ExplainRisk does not support attribute-restricted measures")
	}
	qi := d.QuasiIdentifiers()
	maxK := m.MaxK
	if maxK == 0 {
		maxK = m.Threshold
	}
	msus, err := risk.MSUsContext(ctx, d, qi, maxK, mdb.MaybeMatch)
	if err != nil {
		return "", fmt.Errorf("vadasa: explaining risk: %w", err)
	}
	rowIdx := -1
	for i, r := range d.Rows {
		if r.ID == rowID {
			rowIdx = i
			break
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SUDA on tuple %d (MSU size threshold %d, combinations up to size %d):\n",
		rowID, m.Threshold, maxK)
	ms := msus[rowIdx]
	if len(ms) == 0 {
		b.WriteString("  no minimal sample uniques: the tuple is not dangerous\n")
		return b.String(), nil
	}
	dangerous := false
	for _, mask := range ms {
		var names []string
		for i := range qi {
			if mask&(1<<uint(i)) != 0 {
				names = append(names, d.Attrs[qi[i]].Name)
			}
		}
		size := bits.OnesCount32(mask)
		verdict := "safe (size >= threshold)"
		if size < m.Threshold {
			verdict = "dangerous (size < threshold)"
			dangerous = true
		}
		fmt.Fprintf(&b, "  minimal sample unique {%s}: size %d — %s\n",
			strings.Join(names, ", "), size, verdict)
	}
	if dangerous {
		fmt.Fprintf(&b, "  => risk 1: too few attributes disclose this tuple\n")
	} else {
		fmt.Fprintf(&b, "  => risk 0: every minimal sample unique needs %d+ attributes\n", m.Threshold)
	}
	return b.String(), nil
}

// CycleOptions parameterizes Anonymize. Zero values select the paper's
// defaults: local suppression with the most-selective-first attribute
// choice, the less-significant-first tuple order, maybe-match semantics.
type CycleOptions struct {
	// Measure estimates tuple risk (required).
	Measure RiskMeasure
	// Threshold is T of Algorithm 2.
	Threshold float64
	// Method overrides the anonymization method.
	Method Anonymizer
	// Semantics overrides the labelled-null semantics (default MaybeMatch).
	Semantics Semantics
	// Order overrides the risky-tuple processing order.
	Order TupleOrder
	// UseRecoding prepends hierarchy-based global recoding to the default
	// suppression method.
	UseRecoding bool
	// Checkpoint, when set, receives every committed cycle iteration before
	// the next one may start — the hook a durable job manager journals
	// through. An error from it aborts the cycle.
	Checkpoint CheckpointFunc
}

// Anonymize runs the anonymization cycle of Algorithm 2 on a copy of d and
// returns the anonymized dataset together with the full decision log.
func (f *Framework) Anonymize(d *Dataset, opts CycleOptions) (*CycleResult, error) {
	return f.AnonymizeContext(context.Background(), d, opts)
}

// AnonymizeContext is Anonymize honouring ctx: the cycle checks the context
// at every iteration boundary and between per-tuple anonymization steps, so
// a request deadline or client disconnect stops the work within one
// risk-evaluate/anonymize round. The partial result is discarded — the
// input dataset is never modified either way.
func (f *Framework) AnonymizeContext(ctx context.Context, d *Dataset, opts CycleOptions) (*CycleResult, error) {
	return f.ResumeAnonymizeContext(ctx, d, opts, nil)
}

// ResumeAnonymizeContext continues a cycle interrupted mid-run: the
// checkpoints — committed iterations journaled through CycleOptions.Checkpoint
// by a previous run — are replayed onto a fresh clone of d, and the cycle
// proceeds from the first uncommitted iteration. The options must match the
// interrupted run's exactly; the cycle is deterministic, so the combined
// result is identical to an uninterrupted run. Nil checkpoints make this
// AnonymizeContext.
func (f *Framework) ResumeAnonymizeContext(ctx context.Context, d *Dataset, opts CycleOptions, checkpoints []CycleCheckpoint) (*CycleResult, error) {
	cfg, err := f.cycleConfig(opts)
	if err != nil {
		return nil, err
	}
	return anon.ResumeContext(ctx, d, cfg, checkpoints)
}

// cycleConfig translates the public options into the cycle's configuration.
func (f *Framework) cycleConfig(opts CycleOptions) (anon.Config, error) {
	if opts.Measure == nil {
		return anon.Config{}, fmt.Errorf("vadasa: CycleOptions.Measure is required")
	}
	method := opts.Method
	if method == nil {
		suppress := LocalSuppression{Choice: AttrMostSelective}
		if opts.UseRecoding {
			method = Composite{
				GlobalRecoding{KB: f.hier, Choice: AttrMostSelective},
				suppress,
			}
		} else {
			method = suppress
		}
	}
	return anon.Config{
		Assessor:   f.assessor(opts.Measure),
		Threshold:  opts.Threshold,
		Anonymizer: method,
		Semantics:  opts.Semantics,
		Order:      opts.Order,
		Checkpoint: opts.Checkpoint,
	}, nil
}

// MeasureSummary pairs a registered measure's name with its risk summary.
type MeasureSummary struct {
	Name    string
	Summary RiskSummary
	Err     error
}

// AssessAllRegistered runs every registered risk measure over the dataset
// and summarizes each against the threshold — the multi-angle confidentiality
// scorecard an analyst reviews before deciding how to anonymize. Measures
// that cannot run on this dataset report their error instead of aborting the
// scorecard.
func (f *Framework) AssessAllRegistered(d *Dataset, threshold float64) []MeasureSummary {
	return f.AssessAllRegisteredContext(context.Background(), d, threshold)
}

// AssessAllRegisteredContext is AssessAllRegistered honouring ctx. A
// cancelled context aborts the scorecard: the measure being evaluated stops
// mid-loop and the remaining measures report the cancellation error instead
// of running.
func (f *Framework) AssessAllRegisteredContext(ctx context.Context, d *Dataset, threshold float64) []MeasureSummary {
	out := make([]MeasureSummary, 0, len(f.measures))
	for _, name := range f.MeasureNames() {
		if err := ctx.Err(); err != nil {
			out = append(out, MeasureSummary{Name: name, Err: err})
			continue
		}
		m, err := f.Measure(name)
		if err != nil {
			out = append(out, MeasureSummary{Name: name, Err: err})
			continue
		}
		risks, err := f.AssessRiskContext(ctx, d, m)
		if err != nil {
			out = append(out, MeasureSummary{Name: name, Err: err})
			continue
		}
		out = append(out, MeasureSummary{Name: name, Summary: SummarizeRisks(risks, threshold)})
	}
	return out
}
