package vadasa_test

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// The examples are documentation that must keep running. Each one is built
// and executed, and its output is checked for the load-bearing lines.
func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples shell out to the go tool")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		markers []string
	}{
		{"quickstart", []string{
			"re-identification risk per tuple",
			"decision log (full explainability):",
			"original nulls: 0",
		}},
		{"inflation", []string{
			"attribute categorization (Algorithm 1):",
			"Quasi-identifier",
			"risk measures side by side",
			"anonymized microdata DB (CSV):",
		}},
		{"ownership", []string{
			"derived control relationships (reasoning):",
			"why does the last control relationship hold?",
			"[extensional]",
			"with control propagation:",
		}},
		{"attack", []string{
			"identity oracle:",
			"max |attack success − estimated risk| over all tuples: 0.0000",
			"before anonymize",
		}},
		{"reasoning", []string{
			"program is warded",
			"critical tuples",
			"derivation tree:",
		}},
		{"household", []string{
			"risky persons, household propagation",
			"utility report",
			"min group size after anonymization:",
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+c.name)
			cmd.Dir = wd
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.name, err, out)
			}
			for _, marker := range c.markers {
				if !strings.Contains(string(out), marker) {
					t.Errorf("example %s output missing %q:\n%s", c.name, marker, out)
				}
			}
		})
	}
}
