// Attack-model walkthrough (Section 2.2 / Figure 2): build an identity
// oracle — the external population an attacker cross-links against — attack
// the raw microdata, verify that the expected success tracks the
// re-identification risk estimate, then anonymize and attack again.
package main

import (
	"fmt"
	"log"
	"math"

	"vadasa"
)

func main() {
	f := vadasa.New()
	d := vadasa.Generate(vadasa.GeneratorConfig{
		Tuples: 2000, QIs: 4, Dist: vadasa.DistU, Seed: 11,
	})

	oracle, truth, err := vadasa.BuildOracle(d, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identity oracle: %d population records for %d tuples\n",
		len(oracle.Records), len(d.Rows))

	before, err := oracle.Run(d, truth, 1)
	if err != nil {
		log.Fatal(err)
	}

	// The expected attack success per tuple equals 1/|block|; the
	// re-identification risk 1/ΣW estimates exactly that (Section 2.2).
	risks, err := f.AssessRisk(d, vadasa.ReIdentification{})
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for i, out := range before.PerRow {
		if diff := math.Abs(out.Expected - risks[i]); diff > maxDiff {
			maxDiff = diff
		}
	}
	fmt.Printf("max |attack success − estimated risk| over all tuples: %.4f\n", maxDiff)

	res, err := f.Anonymize(d, vadasa.CycleOptions{
		Measure: vadasa.KAnonymity{K: 3}, Threshold: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	after, err := oracle.Run(res.Dataset, truth, 1)
	if err != nil {
		log.Fatal(err)
	}

	// The interesting tuples are the vulnerable ones: tiny blocks before
	// anonymization.
	var vulnBefore, vulnAfter, vulnCount float64
	for i, out := range before.PerRow {
		if out.Expected >= 0.5 {
			vulnCount++
			vulnBefore += float64(out.BlockSize)
			vulnAfter += float64(after.PerRow[i].BlockSize)
		}
	}
	fmt.Printf("\n%-28s %18s %18s\n", "", "before anonymize", "after anonymize")
	fmt.Printf("%-28s %18.2f %18.2f\n", "expected successes", before.ExpectedSuccesses, after.ExpectedSuccesses)
	fmt.Printf("%-28s %18d %18d\n", "sampled successes", before.SampledSuccesses, after.SampledSuccesses)
	fmt.Printf("%-28s %18.1f %18.1f\n", "block size (vulnerable)", vulnBefore/vulnCount, vulnAfter/vulnCount)
	fmt.Printf("\n%d nulls injected; blocking a vulnerable tuple is now ~%.0fx more expensive\n",
		res.NullsInjected, vulnAfter/math.Max(vulnBefore, 1))
}
