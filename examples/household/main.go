// Household-survey walkthrough: hierarchical (household) risk, the case the
// paper cites from the SDC literature when motivating cluster propagation
// (Section 4.4). Re-identifying one family member effectively re-identifies
// the household, so every member shares the combined risk 1 − Π(1 − ρ);
// linking household members in the ownership graph (share 1 = "same unit")
// reproduces the household risk of Hundepool et al. inside Vada-SA.
package main

import (
	"fmt"
	"log"
	"os"

	"vadasa"
)

func main() {
	f := vadasa.New()
	d, households := vadasa.GenerateHousehold(vadasa.HouseholdConfig{
		Households: 800, Seed: 7,
	})
	fmt.Printf("survey: %d persons in %d households\n", len(d.Rows), len(households))

	base := vadasa.KAnonymity{K: 2}
	individual, err := f.AssessRisk(d, base)
	if err != nil {
		log.Fatal(err)
	}
	countRisky := func(rs []float64) int {
		n := 0
		for _, r := range rs {
			if r > 0.5 {
				n++
			}
		}
		return n
	}
	fmt.Printf("risky persons, individual risk only: %d\n", countRisky(individual))

	// Household members form clusters: chain each member to the first.
	for _, members := range households {
		for _, m := range members[1:] {
			if err := f.Ownership().AddOwnership(members[0], m, 1); err != nil {
				log.Fatal(err)
			}
		}
	}
	// The framework's entity lookup uses the first identifier attribute —
	// PersonId — which is what the ownership graph is keyed by.
	household, err := f.AssessRisk(d, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("risky persons, household propagation:  %d\n", countRisky(household))

	res, err := f.Anonymize(d, vadasa.CycleOptions{Measure: base, Threshold: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanonymized: %d nulls injected, %d residual\n",
		res.NullsInjected, len(res.Residual))
	rep, err := vadasa.CompareUtility(d, res.Dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	rep.Render(os.Stdout)
}
