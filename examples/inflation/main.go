// Inflation & Growth survey walkthrough: the Research Data Center scenario
// of Section 2. A microdata DB arrives with uncategorized attributes; the
// framework infers categories from the experience base (Figure 4 /
// Algorithm 1), compares the four risk measures of Section 4.2, and
// anonymizes with global recoding over the Italian geography followed by
// local suppression (Figures 5a/5b).
package main

import (
	"fmt"
	"log"
	"os"

	"vadasa"
)

func main() {
	f := vadasa.New()
	d := vadasa.InflationGrowth()
	// Simulate an uncategorized arrival: wipe the declared categories.
	for i := range d.Attrs {
		d.Attrs[i].Category = vadasa.NonIdentifying
	}

	report, err := f.Register(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("attribute categorization (Algorithm 1):")
	for _, a := range d.Attrs {
		fmt.Printf("  %-20s %-18s %s\n", a.Name, a.Category, report.Explanations[a.Name])
	}
	for _, c := range report.Conflicts {
		fmt.Println("  conflict:", c)
	}
	for _, u := range report.Unknown {
		fmt.Println("  unknown (ask an expert):", u)
	}

	fmt.Println("\nrisk measures side by side (per tuple):")
	measures := []vadasa.RiskMeasure{
		vadasa.ReIdentification{},
		vadasa.KAnonymity{K: 2},
		vadasa.IndividualRisk{Estimator: vadasa.PosteriorEstimator},
		vadasa.SUDA{Threshold: 3},
	}
	all := make([][]float64, len(measures))
	for m, measure := range measures {
		rs, err := f.AssessRisk(d, measure)
		if err != nil {
			log.Fatal(err)
		}
		all[m] = rs
	}
	fmt.Printf("  %-6s %14s %12s %12s %8s\n", "tuple", "re-ident", "k-anon(2)", "individual", "suda")
	for i := range d.Rows {
		fmt.Printf("  %-6d %14.4f %12.0f %12.4f %8.0f\n",
			d.Rows[i].ID, all[0][i], all[1][i], all[2][i], all[3][i])
	}

	// Anonymize: the Area values in the paper's Figure 5 roll up the
	// Italian geography; suppression handles the rest.
	res, err := f.Anonymize(d, vadasa.CycleOptions{
		Measure:     vadasa.KAnonymity{K: 2},
		Threshold:   0.5,
		UseRecoding: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanonymized in %d iterations; %d decisions, %d residual tuples\n",
		res.Iterations, len(res.Decisions), len(res.Residual))
	for _, dec := range res.Decisions {
		fmt.Println("  ", dec)
	}

	fmt.Println("\nanonymized microdata DB (CSV):")
	if err := vadasa.WriteCSV(os.Stdout, res.Dataset); err != nil {
		log.Fatal(err)
	}
}
