// Business-knowledge walkthrough (Section 4.4 / Algorithm 9): disclosure
// risk propagates along company-control relationships — re-identifying one
// company of a group makes its affiliates easy to re-identify, so the whole
// cluster shares the combined risk 1 − Π(1 − ρ). The control relation itself
// is derived by the reasoning engine from the declarative ownership rules.
package main

import (
	"fmt"
	"log"

	"vadasa"
)

func main() {
	f := vadasa.New()
	d := vadasa.Generate(vadasa.GeneratorConfig{
		Tuples: 2000, QIs: 4, Dist: vadasa.DistW, Seed: 3,
	})

	// Without business knowledge.
	plain, err := f.Anonymize(d, vadasa.CycleOptions{
		Measure: vadasa.KAnonymity{K: 2}, Threshold: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The company-control rules of Section 4.4, evaluated declaratively:
	// X controls Y with >50% direct ownership, or when the companies X
	// already controls jointly own >50% of Y.
	program := vadasa.MustParseProgram(`
		ctr(X,X) :- own(X,Y,W).
		rel(X,Y) :- ctr(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.
		ctr(X,Y) :- rel(X,Y).
	`)
	edb := vadasa.NewFactDB()
	// A holding chain among the first few companies plus a joint control.
	id := func(i int) string { return d.Rows[i].Values[0].Constant() }
	edges := []struct {
		x, y int
		w    float64
	}{
		{0, 1, 0.6}, {1, 2, 0.7}, {0, 3, 0.3}, {2, 3, 0.3}, {3, 4, 0.9},
	}
	for _, e := range edges {
		edb.Add("own", vadasa.StrVal(id(e.x)), vadasa.StrVal(id(e.y)), vadasa.NumVal(e.w))
	}
	derived, err := vadasa.Reason(program, edb, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("derived control relationships (reasoning):")
	for _, fact := range derived.Facts("rel") {
		fmt.Printf("  %s controls %s\n", fact[0], fact[1])
	}
	// Explain one derivation end to end.
	if rels := derived.Facts("rel"); len(rels) > 0 {
		last := rels[len(rels)-1]
		ex, err := derived.Explain("rel", last[0], last[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nwhy does the last control relationship hold?")
		fmt.Print(ex)
	}

	// Feed the same ownership into the framework: risk now propagates.
	for _, e := range edges {
		if err := f.Ownership().AddOwnership(id(e.x), id(e.y), e.w); err != nil {
			log.Fatal(err)
		}
	}
	enhanced, err := f.Anonymize(d, vadasa.CycleOptions{
		Measure: vadasa.KAnonymity{K: 2}, Threshold: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nwithout business knowledge: %d risky tuples, %d nulls injected\n",
		plain.EverRisky, plain.NullsInjected)
	fmt.Printf("with control propagation:   %d risky tuples, %d nulls injected\n",
		enhanced.EverRisky, enhanced.NullsInjected)
}
