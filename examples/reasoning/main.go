// Reasoning walkthrough: the user-delegation story of the paper. A domain
// expert writes a custom risk criterion as a declarative program — no Go, no
// SQL — and the framework evaluates it with chase semantics, existential
// labelled nulls, EGDs and full provenance.
package main

import (
	"fmt"
	"log"

	"vadasa"
)

func main() {
	// A business rule pack: a tuple is critical when it is the only one
	// of its sector in its area AND belongs to a supervised sector; every
	// critical tuple must be assigned a (to-be-decided) review case,
	// modeled with an existential; two reviews of the same tuple must be
	// the same case (EGD).
	program := vadasa.MustParseProgram(`
		% count tuples per (area, sector)
		paircnt(A,S,C) :- tuple(I,A,S), C = mcount([I]).
		unique(I,A,S) :- tuple(I,A,S), paircnt(A,S,C), C < 2.
		critical(I) :- unique(I,A,S), supervised(S).
		% every critical tuple gets a review case (existential)
		review(I,Case) :- critical(I).
		C1 = C2 :- review(I,C1), review(I,C2).
	`)
	if err := vadasa.CheckWarded(program); err != nil {
		log.Fatal(err)
	}
	fmt.Println("program is warded: reasoning is PTIME-decidable")

	d := vadasa.InflationGrowth()
	edb := vadasa.NewFactDB()
	area, sector := d.AttrIndex("Area"), d.AttrIndex("Sector")
	for _, r := range d.Rows {
		edb.Add("tuple",
			vadasa.NumVal(float64(r.ID)),
			vadasa.StrVal(r.Values[area].Constant()),
			vadasa.StrVal(r.Values[sector].Constant()))
	}
	for _, s := range []string{"Financial", "Construction"} {
		edb.Add("supervised", vadasa.StrVal(s))
	}

	res, err := vadasa.Reason(program, edb, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncritical tuples (unique area/sector pair in a supervised sector):")
	for _, f := range res.Facts("critical") {
		fmt.Printf("  tuple %v\n", f[0])
	}
	fmt.Println("\nreview cases (existential labelled nulls):")
	for _, f := range res.Facts("review") {
		fmt.Printf("  tuple %v -> case %v\n", f[0], f[1])
	}

	// Full explainability: why is the first critical tuple critical?
	if crits := res.Facts("critical"); len(crits) > 0 {
		ex, err := res.Explain("critical", crits[0][0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nderivation tree:")
		fmt.Print(ex)
	}
}
