// Quickstart: load the paper's Inflation & Growth fragment (Figure 1),
// estimate statistical disclosure risk, anonymize with the default cycle and
// print the fully explained decision log.
package main

import (
	"fmt"
	"log"

	"vadasa"
)

func main() {
	f := vadasa.New()
	d := vadasa.InflationGrowth()

	// Re-identification risk per tuple (Section 2.2): highest for tuple
	// 15, lowest for tuple 7.
	risks, err := f.AssessRisk(d, vadasa.ReIdentification{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("re-identification risk per tuple:")
	for i, r := range risks {
		fmt.Printf("  tuple %2d: %.4f\n", d.Rows[i].ID, r)
	}

	// Anonymize until every tuple is 2-anonymous.
	res, err := f.Anonymize(d, vadasa.CycleOptions{
		Measure:   vadasa.KAnonymity{K: 2},
		Threshold: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanonymization: %d risky tuples, %d nulls injected, info loss %.1f%%\n",
		res.EverRisky, res.NullsInjected, 100*res.InfoLoss)
	fmt.Println("decision log (full explainability):")
	for _, dec := range res.Decisions {
		fmt.Println("  ", dec)
	}

	// The anonymized table is a copy; the original is untouched.
	fmt.Printf("\noriginal nulls: %d, anonymized nulls: %d\n",
		d.NullCount(), res.Dataset.NullCount())
}
