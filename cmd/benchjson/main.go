// Command benchjson converts `go test -bench` output into the versioned
// BENCH_<PR>.json machine-readable record documented in DESIGN.md: one entry
// per benchmark with the standard ns/op, B/op and allocs/op columns plus
// every custom metric (riskeval-ms/op, nulls/op, loss%/op,
// decl-vs-native-ratio, ...) the suite reports.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... > bench.out
//	go run ./cmd/benchjson -o BENCH_10.json bench.out
//
// With no file argument the benchmark output is read from stdin. Lines that
// are not benchmark results (headers, PASS/ok, build noise) are ignored, so
// the full `go test` stream can be piped through unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result row.
type Entry struct {
	// Name is the benchmark path without the trailing -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is the b.N the row was measured at.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the standard time column.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the -benchmem columns; absent (zero)
	// when -benchmem was off.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// RiskEvalMsPerOp surfaces the suite's headline custom metric (the
	// risk-estimation component of Figure 7e) as a first-class field;
	// nil when the benchmark does not report it.
	RiskEvalMsPerOp *float64 `json:"riskeval_ms_per_op,omitempty"`
	// Metrics holds every custom unit verbatim, riskeval-ms/op included.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level BENCH_5.json document.
type Report struct {
	Schema     string  `json:"schema"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	report, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse folds a `go test -bench` stream into a Report. A benchmark result
// line is `Benchmark<Name>-<P>  <N>  <value> <unit> [<value> <unit>]...`;
// everything else is skipped.
func parse(r io.Reader) (*Report, error) {
	report := &Report{Schema: "vadasa-bench/v1"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a "Benchmark..." line that is not a result row
		}
		e := Entry{Name: trimProcs(strings.TrimPrefix(fields[0], "Benchmark")), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			default:
				if e.Metrics == nil {
					e.Metrics = make(map[string]float64)
				}
				e.Metrics[unit] = v
				if unit == "riskeval-ms/op" {
					ms := v
					e.RiskEvalMsPerOp = &ms
				}
			}
		}
		report.Benchmarks = append(report.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(report.Benchmarks, func(i, j int) bool {
		return report.Benchmarks[i].Name < report.Benchmarks[j].Name
	})
	return report, nil
}

// trimProcs drops the trailing -<GOMAXPROCS> the bench runner appends, so
// entries compare across machines with different core counts.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
