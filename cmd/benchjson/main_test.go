package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: vadasa
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig7eBySize/n=5000/individual-risk(monte-carlo)-4         	       1	  17571099 ns/op	        14.00 riskeval-ms/op	  524288 B/op	    1024 allocs/op
BenchmarkFig7aNullsByK/W/k=2-4   	       2	 123456 ns/op	 321.0 nulls/op	 4.100 loss%/op
BenchmarkGrouping-4 	     100	  99999 ns/op
PASS
ok  	vadasa	0.078s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(rep.Benchmarks))
	}
	byName := map[string]Entry{}
	for _, e := range rep.Benchmarks {
		byName[e.Name] = e
	}
	mc, ok := byName["Fig7eBySize/n=5000/individual-risk(monte-carlo)"]
	if !ok {
		t.Fatalf("missing monte-carlo entry (procs suffix not trimmed?): %v", rep.Benchmarks)
	}
	if mc.NsPerOp != 17571099 || mc.AllocsPerOp != 1024 || mc.BytesPerOp != 524288 {
		t.Fatalf("bad standard columns: %+v", mc)
	}
	if mc.RiskEvalMsPerOp == nil || *mc.RiskEvalMsPerOp != 14 {
		t.Fatalf("riskeval-ms/op not surfaced: %+v", mc)
	}
	nulls := byName["Fig7aNullsByK/W/k=2"]
	if nulls.Metrics["nulls/op"] != 321 || nulls.Metrics["loss%/op"] != 4.1 {
		t.Fatalf("custom metrics lost: %+v", nulls)
	}
	if nulls.RiskEvalMsPerOp != nil {
		t.Fatalf("riskeval surfaced where absent: %+v", nulls)
	}
	plain := byName["Grouping"]
	if plain.Iterations != 100 || plain.NsPerOp != 99999 || plain.Metrics != nil {
		t.Fatalf("bad plain entry: %+v", plain)
	}
}

func TestParseRejectsGarbageValue(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-4 1 abc ns/op\n")); err == nil {
		t.Fatal("garbage value accepted")
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"Grouping-4":              "Grouping",
		"Fig7eBySize/n=5000/x-16": "Fig7eBySize/n=5000/x",
		"NoSuffix":                "NoSuffix",
		"monte-carlo":             "monte-carlo", // non-numeric tail stays
	} {
		if got := trimProcs(in); got != want {
			t.Fatalf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
