// Command vadasad serves the Vada-SA framework over HTTP: the shape a
// Research Data Center deployment takes, where analysts and upstream
// pipelines submit microdata for categorization, risk assessment and
// anonymization without linking the Go library.
//
//	vadasad [-addr :8321] [-kb kb.json] [-request-timeout 30s]
//	        [-read-timeout 10s] [-shutdown-grace 10s]
//	        [-max-inflight 64] [-max-budget 1000000000]
//	        [-max-cells 10000000] [-mem-budget 0] [-disk-headroom 0]
//	        [-job-dir DIR] [-job-workers 2] [-job-retries 3]
//	        [-job-retry-base 100ms] [-job-retry-cap 5s]
//	        [-pprof-addr localhost:6060]
//	        [-shard-workers host:port,...] [-spawn-workers N]
//	        [-worker-bin PATH] [-lease-ttl 10s] [-hedge-after 0]
//	        [-worker-heartbeat 2s] [-require-workers]
//	        [-repl-role primary|standby] [-repl-peers URL,...]
//	        [-repl-sync] [-repl-lag-max N]
//
// Endpoints (all POST bodies are CSV with a header row; attribute categories
// are inferred from the header names and can be overridden with the id/qi/
// weight query parameters, comma-separated):
//
//	GET  /healthz              liveness (exempt from load shedding)
//	GET  /readyz               readiness: 503 while startup recovery is
//	                           replaying job journals or a resource budget
//	                           is saturated; 200 once traffic is welcome
//	GET  /measures             registered risk measures
//	POST /categorize           attribute categorization report (JSON)
//	POST /assess?measure=&k=   risk summary + risky tuple ids (JSON)
//	POST /anonymize?measure=&k=&threshold=&recode=
//	                           anonymized CSV + decision log (JSON)
//	POST /explain?measure=&tuple=
//	                           derivation-tree explanation (JSON)
//
// With -job-dir set, anonymization also runs as durable asynchronous jobs:
// every committed cycle iteration is journaled to an fsync'd write-ahead
// journal in that directory, interrupted jobs are resumed on startup by
// deterministic replay, and transient assessor failures retry with
// exponential backoff (-job-retries, -job-retry-base, -job-retry-cap) on a
// bounded worker pool (-job-workers):
//
//	POST /jobs/anonymize?...   submit (same parameters as /anonymize); 202
//	GET  /jobs                 list jobs, newest first
//	GET  /jobs/{id}            state, attempts, error, outcome counters
//	GET  /jobs/{id}/result     anonymized CSV (409 while running, 410 failed)
//	POST /jobs/{id}/cancel     cancel; terminal across restarts
//
// With -stream-dir set, the daemon also serves crash-consistent streaming
// anonymization (DESIGN.md §13): per-stream ingestion windows whose every
// accepted batch is journaled and fsync'd to a write-ahead log before the
// request is acknowledged, with risk maintained online and releases gated on
// every tuple clearing the threshold, published under an intent→publish→ack
// protocol that survives crashes at any point (-stream-max-rows bounds each
// window; the excess is shed with 429 + Retry-After):
//
//	POST /stream/{id}/append?batch=KEY&...
//	                           ingest one CSV batch; creates the stream on
//	                           first contact (measure/threshold/id/qi/weight
//	                           as in /assess); batch= is the idempotency key
//	GET  /stream/{id}/release  gate + publish the window snapshot (exactly
//	                           once; re-served unchanged until acked);
//	                           409 when the gate cannot close
//	POST /stream/{id}/ack?seq= retire a published release
//	POST /stream/{id}/withdraw remove rows by id: {"rowIds": [...]}
//	GET  /stream/{id}/status   rows, batches, releases, risk mode
//	GET  /streams              list open streams
//
// Operational hardening. Every request runs under a wall-clock deadline
// (-request-timeout; 504 with a JSON error when it expires, 499-style when
// the client disconnects first) threaded as a context.Context down to the
// risk measures, the anonymization cycle and the reasoning engine, so a
// timed-out request stops consuming CPU promptly. At most -max-inflight
// requests are served concurrently; the excess is shed with 429 and a
// Retry-After header instead of queueing unboundedly. Request bodies are
// capped at 64 MiB (413 beyond that), and decoded CSVs at -max-cells
// rows×columns (also 413; 0 disables). The reasoning engine's join-work
// budget can be lowered per request with ?budget=N, capped by -max-budget.
// A panicking handler is logged with its stack and answered with 500; the
// daemon keeps serving. -read-timeout bounds how long a client may take to
// send its request (slowloris protection); write and idle timeouts are
// derived from the request timeout. On SIGINT/SIGTERM the listener closes,
// in-flight requests drain for up to -shutdown-grace, then the process
// exits.
//
// Resource governance. -mem-budget caps the estimated bytes the server will
// hold across all requests, jobs and engine evaluations at once (0 =
// unlimited); -disk-headroom is the free-byte floor the job volume must
// retain (0 = disabled). Requests that would overrun answer 503; running
// jobs pause at their last journaled checkpoint and resume automatically
// when pressure clears; /readyz turns not-ready so load balancers steer
// traffic away while the server is saturated.
//
// Distributed execution. With -shard-workers (addresses of running vadasaw
// processes) and/or -spawn-workers (locally spawned, supervised children),
// incremental risk re-scoring fans out to worker processes in row shards
// under epoch-fenced leases with heartbeat liveness, bounded retries and
// optional hedged re-dispatch (-hedge-after). Results are bit-identical to
// in-process scoring. When every worker is down the server degrades to
// in-process execution and /readyz reports "degraded" (still 200) — unless
// -require-workers is set, in which case affected requests fail 503 with
// Retry-After and /readyz answers 503. See DESIGN.md §12 and README.md,
// "Sharded risk scoring with vadasaw".
//
// Replication. With -repl-role, a pair of daemons forms a warm-standby
// cluster (DESIGN.md §14): the primary ships every committed stream-WAL and
// job-journal record to its -repl-peers over POST /repl/ship, and standbys
// mirror the bytes verbatim, maintain read-only replay views, and verify
// SHA-256 state digests against the primary's. -repl-sync makes every
// journal append wait for a standby ack (synchronous commit); without it,
// -repl-lag-max bounds how far a standby may fall behind before /readyz
// turns unhealthy. An unpromoted standby answers writes with 503 + a
// standby marker and serves GET /streams, /stream/{id}/release and
// /stream/{id}/status from its mirrors; POST /repl/promote?fence=E fences
// it into the primary role (the fence must outrank every epoch it has
// seen), recovers the mirrored directories through the normal startup path
// — pending release intents complete exactly once — and widens the API in
// place. A demoted primary's subsequent writes fail with a typed fencing
// error (503). GET /replstatus reports role, epochs, lag and divergence.
// See README.md, "Replication & failover".
//
// Profiling. -pprof-addr starts a second, independent listener exposing the
// standard /debug/pprof endpoints (disabled by default; never mounted on the
// service port). Bind it to localhost or a management interface — profiles
// reveal memory contents and timing. See README.md, "Profiling a running
// server".
//
// The server is stateless across requests; the knowledge base is loaded at
// startup.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"vadasa"
	"vadasa/internal/dist"
	"vadasa/internal/govern"
	"vadasa/internal/jobs"
	"vadasa/internal/replica"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	kbPath := flag.String("kb", "", "knowledge-base JSON to load at startup")
	requestTimeout := flag.Duration("request-timeout", defaultRequestTimeout,
		"per-request wall-clock deadline (0 disables)")
	readTimeout := flag.Duration("read-timeout", 10*time.Second,
		"maximum time to read a request, header and body included")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second,
		"how long in-flight requests may drain after SIGINT/SIGTERM")
	maxInflight := flag.Int("max-inflight", 64,
		"maximum concurrently served requests; the excess gets 429 (0 disables shedding)")
	maxBudget := flag.Int64("max-budget", defaultBudgetCeiling,
		"ceiling for the per-request ?budget= reasoning work budget")
	maxCells := flag.Int64("max-cells", defaultMaxCells,
		"maximum rows×columns of a decoded CSV; larger datasets get 413 (0 disables)")
	memBudget := flag.Int64("mem-budget", 0,
		"server-wide estimated-memory budget in bytes; saturation 503s new work and pauses jobs (0 = unlimited)")
	diskHeadroom := flag.Int64("disk-headroom", 0,
		"free-byte floor for the job volume; below it journal appends pause their jobs (0 disables)")
	jobDir := flag.String("job-dir", "",
		"directory for durable anonymization jobs (journals, inputs, outputs); empty disables the /jobs API")
	jobWorkers := flag.Int("job-workers", 2, "concurrent anonymization jobs")
	jobRetries := flag.Int("job-retries", 3, "attempts per job including the first; only transient failures retry")
	jobRetryBase := flag.Duration("job-retry-base", 100*time.Millisecond, "first retry delay; doubles per attempt")
	jobRetryCap := flag.Duration("job-retry-cap", 5*time.Second, "upper bound on the retry delay")
	pprofAddr := flag.String("pprof-addr", "",
		"listen address for /debug/pprof (e.g. localhost:6060); empty disables profiling entirely")
	shardWorkers := flag.String("shard-workers", "",
		"comma-separated host:port list of running vadasaw shard workers to fan risk scoring out to")
	spawnWorkers := flag.Int("spawn-workers", 0,
		"number of vadasaw worker processes to spawn and supervise locally")
	workerBin := flag.String("worker-bin", "",
		"path to the vadasaw binary for -spawn-workers (default: next to this executable, then $PATH)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second,
		"per-dispatch lease: a worker silent past this is presumed dead and the shard is retried elsewhere")
	hedgeAfter := flag.Duration("hedge-after", 0,
		"re-dispatch a shard to a second worker after this long without a reply; first admitted reply wins (0 disables)")
	workerHeartbeat := flag.Duration("worker-heartbeat", 2*time.Second,
		"interval between worker liveness probes")
	requireWorkers := flag.Bool("require-workers", false,
		"refuse the in-process fallback: with no healthy workers, requests fail 503 instead of degrading")
	streamDir := flag.String("stream-dir", "",
		"directory for crash-consistent streaming anonymization (one WAL + release files per stream); empty disables the /stream API")
	streamMaxRows := flag.Int("stream-max-rows", 0,
		"per-stream in-memory window bound; appends beyond it get 429 (0 = 100000)")
	replRole := flag.String("repl-role", "",
		"replication role: primary (ships journals to -repl-peers) or standby (mirrors a primary, read-only until promoted); empty disables replication")
	replPeers := flag.String("repl-peers", "",
		"comma-separated base URLs (http://host:port) of standby peers to ship journals to; required with -repl-role=primary")
	replSync := flag.Bool("repl-sync", false,
		"synchronous commit: every journal append waits until a standby has acknowledged the record durably (fails the write after a timeout)")
	replLagMax := flag.Int("repl-lag-max", 0,
		"un-acked shipped-record count above which /readyz reports the primary unhealthy; async mode's safety valve (0 disables)")
	flag.Parse()

	newFramework := func() (*vadasa.Framework, error) {
		f := vadasa.New()
		if *kbPath != "" {
			file, err := os.Open(*kbPath)
			if err != nil {
				return nil, err
			}
			defer file.Close()
			if err := f.LoadKB(file); err != nil {
				return nil, err
			}
		}
		return f, nil
	}
	// Fail fast on a broken KB.
	if _, err := newFramework(); err != nil {
		log.Fatalf("vadasad: %v", err)
	}

	srv := &server{
		newFramework:   newFramework,
		requestTimeout: *requestTimeout,
		budgetCeiling:  *maxBudget,
		maxCells:       *maxCells,
	}
	if *requestTimeout == 0 {
		srv.requestTimeout = -1 // explicit opt-out, don't fall back to default
	}
	if *maxCells == 0 {
		srv.maxCells = -1 // explicit opt-out, don't fall back to default
	}
	if *maxInflight > 0 {
		srv.inflight = make(chan struct{}, *maxInflight)
	}
	if *memBudget > 0 || *diskHeadroom > 0 {
		srv.govern = govern.New("server", govern.Limits{
			MaxBytes:     *memBudget,
			DiskDir:      *jobDir, // "" disables the disk check
			DiskHeadroom: *diskHeadroom,
		})
	}
	// Replication must be wired before the jobs manager and the stream
	// registry exist: their journals are shipped through hooks installed at
	// creation time, and a standby must not bring the write path up at all.
	if *replRole != "" {
		replDir := *streamDir
		if replDir == "" && *jobDir != "" {
			// Keep the epoch journal out of the jobs manager's *.journal
			// glob by giving it its own directory.
			replDir = filepath.Join(*jobDir, "repl")
		}
		if replDir == "" {
			log.Fatalf("vadasad: -repl-role requires -stream-dir or -job-dir; there is nothing to replicate")
		}
		if err := os.MkdirAll(replDir, 0o755); err != nil {
			log.Fatalf("vadasad: -repl-role: %v", err)
		}
		nodeID, _ := os.Hostname()
		if nodeID == "" {
			nodeID = "vadasad"
		}
		nodePath := filepath.Join(replDir, replica.NodeJournalName)
		switch *replRole {
		case "primary":
			node, err := replica.OpenNode(nodeID, nodePath, replica.RolePrimary, nil)
			if err != nil {
				log.Fatalf("vadasad: replication: %v", err)
			}
			defer node.Close()
			var peers []replica.Transport
			for _, a := range strings.Split(*replPeers, ",") {
				if a = strings.TrimSpace(a); a != "" {
					peers = append(peers, replica.NewHTTPTransport(a, nil))
				}
			}
			if len(peers) == 0 {
				log.Fatalf("vadasad: -repl-role=primary requires -repl-peers")
			}
			p, err := replica.NewPrimary(replica.PrimaryOptions{
				Node:   node,
				Peers:  peers,
				Sync:   *replSync,
				LagMax: *replLagMax,
				Logf:   log.Printf,
			})
			if err != nil {
				log.Fatalf("vadasad: replication: %v", err)
			}
			srv.repl = &replState{node: node, primary: p, streamDir: *streamDir, jobDir: *jobDir}
			p.Start()
			// Registered before the registries are built so the LIFO defers
			// close the registries (final checkpoints, shipped while the
			// shipper still runs) first and the shipper last.
			defer p.Close()
			log.Printf("vadasad: replication primary %q (epoch %d) shipping to %d peer(s), sync=%v",
				nodeID, node.Epoch(), len(peers), *replSync)
		case "standby":
			node, err := replica.OpenNode(nodeID, nodePath, replica.RoleStandby, nil)
			if err != nil {
				log.Fatalf("vadasad: replication: %v", err)
			}
			defer node.Close()
			roots := map[string]replica.Root{}
			if *streamDir != "" {
				roots["stream"] = replica.Root{Dir: *streamDir, Ext: ".wal"}
			}
			if *jobDir != "" {
				roots["jobs"] = replica.Root{Dir: *jobDir, Ext: ".journal"}
			}
			sb, err := replica.NewStandby(replica.StandbyOptions{
				Node:         node,
				Roots:        roots,
				OpenFollower: srv.followerFactory(*streamMaxRows, *diskHeadroom),
				FollowRoot:   "stream",
				Logf:         log.Printf,
			})
			if err != nil {
				log.Fatalf("vadasad: replication: %v", err)
			}
			if err := sb.Recover(context.Background()); err != nil {
				log.Fatalf("vadasad: replication: recovering mirrors: %v", err)
			}
			defer sb.Close()
			rs := &replState{node: node, standby: sb, streamDir: *streamDir, jobDir: *jobDir}
			// Promotion closures: bring the write path up over the mirrored
			// directories through the exact code a fresh start would run.
			if *streamDir != "" {
				rs.openStreams = func(ctx context.Context) (int, error) {
					srv.streams = newStreamRegistry(srv, *streamDir, *streamMaxRows, *diskHeadroom)
					return srv.streams.recover(ctx)
				}
			}
			if *jobDir != "" {
				srv.jobDir = *jobDir
				rs.openJobs = func() error {
					mgr, err := jobs.NewManager(&jobRunner{srv: srv}, jobs.Options{
						Dir:          *jobDir,
						Workers:      *jobWorkers,
						MaxAttempts:  *jobRetries,
						RetryBase:    *jobRetryBase,
						RetryCap:     *jobRetryCap,
						DiskHeadroom: *diskHeadroom,
						Governor:     srv.govern,
					})
					if err != nil {
						return err
					}
					srv.jobs = mgr
					resumed, err := mgr.Recover()
					if err != nil {
						log.Printf("vadasad: job recovery: %v", err)
					}
					if len(resumed) > 0 {
						log.Printf("vadasad: resumed %d interrupted job(s): %v", len(resumed), resumed)
					}
					return nil
				}
			}
			srv.repl = rs
			// Registries created by a promotion need the same drain the
			// primary-path defers give; runs before sb.Close/node.Close.
			defer func() {
				rs.mu.Lock()
				streams, jobsMgr := srv.streams, srv.jobs
				rs.mu.Unlock()
				if streams != nil {
					streams.Close(context.Background())
				}
				if jobsMgr != nil {
					jobsMgr.Close()
				}
			}()
			log.Printf("vadasad: replication standby %q mirroring into %s (epoch seen %d)",
				nodeID, replDir, node.Epoch())
		default:
			log.Fatalf("vadasad: unknown -repl-role %q (want primary or standby)", *replRole)
		}
	}

	if *shardWorkers != "" || *spawnWorkers > 0 || *requireWorkers {
		var transports []dist.Transport
		for _, a := range strings.Split(*shardWorkers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				transports = append(transports, dist.NewHTTPTransport(a, nil))
			}
		}
		var workerProcs []*dist.Proc
		if *spawnWorkers > 0 {
			bin := *workerBin
			if bin == "" {
				bin = findWorkerBin()
			}
			if bin == "" {
				log.Fatalf("vadasad: -spawn-workers: no vadasaw binary next to the executable or on $PATH; set -worker-bin")
			}
			for i := 0; i < *spawnWorkers; i++ {
				p, err := dist.Spawn(bin, []string{"-quiet"}, nil, 10*time.Second)
				if err != nil {
					log.Fatalf("vadasad: spawning shard worker %d: %v", i, err)
				}
				workerProcs = append(workerProcs, p)
				transports = append(transports, p.Transport())
				log.Printf("vadasad: shard worker %d listening on %s", i, p.Addr())
			}
			defer func() {
				for _, p := range workerProcs {
					p.Kill()
				}
			}()
		}
		sup := dist.NewSupervisor(transports, dist.Options{
			Run:               "vadasad",
			LeaseTTL:          *leaseTTL,
			HedgeAfter:        *hedgeAfter,
			HeartbeatInterval: *workerHeartbeat,
			RequireWorkers:    *requireWorkers,
			Governor:          srv.govern,
			Logf:              log.Printf,
		})
		sup.Start()
		defer sup.Close()
		srv.dist = sup
		log.Printf("vadasad: sharded risk scoring over %d worker(s), require-workers=%v",
			len(transports), *requireWorkers)
	}
	if *jobDir != "" && !srv.repl.servingStandby() {
		srv.jobDir = *jobDir
		mgr, err := jobs.NewManager(&jobRunner{srv: srv}, jobs.Options{
			Dir:          *jobDir,
			Workers:      *jobWorkers,
			MaxAttempts:  *jobRetries,
			RetryBase:    *jobRetryBase,
			RetryCap:     *jobRetryCap,
			DiskHeadroom: *diskHeadroom,
			Governor:     srv.govern,
			JournalHook:  srv.replJobHook(),
		})
		if err != nil {
			log.Fatalf("vadasad: %v", err)
		}
		srv.jobs = mgr
		defer mgr.Close()
		// Recovery replays journals and re-runs interrupted cycles; with
		// many or large jobs that takes real time, and holding the
		// listener closed meanwhile turns one restart into an outage.
		// Serve immediately, answer /readyz with 503 until the replay is
		// queued, and let load balancers decide what to do with that.
		srv.recovering.Store(true)
		go func() {
			defer srv.recovering.Store(false)
			resumed, err := mgr.Recover()
			if err != nil {
				log.Printf("vadasad: job recovery: %v", err)
			}
			if len(resumed) > 0 {
				log.Printf("vadasad: resumed %d interrupted job(s): %v", len(resumed), resumed)
			}
		}()
	}

	if *streamDir != "" && !srv.repl.servingStandby() {
		if err := os.MkdirAll(*streamDir, 0o755); err != nil {
			log.Fatalf("vadasad: -stream-dir: %v", err)
		}
		srv.streams = newStreamRegistry(srv, *streamDir, *streamMaxRows, *diskHeadroom)
		// Stream recovery is synchronous: the WALs are bounded by the window
		// size, and serving an append before its stream's intent→publish
		// protocol has been completed would be exactly the inconsistency the
		// journal exists to prevent.
		n, err := srv.streams.recover(context.Background())
		if err != nil {
			log.Fatalf("vadasad: recovering streams: %v", err)
		}
		if n > 0 {
			log.Printf("vadasad: recovered %d stream(s) from %s", n, *streamDir)
		}
		// Deferred drain: each stream writes its checkpoint record on the
		// clean SIGTERM path, after in-flight requests have finished.
		defer srv.streams.Close(context.Background())
	}

	httpSrv := newHTTPServer(*addr, srv, *readTimeout, *requestTimeout)
	errc := make(chan error, 1)
	if *pprofAddr != "" {
		// Profiling lives on its own listener, never on the service port:
		// the service mux stays closed (no DefaultServeMux), so exposure is
		// an explicit operator decision and can be bound to localhost or a
		// management network independently of -addr.
		pprofSrv := newPprofServer(*pprofAddr)
		go func() { errc <- fmt.Errorf("pprof listener: %w", pprofSrv.ListenAndServe()) }()
		log.Printf("vadasad profiling on http://%s/debug/pprof/", *pprofAddr)
	}
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("vadasad listening on %s (request timeout %s, max in-flight %d)",
		*addr, *requestTimeout, *maxInflight)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("vadasad: %v", err)
	case sig := <-sigc:
		log.Printf("vadasad: received %s, draining in-flight requests (grace %s)", sig, *shutdownGrace)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("vadasad: shutdown did not drain cleanly: %v", err)
			os.Exit(1)
		}
		log.Printf("vadasad: drained, bye")
	}
}

// findWorkerBin locates the vadasaw binary for -spawn-workers when the
// operator did not pin one: the sibling of this executable first (how release
// tarballs lay the two out), then $PATH. Empty means neither exists.
func findWorkerBin() string {
	if exe, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(exe), "vadasaw")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand
		}
	}
	if p, err := exec.LookPath("vadasaw"); err == nil {
		return p
	}
	return ""
}

// newPprofServer builds the dedicated profiling listener: an explicit mux
// carrying only the net/http/pprof handlers, with the read-side timeouts the
// service listener has. No write timeout — CPU profiles and traces stream
// for as long as ?seconds= asks.
func newPprofServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// newHTTPServer builds the hardened http.Server around the handler stack:
// explicit read/write/idle timeouts so one slow peer cannot hold a
// connection (and its goroutine) forever. The write timeout leaves the
// request deadline room to produce a proper 504 body before the socket is
// closed.
func newHTTPServer(addr string, s *server, readTimeout, requestTimeout time.Duration) *http.Server {
	writeTimeout := requestTimeout + 10*time.Second
	if requestTimeout <= 0 {
		writeTimeout = 0 // no request deadline -> no write deadline either
	}
	return &http.Server{
		Addr:              addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
}
