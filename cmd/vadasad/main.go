// Command vadasad serves the Vada-SA framework over HTTP: the shape a
// Research Data Center deployment takes, where analysts and upstream
// pipelines submit microdata for categorization, risk assessment and
// anonymization without linking the Go library.
//
//	vadasad [-addr :8321] [-kb kb.json]
//
// Endpoints (all POST bodies are CSV with a header row; attribute categories
// are inferred from the header names and can be overridden with the id/qi/
// weight query parameters, comma-separated):
//
//	GET  /healthz              liveness
//	GET  /measures             registered risk measures
//	POST /categorize           attribute categorization report (JSON)
//	POST /assess?measure=&k=   risk summary + risky tuple ids (JSON)
//	POST /anonymize?measure=&k=&threshold=&recode=
//	                           anonymized CSV + decision log (JSON)
//
// The server is stateless across requests; the knowledge base is loaded at
// startup.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"

	"vadasa"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	kbPath := flag.String("kb", "", "knowledge-base JSON to load at startup")
	flag.Parse()

	newFramework := func() (*vadasa.Framework, error) {
		f := vadasa.New()
		if *kbPath != "" {
			file, err := os.Open(*kbPath)
			if err != nil {
				return nil, err
			}
			defer file.Close()
			if err := f.LoadKB(file); err != nil {
				return nil, err
			}
		}
		return f, nil
	}
	// Fail fast on a broken KB.
	if _, err := newFramework(); err != nil {
		log.Fatalf("vadasad: %v", err)
	}

	srv := &server{newFramework: newFramework}
	log.Printf("vadasad listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}
