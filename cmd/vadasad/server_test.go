package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vadasa"
)

func testServer() http.Handler {
	s := &server{newFramework: func() (*vadasa.Framework, error) {
		return vadasa.New(), nil
	}}
	return s.routes()
}

func figure1CSV(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := vadasa.WriteCSV(&buf, vadasa.InflationGrowth()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func do(t *testing.T, h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, target, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	rec := do(t, testServer(), "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestMeasures(t *testing.T) {
	rec := do(t, testServer(), "GET", "/measures", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		Measures []string `json:"measures"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Measures) < 4 {
		t.Fatalf("measures = %v", out.Measures)
	}
}

func TestCategorizeEndpoint(t *testing.T) {
	rec := do(t, testServer(), "POST", "/categorize", figure1CSV(t))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		Attributes []struct {
			Name     string `json:"name"`
			Category string `json:"category"`
		} `json:"attributes"`
		Unknown []string `json:"unknown"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	byName := map[string]string{}
	for _, a := range out.Attributes {
		byName[a.Name] = a.Category
	}
	if byName["Id"] != "Identifier" || byName["Area"] != "Quasi-identifier" ||
		byName["Weight"] != "Sampling Weight" {
		t.Fatalf("categories = %v", byName)
	}
}

func TestAssessEndpoint(t *testing.T) {
	rec := do(t, testServer(), "POST", "/assess?measure=k-anonymity&k=2", figure1CSV(t))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		Measure string `json:"measure"`
		Tuples  int    `json:"tuples"`
		Summary struct {
			OverThreshold int `json:"OverThreshold"`
		} `json:"summary"`
		Risky []int `json:"riskyTupleIds"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Tuples != 20 {
		t.Fatalf("tuples = %d", out.Tuples)
	}
	// Every Figure 1 combination is unique: all 20 tuples risky at k=2.
	if len(out.Risky) != 20 || out.Summary.OverThreshold != 20 {
		t.Fatalf("risky = %d, summary %d", len(out.Risky), out.Summary.OverThreshold)
	}
}

func TestAssessManualOverrides(t *testing.T) {
	// Forcing everything but Area to non-identifying: group by Area only.
	rec := do(t, testServer(),
		"POST", "/assess?measure=k-anonymity&k=2&qi=Area&id=Id,Sector,Employees,ResidentialRevenue,ExportRevenue,ExportToDE,Growth6mos&weight=Weight",
		figure1CSV(t))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		Risky []int `json:"riskyTupleIds"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	// Areas: North x7, South x5, Center x8 — nothing unique.
	if len(out.Risky) != 0 {
		t.Fatalf("risky = %v, want none", out.Risky)
	}
}

func TestAnonymizeEndpoint(t *testing.T) {
	// Pin the fixture's categorization: ExportToDE and Growth6mos are
	// non-identifying in Figure 1's schema, while name inference would
	// make them quasi-identifiers (the Figure 4 dictionary view).
	rec := do(t, testServer(),
		"POST", "/anonymize?measure=k-anonymity&k=2&threshold=0.5&plain=ExportToDE,Growth6mos&qi=ExportRevenue", figure1CSV(t))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		CSV           string   `json:"csv"`
		NullsInjected int      `json:"nullsInjected"`
		Residual      []int    `json:"residualTupleIds"`
		Decisions     []string `json:"decisions"`
		MinGroupSize  int      `json:"minGroupSizeAfter"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.NullsInjected == 0 || len(out.Decisions) != out.NullsInjected {
		t.Fatalf("nulls %d, decisions %d", out.NullsInjected, len(out.Decisions))
	}
	if len(out.Residual) != 0 {
		t.Fatalf("residual = %v", out.Residual)
	}
	if out.MinGroupSize < 2 {
		t.Fatalf("min group size = %d", out.MinGroupSize)
	}
	if !strings.Contains(out.CSV, "⊥") {
		t.Fatal("anonymized CSV has no labelled nulls")
	}
	// The anonymized CSV must parse back against the same schema.
	d, err := vadasa.ReadCSV(strings.NewReader(out.CSV), "back", vadasa.InflationGrowth().Attrs)
	if err != nil {
		t.Fatalf("re-reading anonymized CSV: %v", err)
	}
	if got := vadasa.VerifyKAnonymity(d, 2, vadasa.MaybeMatch); len(got) != 0 {
		t.Fatalf("returned dataset not 2-anonymous: %v", got)
	}
}

func TestBadRequests(t *testing.T) {
	h := testServer()
	cases := []struct {
		method, target, body string
		wantStatus           int
	}{
		{"POST", "/assess", "", http.StatusBadRequest},
		{"POST", "/assess?measure=bogus", figure1CSV(t), http.StatusBadRequest},
		{"POST", "/assess?k=notanumber", figure1CSV(t), http.StatusBadRequest},
		{"POST", "/anonymize?threshold=wat", figure1CSV(t), http.StatusBadRequest},
		{"POST", "/assess?measure=l-diversity", figure1CSV(t), http.StatusBadRequest},
		{"POST", "/categorize", "HeaderOnly", http.StatusBadRequest},
		{"GET", "/nope", "", http.StatusNotFound},
	}
	for _, c := range cases {
		rec := do(t, h, c.method, c.target, c.body)
		if rec.Code != c.wantStatus {
			t.Errorf("%s %s: status %d, want %d (%s)",
				c.method, c.target, rec.Code, c.wantStatus, rec.Body)
		}
	}
}

func TestLDiversityEndpoint(t *testing.T) {
	rec := do(t, testServer(),
		"POST", "/assess?measure=l-diversity&k=2&sensitive=Growth6mos", figure1CSV(t))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
}

func TestExplainEndpoint(t *testing.T) {
	rec := do(t, testServer(),
		"POST", "/explain?measure=k-anonymity&k=2&tuple=4", figure1CSV(t))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		Explanation string `json:"explanation"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Explanation, "riskout(4,") {
		t.Fatalf("explanation = %q", out.Explanation)
	}
	// Missing tuple parameter.
	rec = do(t, testServer(), "POST", "/explain?measure=k-anonymity", figure1CSV(t))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing tuple: status = %d", rec.Code)
	}
}
