package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"vadasa"
	"vadasa/internal/dist"
	"vadasa/internal/govern"
	"vadasa/internal/jobs"
	"vadasa/internal/risk"
)

// server carries the handler state. A fresh framework per request keeps
// requests isolated (categorization registers datasets in the dictionary).
// The zero value of every tuning field selects a production-safe default.
type server struct {
	newFramework func() (*vadasa.Framework, error)

	// requestTimeout is the per-request wall-clock budget attached to the
	// request context by the deadline middleware (0 = defaultRequestTimeout,
	// negative = no deadline).
	requestTimeout time.Duration
	// maxBody caps the request body size in bytes (0 = 64 MiB).
	maxBody int64
	// budgetCeiling caps the ?budget= engine work budget a client may ask
	// for (0 = defaultBudgetCeiling).
	budgetCeiling int64
	// inflight, when non-nil, is the concurrency-limiting semaphore; its
	// capacity is the -max-inflight flag.
	inflight chan struct{}
	// logf overrides log.Printf in tests; nil logs normally.
	logf func(format string, args ...any)
	// extraMeasures lets tests register fault-injection measures (slow,
	// panicking) without widening the production query surface. Never set
	// outside tests.
	extraMeasures map[string]func() vadasa.RiskMeasure
	// jobs, when non-nil, enables the asynchronous job API (-job-dir);
	// jobDir is where inputs, outputs and journals live.
	jobs   *jobs.Manager
	jobDir string
	// govern, when non-nil, is the server-wide resource governor: every
	// request and job runs under a child scope of it, and /readyz turns
	// not-ready while any of its budgets are saturated.
	govern *govern.Governor
	// maxCells caps rows×columns of a decoded CSV (0 = defaultMaxCells,
	// negative = disabled). Oversized datasets are refused with 413
	// before any parsing or categorization work is spent on them.
	maxCells int64
	// recovering is set while startup job recovery replays journals in
	// the background; /readyz answers 503 until it clears.
	recovering atomic.Bool
	// dist, when non-nil, is the shard-worker supervisor: incremental
	// risk re-scoring fans out to vadasaw processes, and /readyz reports
	// degraded (200) when none are healthy but in-process fallback still
	// serves — or 503 with Retry-After under -require-workers.
	dist *dist.Supervisor
	// streams, when non-nil, enables the crash-consistent streaming
	// anonymization API (-stream-dir): journaled ingestion windows with
	// gated, exactly-once releases.
	streams *streamRegistry
	// repl, when non-nil, is the warm-standby replication wiring
	// (-repl-role): a primary ships every journal append to its peers
	// and refuses writes once fenced; a standby mirrors, serves
	// read-only releases, and can be promoted in place.
	repl *replState
}

// defaultBudgetCeiling matches the engine's own MaxWork default: clients may
// lower the join budget per request, never raise it past the server cap.
const defaultBudgetCeiling = 1_000_000_000

// defaultMaxCells bounds rows×columns of a decoded CSV when the operator
// sets nothing: ten million cells is far beyond any interactive dataset but
// well below what would stall the categorizer and the risk measures.
const defaultMaxCells = 10_000_000

func (s *server) bodyLimit() int64 {
	if s.maxBody > 0 {
		return s.maxBody
	}
	return 64 << 20
}

func (s *server) cellCap() int64 {
	switch {
	case s.maxCells > 0:
		return s.maxCells
	case s.maxCells < 0:
		return 0 // disabled
	}
	return defaultMaxCells
}

func (s *server) budgetCap() int64 {
	if s.budgetCeiling > 0 {
		return s.budgetCeiling
	}
	return defaultBudgetCeiling
}

func (s *server) logPrintf(format string, args ...any) {
	if s.logf != nil {
		s.logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// routes assembles the mux and the hardening middleware around it: panic
// recovery outermost (it must catch everything), then load shedding, then
// the per-request deadline, then the per-request resource scope (innermost,
// so its lifetime matches the handler exactly).
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /measures", s.handleMeasures)
	mux.HandleFunc("POST /categorize", s.handleCategorize)
	mux.HandleFunc("POST /assess", s.handleAssess)
	mux.HandleFunc("POST /anonymize", s.handleAnonymize)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("POST /lint", s.handleLint)
	mux.HandleFunc("POST /reason", s.handleReason)
	if s.jobs != nil {
		s.jobRoutes(mux)
	}
	if s.streams != nil {
		s.streamRoutes(mux)
	}
	if s.repl != nil {
		s.replRoutes(mux)
	}
	return s.withRecovery(s.withLimit(s.withDeadline(s.withGovern(s.withRepl(mux)))))
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: distinct from liveness, it reports
// whether the daemon should receive NEW traffic right now. It answers 503
// while startup recovery is still replaying job journals (serving before
// that would race resumed jobs against fresh submissions for the same
// budgets) and while any governor budget is saturated (new work would only
// be refused with 503s anyway — better to tell the load balancer up front).
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.recovering.Load() {
		w.Header().Set("Retry-After", "5")
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "recovering", "reason": "replaying job journals",
		})
		return
	}
	if err := s.govern.Err(); err != nil {
		w.Header().Set("Retry-After", "15")
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "saturated", "reason": err.Error(),
		})
		return
	}
	if s.repl.servingStandby() {
		// A healthy standby is "ready" for what it serves (mirrored
		// reads) — but a diverged one is lying about the primary's state
		// and must be pulled from rotation until an operator rebuilds it.
		if d := s.repl.standby.Diverged(); len(d) > 0 {
			w.Header().Set("Retry-After", "60")
			s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "diverged", "reason": "mirrored state contradicts the primary's digests",
				"diverged": d, "standby": true,
			})
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]any{"status": "standby", "standby": true})
		return
	}
	if s.repl != nil && s.repl.primary != nil {
		// Fenced (demoted) or lagging past -repl-lag-max: this node should
		// not receive new writes.
		if err := s.repl.primary.ReadyErr(); err != nil {
			w.Header().Set("Retry-After", "5")
			s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "replication", "reason": err.Error(),
			})
			return
		}
	}
	if s.dist != nil && s.dist.Degraded() {
		// Degraded is not down: with in-process fallback the service still
		// completes every job, just without worker isolation — 200 so load
		// balancers keep routing, with the status visible to operators.
		// Under -require-workers the fallback is disabled, so degraded
		// really means "new work will be refused": 503 with Retry-After.
		body := map[string]any{
			"status": "degraded",
			"reason": "no healthy shard workers; serving in-process",
			"dist":   s.dist.Snapshot(),
		}
		if s.dist.RequiresWorkers() {
			body["reason"] = "no healthy shard workers and -require-workers is set"
			w.Header().Set("Retry-After", "5")
			s.writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
		s.writeJSON(w, http.StatusOK, body)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// distMeasure routes a measure's incremental re-scoring through the shard
// supervisor when one is configured and the measure can ship (it implements
// risk.IncrementalAssessor and is wire-encodable). Everything else — SUDA,
// cluster-wrapped, test doubles — passes through and runs locally, the same
// degradation the supervisor itself applies at runtime.
func (s *server) distMeasure(m vadasa.RiskMeasure) vadasa.RiskMeasure {
	if s.dist == nil {
		return m
	}
	inc, ok := m.(risk.IncrementalAssessor)
	if !ok {
		return m
	}
	da, err := dist.NewAssessor(inc, s.dist)
	if err != nil {
		return m
	}
	return da
}

func (s *server) handleMeasures(w http.ResponseWriter, r *http.Request) {
	f, err := s.newFramework()
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string][]string{"measures": f.MeasureNames()})
}

// loadDataset reads the request body as CSV and categorizes attributes,
// honouring the id/qi/weight query overrides and the ?budget= engine cap.
func (s *server) loadDataset(w http.ResponseWriter, r *http.Request) (*vadasa.Framework, *vadasa.Dataset, *vadasa.CategorizationResult, error) {
	f, err := s.newFramework()
	if err != nil {
		return nil, nil, nil, err
	}
	if err := s.applyBudget(f, r.URL.Query()); err != nil {
		return nil, nil, nil, err
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.bodyLimit()))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("reading body: %w", err)
	}
	// The raw body is the floor of what this request will hold in memory;
	// charging it up front makes admission fail fast instead of deep in
	// the engine. The request scope releases it when the response is done.
	if err := govern.From(r.Context()).Reserve(govern.Memory, int64(len(body))); err != nil {
		return nil, nil, nil, err
	}
	d, report, err := buildDataset(f, body, r.URL.Query(), s.cellCap())
	if err != nil {
		return nil, nil, nil, err
	}
	return f, d, report, nil
}

// cellLimitError reports a CSV whose rows×columns product exceeds the
// server's -max-cells guard. It maps to 413 like an oversized body: the
// bytes may fit, but the decoded table would not.
type cellLimitError struct {
	rows, cols, limit int64
}

func (e *cellLimitError) Error() string {
	return fmt.Sprintf("dataset of %d rows × %d columns = %d cells exceeds the %d-cell limit (-max-cells)",
		e.rows, e.cols, e.rows*e.cols, e.limit)
}

// applyBudget validates and applies the ?budget= engine work cap.
func (s *server) applyBudget(f *vadasa.Framework, q url.Values) error {
	budget, err := int64Value(q, "budget", 0)
	if err != nil {
		return err
	}
	if budget < 0 {
		return fmt.Errorf("budget must be positive, got %d", budget)
	}
	if budget > s.budgetCap() {
		return fmt.Errorf("budget %d exceeds the server ceiling of %d", budget, s.budgetCap())
	}
	if budget > 0 {
		f.SetReasonerBudget(budget)
	}
	return nil
}

// buildDataset categorizes and parses a CSV body under query-style options \u2014
// shared between the synchronous handlers (live request) and the job runner
// (parameters replayed from the journal). Header names are cleaned of a
// UTF-8 BOM and surrounding whitespace before categorization, so exports
// from spreadsheet tools categorize the same as clean CSVs. maxCells, when
// positive, bounds the decoded table's rows\u00d7columns \u2014 checked by counting
// newlines before any parsing work is spent on an oversized body.
func buildDataset(f *vadasa.Framework, body []byte, q url.Values, maxCells int64) (*vadasa.Dataset, *vadasa.CategorizationResult, error) {
	if len(body) == 0 {
		return nil, nil, fmt.Errorf("empty body; POST a CSV with a header row")
	}
	header, rest, ok := strings.Cut(string(body), "\n")
	if !ok {
		return nil, nil, fmt.Errorf("body has no data rows")
	}
	header = strings.TrimPrefix(header, "\ufeff")
	names := strings.Split(strings.TrimRight(header, "\r"), ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	if maxCells > 0 {
		rows := int64(strings.Count(rest, "\n"))
		if !strings.HasSuffix(rest, "\n") {
			rows++ // final row without a trailing newline
		}
		if cells := rows * int64(len(names)); cells > maxCells {
			return nil, nil, &cellLimitError{rows: rows, cols: int64(len(names)), limit: maxCells}
		}
	}

	overrides := map[string]vadasa.Category{}
	for _, n := range splitValues(q, "id") {
		overrides[n] = vadasa.Identifier
	}
	for _, n := range splitValues(q, "qi") {
		overrides[n] = vadasa.QuasiIdentifier
	}
	for _, n := range splitValues(q, "weight") {
		overrides[n] = vadasa.Weight
	}
	for _, n := range splitValues(q, "plain") {
		overrides[n] = vadasa.NonIdentifying
	}

	attrs := make([]vadasa.Attribute, len(names))
	var toInfer []string
	for i, n := range names {
		attrs[i] = vadasa.Attribute{Name: n, Category: vadasa.NonIdentifying}
		if c, ok := overrides[n]; ok {
			attrs[i].Category = c
		} else {
			toInfer = append(toInfer, n)
		}
	}
	tmp := vadasa.NewDataset("request", toAttrs(toInfer))
	report, err := f.Register(tmp)
	if err != nil {
		return nil, nil, err
	}
	for i := range attrs {
		if c, ok := report.Categories[attrs[i].Name]; ok {
			if _, manual := overrides[attrs[i].Name]; !manual {
				attrs[i].Category = c
			}
		}
	}
	// Re-assemble the CSV with the cleaned header line so the schema check
	// in ReadCSV sees the same names categorization did.
	cleaned := strings.Join(names, ",") + "\n" + rest
	d, err := vadasa.ReadCSV(strings.NewReader(cleaned), "request", attrs)
	if err != nil {
		return nil, nil, err
	}
	return d, report, nil
}

func toAttrs(names []string) []vadasa.Attribute {
	attrs := make([]vadasa.Attribute, len(names))
	for i, n := range names {
		attrs[i] = vadasa.Attribute{Name: n}
	}
	return attrs
}

func splitValues(q url.Values, key string) []string {
	v := q.Get(key)
	if v == "" {
		return nil
	}
	parts := strings.Split(v, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (s *server) handleCategorize(w http.ResponseWriter, r *http.Request) {
	_, d, report, err := s.loadDataset(w, r)
	if err != nil {
		s.failRequest(w, http.StatusBadRequest, err)
		return
	}
	type attrOut struct {
		Name        string `json:"name"`
		Category    string `json:"category"`
		Explanation string `json:"explanation,omitempty"`
	}
	out := struct {
		Attributes []attrOut `json:"attributes"`
		Conflicts  []string  `json:"conflicts,omitempty"`
		Unknown    []string  `json:"unknown,omitempty"`
	}{}
	for _, a := range d.Attrs {
		out.Attributes = append(out.Attributes, attrOut{
			Name:        a.Name,
			Category:    a.Category.String(),
			Explanation: report.Explanations[a.Name],
		})
	}
	for _, c := range report.Conflicts {
		out.Conflicts = append(out.Conflicts, c.String())
	}
	out.Unknown = report.Unknown
	s.writeJSON(w, http.StatusOK, out)
}

// measureFromValues builds the risk measure from query-style parameters —
// live request query or journal-replayed job params. Test-only
// fault-injection measures registered in extraMeasures take precedence.
func (s *server) measureFromValues(q url.Values) (vadasa.RiskMeasure, error) {
	name := q.Get("measure")
	if name == "" {
		name = "k-anonymity"
	}
	if factory, ok := s.extraMeasures[name]; ok {
		return factory(), nil
	}
	k, err := intValue(q, "k", 2)
	if err != nil {
		return nil, err
	}
	msu, err := intValue(q, "msu", 3)
	if err != nil {
		return nil, err
	}
	switch name {
	case "re-identification":
		return vadasa.ReIdentification{}, nil
	case "k-anonymity":
		return vadasa.KAnonymity{K: k}, nil
	case "individual-risk":
		return vadasa.IndividualRisk{Estimator: vadasa.PosteriorEstimator}, nil
	case "suda":
		return vadasa.SUDA{Threshold: msu}, nil
	case "l-diversity":
		sens := q.Get("sensitive")
		if sens == "" {
			return nil, fmt.Errorf("l-diversity needs the sensitive query parameter")
		}
		return vadasa.LDiversity{L: k, Sensitive: sens}, nil
	case "t-closeness":
		sens := q.Get("sensitive")
		if sens == "" {
			return nil, fmt.Errorf("t-closeness needs the sensitive query parameter")
		}
		tv, err := floatValue(q, "t", 0.3)
		if err != nil {
			return nil, err
		}
		return vadasa.TCloseness{T: tv, Sensitive: sens}, nil
	default:
		return nil, fmt.Errorf("unknown measure %q", name)
	}
}

func intValue(q url.Values, key string, def int) (int, error) {
	v := q.Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s parameter %q", key, v)
	}
	return n, nil
}

func int64Value(q url.Values, key string, def int64) (int64, error) {
	v := q.Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s parameter %q", key, v)
	}
	return n, nil
}

func floatValue(q url.Values, key string, def float64) (float64, error) {
	v := q.Get(key)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s parameter %q", key, v)
	}
	return f, nil
}

func (s *server) handleAssess(w http.ResponseWriter, r *http.Request) {
	f, d, _, err := s.loadDataset(w, r)
	if err != nil {
		s.failRequest(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.measureFromValues(r.URL.Query())
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	threshold, err := floatValue(r.URL.Query(), "threshold", 0.5)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	risks, err := f.AssessRiskContext(r.Context(), d, m)
	if err != nil {
		s.failRequest(w, http.StatusUnprocessableEntity, err)
		return
	}
	summary := vadasa.SummarizeRisks(risks, threshold)
	var risky []int
	for i, rr := range risks {
		if rr > threshold {
			risky = append(risky, d.Rows[i].ID)
		}
	}
	s.writeJSON(w, http.StatusOK, struct {
		Measure string             `json:"measure"`
		Tuples  int                `json:"tuples"`
		Summary vadasa.RiskSummary `json:"summary"`
		Risky   []int              `json:"riskyTupleIds"`
	}{m.Name(), len(d.Rows), summary, risky})
}

func (s *server) handleAnonymize(w http.ResponseWriter, r *http.Request) {
	f, d, _, err := s.loadDataset(w, r)
	if err != nil {
		s.failRequest(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.measureFromValues(r.URL.Query())
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	threshold, err := floatValue(r.URL.Query(), "threshold", 0.5)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := f.AnonymizeContext(r.Context(), d, vadasa.CycleOptions{
		Measure:     s.distMeasure(m),
		Threshold:   threshold,
		UseRecoding: r.URL.Query().Get("recode") == "true",
	})
	if err != nil {
		s.failRequest(w, http.StatusUnprocessableEntity, err)
		return
	}
	var csvBuf bytes.Buffer
	if err := vadasa.WriteCSV(&csvBuf, res.Dataset); err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	var decisions []string
	for _, dec := range res.Decisions {
		decisions = append(decisions, dec.String())
	}
	rep, err := vadasa.CompareUtility(d, res.Dataset)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, struct {
		CSV             string   `json:"csv"`
		Iterations      int      `json:"iterations"`
		NullsInjected   int      `json:"nullsInjected"`
		InfoLoss        float64  `json:"infoLoss"`
		Residual        []int    `json:"residualTupleIds"`
		Decisions       []string `json:"decisions"`
		SuppressionRate float64  `json:"suppressionRate"`
		MinGroupSize    int      `json:"minGroupSizeAfter"`
	}{
		csvBuf.String(), res.Iterations, res.NullsInjected, res.InfoLoss,
		res.Residual, decisions, rep.SuppressionRate, rep.MinGroupSizeAfter,
	})
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	f, d, _, err := s.loadDataset(w, r)
	if err != nil {
		s.failRequest(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.measureFromValues(r.URL.Query())
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	tuple, err := intValue(r.URL.Query(), "tuple", 0)
	if err != nil || tuple == 0 {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("the tuple query parameter is required"))
		return
	}
	ex, err := f.ExplainRiskContext(r.Context(), d, m, tuple)
	if err != nil {
		s.failRequest(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"explanation": ex})
}

// writeJSON encodes v as the response. Encoding failures after the status
// line has gone out cannot be reported to the client anymore, but they must
// not vanish either — they are logged for the operator.
func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		s.logPrintf("vadasad: encoding %d response: %v", status, err)
	}
}

// httpError reports err as a JSON error body. If the handler already started
// streaming a response (tracked by the recovery middleware's writer), a
// second WriteHeader would corrupt the stream — log and give up instead.
func (s *server) httpError(w http.ResponseWriter, status int, err error) {
	if tw, ok := w.(*trackingWriter); ok && tw.wroteHeader {
		s.logPrintf("vadasad: error after response started (status %d already sent): %v", tw.status, err)
		return
	}
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}
