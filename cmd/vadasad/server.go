package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"vadasa"
)

// server carries the handler state. A fresh framework per request keeps
// requests isolated (categorization registers datasets in the dictionary).
type server struct {
	newFramework func() (*vadasa.Framework, error)
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /measures", s.handleMeasures)
	mux.HandleFunc("POST /categorize", s.handleCategorize)
	mux.HandleFunc("POST /assess", s.handleAssess)
	mux.HandleFunc("POST /anonymize", s.handleAnonymize)
	mux.HandleFunc("POST /explain", s.handleExplain)
	return mux
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleMeasures(w http.ResponseWriter, r *http.Request) {
	f, err := s.newFramework()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"measures": f.MeasureNames()})
}

// loadDataset reads the request body as CSV and categorizes attributes,
// honouring the id/qi/weight query overrides.
func (s *server) loadDataset(r *http.Request) (*vadasa.Framework, *vadasa.Dataset, *vadasa.CategorizationResult, error) {
	f, err := s.newFramework()
	if err != nil {
		return nil, nil, nil, err
	}
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 64<<20))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("reading body: %w", err)
	}
	if len(body) == 0 {
		return nil, nil, nil, fmt.Errorf("empty body; POST a CSV with a header row")
	}
	header, _, ok := strings.Cut(string(body), "\n")
	if !ok {
		return nil, nil, nil, fmt.Errorf("body has no data rows")
	}
	names := strings.Split(strings.TrimRight(header, "\r"), ",")

	overrides := map[string]vadasa.Category{}
	for _, n := range splitParam(r, "id") {
		overrides[n] = vadasa.Identifier
	}
	for _, n := range splitParam(r, "qi") {
		overrides[n] = vadasa.QuasiIdentifier
	}
	for _, n := range splitParam(r, "weight") {
		overrides[n] = vadasa.Weight
	}
	for _, n := range splitParam(r, "plain") {
		overrides[n] = vadasa.NonIdentifying
	}

	attrs := make([]vadasa.Attribute, len(names))
	var toInfer []string
	for i, n := range names {
		attrs[i] = vadasa.Attribute{Name: n, Category: vadasa.NonIdentifying}
		if c, ok := overrides[n]; ok {
			attrs[i].Category = c
		} else {
			toInfer = append(toInfer, n)
		}
	}
	tmp := vadasa.NewDataset("request", toAttrs(toInfer))
	report, err := f.Register(tmp)
	if err != nil {
		return nil, nil, nil, err
	}
	for i := range attrs {
		if c, ok := report.Categories[attrs[i].Name]; ok {
			if _, manual := overrides[attrs[i].Name]; !manual {
				attrs[i].Category = c
			}
		}
	}
	d, err := vadasa.ReadCSV(bytes.NewReader(body), "request", attrs)
	if err != nil {
		return nil, nil, nil, err
	}
	return f, d, report, nil
}

func toAttrs(names []string) []vadasa.Attribute {
	attrs := make([]vadasa.Attribute, len(names))
	for i, n := range names {
		attrs[i] = vadasa.Attribute{Name: n}
	}
	return attrs
}

func splitParam(r *http.Request, key string) []string {
	v := r.URL.Query().Get(key)
	if v == "" {
		return nil
	}
	parts := strings.Split(v, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (s *server) handleCategorize(w http.ResponseWriter, r *http.Request) {
	_, d, report, err := s.loadDataset(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	type attrOut struct {
		Name        string `json:"name"`
		Category    string `json:"category"`
		Explanation string `json:"explanation,omitempty"`
	}
	out := struct {
		Attributes []attrOut `json:"attributes"`
		Conflicts  []string  `json:"conflicts,omitempty"`
		Unknown    []string  `json:"unknown,omitempty"`
	}{}
	for _, a := range d.Attrs {
		out.Attributes = append(out.Attributes, attrOut{
			Name:        a.Name,
			Category:    a.Category.String(),
			Explanation: report.Explanations[a.Name],
		})
	}
	for _, c := range report.Conflicts {
		out.Conflicts = append(out.Conflicts, c.String())
	}
	out.Unknown = report.Unknown
	writeJSON(w, http.StatusOK, out)
}

// measureFromQuery builds the risk measure from query parameters.
func measureFromQuery(r *http.Request) (vadasa.RiskMeasure, error) {
	name := r.URL.Query().Get("measure")
	if name == "" {
		name = "k-anonymity"
	}
	k, err := intParam(r, "k", 2)
	if err != nil {
		return nil, err
	}
	msu, err := intParam(r, "msu", 3)
	if err != nil {
		return nil, err
	}
	switch name {
	case "re-identification":
		return vadasa.ReIdentification{}, nil
	case "k-anonymity":
		return vadasa.KAnonymity{K: k}, nil
	case "individual-risk":
		return vadasa.IndividualRisk{Estimator: vadasa.PosteriorEstimator}, nil
	case "suda":
		return vadasa.SUDA{Threshold: msu}, nil
	case "l-diversity":
		sens := r.URL.Query().Get("sensitive")
		if sens == "" {
			return nil, fmt.Errorf("l-diversity needs the sensitive query parameter")
		}
		return vadasa.LDiversity{L: k, Sensitive: sens}, nil
	case "t-closeness":
		sens := r.URL.Query().Get("sensitive")
		if sens == "" {
			return nil, fmt.Errorf("t-closeness needs the sensitive query parameter")
		}
		tv, err := floatParam(r, "t", 0.3)
		if err != nil {
			return nil, err
		}
		return vadasa.TCloseness{T: tv, Sensitive: sens}, nil
	default:
		return nil, fmt.Errorf("unknown measure %q", name)
	}
}

func intParam(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s parameter %q", key, v)
	}
	return n, nil
}

func floatParam(r *http.Request, key string, def float64) (float64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s parameter %q", key, v)
	}
	return f, nil
}

func (s *server) handleAssess(w http.ResponseWriter, r *http.Request) {
	f, d, _, err := s.loadDataset(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	m, err := measureFromQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	threshold, err := floatParam(r, "threshold", 0.5)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	risks, err := f.AssessRisk(d, m)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	summary := vadasa.SummarizeRisks(risks, threshold)
	var risky []int
	for i, rr := range risks {
		if rr > threshold {
			risky = append(risky, d.Rows[i].ID)
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Measure string             `json:"measure"`
		Tuples  int                `json:"tuples"`
		Summary vadasa.RiskSummary `json:"summary"`
		Risky   []int              `json:"riskyTupleIds"`
	}{m.Name(), len(d.Rows), summary, risky})
}

func (s *server) handleAnonymize(w http.ResponseWriter, r *http.Request) {
	f, d, _, err := s.loadDataset(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	m, err := measureFromQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	threshold, err := floatParam(r, "threshold", 0.5)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := f.Anonymize(d, vadasa.CycleOptions{
		Measure:     m,
		Threshold:   threshold,
		UseRecoding: r.URL.Query().Get("recode") == "true",
	})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	var csvBuf bytes.Buffer
	if err := vadasa.WriteCSV(&csvBuf, res.Dataset); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	var decisions []string
	for _, dec := range res.Decisions {
		decisions = append(decisions, dec.String())
	}
	rep, err := vadasa.CompareUtility(d, res.Dataset)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		CSV             string   `json:"csv"`
		Iterations      int      `json:"iterations"`
		NullsInjected   int      `json:"nullsInjected"`
		InfoLoss        float64  `json:"infoLoss"`
		Residual        []int    `json:"residualTupleIds"`
		Decisions       []string `json:"decisions"`
		SuppressionRate float64  `json:"suppressionRate"`
		MinGroupSize    int      `json:"minGroupSizeAfter"`
	}{
		csvBuf.String(), res.Iterations, res.NullsInjected, res.InfoLoss,
		res.Residual, decisions, rep.SuppressionRate, rep.MinGroupSizeAfter,
	})
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	f, d, _, err := s.loadDataset(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	m, err := measureFromQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tuple, err := intParam(r, "tuple", 0)
	if err != nil || tuple == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("the tuple query parameter is required"))
		return
	}
	ex, err := f.ExplainRisk(d, m, tuple)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"explanation": ex})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
