package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"vadasa/internal/risk"
)

// statusClientClosedRequest is the de-facto standard (nginx) status for a
// request whose client went away before the response was produced. It never
// reaches the disconnected client; it makes access logs and metrics
// distinguish "we were slow" (503) from "they hung up" (499).
const statusClientClosedRequest = 499

// trackingWriter wraps the ResponseWriter so error paths can tell whether a
// handler already started streaming a response: writing a second status line
// onto a half-sent body corrupts the stream, so httpError logs and gives up
// instead.
type trackingWriter struct {
	http.ResponseWriter
	wroteHeader bool
	status      int
}

func (t *trackingWriter) WriteHeader(code int) {
	if t.wroteHeader {
		return
	}
	t.wroteHeader = true
	t.status = code
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(b []byte) (int, error) {
	if !t.wroteHeader {
		t.wroteHeader = true
		t.status = http.StatusOK
	}
	return t.ResponseWriter.Write(b)
}

// Unwrap supports http.ResponseController pass-through (deadlines, flush).
func (t *trackingWriter) Unwrap() http.ResponseWriter { return t.ResponseWriter }

// withRecovery turns a panicking handler into a logged 500 instead of a dead
// daemon: one pathological dataset (or a buggy plug-in measure) must not
// take the service down for every other analyst. http.ErrAbortHandler is
// re-raised — it is the sanctioned way to abort a response.
func (s *server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.logPrintf("vadasad: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				s.httpError(tw, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// withLimit bounds the number of in-flight requests with a semaphore and
// sheds the excess with 429 + Retry-After rather than queueing unboundedly.
// The liveness probe is exempt: an overloaded server is still alive, and
// orchestrators must be able to see that.
func (s *server) withLimit(next http.Handler) http.Handler {
	if s.inflight == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			s.httpError(w, http.StatusTooManyRequests,
				fmt.Errorf("server at capacity (%d requests in flight); retry shortly", cap(s.inflight)))
		}
	})
}

// withDeadline attaches the per-request wall-clock budget to the request
// context. Handlers thread this context down to the risk measures, the
// anonymization cycle and the reasoning engine, so the deadline bounds the
// CPU a single request can consume — the engine's work budget bounds joins,
// this bounds everything else.
func (s *server) withDeadline(next http.Handler) http.Handler {
	if s.requestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// statusForError maps failure causes that carry their own semantics onto the
// right status code, falling back to the handler's default otherwise:
// oversized bodies are 413, a blown request deadline is 503 (the server gave
// up, the client may retry later), a client disconnect is 499, and a dataset
// whose quasi-identifier set exceeds a combinatorial measure's limit is 422
// (the request is well-formed; this data cannot be evaluated that way).
func statusForError(err error, fallback int) int {
	var tooBig *http.MaxBytesError
	var tooMany *risk.ErrTooManyAttributes
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.As(err, &tooMany):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	}
	return fallback
}

// failRequest reports a handler error, upgrading the status for cancellation
// and size-cap causes and prefixing those with an operator-friendly hint.
func (s *server) failRequest(w http.ResponseWriter, fallback int, err error) {
	status := statusForError(err, fallback)
	switch status {
	case http.StatusServiceUnavailable:
		err = fmt.Errorf("request deadline exceeded (raise -request-timeout or shrink the dataset): %w", err)
	case statusClientClosedRequest:
		err = fmt.Errorf("client cancelled the request: %w", err)
	case http.StatusRequestEntityTooLarge:
		err = fmt.Errorf("request body exceeds the %d-byte limit: %w", s.bodyLimit(), err)
	}
	s.httpError(w, status, err)
}

// defaultRequestTimeout bounds a request when the operator sets nothing: a
// generous interactive budget.
const defaultRequestTimeout = 30 * time.Second
