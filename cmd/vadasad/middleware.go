package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"syscall"
	"time"

	"vadasa/internal/dist"
	"vadasa/internal/govern"
	"vadasa/internal/replica"
	"vadasa/internal/risk"
)

// statusClientClosedRequest is the de-facto standard (nginx) status for a
// request whose client went away before the response was produced. It never
// reaches the disconnected client; it makes access logs and metrics
// distinguish "we were slow" (503) from "they hung up" (499).
const statusClientClosedRequest = 499

// trackingWriter wraps the ResponseWriter so error paths can tell whether a
// handler already started streaming a response: writing a second status line
// onto a half-sent body corrupts the stream, so httpError logs and gives up
// instead.
type trackingWriter struct {
	http.ResponseWriter
	wroteHeader bool
	status      int
}

func (t *trackingWriter) WriteHeader(code int) {
	if t.wroteHeader {
		return
	}
	t.wroteHeader = true
	t.status = code
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(b []byte) (int, error) {
	if !t.wroteHeader {
		t.wroteHeader = true
		t.status = http.StatusOK
	}
	return t.ResponseWriter.Write(b)
}

// Unwrap supports http.ResponseController pass-through (deadlines, flush).
func (t *trackingWriter) Unwrap() http.ResponseWriter { return t.ResponseWriter }

// withRecovery turns a panicking handler into a logged 500 instead of a dead
// daemon: one pathological dataset (or a buggy plug-in measure) must not
// take the service down for every other analyst. http.ErrAbortHandler is
// re-raised — it is the sanctioned way to abort a response.
func (s *server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.logPrintf("vadasad: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				s.httpError(tw, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// probePath reports whether the request is a liveness or readiness probe.
// Probes are exempt from load shedding and resource scoping: an overloaded
// server is still alive, and an orchestrator deciding whether to route
// traffic here must be able to ask — especially while we are saturated.
func probePath(r *http.Request) bool {
	return r.URL.Path == "/healthz" || r.URL.Path == "/readyz"
}

// withLimit bounds the number of in-flight requests with a semaphore and
// sheds the excess with 429 + Retry-After rather than queueing unboundedly.
func (s *server) withLimit(next http.Handler) http.Handler {
	if s.inflight == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if probePath(r) {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			s.httpError(w, http.StatusTooManyRequests,
				fmt.Errorf("server at capacity (%d requests in flight); retry shortly", cap(s.inflight)))
		}
	})
}

// withDeadline attaches the per-request wall-clock budget to the request
// context. Handlers thread this context down to the risk measures, the
// anonymization cycle and the reasoning engine, so the deadline bounds the
// CPU a single request can consume — the engine's work budget bounds joins,
// this bounds everything else.
func (s *server) withDeadline(next http.Handler) http.Handler {
	if s.requestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// withGovern opens a per-request child scope under the server governor and
// threads it through the request context, so every byte the handlers and the
// engine reserve rolls up to the server budget and is refunded when the
// response is done. Probes are exempt — they must answer even when the very
// thing they report on (saturation) is happening.
func (s *server) withGovern(next http.Handler) http.Handler {
	if s.govern == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if probePath(r) {
			next.ServeHTTP(w, r)
			return
		}
		g := s.govern.Child("request "+r.URL.Path, govern.Limits{})
		defer g.Close()
		next.ServeHTTP(w, r.WithContext(govern.With(r.Context(), g)))
	})
}

// statusForError maps failure causes that carry their own semantics onto the
// right status code, falling back to the handler's default otherwise:
// oversized bodies and cell-count violations are 413, a blown request
// deadline is 504 (the gateway-style "upstream work did not finish in time";
// the client may retry later), a client disconnect is 499, an exhausted
// resource budget is 503 (the server as a whole is over capacity, not this
// request), and a dataset whose quasi-identifier set exceeds a combinatorial
// measure's limit is 422 (the request is well-formed; this data cannot be
// evaluated that way).
func statusForError(err error, fallback int) int {
	var tooBig *http.MaxBytesError
	var tooMany *risk.ErrTooManyAttributes
	var tooWide *cellLimitError
	var overBudget *govern.ErrBudgetExceeded
	var fenced *replica.FencedError
	var syncFail *replica.SyncError
	switch {
	case errors.As(err, &fenced):
		// This node was demoted from primary: the request was fine, this
		// node must not serve it. Clients re-resolve the primary and retry.
		return http.StatusServiceUnavailable
	case errors.As(err, &syncFail):
		// Synchronous commit could not reach a standby; the record was
		// rolled back. Retryable once replication recovers.
		return http.StatusServiceUnavailable
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.As(err, &tooWide):
		return http.StatusRequestEntityTooLarge
	case errors.As(err, &tooMany):
		return http.StatusUnprocessableEntity
	case errors.As(err, &overBudget):
		return http.StatusServiceUnavailable
	case errors.Is(err, syscall.ENOSPC):
		// The journal (or release) volume is out of space: the request was
		// fine, the server cannot commit it durably right now.
		return http.StatusServiceUnavailable
	case errors.Is(err, dist.ErrDegraded), errors.Is(err, dist.ErrWorkerLost):
		// Only reachable with -require-workers: without it the supervisor
		// degrades to in-process scoring instead of failing the request.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	}
	return fallback
}

// failRequest reports a handler error, upgrading the status for cancellation
// and size-cap causes and prefixing those with an operator-friendly hint.
func (s *server) failRequest(w http.ResponseWriter, fallback int, err error) {
	status := statusForError(err, fallback)
	switch status {
	case http.StatusGatewayTimeout:
		err = fmt.Errorf("request deadline exceeded (raise -request-timeout or shrink the dataset): %w", err)
	case http.StatusServiceUnavailable:
		// Two distinct 503 causes for operators and clients: worker-fleet
		// degradation (workers may rejoin any moment — short Retry-After)
		// versus resource saturation (load has to drain first).
		var fenced *replica.FencedError
		var syncFail *replica.SyncError
		if errors.As(err, &fenced) {
			w.Header().Set("Retry-After", "5")
			err = fmt.Errorf("this node is no longer the primary (epoch superseded); retry against the current primary: %w", err)
		} else if errors.As(err, &syncFail) {
			w.Header().Set("Retry-After", "5")
			err = fmt.Errorf("synchronous replication could not reach a standby; the write was rolled back, retry shortly: %w", err)
		} else if errors.Is(err, dist.ErrDegraded) || errors.Is(err, dist.ErrWorkerLost) {
			w.Header().Set("Retry-After", "5")
			err = fmt.Errorf("shard workers unavailable and -require-workers is set; retry when workers rejoin: %w", err)
		} else if errors.Is(err, syscall.ENOSPC) {
			w.Header().Set("Retry-After", "15")
			err = fmt.Errorf("journal volume out of space; retry when the operator frees disk: %w", err)
		} else {
			w.Header().Set("Retry-After", "15")
			err = fmt.Errorf("server resource budget exhausted; retry when load drops: %w", err)
		}
	case statusClientClosedRequest:
		err = fmt.Errorf("client cancelled the request: %w", err)
	case http.StatusRequestEntityTooLarge:
		// The cell-limit error explains itself; only the opaque stdlib
		// body-cap error needs the limit spelled out.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			err = fmt.Errorf("request body exceeds the %d-byte limit: %w", s.bodyLimit(), err)
		}
	}
	s.httpError(w, status, err)
}

// defaultRequestTimeout bounds a request when the operator sets nothing: a
// generous interactive budget.
const defaultRequestTimeout = 30 * time.Second
