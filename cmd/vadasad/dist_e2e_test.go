package main

// End-to-end tests for sharded risk scoring behind the HTTP surface: the
// degraded-mode contract of /readyz and the request path (in-process
// fallback stays bit-identical; -require-workers turns degradation into a
// distinct 503), and the composed chaos run — a job crashed mid-cycle whose
// journal takes a torn tail through the fault filesystem, recovered by a
// server whose shard workers suffer a SIGKILL mid-task and a duplicated
// delivery, still releasing output bit-identical to the untouched control.

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vadasa"
	"vadasa/internal/dist"
	"vadasa/internal/faultfs"
	"vadasa/internal/jobs"
	"vadasa/internal/journal"
)

// workerEnv flips the test binary into a real vadasaw worker process, so the
// worker this package's chaos test SIGKILLs runs exactly the production
// WorkerMain loop.
const workerEnv = "VADASAW_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		os.Exit(dist.WorkerMain(os.Args[1:], os.Stdout))
	}
	os.Exit(m.Run())
}

func spawnWorker(t *testing.T, args ...string) *dist.Proc {
	t.Helper()
	argv := append([]string{"-addr=127.0.0.1:0", "-quiet"}, args...)
	p, err := dist.Spawn(os.Args[0], argv, []string{workerEnv + "=1"}, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Kill() })
	return p
}

// quickSup builds a supervisor with test-speed timings over the given
// transports.
func quickSup(t *testing.T, transports []dist.Transport, mutate func(*dist.Options)) *dist.Supervisor {
	t.Helper()
	opts := dist.Options{
		ShardSize:         50,
		LeaseTTL:          2 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		MaxAttempts:       5,
		RetryBase:         5 * time.Millisecond,
		RetryCap:          50 * time.Millisecond,
		Logf:              t.Logf,
	}
	if mutate != nil {
		mutate(&opts)
	}
	sup := dist.NewSupervisor(transports, opts)
	sup.Start()
	t.Cleanup(sup.Close)
	return sup
}

type anonResp struct {
	CSV           string `json:"csv"`
	Iterations    int    `json:"iterations"`
	NullsInjected int    `json:"nullsInjected"`
}

func syncAnonymize(t *testing.T, h http.Handler, csv string) anonResp {
	t.Helper()
	rec := do(t, h, "POST", "/anonymize?measure=k-anonymity&k=3&threshold=0.5", csv)
	if rec.Code != http.StatusOK {
		t.Fatalf("anonymize = %d: %s", rec.Code, rec.Body)
	}
	var out anonResp
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// With every worker down and no -require-workers, the server keeps serving:
// /readyz reports degraded with a 200 (load balancers keep routing), the
// anonymization falls back in-process, and the output is bit-identical to a
// server that never had workers configured.
func TestReadyzDegradedInProcessFallback(t *testing.T) {
	// One configured worker that was never started: every probe and call
	// fails, which is exactly the all-workers-down acceptance shape.
	sup := quickSup(t, []dist.Transport{dist.NewHTTPTransport("127.0.0.1:1", nil)}, nil)
	_, h := faultServer(t, nil, func(s *server) { s.dist = sup })

	deadline := time.Now().Add(5 * time.Second)
	for !sup.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("supervisor never noticed the dead worker")
		}
		time.Sleep(10 * time.Millisecond)
	}

	rec := do(t, h, "GET", "/readyz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 (degraded is not down): %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"degraded"`) {
		t.Fatalf("/readyz body does not report degraded: %s", rec.Body)
	}

	csv := generatedCSV(t)
	control := syncAnonymize(t, testServer(), csv)
	got := syncAnonymize(t, h, csv)
	if got.CSV != control.CSV || got.Iterations != control.Iterations {
		t.Fatalf("degraded in-process result differs from control (iterations %d vs %d)",
			got.Iterations, control.Iterations)
	}
	if sup.Snapshot().LocalFallbacks == 0 {
		t.Fatal("no local fallbacks recorded; the request did not exercise the degraded path")
	}
}

// Under -require-workers, degradation is a hard failure with its own
// signature: /readyz answers 503 with Retry-After, and requests needing
// shard workers fail 503 with Retry-After — distinguishable from the
// resource-saturation 503, which carries a different message.
func TestReadyzRequireWorkers503(t *testing.T) {
	sup := quickSup(t, nil, func(o *dist.Options) { o.RequireWorkers = true })
	_, h := faultServer(t, nil, func(s *server) { s.dist = sup })

	rec := do(t, h, "GET", "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d, want 503 under -require-workers: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("/readyz 503 without Retry-After")
	}
	if !strings.Contains(rec.Body.String(), `"degraded"`) {
		t.Fatalf("/readyz body does not report degraded: %s", rec.Body)
	}

	rec = do(t, h, "POST", "/anonymize?measure=k-anonymity&k=3&threshold=0.5", generatedCSV(t))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("anonymize = %d, want 503: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("degraded 503 without Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "workers") {
		t.Fatalf("degraded 503 not distinguishable from saturation: %s", rec.Body)
	}
}

// The composed chaos run. Phase 1 parks a job inside iteration 1 over the
// fault filesystem and crashes the manager; a torn half-record is then
// appended to the journal through faultfs, the shape an OS crash mid-append
// leaves behind. Phase 2 recovers on a server whose risk scoring is sharded
// across two worker processes — one SIGKILLed while it holds a lease, the
// other duplicating a delivery — and the released output must be
// bit-identical to the uninterrupted, worker-less control.
func TestChaosTornJournalKilledWorkerBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	dir := t.TempDir()
	csv := generatedCSV(t)
	control := syncAnonymize(t, testServer(), csv)
	if control.Iterations < 2 {
		t.Fatalf("control took %d iterations; dataset too easy for a chaos test", control.Iterations)
	}

	// Phase 1: run over faultfs, park inside iteration 1's assessment (the
	// iteration-0 checkpoint is committed), crash without a terminal record.
	faulty := faultfs.NewFaulty(faultfs.OS)
	gate := newGateMeasure(2)
	s1, h1 := jobsServer(t, dir, map[string]func() vadasa.RiskMeasure{
		"gate": func() vadasa.RiskMeasure { return gate },
	}, jobs.Options{Workers: 1, FS: faulty})
	rec := do(t, h1, "POST", "/jobs/anonymize?measure=gate&threshold=0.5", csv)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}
	id := decodeJob(t, rec.Body.String()).ID
	select {
	case <-gate.entered:
	case <-time.After(15 * time.Second):
		t.Fatal("cycle never reached the gated assessment")
	}
	s1.jobs.Close()

	// The crash tears a half-written record onto the journal tail, injected
	// through the fault filesystem so the bytes on disk are exactly what a
	// power cut mid-append produces.
	jpath := filepath.Join(dir, id+".journal")
	w, _, err := journal.OpenAppendWith(jpath, journal.Config{FS: faulty})
	if err != nil {
		t.Fatal(err)
	}
	faulty.TearWrite(1)
	if err := w.Append(journal.TypeIter, map[string]int{"iteration": 999}); err == nil {
		t.Fatal("torn append unexpectedly succeeded")
	}
	w.Close()
	scan, err := journal.ReadFileIn(faulty, jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !scan.Torn {
		t.Fatal("journal tail is not torn; the fault did not land")
	}

	// Phase 2: recover on a server with sharded scoring. The victim holds
	// every task for 500ms, so the SIGKILL below is guaranteed to land while
	// it owns a lease; the survivor duplicates its second delivery.
	victim := spawnWorker(t, "-hold=500ms")
	ft := dist.NewFaultTransport(spawnWorker(t).Transport())
	ft.DupCall(2)
	sup := quickSup(t, []dist.Transport{victim.Transport(), ft}, nil)

	s2, h2 := jobsServer(t, dir, map[string]func() vadasa.RiskMeasure{
		"gate": func() vadasa.RiskMeasure { return vadasa.KAnonymity{K: 3} },
	}, jobs.Options{Workers: 1, FS: faulty})
	s2.dist = sup
	resumed, err := s2.jobs.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 || resumed[0] != id {
		t.Fatalf("resumed = %v, want [%s]", resumed, id)
	}
	time.Sleep(250 * time.Millisecond)
	victim.Kill() // SIGKILL mid-task: the 500ms hold keeps its lease in flight

	j := waitJob(t, h2, id, jobs.StateDone)
	if !j.Recovered {
		t.Fatal("job not marked recovered")
	}
	rec = do(t, h2, "GET", "/jobs/"+id+"/result", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("result = %d: %s", rec.Code, rec.Body)
	}
	if rec.Body.String() != control.CSV {
		t.Fatal("chaos-recovered output differs from the uninterrupted control")
	}

	// The torn tail must be repaired and the journal terminal.
	scan, err = journal.ReadFileIn(faulty, jpath)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Torn {
		t.Fatal("torn tail survived recovery")
	}
	if scan.Last().Type != journal.TypeDone {
		t.Fatalf("journal last record = %q, want done", scan.Last().Type)
	}

	// The chaos actually happened: the killed worker's in-flight lease was
	// retried, and the duplicated delivery reached the survivor.
	st := sup.Snapshot()
	if st.Retries == 0 {
		t.Fatalf("no retries recorded; the SIGKILL landed after the work was done: %+v", st)
	}
	if ft.Calls() < 2 {
		t.Fatalf("survivor saw %d calls; the duplicated delivery never fired", ft.Calls())
	}
}
