package main

// End-to-end tests for the durable job API: a cycle killed mid-iteration is
// resumed from its journal and produces output identical to an uninterrupted
// run; transient assessor failures retry with backoff; permanent ones fail
// the job with the typed error visible in the status endpoint.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"vadasa"
	"vadasa/internal/jobs"
	"vadasa/internal/journal"
	"vadasa/internal/risk"
)

// jobsServer builds a server with the asynchronous job API enabled over dir.
func jobsServer(t *testing.T, dir string, measures map[string]func() vadasa.RiskMeasure, opts jobs.Options) (*server, http.Handler) {
	t.Helper()
	s := &server{
		newFramework:  func() (*vadasa.Framework, error) { return vadasa.New(), nil },
		logf:          t.Logf,
		extraMeasures: measures,
		jobDir:        dir,
	}
	opts.Dir = dir
	if opts.RetryBase == 0 {
		opts.RetryBase = time.Millisecond
		opts.RetryCap = 4 * time.Millisecond
	}
	mgr, err := jobs.NewManager(&jobRunner{srv: s}, opts)
	if err != nil {
		t.Fatal(err)
	}
	s.jobs = mgr
	t.Cleanup(mgr.Close)
	return s, s.routes()
}

// generatedCSV is an unbalanced dataset whose k-anonymization takes several
// iterations — enough journal records for a mid-run crash to be interesting.
func generatedCSV(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	d := vadasa.Generate(vadasa.GeneratorConfig{Tuples: 300, QIs: 4, Dist: vadasa.DistU, Seed: 23})
	if err := vadasa.WriteCSV(&b, d); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// decodeJob parses a job-status response body.
func decodeJob(t *testing.T, body string) jobs.Job {
	t.Helper()
	var j jobs.Job
	if err := json.Unmarshal([]byte(body), &j); err != nil {
		t.Fatalf("decoding job %q: %v", body, err)
	}
	return j
}

// waitJob polls the status endpoint until the job reaches want.
func waitJob(t *testing.T, h http.Handler, id string, want jobs.State) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec := do(t, h, "GET", "/jobs/"+id, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("status endpoint = %d: %s", rec.Code, rec.Body)
		}
		j := decodeJob(t, rec.Body.String())
		if j.State == want {
			return j
		}
		if j.State.Terminal() {
			t.Fatalf("job settled at %s (%q), want %s", j.State, j.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobs.Job{}
}

// gateMeasure wraps k-anonymity and blocks at the blockAt-th assessment
// until released or cancelled — the hook that parks a cycle mid-iteration so
// a test can kill the manager at a precise point.
type gateMeasure struct {
	inner   vadasa.RiskMeasure
	blockAt int
	entered chan struct{}
	release chan struct{}

	mu    sync.Mutex
	calls int
}

func newGateMeasure(blockAt int) *gateMeasure {
	return &gateMeasure{
		inner:   vadasa.KAnonymity{K: 3},
		blockAt: blockAt,
		entered: make(chan struct{}, 8),
		release: make(chan struct{}),
	}
}

func (g *gateMeasure) Name() string { return "gate" }

func (g *gateMeasure) Assess(d *vadasa.Dataset, sem vadasa.Semantics) ([]float64, error) {
	return g.AssessContext(context.Background(), d, sem)
}

func (g *gateMeasure) AssessContext(ctx context.Context, d *vadasa.Dataset, sem vadasa.Semantics) ([]float64, error) {
	g.mu.Lock()
	g.calls++
	n := g.calls
	g.mu.Unlock()
	if g.blockAt > 0 && n >= g.blockAt {
		select {
		case g.entered <- struct{}{}:
		default:
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-g.release:
		}
	}
	return g.inner.Assess(d, sem)
}

var _ vadasa.ContextRiskMeasure = (*gateMeasure)(nil)

// flakyMeasure fails its first `failures` assessments with a transient error
// — a remote assessor hiccuping — then behaves like k-anonymity.
type flakyMeasure struct {
	mu       sync.Mutex
	failures int
	calls    int
}

func (f *flakyMeasure) Name() string { return "flaky" }

func (f *flakyMeasure) Assess(d *vadasa.Dataset, sem vadasa.Semantics) ([]float64, error) {
	f.mu.Lock()
	f.calls++
	fail := f.failures > 0
	if fail {
		f.failures--
	}
	f.mu.Unlock()
	if fail {
		return nil, risk.MarkTransient(errors.New("injected assessor outage"))
	}
	return vadasa.KAnonymity{K: 2}.Assess(d, sem)
}

// brokenMeasure always fails with an unmarked (permanent) error.
type brokenMeasure struct {
	mu    sync.Mutex
	calls int
}

func (b *brokenMeasure) Name() string { return "broken" }

func (b *brokenMeasure) Assess(d *vadasa.Dataset, sem vadasa.Semantics) ([]float64, error) {
	b.mu.Lock()
	b.calls++
	b.mu.Unlock()
	return nil, errors.New("schema mismatch: no quasi-identifiers")
}

// TestJobCrashRecoveryIdenticalToUninterruptedRun is the acceptance test for
// the tentpole: a job killed mid-iteration (manager closed while the measure
// is parked inside an assessment) is resumed by a fresh manager over the
// same journal directory and must produce an anonymized dataset and decision
// count identical to a run that was never interrupted.
func TestJobCrashRecoveryIdenticalToUninterruptedRun(t *testing.T) {
	dir := t.TempDir()
	csv := generatedCSV(t)

	// Uninterrupted control via the synchronous endpoint, same measure.
	control := struct {
		CSV           string   `json:"csv"`
		Iterations    int      `json:"iterations"`
		NullsInjected int      `json:"nullsInjected"`
		InfoLoss      float64  `json:"infoLoss"`
		Decisions     []string `json:"decisions"`
	}{}
	rec := do(t, testServer(), "POST", "/anonymize?measure=k-anonymity&k=3&threshold=0.5", csv)
	if rec.Code != http.StatusOK {
		t.Fatalf("control run = %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &control); err != nil {
		t.Fatal(err)
	}
	if control.Iterations < 2 {
		t.Fatalf("control took %d iterations; dataset too easy for a crash test", control.Iterations)
	}

	// Phase 1: run the job, park it inside iteration 1's assessment (the
	// iteration-0 checkpoint is already journaled), and "crash".
	gate := newGateMeasure(2)
	s1, h1 := jobsServer(t, dir, map[string]func() vadasa.RiskMeasure{
		"gate": func() vadasa.RiskMeasure { return gate },
	}, jobs.Options{Workers: 1})
	rec = do(t, h1, "POST", "/jobs/anonymize?measure=gate&threshold=0.5", csv)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}
	id := decodeJob(t, rec.Body.String()).ID
	select {
	case <-gate.entered:
	case <-time.After(15 * time.Second):
		t.Fatal("cycle never reached the gated assessment")
	}
	s1.jobs.Close() // simulated crash: no terminal record may be written

	jpath := filepath.Join(dir, id+".journal")
	scan, err := journal.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Last().Type == journal.TypeDone {
		t.Fatal("crashed job has a terminal record")
	}
	committed := 0
	for _, r := range scan.Records {
		if r.Type == journal.TypeIter {
			committed++
		}
	}
	if committed < 1 {
		t.Fatalf("no iteration committed before the crash; gate fired too early")
	}

	// Phase 2: fresh server over the same directory; the gate no longer
	// blocks. Recovery must resume from the journal, not restart.
	s2, h2 := jobsServer(t, dir, map[string]func() vadasa.RiskMeasure{
		"gate": func() vadasa.RiskMeasure { return newGateMeasure(0) },
	}, jobs.Options{Workers: 1})
	resumed, err := s2.jobs.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 || resumed[0] != id {
		t.Fatalf("resumed = %v, want [%s]", resumed, id)
	}
	j := waitJob(t, h2, id, jobs.StateDone)
	if !j.Recovered {
		t.Fatal("job not marked recovered")
	}
	if j.Outcome == nil {
		t.Fatal("done job has no outcome")
	}

	// The resumed run must be indistinguishable from the control.
	if j.Outcome.Iterations != control.Iterations {
		t.Fatalf("iterations: resumed %d, control %d", j.Outcome.Iterations, control.Iterations)
	}
	if j.Outcome.NullsInjected != control.NullsInjected {
		t.Fatalf("nulls: resumed %d, control %d", j.Outcome.NullsInjected, control.NullsInjected)
	}
	if j.Outcome.InfoLoss != control.InfoLoss {
		t.Fatalf("info loss: resumed %g, control %g", j.Outcome.InfoLoss, control.InfoLoss)
	}
	if j.Outcome.Decisions != len(control.Decisions) {
		t.Fatalf("decisions: resumed %d, control %d", j.Outcome.Decisions, len(control.Decisions))
	}
	rec = do(t, h2, "GET", "/jobs/"+id+"/result", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("result = %d: %s", rec.Code, rec.Body)
	}
	if rec.Body.String() != control.CSV {
		t.Fatal("resumed job's CSV differs from the uninterrupted control run")
	}

	// The journal must now be terminal, with the total iteration count split
	// across the two processes — no re-journaled duplicates.
	scan, err = journal.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	iters := 0
	for _, r := range scan.Records {
		if r.Type == journal.TypeIter {
			iters++
		}
	}
	if scan.Last().Type != journal.TypeDone || iters != control.Iterations {
		t.Fatalf("final journal: last=%q, %d iter records, want done/%d", scan.Last().Type, iters, control.Iterations)
	}
}

// TestJobTransientFailureRetriesAndCompletes: an injected transient assessor
// outage must be retried with backoff and the job must still complete.
func TestJobTransientFailureRetriesAndCompletes(t *testing.T) {
	flaky := &flakyMeasure{failures: 2}
	_, h := jobsServer(t, t.TempDir(), map[string]func() vadasa.RiskMeasure{
		"flaky": func() vadasa.RiskMeasure { return flaky },
	}, jobs.Options{MaxAttempts: 5})
	rec := do(t, h, "POST", "/jobs/anonymize?measure=flaky&threshold=0.5", figure1CSV(t))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}
	j := waitJob(t, h, decodeJob(t, rec.Body.String()).ID, jobs.StateDone)
	if j.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two transient failures + success)", j.Attempts)
	}
	if j.Outcome == nil {
		t.Fatal("retried job has no outcome")
	}
}

// TestJobPermanentFailureNoRetry: a permanent failure must fail the job on
// the first attempt with the error visible in the status endpoint.
func TestJobPermanentFailureNoRetry(t *testing.T) {
	broken := &brokenMeasure{}
	_, h := jobsServer(t, t.TempDir(), map[string]func() vadasa.RiskMeasure{
		"broken": func() vadasa.RiskMeasure { return broken },
	}, jobs.Options{MaxAttempts: 5})
	rec := do(t, h, "POST", "/jobs/anonymize?measure=broken", figure1CSV(t))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}
	id := decodeJob(t, rec.Body.String()).ID
	j := waitJob(t, h, id, jobs.StateFailed)
	if j.Attempts != 1 {
		t.Fatalf("permanent failure burned %d attempts", j.Attempts)
	}
	if !strings.Contains(j.Error, "schema mismatch") {
		t.Fatalf("status error = %q", j.Error)
	}
	broken.mu.Lock()
	if broken.calls != 1 {
		t.Fatalf("measure ran %d times", broken.calls)
	}
	broken.mu.Unlock()
	// The result endpoint reports the failure, not a CSV.
	rec = do(t, h, "GET", "/jobs/"+id+"/result", "")
	if rec.Code != http.StatusGone {
		t.Fatalf("result of failed job = %d, want 410: %s", rec.Code, rec.Body)
	}
}

// TestJobEndpointsValidation covers the small contract points: submit
// validation, unknown ids, result-while-running, cancellation.
func TestJobEndpointsValidation(t *testing.T) {
	gate := newGateMeasure(1)
	_, h := jobsServer(t, t.TempDir(), map[string]func() vadasa.RiskMeasure{
		"gate": func() vadasa.RiskMeasure { return gate },
	}, jobs.Options{Workers: 1})

	if rec := do(t, h, "POST", "/jobs/anonymize?measure=nope", figure1CSV(t)); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown measure = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/jobs/anonymize", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty body = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "GET", "/jobs/deadbeef", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id = %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/jobs/deadbeef/cancel", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("cancel unknown id = %d", rec.Code)
	}

	rec := do(t, h, "POST", "/jobs/anonymize?measure=gate", figure1CSV(t))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}
	id := decodeJob(t, rec.Body.String()).ID
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	if rec := do(t, h, "GET", "/jobs/"+id+"/result", ""); rec.Code != http.StatusConflict {
		t.Fatalf("result while running = %d, want 409: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "GET", "/jobs", ""); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), id) {
		t.Fatalf("list = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/jobs/"+id+"/cancel", ""); rec.Code != http.StatusAccepted {
		t.Fatalf("cancel = %d: %s", rec.Code, rec.Body)
	}
	j := waitJob(t, h, id, jobs.StateCancelled)
	if j.Outcome != nil {
		t.Fatal("cancelled job has an outcome")
	}
	if rec := do(t, h, "POST", "/jobs/"+id+"/cancel", ""); rec.Code != http.StatusConflict {
		t.Fatalf("second cancel = %d, want 409", rec.Code)
	}
}

// TestAssessTooManyAttributes422: the SUDA attribute ceiling surfaces as a
// typed error mapped to 422 — the request is well-formed, the data just
// cannot be evaluated combinatorially.
func TestAssessTooManyAttributes422(t *testing.T) {
	var header []string
	var row []string
	for i := 0; i < 31; i++ {
		header = append(header, fmt.Sprintf("Q%d", i))
		row = append(row, "x")
	}
	csv := strings.Join(header, ",") + "\n" + strings.Join(row, ",") + "\n"
	target := "/assess?measure=suda&qi=" + strings.Join(header, ",")
	rec := do(t, testServer(), "POST", target, csv)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "at most 30 attributes") {
		t.Fatalf("body = %s, want the attribute-limit error", rec.Body)
	}
}
