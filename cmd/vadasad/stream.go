package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"path/filepath"
	"strings"
	"sync"

	"vadasa/internal/faultfs"
	"vadasa/internal/mdb"
	"vadasa/internal/stream"
)

// streamRegistry owns the server's open ingestion streams: one journaled
// stream.Stream per id under -stream-dir, created lazily by the first append
// and recovered from their WALs at startup. Closing the registry drains every
// stream (each writes its checkpoint record), which is what the SIGTERM path
// relies on.
type streamRegistry struct {
	srv          *server
	dir          string
	maxRows      int
	diskHeadroom int64

	mu      sync.Mutex
	streams map[string]*stream.Stream
	closed  bool
}

func newStreamRegistry(srv *server, dir string, maxRows int, diskHeadroom int64) *streamRegistry {
	return &streamRegistry{
		srv:          srv,
		dir:          dir,
		maxRows:      maxRows,
		diskHeadroom: diskHeadroom,
		streams:      make(map[string]*stream.Stream),
	}
}

// streamMeta is what the server journals in the create record's Meta field:
// the measure-defining query parameters, so startup recovery can rebuild the
// assessor without any state outside the WAL.
type streamMeta struct {
	Params string `json:"params"` // url.Values-encoded measure parameters
}

// recover reopens every stream journaled under the registry directory,
// completing any release interrupted between its intent and publish records.
// A stream whose WAL cannot be recovered is logged and skipped — one corrupt
// journal must not take down the streams that replay cleanly — and its id
// stays free of the registry so appends to it fail loudly rather than
// silently starting a fresh window over the broken journal.
func (r *streamRegistry) recover(ctx context.Context) (int, error) {
	paths, err := filepath.Glob(filepath.Join(r.dir, "*.wal"))
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, path := range paths {
		id := strings.TrimSuffix(filepath.Base(path), ".wal")
		info, err := stream.Peek(ctx, faultfs.OS, path)
		if err != nil {
			r.srv.logPrintf("vadasad: stream %s: unreadable journal header, skipping: %v", id, err)
			continue
		}
		opts, err := r.optionsFromInfo(info)
		if err != nil {
			r.srv.logPrintf("vadasad: stream %s: rebuilding options: %v", id, err)
			continue
		}
		r.srv.applyReplStream(info.ID, path, &opts)
		s, err := stream.Open(ctx, info.ID, path, opts)
		if err != nil {
			r.srv.logPrintf("vadasad: stream %s: recovery failed, skipping: %v", id, err)
			continue
		}
		r.srv.registerReplStream(s, path)
		r.streams[info.ID] = s
	}
	return len(r.streams), nil
}

// optionsFromInfo rebuilds a recovered stream's Options from the journal
// header: schema, threshold and semantics come straight from the create
// record; the assessor is rebuilt from the measure parameters the server
// stored in Meta at creation.
func (r *streamRegistry) optionsFromInfo(info *stream.Info) (stream.Options, error) {
	var meta streamMeta
	if err := json.Unmarshal(info.Meta, &meta); err != nil {
		return stream.Options{}, fmt.Errorf("decoding journaled measure parameters: %w", err)
	}
	params, err := url.ParseQuery(meta.Params)
	if err != nil {
		return stream.Options{}, fmt.Errorf("parsing journaled measure parameters: %w", err)
	}
	m, err := r.srv.measureFromValues(params)
	if err != nil {
		return stream.Options{}, err
	}
	return stream.Options{
		Assessor:     m,
		Threshold:    info.Threshold,
		Semantics:    info.Semantics,
		Attrs:        info.Attrs,
		Meta:         info.Meta,
		MaxRows:      r.maxRows,
		Governor:     r.srv.govern,
		DiskHeadroom: r.diskHeadroom,
		Logf:         r.srv.logPrintf,
	}, nil
}

// get returns the open stream id, or nil.
func (r *streamRegistry) get(id string) *stream.Stream {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.streams[id]
}

// create opens a fresh stream under the registry, categorizing the CSV header
// to a schema exactly like the synchronous endpoints do. A concurrent create
// of the same id loses the race idempotently: the winner's stream is
// returned.
func (r *streamRegistry) create(ctx context.Context, id string, body []byte, q url.Values) (*stream.Stream, error) {
	f, err := r.srv.newFramework()
	if err != nil {
		return nil, err
	}
	d, _, err := buildDataset(f, body, q, r.srv.cellCap())
	if err != nil {
		return nil, err
	}
	m, err := r.srv.measureFromValues(q)
	if err != nil {
		return nil, err
	}
	threshold, err := floatValue(q, "threshold", 0.5)
	if err != nil {
		return nil, err
	}
	sem, err := semanticsFromValues(q)
	if err != nil {
		return nil, err
	}
	// Journal only the measure-defining parameters: the schema and threshold
	// live in dedicated create-record fields, and per-request keys (batch)
	// must not leak into the stream's durable identity.
	meta := url.Values{}
	for _, k := range []string{"measure", "k", "msu", "sensitive", "t"} {
		if v := q.Get(k); v != "" {
			meta.Set(k, v)
		}
	}
	metaJSON, err := json.Marshal(streamMeta{Params: meta.Encode()})
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, stream.ErrClosed
	}
	if s, ok := r.streams[id]; ok {
		return s, nil
	}
	path := filepath.Join(r.dir, id+".wal")
	opts := stream.Options{
		Assessor:     m,
		Threshold:    threshold,
		Semantics:    sem,
		Attrs:        d.Attrs,
		Meta:         metaJSON,
		MaxRows:      r.maxRows,
		Governor:     r.srv.govern,
		DiskHeadroom: r.diskHeadroom,
		Logf:         r.srv.logPrintf,
	}
	r.srv.applyReplStream(id, path, &opts)
	s, err := stream.Open(ctx, id, path, opts)
	if err != nil {
		return nil, err
	}
	r.srv.registerReplStream(s, path)
	r.streams[id] = s
	return s, nil
}

// Close drains every stream: each writes its drain checkpoint and releases
// its governor charges. Called on shutdown after the listener has drained.
func (r *streamRegistry) Close(ctx context.Context) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	for id, s := range r.streams {
		if err := s.Close(ctx); err != nil {
			r.srv.logPrintf("vadasad: draining stream %s: %v", id, err)
		}
		r.srv.unregisterReplStream(id)
	}
}

// streamRoutes registers the streaming ingestion API. Only called when the
// registry is configured (-stream-dir).
func (s *server) streamRoutes(mux *http.ServeMux) {
	mux.HandleFunc("GET /streams", s.handleStreamList)
	mux.HandleFunc("POST /stream/{id}/append", s.handleStreamAppend)
	mux.HandleFunc("GET /stream/{id}/release", s.handleStreamRelease)
	mux.HandleFunc("GET /stream/{id}/status", s.handleStreamStatus)
	mux.HandleFunc("POST /stream/{id}/ack", s.handleStreamAck)
	mux.HandleFunc("POST /stream/{id}/withdraw", s.handleStreamWithdraw)
}

// streamID validates the path id: it names a file under -stream-dir, so the
// alphabet is restricted long before filepath sees it.
func streamID(r *http.Request) (string, error) {
	id := r.PathValue("id")
	if id == "" || len(id) > 64 {
		return "", fmt.Errorf("stream id must be 1-64 characters")
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return "", fmt.Errorf("stream id %q: only letters, digits, '-' and '_' are allowed", id)
		}
	}
	return id, nil
}

// semanticsFromValues parses the ?semantics= labelled-null semantics
// parameter (default: maybe-match, the paper's Section 4 semantics).
func semanticsFromValues(q url.Values) (mdb.Semantics, error) {
	switch v := q.Get("semantics"); v {
	case "", "maybe-match":
		return mdb.MaybeMatch, nil
	case "standard":
		return mdb.StandardNulls, nil
	default:
		return 0, fmt.Errorf("unknown semantics %q (want maybe-match or standard)", v)
	}
}

// parseBatchCSV splits the request body into a cleaned header and the raw
// row cells. The cells stay strings: the stream journals them verbatim, and
// replay re-parses them exactly as the live path did.
func parseBatchCSV(body []byte) (names []string, rows [][]string, err error) {
	if len(body) == 0 {
		return nil, nil, fmt.Errorf("empty body; POST a CSV with a header row")
	}
	recs, err := csv.NewReader(bytes.NewReader(body)).ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("parsing CSV: %w", err)
	}
	if len(recs) < 2 {
		return nil, nil, fmt.Errorf("body has no data rows")
	}
	names = recs[0]
	names[0] = strings.TrimPrefix(names[0], "\ufeff")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	return names, recs[1:], nil
}

// handleStreamAppend ingests one batch into the stream, creating the stream
// on first contact (the CSV header is categorized to a schema exactly like
// the synchronous endpoints; id/qi/weight query overrides apply). The batch
// is journaled and fsync'd before the 200 goes out — an acknowledged batch
// survives any crash. ?batch= is the mandatory idempotency key: retrying an
// acknowledged batch returns duplicate=true without re-applying it.
func (s *server) handleStreamAppend(w http.ResponseWriter, r *http.Request) {
	id, err := streamID(r)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	batch := r.URL.Query().Get("batch")
	if batch == "" {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("the batch query parameter (idempotency key) is required"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.bodyLimit()))
	if err != nil {
		s.failRequest(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	names, rows, err := parseBatchCSV(body)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}

	st := s.streams.get(id)
	created := false
	if st == nil {
		if st, err = s.streams.create(r.Context(), id, body, r.URL.Query()); err != nil {
			s.failStream(w, http.StatusBadRequest, err)
			return
		}
		created = true
	}
	attrs := st.Attrs()
	if len(names) != len(attrs) {
		s.httpError(w, http.StatusBadRequest,
			fmt.Errorf("batch has %d columns, stream %s has %d", len(names), id, len(attrs)))
		return
	}
	for i, a := range attrs {
		if names[i] != a.Name {
			s.httpError(w, http.StatusBadRequest,
				fmt.Errorf("batch column %d is %q, stream %s expects %q", i, names[i], id, a.Name))
			return
		}
	}

	res, err := st.Append(r.Context(), batch, rows)
	if err != nil {
		s.failStream(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
		w.Header().Set("Location", "/stream/"+id+"/status")
	}
	s.writeJSON(w, status, struct {
		Stream string `json:"stream"`
		*stream.AppendResult
	}{id, res})
}

// handleStreamRelease drives the release gate: anonymize the window until
// every tuple clears the threshold, publish the snapshot under the
// intent→publish protocol, and serve the bytes. An already-published, unacked
// release is re-served unchanged — the client acks when it has the bytes.
func (s *server) handleStreamRelease(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(w, r)
	if !ok {
		return
	}
	info, err := st.Release(r.Context())
	if err != nil {
		s.failStream(w, http.StatusUnprocessableEntity, err)
		return
	}
	b, err := st.ReleaseBytes(info)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, struct {
		Stream  string              `json:"stream"`
		Release *stream.ReleaseInfo `json:"release"`
		CSV     string              `json:"csv"`
	}{st.ID(), info, string(b)})
}

// handleStreamStatus reports the stream's point-in-time counters.
func (s *server) handleStreamStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, http.StatusOK, struct {
		Stream string `json:"stream"`
		stream.Status
	}{st.ID(), st.Status(r.Context())})
}

// handleStreamAck retires a published release (?seq=); after the journaled
// ack the window may mutate toward the next one. Re-acking is idempotent.
func (s *server) handleStreamAck(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(w, r)
	if !ok {
		return
	}
	seq, err := intValue(r.URL.Query(), "seq", 0)
	if err != nil || seq <= 0 {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("the seq query parameter (release sequence) is required"))
		return
	}
	if err := st.Ack(r.Context(), seq); err != nil {
		s.failStream(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"stream": st.ID(), "acked": seq})
}

// handleStreamWithdraw removes rows (by the window-stable ids Append
// returned) from the window — the consent-revocation path. Journaled before
// it is acknowledged, like every other mutation.
func (s *server) handleStreamWithdraw(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(w, r)
	if !ok {
		return
	}
	var req struct {
		RowIDs []int `json:"rowIds"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.bodyLimit())).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("decoding body (want {\"rowIds\": [...]}): %w", err))
		return
	}
	if err := st.Withdraw(r.Context(), req.RowIDs); err != nil {
		s.failStream(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"stream": st.ID(), "withdrawn": len(req.RowIDs),
	})
}

func (s *server) handleStreamList(w http.ResponseWriter, r *http.Request) {
	s.streams.mu.Lock()
	ids := make([]string, 0, len(s.streams.streams))
	for id := range s.streams.streams {
		ids = append(ids, id)
	}
	s.streams.mu.Unlock()
	s.writeJSON(w, http.StatusOK, map[string]any{"streams": ids})
}

func (s *server) lookupStream(w http.ResponseWriter, r *http.Request) (*stream.Stream, bool) {
	id, err := streamID(r)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return nil, false
	}
	st := s.streams.get(id)
	if st == nil {
		s.httpError(w, http.StatusNotFound, fmt.Errorf("no stream %q; POST /stream/%s/append creates one", id, id))
		return nil, false
	}
	return st, true
}

// failStream maps the stream package's typed failures onto HTTP semantics:
// a full window is back-pressure (429 + Retry-After — release and ack to
// drain it), a pending or gate-closed release is a state conflict (409), a
// drained stream is 503, and everything else flows through the server-wide
// mapping (budget exhaustion and ENOSPC → 503, deadline → 504, ...).
func (s *server) failStream(w http.ResponseWriter, fallback int, err error) {
	var full *stream.WindowFullError
	var pend *stream.PendingReleaseError
	var gate *stream.GateClosedError
	switch {
	case errors.As(err, &full):
		w.Header().Set("Retry-After", "1")
		s.httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("stream window is full; GET the release and ack it to drain: %w", err))
	case errors.As(err, &pend):
		s.httpError(w, http.StatusConflict,
			fmt.Errorf("a release is pending publication; retry GET /release first: %w", err))
	case errors.As(err, &gate):
		s.httpError(w, http.StatusConflict, err)
	case errors.Is(err, stream.ErrClosed):
		w.Header().Set("Retry-After", "5")
		s.httpError(w, http.StatusServiceUnavailable, fmt.Errorf("stream is draining for shutdown: %w", err))
	default:
		s.failRequest(w, fallback, err)
	}
}
