package main

// End-to-end disk-pressure test for the tentpole: an ENOSPC burst in the
// middle of a job's cycle (injected through the fault filesystem) pauses the
// job at its last journaled checkpoint; when space frees, the manager
// resumes it, and the final output is bit-identical to a run that never saw
// pressure.

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"vadasa"
	"vadasa/internal/faultfs"
	"vadasa/internal/jobs"
	"vadasa/internal/journal"
)

func TestJobPausedByDiskPressureResumesBitIdentical(t *testing.T) {
	dir := t.TempDir()
	csv := generatedCSV(t)

	// Uninterrupted control via the synchronous endpoint, same measure.
	control := struct {
		CSV           string `json:"csv"`
		Iterations    int    `json:"iterations"`
		NullsInjected int    `json:"nullsInjected"`
	}{}
	rec := do(t, testServer(), "POST", "/anonymize?measure=k-anonymity&k=3&threshold=0.5", csv)
	if rec.Code != http.StatusOK {
		t.Fatalf("control run = %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &control); err != nil {
		t.Fatal(err)
	}
	if control.Iterations < 2 {
		t.Fatalf("control took %d iterations; dataset too easy for a pressure test", control.Iterations)
	}

	// The job runs over the fault filesystem with a 1 MiB headroom floor.
	// The gate parks the cycle inside iteration 1's assessment — after the
	// iteration-0 checkpoint committed — so the ENOSPC burst lands exactly
	// on iteration 1's checkpoint append.
	faulty := faultfs.NewFaulty(faultfs.OS)
	gate := newGateMeasure(2)
	_, h := jobsServer(t, dir, map[string]func() vadasa.RiskMeasure{
		"gate": func() vadasa.RiskMeasure { return gate },
	}, jobs.Options{
		Workers:      1,
		FS:           faulty,
		DiskHeadroom: 1 << 20,
		PauseProbe:   2 * time.Millisecond,
	})
	rec = do(t, h, "POST", "/jobs/anonymize?measure=gate&threshold=0.5", csv)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}
	id := decodeJob(t, rec.Body.String()).ID
	select {
	case <-gate.entered:
	case <-time.After(15 * time.Second):
		t.Fatal("cycle never reached the gated assessment")
	}
	faulty.SetFree(100) // the volume "fills up" while the measure runs
	close(gate.release) // let the assessment finish; the checkpoint hits the wall

	paused := waitJob(t, h, id, jobs.StatePaused)
	if paused.Attempts != 0 {
		t.Fatalf("paused job consumed %d attempts; disk pressure must not burn retries", paused.Attempts)
	}

	// The journal holds the committed prefix only — no torn tail, no
	// terminal record — exactly what a crash recovery would also accept.
	jpath := filepath.Join(dir, id+".journal")
	scan, err := journal.ReadFileIn(faulty, jpath)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Torn {
		t.Fatal("journal has a torn tail while paused; repair did not run")
	}
	if got := scan.Last().Type; got != journal.TypeIter {
		t.Fatalf("journal last record = %q while paused, want iter", got)
	}

	faulty.SetFree(-1) // space frees; the resume loop re-queues the job
	j := waitJob(t, h, id, jobs.StateDone)
	if j.Attempts != 1 {
		t.Fatalf("resumed job finished with %d attempts, want 1", j.Attempts)
	}
	if j.Outcome == nil {
		t.Fatal("done job has no outcome")
	}
	if j.Outcome.Iterations != control.Iterations {
		t.Fatalf("iterations: resumed %d, control %d", j.Outcome.Iterations, control.Iterations)
	}
	if j.Outcome.NullsInjected != control.NullsInjected {
		t.Fatalf("nulls: resumed %d, control %d", j.Outcome.NullsInjected, control.NullsInjected)
	}

	// Bit-identical output: the pause/resume must be invisible in the data.
	rec = do(t, h, "GET", "/jobs/"+id+"/result", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("result = %d: %s", rec.Code, rec.Body)
	}
	if rec.Body.String() != control.CSV {
		t.Fatalf("resumed output differs from the uninterrupted control:\nresumed:\n%s\ncontrol:\n%s",
			rec.Body.String(), control.CSV)
	}
}
