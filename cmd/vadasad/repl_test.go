package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"vadasa"
	"vadasa/internal/dist"
	"vadasa/internal/govern"
	"vadasa/internal/replica"
	"vadasa/internal/stream"
)

// replPair wires a primary server and a standby server exactly the way
// main() does with -repl-role, shipping over a real HTTP listener so the
// transport, the /repl/ship handler and the body limits are all exercised.
type replPair struct {
	primary *server
	standby *server
	ph, sh  http.Handler
	p       *replica.Primary
	sb      *replica.Standby
	pNode   *replica.Node
	sNode   *replica.Node
	pDir    string
	sDir    string
}

func newReplPair(t *testing.T, sync bool) *replPair {
	t.Helper()
	ctx := context.Background()
	nf := func() (*vadasa.Framework, error) { return vadasa.New(), nil }

	// Standby side first: the primary needs its listener address.
	sDir := t.TempDir()
	sNode, err := replica.OpenNode("s1", filepath.Join(sDir, replica.NodeJournalName), replica.RoleStandby, nil)
	if err != nil {
		t.Fatalf("standby node: %v", err)
	}
	t.Cleanup(func() { sNode.Close() })
	srv2 := &server{newFramework: nf, logf: t.Logf}
	sb, err := replica.NewStandby(replica.StandbyOptions{
		Node:         sNode,
		Roots:        map[string]replica.Root{"stream": {Dir: sDir, Ext: ".wal"}},
		OpenFollower: srv2.followerFactory(0, 0),
		FollowRoot:   "stream",
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("standby: %v", err)
	}
	if err := sb.Recover(ctx); err != nil {
		t.Fatalf("standby recover: %v", err)
	}
	t.Cleanup(sb.Close)
	srv2.repl = &replState{node: sNode, standby: sb, streamDir: sDir}
	srv2.repl.openStreams = func(ctx context.Context) (int, error) {
		srv2.streams = newStreamRegistry(srv2, sDir, 0, 0)
		return srv2.streams.recover(ctx)
	}
	sh := srv2.handler()
	ts := httptest.NewServer(sh)
	t.Cleanup(ts.Close)

	pDir := t.TempDir()
	pNode, err := replica.OpenNode("p1", filepath.Join(pDir, replica.NodeJournalName), replica.RolePrimary, nil)
	if err != nil {
		t.Fatalf("primary node: %v", err)
	}
	t.Cleanup(func() { pNode.Close() })
	srv1 := &server{newFramework: nf, logf: t.Logf}
	p, err := replica.NewPrimary(replica.PrimaryOptions{
		Node:           pNode,
		Peers:          []replica.Transport{replica.NewHTTPTransport(ts.URL, nil)},
		Sync:           sync,
		SyncTimeout:    10 * time.Second,
		RetryBase:      5 * time.Millisecond,
		DigestInterval: 50 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("primary: %v", err)
	}
	srv1.repl = &replState{node: pNode, primary: p, streamDir: pDir}
	srv1.streams = newStreamRegistry(srv1, pDir, 0, 0)
	p.Start()
	t.Cleanup(p.Close)

	return &replPair{
		primary: srv1, standby: srv2,
		ph: srv1.handler(), sh: sh,
		p: p, sb: sb, pNode: pNode, sNode: sNode,
		pDir: pDir, sDir: sDir,
	}
}

func waitRepl(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

type releaseBody struct {
	Stream  string              `json:"stream"`
	Standby bool                `json:"standby"`
	Release *stream.ReleaseInfo `json:"release"`
	CSV     string              `json:"csv"`
}

// An async pair: the standby mirrors appends and releases, serves the
// published release and stream status read-only with a standby marker, and
// rejects writes with 503 + Retry-After so clients can tell "wrong node"
// from "overloaded node".
func TestReplStandbyMirrorsAndServesReads(t *testing.T) {
	c := newReplPair(t, false)

	if rec := do(t, c.ph, "POST", appendURL("s1", "b1"), streamCSV(0, 4)); rec.Code != http.StatusCreated {
		t.Fatalf("append status = %d: %s", rec.Code, rec.Body)
	}
	rec := do(t, c.ph, "GET", "/stream/s1/release", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("release status = %d: %s", rec.Code, rec.Body)
	}
	var before releaseBody
	decodeBody(t, rec.Body.Bytes(), &before)

	waitRepl(t, "standby to mirror the release", func() bool {
		f := c.sb.Follower("stream/s1")
		return f != nil && f.Published() != nil
	})

	var list struct {
		Streams []string `json:"streams"`
		Standby bool     `json:"standby"`
	}
	decodeBody(t, do(t, c.sh, "GET", "/streams", "").Body.Bytes(), &list)
	if len(list.Streams) != 1 || list.Streams[0] != "s1" || !list.Standby {
		t.Fatalf("standby stream list %+v", list)
	}

	rec = do(t, c.sh, "GET", "/stream/s1/release", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("standby release status = %d: %s", rec.Code, rec.Body)
	}
	var mirrored releaseBody
	decodeBody(t, rec.Body.Bytes(), &mirrored)
	if !mirrored.Standby || mirrored.CSV != before.CSV || mirrored.Release.Digest != before.Release.Digest {
		t.Fatalf("standby release does not match the primary's:\nprimary %+v\nstandby %+v", before.Release, mirrored.Release)
	}

	var st struct {
		Standby bool `json:"standby"`
		Rows    int  `json:"rows"`
	}
	decodeBody(t, do(t, c.sh, "GET", "/stream/s1/status", "").Body.Bytes(), &st)
	if !st.Standby || st.Rows != 4 {
		t.Fatalf("standby status %+v", st)
	}

	// Writes are refused with an explicit standby marker.
	rec = do(t, c.sh, "POST", appendURL("s1", "b2"), streamCSV(4, 2))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("standby append status = %d: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatalf("standby rejection carries no Retry-After")
	}
	var rej struct {
		Error   string `json:"error"`
		Standby bool   `json:"standby"`
	}
	decodeBody(t, rec.Body.Bytes(), &rej)
	if !rej.Standby || rej.Error == "" {
		t.Fatalf("standby rejection body %+v", rej)
	}

	// /readyz on a healthy standby is 200 with the standby marker.
	rec = do(t, c.sh, "GET", "/readyz", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"standby":true`) {
		t.Fatalf("standby readyz = %d: %s", rec.Code, rec.Body)
	}

	var rstat struct {
		Role  string `json:"role"`
		Epoch uint64 `json:"epoch"`
	}
	decodeBody(t, do(t, c.ph, "GET", "/replstatus", "").Body.Bytes(), &rstat)
	if rstat.Role != "primary" || rstat.Epoch != 1 {
		t.Fatalf("primary replstatus %+v", rstat)
	}
	decodeBody(t, do(t, c.sh, "GET", "/replstatus", "").Body.Bytes(), &rstat)
	if rstat.Role != "standby" {
		t.Fatalf("standby replstatus %+v", rstat)
	}

	if d := c.sb.Diverged(); len(d) != 0 {
		t.Fatalf("standby diverged: %v", d)
	}
}

// The HTTP failover path: a synchronously replicated primary publishes a
// release and disappears; POST /repl/promote fences the standby into the
// primary role, its recovery re-serves the very same release byte for byte
// (exactly once), the full API replaces the read-only one in place, and the
// demoted primary's subsequent writes are rejected with the fencing 503.
func TestReplPromoteFailoverHTTP(t *testing.T) {
	c := newReplPair(t, true)

	if rec := do(t, c.ph, "POST", appendURL("s1", "b1"), streamCSV(0, 4)); rec.Code != http.StatusCreated {
		t.Fatalf("append status = %d: %s", rec.Code, rec.Body)
	}
	rec := do(t, c.ph, "GET", "/stream/s1/release", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("release status = %d: %s", rec.Code, rec.Body)
	}
	var before releaseBody
	decodeBody(t, rec.Body.Bytes(), &before)

	// Synchronous commit: the publish record is already durable on the
	// standby when the release returns.
	waitRepl(t, "standby to mirror the release", func() bool {
		f := c.sb.Follower("stream/s1")
		return f != nil && f.Published() != nil
	})

	// The primary "dies" here: nothing more is sent through c.ph until the
	// demotion checks below.
	rec = do(t, c.sh, "POST", "/repl/promote", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("promote status = %d: %s", rec.Code, rec.Body)
	}
	var prom struct {
		Promoted bool   `json:"promoted"`
		Epoch    uint64 `json:"epoch"`
		Streams  int    `json:"streams"`
	}
	decodeBody(t, rec.Body.Bytes(), &prom)
	if !prom.Promoted || prom.Epoch != 2 || prom.Streams != 1 {
		t.Fatalf("promote result %+v", prom)
	}

	// The promoted node re-serves the primary's release byte-identical.
	rec = do(t, c.sh, "GET", "/stream/s1/release", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("promoted release status = %d: %s", rec.Code, rec.Body)
	}
	var after releaseBody
	decodeBody(t, rec.Body.Bytes(), &after)
	if after.CSV != before.CSV || after.Release.Digest != before.Release.Digest || after.Release.Seq != before.Release.Seq {
		t.Fatalf("promoted release differs from the primary's:\nprimary %+v\npromoted %+v", before.Release, after.Release)
	}
	if after.Standby {
		t.Fatalf("promoted node still marks responses standby")
	}

	// Exactly once: re-served unchanged until acked, then retired — the
	// next release is a new sequence, proving the write path is live.
	var again releaseBody
	decodeBody(t, do(t, c.sh, "GET", "/stream/s1/release", "").Body.Bytes(), &again)
	if again.Release.Seq != before.Release.Seq || again.Release.Digest != before.Release.Digest {
		t.Fatalf("re-served release changed: %+v", again.Release)
	}
	if rec = do(t, c.sh, "POST", "/stream/s1/ack?seq=1", ""); rec.Code != http.StatusOK {
		t.Fatalf("ack on promoted node = %d: %s", rec.Code, rec.Body)
	}
	decodeBody(t, do(t, c.sh, "GET", "/stream/s1/release", "").Body.Bytes(), &again)
	if again.Release == nil || again.Release.Seq != 2 {
		t.Fatalf("post-ack release %+v, want seq 2", again.Release)
	}

	// The promoted node keeps /repl/ship mounted so the stale primary's
	// shipments get the fencing 409, not a 404.
	rec = do(t, c.sh, "POST", "/repl/ship", `{"primary":"p1","epoch":1}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale ship status = %d: %s", rec.Code, rec.Body)
	}

	// The old primary demotes itself the moment a shipment is fenced.
	waitRepl(t, "primary demotion", func() bool { return c.pNode.FenceCheck() != nil })

	rec = do(t, c.ph, "POST", appendURL("s1", "b2"), streamCSV(4, 2))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("demoted append status = %d: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") != "5" {
		t.Fatalf("demoted append Retry-After = %q", rec.Header().Get("Retry-After"))
	}
	if !strings.Contains(rec.Body.String(), "no longer the primary") {
		t.Fatalf("demoted append body: %s", rec.Body)
	}
	if rec = do(t, c.ph, "GET", "/stream/s1/release", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("demoted release status = %d: %s", rec.Code, rec.Body)
	}

	var rstat struct {
		Role    string `json:"role"`
		Epoch   uint64 `json:"epoch"`
		Granted uint64 `json:"granted"`
	}
	decodeBody(t, do(t, c.ph, "GET", "/replstatus", "").Body.Bytes(), &rstat)
	if rstat.Epoch != 2 || rstat.Granted != 1 {
		t.Fatalf("demoted replstatus %+v", rstat)
	}
}

// Every load-shedding and unavailability answer must carry a Retry-After
// header and the uniform {"error": ...} JSON body, so one generic client
// backoff loop handles saturation, disk pressure, replication fencing and
// standby redirection alike. Table-driven over the causes failRequest and
// failStream map to 503/429.
func TestReplRetryAfterAudit(t *testing.T) {
	cases := []struct {
		name       string
		fail       func(s *server, w http.ResponseWriter)
		status     int
		retryAfter string
		contains   string
	}{
		{
			name: "saturated budget",
			fail: func(s *server, w http.ResponseWriter) {
				s.failRequest(w, http.StatusInternalServerError, &govern.ErrBudgetExceeded{})
			},
			status:     http.StatusServiceUnavailable,
			retryAfter: "15",
			contains:   "resource budget exhausted",
		},
		{
			name: "workers degraded",
			fail: func(s *server, w http.ResponseWriter) {
				s.failRequest(w, http.StatusInternalServerError, dist.ErrDegraded)
			},
			status:     http.StatusServiceUnavailable,
			retryAfter: "5",
			contains:   "workers",
		},
		{
			name: "journal volume full",
			fail: func(s *server, w http.ResponseWriter) {
				s.failRequest(w, http.StatusInternalServerError, syscall.ENOSPC)
			},
			status:     http.StatusServiceUnavailable,
			retryAfter: "15",
			contains:   "out of space",
		},
		{
			name: "demoted primary",
			fail: func(s *server, w http.ResponseWriter) {
				s.failRequest(w, http.StatusInternalServerError, &replica.FencedError{Epoch: 1, Seen: 2})
			},
			status:     http.StatusServiceUnavailable,
			retryAfter: "5",
			contains:   "no longer the primary",
		},
		{
			name: "sync replication timeout",
			fail: func(s *server, w http.ResponseWriter) {
				s.failRequest(w, http.StatusInternalServerError, &replica.SyncError{Log: "stream/s1", Seq: 3})
			},
			status:     http.StatusServiceUnavailable,
			retryAfter: "5",
			contains:   "rolled back",
		},
		{
			name: "stream draining",
			fail: func(s *server, w http.ResponseWriter) {
				s.failStream(w, http.StatusInternalServerError, stream.ErrClosed)
			},
			status:     http.StatusServiceUnavailable,
			retryAfter: "5",
			contains:   "draining",
		},
		{
			name: "window full",
			fail: func(s *server, w http.ResponseWriter) {
				s.failStream(w, http.StatusInternalServerError, &stream.WindowFullError{Rows: 10, Adding: 2, Max: 10})
			},
			status:     http.StatusTooManyRequests,
			retryAfter: "1",
			contains:   "window is full",
		},
		{
			name: "gate closed",
			fail: func(s *server, w http.ResponseWriter) {
				s.failStream(w, http.StatusInternalServerError, &stream.GateClosedError{Residual: 3})
			},
			status:     http.StatusConflict,
			retryAfter: "", // a state conflict, not load: retrying the same call cannot help
			contains:   "gate closed",
		},
	}
	srv := &server{newFramework: func() (*vadasa.Framework, error) { return vadasa.New(), nil }, logf: t.Logf}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			tc.fail(srv, rec)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (%s)", rec.Code, tc.status, rec.Body)
			}
			if got := rec.Header().Get("Retry-After"); got != tc.retryAfter {
				t.Fatalf("Retry-After = %q, want %q", got, tc.retryAfter)
			}
			var body struct {
				Error string `json:"error"`
			}
			decodeBody(t, rec.Body.Bytes(), &body)
			if body.Error == "" || !strings.Contains(body.Error, tc.contains) {
				t.Fatalf("body %q does not contain %q", body.Error, tc.contains)
			}
		})
	}

	// The in-flight limiter's shed path, end to end: cap 1, slot taken.
	srv.inflight = make(chan struct{}, 1)
	srv.inflight <- struct{}{}
	rec := do(t, srv.routes(), "GET", "/measures", "")
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("shed status = %d, Retry-After %q: %s", rec.Code, rec.Header().Get("Retry-After"), rec.Body)
	}

	// Probes stay exempt while saturated.
	if rec := do(t, srv.routes(), "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz while saturated = %d", rec.Code)
	}
	<-srv.inflight

	// Startup recovery answers /readyz 503 with Retry-After.
	srv.recovering.Store(true)
	rec = do(t, srv.routes(), "GET", "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") != "5" {
		t.Fatalf("recovering readyz = %d, Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	srv.recovering.Store(false)
}
