package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"syscall"
	"testing"

	"vadasa"
	"vadasa/internal/stream"
)

// streamTestServer builds a server with the streaming API enabled over dir.
func streamTestServer(t *testing.T, dir string, maxRows int) *server {
	t.Helper()
	s := &server{
		newFramework: func() (*vadasa.Framework, error) { return vadasa.New(), nil },
		logf:         t.Logf,
	}
	s.streams = newStreamRegistry(s, dir, maxRows, 0)
	return s
}

// streamCSV renders n rows starting at row number start. Consecutive pairs
// (even start) share every quasi-identifier value, so a window of complete
// pairs passes k=2 anonymity without any suppression — releases are then
// byte-deterministic, which the recovery test relies on.
func streamCSV(start, n int) string {
	var b strings.Builder
	b.WriteString("Id,Sector,Region,Weight\n")
	for i := 0; i < n; i++ {
		k := (start + i) / 2
		fmt.Fprintf(&b, "c%d,s%d,r%d,%d\n", start+i, k%3, k%2, 10+(start+i)%5)
	}
	return b.String()
}

const streamQuery = "id=Id&qi=Sector,Region&weight=Weight&measure=k-anonymity&k=2"

func appendURL(id, batch string) string {
	return "/stream/" + id + "/append?batch=" + batch + "&" + streamQuery
}

func decodeBody(t *testing.T, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
}

func TestStreamLifecycleHTTP(t *testing.T) {
	srv := streamTestServer(t, t.TempDir(), 0)
	defer srv.streams.Close(context.Background())
	h := srv.routes()

	// First append creates the stream: 201 with the assigned row ids.
	rec := do(t, h, "POST", appendURL("s1", "b1"), streamCSV(0, 4))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create append status = %d: %s", rec.Code, rec.Body)
	}
	var app struct {
		Stream    string `json:"stream"`
		RowIDs    []int  `json:"rowIds"`
		Rows      int    `json:"rows"`
		Duplicate bool   `json:"duplicate"`
	}
	decodeBody(t, rec.Body.Bytes(), &app)
	if app.Stream != "s1" || len(app.RowIDs) != 4 || app.Rows != 4 {
		t.Fatalf("append result %+v", app)
	}
	rowIDs := app.RowIDs

	// Retrying the same idempotency key re-acknowledges without re-applying.
	rec = do(t, h, "POST", appendURL("s1", "b1"), streamCSV(0, 4))
	if rec.Code != http.StatusOK {
		t.Fatalf("duplicate append status = %d: %s", rec.Code, rec.Body)
	}
	decodeBody(t, rec.Body.Bytes(), &app)
	if !app.Duplicate || app.Rows != 4 {
		t.Fatalf("duplicate append result %+v", app)
	}

	rec = do(t, h, "GET", "/stream/s1/status", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var st struct {
		Rows          int    `json:"rows"`
		Batches       int    `json:"batches"`
		Mode          string `json:"mode"`
		RiskCurrent   bool   `json:"riskCurrent"`
		OverThreshold int    `json:"overThreshold"`
	}
	decodeBody(t, rec.Body.Bytes(), &st)
	if st.Rows != 4 || st.Batches != 1 || st.Mode != "incremental" || !st.RiskCurrent || st.OverThreshold != 0 {
		t.Fatalf("status %+v", st)
	}

	// Release publishes the gated snapshot and serves the bytes.
	rec = do(t, h, "GET", "/stream/s1/release", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("release status = %d: %s", rec.Code, rec.Body)
	}
	var rel struct {
		Release *stream.ReleaseInfo `json:"release"`
		CSV     string              `json:"csv"`
	}
	decodeBody(t, rec.Body.Bytes(), &rel)
	if rel.Release == nil || rel.Release.Seq != 1 || rel.Release.Rows != 4 {
		t.Fatalf("release %+v", rel.Release)
	}
	if !strings.Contains(rel.CSV, "c0") || !strings.Contains(rel.CSV, "c3") {
		t.Fatalf("release csv missing rows:\n%s", rel.CSV)
	}

	// Unacked, the same release is re-served unchanged.
	rec = do(t, h, "GET", "/stream/s1/release", "")
	var rel2 struct {
		Release *stream.ReleaseInfo `json:"release"`
	}
	decodeBody(t, rec.Body.Bytes(), &rel2)
	if rel2.Release.Seq != 1 || rel2.Release.Digest != rel.Release.Digest {
		t.Fatalf("re-served release %+v, want seq 1 digest %s", rel2.Release, rel.Release.Digest)
	}

	if rec = do(t, h, "POST", "/stream/s1/ack?seq=1", ""); rec.Code != http.StatusOK {
		t.Fatalf("ack status = %d: %s", rec.Code, rec.Body)
	}
	// Re-acking is idempotent.
	if rec = do(t, h, "POST", "/stream/s1/ack?seq=1", ""); rec.Code != http.StatusOK {
		t.Fatalf("re-ack status = %d: %s", rec.Code, rec.Body)
	}

	// Withdraw one of the appended rows, then keep ingesting.
	rec = do(t, h, "POST", "/stream/s1/withdraw", fmt.Sprintf(`{"rowIds":[%d]}`, rowIDs[3]))
	if rec.Code != http.StatusOK {
		t.Fatalf("withdraw status = %d: %s", rec.Code, rec.Body)
	}
	if rec = do(t, h, "POST", appendURL("s1", "b2"), streamCSV(4, 2)); rec.Code != http.StatusOK {
		t.Fatalf("append b2 status = %d: %s", rec.Code, rec.Body)
	}
	decodeBody(t, do(t, h, "GET", "/stream/s1/status", "").Body.Bytes(), &st)
	if st.Rows != 5 || st.Batches != 2 {
		t.Fatalf("status after withdraw+append %+v", st)
	}

	var list struct {
		Streams []string `json:"streams"`
	}
	decodeBody(t, do(t, h, "GET", "/streams", "").Body.Bytes(), &list)
	if len(list.Streams) != 1 || list.Streams[0] != "s1" {
		t.Fatalf("streams list %v", list.Streams)
	}
}

// A server restart (drain + fresh process over the same -stream-dir) must
// recover every stream from its WAL: the window, the published-unacked
// release (re-served with the same digest), and the ability to keep
// ingesting — with the measure rebuilt from the journaled parameters alone.
func TestStreamRecoveryHTTP(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srv1 := streamTestServer(t, dir, 0)
	h1 := srv1.routes()
	if rec := do(t, h1, "POST", appendURL("s1", "b1"), streamCSV(0, 4)); rec.Code != http.StatusCreated {
		t.Fatalf("append status = %d: %s", rec.Code, rec.Body)
	}
	rec := do(t, h1, "GET", "/stream/s1/release", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("release status = %d: %s", rec.Code, rec.Body)
	}
	var before struct {
		Release *stream.ReleaseInfo `json:"release"`
		CSV     string              `json:"csv"`
	}
	decodeBody(t, rec.Body.Bytes(), &before)
	srv1.streams.Close(ctx) // SIGTERM drain: checkpoint + close every WAL

	srv2 := streamTestServer(t, dir, 0)
	n, err := srv2.streams.recover(ctx)
	if err != nil || n != 1 {
		t.Fatalf("recover = %d, %v", n, err)
	}
	defer srv2.streams.Close(ctx)
	h2 := srv2.routes()

	var st struct {
		Rows     int `json:"rows"`
		Releases int `json:"releases"`
		Acked    int `json:"acked"`
	}
	decodeBody(t, do(t, h2, "GET", "/stream/s1/status", "").Body.Bytes(), &st)
	if st.Rows != 4 || st.Releases != 1 || st.Acked != 0 {
		t.Fatalf("recovered status %+v", st)
	}

	// The unacked release is re-served bit-identically.
	rec = do(t, h2, "GET", "/stream/s1/release", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("recovered release status = %d: %s", rec.Code, rec.Body)
	}
	var after struct {
		Release *stream.ReleaseInfo `json:"release"`
		CSV     string              `json:"csv"`
	}
	decodeBody(t, rec.Body.Bytes(), &after)
	if after.Release.Seq != 1 || after.Release.Digest != before.Release.Digest || after.CSV != before.CSV {
		t.Fatalf("recovered release differs: %+v vs %+v", after.Release, before.Release)
	}

	if rec = do(t, h2, "POST", "/stream/s1/ack?seq=1", ""); rec.Code != http.StatusOK {
		t.Fatalf("ack after recovery = %d: %s", rec.Code, rec.Body)
	}
	if rec = do(t, h2, "POST", appendURL("s1", "b2"), streamCSV(4, 2)); rec.Code != http.StatusOK {
		t.Fatalf("append after recovery = %d: %s", rec.Code, rec.Body)
	}
}

// The bounded window sheds excess ingestion with 429 + Retry-After.
func TestStreamWindowFullHTTP(t *testing.T) {
	srv := streamTestServer(t, t.TempDir(), 4)
	defer srv.streams.Close(context.Background())
	h := srv.routes()

	if rec := do(t, h, "POST", appendURL("s1", "b1"), streamCSV(0, 4)); rec.Code != http.StatusCreated {
		t.Fatalf("append status = %d: %s", rec.Code, rec.Body)
	}
	rec := do(t, h, "POST", appendURL("s1", "b2"), streamCSV(4, 2))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-window append status = %d, want 429: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Release + ack drains the window; ingestion resumes.
	if rec := do(t, h, "GET", "/stream/s1/release", ""); rec.Code != http.StatusOK {
		t.Fatalf("release status = %d: %s", rec.Code, rec.Body)
	}
}

// A window the suppressor cannot bring under threshold answers 409: the gate
// stays closed, nothing is published.
func TestStreamGateClosedHTTP(t *testing.T) {
	srv := streamTestServer(t, t.TempDir(), 0)
	defer srv.streams.Close(context.Background())
	h := srv.routes()

	// Two fully unique rows under standard-null semantics: suppression can
	// never make them match, so k=2 is unreachable.
	body := "Id,Sector,Region,Weight\nc0,s0,r0,10\nc1,s1,r1,11\n"
	url := appendURL("s1", "b1") + "&semantics=standard"
	if rec := do(t, h, "POST", url, body); rec.Code != http.StatusCreated {
		t.Fatalf("append status = %d: %s", rec.Code, rec.Body)
	}
	rec := do(t, h, "GET", "/stream/s1/release", "")
	if rec.Code != http.StatusConflict {
		t.Fatalf("gate-closed release status = %d, want 409: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "gate closed") {
		t.Fatalf("409 body does not explain the closed gate: %s", rec.Body)
	}
	var st struct {
		Releases int `json:"releases"`
	}
	decodeBody(t, do(t, h, "GET", "/stream/s1/status", "").Body.Bytes(), &st)
	if st.Releases != 0 {
		t.Fatalf("gate-closed stream published %d releases", st.Releases)
	}
}

func TestStreamValidationHTTP(t *testing.T) {
	srv := streamTestServer(t, t.TempDir(), 0)
	defer srv.streams.Close(context.Background())
	h := srv.routes()

	cases := []struct {
		name, method, target, body string
		want                       int
	}{
		{"missing batch key", "POST", "/stream/s1/append?" + streamQuery, streamCSV(0, 2), http.StatusBadRequest},
		{"bad stream id", "POST", appendURL("s%21", "b1"), streamCSV(0, 2), http.StatusBadRequest},
		{"empty body", "POST", appendURL("s1", "b1"), "", http.StatusBadRequest},
		{"header only", "POST", appendURL("s1", "b1"), "Id,Sector,Region,Weight\n", http.StatusBadRequest},
		{"unknown stream status", "GET", "/stream/nope/status", "", http.StatusNotFound},
		{"unknown stream release", "GET", "/stream/nope/release", "", http.StatusNotFound},
		{"unknown stream ack", "POST", "/stream/nope/ack?seq=1", "", http.StatusNotFound},
	}
	for _, c := range cases {
		if rec := do(t, h, c.method, c.target, c.body); rec.Code != c.want {
			t.Errorf("%s: status = %d, want %d: %s", c.name, rec.Code, c.want, rec.Body)
		}
	}

	// Against a live stream: schema drift, null tokens and bad acks.
	if rec := do(t, h, "POST", appendURL("s1", "b1"), streamCSV(0, 2)); rec.Code != http.StatusCreated {
		t.Fatalf("append status = %d: %s", rec.Code, rec.Body)
	}
	liveCases := []struct {
		name, method, target, body string
		want                       int
	}{
		{"wrong column set", "POST", appendURL("s1", "b2"), "Id,Sector,Weight\nc9,s9,10\n", http.StatusBadRequest},
		{"renamed column", "POST", appendURL("s1", "b2"), "Id,Branch,Region,Weight\nc9,s9,r9,10\n", http.StatusBadRequest},
		{"labelled-null cell", "POST", appendURL("s1", "b2"), "Id,Sector,Region,Weight\nc9,*,r9,10\n", http.StatusBadRequest},
		{"bad weight", "POST", appendURL("s1", "b2"), "Id,Sector,Region,Weight\nc9,s9,r9,heavy\n", http.StatusBadRequest},
		{"ack without seq", "POST", "/stream/s1/ack", "", http.StatusBadRequest},
		{"ack unpublished seq", "POST", "/stream/s1/ack?seq=7", "", http.StatusConflict},
		{"withdraw unknown row", "POST", "/stream/s1/withdraw", `{"rowIds":[999]}`, http.StatusBadRequest},
		{"withdraw bad body", "POST", "/stream/s1/withdraw", "nope", http.StatusBadRequest},
	}
	for _, c := range liveCases {
		if rec := do(t, h, c.method, c.target, c.body); rec.Code != c.want {
			t.Errorf("%s: status = %d, want %d: %s", c.name, rec.Code, c.want, rec.Body)
		}
	}
	// None of the rejected appends may have mutated the window.
	var st struct {
		Rows    int `json:"rows"`
		Batches int `json:"batches"`
	}
	decodeBody(t, do(t, h, "GET", "/stream/s1/status", "").Body.Bytes(), &st)
	if st.Rows != 2 || st.Batches != 1 {
		t.Fatalf("rejected appends mutated the window: %+v", st)
	}
}

// ENOSPC from the journal volume is operator trouble, not client error: the
// middleware maps it to 503 with a Retry-After so ingestion backs off until
// disk frees.
func TestStatusForENOSPC(t *testing.T) {
	err := fmt.Errorf("stream: admitting batch: %w", syscall.ENOSPC)
	if got := statusForError(err, http.StatusBadRequest); got != http.StatusServiceUnavailable {
		t.Fatalf("statusForError(ENOSPC) = %d, want 503", got)
	}
}
