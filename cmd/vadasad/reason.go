package main

// The program-upload surface: POST /lint runs the static analyzer over
// user-supplied Vadalog source and always answers 200 with the structured
// diagnostics; POST /reason pre-flights the program with the same analyzer
// and refuses to evaluate anything carrying error-severity findings — the
// 422 body carries the diagnostics so clients can fix the program instead
// of decoding a first-error-wins string.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"vadasa"
	"vadasa/internal/datalog"
	"vadasa/internal/datalog/lint"
	"vadasa/internal/govern"
)

// readProgramBody reads and admission-charges a request body.
func (s *server) readProgramBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.bodyLimit()))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	if err := govern.From(r.Context()).Reserve(govern.Memory, int64(len(body))); err != nil {
		return nil, err
	}
	return body, nil
}

// handleLint lints the posted program source. The response is always 200
// with the full diagnostics — a lint request succeeds even when the program
// is broken; ?inputs=, ?outputs= and ?allow= supplement the source's own
// vadalint directives.
func (s *server) handleLint(w http.ResponseWriter, r *http.Request) {
	body, err := s.readProgramBody(w, r)
	if err != nil {
		s.failRequest(w, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	diags := lint.Source("program", string(body), &lint.Options{
		Inputs:  splitValues(q, "inputs"),
		Outputs: splitValues(q, "outputs"),
		Allow:   splitValues(q, "allow"),
	})
	if diags == nil {
		diags = []lint.Diagnostic{}
	}
	s.writeJSON(w, http.StatusOK, struct {
		Diagnostics []lint.Diagnostic `json:"diagnostics"`
		Errors      int               `json:"errors"`
	}{diags, countErrors(diags)})
}

func countErrors(diags []lint.Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Severity == lint.SeverityError {
			n++
		}
	}
	return n
}

// reasonRequest is the POST /reason body: a program, its extensional facts
// (rows of JSON strings and numbers per predicate), and the predicates to
// return. Inputs/Outputs/Allow supplement the program's own directives for
// the pre-flight.
type reasonRequest struct {
	Program string             `json:"program"`
	Facts   map[string][][]any `json:"facts,omitempty"`
	Query   []string           `json:"query,omitempty"`
	Inputs  []string           `json:"inputs,omitempty"`
	Outputs []string           `json:"outputs,omitempty"`
	Allow   []string           `json:"allow,omitempty"`
}

func (s *server) handleReason(w http.ResponseWriter, r *http.Request) {
	body, err := s.readProgramBody(w, r)
	if err != nil {
		s.failRequest(w, http.StatusBadRequest, err)
		return
	}
	var req reasonRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Program == "" {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("the program field is required"))
		return
	}

	// Pre-flight: fact predicates are extensional by definition, queried
	// predicates are outputs. Any error-severity finding refuses evaluation.
	inputs := append([]string(nil), req.Inputs...)
	for pred := range req.Facts {
		inputs = append(inputs, pred)
	}
	diags := lint.Source("program", req.Program, &lint.Options{
		Inputs:  inputs,
		Outputs: append(append([]string(nil), req.Outputs...), req.Query...),
		Allow:   req.Allow,
	})
	if lint.HasErrors(diags) {
		s.writeJSON(w, http.StatusUnprocessableEntity, struct {
			Error       string            `json:"error"`
			Diagnostics []lint.Diagnostic `json:"diagnostics"`
		}{"program rejected by static analysis", diags})
		return
	}

	prog, err := vadasa.ParseProgram(req.Program)
	if err != nil {
		// Unreachable in practice: a parse failure is a VL000 error above.
		s.httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	edb := vadasa.NewFactDB()
	for pred, rows := range req.Facts {
		for _, row := range rows {
			args := make([]vadasa.Val, len(row))
			for i, cell := range row {
				switch v := cell.(type) {
				case string:
					args[i] = vadasa.StrVal(v)
				case float64:
					args[i] = vadasa.NumVal(v)
				default:
					s.httpError(w, http.StatusBadRequest,
						fmt.Errorf("fact %s: argument %d must be a string or number, got %T", pred, i+1, cell))
					return
				}
			}
			edb.Add(pred, args...)
		}
	}

	opts := &vadasa.ReasoningOptions{Governor: govern.From(r.Context())}
	budget, err := int64Value(r.URL.Query(), "budget", 0)
	if err != nil || budget < 0 || budget > s.budgetCap() {
		if err == nil {
			err = fmt.Errorf("budget must be between 0 and %d", s.budgetCap())
		}
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	if budget > 0 {
		opts.MaxWork = budget
	}
	res, err := vadasa.ReasonContext(r.Context(), prog, edb, opts)
	if err != nil {
		s.failRequest(w, http.StatusUnprocessableEntity, err)
		return
	}

	preds := req.Query
	if len(preds) == 0 {
		// Default to everything derived or given; stable order for clients.
		preds = res.DB().Predicates()
		sort.Strings(preds)
	}
	facts := make(map[string][][]any, len(preds))
	for _, pred := range preds {
		rows := res.Facts(pred)
		out := make([][]any, len(rows))
		for i, row := range rows {
			vals := make([]any, len(row))
			for j, v := range row {
				vals[j] = valJSON(v)
			}
			out[i] = vals
		}
		facts[pred] = out
	}
	var violations []string
	for _, v := range res.Violations {
		violations = append(violations, v.String())
	}
	s.writeJSON(w, http.StatusOK, struct {
		Facts       map[string][][]any    `json:"facts"`
		Violations  []string              `json:"violations,omitempty"`
		Diagnostics []lint.Diagnostic     `json:"diagnostics,omitempty"`
		Stats       vadasa.ReasoningStats `json:"stats"`
	}{facts, violations, diags, res.Stats})
}

// valJSON renders a runtime value for the JSON response: strings and
// numbers natively, labelled nulls and sets in their source-style spelling.
func valJSON(v vadasa.Val) any {
	switch v.Kind() {
	case datalog.KStr:
		return v.StrVal()
	case datalog.KNum:
		return v.NumVal()
	}
	return v.String()
}
