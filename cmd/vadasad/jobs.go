package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"vadasa"
	"vadasa/internal/anon"
	"vadasa/internal/jobs"
)

// jobRoutes registers the asynchronous job API on the mux. Only called when
// the manager is configured (-job-dir).
func (s *server) jobRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /jobs/anonymize", s.handleJobSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleJobCancel)
}

// handleJobSubmit accepts the same CSV body and query parameters as the
// synchronous /anonymize, but spools the input to the job directory and
// returns 202 with the job id immediately. The cycle runs on the manager's
// worker pool, journaling every iteration; progress survives crashes.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	// Admission control: while any server budget is saturated or the job
	// volume is below its disk-headroom floor, a new job could only run
	// straight into a pause — refuse it up front so the client retries
	// against a server that can actually make progress. Existing paused
	// jobs keep their claim on the capacity that frees up.
	if err := s.govern.Err(); err != nil {
		s.failRequest(w, http.StatusServiceUnavailable, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.bodyLimit()))
	if err != nil {
		s.failRequest(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) == 0 {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("empty body; POST a CSV with a header row"))
		return
	}
	// Validate cheaply before persisting anything: a bad measure name or an
	// unparsable CSV must fail the request, not a job three seconds later.
	if _, err := s.measureFromValues(r.URL.Query()); err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	f, err := s.newFramework()
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	if _, _, err := buildDataset(f, body, r.URL.Query(), s.cellCap()); err != nil {
		s.failRequest(w, http.StatusBadRequest, err)
		return
	}

	input, err := s.spoolInput(body)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	j, err := s.jobs.Submit(jobs.Spec{Dataset: input, Params: r.URL.Query()})
	if err != nil {
		os.Remove(input)
		w.Header().Set("Retry-After", "5")
		s.httpError(w, http.StatusServiceUnavailable,
			fmt.Errorf("job queue is full or the manager is shutting down; retry shortly: %w", err))
		return
	}
	w.Header().Set("Location", "/jobs/"+j.ID)
	s.writeJSON(w, http.StatusAccepted, j)
}

// spoolInput persists the uploaded CSV under the job directory so the job —
// and any post-crash resumption — reads the exact bytes the client sent.
func (s *server) spoolInput(body []byte) (string, error) {
	f, err := os.CreateTemp(s.jobDir, "input-*.csv")
	if err != nil {
		return "", fmt.Errorf("spooling input: %w", err)
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", fmt.Errorf("spooling input: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", fmt.Errorf("spooling input: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("spooling input: %w", err)
	}
	return f.Name(), nil
}

func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List()})
}

func (s *server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.httpError(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, j)
}

// handleJobResult streams the anonymized CSV of a finished job. 409 while
// the job is still in flight, 410 when it failed or was cancelled.
func (s *server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.httpError(w, http.StatusNotFound, err)
		return
	}
	switch {
	case !j.State.Terminal():
		s.httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s; poll /jobs/%s", j.ID, j.State, j.ID))
		return
	case j.State != jobs.StateDone || j.Outcome == nil:
		s.httpError(w, http.StatusGone, fmt.Errorf("job %s ended %s: %s", j.ID, j.State, j.Error))
		return
	}
	out, err := os.Open(j.Outcome.OutputPath)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, fmt.Errorf("job output missing: %w", err))
		return
	}
	defer out.Close()
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if _, err := io.Copy(w, out); err != nil {
		s.logPrintf("vadasad: streaming job %s result: %v", j.ID, err)
	}
}

func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch err := s.jobs.Cancel(id); {
	case err == nil:
		s.writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "status": "cancelling"})
	case errors.Is(err, jobs.ErrNotFound):
		s.httpError(w, http.StatusNotFound, err)
	case errors.Is(err, jobs.ErrTerminal):
		s.httpError(w, http.StatusConflict, err)
	default:
		s.httpError(w, http.StatusInternalServerError, err)
	}
}

// jobRunner adapts the server's framework plumbing to jobs.Runner: it
// rebuilds the dataset and measure from the journaled spec, wires the
// journal checkpoint into the cycle, and writes the anonymized CSV next to
// the journal. Errors it cannot classify stay permanent; the risk package's
// transient marks pass through untouched for the manager's retry policy.
type jobRunner struct {
	srv *server
}

// Run implements jobs.Runner.
func (jr *jobRunner) Run(ctx context.Context, id string, spec jobs.Spec, resume []anon.Checkpoint, checkpoint anon.CheckpointFunc) (*jobs.Outcome, error) {
	s := jr.srv
	q := url.Values(spec.Params)
	f, err := s.newFramework()
	if err != nil {
		return nil, err
	}
	if err := s.applyBudget(f, q); err != nil {
		return nil, err
	}
	body, err := os.ReadFile(spec.Dataset)
	if err != nil {
		return nil, fmt.Errorf("reading spooled input: %w", err)
	}
	d, _, err := buildDataset(f, body, q, s.cellCap())
	if err != nil {
		return nil, err
	}
	m, err := s.measureFromValues(q)
	if err != nil {
		return nil, err
	}
	threshold, err := floatValue(q, "threshold", 0.5)
	if err != nil {
		return nil, err
	}
	res, err := f.ResumeAnonymizeContext(ctx, d, vadasa.CycleOptions{
		Measure:     s.distMeasure(m),
		Threshold:   threshold,
		UseRecoding: q.Get("recode") == "true",
		Checkpoint:  checkpoint,
	}, resume)
	if err != nil {
		return nil, err
	}

	outPath := filepath.Join(s.jobDir, id+".out.csv")
	tmp := outPath + ".tmp"
	var sb strings.Builder
	if err := vadasa.WriteCSV(&sb, res.Dataset); err != nil {
		return nil, err
	}
	if err := os.WriteFile(tmp, []byte(sb.String()), 0o644); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, outPath); err != nil {
		return nil, err
	}
	return &jobs.Outcome{
		OutputPath:    outPath,
		Iterations:    res.Iterations,
		InitialRisky:  res.InitialRisky,
		EverRisky:     res.EverRisky,
		NullsInjected: res.NullsInjected,
		InfoLoss:      res.InfoLoss,
		Residual:      res.Residual,
		Decisions:     len(res.Decisions),
	}, nil
}
