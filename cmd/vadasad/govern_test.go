package main

// Tests for the degraded-mode serving surface: the /readyz probe, admission
// control on the job API, the -max-cells decode guard, and the per-request
// memory budget.

import (
	"net/http"
	"strings"
	"testing"

	"vadasa/internal/govern"
	"vadasa/internal/jobs"
)

// /readyz answers 503 while startup recovery is replaying job journals and
// flips to 200 when the replay is queued; /healthz reports alive throughout.
func TestReadyzDuringRecovery(t *testing.T) {
	s, h := faultServer(t, nil, nil)
	s.recovering.Store(true)

	rec := do(t, h, "GET", "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "recovering") {
		t.Fatalf("readyz while recovering = %d %s, want 503/recovering", rec.Code, rec.Body)
	}
	if rec := do(t, h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz while recovering = %d, want 200: recovery is not a liveness failure", rec.Code)
	}

	s.recovering.Store(false)
	if rec := do(t, h, "GET", "/readyz", ""); rec.Code != http.StatusOK {
		t.Fatalf("readyz after recovery = %d %s, want 200", rec.Code, rec.Body)
	}
}

// A saturated governor budget turns /readyz not-ready; freeing it turns the
// server ready again. The probe itself must keep answering while saturated —
// it is exempt from the request resource scope.
func TestReadyzSaturatedGovernor(t *testing.T) {
	s, h := faultServer(t, nil, func(s *server) {
		s.govern = govern.New("server", govern.Limits{MaxBytes: 1000})
	})
	hog := s.govern.Child("hog", govern.Limits{})
	if err := hog.Reserve(govern.Memory, 1000); err != nil {
		t.Fatal(err)
	}

	rec := do(t, h, "GET", "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "saturated") {
		t.Fatalf("readyz while saturated = %d %s, want 503/saturated", rec.Code, rec.Body)
	}

	hog.Close()
	if rec := do(t, h, "GET", "/readyz", ""); rec.Code != http.StatusOK {
		t.Fatalf("readyz after release = %d %s, want 200", rec.Code, rec.Body)
	}
}

// New job submissions are refused with 503 while the server budget is
// saturated, and accepted again once it frees.
func TestJobSubmitRefusedWhileSaturated(t *testing.T) {
	s, h := jobsServer(t, t.TempDir(), nil, jobs.Options{Workers: 1})
	s.govern = govern.New("server", govern.Limits{MaxBytes: 1000})
	hog := s.govern.Child("hog", govern.Limits{})
	if err := hog.Reserve(govern.Memory, 1000); err != nil {
		t.Fatal(err)
	}

	rec := do(t, h, "POST", "/jobs/anonymize?measure=k-anonymity&k=2", figure1CSV(t))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while saturated = %d %s, want 503", rec.Code, rec.Body)
	}

	hog.Close()
	rec = do(t, h, "POST", "/jobs/anonymize?measure=k-anonymity&k=2", figure1CSV(t))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit after release = %d %s, want 202", rec.Code, rec.Body)
	}
	waitJob(t, h, decodeJob(t, rec.Body.String()).ID, jobs.StateDone)
}

// A CSV whose rows×columns product exceeds -max-cells is refused with 413
// before any categorization or parsing work, on both the synchronous and
// the job submission paths.
func TestMaxCellsGuard(t *testing.T) {
	s, h := faultServer(t, nil, func(s *server) { s.maxCells = 4 })
	rec := do(t, h, "POST", "/assess", figure1CSV(t))
	if rec.Code != http.StatusRequestEntityTooLarge || !strings.Contains(rec.Body.String(), "cell") {
		t.Fatalf("oversized table = %d %s, want 413 naming the cell limit", rec.Code, rec.Body)
	}
	// Within the limit, the same body is served normally.
	s.maxCells = 1 << 20
	if rec := do(t, h, "POST", "/assess", figure1CSV(t)); rec.Code != http.StatusOK {
		t.Fatalf("within limit = %d %s, want 200", rec.Code, rec.Body)
	}

	js, jh := jobsServer(t, t.TempDir(), nil, jobs.Options{Workers: 1})
	js.maxCells = 4
	if rec := do(t, jh, "POST", "/jobs/anonymize", figure1CSV(t)); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized job submit = %d %s, want 413", rec.Code, rec.Body)
	}
}

// A request whose body alone overruns the memory budget answers 503 — the
// charge happens before any engine work — and the budget is refunded when
// the request scope closes, so a later small request succeeds.
func TestRequestMemoryBudget(t *testing.T) {
	var root *govern.Governor
	_, h := faultServer(t, nil, func(s *server) {
		root = govern.New("server", govern.Limits{MaxBytes: 16})
		s.govern = root
	})
	rec := do(t, h, "POST", "/assess", figure1CSV(t)) // body is > 16 bytes
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-budget request = %d %s, want 503", rec.Code, rec.Body)
	}
	if used := root.Used(govern.Memory); used != 0 {
		t.Fatalf("governor holds %d bytes after the request; scope not closed", used)
	}
}
