package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"vadasa/internal/faultfs"
	"vadasa/internal/replica"
	"vadasa/internal/stream"
)

// replState carries the server's replication wiring (-repl-role). Exactly
// one of primary/standby is non-nil. On a standby, the openStreams and
// openJobs closures captured at startup bring the write path up at
// promotion time — over the very directories the mirror has been writing,
// through the very recovery code a restart would run.
type replState struct {
	node    *replica.Node
	primary *replica.Primary
	standby *replica.Standby

	streamDir string
	jobDir    string

	// openStreams/openJobs build the write-path registries after a
	// promotion (nil when the corresponding -*-dir is unset).
	openStreams func(ctx context.Context) (int, error)
	openJobs    func() error
	// rebuild swaps the HTTP handler for one routed with the write path
	// enabled. Set by server.handler.
	rebuild func()

	promoted atomic.Bool
	mu       sync.Mutex // serializes promotion
}

// servingStandby reports whether the node is currently mirroring — i.e. a
// standby that has not been promoted. Such a node serves reads and
// rejects writes with a standby marker.
func (rs *replState) servingStandby() bool {
	return rs != nil && rs.standby != nil && !rs.promoted.Load()
}

// swapHandler lets the promotion path atomically replace the whole route
// table: the standby's read-only mux gives way to the full API without
// restarting the listener.
type swapHandler struct{ v atomic.Value }

func (h *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.v.Load().(http.Handler).ServeHTTP(w, r)
}

// handler returns the server's HTTP handler. Without replication it is the
// static route table; with it, a swappable one so promotion can widen the
// routes in place.
func (s *server) handler() http.Handler {
	if s.repl == nil {
		return s.routes()
	}
	sh := &swapHandler{}
	sh.v.Store(s.routes())
	s.repl.rebuild = func() { sh.v.Store(s.routes()) }
	return sh
}

// replRoutes registers the replication endpoints. /replstatus is always
// on; the ship and promote endpoints exist wherever a standby does (a
// promoted standby keeps them so a stale primary's shipments are answered
// with the fencing 409 rather than a 404); the read-only stream mirrors
// are standby-only and give way to the real stream API at promotion.
func (s *server) replRoutes(mux *http.ServeMux) {
	mux.HandleFunc("GET /replstatus", s.handleReplStatus)
	if s.repl.standby != nil {
		mux.HandleFunc("POST /repl/ship", s.handleReplShip)
		mux.HandleFunc("POST /repl/promote", s.handleReplPromote)
	}
	if s.repl.servingStandby() {
		mux.HandleFunc("GET /streams", s.handleStandbyStreams)
		mux.HandleFunc("GET /stream/{id}/release", s.handleStandbyRelease)
		mux.HandleFunc("GET /stream/{id}/status", s.handleStandbyStatus)
	}
}

// withRepl rejects writes on an unpromoted standby: 503 with Retry-After
// and an explicit standby marker, so clients and load balancers can tell
// "wrong node" from "overloaded node". Reads (and the replication
// endpoints themselves) pass through.
func (s *server) withRepl(next http.Handler) http.Handler {
	if s.repl == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.repl.servingStandby() && !standbyAllowed(r) {
			w.Header().Set("Retry-After", "5")
			s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error":   "this node is a replication standby; send writes to the primary",
				"standby": true,
			})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// standbyAllowed reports whether an unpromoted standby serves the request
// itself: reads, probes, and the replication protocol.
func standbyAllowed(r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	switch r.URL.Path {
	case "/repl/ship", "/repl/promote":
		return true
	}
	return false
}

// applyReplStream wires a primary-side stream into the replication layer
// before it opens: the fence check guards every append and publish, and
// the append observer ships each committed record. On a promoted standby
// only the fence applies (it passes — the node holds the highest epoch).
func (s *server) applyReplStream(id, path string, opts *stream.Options) {
	if s.repl == nil {
		return
	}
	opts.FenceCheck = s.repl.node.FenceCheck
	if s.repl.primary != nil {
		opts.OnAppend = s.repl.primary.Hook("stream/"+id, path)
	}
}

// registerReplStream attaches an opened stream's journal tail and digest
// source to the shipper (no-op without a primary shipper).
func (s *server) registerReplStream(st *stream.Stream, path string) {
	if s.repl == nil || s.repl.primary == nil {
		return
	}
	log := "stream/" + st.ID()
	s.repl.primary.Register(log, path, st.JournalSeq(), func(ctx context.Context) (*replica.LogDigest, error) {
		d, err := st.Digest(ctx)
		if err != nil {
			return nil, err
		}
		return &replica.LogDigest{Seq: d.Seq, Rows: d.Rows, Window: d.Window, Risk: d.Risk}, nil
	})
}

// unregisterReplStream detaches a closed stream from the shipper.
func (s *server) unregisterReplStream(id string) {
	if s.repl == nil || s.repl.primary == nil {
		return
	}
	s.repl.primary.Unregister("stream/" + id)
}

// replJobHook is the jobs.Options.JournalHook wiring: every job journal
// ships under the "jobs" root. Nil without a primary shipper.
func (s *server) replJobHook() func(id, path string) func(seq int, line []byte) error {
	if s.repl == nil || s.repl.primary == nil {
		return nil
	}
	return func(id, path string) func(seq int, line []byte) error {
		return s.repl.primary.Hook("jobs/"+id, path)
	}
}

// followerFactory builds the standby's replay views: the stream Options
// are rebuilt from the mirrored WAL's own create record — the same
// reconstruction startup recovery uses — so the follower's risk state is
// computed by the same code that will own the stream after a promotion.
func (s *server) followerFactory(maxRows int, diskHeadroom int64) replica.FollowerFactory {
	return func(ctx context.Context, id, path string) (*stream.Follower, error) {
		info, err := stream.Peek(ctx, faultfs.OS, path)
		if err != nil {
			return nil, err
		}
		reg := &streamRegistry{srv: s, maxRows: maxRows, diskHeadroom: diskHeadroom}
		opts, err := reg.optionsFromInfo(info)
		if err != nil {
			return nil, err
		}
		return stream.OpenFollower(ctx, info.ID, path, opts)
	}
}

// handleReplShip is the receiver half of the shipping protocol: the
// primary POSTs batched journal frames (and state digests), the standby
// appends + fsyncs them and answers its per-log ack positions. A fencing
// rejection is 409 carrying the prevailing epoch — the signal that demotes
// the sender.
func (s *server) handleReplShip(w http.ResponseWriter, r *http.Request) {
	var req replica.ShipRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.bodyLimit())).Decode(&req); err != nil {
		s.failRequest(w, http.StatusBadRequest, fmt.Errorf("decoding shipment: %w", err))
		return
	}
	resp, err := s.repl.standby.HandleShip(r.Context(), &req)
	if err != nil {
		var fe *replica.FencedError
		if errors.As(err, &fe) {
			s.writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error(), "epoch": fe.Seen})
			return
		}
		w.Header().Set("Retry-After", "5")
		s.httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleReplPromote fences this standby into the primary role. The fence
// token (?fence=) must outrank every epoch the node has seen; omitted, it
// defaults to seen+1. On success the mirrored directories are recovered
// through the normal startup path — pending release intents complete
// exactly once — and the full API replaces the read-only one.
func (s *server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	rs := s.repl
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.promoted.Load() {
		s.httpError(w, http.StatusConflict,
			fmt.Errorf("already promoted (epoch %d)", rs.node.Granted()))
		return
	}
	fence := rs.node.Epoch() + 1
	if v := r.URL.Query().Get("fence"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, fmt.Errorf("bad fence parameter %q", v))
			return
		}
		fence = n
	}
	if err := rs.standby.Promote(r.Context(), fence); err != nil {
		if replica.IsFenced(err) {
			s.httpError(w, http.StatusConflict, err)
			return
		}
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.logPrintf("vadasad: promoted to primary under epoch %d", fence)

	streams := 0
	if rs.openStreams != nil {
		n, err := rs.openStreams(r.Context())
		if err != nil {
			// The grant is journaled; the node IS the primary now. Failing
			// recovery is an operator problem, not a reason to un-promote.
			s.logPrintf("vadasad: promote: recovering streams: %v", err)
		}
		streams = n
	}
	if rs.openJobs != nil {
		if err := rs.openJobs(); err != nil {
			s.logPrintf("vadasad: promote: starting jobs manager: %v", err)
		}
	}
	rs.promoted.Store(true)
	if rs.rebuild != nil {
		rs.rebuild()
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"promoted": true, "epoch": fence, "streams": streams,
	})
}

// handleReplStatus exposes the replication state: role, epochs, and the
// side-specific detail (shipping lag and peer acks on a primary; mirrored
// log positions and divergence on a standby).
func (s *server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	rs := s.repl
	out := map[string]any{
		"role":    rs.node.Role(),
		"epoch":   rs.node.Epoch(),
		"granted": rs.node.Granted(),
	}
	if rs.primary != nil {
		out["primary"] = rs.primary.Status()
	}
	if rs.standby != nil {
		out["standby"] = rs.standby.Status()
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleStandbyStreams lists the mirrored streams that currently have a
// replay view.
func (s *server) handleStandbyStreams(w http.ResponseWriter, r *http.Request) {
	ids := []string{}
	for _, fol := range s.repl.standby.Followers() {
		ids = append(ids, fol.ID())
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"streams": ids, "standby": true})
}

// handleStandbyRelease serves the currently published (unacked) release of
// a mirrored stream, digest-verified against the primary's journaled
// intent — the read-only availability a warm standby buys. It never
// publishes: with no release in flight it answers 409 and points at the
// primary.
func (s *server) handleStandbyRelease(w http.ResponseWriter, r *http.Request) {
	fol, ok := s.lookupFollower(w, r)
	if !ok {
		return
	}
	info := fol.Published()
	if info == nil {
		s.httpError(w, http.StatusConflict,
			fmt.Errorf("no release is currently published; releases are gated on the primary"))
		return
	}
	b, err := fol.ReleaseBytes()
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, struct {
		Stream  string              `json:"stream"`
		Standby bool                `json:"standby"`
		Release *stream.ReleaseInfo `json:"release"`
		CSV     string              `json:"csv"`
	}{fol.ID(), true, info, string(b)})
}

// handleStandbyStatus reports a mirrored stream's replayed counters.
func (s *server) handleStandbyStatus(w http.ResponseWriter, r *http.Request) {
	fol, ok := s.lookupFollower(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, http.StatusOK, struct {
		Stream  string `json:"stream"`
		Standby bool   `json:"standby"`
		stream.Status
	}{fol.ID(), true, fol.Status(r.Context())})
}

func (s *server) lookupFollower(w http.ResponseWriter, r *http.Request) (*stream.Follower, bool) {
	id, err := streamID(r)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return nil, false
	}
	fol := s.repl.standby.Follower("stream/" + id)
	if fol == nil {
		s.httpError(w, http.StatusNotFound, fmt.Errorf("no mirrored stream %q on this standby", id))
		return nil, false
	}
	return fol, true
}
