package main

import (
	"encoding/json"
	"net/http"
	"testing"

	"vadasa/internal/datalog/lint"
)

func TestLintEndpointCleanProgram(t *testing.T) {
	src := "% vadalint:input q\n% vadalint:output p\np(X) :- q(X).\n"
	rec := do(t, testServer(), "POST", "/lint", src)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		Diagnostics []lint.Diagnostic `json:"diagnostics"`
		Errors      int               `json:"errors"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Diagnostics) != 0 || out.Errors != 0 {
		t.Fatalf("want clean report, got %s", rec.Body)
	}
}

func TestLintEndpointBrokenProgram(t *testing.T) {
	// Arity clash: own/3 fact versus own/2 in the rule body. Linting a
	// broken program still succeeds — 200 with the findings.
	src := "own(\"a\",\"b\",0.6).\nrel(X,Y) :- own(X,Y).\n"
	rec := do(t, testServer(), "POST", "/lint?outputs=rel", src)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		Diagnostics []lint.Diagnostic `json:"diagnostics"`
		Errors      int               `json:"errors"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Errors != 1 || len(out.Diagnostics) != 1 {
		t.Fatalf("want one error, got %s", rec.Body)
	}
	d := out.Diagnostics[0]
	if d.Code != lint.CodeArity || d.Pos.Line != 2 || d.Pos.Col != 13 {
		t.Errorf("want %s at 2:13, got %s at %d:%d", lint.CodeArity, d.Code, d.Pos.Line, d.Pos.Col)
	}
}

func TestReasonEndpoint(t *testing.T) {
	body, _ := json.Marshal(map[string]any{
		"program": "ctr(X,X) :- own(X,_Y,_W).\nrel(X,Y) :- ctr(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.\nctr(X,Y) :- rel(X,Y).\nctr(X,X) :- own(_Y,X,_W).",
		"facts": map[string][][]any{
			"own": {{"a", "b", 0.6}, {"b", "c", 0.6}},
		},
		"query": []string{"ctr"},
	})
	rec := do(t, testServer(), "POST", "/reason", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		Facts map[string][][]any `json:"facts"`
		Stats struct {
			Rounds       int   `json:"rounds"`
			DerivedFacts int   `json:"derived_facts"`
			Attempts     int64 `json:"match_attempts"`
			MaxWork      int64 `json:"max_work"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Stats.Rounds < 1 || out.Stats.DerivedFacts < 1 ||
		out.Stats.Attempts < 1 || out.Stats.MaxWork < 1 {
		t.Errorf("stats not populated: %s", rec.Body)
	}
	got := map[[2]string]bool{}
	for _, row := range out.Facts["ctr"] {
		if len(row) == 2 {
			got[[2]string{row[0].(string), row[1].(string)}] = true
		}
	}
	// a controls b directly and c through b.
	for _, want := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "c"}} {
		if !got[want] {
			t.Errorf("missing ctr(%s,%s) in %s", want[0], want[1], rec.Body)
		}
	}
}

// TestReasonEndpointRejectsBadProgram pins the 422 contract: error-severity
// findings refuse evaluation and the body carries the diagnostics.
func TestReasonEndpointRejectsBadProgram(t *testing.T) {
	body, _ := json.Marshal(map[string]any{
		"program": "win(X) :- move(X,Y), not win(Y).",
		"facts":   map[string][][]any{"move": {{"a", "b"}}},
		"query":   []string{"win"},
	})
	rec := do(t, testServer(), "POST", "/reason", string(body))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		Error       string            `json:"error"`
		Diagnostics []lint.Diagnostic `json:"diagnostics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Error == "" || len(out.Diagnostics) == 0 {
		t.Fatalf("want error + diagnostics, got %s", rec.Body)
	}
	found := false
	for _, d := range out.Diagnostics {
		if d.Code == lint.CodeNotStratified {
			found = true
		}
	}
	if !found {
		t.Errorf("want a %s diagnostic, got %s", lint.CodeNotStratified, rec.Body)
	}
}

func TestReasonEndpointBadRequests(t *testing.T) {
	h := testServer()
	if rec := do(t, h, "POST", "/reason", "{"); rec.Code != http.StatusBadRequest {
		t.Errorf("truncated JSON: status = %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/reason", "{}"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing program: status = %d", rec.Code)
	}
	body, _ := json.Marshal(map[string]any{
		"program": "p(X) :- q(X).",
		"facts":   map[string][][]any{"q": {{true}}},
	})
	if rec := do(t, h, "POST", "/reason", string(body)); rec.Code != http.StatusBadRequest {
		t.Errorf("boolean fact argument: status = %d", rec.Code)
	}
}
