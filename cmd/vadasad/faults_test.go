package main

// Fault-injection tests: a blocking measure (honours its context, releases on
// demand) and a panicking measure are registered through server.extraMeasures
// so the tests can hold a request open at a precise point, blow a deadline,
// disconnect a client, fill the in-flight semaphore, or crash a handler —
// and then prove the daemon reacts the way the operational-hardening design
// promises.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"vadasa"
)

// blockingMeasure parks inside AssessContext until its context is cancelled
// or the test closes release. Entries and exit errors are reported on
// buffered channels so tests can synchronise without sleeps.
type blockingMeasure struct {
	entered chan struct{}
	release chan struct{}
	got     chan error
}

func newBlockingMeasure() *blockingMeasure {
	return &blockingMeasure{
		entered: make(chan struct{}, 8),
		release: make(chan struct{}),
		got:     make(chan error, 8),
	}
}

func (m *blockingMeasure) Name() string { return "blocking" }

func (m *blockingMeasure) Assess(d *vadasa.Dataset, sem vadasa.Semantics) ([]float64, error) {
	return m.AssessContext(context.Background(), d, sem)
}

func (m *blockingMeasure) AssessContext(ctx context.Context, d *vadasa.Dataset, sem vadasa.Semantics) ([]float64, error) {
	select {
	case m.entered <- struct{}{}:
	default:
	}
	select {
	case <-ctx.Done():
		err := fmt.Errorf("blocking measure interrupted: %w", ctx.Err())
		select {
		case m.got <- err:
		default:
		}
		return nil, err
	case <-m.release:
		return make([]float64, len(d.Rows)), nil
	}
}

var _ vadasa.ContextRiskMeasure = (*blockingMeasure)(nil)

// panickyMeasure simulates a buggy plug-in measure.
type panickyMeasure struct{}

func (panickyMeasure) Name() string { return "panicky" }

func (panickyMeasure) Assess(*vadasa.Dataset, vadasa.Semantics) ([]float64, error) {
	panic("injected fault: measure exploded")
}

func faultServer(t *testing.T, measures map[string]func() vadasa.RiskMeasure, mutate func(*server)) (*server, http.Handler) {
	t.Helper()
	s := &server{
		newFramework:  func() (*vadasa.Framework, error) { return vadasa.New(), nil },
		logf:          t.Logf,
		extraMeasures: measures,
	}
	if mutate != nil {
		mutate(s)
	}
	return s, s.routes()
}

// TestDeadlineExceededMidAssess blows the per-request deadline while the risk
// measure is running and expects a prompt 504 — the request must not keep
// burning CPU until the client gives up.
func TestDeadlineExceededMidAssess(t *testing.T) {
	m := newBlockingMeasure()
	_, h := faultServer(t,
		map[string]func() vadasa.RiskMeasure{"blocking": func() vadasa.RiskMeasure { return m }},
		func(s *server) { s.requestTimeout = 100 * time.Millisecond })

	start := time.Now()
	rec := do(t, h, "POST", "/assess?measure=blocking", figure1CSV(t))
	elapsed := time.Since(start)

	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Fatalf("body = %s, want a deadline hint", rec.Body)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("request took %s; cancellation was not prompt", elapsed)
	}
	select {
	case err := <-m.got:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("measure saw %v, want context.DeadlineExceeded", err)
		}
	default:
		t.Fatal("measure never observed the cancelled context")
	}
}

// TestDeadlineExceededMidAnonymize is the same through the anonymization
// cycle: the context must reach the cycle's assessment step.
func TestDeadlineExceededMidAnonymize(t *testing.T) {
	m := newBlockingMeasure()
	_, h := faultServer(t,
		map[string]func() vadasa.RiskMeasure{"blocking": func() vadasa.RiskMeasure { return m }},
		func(s *server) { s.requestTimeout = 100 * time.Millisecond })

	rec := do(t, h, "POST", "/anonymize?measure=blocking", figure1CSV(t))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rec.Code, rec.Body)
	}
	select {
	case err := <-m.got:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("measure saw %v, want context.DeadlineExceeded", err)
		}
	default:
		t.Fatal("the anonymization cycle never handed the context to the measure")
	}
}

// TestClientDisconnectCancelsWork simulates a client hanging up mid-request:
// the handler must unwind promptly (499 in the log), the measure must see
// context.Canceled, and no goroutine may be left behind.
func TestClientDisconnectCancelsWork(t *testing.T) {
	m := newBlockingMeasure()
	_, h := faultServer(t,
		map[string]func() vadasa.RiskMeasure{"blocking": func() vadasa.RiskMeasure { return m }},
		func(s *server) { s.requestTimeout = time.Minute })

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/assess?measure=blocking", strings.NewReader(figure1CSV(t))).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rec, req)
		close(done)
	}()

	select {
	case <-m.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("measure never started")
	}
	cancel()

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not unwind after the client disconnected")
	}
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d: %s", rec.Code, statusClientClosedRequest, rec.Body)
	}
	select {
	case err := <-m.got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("measure saw %v, want context.Canceled", err)
		}
	default:
		t.Fatal("measure never observed the cancellation")
	}

	// No goroutine leak: everything spawned for the request must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestOversizedBody413 checks the body cap trips with a clear JSON error.
func TestOversizedBody413(t *testing.T) {
	_, h := faultServer(t, nil, func(s *server) { s.maxBody = 64 })
	rec := do(t, h, "POST", "/assess", figure1CSV(t)) // well over 64 bytes
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "64-byte limit") {
		t.Fatalf("body = %s, want the byte limit spelled out", rec.Body)
	}
}

// TestLoadShedding fills the in-flight semaphore and expects the next request
// to be shed with 429 + Retry-After while the liveness probe stays exempt.
func TestLoadShedding(t *testing.T) {
	m := newBlockingMeasure()
	_, h := faultServer(t,
		map[string]func() vadasa.RiskMeasure{"blocking": func() vadasa.RiskMeasure { return m }},
		func(s *server) {
			s.requestTimeout = time.Minute
			s.inflight = make(chan struct{}, 1)
		})

	csv := figure1CSV(t)
	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest("POST", "/assess?measure=blocking", strings.NewReader(csv))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		firstDone <- rec
	}()
	select {
	case <-m.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the measure")
	}

	shed := do(t, h, "POST", "/assess", csv)
	if shed.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", shed.Code, shed.Body)
	}
	if shed.Header().Get("Retry-After") == "" {
		t.Fatal("shed response is missing Retry-After")
	}
	if rec := do(t, h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d while at capacity, want 200", rec.Code)
	}

	close(m.release)
	select {
	case rec := <-firstDone:
		if rec.Code != http.StatusOK {
			t.Fatalf("first request finished with %d: %s", rec.Code, rec.Body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first request never finished after release")
	}

	// The semaphore slot must have been returned.
	if rec := do(t, h, "POST", "/categorize", csv); rec.Code != http.StatusOK {
		t.Fatalf("follow-up request = %d, want 200: %s", rec.Code, rec.Body)
	}
}

// TestPanicRecovery proves one crashing request cannot take the daemon down:
// the panic is answered with a JSON 500 and the next request is served
// normally.
func TestPanicRecovery(t *testing.T) {
	_, h := faultServer(t,
		map[string]func() vadasa.RiskMeasure{"panicky": func() vadasa.RiskMeasure { return panickyMeasure{} }},
		nil)

	rec := do(t, h, "POST", "/assess?measure=panicky", figure1CSV(t))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Fatalf("body = %s, want a generic internal error (no stack leak)", rec.Body)
	}
	if strings.Contains(rec.Body.String(), "exploded") {
		t.Fatalf("body = %s leaks the panic value", rec.Body)
	}

	// The server keeps serving.
	if rec := do(t, h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic = %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/assess", figure1CSV(t)); rec.Code != http.StatusOK {
		t.Fatalf("assess after panic = %d: %s", rec.Code, rec.Body)
	}
}

// TestBudgetParam exercises the per-request reasoning budget: a tiny budget
// must trip the engine's work cap on /explain, and out-of-range values are
// rejected up front.
func TestBudgetParam(t *testing.T) {
	_, h := faultServer(t, nil, func(s *server) { s.budgetCeiling = 1000 })
	csv := figure1CSV(t)

	rec := do(t, h, "POST", "/explain?measure=re-identification&tuple=4&budget=10", csv)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("tiny budget: status = %d, want 422: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "work budget") {
		t.Fatalf("tiny budget: body = %s, want the work-budget error", rec.Body)
	}

	rec = do(t, h, "POST", "/assess?budget=2000", csv)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "ceiling") {
		t.Fatalf("over ceiling: status = %d, body = %s", rec.Code, rec.Body)
	}

	rec = do(t, h, "POST", "/assess?budget=-5", csv)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("negative budget: status = %d", rec.Code)
	}

	// A generous budget changes nothing.
	rec = do(t, h, "POST", "/assess?budget=999", csv)
	if rec.Code != http.StatusOK {
		t.Fatalf("valid budget: status = %d: %s", rec.Code, rec.Body)
	}
}

// TestHeaderCleanup: a UTF-8 BOM and stray whitespace around header names
// must not break categorization or the schema check.
func TestHeaderCleanup(t *testing.T) {
	csv := figure1CSV(t)
	header, rest, _ := strings.Cut(csv, "\n")
	names := strings.Split(header, ",")
	for i := range names {
		names[i] = " " + names[i] + " "
	}
	dirty := "\ufeff" + strings.Join(names, ",") + "\n" + rest

	rec := do(t, testServer(), "POST", "/categorize", dirty)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"Id"`) {
		t.Fatalf("body = %s, want the cleaned Id attribute", rec.Body)
	}
}

// TestGracefulShutdownDrains starts the real hardened http.Server, parks a
// request inside a measure, asks for shutdown and proves the in-flight
// request completes with 200 before Shutdown returns.
func TestGracefulShutdownDrains(t *testing.T) {
	m := newBlockingMeasure()
	s, _ := faultServer(t,
		map[string]func() vadasa.RiskMeasure{"blocking": func() vadasa.RiskMeasure { return m }},
		func(s *server) { s.requestTimeout = time.Minute })

	httpSrv := newHTTPServer("127.0.0.1:0", s, 5*time.Second, time.Minute)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- httpSrv.Serve(ln) }()

	type result struct {
		status int
		body   string
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/assess?measure=blocking",
			"text/csv", strings.NewReader(figure1CSV(t)))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		resc <- result{status: resp.StatusCode, body: string(body)}
	}()
	select {
	case <-m.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never reached the measure")
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- httpSrv.Shutdown(ctx)
	}()

	// Give Shutdown a moment to close the listener, then let the parked
	// request finish; it must still be answered.
	time.Sleep(50 * time.Millisecond)
	close(m.release)

	select {
	case res := <-resc:
		if res.err != nil {
			t.Fatalf("in-flight request failed during shutdown: %v", res.err)
		}
		if res.status != http.StatusOK {
			t.Fatalf("in-flight request = %d during shutdown: %s", res.status, res.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown did not drain cleanly: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown never returned")
	}
	if err := <-serveDone; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
}
