// Command vadasa is the command-line front end of the Vada-SA framework:
// generate synthetic microdata, categorize attributes, assess statistical
// disclosure risk, anonymize, and simulate re-identification attacks.
//
// Usage:
//
//	vadasa datasets
//	vadasa generate  -name R25A4W -out data.csv
//	vadasa categorize -in data.csv
//	vadasa assess    -in data.csv -measure k-anonymity -k 3
//	vadasa anonymize -in data.csv -measure k-anonymity -k 3 -threshold 0.5 \
//	                 -out anon.csv [-recode] [-explain]
//	vadasa attack    -in data.csv [-anonymized anon.csv]
//
// CSV files carry a header row; attribute categories are inferred from the
// header names with the framework's experience base and can be overridden
// with -id/-qi/-weight.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"vadasa"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "datasets":
		err = cmdDatasets()
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "categorize":
		err = cmdCategorize(os.Args[2:])
	case "assess":
		err = cmdAssess(os.Args[2:])
	case "anonymize":
		err = cmdAnonymize(os.Args[2:])
	case "attack":
		err = cmdAttack(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "reason":
		err = cmdReason(os.Args[2:])
	case "kb":
		err = cmdKB(os.Args[2:])
	case "pipeline":
		err = cmdPipeline(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "scorecard":
		err = cmdScorecard(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "vadasa: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vadasa: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: vadasa <command> [flags]

commands:
  datasets    list the Figure 6 synthetic dataset family
  generate    generate a synthetic microdata CSV
  categorize  infer attribute categories for a CSV
  assess      estimate per-tuple disclosure risk
  anonymize   run the anonymization cycle
  attack      simulate a re-identification attack
  explain     explain one tuple's disclosure risk (derivation tree)
  reason      evaluate a declarative reasoning program
  kb          export or validate a knowledge-base JSON file
  pipeline    run a declarative anonymization job from a JSON config
  inspect     summarize a microdata CSV (schema, categories, 2-anonymity)
  scorecard   assess under every registered risk measure`)
}

func cmdDatasets() error {
	fmt.Println("Figure 6 dataset family (use with: vadasa generate -name <name>):")
	for _, name := range []string{
		"R6A4U", "R12A4U", "R25A4W", "R25A4U", "R25A4V", "R50A4W",
		"R50A4U", "R50A5W", "R50A6W", "R50A8W", "R50A9W", "R100A4U",
	} {
		fmt.Println(" ", name)
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	name := fs.String("name", "", "Figure 6 dataset name (e.g. R25A4W); overrides the other knobs")
	tuples := fs.Int("tuples", 10000, "number of tuples")
	qis := fs.Int("qis", 4, "number of quasi-identifiers (1-9)")
	dist := fs.String("dist", "W", "distribution family: W, U or V")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var d *vadasa.Dataset
	if *name != "" {
		var err error
		d, err = vadasa.GenerateByName(*name)
		if err != nil {
			return err
		}
	} else {
		var df vadasa.Distribution
		switch strings.ToUpper(*dist) {
		case "W":
			df = vadasa.DistW
		case "U":
			df = vadasa.DistU
		case "V":
			df = vadasa.DistV
		default:
			return fmt.Errorf("unknown distribution %q", *dist)
		}
		d = vadasa.Generate(vadasa.GeneratorConfig{
			Tuples: *tuples, QIs: *qis, Dist: df, Seed: *seed,
		})
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := vadasa.WriteCSV(w, d); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d tuples, %d quasi-identifiers\n",
		d.Name, len(d.Rows), len(d.QuasiIdentifiers()))
	return nil
}

// loadFlags are the shared input flags of the data-handling commands.
type loadFlags struct {
	in     *string
	ids    *string
	qi     *string
	weight *string
	kb     *string
	scale  *float64
}

func addLoadFlags(fs *flag.FlagSet) loadFlags {
	return loadFlags{
		in:     fs.String("in", "", "input CSV path (required)"),
		ids:    fs.String("id", "", "comma-separated direct-identifier columns (overrides inference)"),
		qi:     fs.String("qi", "", "comma-separated quasi-identifier columns (overrides inference)"),
		weight: fs.String("weight", "", "sampling-weight column (overrides inference)"),
		kb:     fs.String("kb", "", "knowledge-base JSON to load (experience, hierarchy, ownership)"),
		scale:  fs.Float64("estimate-weights", 0, "estimate sampling weights as scale x combination frequency (0 = off)"),
	}
}

// load reads a CSV, infers attribute categories through the framework, and
// applies manual overrides.
func (lf loadFlags) load(f *vadasa.Framework) (*vadasa.Dataset, *vadasa.CategorizationResult, error) {
	if *lf.in == "" {
		return nil, nil, fmt.Errorf("-in is required")
	}
	if *lf.kb != "" {
		kbFile, err := os.Open(*lf.kb)
		if err != nil {
			return nil, nil, err
		}
		err = f.LoadKB(kbFile)
		kbFile.Close()
		if err != nil {
			return nil, nil, err
		}
	}
	file, err := os.Open(*lf.in)
	if err != nil {
		return nil, nil, err
	}
	defer file.Close()

	// First pass: read the header to build a neutral schema.
	header, err := readHeader(*lf.in)
	if err != nil {
		return nil, nil, err
	}
	attrs := make([]vadasa.Attribute, len(header))
	for i, h := range header {
		attrs[i] = vadasa.Attribute{Name: h, Category: vadasa.NonIdentifying}
	}
	overrides := map[string]vadasa.Category{}
	for _, n := range splitList(*lf.ids) {
		overrides[n] = vadasa.Identifier
	}
	for _, n := range splitList(*lf.qi) {
		overrides[n] = vadasa.QuasiIdentifier
	}
	if *lf.weight != "" {
		overrides[*lf.weight] = vadasa.Weight
	}
	for i := range attrs {
		if c, ok := overrides[attrs[i].Name]; ok {
			attrs[i].Category = c
		}
	}

	// Categorize the remaining attributes by name.
	names := make([]string, 0, len(attrs))
	for _, a := range attrs {
		if _, ok := overrides[a.Name]; !ok {
			names = append(names, a.Name)
		}
	}
	report := categorizeNames(f, names)
	for i := range attrs {
		if c, ok := report.Categories[attrs[i].Name]; ok {
			attrs[i].Category = c
		}
	}

	d, err := vadasa.ReadCSV(file, strings.TrimSuffix(*lf.in, ".csv"), attrs)
	if err != nil {
		return nil, nil, err
	}
	if *lf.scale > 0 {
		if err := vadasa.EstimateWeights(d, *lf.scale); err != nil {
			return nil, nil, err
		}
	}
	return d, report, nil
}

func categorizeNames(f *vadasa.Framework, names []string) *vadasa.CategorizationResult {
	// Register a throwaway dataset to reuse the framework's categorizer
	// configuration without mutating its dictionary: categorize directly.
	tmp := vadasa.NewDataset(fmt.Sprintf("tmp-%d", len(names)), toAttrs(names))
	report, err := f.Register(tmp)
	if err != nil {
		return &vadasa.CategorizationResult{}
	}
	return report
}

func toAttrs(names []string) []vadasa.Attribute {
	attrs := make([]vadasa.Attribute, len(names))
	for i, n := range names {
		attrs[i] = vadasa.Attribute{Name: n}
	}
	return attrs
}

func readHeader(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var line strings.Builder
	buf := make([]byte, 1)
	for {
		if _, err := f.Read(buf); err != nil {
			return nil, fmt.Errorf("reading header of %s: %w", path, err)
		}
		if buf[0] == '\n' {
			break
		}
		line.WriteByte(buf[0])
	}
	fields := strings.Split(strings.TrimRight(line.String(), "\r"), ",")
	return fields, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func cmdCategorize(args []string) error {
	fs := flag.NewFlagSet("categorize", flag.ExitOnError)
	lf := addLoadFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	f := vadasa.New()
	d, report, err := lf.load(f)
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %-18s %s\n", "attribute", "category", "explanation")
	for _, a := range d.Attrs {
		fmt.Printf("%-24s %-18s %s\n", a.Name, a.Category, report.Explanations[a.Name])
	}
	for _, c := range report.Conflicts {
		fmt.Println("conflict:", c)
	}
	if len(report.Unknown) > 0 {
		fmt.Println("unknown (need expert input):", strings.Join(report.Unknown, ", "))
	}
	return nil
}

type measureOpts struct {
	measure   *string
	k         *int
	msu       *int
	estimator *string
	sensitive *string
	tval      *float64
}

func measureFlags(fs *flag.FlagSet) measureOpts {
	return measureOpts{
		measure:   fs.String("measure", "k-anonymity", "risk measure: re-identification, k-anonymity, individual-risk, suda, l-diversity, t-closeness"),
		k:         fs.Int("k", 2, "k-anonymity threshold / l-diversity L"),
		msu:       fs.Int("msu", 3, "SUDA minimal-sample-unique size threshold"),
		estimator: fs.String("estimator", "posterior", "individual-risk estimator: ratio, posterior, monte-carlo"),
		sensitive: fs.String("sensitive", "", "sensitive attribute for l-diversity / t-closeness"),
		tval:      fs.Float64("t", 0.3, "t-closeness distribution-distance bound"),
	}
}

func (mo measureOpts) build() (vadasa.RiskMeasure, error) {
	switch *mo.measure {
	case "re-identification":
		return vadasa.ReIdentification{}, nil
	case "k-anonymity":
		return vadasa.KAnonymity{K: *mo.k}, nil
	case "individual-risk":
		switch *mo.estimator {
		case "ratio":
			return vadasa.IndividualRisk{Estimator: vadasa.RatioEstimator}, nil
		case "posterior":
			return vadasa.IndividualRisk{Estimator: vadasa.PosteriorEstimator}, nil
		case "monte-carlo":
			return vadasa.IndividualRisk{Estimator: vadasa.MonteCarloEstimator}, nil
		default:
			return nil, fmt.Errorf("unknown estimator %q", *mo.estimator)
		}
	case "suda":
		return vadasa.SUDA{Threshold: *mo.msu}, nil
	case "l-diversity":
		if *mo.sensitive == "" {
			return nil, fmt.Errorf("l-diversity needs -sensitive")
		}
		return vadasa.LDiversity{L: *mo.k, Sensitive: *mo.sensitive}, nil
	case "t-closeness":
		if *mo.sensitive == "" {
			return nil, fmt.Errorf("t-closeness needs -sensitive")
		}
		return vadasa.TCloseness{T: *mo.tval, Sensitive: *mo.sensitive}, nil
	default:
		return nil, fmt.Errorf("unknown risk measure %q", *mo.measure)
	}
}

func cmdAssess(args []string) error {
	fs := flag.NewFlagSet("assess", flag.ExitOnError)
	lf := addLoadFlags(fs)
	mo := measureFlags(fs)
	threshold := fs.Float64("threshold", 0.5, "risk threshold T")
	top := fs.Int("top", 10, "show the N riskiest tuples")
	impact := fs.Bool("impact", false, "report per-attribute impact on the risky-tuple count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f := vadasa.New()
	d, _, err := lf.load(f)
	if err != nil {
		return err
	}
	m, err := mo.build()
	if err != nil {
		return err
	}
	risks, err := f.AssessRisk(d, m)
	if err != nil {
		return err
	}
	summary := vadasa.SummarizeRisks(risks, *threshold)
	fmt.Printf("measure %s\n", m.Name())
	summary.Render(os.Stdout)
	type scored struct {
		id   int
		risk float64
	}
	var risky []scored
	for i, r := range risks {
		if r > *threshold {
			risky = append(risky, scored{d.Rows[i].ID, r})
		}
	}
	sort.Slice(risky, func(i, j int) bool {
		if risky[i].risk != risky[j].risk {
			return risky[i].risk > risky[j].risk
		}
		return risky[i].id < risky[j].id
	})
	for i, s := range risky {
		if i >= *top {
			fmt.Printf("  ... and %d more\n", len(risky)-*top)
			break
		}
		fmt.Printf("  tuple %d: risk %s\n", s.id, strconv.FormatFloat(s.risk, 'g', 4, 64))
	}
	if *impact {
		impacts, err := vadasa.AttributeImpacts(d, *mo.k, *threshold)
		if err != nil {
			return err
		}
		fmt.Println("attribute impact (risky tuples rescued when ignored):")
		for _, ai := range impacts {
			fmt.Printf("  %-24s %d -> %d (drop %d)\n", ai.Attr, ai.RiskyWith, ai.RiskyWithout, ai.Drop())
		}
	}
	return nil
}

func cmdAnonymize(args []string) error {
	fs := flag.NewFlagSet("anonymize", flag.ExitOnError)
	lf := addLoadFlags(fs)
	mo := measureFlags(fs)
	threshold := fs.Float64("threshold", 0.5, "risk threshold T")
	out := fs.String("out", "", "output CSV path (default stdout)")
	recode := fs.Bool("recode", false, "try hierarchy-based global recoding before suppression")
	explain := fs.Bool("explain", false, "print the full decision log")
	report := fs.Bool("report", false, "print a statistics-preservation (utility) report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f := vadasa.New()
	d, _, err := lf.load(f)
	if err != nil {
		return err
	}
	m, err := mo.build()
	if err != nil {
		return err
	}
	res, err := f.Anonymize(d, vadasa.CycleOptions{
		Measure:     m,
		Threshold:   *threshold,
		UseRecoding: *recode,
	})
	if err != nil {
		return err
	}
	if *report {
		rep, err := vadasa.CompareUtility(d, res.Dataset)
		if err != nil {
			return err
		}
		rep.Render(os.Stderr)
	}
	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	if err := vadasa.WriteCSV(w, res.Dataset); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"anonymization cycle: %d iterations, %d risky tuples, %d nulls injected, info loss %.1f%%, %d residual\n",
		res.Iterations, res.EverRisky, res.NullsInjected, 100*res.InfoLoss, len(res.Residual))
	if *explain {
		for _, dec := range res.Decisions {
			// Decision.String renders cell values as digests — the explain
			// log motivates each step without disclosing microdata.
			fmt.Fprintln(os.Stderr, " ", dec.String())
		}
	}
	return nil
}

func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	lf := addLoadFlags(fs)
	anonPath := fs.String("anonymized", "", "attack this anonymized CSV instead of the original")
	cap := fs.Int("cap", 1000, "max oracle records per tuple")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f := vadasa.New()
	d, _, err := lf.load(f)
	if err != nil {
		return err
	}
	oracle, truth, err := vadasa.BuildOracle(d, *cap)
	if err != nil {
		return err
	}
	target := d
	if *anonPath != "" {
		file, err := os.Open(*anonPath)
		if err != nil {
			return err
		}
		defer file.Close()
		target, err = vadasa.ReadCSV(file, "anonymized", d.Attrs)
		if err != nil {
			return err
		}
	}
	res, err := oracle.Run(target, truth, 1)
	if err != nil {
		return err
	}
	fmt.Printf("oracle: %d population records for %d tuples\n", len(oracle.Records), len(d.Rows))
	fmt.Printf("expected re-identifications: %.2f of %d tuples (%.2f%%)\n",
		res.ExpectedSuccesses, len(d.Rows), 100*res.ExpectedSuccesses/float64(len(d.Rows)))
	fmt.Printf("sampled re-identifications:  %d\n", res.SampledSuccesses)
	fmt.Printf("mean blocking-set size:      %.1f\n", res.MeanBlockSize)
	return nil
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	lf := addLoadFlags(fs)
	mo := measureFlags(fs)
	tuple := fs.Int("tuple", 0, "tuple id to explain (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tuple == 0 {
		return fmt.Errorf("-tuple is required")
	}
	f := vadasa.New()
	d, _, err := lf.load(f)
	if err != nil {
		return err
	}
	m, err := mo.build()
	if err != nil {
		return err
	}
	ex, err := f.ExplainRisk(d, m, *tuple)
	if err != nil {
		return err
	}
	fmt.Print(ex)
	return nil
}

func cmdReason(args []string) error {
	fs := flag.NewFlagSet("reason", flag.ExitOnError)
	program := fs.String("program", "", "path of the reasoning program (required)")
	query := fs.String("query", "", "comma-separated predicates to print (default: all derived)")
	check := fs.Bool("warded", false, "verify the wardedness restriction before running")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *program == "" {
		return fmt.Errorf("-program is required")
	}
	src, err := os.ReadFile(*program)
	if err != nil {
		return err
	}
	p, err := vadasa.ParseProgram(string(src))
	if err != nil {
		return err
	}
	if *check {
		if err := vadasa.CheckWarded(p); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "program is warded")
	}
	res, err := vadasa.Reason(p, vadasa.NewFactDB(), nil)
	if err != nil {
		return err
	}
	preds := res.DB().Predicates()
	if *query != "" {
		preds = splitList(*query)
	}
	for _, pred := range preds {
		for _, fact := range res.Facts(pred) {
			fmt.Printf("%s%s\n", pred, fact)
		}
	}
	for _, v := range res.Violations {
		fmt.Fprintln(os.Stderr, v)
	}
	return nil
}

// cmdKB exports the framework's default knowledge base, or validates and
// pretty-prints an existing one.
func cmdKB(args []string) error {
	fs := flag.NewFlagSet("kb", flag.ExitOnError)
	in := fs.String("in", "", "knowledge-base JSON to validate and re-emit")
	out := fs.String("out", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f := vadasa.New()
	if *in != "" {
		file, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer file.Close()
		if err := f.LoadKB(file); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "knowledge base is valid")
	}
	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	return f.SaveKB(w)
}

// cmdInspect summarizes a microdata CSV: schema, categories, distinct
// counts, and a first risk glance.
func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	lf := addLoadFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	f := vadasa.New()
	d, report, err := lf.load(f)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s: %d tuples, %d attributes\n", d.Name, len(d.Rows), len(d.Attrs))
	fmt.Printf("%-24s %-18s %9s %7s\n", "attribute", "category", "distinct", "nulls")
	for i, a := range d.Attrs {
		nulls := 0
		for _, r := range d.Rows {
			if r.Values[i].IsNull() {
				nulls++
			}
		}
		fmt.Printf("%-24s %-18s %9d %7d\n", a.Name, a.Category, len(d.DistinctValues(i)), nulls)
	}
	if len(report.Unknown) > 0 {
		fmt.Println("uncategorized attributes:", strings.Join(report.Unknown, ", "))
	}
	if len(d.QuasiIdentifiers()) > 0 {
		violating := vadasa.VerifyKAnonymity(d, 2, vadasa.MaybeMatch)
		fmt.Printf("tuples violating 2-anonymity: %d of %d\n", len(violating), len(d.Rows))
	}
	return nil
}

// cmdScorecard assesses the dataset under every registered risk measure —
// the multi-angle confidentiality scorecard reviewed before release.
func cmdScorecard(args []string) error {
	fs := flag.NewFlagSet("scorecard", flag.ExitOnError)
	lf := addLoadFlags(fs)
	threshold := fs.Float64("threshold", 0.5, "risk threshold T")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f := vadasa.New()
	d, _, err := lf.load(f)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %8s %10s %10s %10s\n", "measure", "risky", "mean", "median", "max")
	for _, ms := range f.AssessAllRegistered(d, *threshold) {
		if ms.Err != nil {
			fmt.Printf("%-20s error: %v\n", ms.Name, ms.Err)
			continue
		}
		s := ms.Summary
		fmt.Printf("%-20s %8d %10.4g %10.4g %10.4g\n", ms.Name, s.OverThreshold, s.Mean, s.Median, s.Max)
	}
	return nil
}
