package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vadasa"
)

func writeInput(t *testing.T, dir string) string {
	t.Helper()
	d := vadasa.Generate(vadasa.GeneratorConfig{
		Tuples: 600, QIs: 4, Dist: vadasa.DistV, Seed: 3,
	})
	path := filepath.Join(dir, "in.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := vadasa.WriteCSV(f, d); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPipeline(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir)
	out := filepath.Join(dir, "out.csv")
	decisions := filepath.Join(dir, "decisions.log")
	report := filepath.Join(dir, "report.txt")

	var logBuf bytes.Buffer
	err := runPipeline(PipelineConfig{
		Input:          in,
		Output:         out,
		DecisionLog:    decisions,
		Report:         report,
		Measure:        "k-anonymity",
		K:              2,
		Threshold:      0.5,
		ValidateAttack: true,
	}, &logBuf)
	if err != nil {
		t.Fatalf("runPipeline: %v\nlog:\n%s", err, logBuf.String())
	}
	for _, want := range []string{"nulls injected", "expected re-identifications", "wrote"} {
		if !strings.Contains(logBuf.String(), want) {
			t.Errorf("log missing %q:\n%s", want, logBuf.String())
		}
	}

	// The output must be k-anonymous when re-read.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	schema := vadasa.Generate(vadasa.GeneratorConfig{Tuples: 1, QIs: 4, Dist: vadasa.DistV, Seed: 3}).Attrs
	back, err := vadasa.ReadCSV(f, "out", schema)
	if err != nil {
		t.Fatal(err)
	}
	if got := vadasa.VerifyKAnonymity(back, 2, vadasa.MaybeMatch); len(got) != 0 {
		t.Fatalf("output not 2-anonymous: %v", got)
	}

	// Artifacts exist and carry content.
	decBytes, err := os.ReadFile(decisions)
	if err != nil || len(decBytes) == 0 {
		t.Fatalf("decision log: %v, %d bytes", err, len(decBytes))
	}
	if !strings.Contains(string(decBytes), "local-suppression") {
		t.Error("decision log has no suppressions")
	}
	repBytes, err := os.ReadFile(report)
	if err != nil || !strings.Contains(string(repBytes), "utility report") {
		t.Fatalf("report: %v, %q", err, repBytes)
	}
}

func TestRunPipelineValidation(t *testing.T) {
	var sink bytes.Buffer
	if err := runPipeline(PipelineConfig{}, &sink); err == nil {
		t.Error("empty config accepted")
	}
	if err := runPipeline(PipelineConfig{Input: "no-such.csv", Output: "x"}, &sink); err == nil {
		t.Error("missing input accepted")
	}
	dir := t.TempDir()
	in := writeInput(t, dir)
	if err := runPipeline(PipelineConfig{
		Input: in, Output: filepath.Join(dir, "o.csv"),
		Measure: "bogus",
	}, &sink); err == nil {
		t.Error("bogus measure accepted")
	}
	if err := runPipeline(PipelineConfig{
		Input: in, Output: filepath.Join(dir, "o.csv"),
		NonIdentifying: []string{"NoSuchAttr"},
	}, &sink); err == nil {
		t.Error("unknown non-identifying attribute accepted")
	}
}

func TestRunPipelineWithEstimatedWeights(t *testing.T) {
	dir := t.TempDir()
	// A dataset without a weight column.
	d := vadasa.NewDataset("w", []vadasa.Attribute{
		{Name: "Area", Category: vadasa.QuasiIdentifier},
		{Name: "Sector", Category: vadasa.QuasiIdentifier},
	})
	rows := [][2]string{
		{"Roma", "Textiles"}, {"Roma", "Commerce"}, {"Roma", "Commerce"},
		{"Milano", "Construction"}, {"Milano", "Construction"},
	}
	for _, r := range rows {
		d.Append(&vadasa.Row{Values: []vadasa.Value{vadasa.Const(r[0]), vadasa.Const(r[1])}})
	}
	in := filepath.Join(dir, "in.csv")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := vadasa.WriteCSV(f, d); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var sink bytes.Buffer
	err = runPipeline(PipelineConfig{
		Input:           in,
		Output:          filepath.Join(dir, "out.csv"),
		Quasi:           []string{"Area", "Sector"},
		EstimateWeights: 30,
		Measure:         "re-identification",
		Threshold:       0.05, // 1/30 risk of unique tuples is above this
	}, &sink)
	if err != nil {
		t.Fatalf("runPipeline: %v\n%s", err, sink.String())
	}
	if !strings.Contains(sink.String(), "nulls injected") {
		t.Fatalf("log: %s", sink.String())
	}
}
