package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"vadasa"
)

// PipelineConfig is the declarative job description for `vadasa pipeline`: a
// data officer versions this file next to the knowledge base and the
// reasoning programs, and the release process becomes one reproducible
// command.
type PipelineConfig struct {
	// Input CSV path (header row required).
	Input string `json:"input"`
	// KB optionally loads a knowledge base before anything else.
	KB string `json:"kb,omitempty"`
	// Overrides force attribute categories: maps of attribute names.
	Identifiers    []string `json:"identifiers,omitempty"`
	Quasi          []string `json:"quasiIdentifiers,omitempty"`
	WeightAttr     string   `json:"weightAttribute,omitempty"`
	NonIdentifying []string `json:"nonIdentifying,omitempty"`
	// EstimateWeights, when positive, synthesizes sampling weights as
	// scale × combination frequency.
	EstimateWeights float64 `json:"estimateWeights,omitempty"`
	// Measure selects the risk measure (default k-anonymity).
	Measure   string  `json:"measure,omitempty"`
	K         int     `json:"k,omitempty"`
	MSU       int     `json:"msu,omitempty"`
	Sensitive string  `json:"sensitive,omitempty"`
	TBound    float64 `json:"t,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// UseRecoding prepends hierarchy-based global recoding.
	UseRecoding bool `json:"useRecoding"`
	// Output is the anonymized CSV path (required).
	Output string `json:"output"`
	// DecisionLog and Report are optional artifact paths.
	DecisionLog string `json:"decisionLog,omitempty"`
	Report      string `json:"report,omitempty"`
	// ValidateAttack runs the oracle attack before and after and fails
	// the pipeline if anonymization did not reduce expected successes.
	ValidateAttack bool `json:"validateAttack"`
}

func cmdPipeline(args []string) error {
	fs := flag.NewFlagSet("pipeline", flag.ExitOnError)
	configPath := fs.String("config", "", "pipeline JSON config (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("-config is required")
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		return err
	}
	var cfg PipelineConfig
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return fmt.Errorf("parsing %s: %w", *configPath, err)
	}
	return runPipeline(cfg, os.Stderr)
}

// runPipeline executes the job; progress goes to log.
func runPipeline(cfg PipelineConfig, logw io.Writer) error {
	if cfg.Input == "" || cfg.Output == "" {
		return fmt.Errorf("pipeline: input and output are required")
	}
	if cfg.Measure == "" {
		cfg.Measure = "k-anonymity"
	}
	if cfg.K == 0 {
		cfg.K = 2
	}
	if cfg.MSU == 0 {
		cfg.MSU = 3
	}
	if cfg.TBound == 0 {
		cfg.TBound = 0.3
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.5
	}

	f := vadasa.New()
	if cfg.KB != "" {
		kbFile, err := os.Open(cfg.KB)
		if err != nil {
			return err
		}
		err = f.LoadKB(kbFile)
		kbFile.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(logw, "pipeline: loaded knowledge base %s\n", cfg.KB)
	}

	// Reuse the CLI loader with the config's overrides.
	in, ids, qi, weight, kb, scale :=
		cfg.Input, joinList(cfg.Identifiers), joinList(cfg.Quasi), cfg.WeightAttr, "", cfg.EstimateWeights
	lf := loadFlags{in: &in, ids: &ids, qi: &qi, weight: &weight, kb: &kb, scale: &scale}
	d, report, err := lf.load(f)
	if err != nil {
		return err
	}
	for _, n := range cfg.NonIdentifying {
		i := d.AttrIndex(n)
		if i < 0 {
			return fmt.Errorf("pipeline: no attribute %q", n)
		}
		d.Attrs[i].Category = vadasa.NonIdentifying
	}
	fmt.Fprintf(logw, "pipeline: loaded %d tuples, %d quasi-identifiers, %d unknown attributes\n",
		len(d.Rows), len(d.QuasiIdentifiers()), len(report.Unknown))

	mo := measureOpts{
		measure: &cfg.Measure, k: &cfg.K, msu: &cfg.MSU,
		estimator: strPtr("posterior"), sensitive: &cfg.Sensitive, tval: &cfg.TBound,
	}
	m, err := mo.build()
	if err != nil {
		return err
	}

	var oracle *vadasa.IdentityOracle
	var truth map[int]string
	var before *vadasa.AttackResult
	if cfg.ValidateAttack {
		oracle, truth, err = vadasa.BuildOracle(d, 500)
		if err != nil {
			return err
		}
		before, err = oracle.Run(d, truth, 1)
		if err != nil {
			return err
		}
	}

	res, err := f.Anonymize(d, vadasa.CycleOptions{
		Measure: m, Threshold: cfg.Threshold, UseRecoding: cfg.UseRecoding,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "pipeline: %d iterations, %d nulls injected, %d residual\n",
		res.Iterations, res.NullsInjected, len(res.Residual))

	outFile, err := os.Create(cfg.Output)
	if err != nil {
		return err
	}
	if err := vadasa.WriteCSV(outFile, res.Dataset); err != nil {
		outFile.Close()
		return err
	}
	if err := outFile.Close(); err != nil {
		return err
	}

	if cfg.DecisionLog != "" {
		logFile, err := os.Create(cfg.DecisionLog)
		if err != nil {
			return err
		}
		for _, dec := range res.Decisions {
			// Decision.String digests cell values; the decision log is an
			// operational artifact, not a second copy of the microdata.
			fmt.Fprintln(logFile, dec.String())
		}
		if err := logFile.Close(); err != nil {
			return err
		}
	}
	if cfg.Report != "" {
		rep, err := vadasa.CompareUtility(d, res.Dataset)
		if err != nil {
			return err
		}
		repFile, err := os.Create(cfg.Report)
		if err != nil {
			return err
		}
		rep.Render(repFile)
		if err := repFile.Close(); err != nil {
			return err
		}
	}

	if cfg.ValidateAttack {
		after, err := oracle.Run(res.Dataset, truth, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(logw, "pipeline: expected re-identifications %.2f -> %.2f\n",
			before.ExpectedSuccesses, after.ExpectedSuccesses)
		if after.ExpectedSuccesses > before.ExpectedSuccesses {
			return fmt.Errorf("pipeline: attack validation failed: expected successes rose %.2f -> %.2f",
				before.ExpectedSuccesses, after.ExpectedSuccesses)
		}
	}
	fmt.Fprintf(logw, "pipeline: wrote %s\n", cfg.Output)
	return nil
}

func joinList(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ","
		}
		out += x
	}
	return out
}

func strPtr(s string) *string { return &s }
