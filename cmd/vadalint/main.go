// Command vadalint is the diagnostics-grade static analyzer for Vadalog
// programs: it parses every .vada file it is given (directories are walked
// recursively), runs the full lint pass registry, and reports structured,
// position-tagged diagnostics instead of the engine's first-error-wins
// strings.
//
// Usage:
//
//	vadalint [flags] [path ...]
//
// Paths are .vada files or directories. With -library the built-in program
// templates are linted as well (or instead, when no paths are given).
// Programs declare their extensional/output predicates and waivers with
// source directives:
//
//	% vadalint:input tuple supervised
//	% vadalint:output riskout
//	% vadalint:allow VL003 reason...         (this or the next line)
//	% vadalint:allow-file VL001 reason...    (whole file)
//
// or via the -inputs/-outputs/-allow flags, which apply to every file.
//
// Exit status: 0 when no error-severity diagnostics were found, 1 when at
// least one error was reported, 2 on usage or I/O problems.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vadasa/internal/datalog/lint"
	"vadasa/internal/programs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vadalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	library := fs.Bool("library", false, "also lint the built-in program templates")
	minSev := fs.String("severity", "info", "lowest severity to report: info, warn, or error")
	inputs := fs.String("inputs", "", "comma-separated extensional predicates (applies to every file)")
	outputs := fs.String("outputs", "", "comma-separated output predicates (applies to every file)")
	allow := fs.String("allow", "", "comma-separated diagnostic codes to suppress everywhere")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: vadalint [flags] [path ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 && !*library {
		fs.Usage()
		return 2
	}
	floor, ok := parseSeverity(*minSev)
	if !ok {
		fmt.Fprintf(stderr, "vadalint: unknown severity %q\n", *minSev)
		return 2
	}

	var diags []lint.Diagnostic
	status := 0
	total := 0
	for _, root := range fs.Args() {
		files, err := collect(root)
		if err != nil {
			fmt.Fprintf(stderr, "vadalint: %v\n", err)
			return 2
		}
		// A directory without .vada files is fine on its own (e.g. a package
		// whose programs are generated in Go); only an entirely empty run is
		// a usage error, checked after the loop.
		total += len(files)
		for _, file := range files {
			src, err := os.ReadFile(file)
			if err != nil {
				fmt.Fprintf(stderr, "vadalint: %v\n", err)
				return 2
			}
			diags = append(diags, lint.Source(file, string(src), &lint.Options{
				File:    file,
				Inputs:  splitList(*inputs),
				Outputs: splitList(*outputs),
				Allow:   splitList(*allow),
			})...)
		}
	}
	if total == 0 && fs.NArg() > 0 && !*library {
		fmt.Fprintf(stderr, "vadalint: no .vada files under %s\n", strings.Join(fs.Args(), " "))
		return 2
	}
	if *library {
		for _, e := range programs.Library() {
			diags = append(diags, lint.Check(e.Build(), &lint.Options{
				File:    "library/" + e.Name,
				Inputs:  append(splitList(*inputs), e.Inputs...),
				Outputs: append(splitList(*outputs), e.Outputs...),
				Allow:   append(splitList(*allow), e.Allow...),
			})...)
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if d.Severity >= floor {
			kept = append(kept, d)
		}
		if d.Severity == lint.SeverityError {
			status = 1
		}
	}
	diags = kept
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Pos.File != diags[j].Pos.File {
			return diags[i].Pos.File < diags[j].Pos.File
		}
		return false // per-file order is already positional
	})

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "vadalint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, lint.FormatText(d))
		}
	}
	return status
}

// collect resolves one CLI path into the .vada files underneath it.
func collect(root string) ([]string, error) {
	info, err := os.Stat(root)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{root}, nil
	}
	var files []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".vada") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}

func parseSeverity(s string) (lint.Severity, bool) {
	switch s {
	case "info":
		return lint.SeverityInfo, true
	case "warn", "warning":
		return lint.SeverityWarn, true
	case "error":
		return lint.SeverityError, true
	}
	return 0, false
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
