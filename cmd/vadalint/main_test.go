package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vadasa/internal/datalog/lint"
)

func writeFile(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCleanDirectory(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "ok.vada", "% vadalint:input q\n% vadalint:output p\np(X) :- q(X).\n")
	var out, errb strings.Builder
	if code := run([]string{dir}, &out, &errb); code != 0 {
		t.Fatalf("want exit 0, got %d (stdout=%q stderr=%q)", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("clean run must be silent, got %q", out.String())
	}
}

func TestRunErrorExitsOne(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "clash.vada", "% vadalint:output rel\nown(\"a\",\"b\",0.6).\nrel(X,Y) :- own(X,Y).\n")
	var out, errb strings.Builder
	if code := run([]string{dir}, &out, &errb); code != 1 {
		t.Fatalf("want exit 1, got %d (stderr=%q)", code, errb.String())
	}
	if !strings.Contains(out.String(), "VL002") {
		t.Errorf("want a VL002 diagnostic on stdout, got %q", out.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "clash.vada", "own(\"a\",\"b\",0.6).\nrel(X,Y) :- own(X,Y).\n")
	var out, errb strings.Builder
	if code := run([]string{"-json", "-outputs", "rel", dir}, &out, &errb); code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("stdout is not a diagnostics array: %v\n%s", err, out.String())
	}
	if len(diags) != 1 || diags[0].Code != lint.CodeArity {
		t.Errorf("want one VL002, got %+v", diags)
	}
	if diags[0].Pos.Line != 2 {
		t.Errorf("want line 2, got %d", diags[0].Pos.Line)
	}
}

func TestRunSeverityFloor(t *testing.T) {
	dir := t.TempDir()
	// Singleton Y is warn-severity: reported by default, hidden at -severity
	// error, and the exit stays 0 either way.
	writeFile(t, dir, "single.vada", "% vadalint:input q\n% vadalint:output p\np(X) :- q(X,Y).\n")
	var out, errb strings.Builder
	if code := run([]string{dir}, &out, &errb); code != 0 {
		t.Fatalf("warn-only program must exit 0, got %d", code)
	}
	if !strings.Contains(out.String(), "VL003") {
		t.Errorf("want the VL003 warning, got %q", out.String())
	}
	out.Reset()
	if code := run([]string{"-severity", "error", dir}, &out, &errb); code != 0 {
		t.Fatalf("want exit 0, got %d", code)
	}
	if out.String() != "" {
		t.Errorf("-severity error must hide warnings, got %q", out.String())
	}
}

func TestRunLibrary(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-library"}, &out, &errb); code != 0 {
		t.Fatalf("built-in library must lint clean, got exit %d:\n%s%s", code, out.String(), errb.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no arguments: want exit 2, got %d", code)
	}
	if code := run([]string{"-severity", "bogus", "x.vada"}, &out, &errb); code != 2 {
		t.Errorf("bad severity: want exit 2, got %d", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.vada")}, &out, &errb); code != 2 {
		t.Errorf("missing file: want exit 2, got %d", code)
	}
}
