// Command vadasaw is the Vada-SA shard worker: a small, stateless process
// that scores anonymization risk shards on behalf of a vadasad supervisor
// (internal/dist). It listens on -addr, announces the bound address on
// stdout ("vadasaw listening on HOST:PORT" — the spawn handshake), and
// serves two endpoints:
//
//	POST /task     score one shard (JSON Task in, JSON Reply out)
//	GET  /healthz  liveness for the supervisor's heartbeats
//
//	vadasaw [-addr 127.0.0.1:0] [-hold 0s] [-quiet]
//
// Scoring is a pure function of the shard (risk.GroupScorer), so the
// worker needs no journal, no recovery and no coordination: a crashed or
// killed worker is simply replaced, and a re-delivered task recomputes
// bit-identical values. -hold injects an artificial per-task delay for
// chaos testing (widening the window for mid-task kills); -quiet drops
// the per-task stderr diagnostics.
package main

import (
	"os"

	"vadasa/internal/dist"
)

func main() {
	os.Exit(dist.WorkerMain(os.Args[1:], os.Stdout))
}
