// Command experiments regenerates the paper's evaluation tables: the
// Figure 6 dataset inventory and every series of Figures 7a–7f.
//
// Usage:
//
//	experiments [-fig all|6|7a|7b|7c|7d|7e|7f] [-scale 1.0]
//
// scale shrinks the dataset sizes proportionally (e.g. -scale 0.1 for a
// quick smoke run); 1.0 reproduces the paper's 6k–100k tuple sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vadasa/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 6, 7a, 7b, 7c, 7d, 7e, 7f")
	scale := flag.Float64("scale", 1.0, "dataset size scale factor (1.0 = paper sizes)")
	flag.Parse()

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	ran := false
	run := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		ran = true
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(figure %s regenerated in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("6", func() error {
		experiments.RenderFig6(os.Stdout, experiments.Fig6(*scale))
		return nil
	})
	var fig7a []experiments.CycleStats
	run("7a", func() error {
		var err error
		fig7a, err = experiments.Fig7a(*scale)
		if err != nil {
			return err
		}
		experiments.RenderFig7a(os.Stdout, fig7a)
		return nil
	})
	run("7b", func() error {
		if fig7a == nil {
			var err error
			fig7a, err = experiments.Fig7a(*scale)
			if err != nil {
				return err
			}
		}
		experiments.RenderFig7b(os.Stdout, fig7a)
		return nil
	})
	run("7c", func() error {
		stats, err := experiments.Fig7c(*scale)
		if err != nil {
			return err
		}
		experiments.RenderFig7c(os.Stdout, stats)
		return nil
	})
	run("7d", func() error {
		stats, err := experiments.Fig7d(*scale)
		if err != nil {
			return err
		}
		experiments.RenderFig7d(os.Stdout, stats)
		return nil
	})
	run("7e", func() error {
		stats, err := experiments.Fig7e(*scale)
		if err != nil {
			return err
		}
		experiments.RenderFig7e(os.Stdout, stats)
		return nil
	})
	run("7f", func() error {
		stats, err := experiments.Fig7f(*scale)
		if err != nil {
			return err
		}
		experiments.RenderFig7f(os.Stdout, stats)
		return nil
	})

	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
