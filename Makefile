GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite (fault-injection tests included) under the race
# detector; the cancellation paths are only trustworthy if they are
# race-clean.
race:
	$(GO) test -race ./...

check: vet race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
