GO ?= go

.PHONY: build test vet race staticcheck govulncheck check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite (fault-injection tests included) under the race
# detector; the cancellation paths are only trustworthy if they are
# race-clean.
race:
	$(GO) test -race ./...

# The static analyzers are separate modules, not dependencies of this one
# (the repo stays stdlib-only). When the binaries are on PATH they run;
# otherwise the target notes the skip and succeeds, so `make check` works
# on a bare toolchain. CI installs pinned versions and therefore always
# runs both.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it pinned)"; \
	fi

check: vet race staticcheck govulncheck

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
