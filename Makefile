GO ?= go

.PHONY: build test vet race lint-programs vet-analyzers taint-report staticcheck govulncheck check bench chaos soak replchaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite (fault-injection tests included) under the race
# detector; the cancellation paths are only trustworthy if they are
# race-clean.
race:
	$(GO) test -race ./...

# lint-programs runs vadalint (internal/datalog/lint) over every Vadalog
# artifact the repo ships: the generated template library plus the .vada
# files under docs/programs and the clean corpus in internal/datalog/
# testdata/programs. Any error-severity diagnostic fails the build.
lint-programs:
	$(GO) run ./cmd/vadalint -library internal/programs internal/datalog/testdata docs/programs

# vet-analyzers builds the engine-invariant vet passes (tools/analyzers is
# a separate stdlib-only module), runs their own test suite, then applies
# them to this module through the `go vet -vettool` protocol.
vet-analyzers:
	cd tools/analyzers && $(GO) build -o vadavet ./cmd/vadavet && $(GO) test ./...
	$(GO) vet -vettool=$(abspath tools/analyzers/vadavet) ./...

# taint-report runs the conftaint confidentiality-flow analyzer through its
# own driver (bypassing go vet's result cache) and writes a machine-readable
# inventory — every finding plus every active //conftaint:ok waiver with its
# justification — to taint-report.json. Non-gating: the gate is conftaint
# inside vet-analyzers; this is the audit artifact a data officer reviews.
taint-report:
	cd tools/analyzers && $(GO) run ./cmd/taintreport -C $(abspath .) > $(abspath taint-report.json)
	cat taint-report.json

# The static analyzers are separate modules, not dependencies of this one
# (the repo stays stdlib-only). When the binaries are on PATH they run;
# otherwise the target notes the skip and succeeds, so `make check` works
# on a bare toolchain. CI installs pinned versions and therefore always
# runs both.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it pinned)"; \
	fi

check: vet lint-programs vet-analyzers race staticcheck govulncheck

# chaos runs the process-level fault suite under the race detector: worker
# SIGKILL mid-lease, dropped/duplicated/truncated RPCs, torn journal tails
# and degraded-mode serving, asserting every recovery is bit-identical to
# the undisturbed control. Non-gating (a separate opt-in CI job); the raw
# stream lands in chaos.out for the CI artifact.
chaos:
	$(GO) test -race -count=1 -v \
		-run 'Chaos|Fault|Degrad|Hedg|SpawnAndKill|TornJournal' \
		./internal/dist/ ./internal/stream/ ./cmd/vadasad/ > chaos.out 2>&1 || { cat chaos.out; exit 1; }
	cat chaos.out

# soak runs the long randomized schedules under the race detector: the
# stream's crash/fault schedule plus the replication primary-kill/promote-
# under-load schedule. Fresh seeds every run, SOAK_SECONDS of wall clock per
# test (default 60). Non-gating like chaos — a separate opt-in CI job with
# soak.out as the artifact.
SOAK_SECONDS ?= 60
soak:
	VADASA_SOAK=1 VADASA_SOAK_SECONDS=$(SOAK_SECONDS) \
		$(GO) test -race -count=1 -v -run 'StreamSoak|ReplSoak' \
		./internal/stream/ ./internal/replica/ > soak.out 2>&1 || { cat soak.out; exit 1; }
	cat soak.out

# replchaos runs the replication fault suite under the race detector:
# primary SIGKILL between intent and publish followed by a fenced promotion,
# torn/duplicated ship frames, divergence detection, demoted-primary
# rejection, and the HTTP failover path. Non-gating (a separate opt-in CI
# job); the raw stream lands in replchaos.out for the CI artifact.
replchaos:
	$(GO) test -race -count=1 -v \
		-run 'Repl|Failover|Promote|Fenc|Ship|Standby|Sync|Diverg|Epoch' \
		./internal/replica/ ./cmd/vadasad/ > replchaos.out 2>&1 || { cat replchaos.out; exit 1; }
	cat replchaos.out

# bench runs the tier-1 benchmark suite and records it as BENCH_10.json (see
# DESIGN.md "Benchmark record format"): standard columns plus the custom
# figure metrics (riskeval-ms/op, nulls/op, loss%/op), machine-readable for
# regression tracking. The raw stream lands in bench.out for inspection.
BENCH_JSON ?= BENCH_10.json
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./... > bench.out || { cat bench.out; exit 1; }
	cat bench.out
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) bench.out
