// Benchmarks regenerating the paper's evaluation (Section 5), one family per
// table/figure, at bench-friendly scale; `go run ./cmd/experiments` produces
// the full-scale tables. Custom metrics report the figures' y-axes:
// nulls/op for Figures 7a/7c/7d, loss%/op for Figure 7b, and riskeval-ms/op
// (the dominant component of Figure 7e/7f) for the timing figures.
package vadasa

import (
	"fmt"
	"testing"
	"time"

	"vadasa/internal/anon"
	"vadasa/internal/cluster"
	"vadasa/internal/datalog"
	"vadasa/internal/govern"
	"vadasa/internal/mdb"
	"vadasa/internal/programs"
	"vadasa/internal/risk"
	"vadasa/internal/synth"
)

// benchScale shrinks the paper's dataset sizes for the bench suite.
const benchScale = 2500

func benchDataset(dist synth.Dist, seed int64) *mdb.Dataset {
	return synth.Generate(synth.Config{Tuples: benchScale, QIs: 4, Dist: dist, Seed: seed})
}

func runCycle(b *testing.B, d *mdb.Dataset, assessor risk.Assessor, sem mdb.Semantics) *anon.Result {
	b.Helper()
	res, err := anon.Run(d, anon.Config{
		Assessor:   assessor,
		Threshold:  0.5,
		Anonymizer: anon.LocalSuppression{Choice: anon.AttrMostSelective},
		Semantics:  sem,
		Order:      anon.OrderLessSignificantFirst,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig7aNullsByK: nulls injected by k-anonymity threshold, per
// distribution family (Figure 7a) — the loss%/op metric doubles as
// Figure 7b.
func BenchmarkFig7aNullsByK(b *testing.B) {
	dists := []struct {
		name string
		dist synth.Dist
		seed int64
	}{{"W", synth.DistW, 3}, {"U", synth.DistU, 4}, {"V", synth.DistV, 5}}
	for _, dc := range dists {
		d := benchDataset(dc.dist, dc.seed)
		for k := 2; k <= 5; k++ {
			b.Run(fmt.Sprintf("%s/k=%d", dc.name, k), func(b *testing.B) {
				var res *anon.Result
				for i := 0; i < b.N; i++ {
					res = runCycle(b, d, risk.KAnonymity{K: k}, mdb.MaybeMatch)
				}
				b.ReportMetric(float64(res.NullsInjected), "nulls/op")
				b.ReportMetric(100*res.InfoLoss, "loss%/op")
			})
		}
	}
}

// BenchmarkFig7cSemantics: maybe-match vs standard labelled-null semantics
// (Figure 7c) — the standard semantics proliferates nulls.
func BenchmarkFig7cSemantics(b *testing.B) {
	d := benchDataset(synth.DistU, 4)
	for _, sem := range []mdb.Semantics{mdb.MaybeMatch, mdb.StandardNulls} {
		b.Run(sem.String(), func(b *testing.B) {
			var res *anon.Result
			for i := 0; i < b.N; i++ {
				res = runCycle(b, d, risk.KAnonymity{K: 2}, sem)
			}
			b.ReportMetric(float64(res.NullsInjected), "nulls/op")
		})
	}
}

// BenchmarkFig7dRelationships: nulls injected as control relationships grow
// (Figure 7d).
func BenchmarkFig7dRelationships(b *testing.B) {
	d := benchDataset(synth.DistU, 4)
	var ids []string
	for _, r := range d.Rows {
		ids = append(ids, r.Values[0].Constant())
	}
	for _, nRels := range []int{0, 10, 20, 30, 40} {
		b.Run(fmt.Sprintf("rels=%d", nRels), func(b *testing.B) {
			assessor := risk.Assessor(risk.KAnonymity{K: 2})
			if nRels > 0 {
				g := cluster.NewGraph()
				if err := cluster.StarOwnerships(g, ids, nRels, 4, 7); err != nil {
					b.Fatal(err)
				}
				assessor = cluster.Assessor{Base: assessor, Graph: g}
			}
			var res *anon.Result
			for i := 0; i < b.N; i++ {
				res = runCycle(b, d, assessor, mdb.MaybeMatch)
			}
			b.ReportMetric(float64(res.NullsInjected), "nulls/op")
		})
	}
}

// BenchmarkFig7eBySize: full-cycle time by dataset size and risk technique
// (Figure 7e); the riskeval-ms metric is the dotted line.
func BenchmarkFig7eBySize(b *testing.B) {
	for _, tuples := range []int{600, 1250, 2500, 5000} {
		d := synth.Generate(synth.Config{Tuples: tuples, QIs: 4, Dist: synth.DistU, Seed: 4})
		for _, a := range []risk.Assessor{
			risk.IndividualRisk{Estimator: risk.MonteCarlo, Samples: 200, Seed: 1},
			risk.KAnonymity{K: 2},
			risk.SUDA{Threshold: 3},
		} {
			b.Run(fmt.Sprintf("n=%d/%s", tuples, a.Name()), func(b *testing.B) {
				var res *anon.Result
				for i := 0; i < b.N; i++ {
					res = runCycle(b, d, a, mdb.MaybeMatch)
				}
				b.ReportMetric(float64(res.RiskEvalTime.Milliseconds()), "riskeval-ms/op")
			})
		}
	}
}

// BenchmarkFig7fByQIs: full-cycle time by number of quasi-identifiers
// (Figure 7f).
func BenchmarkFig7fByQIs(b *testing.B) {
	for _, qis := range []int{4, 5, 6, 8, 9} {
		d := synth.Generate(synth.Config{Tuples: benchScale, QIs: qis, Dist: synth.DistW, Seed: 6})
		for _, a := range []risk.Assessor{
			risk.IndividualRisk{Estimator: risk.MonteCarlo, Samples: 200, Seed: 1},
			risk.KAnonymity{K: 2},
			risk.SUDA{Threshold: 3},
		} {
			b.Run(fmt.Sprintf("q=%d/%s", qis, a.Name()), func(b *testing.B) {
				var res *anon.Result
				for i := 0; i < b.N; i++ {
					res = runCycle(b, d, a, mdb.MaybeMatch)
				}
				b.ReportMetric(float64(res.RiskEvalTime.Milliseconds()), "riskeval-ms/op")
			})
		}
	}
}

// Substrate micro-benchmarks.

// BenchmarkGrouping measures the maybe-match grouping engine every risk
// measure sits on.
func BenchmarkGrouping(b *testing.B) {
	d := benchDataset(synth.DistU, 4)
	// Inject a few nulls to exercise the null-row path.
	for i := 0; i < 20; i++ {
		d.Rows[i*7].Values[1+(i%4)] = d.Nulls.Fresh()
	}
	qi := d.QuasiIdentifiers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mdb.ComputeGroups(d, qi, mdb.MaybeMatch)
	}
}

// BenchmarkSUDAMSUs measures minimal-sample-unique enumeration.
func BenchmarkSUDAMSUs(b *testing.B) {
	d := synth.Generate(synth.Config{Tuples: benchScale, QIs: 6, Dist: synth.DistW, Seed: 9})
	qi := d.QuasiIdentifiers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		risk.MSUs(d, qi, 3, mdb.MaybeMatch)
	}
}

// BenchmarkIndividualRisk compares the three posterior estimators.
func BenchmarkIndividualRisk(b *testing.B) {
	d := benchDataset(synth.DistU, 4)
	for _, est := range []risk.Estimator{risk.Ratio, risk.PosteriorSeries, risk.MonteCarlo} {
		b.Run(est.String(), func(b *testing.B) {
			a := risk.IndividualRisk{Estimator: est, Samples: 200, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := a.Assess(d, mdb.MaybeMatch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReasoningEngine measures the Datalog± substrate on a recursive
// program with aggregation (the company-control rules).
func BenchmarkReasoningEngine(b *testing.B) {
	prog, err := datalog.Parse(`
		ctr(X,X) :- own(X,Y,W).
		rel(X,Y) :- ctr(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.
		ctr(X,Y) :- rel(X,Y).
	`)
	if err != nil {
		b.Fatal(err)
	}
	edb := datalog.NewDatabase()
	// A chain of holdings with side ownership.
	for i := 0; i < 100; i++ {
		edb.Add("own",
			datalog.Str(fmt.Sprintf("c%d", i)),
			datalog.Str(fmt.Sprintf("c%d", i+1)),
			datalog.Num(0.6))
		edb.Add("own",
			datalog.Str(fmt.Sprintf("c%d", i)),
			datalog.Str(fmt.Sprintf("c%d", (i+50)%101)),
			datalog.Num(0.3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := datalog.Run(prog, edb, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnonymizationCycle measures the end-to-end cycle at a fixed
// setting (the headline workload).
func BenchmarkAnonymizationCycle(b *testing.B) {
	d := benchDataset(synth.DistV, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCycle(b, d, risk.KAnonymity{K: 3}, mdb.MaybeMatch)
	}
}

// Declarative-path benchmarks at the paper's full dataset sizes. Unlike the
// bench-scale families above, these run the risk programs through the
// reasoning engine at n up to 500000 tuples under a 1 GiB governor budget
// (a representative production -mem-budget): the largest datapoint doubles
// as the capacity gate for the evaluator's columnar fact store.

var declarativeSizes = []int{50_000, 200_000, 500_000}

func declarativeEDB(n int) *datalog.Database {
	d := synth.Generate(synth.Config{Tuples: n, QIs: 4, Dist: synth.DistU, Seed: 4})
	edb := datalog.NewDatabase()
	programs.TupleFacts(edb, d)
	return edb
}

func runDeclarativeRisk(b *testing.B, prog *datalog.Program, edb *datalog.Database,
	root *govern.Governor, wantFacts int) {
	b.Helper()
	eg := root.Child("evaluation", govern.Limits{})
	defer eg.Close()
	res, err := datalog.Run(prog, edb, &datalog.Options{MaxFacts: 10_000_000, Governor: eg})
	if err != nil {
		b.Fatal(err)
	}
	if got := len(res.Facts("riskout")); got != wantFacts {
		b.Fatalf("riskout = %d facts, want %d", got, wantFacts)
	}
}

// BenchmarkDeclarativeKAnonymity is Algorithm 4 through the reasoning
// engine: per-combination mcount plus the threshold case split.
func BenchmarkDeclarativeKAnonymity(b *testing.B) {
	for _, n := range declarativeSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prog, edb := programs.KAnonymity(4, 2), declarativeEDB(n)
			root := govern.New("bench", govern.Limits{MaxBytes: 1 << 30})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runDeclarativeRisk(b, prog, edb, root, n)
			}
		})
	}
}

// BenchmarkDeclarativeReIdentification is Algorithm 3 through the
// reasoning engine: msum of sampling weights per combination, risk 1/ΣW.
func BenchmarkDeclarativeReIdentification(b *testing.B) {
	for _, n := range declarativeSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prog, edb := programs.ReIdentification(4), declarativeEDB(n)
			root := govern.New("bench", govern.Limits{MaxBytes: 1 << 30})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runDeclarativeRisk(b, prog, edb, root, n)
			}
		})
	}
}

// BenchmarkKAnonymityNativeVsDeclarative times the native assessor and the
// declarative program on the same 50k dataset and reports their ratio —
// the price of full explainability, tracked release over release as the
// decl-vs-native-ratio metric in BENCH_*.json.
func BenchmarkKAnonymityNativeVsDeclarative(b *testing.B) {
	const n = 50_000
	d := synth.Generate(synth.Config{Tuples: n, QIs: 4, Dist: synth.DistU, Seed: 4})
	edb := datalog.NewDatabase()
	programs.TupleFacts(edb, d)
	prog := programs.KAnonymity(4, 2)
	native := risk.KAnonymity{K: 2}
	var tNative, tDecl time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := native.Assess(d, mdb.MaybeMatch); err != nil {
			b.Fatal(err)
		}
		tNative += time.Since(t0)
		t1 := time.Now()
		res, err := datalog.Run(prog, edb, &datalog.Options{MaxFacts: 10_000_000})
		if err != nil {
			b.Fatal(err)
		}
		tDecl += time.Since(t1)
		if got := len(res.Facts("riskout")); got != n {
			b.Fatalf("riskout = %d facts, want %d", got, n)
		}
	}
	if tNative > 0 {
		b.ReportMetric(float64(tDecl)/float64(tNative), "decl-vs-native-ratio")
	}
}
