// Package checktest is a minimal analysistest equivalent: it runs an
// analyzer over a fixture directory and checks the diagnostics against
// `// want "regexp"` comments in the fixture sources. A want comment on a
// line expects exactly one diagnostic on that line whose message matches
// the (double-quoted, backquote-quoted also accepted) regular expression.
// Diagnostics without a matching want, and wants without a diagnostic, fail
// the test.
//
// AST-only analyzers run exactly as before: the fixture files are parsed,
// never compiled, so they may reference undeclared qualifiers. Analyzers
// with NeedsTypes get the full treatment instead: the fixture tree is
// loaded as real packages (directory name = import path, so `testdata/src/b`
// may `import "a"`), type-checked from source in dependency order with the
// standard library resolved through the toolchain's export data, and facts
// are gob round-tripped between packages through the same serialization the
// unitchecker protocol uses — a corpus exercising cross-package summaries
// therefore exercises the wire format too.
package checktest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"vadasa/tools/analyzers/analysis"
	"vadasa/tools/analyzers/unitchecker"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run analyzes the fixture files under dir with a and compares the
// findings against the fixtures' want comments. For AST-only analyzers dir
// is one fixture package; for typed analyzers dir may be either one
// package directory or a `testdata/src` root holding several packages that
// import each other by directory name.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	if a.NeedsTypes {
		runTyped(t, dir, a)
		return
	}
	fset := token.NewFileSet()
	files := parseDir(t, fset, collectGoFiles(t, dir))
	wants := collectWants(t, fset, files)
	diags := unitchecker.RunAnalyzers(fset, files, []*analysis.Analyzer{a})
	var findings []unitchecker.Finding
	for _, d := range diags {
		findings = append(findings, unitchecker.Finding{Analyzer: a.Name, Pos: fset.Position(d.Pos), Message: d.Message})
	}
	matchWants(t, wants, findings)
}

// runTyped loads the fixture tree as type-checked packages and runs the
// analyzer over each in dependency order, facts flowing between them.
func runTyped(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	analysis.RegisterFactTypes(a)
	root, pkgDirs := fixturePackages(t, dir)

	fset := token.NewFileSet()
	type fixturePkg struct {
		path    string
		files   []*ast.File
		imports []string
	}
	pkgs := make(map[string]*fixturePkg)
	var external []string
	seenExternal := make(map[string]bool)
	for _, pd := range pkgDirs {
		rel, err := filepath.Rel(root, pd)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.ToSlash(rel)
		fp := &fixturePkg{path: path, files: parseDir(t, fset, collectGoFiles(t, pd))}
		for _, f := range fp.files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatal(err)
				}
				fp.imports = append(fp.imports, ip)
			}
		}
		pkgs[path] = fp
	}
	for _, fp := range pkgs {
		for _, ip := range fp.imports {
			if _, local := pkgs[ip]; !local && !seenExternal[ip] {
				seenExternal[ip] = true
				external = append(external, ip)
			}
		}
	}
	std := stdImporter(t, fset, external)

	// Topological order over the local import graph: dependencies first,
	// so facts a package exports are on the shelf when its importers run.
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		fp, ok := pkgs[path]
		if !ok || state[path] == 2 {
			return
		}
		if state[path] == 1 {
			t.Fatalf("fixture import cycle through %q", path)
		}
		state[path] = 1
		for _, ip := range fp.imports {
			visit(ip)
		}
		state[path] = 2
		order = append(order, path)
	}
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		visit(p)
	}

	checked := make(map[string]*types.Package)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return std.Import(path)
	})

	store := analysis.NewFactStore()
	var findings []unitchecker.Finding
	var allFiles []*ast.File
	for _, path := range order {
		fp := pkgs[path]
		allFiles = append(allFiles, fp.files...)
		tc := &types.Config{Importer: imp}
		info := unitchecker.NewTypesInfo()
		tpkg, err := tc.Check(path, fset, fp.files, info)
		if err != nil {
			t.Fatalf("type-checking fixture package %q: %v", path, err)
		}
		checked[path] = tpkg
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     fp.files,
			Pkg:       tpkg.Name(),
			Path:      path,
			TypesPkg:  tpkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, unitchecker.Finding{Analyzer: a.Name, Pos: fset.Position(d.Pos), Message: d.Message})
			},
			Facts: store,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %q: %v", a.Name, path, err)
		}
		// Round-trip the facts through the unitchecker wire format after
		// every package: the next package reads exactly what a separate
		// process would have.
		data, err := store.Encode()
		if err != nil {
			t.Fatal(err)
		}
		store = analysis.NewFactStore()
		if err := store.Decode(data); err != nil {
			t.Fatal(err)
		}
	}
	matchWants(t, collectWants(t, fset, allFiles), findings)
}

// fixturePackages resolves dir to (root, package directories): a directory
// holding .go files directly is a single package rooted at its parent;
// otherwise every subdirectory with .go files is a package rooted at dir.
func fixturePackages(t *testing.T, dir string) (string, []string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	direct := false
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			direct = true
			break
		}
	}
	if direct {
		return filepath.Dir(dir), []string{dir}
	}
	var pkgDirs []string
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		gos, globErr := filepath.Glob(filepath.Join(path, "*.go"))
		if globErr != nil {
			return globErr
		}
		if len(gos) > 0 {
			pkgDirs = append(pkgDirs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgDirs) == 0 {
		t.Fatalf("no fixture packages under %s", dir)
	}
	sort.Strings(pkgDirs)
	return dir, pkgDirs
}

// stdExports caches toolchain export-data locations across tests in one
// process; `go list -export` is not cheap.
var (
	stdMu      sync.Mutex
	stdExports = make(map[string]string)
)

// stdImporter resolves non-fixture imports through the toolchain: one
// `go list -export -deps` call discovers the compiler export data for the
// requested packages and everything below them, and a gc importer reads it.
func stdImporter(t *testing.T, fset *token.FileSet, roots []string) types.Importer {
	t.Helper()
	stdMu.Lock()
	defer stdMu.Unlock()
	var missing []string
	for _, r := range roots {
		if _, ok := stdExports[r]; !ok && r != "unsafe" {
			missing = append(missing, r)
		}
	}
	if len(missing) > 0 {
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, missing...)
		out, err := exec.Command("go", args...).Output()
		if err != nil {
			msg := err.Error()
			if ee, ok := err.(*exec.ExitError); ok {
				msg = string(ee.Stderr)
			}
			t.Fatalf("go list -export %v: %s", missing, msg)
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for dec.More() {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err != nil {
				t.Fatal(err)
			}
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
		}
	}
	exports := make(map[string]string, len(stdExports))
	for k, v := range stdExports {
		exports[k] = v
	}
	gc := unitchecker.ExportDataImporter(fset, exports)
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func collectGoFiles(t *testing.T, dir string) []string {
	t.Helper()
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no fixture files under %s", dir)
	}
	sort.Strings(paths)
	return paths
}

func parseDir(t *testing.T, fset *token.FileSet, paths []string) []*ast.File {
	t.Helper()
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	return files
}

func matchWants(t *testing.T, wants []want, findings []unitchecker.Finding) {
	t.Helper()
	matched := make([]bool, len(wants))
	for _, d := range findings {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if !w.re.MatchString(d.Message) {
				t.Errorf("%s: diagnostic %q does not match want %v", d.Pos, d.Message, w.re)
			}
			matched[i] = true
			ok = true
			break
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching want %v", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				expr, err := unquoteWant(strings.TrimSpace(m[1]))
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					t.Fatalf("%s: bad want regexp: %v", pos, err)
				}
				wants = append(wants, want{pos.Filename, pos.Line, re})
			}
		}
	}
	return wants
}

func unquoteWant(s string) (string, error) {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '`') {
		return strconv.Unquote(s)
	}
	return "", fmt.Errorf("want pattern must be a quoted string, got %s", s)
}
