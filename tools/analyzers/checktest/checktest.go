// Package checktest is a minimal analysistest equivalent: it runs an
// analyzer over a fixture directory and checks the diagnostics against
// `// want "regexp"` comments in the fixture sources. A want comment on a
// line expects exactly one diagnostic on that line whose message matches
// the (double-quoted, backquote-quoted also accepted) regular expression.
// Diagnostics without a matching want, and wants without a diagnostic, fail
// the test.
package checktest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"vadasa/tools/analyzers/analysis"
	"vadasa/tools/analyzers/unitchecker"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run analyzes the non-test .go files under dir with a and compares the
// findings against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no fixture files under %s", dir)
	}
	sort.Strings(paths)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}

	wants := collectWants(t, fset, files)
	diags := unitchecker.RunAnalyzers(fset, files, []*analysis.Analyzer{a})

	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if !w.re.MatchString(d.Message) {
				t.Errorf("%s: diagnostic %q does not match want %v", pos, d.Message, w.re)
			}
			matched[i] = true
			ok = true
			break
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching want %v", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				expr, err := unquoteWant(strings.TrimSpace(m[1]))
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					t.Fatalf("%s: bad want regexp: %v", pos, err)
				}
				wants = append(wants, want{pos.Filename, pos.Line, re})
			}
		}
	}
	return wants
}

func unquoteWant(s string) (string, error) {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '`') {
		return strconv.Unquote(s)
	}
	return "", fmt.Errorf("want pattern must be a quoted string, got %s", s)
}
