// Command vadavet bundles the repo's engine-invariant analyzers into a
// `go vet -vettool` compatible binary:
//
//	go build -o vadavet ./cmd/vadavet
//	go vet -vettool=$(pwd)/vadavet ./...        # from the main module
//	./vadavet <dir>                             # standalone directory sweep
package main

import (
	"vadasa/tools/analyzers/conftaint"
	"vadasa/tools/analyzers/ctxpass"
	"vadasa/tools/analyzers/distfence"
	"vadasa/tools/analyzers/governcharge"
	"vadasa/tools/analyzers/hotgroup"
	"vadasa/tools/analyzers/replfence"
	"vadasa/tools/analyzers/streamfence"
	"vadasa/tools/analyzers/unitchecker"
)

func main() {
	unitchecker.Main(conftaint.Analyzer, ctxpass.Analyzer, distfence.Analyzer, governcharge.Analyzer, hotgroup.Analyzer, replfence.Analyzer, streamfence.Analyzer)
}
