// Command taintreport runs the conftaint analyzer over the main module and
// emits a machine-readable JSON inventory: every finding the analyzer would
// report plus every active //conftaint:ok waiver with its justification.
//
// It is the non-gating companion to `go vet -vettool=vadavet`: vet fails the
// build on unwaived findings, taintreport produces the artifact a data
// officer reviews — on a clean tree the findings list is empty and the
// waiver list is the complete record of sanctioned raw-data flows.
//
// Unlike go vet it drives the unitchecker protocol directly (one in-process
// AnalyzeUnit per package over `go list -export -deps` output), so it is
// never satisfied from vet's result cache and always reflects the tree as
// it is on disk.
//
// Usage: taintreport [-C dir] > report.json  (exit 0 even with findings)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"vadasa/tools/analyzers/analysis"
	"vadasa/tools/analyzers/conftaint"
	"vadasa/tools/analyzers/unitchecker"
)

type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Imports    []string
	Standard   bool
}

type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

type waiver struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Justification string `json:"justification"`
}

type report struct {
	Tool     string    `json:"tool"`
	Module   string    `json:"module"`
	Packages int       `json:"packages"`
	Findings []finding `json:"findings"`
	Waivers  []waiver  `json:"waivers"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("taintreport: ")
	dir := flag.String("C", ".", "module directory to analyze")
	flag.Parse()
	analysis.RegisterFactTypes(conftaint.Analyzer)

	root, err := filepath.Abs(*dir)
	if err != nil {
		log.Fatal(err)
	}
	pkgs, module, err := listPackages(root)
	if err != nil {
		log.Fatal(err)
	}

	vetxDir, err := os.MkdirTemp("", "taintreport")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(vetxDir)

	goVersion := goEnv(root, "GOVERSION")
	exports := make(map[string]string)
	vetx := make(map[string]string)
	rep := report{Tool: "conftaint", Module: module, Findings: []finding{}, Waivers: []waiver{}}

	// go list -deps emits dependencies before importers, so by the time a
	// package is analyzed every dependency's facts are already on disk.
	for i, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || !conftaint.Analyzer.Applies(p.ImportPath) {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for j, f := range p.GoFiles {
			files[j] = filepath.Join(p.Dir, f)
		}
		importMap := make(map[string]string, len(p.Imports))
		for _, imp := range p.Imports {
			importMap[imp] = imp
		}
		cfg := &unitchecker.Config{
			ID:          p.ImportPath,
			Compiler:    "gc",
			Dir:         p.Dir,
			ImportPath:  p.ImportPath,
			GoVersion:   goVersion,
			GoFiles:     files,
			ImportMap:   importMap,
			PackageFile: exports,
			PackageVetx: vetx,
			VetxOutput:  filepath.Join(vetxDir, fmt.Sprintf("unit%d.vetx", i)),
		}
		found, err := unitchecker.AnalyzeUnit(cfg, []*analysis.Analyzer{conftaint.Analyzer})
		if err != nil {
			log.Fatalf("%s: %v", p.ImportPath, err)
		}
		vetx[p.ImportPath] = cfg.VetxOutput
		rep.Packages++
		for _, f := range found {
			rep.Findings = append(rep.Findings, finding{
				Analyzer: f.Analyzer,
				File:     relTo(root, f.Pos.Filename),
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		ws, err := scanWaivers(root, files)
		if err != nil {
			log.Fatal(err)
		}
		rep.Waivers = append(rep.Waivers, ws...)
	}

	sort.Slice(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	sort.Slice(rep.Waivers, func(i, j int) bool {
		a, b := rep.Waivers[i], rep.Waivers[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

// listPackages returns the module's packages plus their transitive
// dependencies, dependencies first, with compiler export data built.
func listPackages(root string) ([]listedPackage, string, error) {
	cmd := exec.Command("go", "list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Imports,Standard", "./...")
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, "", fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, "", fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	mod := exec.Command("go", "list", "-m")
	mod.Dir = root
	modOut, err := mod.Output()
	if err != nil {
		return nil, "", fmt.Errorf("go list -m: %v", err)
	}
	return pkgs, strings.TrimSpace(string(modOut)), nil
}

// scanWaivers inventories //conftaint:ok directives so the report shows
// every sanctioned flow alongside its recorded justification.
func scanWaivers(root string, files []string) ([]waiver, error) {
	var ws []waiver
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			pos := strings.Index(line, "//conftaint:ok")
			// A waiver is a directive comment, so //conftaint:ok must open
			// the comment — prose that merely mentions the directive (doc
			// comments explaining the policy) starts its comment earlier.
			if pos < 0 || strings.Index(line, "//") != pos {
				continue
			}
			ws = append(ws, waiver{
				File:          relTo(root, name),
				Line:          i + 1,
				Justification: strings.TrimSpace(line[pos+len("//conftaint:ok"):]),
			})
		}
	}
	return ws, nil
}

func relTo(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

func goEnv(dir, key string) string {
	cmd := exec.Command("go", "env", key)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
