// Package replfence guards the replication fencing invariant: in the
// packages that take part in journal-shipping replication (stream and
// replica), a publish record may be journaled only behind an epoch-fence
// check. A demoted primary that publishes commits a release the promoted
// peer may have already completed and served — exactly-once publication is
// only exactly-once while every publish path consults the fence first.
//
// The pass flags any function in package stream or replica that calls
// appendPublish without also calling checkFence (or the raw FenceCheck
// hook) in the same body. A publish whose fence check is established by the
// caller is annotated with `//replfence:ok <reason>` on the calling line or
// the preceding one. _test.go files are skipped.
package replfence

import (
	"go/ast"
	"go/token"
	"strings"

	"vadasa/tools/analyzers/analysis"
)

// Analyzer is the replfence pass.
var Analyzer = &analysis.Analyzer{
	Name: "replfence",
	Doc:  "replicated publish paths must check the epoch fence before journaling a publish record",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if file.Name.Name != "stream" && file.Name.Name != "replica" {
			continue
		}
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ok := analysis.CollectWaivers(pass.Fset, file, "replfence")
		for _, decl := range file.Decls {
			fn, isFn := decl.(*ast.FuncDecl)
			if !isFn || fn.Body == nil {
				continue
			}
			var publishes []token.Pos
			fenced := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				switch f := call.Fun.(type) {
				case *ast.Ident:
					switch f.Name {
					case "appendPublish":
						publishes = append(publishes, f.Pos())
					case "checkFence", "FenceCheck":
						fenced = true
					}
				case *ast.SelectorExpr:
					switch f.Sel.Name {
					case "appendPublish":
						publishes = append(publishes, f.Sel.Pos())
					case "checkFence", "FenceCheck":
						fenced = true
					}
				}
				return true
			})
			if fenced {
				continue
			}
			for _, pos := range publishes {
				line := pass.Fset.Position(pos).Line
				if ok.Suppresses(line) {
					continue
				}
				pass.Reportf(pos,
					"publish record journaled without an epoch-fence check in %s: call checkFence first, or annotate //replfence:ok with why the caller holds the fence",
					fn.Name.Name)
			}
		}
		ok.ReportStale(pass)
	}
	return nil
}
