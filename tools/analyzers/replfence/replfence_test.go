package replfence

import (
	"testing"

	"vadasa/tools/analyzers/checktest"
)

func TestReplfence(t *testing.T) {
	checktest.Run(t, "testdata/src/a", Analyzer)
}

func TestReplfenceIgnoresOtherPackages(t *testing.T) {
	checktest.Run(t, "testdata/src/b", Analyzer)
}
