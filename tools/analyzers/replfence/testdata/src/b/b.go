package notreplicated

// Other packages may name functions appendPublish freely; the invariant is
// scoped to the packages that take part in replication (stream, replica).

type payload struct{}

func appendPublish(p payload) error { return nil }

func fine(p payload) error {
	return appendPublish(p)
}
