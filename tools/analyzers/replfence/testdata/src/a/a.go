package stream

// Fixture mirroring the shapes the replfence pass must accept and reject.

type publishPayload struct {
	Release int
	File    string
	Digest  string
}

type Stream struct{}

func (s *Stream) checkFence() error                    { return nil }
func (s *Stream) appendPublish(p publishPayload) error { return nil }

// fencedPublish consults the epoch fence before committing: the protocol's
// shape — a demoted primary must fail here, never publish.
func (s *Stream) fencedPublish(p publishPayload) error {
	if err := s.checkFence(); err != nil {
		return err
	}
	return s.appendPublish(p)
}

// unfencedPublish commits a publication no fence guarded: the split-brain
// bug this pass exists for.
func (s *Stream) unfencedPublish(rel int) error {
	return s.appendPublish(publishPayload{Release: rel}) // want `publish record journaled without an epoch-fence check in unfencedPublish`
}

// hookPublish uses the raw fence hook instead of the wrapper; both count.
func (s *Stream) hookPublish(p publishPayload, fence func() error) error {
	if err := FenceCheck(fence); err != nil {
		return err
	}
	return s.appendPublish(p)
}

// FenceCheck stands in for the options hook the real package threads.
func FenceCheck(f func() error) error {
	if f == nil {
		return nil
	}
	return f()
}

// callerFenced relies on its caller's fence check; the annotation records
// that transfer of responsibility.
func (s *Stream) callerFenced(p publishPayload) error {
	//replfence:ok — every caller holds the fence across this helper
	return s.appendPublish(p)
}

func (s *Stream) inlineAnnotated(p publishPayload) error {
	return s.appendPublish(p) //replfence:ok fence held by completePending
}

//replfence:ok leftover waiver, publish was removed // want `stale //replfence:ok waiver`
func (s *Stream) noPublish(p publishPayload) error {
	return nil
}
