module vadasa/tools/analyzers

go 1.24
