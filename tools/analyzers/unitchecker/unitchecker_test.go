package unitchecker_test

import (
	"go/ast"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"vadasa/tools/analyzers/analysis"
	"vadasa/tools/analyzers/unitchecker"
)

// testFact travels between the two fixture units through the vetx files.
type testFact struct{ Msg string }

func (*testFact) AFact() {}

// factAnalyzer exports a fact for every function it defines and reports a
// diagnostic for every cross-package function use whose defining unit
// exported one — so a finding in package b proves the fact survived the
// gob wire format and the vetx file round-trip.
func factAnalyzer() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name:       "factcheck",
		Doc:        "test analyzer exercising the fact protocol",
		NeedsTypes: true,
		FactTypes:  []analysis.Fact{(*testFact)(nil)},
	}
	a.Run = func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					pass.ExportObjectFact(obj, &testFact{Msg: pass.Path + "." + fd.Name.Name})
				}
			}
		}
		for id, obj := range pass.TypesInfo.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg() == pass.TypesPkg {
				continue
			}
			var f testFact
			if pass.ImportObjectFact(fn, &f) {
				pass.Reportf(id.Pos(), "fact: %s", f.Msg)
			}
		}
		return nil
	}
	return a
}

// writeFile is a test helper.
func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}

// TestFactRoundTrip drives AnalyzeUnit exactly as go vet would: unit a is
// compiled with the real compiler for export data and analyzed VetxOnly;
// unit b imports a through ImportMap/PackageFile/PackageVetx and must see
// a's facts.
func TestFactRoundTrip(t *testing.T) {
	a := factAnalyzer()
	analysis.RegisterFactTypes(a)
	dir := t.TempDir()

	asrc := filepath.Join(dir, "a.go")
	writeFile(t, asrc, "package a\n\nfunc F() int { return 1 }\n")
	bsrc := filepath.Join(dir, "b.go")
	writeFile(t, bsrc, "package b\n\nimport \"a\"\n\nfunc G() int { return a.F() }\n")

	aobj := filepath.Join(dir, "a.o")
	cmd := exec.Command("go", "tool", "compile", "-p", "a", "-o", aobj, asrc)
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go tool compile: %v\n%s", err, out)
	}

	avetx := filepath.Join(dir, "a.vetx")
	findings, err := unitchecker.AnalyzeUnit(&unitchecker.Config{
		ID:         "a",
		ImportPath: "a",
		GoFiles:    []string{asrc},
		VetxOnly:   true,
		VetxOutput: avetx,
	}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("unit a: %v", err)
	}
	if len(findings) != 0 {
		t.Fatalf("unit a: unexpected findings %v", findings)
	}
	if st, err := os.Stat(avetx); err != nil || st.Size() == 0 {
		t.Fatalf("unit a wrote no facts: %v", err)
	}

	bvetx := filepath.Join(dir, "b.vetx")
	findings, err = unitchecker.AnalyzeUnit(&unitchecker.Config{
		ID:          "b",
		ImportPath:  "b",
		GoFiles:     []string{bsrc},
		ImportMap:   map[string]string{"a": "a"},
		PackageFile: map[string]string{"a": aobj},
		PackageVetx: map[string]string{"a": avetx},
		VetxOutput:  bvetx,
	}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("unit b: %v", err)
	}
	if len(findings) != 1 || findings[0].Message != "fact: a.F" {
		t.Fatalf("unit b: want one finding \"fact: a.F\", got %v", findings)
	}

	// b's vetx must re-export a's facts (transitive visibility): decode it
	// and check both packages' entries are present.
	data, err := os.ReadFile(bvetx)
	if err != nil {
		t.Fatal(err)
	}
	store := analysis.NewFactStore()
	if err := store.Decode(data); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("unit b vetx: want facts for a.F and b.G, got %d facts", store.Len())
	}
}

// TestTypecheckFailure checks both sides of SucceedOnTypecheckFailure: with
// the flag the driver stays quiet and still writes the (empty) vetx file;
// without it the type error surfaces.
func TestTypecheckFailure(t *testing.T) {
	a := factAnalyzer()
	analysis.RegisterFactTypes(a)
	dir := t.TempDir()
	src := filepath.Join(dir, "broken.go")
	writeFile(t, src, "package broken\n\nfunc F() int { return undefinedIdent }\n")

	vetx := filepath.Join(dir, "broken.vetx")
	findings, err := unitchecker.AnalyzeUnit(&unitchecker.Config{
		ImportPath:                "broken",
		GoFiles:                   []string{src},
		VetxOutput:                vetx,
		SucceedOnTypecheckFailure: true,
	}, []*analysis.Analyzer{a})
	if err != nil || len(findings) != 0 {
		t.Fatalf("with SucceedOnTypecheckFailure: want quiet success, got findings=%v err=%v", findings, err)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx file not written on tolerated failure: %v", err)
	}

	_, err = unitchecker.AnalyzeUnit(&unitchecker.Config{
		ImportPath: "broken",
		GoFiles:    []string{src},
	}, []*analysis.Analyzer{a})
	if err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("without SucceedOnTypecheckFailure: want type-check error, got %v", err)
	}
}

// TestParseFailure mirrors TestTypecheckFailure for syntax errors.
func TestParseFailure(t *testing.T) {
	a := factAnalyzer()
	dir := t.TempDir()
	src := filepath.Join(dir, "bad.go")
	writeFile(t, src, "package bad\n\nfunc {\n")

	findings, err := unitchecker.AnalyzeUnit(&unitchecker.Config{
		ImportPath:                "bad",
		GoFiles:                   []string{src},
		SucceedOnTypecheckFailure: true,
	}, []*analysis.Analyzer{a})
	if err != nil || len(findings) != 0 {
		t.Fatalf("tolerated parse failure: got findings=%v err=%v", findings, err)
	}
	if _, err := unitchecker.AnalyzeUnit(&unitchecker.Config{
		ImportPath: "bad",
		GoFiles:    []string{src},
	}, []*analysis.Analyzer{a}); err == nil {
		t.Fatal("parse failure without the flag: want error")
	}
}

// TestAppliesSkipsTypecheck: when every typed analyzer rejects the unit,
// AnalyzeUnit must not attempt type-checking at all — the fixture would
// fail it (an import with no export data provided).
func TestAppliesSkipsTypecheck(t *testing.T) {
	a := factAnalyzer()
	a.Applies = func(path string) bool { return false }
	dir := t.TempDir()
	src := filepath.Join(dir, "skip.go")
	writeFile(t, src, "package skip\n\nimport \"nosuchpkg\"\n\nvar _ = nosuchpkg.X\n")

	vetx := filepath.Join(dir, "skip.vetx")
	findings, err := unitchecker.AnalyzeUnit(&unitchecker.Config{
		ImportPath: "skip",
		GoFiles:    []string{src},
		VetxOutput: vetx,
	}, []*analysis.Analyzer{a})
	if err != nil || len(findings) != 0 {
		t.Fatalf("rejected unit: want quiet skip, got findings=%v err=%v", findings, err)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx file must exist even for skipped units: %v", err)
	}
}
