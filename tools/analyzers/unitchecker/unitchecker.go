// Package unitchecker implements the command-line protocol `go vet
// -vettool=...` requires of an analysis driver, without depending on
// golang.org/x/tools. The protocol (reverse-engineered from the vendored
// upstream driver in GOROOT) is:
//
//	-V=full    print "<exe> version devel comments-go-here buildID=<sha256>"
//	           so the build system can cache on the tool's identity
//	-flags     print the tool's flags as a JSON array so go vet knows
//	           which command-line flags it may forward
//	foo.cfg    analyze the single compilation unit described by the
//	           JSON config file; print findings to stderr as
//	           "file:line:col: message" lines and exit 1 when any were
//	           found, 0 otherwise
//
// The driver always writes the Config.VetxOutput facts file. For AST-only
// analyzers it is an empty byte sequence, as before; analyzers that declare
// FactTypes get their exported facts gob-serialized there, and the facts of
// every dependency (read back from Config.PackageVetx) are merged in, so
// fact visibility is transitive without a whole-program pass.
//
// Analyzers with NeedsTypes get a full go/types pass over the unit: the
// importer reads the compiler export data go vet lists in
// Config.PackageFile (mapped through Config.ImportMap), exactly as the
// upstream unitchecker does. Units no typed analyzer applies to — see
// Analyzer.Applies — skip type-checking entirely, which keeps `go vet
// -vettool` cheap over the standard library portion of the build graph.
//
// For convenience outside go vet, a directory argument analyzes the
// non-test .go files under it (recursively) with the AST-only analyzers:
// `vadavet ./internal/...`-style package patterns are go vet's job, but
// `vadavet .` works for a quick local sweep.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vadasa/tools/analyzers/analysis"
)

// Config is the JSON compilation-unit description go vet hands the tool.
// Only the fields this driver consumes are declared; unknown fields are
// ignored by encoding/json.
type Config struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoVersion  string
	GoFiles    []string
	// ImportMap maps source-level import path strings to canonical
	// package paths; PackageFile maps canonical paths to compiler export
	// data; PackageVetx maps them to the fact files earlier tool
	// invocations wrote for the dependencies.
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// A Finding is one diagnostic, tagged with the analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Main runs the protocol and exits the process.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")
	analysis.RegisterFactTypes(analyzers...)

	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON")
	flag.Var(versionFlag{}, "V", "print version and exit")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		if _, dup := enabled[a.Name]; dup {
			log.Fatalf("duplicate analyzer name %q", a.Name)
		}
		enabled[a.Name] = flag.Bool(a.Name, false, "enable only the "+a.Name+" analyzer: "+firstLine(a.Doc))
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-flags] [-V=full] [unit.cfg | dir ...]\n", progname)
		flag.PrintDefaults()
	}
	flag.Parse()

	if *printFlags {
		printFlagsJSON()
		os.Exit(0)
	}
	// When go vet forwards `-ctxpass` etc., run just those; default is all.
	var selected []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		selected = analyzers
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(1)
	}
	exit := 0
	for _, arg := range args {
		if strings.HasSuffix(arg, ".cfg") {
			if code := runConfig(arg, selected); code > exit {
				exit = code
			}
			continue
		}
		if code := runDir(arg, selected); code > exit {
			exit = code
		}
	}
	os.Exit(exit)
}

// versionFlag implements the -V=full handshake: the build tool caches vet
// results keyed on this line, so it must change when the binary changes —
// hence the content hash of the executable itself.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{}
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

func runConfig(path string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", path, err)
	}
	findings, err := AnalyzeUnit(cfg, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.VetxOnly {
		// Dependency pass: facts only, never diagnostics.
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Pos, f.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// AnalyzeUnit analyzes the single compilation unit cfg describes: it
// parses the unit, type-checks it when a selected analyzer needs types,
// threads dependency facts in and exports the unit's facts to
// cfg.VetxOutput. A type-check or parse failure returns (nil, nil) when
// cfg.SucceedOnTypecheckFailure is set — the compiler will report the
// error — and an error otherwise.
func AnalyzeUnit(cfg *Config, analyzers []*analysis.Analyzer) ([]Finding, error) {
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	// Applies lets an analyzer bow out of units it has no business with
	// (the standard library, example binaries); if none of the applicable
	// analyzers needs types, the whole go/types pass is skipped.
	var applicable []*analysis.Analyzer
	needTypes := false
	needFacts := false
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(cfg.ImportPath) {
			continue
		}
		applicable = append(applicable, a)
		needTypes = needTypes || a.NeedsTypes
		needFacts = needFacts || len(a.FactTypes) > 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				// The compiler will report the syntax error; stay quiet.
				writeVetx(cfg, nil)
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	store := analysis.NewFactStore()
	if needFacts {
		for _, vetx := range sortedValues(cfg.PackageVetx) {
			data, err := os.ReadFile(vetx)
			if err != nil {
				// A missing dependency fact file means the dependency ran
				// an older tool build; treat as an empty fact set.
				continue
			}
			if err := store.Decode(data); err != nil {
				return nil, fmt.Errorf("%s: reading facts %s: %w", cfg.ImportPath, vetx, err)
			}
		}
	}

	var typesPkg *types.Package
	var info *types.Info
	if needTypes {
		var err error
		typesPkg, info, err = typeCheck(cfg, fset, files)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(cfg, store)
				return nil, nil
			}
			return nil, fmt.Errorf("%s: type-checking: %w", cfg.ImportPath, err)
		}
	}

	var findings []Finding
	for _, a := range applicable {
		if cfg.VetxOnly && len(a.FactTypes) == 0 {
			// Facts-only pass over a dependency: analyzers that export
			// nothing have nothing to contribute.
			continue
		}
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      files[0].Name.Name,
			Path:     cfg.ImportPath,
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, Finding{Analyzer: a.Name, Pos: fset.Position(d.Pos), Message: d.Message})
			},
			Facts: store,
		}
		if a.NeedsTypes {
			pass.TypesPkg = typesPkg
			pass.TypesInfo = info
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	writeVetx(cfg, store)
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos.Filename != findings[j].Pos.Filename {
			return findings[i].Pos.Filename < findings[j].Pos.Filename
		}
		if findings[i].Pos.Line != findings[j].Pos.Line {
			return findings[i].Pos.Line < findings[j].Pos.Line
		}
		return findings[i].Pos.Column < findings[j].Pos.Column
	})
	return findings, nil
}

// typeCheck runs go/types over the unit with an importer backed by the
// compiler export data go vet supplied.
func typeCheck(cfg *Config, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	compilerImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		GoVersion: langVersion(cfg.GoVersion),
		Sizes:     types.SizesFor("gc", "amd64"),
	}
	info := NewTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// NewTypesInfo returns a types.Info with every map populated, the shape
// both this driver and the checktest source loader hand to analyzers.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// langVersion trims a toolchain version like "go1.22.3" to the language
// version form go/types accepts ("go1.22"); anything unrecognized is
// passed through empty so type-checking falls back to the tool's default.
func langVersion(v string) string {
	if !strings.HasPrefix(v, "go1.") {
		return ""
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return ""
	}
	return parts[0] + "." + parts[1]
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ExportDataImporter returns a gc-export-data importer over an explicit
// import-path → file map — the resolver both the checktest source loader
// and the taintreport driver use for toolchain packages.
func ExportDataImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// writeVetx persists the unit's facts where go vet expects them. An empty
// store (or nil, on type-check failure) writes the empty file the build
// tool demands.
func writeVetx(cfg *Config, store *analysis.FactStore) {
	if cfg.VetxOutput == "" {
		return
	}
	var data []byte
	if store != nil && store.Len() > 0 {
		var err error
		data, err = store.Encode()
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		log.Fatal(err)
	}
}

func sortedValues(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// runDir analyzes every non-test .go file under dir with the AST-only
// analyzers, grouped per directory so each package is one pass. Typed
// analyzers need export data the filesystem alone cannot provide, so they
// are skipped here; go vet (or the taintreport driver) is the way to run
// them.
func runDir(dir string, analyzers []*analysis.Analyzer) int {
	var astOnly []*analysis.Analyzer
	for _, a := range analyzers {
		if !a.NeedsTypes {
			astOnly = append(astOnly, a)
		}
	}
	perDir := make(map[string][]string)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			perDir[filepath.Dir(path)] = append(perDir[filepath.Dir(path)], path)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	dirs := make([]string, 0, len(perDir))
	for d := range perDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	exit := 0
	for _, d := range dirs {
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range perDir[d] {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				log.Fatal(err)
			}
			files = append(files, f)
		}
		diags := RunAnalyzers(fset, files, astOnly)
		for _, diag := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(diag.Pos), diag.Message)
		}
		if len(diags) > 0 {
			exit = 1
		}
	}
	return exit
}

// RunAnalyzers executes each analyzer over the files and returns the
// findings sorted by position. AST-only entry point — typed analyzers
// would see a pass without type information — exported for the checktest
// harness and the directory sweep.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	pkg := ""
	if len(files) > 0 {
		pkg = files[0].Name.Name
	}
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			log.Fatalf("%s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
