// Package unitchecker implements the command-line protocol `go vet
// -vettool=...` requires of an analysis driver, without depending on
// golang.org/x/tools. The protocol (reverse-engineered from the vendored
// upstream driver in GOROOT) is:
//
//	-V=full    print "<exe> version devel comments-go-here buildID=<sha256>"
//	           so the build system can cache on the tool's identity
//	-flags     print the tool's flags as a JSON array so go vet knows
//	           which command-line flags it may forward
//	foo.cfg    analyze the single compilation unit described by the
//	           JSON config file; print findings to stderr as
//	           "file:line:col: message" lines and exit 1 when any were
//	           found, 0 otherwise
//
// The driver must always write the Config.VetxOutput facts file (ours is
// empty — these analyzers are AST-only and export no facts) or the build
// tool complains about the missing cache entry.
//
// For convenience outside go vet, a directory argument analyzes the
// non-test .go files under it (recursively): `vadavet ./internal/...`-style
// package patterns are go vet's job, but `vadavet .` works for a quick
// local sweep.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vadasa/tools/analyzers/analysis"
)

// Config is the JSON compilation-unit description go vet hands the tool.
// Only the fields this driver consumes are declared; unknown fields are
// ignored by encoding/json.
type Config struct {
	ID                        string
	ImportPath                string
	GoFiles                   []string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the protocol and exits the process.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON")
	flag.Var(versionFlag{}, "V", "print version and exit")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		if _, dup := enabled[a.Name]; dup {
			log.Fatalf("duplicate analyzer name %q", a.Name)
		}
		enabled[a.Name] = flag.Bool(a.Name, false, "enable only the "+a.Name+" analyzer: "+firstLine(a.Doc))
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-flags] [-V=full] [unit.cfg | dir ...]\n", progname)
		flag.PrintDefaults()
	}
	flag.Parse()

	if *printFlags {
		printFlagsJSON()
		os.Exit(0)
	}
	// When go vet forwards `-ctxpass` etc., run just those; default is all.
	var selected []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		selected = analyzers
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(1)
	}
	exit := 0
	for _, arg := range args {
		if strings.HasSuffix(arg, ".cfg") {
			if code := runConfig(arg, selected); code > exit {
				exit = code
			}
			continue
		}
		if code := runDir(arg, selected); code > exit {
			exit = code
		}
	}
	os.Exit(exit)
}

// versionFlag implements the -V=full handshake: the build tool caches vet
// results keyed on this line, so it must change when the binary changes —
// hence the content hash of the executable itself.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{}
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

func runConfig(path string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", path, err)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("package has no files: %s", cfg.ImportPath)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				// The compiler will report the syntax error; stay quiet.
				writeVetx(cfg)
				return 0
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	diags := RunAnalyzers(fset, files, analyzers)
	writeVetx(cfg)
	if cfg.VetxOnly {
		// Dependency pass: facts only, never diagnostics.
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// writeVetx persists the (empty) facts file the build tool expects.
func writeVetx(cfg *Config) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
		log.Fatal(err)
	}
}

// runDir analyzes every non-test .go file under dir, grouped per directory
// so each package is one pass.
func runDir(dir string, analyzers []*analysis.Analyzer) int {
	perDir := make(map[string][]string)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			perDir[filepath.Dir(path)] = append(perDir[filepath.Dir(path)], path)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	dirs := make([]string, 0, len(perDir))
	for d := range perDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	exit := 0
	for _, d := range dirs {
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range perDir[d] {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				log.Fatal(err)
			}
			files = append(files, f)
		}
		diags := RunAnalyzers(fset, files, analyzers)
		for _, diag := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(diag.Pos), diag.Message)
		}
		if len(diags) > 0 {
			exit = 1
		}
	}
	return exit
}

// RunAnalyzers executes each analyzer over the files and returns the
// findings sorted by position. Exported for the checktest harness.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	pkg := ""
	if len(files) > 0 {
		pkg = files[0].Name.Name
	}
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			log.Fatalf("%s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
