package governcharge

import (
	"testing"

	"vadasa/tools/analyzers/checktest"
)

func TestGoverncharge(t *testing.T) {
	checktest.Run(t, "testdata/src/a", Analyzer)
}
