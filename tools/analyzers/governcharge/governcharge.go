// Package governcharge checks the admission-control invariant around the
// resource governor: a Reserve/ReserveBytes charge taken inside a function
// must be given back on every path, otherwise an early return permanently
// shrinks the budget and the server degrades request by request.
//
// The analyzer is AST-only and accepts a charge as paired when any of the
// following holds in the same function:
//
//   - the receiver is (or is derived from) govern.From(...): those
//     governors are scope-released by the middleware that installed them;
//   - some defer in the function — directly or inside a deferred closure —
//     calls Release/ReleaseBytes on the same receiver root;
//   - the call is annotated with `//governcharge:ok` on its own or the
//     preceding line, for charges whose release is intentionally elsewhere
//     (e.g. an incremental charge trued up by the caller).
//
// Files in package govern itself and _test.go files are skipped.
package governcharge

import (
	"go/ast"
	"go/token"
	"strings"

	"vadasa/tools/analyzers/analysis"
)

// Analyzer is the governcharge pass.
var Analyzer = &analysis.Analyzer{
	Name: "governcharge",
	Doc:  "every govern Reserve must be paired with a Release on all paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if file.Name.Name == "govern" {
			continue
		}
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ok := okLines(pass.Fset, file)
		for _, decl := range file.Decls {
			if fn, isFn := decl.(*ast.FuncDecl); isFn && fn.Body != nil {
				checkFunc(pass, fn, ok)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, ok map[int]bool) {
	// Roots assigned from govern.From(...): middleware-scoped, released when
	// the request scope ends.
	fromRoots := make(map[string]bool)
	// Roots that some defer (directly or via a deferred closure) releases.
	releasedRoots := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if isFromCall(rhs) && i < len(n.Lhs) {
					if id, isIdent := n.Lhs[i].(*ast.Ident); isIdent {
						fromRoots[id.Name] = true
					}
				}
			}
		case *ast.DeferStmt:
			ast.Inspect(n.Call, func(m ast.Node) bool {
				if call, isCall := m.(*ast.CallExpr); isCall {
					if name, recv := methodCall(call); name == "Release" || name == "ReleaseBytes" {
						if root := rootIdent(recv); root != "" {
							releasedRoots[root] = true
						}
					}
				}
				return true
			})
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		name, recv := methodCall(call)
		if name != "Reserve" && name != "ReserveBytes" {
			return true
		}
		line := pass.Fset.Position(call.Pos()).Line
		if ok[line] || ok[line-1] {
			return true
		}
		if containsFromCall(recv) {
			return true
		}
		root := rootIdent(recv)
		if root != "" && (fromRoots[root] || releasedRoots[root]) {
			return true
		}
		pass.Reportf(call.Pos(),
			"govern charge may leak: %s on %s has no deferred Release in %s (defer the Release, derive the governor with govern.From, or annotate //governcharge:ok)",
			name, exprString(recv), fn.Name.Name)
		return true
	})
}

// methodCall returns the method name and receiver expression for recv.M(...)
// calls, or "" for plain function calls.
func methodCall(call *ast.CallExpr) (string, ast.Expr) {
	if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
		return sel.Sel.Name, sel.X
	}
	return "", nil
}

// isFromCall reports whether e is a call to From (govern.From or a local
// alias re-exporting it).
func isFromCall(e ast.Expr) bool {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "From"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "From"
	}
	return false
}

// containsFromCall reports whether the receiver chain contains a From call,
// as in govern.From(r.Context()).Reserve(...).
func containsFromCall(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, isCall := n.(*ast.CallExpr); isCall && isFromCall(call) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// rootIdent walks a selector chain (ev.opt.Governor) down to its base
// identifier (ev); returns "" when the base is not an identifier.
func rootIdent(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// exprString renders a selector chain for the diagnostic message.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	default:
		return "receiver"
	}
}

func okLines(fset *token.FileSet, file *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//governcharge:ok") {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}
