// Package a is a governcharge fixture; parsed, never compiled.
package a

type gvn struct{}

func (*gvn) Reserve(kind, n int64) error { return nil }
func (*gvn) Release(kind, n int64)       {}
func (*gvn) ReserveBytes(n int64) error  { return nil }
func (*gvn) ReleaseBytes(n int64)        {}

type evaluator struct {
	opt struct{ Governor *gvn }
}

// Leak reserves and never releases.
func Leak(g *gvn) error {
	return g.Reserve(0, 1) // want `govern charge may leak: Reserve on g has no deferred Release in Leak`
}

// LeakBytes leaks through a nested receiver chain.
func LeakBytes(ev *evaluator, n int64) error {
	return ev.opt.Governor.ReserveBytes(n) // want `govern charge may leak: ReserveBytes on ev.opt.Governor has no deferred Release in LeakBytes`
}

// MismatchedRoot defers a release on a different governor.
func MismatchedRoot(g, other *gvn) error {
	defer other.Release(0, 1)
	return g.Reserve(0, 1) // want `govern charge may leak: Reserve on g`
}

// DeferPaired is the canonical clean shape.
func DeferPaired(g *gvn) error {
	if err := g.Reserve(0, 1); err != nil {
		return err
	}
	defer g.Release(0, 1)
	return nil
}

// ClosurePaired releases inside a deferred closure: clean.
func ClosurePaired(g *gvn, n int64) error {
	if err := g.ReserveBytes(n); err != nil {
		return err
	}
	defer func() {
		g.ReleaseBytes(n)
	}()
	return nil
}

// FromScoped derives the governor from the request scope: clean.
func FromScoped(ctx any) error {
	gov := govern.From(ctx)
	return gov.Reserve(0, 1)
}

// FromChained charges directly off the scope lookup: clean.
func FromChained(ctx any, n int64) error {
	return govern.From(ctx).ReserveBytes(n)
}

// Annotated documents a release that lives elsewhere: clean.
func Annotated(g *gvn, n int64) error {
	//governcharge:ok incremental charge trued up by the caller
	return g.ReserveBytes(n)
}

// arena mirrors the datalog engine's columnar fact store: row inserts
// charge their byte delta incrementally, and the evaluation entry point
// releases the whole accumulated footprint with one deferred bulk release.
type arena struct {
	g       *gvn
	charged int64
}

// GrowLeak is the incremental-charge shape without the waiver: the
// analyzer cannot see the caller's bulk release, so it must flag it.
func (a *arena) GrowLeak(delta int64) error {
	return a.g.ReserveBytes(delta) // want `govern charge may leak: ReserveBytes on a.g`
}

// GrowWaived is the sanctioned shape (engine.go chargeMemory): the charge
// is trued up in a counter and the run entry point defers the bulk
// release, which the annotation documents.
func (a *arena) GrowWaived(delta int64) error {
	//governcharge:ok incremental arena charge; RunScoped defers ReleaseBytes(a.charged)
	if err := a.g.ReserveBytes(delta); err != nil {
		return err
	}
	a.charged += delta
	return nil
}

// RunScoped owns the arena lifetime: one deferred bulk release pairs
// every incremental charge GrowWaived took during the run.
func (a *arena) RunScoped() error {
	defer a.g.ReleaseBytes(a.charged)
	return a.GrowWaived(64)
}

// NotAGovernor calls an unrelated method: clean.
func NotAGovernor(q queue) {
	q.Push(1)
}

type queue struct{}

func (queue) Push(int) {}
