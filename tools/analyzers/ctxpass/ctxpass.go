// Package ctxpass checks the engine's cancellation invariant: exported
// entry points that spawn reasoning or anonymization work must accept a
// context.Context and thread it into the evaluation call. The engine polls
// its context at fixpoint boundaries — but only if callers actually hand
// their context down; an exported API that silently evaluates under
// context.Background() cannot be cancelled or given a deadline.
//
// The analyzer is AST-only. A call "spawns evaluation" when it is:
//
//   - datalog.Run / datalog.RunContext / vadasa.Reason / vadasa.ReasonContext
//     (package-qualified, so unrelated Run methods don't match), or
//   - a method call named AssessRisk, Anonymize, ExplainRisk,
//     DeclarativeCycle or their *Context variants, on any receiver.
//
// Exported functions containing such calls must take a context.Context (an
// *http.Request also counts — r.Context() is the handler idiom) and the
// context argument of a *Context spawner must mention that parameter or a
// value derived from it.
//
// Exemptions: test files; single-statement functions (the compatibility
// wrappers `func X(...) { return XContext(context.Background(), ...) }` are
// exactly the pattern this analyzer exists to enforce everywhere else); and
// calls annotated with a trailing or preceding `//ctxpass:ok` comment for
// the rare legitimate detached evaluation (a background job owning its own
// lifecycle).
package ctxpass

import (
	"go/ast"
	"go/token"
	"strings"

	"vadasa/tools/analyzers/analysis"
)

// Analyzer is the ctxpass pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpass",
	Doc:  "exported entry points that spawn evaluation must accept and thread a context.Context",
	Run:  run,
}

// bareSpawners are method names that start an evaluation; their "Context"
// variants are the threaded forms.
var bareSpawners = map[string]bool{
	"AssessRisk":       true,
	"Anonymize":        true,
	"ExplainRisk":      true,
	"DeclarativeCycle": true,
}

// pkgSpawners are package-qualified functions: only `pkg.Name` matches, so
// unrelated Run/Reason identifiers elsewhere stay quiet.
var pkgSpawners = map[string]map[string]bool{
	"datalog": {"Run": true},
	"vadasa":  {"Reason": true},
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ok := okLines(pass.Fset, file, "//ctxpass:ok")
		for _, decl := range file.Decls {
			fn, isFn := decl.(*ast.FuncDecl)
			if !isFn || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if len(fn.Body.List) <= 1 {
				// Thin compatibility wrapper (single statement): the
				// Background() it passes is its documented contract.
				continue
			}
			checkFunc(pass, fn, ok)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, ok map[int]bool) {
	tainted := contextParams(fn)
	hasCtx := len(tainted) > 0
	// Forward pass: assignments whose right side mentions a tainted name
	// taint their left side (ctx2, cancel := context.WithTimeout(ctx, d)).
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if as, isAssign := n.(*ast.AssignStmt); isAssign && mentionsAny(as.Rhs, tainted) {
			for _, lhs := range as.Lhs {
				if id, isIdent := lhs.(*ast.Ident); isIdent {
					tainted[id.Name] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		name, qual := calleeName(call)
		if name == "" {
			return true
		}
		line := pass.Fset.Position(call.Pos()).Line
		if ok[line] || ok[line-1] {
			return true
		}
		base, isContextVariant := strings.CutSuffix(name, "Context")
		if isContextVariant && spawnerName(base, qual) {
			if !hasCtx {
				pass.Reportf(call.Pos(),
					"exported %s calls %s without accepting a context.Context: add a context parameter and thread it (or annotate //ctxpass:ok for a deliberately detached evaluation)",
					fn.Name.Name, name)
			} else if len(call.Args) == 0 || !mentionsAny(call.Args[:1], tainted) {
				pass.Reportf(call.Pos(),
					"exported %s has a context.Context parameter but does not thread it into %s",
					fn.Name.Name, name)
			}
			return true
		}
		if spawnerName(name, qual) {
			if hasCtx {
				pass.Reportf(call.Pos(),
					"exported %s holds a context.Context but spawns evaluation via %s: call %sContext and thread it",
					fn.Name.Name, name, name)
			} else {
				pass.Reportf(call.Pos(),
					"exported %s spawns evaluation via %s without accepting a context.Context: add a context parameter and call %sContext",
					fn.Name.Name, name, name)
			}
		}
		return true
	})
}

func spawnerName(name, qual string) bool {
	if bareSpawners[name] {
		return true
	}
	return pkgSpawners[qual][name]
}

// calleeName extracts the called function's name and, for pkg.F or recv.M
// calls, the qualifying identifier.
func calleeName(call *ast.CallExpr) (name, qual string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name, ""
	case *ast.SelectorExpr:
		if x, isIdent := fun.X.(*ast.Ident); isIdent {
			return fun.Sel.Name, x.Name
		}
		return fun.Sel.Name, ""
	}
	return "", ""
}

// contextParams returns the names of parameters that carry a context:
// context.Context values and *http.Request (whose .Context() counts).
func contextParams(fn *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	if fn.Type.Params == nil {
		return out
	}
	for _, field := range fn.Type.Params.List {
		if !isContextType(field.Type) && !isRequestType(field.Type) {
			continue
		}
		for _, name := range field.Names {
			out[name.Name] = true
		}
	}
	return out
}

func isContextType(t ast.Expr) bool {
	sel, isSel := t.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Context" {
		return false
	}
	x, isIdent := sel.X.(*ast.Ident)
	return isIdent && x.Name == "context"
}

func isRequestType(t ast.Expr) bool {
	star, isStar := t.(*ast.StarExpr)
	if !isStar {
		return false
	}
	sel, isSel := star.X.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Request" {
		return false
	}
	x, isIdent := sel.X.(*ast.Ident)
	return isIdent && x.Name == "http"
}

// mentionsAny reports whether any expression mentions a tainted identifier.
func mentionsAny(exprs []ast.Expr, names map[string]bool) bool {
	found := false
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, isIdent := n.(*ast.Ident); isIdent && names[id.Name] {
				found = true
				return false
			}
			return !found
		})
	}
	return found
}

// okLines maps line numbers carrying the given marker comment in file.
func okLines(fset *token.FileSet, file *ast.File, marker string) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, marker) {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}
