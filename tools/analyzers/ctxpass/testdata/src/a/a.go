// Package a is a ctxpass fixture; it is parsed, never compiled, so the
// selector qualifiers (datalog, vadasa, oracle) need no imports.
package a

import (
	"context"
	"net/http"
	"time"
)

type db struct{}
type model struct{}

func (*model) Anonymize(d *db) error                              { return nil }
func (*model) AnonymizeContext(ctx context.Context, d *db) error  { return nil }
func (*model) AssessRiskContext(ctx context.Context, d *db) error { return nil }
func (*model) DeclarativeCycleContext(ctx context.Context, k int) {}

// BareNoContext spawns evaluation with no way to cancel it.
func BareNoContext(m *model, d *db) error {
	m, d = m, d
	return datalog.Run(d) // want `exported BareNoContext spawns evaluation via Run without accepting a context.Context`
}

// BareWithContext holds a context but drops it on the floor.
func BareWithContext(ctx context.Context, m *model, d *db) error {
	_ = ctx
	return m.Anonymize(d) // want `exported BareWithContext holds a context.Context but spawns evaluation via Anonymize`
}

// BackgroundDespiteParam takes a context but evaluates under Background.
func BackgroundDespiteParam(ctx context.Context, m *model, d *db) error {
	_ = ctx
	return m.AnonymizeContext(context.Background(), d) // want `exported BackgroundDespiteParam has a context.Context parameter but does not thread it into AnonymizeContext`
}

// VariantNoParam calls the threaded form but gives callers no handle.
func VariantNoParam(m *model, d *db) error {
	_ = d
	return m.AssessRiskContext(context.TODO(), d) // want `exported VariantNoParam calls AssessRiskContext without accepting a context.Context`
}

// Threaded passes its parameter straight through: clean.
func Threaded(ctx context.Context, m *model, d *db) error {
	if d == nil {
		return nil
	}
	return m.AnonymizeContext(ctx, d)
}

// Derived threads a context derived from its parameter: clean.
func Derived(ctx context.Context, m *model, d *db) error {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return m.AnonymizeContext(tctx, d)
}

// Handler threads the request context: clean.
func Handler(w http.ResponseWriter, r *http.Request) {
	m, d := &model{}, &db{}
	_ = vadasa.ReasonContext(r.Context(), d)
	_ = m
}

// Wrapper is the sanctioned single-statement compatibility shim: clean.
func (m *model) Wrapper(d *db) error {
	return m.AnonymizeContext(context.Background(), d)
}

// Detached is annotated as deliberately uncancellable: clean.
func Detached(m *model, d *db) error {
	_ = d
	//ctxpass:ok background job owns its own lifecycle
	return m.AnonymizeContext(context.Background(), d)
}

// OtherRun calls an unrelated Run method: clean (qualifier is not datalog).
func OtherRun(d *db) error {
	_ = d
	return oracle.Run(d)
}

// unexportedBare is not part of the API surface: clean.
func unexportedBare(m *model, d *db) error {
	_ = d
	return m.Anonymize(d)
}
