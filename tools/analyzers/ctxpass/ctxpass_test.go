package ctxpass

import (
	"testing"

	"vadasa/tools/analyzers/checktest"
)

func TestCtxpass(t *testing.T) {
	checktest.Run(t, "testdata/src/a", Analyzer)
}
