package hotgroup

import (
	"testing"

	"vadasa/tools/analyzers/checktest"
)

func TestHotgroup(t *testing.T) {
	checktest.Run(t, "testdata/src/a", Analyzer)
}

func TestHotgroupIgnoresOtherPackages(t *testing.T) {
	checktest.Run(t, "testdata/src/b", Analyzer)
}
