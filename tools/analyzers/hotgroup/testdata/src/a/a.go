package anon

type dataset struct{}

type mdbPkg struct{}

// The fixture fakes the mdb package surface with a package-scoped variable
// named mdb; the analyzer is AST-only and matches the selector shape.
var mdb mdbAPI

type mdbAPI struct{}

func (mdbAPI) ComputeGroups(d *dataset, idx []int, sem int) []int { return nil }
func (mdbAPI) Frequencies(d *dataset, idx []int, sem int) []int   { return nil }

func hotPath(d *dataset, qi []int) []int {
	return mdb.ComputeGroups(d, qi, 0) // want `full regroup mdb\.ComputeGroups in package anon`
}

func alsoHot(d *dataset, qi []int) []int {
	fs := mdb.Frequencies(d, qi, 0) // want `full regroup mdb\.Frequencies in package anon`
	return fs
}

func coldPath(d *dataset, qi []int) []int {
	//hotgroup:ok one-time release verification, not the cycle
	return mdb.Frequencies(d, qi, 0)
}

func sameLineOK(d *dataset, qi []int) []int {
	return mdb.ComputeGroups(d, qi, 0) //hotgroup:ok memoized
}

type other struct{}

func (other) ComputeGroups(d *dataset, idx []int, sem int) []int { return nil }

func notMdb(d *dataset, qi []int) []int {
	var o other
	return o.ComputeGroups(d, qi, 0) // receiver is not mdb: fine
}

//hotgroup:ok leftover waiver, regroup was removed // want `stale //hotgroup:ok waiver`
func noRegroup(d *dataset, qi []int) []int {
	return qi
}
