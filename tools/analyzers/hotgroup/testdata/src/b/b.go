// Package risk is outside the analyzer's scope: full regrouping is the
// reference implementation there.
package risk

type dataset struct{}

var mdb mdbAPI

type mdbAPI struct{}

func (mdbAPI) ComputeGroups(d *dataset, idx []int, sem int) []int { return nil }

func assess(d *dataset, qi []int) []int {
	return mdb.ComputeGroups(d, qi, 0) // not package anon: fine
}
