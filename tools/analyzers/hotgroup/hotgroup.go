// Package hotgroup guards the anonymization cycle's incremental-assessment
// invariant: code in package anon must not regroup the dataset from scratch
// with mdb.ComputeGroups or mdb.Frequencies. The cycle maintains an
// mdb.GroupIndex across iterations precisely so that per-iteration risk
// work scales with the suppression delta, and a stray full regroup on the
// hot path silently reverts the dominant cost of Figure 7e.
//
// A call that is genuinely off the hot path — a memoized one-time
// computation, a release-time verification sweep — is annotated with
// `//hotgroup:ok <reason>` on its own or the preceding line. _test.go
// files are skipped.
package hotgroup

import (
	"go/ast"
	"strings"

	"vadasa/tools/analyzers/analysis"
)

// Analyzer is the hotgroup pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotgroup",
	Doc:  "package anon must use the maintained GroupIndex, not full regrouping",
	Run:  run,
}

// grouping lists the mdb entry points that regroup the whole dataset.
var grouping = map[string]bool{
	"ComputeGroups": true,
	"Frequencies":   true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if file.Name.Name != "anon" {
			continue
		}
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ok := analysis.CollectWaivers(pass.Fset, file, "hotgroup")
		ast.Inspect(file, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			sel, isSel := call.Fun.(*ast.SelectorExpr)
			if !isSel || !grouping[sel.Sel.Name] {
				return true
			}
			if pkg, isIdent := sel.X.(*ast.Ident); !isIdent || pkg.Name != "mdb" {
				return true
			}
			line := pass.Fset.Position(call.Pos()).Line
			if ok.Suppresses(line) {
				return true
			}
			pass.Reportf(call.Pos(),
				"full regroup mdb.%s in package anon: the cycle maintains an mdb.GroupIndex for this — use it, or annotate //hotgroup:ok with why this call is off the hot path",
				sel.Sel.Name)
			return true
		})
		ok.ReportStale(pass)
	}
	return nil
}
