package notdist

// Other packages may name fields Values freely; the invariant is scoped to
// package dist.

type Reply struct{ Values []float64 }

func fine(r Reply) []float64 {
	return r.Values
}
