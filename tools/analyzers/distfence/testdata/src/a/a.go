package dist

// Fixture mirroring the shapes the distfence pass must accept and reject.

type Reply struct {
	Seq    int
	Epoch  uint64
	Values []float64
}

type taskState struct{ done bool }

type supervisor struct{}

func (s *supervisor) admit(task *taskState, r Reply, n int) bool {
	return len(r.Values) == n //distfence:ok admit is the fence itself
}

// fencedHandler consumes values only after admit: fine.
func (s *supervisor) fencedHandler(task *taskState, r Reply, out []float64) {
	if !s.admit(task, r, len(out)) {
		return
	}
	copy(out, r.Values)
}

// bypassHandler copies reply values straight into the merge: the bug this
// pass exists for.
func bypassHandler(r Reply, out []float64) {
	copy(out, r.Values) // want `reply Values consumed outside the admit fence in bypassHandler`
}

func alsoBypasses(r Reply) float64 {
	return r.Values[0] // want `reply Values consumed outside the admit fence in alsoBypasses`
}

// workerSide produces values; it is upstream of the fence by design.
func workerSide(vals []float64) Reply {
	var r Reply
	//distfence:ok worker endpoint: produces values, never admits them
	r.Values = vals
	return r
}

func truncating(r Reply) Reply {
	r.Values = r.Values[:len(r.Values)/2] //distfence:ok fault injector, upstream of the fence
	return r
}

//distfence:ok leftover waiver, the Values touch was removed // want `stale //distfence:ok waiver`
func noTouch(r Reply) int {
	return r.Epoch
}
