// Package distfence guards the distributed-scoring fence invariant: code in
// package dist that consumes a worker Reply's Values must do so behind the
// supervisor's admit fence. admit is the single point that rejects stale
// epochs, settled tasks and truncated payloads; a function that reads or
// writes reply values without calling it is either a worker/transport
// endpoint (annotate it) or a fence bypass waiting to double-count a hedged
// or retried shard.
//
// A function legitimately outside the fence — the worker handler that
// produces values, a fault injector that corrupts them upstream of the
// check — is annotated with `//distfence:ok <reason>` on the touching line
// or the preceding one. _test.go files are skipped.
package distfence

import (
	"go/ast"
	"go/token"
	"strings"

	"vadasa/tools/analyzers/analysis"
)

// Analyzer is the distfence pass.
var Analyzer = &analysis.Analyzer{
	Name: "distfence",
	Doc:  "package dist must consume Reply values behind the admit epoch fence",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if file.Name.Name != "dist" {
			continue
		}
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ok := analysis.CollectWaivers(pass.Fset, file, "distfence")
		for _, decl := range file.Decls {
			fn, isFn := decl.(*ast.FuncDecl)
			if !isFn || fn.Body == nil {
				continue
			}
			var touches []token.Pos
			fenced := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.SelectorExpr:
					if x.Sel.Name == "Values" {
						touches = append(touches, x.Sel.Pos())
					}
				case *ast.CallExpr:
					switch f := x.Fun.(type) {
					case *ast.Ident:
						if f.Name == "admit" {
							fenced = true
						}
					case *ast.SelectorExpr:
						if f.Sel.Name == "admit" {
							fenced = true
						}
					}
				}
				return true
			})
			if fenced {
				continue
			}
			for _, pos := range touches {
				line := pass.Fset.Position(pos).Line
				if ok.Suppresses(line) {
					continue
				}
				pass.Reportf(pos,
					"reply Values consumed outside the admit fence in %s: route the reply through admit, or annotate //distfence:ok with why this function is upstream of the fence",
					fn.Name.Name)
			}
		}
		ok.ReportStale(pass)
	}
	return nil
}
