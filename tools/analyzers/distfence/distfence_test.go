package distfence

import (
	"testing"

	"vadasa/tools/analyzers/checktest"
)

func TestDistfence(t *testing.T) {
	checktest.Run(t, "testdata/src/a", Analyzer)
}

func TestDistfenceIgnoresOtherPackages(t *testing.T) {
	checktest.Run(t, "testdata/src/b", Analyzer)
}
