// Package conftaint is the confidentiality-flow analyzer: a type-checked,
// interprocedural taint pass proving that raw microdata cells never reach an
// output sink except through the statistically vetted release path.
//
// The paper's invariant — raw financial microdata leaves the exchange only
// as a vetted release — is enforced dynamically by the stream gate
// (intent→publish). conftaint makes the same invariant checkable at compile
// time over the exchange's own Go code:
//
//   - Sources. A named type annotated `//conftaint:source` (or any type
//     structurally containing one — struct fields, slice/array/map/pointer
//     elements) is confidential: every expression of such a type is raw
//     data. Struct fields annotated `//conftaint:source` taint their
//     selector expressions and make the owning type confidential. Functions
//     annotated `//conftaint:source` return raw data. In this repo the root
//     annotations live on mdb.Value (every dataset cell) so mdb.Row,
//     mdb.Dataset, anon.Decision etc. are confidential by containment.
//   - Sinks. fmt.Errorf / errors.New (typed errors and error bodies), the
//     log print family and (*log.Logger) methods, fmt.Print* to standard
//     output, fmt.Fprint* when the writer is an http.ResponseWriter or
//     *os.File, http.Error, http.ResponseWriter.Write, panic, and every
//     function annotated `//conftaint:sink` (journal appends, replication
//     ship transports).
//   - Sanitizers. Functions annotated `//conftaint:sanitize` (value
//     digests, the release-gate encoders) and the crypto/hash standard
//     library packages return clean data regardless of their arguments.
//
// Strings extracted from confidential values (Value.Constant, Value.String)
// are tracked through assignments, concatenation, composite literals,
// ranges and calls. Summaries make the analysis interprocedural without a
// whole-program view: for every function the pass computes which parameters
// flow to its results and which parameters reach a sink inside it, and
// exports the summary as a unitchecker fact; importing packages report at
// the call site when actual tainted data meets such a parameter.
//
// Escapes are `//conftaint:ok <reason>` on the flagged line or the line
// above. A waiver that suppresses nothing is itself reported stale, so
// escapes cannot outlive the code they excused.
//
// Scope: the analyzer runs over the vadasa module except `examples/` and
// `cmd/experiments` (demo and research binaries that render synthetic data
// by design) and `_test.go` files. The standard library portion of the
// build graph is skipped entirely.
package conftaint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vadasa/tools/analyzers/analysis"
)

// Analyzer is the conftaint pass.
var Analyzer = &analysis.Analyzer{
	Name:       "conftaint",
	Doc:        "raw microdata cells must not reach error strings, logs, HTTP writes, journal payloads or replication frames except through vetted release paths",
	Run:        run,
	NeedsTypes: true,
	FactTypes:  []analysis.Fact{(*Summary)(nil), (*PkgMarks)(nil)},
	Applies:    appliesTo,
}

// appliesTo keeps the pass on the exchange's own code: the vadasa module
// minus the demo/research binaries, never the standard library.
func appliesTo(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i] // "pkg [pkg.test]" test variants
	}
	if path != "vadasa" && !strings.HasPrefix(path, "vadasa/") {
		// Fixture corpora (checktest) bypass Applies; under go vet only
		// the exchange's module is in scope.
		return false
	}
	switch {
	case strings.HasPrefix(path, "vadasa/tools/"),
		strings.HasPrefix(path, "vadasa/examples/"),
		path == "vadasa/cmd/experiments":
		return false
	}
	return true
}

// Summary is the per-function fact: how taint moves through a call to it.
type Summary struct {
	// ReturnsTaint: the results carry raw data regardless of arguments.
	ReturnsTaint bool
	// Sanitizes: the results are clean regardless of arguments
	// (directive //conftaint:sanitize; overrides everything).
	Sanitizes bool
	// SinkAll: every argument is written to an output channel
	// (directive //conftaint:sink).
	SinkAll bool
	// PropMask bit i set: parameter i flows into the results. For
	// methods, bit 0 is the receiver and parameters follow.
	PropMask uint64
	// SinkMask bit i set: parameter i reaches a sink inside the function
	// (directly or through further calls).
	SinkMask uint64
}

// AFact implements analysis.Fact.
func (*Summary) AFact() {}

func (s *Summary) zero() bool {
	return !s.ReturnsTaint && !s.Sanitizes && !s.SinkAll && s.PropMask == 0 && s.SinkMask == 0
}

// PkgMarks is the per-package fact: which of the package's named types and
// struct fields are confidentiality sources, so importing packages extend
// the containment closure without seeing the directives.
type PkgMarks struct {
	SourceTypes  []string // type names
	SourceFields []string // "Type.Field"
}

// AFact implements analysis.Fact.
func (*PkgMarks) AFact() {}

// concrete is the taint bit meaning "definitely raw data"; lower bits mean
// "tainted iff the corresponding parameter is".
const concrete uint64 = 1 << 63

const maxParams = 62

type checker struct {
	pass *analysis.Pass

	// sourceTypes / sourceFields key "pkgpath.Type" / "pkgpath.Type.Field".
	sourceTypes  map[string]bool
	sourceFields map[string]bool
	marksLoaded  map[string]bool // packages whose PkgMarks were merged
	confCache    map[types.Type]bool

	// summaries holds this package's in-progress function summaries;
	// imported ones come from facts.
	summaries map[*types.Func]*Summary
	directive map[*types.Func]string // source|sink|sanitize

	// decls maps each analyzed function object to its syntax.
	decls map[*types.Func]*ast.FuncDecl

	// waivers: file -> line -> comment position; usedWaivers the subset
	// that suppressed a finding.
	waivers     map[string]map[int]token.Pos
	usedWaivers map[string]map[int]bool

	reports map[string]report // keyed pos+message for dedup
	record  bool              // final pass: collect reports
}

type report struct {
	pos token.Pos
	msg string
}

func run(pass *analysis.Pass) error {
	if pass.TypesInfo == nil {
		return fmt.Errorf("conftaint needs type information")
	}
	c := &checker{
		pass:         pass,
		sourceTypes:  make(map[string]bool),
		sourceFields: make(map[string]bool),
		marksLoaded:  make(map[string]bool),
		confCache:    make(map[types.Type]bool),
		summaries:    make(map[*types.Func]*Summary),
		directive:    make(map[*types.Func]string),
		decls:        make(map[*types.Func]*ast.FuncDecl),
		waivers:      make(map[string]map[int]token.Pos),
		usedWaivers:  make(map[string]map[int]bool),
		reports:      make(map[string]report),
	}
	c.collectDirectives()

	// Package-level fixpoint over the function summaries: bodies are
	// re-analyzed until no summary changes, so intra-package call chains
	// (and recursion) converge regardless of declaration order. Taint
	// only ever grows, so the iteration is monotone and bounded.
	for iter := 0; iter < 20; iter++ {
		changed := false
		for fn, decl := range c.decls {
			next := c.analyzeFunc(fn, decl)
			if *next != *c.summaries[fn] {
				c.summaries[fn] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Final pass with frozen summaries collects the diagnostics.
	c.record = true
	for fn, decl := range c.decls {
		c.analyzeFunc(fn, decl)
	}

	c.emit()
	c.exportFacts()
	return nil
}

// ---------------------------------------------------------------------------
// Directives

const (
	dirSource   = "//conftaint:source"
	dirSink     = "//conftaint:sink"
	dirSanitize = "//conftaint:sanitize"
	dirOK       = "//conftaint:ok"
)

func (c *checker) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(c.pass.Fset.Position(pos).Filename, "_test.go")
}

// collectDirectives scans every non-test file for conftaint directives and
// waivers, seeds the summaries of annotated functions, and registers
// annotated types/fields as sources.
func (c *checker) collectDirectives() {
	info := c.pass.TypesInfo
	for _, file := range c.pass.Files {
		if c.isTestFile(file.Pos()) {
			continue
		}
		fname := c.pass.Fset.Position(file.Pos()).Filename
		dirLines := make(map[int]string)
		for _, cg := range file.Comments {
			for _, cm := range cg.List {
				line := c.pass.Fset.Position(cm.Pos()).Line
				switch {
				case strings.HasPrefix(cm.Text, dirOK):
					if c.waivers[fname] == nil {
						c.waivers[fname] = make(map[int]token.Pos)
					}
					c.waivers[fname][line] = cm.Pos()
				case strings.HasPrefix(cm.Text, dirSource):
					dirLines[line] = "source"
				case strings.HasPrefix(cm.Text, dirSink):
					dirLines[line] = "sink"
				case strings.HasPrefix(cm.Text, dirSanitize):
					dirLines[line] = "sanitize"
				}
			}
		}
		directiveFor := func(doc *ast.CommentGroup, pos token.Pos) string {
			if d, ok := dirLines[c.pass.Fset.Position(pos).Line]; ok {
				return d
			}
			if doc != nil {
				start := c.pass.Fset.Position(doc.Pos()).Line
				end := c.pass.Fset.Position(doc.End()).Line
				for l := start; l <= end; l++ {
					if d, ok := dirLines[l]; ok {
						return d
					}
				}
			}
			return ""
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fn, _ := info.Defs[n.Name].(*types.Func)
				if fn == nil {
					return true
				}
				if n.Body != nil {
					c.decls[fn] = n
				}
				c.summaries[fn] = &Summary{}
				if d := directiveFor(n.Doc, n.Pos()); d != "" {
					c.directive[fn] = d
					c.applyDirective(fn, d)
				}
			case *ast.TypeSpec:
				obj := info.Defs[n.Name]
				if obj == nil {
					return true
				}
				if d := directiveFor(n.Doc, n.Pos()); d == "source" {
					c.sourceTypes[c.pass.Path+"."+n.Name.Name] = true
				} else if n.Comment != nil {
					if d := directiveFor(n.Comment, n.Comment.Pos()); d == "source" {
						c.sourceTypes[c.pass.Path+"."+n.Name.Name] = true
					}
				}
				// Struct fields and interface methods may carry their
				// own directives.
				switch t := n.Type.(type) {
				case *ast.StructType:
					for _, f := range t.Fields.List {
						d := directiveFor(f.Doc, f.Pos())
						if d == "" && f.Comment != nil {
							d = directiveFor(f.Comment, f.Comment.Pos())
						}
						if d != "source" {
							continue
						}
						for _, name := range f.Names {
							c.sourceFields[c.pass.Path+"."+n.Name.Name+"."+name.Name] = true
						}
						c.sourceTypes[c.pass.Path+"."+n.Name.Name] = true
					}
				case *ast.InterfaceType:
					for _, m := range t.Methods.List {
						d := directiveFor(m.Doc, m.Pos())
						if d == "" && m.Comment != nil {
							d = directiveFor(m.Comment, m.Comment.Pos())
						}
						if d == "" {
							continue
						}
						for _, name := range m.Names {
							if fn, ok := info.Defs[name].(*types.Func); ok {
								c.directive[fn] = d
								c.summaries[fn] = &Summary{}
								c.applyDirective(fn, d)
							}
						}
					}
				}
			}
			return true
		})
	}
}

func (c *checker) applyDirective(fn *types.Func, d string) {
	s := c.summaries[fn]
	switch d {
	case "source":
		s.ReturnsTaint = true
	case "sink":
		s.SinkAll = true
	case "sanitize":
		s.Sanitizes = true
	}
}

// ---------------------------------------------------------------------------
// Confidential types

// loadMarks merges the PkgMarks fact of pkgPath into the source tables.
func (c *checker) loadMarks(pkgPath string) {
	if pkgPath == "" || pkgPath == c.pass.Path || c.marksLoaded[pkgPath] {
		return
	}
	c.marksLoaded[pkgPath] = true
	var m PkgMarks
	if !c.pass.ImportPackageFact(pkgPath, &m) {
		return
	}
	for _, t := range m.SourceTypes {
		c.sourceTypes[pkgPath+"."+t] = true
	}
	for _, f := range m.SourceFields {
		c.sourceFields[pkgPath+"."+f] = true
	}
}

// confidential reports whether values of t are raw microdata: t is an
// annotated source type, or structurally contains one.
func (c *checker) confidential(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := c.confCache[t]; ok {
		return v
	}
	c.confCache[t] = false // cycle breaker; corrected below
	v := c.confidentialUncached(t, make(map[types.Type]bool))
	c.confCache[t] = v
	return v
}

func (c *checker) confidentialUncached(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil {
			c.loadMarks(obj.Pkg().Path())
			key := obj.Pkg().Path() + "." + obj.Name()
			if c.pass.TypesPkg != nil && obj.Pkg() == c.pass.TypesPkg {
				key = c.pass.Path + "." + obj.Name()
			}
			if c.sourceTypes[key] {
				return true
			}
		}
		return c.confidentialUncached(t.Underlying(), seen)
	case *types.Pointer:
		return c.confidentialUncached(t.Elem(), seen)
	case *types.Slice:
		return c.confidentialUncached(t.Elem(), seen)
	case *types.Array:
		return c.confidentialUncached(t.Elem(), seen)
	case *types.Map:
		return c.confidentialUncached(t.Key(), seen) || c.confidentialUncached(t.Elem(), seen)
	case *types.Chan:
		return c.confidentialUncached(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if c.confidentialUncached(t.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// sourceField reports whether selecting field obj (owner named type) is an
// annotated raw-data access.
func (c *checker) sourceField(recv types.Type, field *types.Var) bool {
	t := recv
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkgPath := named.Obj().Pkg().Path()
	if c.pass.TypesPkg != nil && named.Obj().Pkg() == c.pass.TypesPkg {
		pkgPath = c.pass.Path
	}
	c.loadMarks(pkgPath)
	return c.sourceFields[pkgPath+"."+named.Obj().Name()+"."+field.Name()]
}

// ---------------------------------------------------------------------------
// Per-function analysis

type fnScope struct {
	c        *checker
	fn       *types.Func
	decl     *ast.FuncDecl
	taint    map[types.Object]uint64
	paramBit map[types.Object]uint64
	results  []types.Object // named results, for naked returns
	sum      *Summary
}

func (c *checker) analyzeFunc(fn *types.Func, decl *ast.FuncDecl) *Summary {
	if c.isTestFile(decl.Pos()) {
		return &Summary{}
	}
	s := &fnScope{
		c:        c,
		fn:       fn,
		decl:     decl,
		taint:    make(map[types.Object]uint64),
		paramBit: make(map[types.Object]uint64),
		sum:      &Summary{},
	}
	if d := c.directive[fn]; d != "" {
		c.applyDirective(fn, d)
		*s.sum = *c.summaries[fn]
		if s.sum.Sanitizes {
			// A sanitizer's body is trusted: it exists to reduce raw
			// data to a safe form, so its internals are not re-flagged.
			return s.sum
		}
	}

	bit := 0
	addParam := func(obj types.Object) {
		if obj != nil && bit < maxParams {
			s.paramBit[obj] = 1 << uint(bit)
		}
		bit++
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		addParam(sig.Recv())
	} else if decl.Recv != nil && len(decl.Recv.List) > 0 {
		bit++
	}
	info := c.pass.TypesInfo
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			if len(f.Names) == 0 {
				bit++
				continue
			}
			for _, name := range f.Names {
				addParam(info.Defs[name])
			}
		}
	}
	if decl.Type.Results != nil {
		for _, f := range decl.Type.Results.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					s.results = append(s.results, obj)
				}
			}
		}
	}

	// Local fixpoint: loops feed assignments backwards, so sweep the body
	// until the taint map stabilizes.
	for i := 0; i < 10; i++ {
		if !s.sweep() {
			break
		}
	}
	// Named results accumulate through assignments; fold them in even when
	// every return is naked.
	for _, obj := range s.results {
		s.fold(s.taint[obj])
	}
	return s.sum
}

// fold records m as reaching the function's results.
func (s *fnScope) fold(m uint64) {
	if m&concrete != 0 {
		s.sum.ReturnsTaint = true
	}
	s.sum.PropMask |= m &^ concrete
}

// sweep walks the body once, updating the taint map and evaluating every
// call; it reports whether any local taint changed.
func (s *fnScope) sweep() bool {
	changed := false
	set := func(obj types.Object, m uint64) {
		if obj == nil || m == 0 {
			return
		}
		if s.taint[obj]|m != s.taint[obj] {
			s.taint[obj] |= m
			changed = true
		}
	}
	info := s.c.pass.TypesInfo
	ast.Inspect(s.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				var rhs uint64
				perValue := len(n.Lhs) == len(n.Rhs)
				if !perValue {
					for _, r := range n.Rhs {
						rhs |= s.exprTaint(r)
					}
				}
				for i, l := range n.Lhs {
					m := rhs
					if perValue {
						m = s.exprTaint(n.Rhs[i])
					}
					if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						set(obj, m)
					}
				}
			} else {
				// op= : x += y keeps x's taint and adds y's.
				if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					obj := info.Uses[id]
					if obj == nil {
						obj = info.Defs[id]
					}
					set(obj, s.exprTaint(n.Rhs[0]))
				}
			}
		case *ast.ValueSpec:
			var rhs uint64
			perValue := len(n.Names) == len(n.Values)
			if !perValue {
				for _, v := range n.Values {
					rhs |= s.exprTaint(v)
				}
			}
			for i, name := range n.Names {
				m := rhs
				if perValue {
					m = s.exprTaint(n.Values[i])
				}
				set(info.Defs[name], m)
			}
		case *ast.RangeStmt:
			m := s.exprTaint(n.X)
			// Range keys never inherit the container's taint: slice and
			// array keys are positions, and map keys of a confidential
			// type are caught by the type rule at every use anyway. (A
			// flow-tainted key of plain type — a map keyed by cell text —
			// is a known blind spot, documented in DESIGN.md.)
			if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				set(obj, m)
			}
		case *ast.CallExpr:
			s.callTaint(n)
		}
		return true
	})
	// Returns belonging to this function (not to nested FuncLits) feed
	// the summary.
	ast.Inspect(s.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok {
			for _, e := range r.Results {
				s.fold(s.exprTaint(e))
			}
		}
		return true
	})
	return changed
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type()

// exprTaint evaluates the taint mask of e.
func (s *fnScope) exprTaint(e ast.Expr) uint64 {
	if e == nil {
		return 0
	}
	info := s.c.pass.TypesInfo
	if tv, ok := info.Types[e]; ok && tv.IsValue() && types.Identical(tv.Type, errorType) {
		// Errors are always clean: the single point of report is where raw
		// data is formatted INTO an error (fmt.Errorf, errors.New), so a
		// propagated error value never re-triggers downstream sinks.
		return 0
	}
	m := uint64(0)
	if tv, ok := info.Types[e]; ok && tv.IsValue() && s.c.confidential(tv.Type) {
		m |= concrete
	}
	switch e := e.(type) {
	case *ast.BasicLit, *ast.FuncLit:
		return m
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj != nil {
			m |= s.taint[obj] | s.paramBit[obj]
		}
		return m
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if f, ok := sel.Obj().(*types.Var); ok && s.c.sourceField(sel.Recv(), f) {
				m |= concrete
			}
			// Struct field selection deliberately does not inherit the
			// container's taint: d.Name on a confidential Dataset is a
			// schema name, not a cell. Annotated fields and
			// confidential field types are what propagate.
			return m
		}
		// Qualified identifier (pkg.Var): no local flow to add.
		return m
	case *ast.IndexExpr:
		if tv, ok := info.Types[e.Index]; ok && tv.IsType() {
			return m | s.exprTaint(e.X) // generic instantiation
		}
		return m | s.exprTaint(e.X)
	case *ast.IndexListExpr:
		return m | s.exprTaint(e.X)
	case *ast.SliceExpr:
		return m | s.exprTaint(e.X)
	case *ast.StarExpr:
		return m | s.exprTaint(e.X)
	case *ast.ParenExpr:
		return m | s.exprTaint(e.X)
	case *ast.UnaryExpr:
		return m | s.exprTaint(e.X)
	case *ast.TypeAssertExpr:
		return m | s.exprTaint(e.X)
	case *ast.BinaryExpr:
		return m | s.exprTaint(e.X) | s.exprTaint(e.Y)
	case *ast.KeyValueExpr:
		return m | s.exprTaint(e.Value)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			m |= s.exprTaint(el)
		}
		return m
	case *ast.CallExpr:
		return m | s.callTaint(e)
	}
	return m
}

// callTaint evaluates a call: checks sink arguments, applies sanitizers and
// summaries, and returns the taint of the call's results.
func (s *fnScope) callTaint(call *ast.CallExpr) uint64 {
	info := s.c.pass.TypesInfo

	// Type conversion: T(x).
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		m := uint64(0)
		for _, a := range call.Args {
			m |= s.exprTaint(a)
		}
		if t, ok := info.Types[call]; ok && t.IsValue() && s.c.confidential(t.Type) {
			m |= concrete
		}
		return m
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap", "new", "make", "delete", "close", "clear", "recover":
				return 0
			case "panic":
				s.checkSinkArgs(call, call.Args, "panic")
				return 0
			default: // append, copy, min, max, complex, real, imag...
				m := uint64(0)
				for _, a := range call.Args {
					m |= s.exprTaint(a)
				}
				return m
			}
		}
	}

	callee := s.staticCallee(fun)
	if callee == nil {
		// Call through a function value: propagate conservatively.
		m := uint64(0)
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			m |= s.exprTaint(sel.X)
		}
		for _, a := range call.Args {
			m |= s.exprTaint(a)
		}
		return m
	}

	pkgPath := ""
	if callee.Pkg() != nil {
		pkgPath = callee.Pkg().Path()
		if s.c.pass.TypesPkg != nil && callee.Pkg() == s.c.pass.TypesPkg {
			pkgPath = s.c.pass.Path
		}
	}
	key := pkgPath + "." + analysis.ObjectKey(callee)

	// Builtin sinks.
	if spec, ok := builtinSinks[key]; ok {
		args := call.Args
		if spec.writerGated {
			if len(args) == 0 || !s.c.sinkWriter(info.Types[args[0]].Type) {
				// Not writing to an output channel: plain propagation
				// (building a string in a buffer is not yet a leak).
				m := uint64(0)
				for _, a := range call.Args {
					m |= s.exprTaint(a)
				}
				return m
			}
		}
		if spec.from < len(args) {
			args = args[spec.from:]
		} else {
			args = nil
		}
		if spec.recvToo {
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				s.checkSinkArgs(call, []ast.Expr{sel.X}, key)
			}
		}
		s.checkSinkArgs(call, args, key)
		return 0
	}

	// Builtin sanitizers: digests and HMACs reduce raw data to safe
	// fingerprints.
	if strings.HasPrefix(pkgPath, "crypto/") || strings.HasPrefix(pkgPath, "hash/") || pkgPath == "crypto" || pkgPath == "hash" {
		for _, a := range call.Args {
			s.exprTaint(a) // still evaluate for nested calls
		}
		return 0
	}

	// Summary: in-package in-progress, or an imported fact. A callee in a
	// package this analyzer covers (Applies) with no exported fact has a
	// zero summary — it was analyzed and neither taints, sinks nor
	// propagates — so only genuinely un-analyzed code (the standard
	// library) gets the conservative treatment below.
	var sum *Summary
	if local, ok := s.c.summaries[callee]; ok {
		sum = local
	} else if callee.Pkg() != nil {
		var imported Summary
		if s.c.pass.ImportObjectFact(callee, &imported) {
			sum = &imported
		} else if appliesTo(pkgPath) {
			sum = &Summary{}
		}
	}

	recv, args := s.callArgs(fun, call, callee)
	if sum != nil {
		if sum.Sanitizes {
			return 0
		}
		if sum.SinkAll {
			s.checkSinkArgs(call, args, key)
			return 0
		}
		m := uint64(0)
		if sum.ReturnsTaint {
			m |= concrete
		}
		m |= s.maskedArgTaint(sum.PropMask, recv, args, callee)
		if sink := s.maskedArgTaint(sum.SinkMask, recv, args, callee); sink != 0 {
			if sink&concrete != 0 {
				s.report(call.Pos(), fmt.Sprintf(
					"raw microdata flows into %s, which passes it to an output sink", key))
			}
			s.sum.SinkMask |= sink &^ concrete
		}
		if t, ok := info.Types[call]; ok && t.IsValue() && s.c.confidential(t.Type) {
			m |= concrete
		}
		return m
	}

	// Unknown callee (standard library and friends): conservative
	// propagation — fmt.Sprintf of a raw cell is a raw string.
	m := uint64(0)
	if recv != nil {
		m |= s.exprTaint(recv)
	}
	for _, a := range args {
		m |= s.exprTaint(a)
	}
	if t, ok := info.Types[call]; ok && t.IsValue() && s.c.confidential(t.Type) {
		m |= concrete
	}
	return m
}

// callArgs splits a call into (receiver expr or nil, positional args).
func (s *fnScope) callArgs(fun ast.Expr, call *ast.CallExpr, callee *types.Func) (ast.Expr, []ast.Expr) {
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if s.c.pass.TypesInfo.Selections[sel] != nil {
				return sel.X, call.Args // method value call
			}
		}
	}
	return nil, call.Args
}

// maskedArgTaint unions the taint of the arguments selected by mask, using
// the same parameter numbering the summary was computed with (receiver =
// bit 0 for methods; the variadic bit covers every trailing argument).
func (s *fnScope) maskedArgTaint(mask uint64, recv ast.Expr, args []ast.Expr, callee *types.Func) uint64 {
	if mask == 0 {
		return 0
	}
	sig, _ := callee.Type().(*types.Signature)
	out := uint64(0)
	bit := 0
	if sig != nil && sig.Recv() != nil {
		if mask&1 != 0 && recv != nil {
			out |= s.exprTaint(recv)
		}
		bit = 1
	}
	nparams := 0
	if sig != nil {
		nparams = sig.Params().Len()
	}
	for i := 0; i < nparams; i++ {
		b := uint64(1) << uint(bit+i)
		if mask&b == 0 {
			continue
		}
		if sig.Variadic() && i == nparams-1 {
			for j := i; j < len(args); j++ {
				out |= s.exprTaint(args[j])
			}
			continue
		}
		if i < len(args) {
			out |= s.exprTaint(args[i])
		}
	}
	return out
}

// checkSinkArgs evaluates each argument against the sink: concrete taint is
// a finding; parameter taint becomes part of this function's SinkMask so
// callers are checked at their call sites.
func (s *fnScope) checkSinkArgs(call *ast.CallExpr, args []ast.Expr, sinkName string) {
	for _, a := range args {
		m := s.exprTaint(a)
		if m&concrete != 0 {
			s.report(a.Pos(), fmt.Sprintf(
				"raw microdata reaches %s: redact it (attribute index + value digest, mdb redaction helpers) or annotate //conftaint:ok with why this output is vetted", sinkName))
		}
		s.sum.SinkMask |= m &^ concrete
	}
}

func (s *fnScope) report(pos token.Pos, msg string) {
	if !s.c.record {
		return
	}
	p := s.c.pass.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d:%d:%s", p.Filename, p.Line, p.Column, msg)
	s.c.reports[key] = report{pos: pos, msg: msg}
}

// staticCallee resolves the called *types.Func, or nil for dynamic calls.
func (s *fnScope) staticCallee(fun ast.Expr) *types.Func {
	info := s.c.pass.TypesInfo
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr:
		return s.staticCallee(ast.Unparen(fun.X))
	case *ast.IndexListExpr:
		return s.staticCallee(ast.Unparen(fun.X))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Builtin sink table

type sinkSpec struct {
	from        int  // first argument index to check
	recvToo     bool // also check the receiver
	writerGated bool // only a sink when arg 0 is an output writer
}

var builtinSinks = map[string]sinkSpec{
	"fmt.Errorf":                    {},
	"fmt.Print":                     {},
	"fmt.Printf":                    {},
	"fmt.Println":                   {},
	"fmt.Fprint":                    {from: 1, writerGated: true},
	"fmt.Fprintf":                   {from: 1, writerGated: true},
	"fmt.Fprintln":                  {from: 1, writerGated: true},
	"errors.New":                    {},
	"log.Print":                     {},
	"log.Printf":                    {},
	"log.Println":                   {},
	"log.Fatal":                     {},
	"log.Fatalf":                    {},
	"log.Fatalln":                   {},
	"log.Panic":                     {},
	"log.Panicf":                    {},
	"log.Panicln":                   {},
	"log.Output":                    {from: 1},
	"log.Logger.Print":              {},
	"log.Logger.Printf":             {},
	"log.Logger.Println":            {},
	"log.Logger.Fatal":              {},
	"log.Logger.Fatalf":             {},
	"log.Logger.Fatalln":            {},
	"log.Logger.Panic":              {},
	"log.Logger.Panicf":             {},
	"log.Logger.Panicln":            {},
	"log.Logger.Output":             {from: 1},
	"net/http.Error":                {from: 1},
	"net/http.ResponseWriter.Write": {},
}

// sinkWriter reports whether writing to t publishes data: the HTTP response
// stream or a real file handle (os.Stdout, os.Stderr, opened files).
func (c *checker) sinkWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	s := t.String()
	return s == "net/http.ResponseWriter" || s == "*os.File"
}

// ---------------------------------------------------------------------------
// Emission: waivers, stale waivers, facts

func (c *checker) emit() {
	for _, r := range c.reports {
		p := c.pass.Fset.Position(r.pos)
		if w := c.waivers[p.Filename]; w != nil {
			line := 0
			if _, ok := w[p.Line]; ok {
				line = p.Line
			} else if _, ok := w[p.Line-1]; ok {
				line = p.Line - 1
			}
			if line != 0 {
				if c.usedWaivers[p.Filename] == nil {
					c.usedWaivers[p.Filename] = make(map[int]bool)
				}
				c.usedWaivers[p.Filename][line] = true
				continue
			}
		}
		c.pass.Report(analysis.Diagnostic{Pos: r.pos, Message: r.msg})
	}
	// Stale waivers: an escape that no longer suppresses anything is dead
	// weight that would silently excuse the next leak on that line.
	for fname, lines := range c.waivers {
		for line, pos := range lines {
			if !c.usedWaivers[fname][line] {
				c.pass.Reportf(pos, "stale //conftaint:ok waiver: it suppresses no conftaint finding on this or the next line")
			}
		}
	}
}

func (c *checker) exportFacts() {
	for fn, sum := range c.summaries {
		if sum.zero() {
			continue
		}
		c.pass.ExportObjectFact(fn, sum)
	}
	var marks PkgMarks
	prefix := c.pass.Path + "."
	for key := range c.sourceTypes {
		if strings.HasPrefix(key, prefix) {
			name := strings.TrimPrefix(key, prefix)
			if !strings.Contains(name, ".") {
				marks.SourceTypes = append(marks.SourceTypes, name)
			}
		}
	}
	for key := range c.sourceFields {
		if strings.HasPrefix(key, prefix) {
			marks.SourceFields = append(marks.SourceFields, strings.TrimPrefix(key, prefix))
		}
	}
	if len(marks.SourceTypes)+len(marks.SourceFields) > 0 {
		sortStrings(marks.SourceTypes)
		sortStrings(marks.SourceFields)
		c.pass.ExportPackageFact(&marks)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
