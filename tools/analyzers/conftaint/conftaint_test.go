package conftaint_test

import (
	"testing"

	"vadasa/tools/analyzers/checktest"
	"vadasa/tools/analyzers/conftaint"
)

func TestConftaint(t *testing.T) {
	checktest.Run(t, "testdata/src", conftaint.Analyzer)
}

func TestApplies(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"vadasa", true},
		{"vadasa/internal/mdb", true},
		{"vadasa/internal/stream [vadasa/internal/stream.test]", true},
		{"vadasa/cmd/vadasad", true},
		{"vadasa/cmd/experiments", false},
		{"vadasa/examples/chaos", false},
		{"vadasa/tools/analyzers/conftaint", false},
		{"fmt", false},
		{"net/http", false},
		{"vadasa.test", false},
	}
	for _, c := range cases {
		if got := conftaint.Analyzer.Applies(c.path); got != c.want {
			t.Errorf("Applies(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
