// Package b imports a: every flow below crosses the package boundary, so
// the findings depend on the facts package a exported — Value's source
// marks, Format's returns-taint summary, SinkParam's sink-parameter
// summary, Store's sink directive and Redacted's sanitizer directive.
package b

import (
	"fmt"
	"log"

	"a"
)

func LeakAcross(v a.Value) error {
	return fmt.Errorf("cell %q", a.Format(v)) // want "raw microdata reaches fmt.Errorf"
}

func CleanAcross(v a.Value) error {
	return fmt.Errorf("cell %s", a.Redacted(v))
}

func LeakSummaryAcross(v a.Value) error {
	return a.SinkParam(a.Format(v)) // want "raw microdata flows into a.SinkParam"
}

func LeakContainment(r a.Row) {
	log.Println("row", r.Cells) // want "raw microdata reaches log.Println"
}

func LeakStoreAcross(v a.Value) {
	a.Store([]byte(v.Constant())) // want "raw microdata reaches a.Store"
}

func CleanMetadata(r a.Row) error {
	return fmt.Errorf("row %d rejected", r.ID)
}

func WaivedAcross(v a.Value) {
	a.Store([]byte(v.Constant())) //conftaint:ok sanctioned journal append of raw cells
}
