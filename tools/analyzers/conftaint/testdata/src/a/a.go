// Package a models the microdata side: a confidential cell type, an
// accessor, a sanitizer, a containment struct and an annotated sink.
package a

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
)

// Value is one raw microdata cell.
type Value struct {
	s string //conftaint:source
}

// NewValue wraps raw text in a cell.
func NewValue(s string) Value { return Value{s: s} }

// Constant returns the raw cell text; the taint follows it.
func (v Value) Constant() string { return v.s }

// Redacted reduces a cell to a safe digest.
//
//conftaint:sanitize
func Redacted(v Value) string {
	sum := sha256.Sum256([]byte(v.Constant()))
	return hex.EncodeToString(sum[:4])
}

// Row is confidential by containment: it holds Values.
type Row struct {
	ID    int
	Cells []Value
}

func Leak(v Value) error {
	return fmt.Errorf("bad cell %q", v.Constant()) // want "raw microdata reaches fmt.Errorf"
}

func LeakLog(r Row) {
	log.Printf("row %v", r) // want "raw microdata reaches log.Printf"
}

func Clean(v Value) error {
	return fmt.Errorf("bad cell %s", Redacted(v))
}

func CleanIndex(r Row, i int) error {
	return fmt.Errorf("row %d cell %d invalid", r.ID, i)
}

// Format returns the raw cell text decorated; callers inherit the taint.
func Format(v Value) string {
	return "cell " + v.Constant()
}

// SinkParam forwards its argument into an error: callers with raw data are
// flagged at their call sites through the exported summary.
func SinkParam(msg string) error {
	return fmt.Errorf("wrapped: %s", msg)
}

func LeakViaParam(v Value) error {
	return SinkParam(v.Constant()) // want "raw microdata flows into a.SinkParam"
}

// Store publishes its payload.
//
//conftaint:sink
func Store(payload []byte) {}

func LeakStore(v Value) {
	Store([]byte(v.Constant())) // want "raw microdata reaches a.Store"
}

func WaivedStore(v Value) {
	//conftaint:ok journaled raw cells are the crash-recovery record
	Store([]byte(v.Constant()))
}

//conftaint:ok nothing on the next line leaks // want "stale //conftaint:ok waiver"
func NotLeaky() error {
	return fmt.Errorf("all good")
}

// Flow through locals, loops and concatenation.
func LeakLoop(rows []Row) error {
	joined := ""
	for _, r := range rows {
		for _, c := range r.Cells {
			joined += c.Constant()
		}
	}
	if joined != "" {
		return fmt.Errorf("cells: %s", joined) // want "raw microdata reaches fmt.Errorf"
	}
	return nil
}
