package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Waivers tracks one file's `//<tool>:ok <reason>` escape comments and
// which of them actually suppressed a finding. A waiver covers a finding on
// its own line or the line below — the two placements the fence analyzers
// have always accepted — and a waiver that covers nothing is itself a
// finding (ReportStale): escapes must not outlive the code they excused,
// because a forgotten one would silently cover the next violation
// introduced on its line.
type Waivers struct {
	tool  string
	lines map[int]token.Pos
	used  map[int]bool
}

// CollectWaivers scans file for comments beginning "//<tool>:ok".
func CollectWaivers(fset *token.FileSet, file *ast.File, tool string) *Waivers {
	w := &Waivers{tool: tool, lines: make(map[int]token.Pos), used: make(map[int]bool)}
	prefix := "//" + tool + ":ok"
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, prefix) {
				w.lines[fset.Position(c.Pos()).Line] = c.Pos()
			}
		}
	}
	return w
}

// Suppresses reports whether a waiver covers a finding on line, marking the
// waiver used.
func (w *Waivers) Suppresses(line int) bool {
	for _, l := range []int{line, line - 1} {
		if _, ok := w.lines[l]; ok {
			w.used[l] = true
			return true
		}
	}
	return false
}

// ReportStale reports every waiver that suppressed nothing, in line order.
func (w *Waivers) ReportStale(pass *Pass) {
	lines := make([]int, 0, len(w.lines))
	for l := range w.lines {
		lines = append(lines, l)
	}
	sort.Ints(lines)
	for _, l := range lines {
		if !w.used[l] {
			pass.Reportf(w.lines[l],
				"stale //%s:ok waiver: it suppresses no %s finding on this or the next line",
				w.tool, w.tool)
		}
	}
}
