// Package analysis is a deliberately small, dependency-free subset of the
// golang.org/x/tools/go/analysis API: just enough structure to write
// AST-level analyzers and drive them from the unitchecker protocol that
// `go vet -vettool` speaks. The shapes mirror the upstream package so the
// analyzers can migrate to x/tools unchanged if the dependency ever becomes
// available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// An Analyzer is one named check over a package's syntax trees.
type Analyzer struct {
	// Name identifies the analyzer on the command line (`-name` enables
	// just this analyzer) and prefixes nothing — diagnostics are plain
	// position: message lines, as go vet expects.
	Name string
	// Doc is the help text.
	Doc string
	// Run executes the check and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one package's worth of parsed input to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the package name from the syntax trees (no type checking).
	Pkg string
	// Report receives each diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
