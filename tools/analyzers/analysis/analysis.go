// Package analysis is a deliberately small, dependency-free subset of the
// golang.org/x/tools/go/analysis API: enough structure to write AST-level
// and type-checked analyzers and drive them from the unitchecker protocol
// that `go vet -vettool` speaks. The shapes mirror the upstream package so
// the analyzers can migrate to x/tools unchanged if the dependency ever
// becomes available.
//
// Beyond the original AST-only surface, a Pass now optionally carries full
// go/types information (TypesPkg, TypesInfo) and a fact mechanism: an
// analyzer declares prototype facts in Analyzer.FactTypes, attaches facts to
// objects or to the package while analyzing, and reads facts attached by the
// same analyzer when it ran over the dependencies of the current package.
// Drivers serialize facts between compilation units (the unitchecker
// protocol's .vetx files) so summaries cross package boundaries without any
// whole-program view.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named check over a package's syntax trees.
type Analyzer struct {
	// Name identifies the analyzer on the command line (`-name` enables
	// just this analyzer) and prefixes nothing — diagnostics are plain
	// position: message lines, as go vet expects.
	Name string
	// Doc is the help text.
	Doc string
	// Run executes the check and reports findings via pass.Reportf.
	Run func(pass *Pass) error
	// NeedsTypes requests full type information: the driver type-checks
	// the compilation unit (through go/importer export data under go vet,
	// or a source loader in the checktest harness) and populates
	// Pass.TypesPkg / Pass.TypesInfo before Run. AST-only analyzers leave
	// it false and keep running even where type-checking is impossible
	// (the standalone directory sweep).
	NeedsTypes bool
	// FactTypes lists prototype values (pointers to exported struct
	// types) for every fact kind the analyzer exports or imports. Drivers
	// gob-register them so facts survive serialization between
	// compilation units.
	FactTypes []Fact
	// Applies, when non-nil, restricts the analyzer to compilation units
	// whose import path it accepts. Units it rejects are skipped entirely
	// — no diagnostics, no facts — which also lets the driver skip
	// type-checking units no typed analyzer wants (the whole standard
	// library, under `go vet ./...`).
	Applies func(importPath string) bool
}

// A Fact is a serializable datum an analyzer attaches to an object or a
// package so later passes over importing packages can read it. Concrete
// fact types must be pointers to structs with exported fields (they travel
// by gob) and implement the marker method.
type Fact interface{ AFact() }

// A Pass carries one package's worth of parsed input to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the package name from the syntax trees (no type checking).
	Pkg string
	// Path is the import path of the unit when the driver knows it
	// (always under go vet; the fixture path under checktest; empty in
	// the standalone directory sweep).
	Path string
	// TypesPkg and TypesInfo are set iff Analyzer.NeedsTypes: the
	// type-checked package and the fully populated go/types info maps
	// (Types, Defs, Uses, Selections, Implicits, Instances, Scopes).
	TypesPkg  *types.Package
	TypesInfo *types.Info
	// Report receives each diagnostic.
	Report func(Diagnostic)

	// Facts is the driver-provided fact store for this run; nil for
	// AST-only drivers. Analyzers use the typed accessors below.
	Facts *FactStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact attaches fact to obj, which must belong to the package
// under analysis. The driver serializes it for importing units.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts == nil {
		panic("analysis: ExportObjectFact on a pass without a fact store")
	}
	p.Facts.setObject(packagePath(obj, p), ObjectKey(obj), fact)
}

// ImportObjectFact copies the fact of the same concrete type attached to
// obj (by this pass or by the run over obj's defining package) into fact,
// reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.getObject(packagePath(obj, p), ObjectKey(obj), fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.Facts == nil {
		panic("analysis: ExportPackageFact on a pass without a fact store")
	}
	p.Facts.setObject(p.Path, "", fact)
}

// ImportPackageFact copies the package fact of the same concrete type for
// pkgPath into fact, reporting whether one existed.
func (p *Pass) ImportPackageFact(pkgPath string, fact Fact) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.getObject(pkgPath, "", fact)
}

// packagePath resolves the path facts about obj are filed under: the
// current unit's path for objects defined here (obj.Pkg().Path() can spell
// the unit's own path differently under test variants), the defining
// package's path otherwise.
func packagePath(obj types.Object, p *Pass) string {
	if obj.Pkg() == nil {
		return ""
	}
	if p.TypesPkg != nil && obj.Pkg() == p.TypesPkg {
		return p.Path
	}
	return obj.Pkg().Path()
}

// ObjectKey names an object stably across compilation units, so facts
// serialized by the defining unit can be found by importers: package-level
// functions, types, variables and constants go by name; methods by
// "Receiver.Method" with pointer receivers stripped. Only package-scoped
// objects (and their methods) have useful keys — facts on locals do not
// travel, matching the upstream design.
func ObjectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name()
			}
			if iface, ok := t.(*types.Interface); ok {
				_ = iface // interface literal receiver: fall through to name
			}
		}
	}
	return obj.Name()
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
