package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sort"
)

// FactStore holds the facts visible to one compilation unit: everything
// decoded from the dependencies' fact files plus everything the current
// unit's analyzers export. It is keyed by (package path, object key) — an
// empty object key is a package-level fact — and, within a key, by the
// concrete fact type, so distinct analyzers (and distinct fact kinds of one
// analyzer) never collide.
//
// The zero FactStore is not ready; use NewFactStore.
type FactStore struct {
	// m[pkgPath][objectKey][factTypeName] = fact
	m map[string]map[string]map[string]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[string]map[string]map[string]Fact)}
}

func factTypeName(f Fact) string { return reflect.TypeOf(f).String() }

func (s *FactStore) setObject(pkgPath, key string, fact Fact) {
	pkg := s.m[pkgPath]
	if pkg == nil {
		pkg = make(map[string]map[string]Fact)
		s.m[pkgPath] = pkg
	}
	obj := pkg[key]
	if obj == nil {
		obj = make(map[string]Fact)
		pkg[key] = obj
	}
	obj[factTypeName(fact)] = fact
}

// getObject copies the stored fact with out's concrete type into out via
// reflection (out must be a non-nil pointer, as all Facts are).
func (s *FactStore) getObject(pkgPath, key string, out Fact) bool {
	fact, ok := s.m[pkgPath][key][factTypeName(out)]
	if !ok {
		return false
	}
	dst := reflect.ValueOf(out).Elem()
	dst.Set(reflect.ValueOf(fact).Elem())
	return true
}

// gobFact is the serialized form of one fact. Fact is an interface field:
// gob requires every concrete fact type to be registered, which
// RegisterFactTypes does from the analyzers' FactTypes declarations.
type gobFact struct {
	PkgPath string
	Object  string // "" = package fact
	Fact    Fact
}

// RegisterFactTypes gob-registers the prototype facts of the analyzers so
// Encode/Decode round-trip them. Safe to call repeatedly with the same
// prototypes.
func RegisterFactTypes(analyzers ...*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// Encode serializes every fact in the store, deterministically ordered.
// The output of a unit becomes the input of its importers (the .vetx file
// of the unitchecker protocol).
func (s *FactStore) Encode() ([]byte, error) {
	var out []gobFact
	for pkgPath, objs := range s.m {
		for key, byType := range objs {
			for _, fact := range byType {
				out = append(out, gobFact{PkgPath: pkgPath, Object: key, Fact: fact})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PkgPath != out[j].PkgPath {
			return out[i].PkgPath < out[j].PkgPath
		}
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return factTypeName(out[i].Fact) < factTypeName(out[j].Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(out); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode merges serialized facts into the store. Empty input is a valid
// empty fact set (AST-only units and older tool versions write empty vetx
// files).
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var in []gobFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&in); err != nil {
		return fmt.Errorf("analysis: decoding facts: %w", err)
	}
	for _, gf := range in {
		s.setObject(gf.PkgPath, gf.Object, gf.Fact)
	}
	return nil
}

// Len reports how many facts the store holds.
func (s *FactStore) Len() int {
	n := 0
	for _, objs := range s.m {
		for _, byType := range objs {
			n += len(byType)
		}
	}
	return n
}
