package stream

// Fixture mirroring the shapes the streamfence pass must accept and reject.

type intentPayload struct {
	Release int
	Digest  string
}

type publishPayload struct {
	Release int
	File    string
	Digest  string
}

type Stream struct{}

func (s *Stream) appendIntent(p intentPayload) error   { return nil }
func (s *Stream) appendPublish(p publishPayload) error { return nil }

// release journals the intent before the publish: the protocol's shape.
func (s *Stream) release(p intentPayload) error {
	if err := s.appendIntent(p); err != nil {
		return err
	}
	return s.appendPublish(publishPayload{Release: p.Release, Digest: p.Digest})
}

// hastyPublish commits a publication no intent promised: the bug this pass
// exists for.
func (s *Stream) hastyPublish(rel int) error {
	return s.appendPublish(publishPayload{Release: rel}) // want `publish record journaled without an intent in hastyPublish`
}

// completer fulfils an intent journaled by an earlier incarnation; the
// annotation records that the pairing happened across the crash.
func (s *Stream) completer(p intentPayload) error {
	//streamfence:ok — completes a previously journaled intent
	return s.appendPublish(publishPayload{Release: p.Release, Digest: p.Digest})
}

func (s *Stream) inlineAnnotated(p intentPayload) error {
	return s.appendPublish(publishPayload{Release: p.Release}) //streamfence:ok recovery path
}

// A waiver with nothing to excuse is itself flagged: the escape hatch must
// not outlive the code it covered.
//
//streamfence:ok leftover waiver, publish was removed // want `stale //streamfence:ok waiver`
func (s *Stream) cleanIntentOnly(p intentPayload) error {
	return s.appendIntent(p)
}
