package notstream

// Other packages may name functions appendPublish freely; the invariant is
// scoped to package stream.

type payload struct{}

func appendPublish(p payload) error { return nil }

func fine(p payload) error {
	return appendPublish(p)
}
