// Package streamfence guards the stream release protocol's ordering
// invariant: code in package stream may journal a publish record only after
// journaling the matching intent. The intent is the promise (sequence,
// window size, digest of the exact bytes); a publish without it would commit
// a release recovery can neither verify nor regenerate — the crash window
// between the two records is precisely what the protocol exists to survive.
//
// The pass flags any function in package stream that calls appendPublish
// without also calling appendIntent. The one legitimate exception — a
// function completing an intent that an earlier call (or a crashed
// incarnation) journaled — is annotated with `//streamfence:ok <reason>` on
// the calling line or the preceding one. _test.go files are skipped.
package streamfence

import (
	"go/ast"
	"go/token"
	"strings"

	"vadasa/tools/analyzers/analysis"
)

// Analyzer is the streamfence pass.
var Analyzer = &analysis.Analyzer{
	Name: "streamfence",
	Doc:  "package stream must journal a release intent before its publish record",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if file.Name.Name != "stream" {
			continue
		}
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ok := analysis.CollectWaivers(pass.Fset, file, "streamfence")
		for _, decl := range file.Decls {
			fn, isFn := decl.(*ast.FuncDecl)
			if !isFn || fn.Body == nil {
				continue
			}
			var publishes []token.Pos
			intents := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				switch f := call.Fun.(type) {
				case *ast.Ident:
					switch f.Name {
					case "appendPublish":
						publishes = append(publishes, f.Pos())
					case "appendIntent":
						intents = true
					}
				case *ast.SelectorExpr:
					switch f.Sel.Name {
					case "appendPublish":
						publishes = append(publishes, f.Sel.Pos())
					case "appendIntent":
						intents = true
					}
				}
				return true
			})
			if intents {
				continue
			}
			for _, pos := range publishes {
				line := pass.Fset.Position(pos).Line
				if ok.Suppresses(line) {
					continue
				}
				pass.Reportf(pos,
					"publish record journaled without an intent in %s: call appendIntent first, or annotate //streamfence:ok with why the intent is already journaled",
					fn.Name.Name)
			}
		}
		ok.ReportStale(pass)
	}
	return nil
}
