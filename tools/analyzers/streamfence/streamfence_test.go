package streamfence

import (
	"testing"

	"vadasa/tools/analyzers/checktest"
)

func TestStreamfence(t *testing.T) {
	checktest.Run(t, "testdata/src/a", Analyzer)
}

func TestStreamfenceIgnoresOtherPackages(t *testing.T) {
	checktest.Run(t, "testdata/src/b", Analyzer)
}
