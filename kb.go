package vadasa

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"vadasa/internal/categorize"
	"vadasa/internal/mdb"
)

// The enterprise Knowledge Base of Section 4 is long-lived state: the
// metadata dictionary, the categorization experience base, the domain
// hierarchies and the ownership graph all accumulate expert knowledge across
// sessions. SaveKB/LoadKB persist it as a single JSON document so a Research
// Data Center can version it next to its reasoning programs.

type kbDoc struct {
	Experience []kbExperience `json:"experience,omitempty"`
	Hierarchy  kbHierarchy    `json:"hierarchy"`
	Ownership  []kbEdge       `json:"ownership,omitempty"`
	Dictionary []kbMicroDB    `json:"dictionary,omitempty"`
}

type kbExperience struct {
	Attr     string `json:"attr"`
	Category string `json:"category"`
}

type kbHierarchy struct {
	AttributeTypes map[string]string `json:"attributeTypes,omitempty"`
	SubTypes       map[string]string `json:"subTypes,omitempty"`
	Instances      map[string]string `json:"instances,omitempty"`
	Parents        map[string]string `json:"parents,omitempty"`
}

type kbEdge struct {
	Owner string  `json:"owner"`
	Owned string  `json:"owned"`
	Share float64 `json:"share"`
}

type kbMicroDB struct {
	Name       string   `json:"name"`
	Attributes []kbAttr `json:"attributes"`
}

type kbAttr struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Category    string `json:"category"`
}

// SaveKB writes the framework's knowledge base — experience base, domain
// hierarchy, ownership graph and metadata dictionary — as indented JSON.
func (f *Framework) SaveKB(w io.Writer) error {
	doc := kbDoc{
		Hierarchy: kbHierarchy{
			AttributeTypes: map[string]string{},
			SubTypes:       map[string]string{},
			Instances:      map[string]string{},
			Parents:        map[string]string{},
		},
	}
	for _, e := range f.experience {
		doc.Experience = append(doc.Experience, kbExperience{
			Attr: e.Attr, Category: e.Category.String(),
		})
	}
	for _, fact := range f.hier.Facts() {
		switch fact.Pred {
		case "typeof":
			doc.Hierarchy.AttributeTypes[fact.Args[0]] = fact.Args[1]
		case "subtypeof":
			doc.Hierarchy.SubTypes[fact.Args[0]] = fact.Args[1]
		case "instof":
			doc.Hierarchy.Instances[fact.Args[0]] = fact.Args[1]
		case "isa":
			doc.Hierarchy.Parents[fact.Args[0]] = fact.Args[1]
		}
	}
	for _, e := range f.ownership.Edges() {
		doc.Ownership = append(doc.Ownership, kbEdge{Owner: e.Owner, Owned: e.Owned, Share: e.Share})
	}
	sort.Slice(doc.Ownership, func(i, j int) bool {
		a, b := doc.Ownership[i], doc.Ownership[j]
		if a.Owner != b.Owner {
			return a.Owner < b.Owner
		}
		return a.Owned < b.Owned
	})
	for _, name := range f.dict.MicroDBs() {
		attrs, err := f.dict.Attributes(name)
		if err != nil {
			return err
		}
		db := kbMicroDB{Name: name}
		for _, a := range attrs {
			db.Attributes = append(db.Attributes, kbAttr{
				Name: a.Name, Description: a.Description, Category: a.Category.String(),
			})
		}
		doc.Dictionary = append(doc.Dictionary, db)
	}

	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("vadasa: saving KB: %w", err)
	}
	return nil
}

// LoadKB replaces the framework's knowledge base with the one read from r
// (previously written by SaveKB).
func (f *Framework) LoadKB(r io.Reader) error {
	var doc kbDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("vadasa: loading KB: %w", err)
	}

	var exp []categorize.Entry
	for _, e := range doc.Experience {
		cat, err := mdb.ParseCategory(e.Category)
		if err != nil {
			return fmt.Errorf("vadasa: loading KB: experience entry %q: %w", e.Attr, err)
		}
		exp = append(exp, categorize.Entry{Attr: e.Attr, Category: cat})
	}

	hier := NewHierarchy()
	for attr, typ := range doc.Hierarchy.AttributeTypes {
		hier.SetAttributeType(attr, typ)
	}
	// Types and instances first so isA consistency checks can fire.
	for value, typ := range doc.Hierarchy.Instances {
		hier.AddInstance(value, typ)
	}
	for _, p := range sortedKeys(doc.Hierarchy.SubTypes) {
		if err := hier.AddSubType(p, doc.Hierarchy.SubTypes[p]); err != nil {
			return fmt.Errorf("vadasa: loading KB: %w", err)
		}
	}
	for _, v := range sortedKeys(doc.Hierarchy.Parents) {
		if err := hier.AddIsA(v, doc.Hierarchy.Parents[v]); err != nil {
			return fmt.Errorf("vadasa: loading KB: %w", err)
		}
	}

	own := NewOwnershipGraph()
	for _, e := range doc.Ownership {
		if err := own.AddOwnership(e.Owner, e.Owned, e.Share); err != nil {
			return fmt.Errorf("vadasa: loading KB: %w", err)
		}
	}

	dict := mdb.NewDictionary()
	for _, db := range doc.Dictionary {
		attrs := make([]Attribute, len(db.Attributes))
		for i, a := range db.Attributes {
			cat, err := mdb.ParseCategory(a.Category)
			if err != nil {
				return fmt.Errorf("vadasa: loading KB: microdata DB %q attribute %q: %w",
					db.Name, a.Name, err)
			}
			attrs[i] = Attribute{Name: a.Name, Description: a.Description, Category: cat}
		}
		if err := dict.Register(db.Name, attrs); err != nil {
			return fmt.Errorf("vadasa: loading KB: %w", err)
		}
	}

	f.experience = exp
	f.hier = hier
	f.ownership = own
	f.dict = dict
	return nil
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
