// Package experiments regenerates the paper's evaluation (Section 5): every
// series of Figures 7a–7f, plus the Figure 6 dataset inventory. The
// functions return structured results so both the cmd/experiments binary and
// the benchmark suite can drive them; Render* write the same rows the paper
// plots.
//
// A scale factor shrinks the dataset sizes proportionally for quick runs;
// scale 1.0 reproduces the paper's sizes (6k–100k tuples).
package experiments

import (
	"fmt"
	"io"
	"time"

	"vadasa/internal/anon"
	"vadasa/internal/cluster"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
	"vadasa/internal/synth"
)

// threshold is the risk threshold T = 0.5 used across Section 5.
const threshold = 0.5

func scaled(tuples int, scale float64) int {
	n := int(float64(tuples) * scale)
	if n < 100 {
		n = 100
	}
	return n
}

// dataset25k returns the three 25k-tuple datasets (W, U, V) of Figure 7a-7d
// at the given scale.
func dataset25k(scale float64) []*mdb.Dataset {
	return []*mdb.Dataset{
		synth.Generate(synth.Config{Tuples: scaled(25000, scale), QIs: 4, Dist: synth.DistW, Seed: 3}),
		synth.Generate(synth.Config{Tuples: scaled(25000, scale), QIs: 4, Dist: synth.DistU, Seed: 4}),
		synth.Generate(synth.Config{Tuples: scaled(25000, scale), QIs: 4, Dist: synth.DistV, Seed: 5}),
	}
}

// CycleStats is one anonymization-cycle run of the Figure 7a/7b sweeps.
type CycleStats struct {
	Dataset   string
	K         int
	Semantics mdb.Semantics
	Nulls     int
	InfoLoss  float64
	Residual  int
}

// Fig7a runs the anonymization capability sweep of Figures 7a and 7b:
// k-anonymity (k = 2..5, T = 0.5), local suppression with the
// less-significant-first heuristic, maybe-match semantics, over the
// real-world-like and unbalanced 25k datasets. Figure 7a reads the Nulls
// column, Figure 7b the InfoLoss column.
func Fig7a(scale float64) ([]CycleStats, error) {
	var out []CycleStats
	for _, d := range dataset25k(scale) {
		for k := 2; k <= 5; k++ {
			res, err := anon.Run(d, anon.Config{
				Assessor:   risk.KAnonymity{K: k},
				Threshold:  threshold,
				Anonymizer: anon.LocalSuppression{Choice: anon.AttrMaxGain},
				Semantics:  mdb.MaybeMatch,
				Order:      anon.OrderLessSignificantFirst,
			})
			if err != nil {
				return nil, fmt.Errorf("fig7a %s k=%d: %w", d.Name, k, err)
			}
			out = append(out, CycleStats{
				Dataset: d.Name, K: k, Semantics: mdb.MaybeMatch,
				Nulls: res.NullsInjected, InfoLoss: res.InfoLoss,
				Residual: len(res.Residual),
			})
		}
	}
	return out, nil
}

// RenderFig7a writes the Figure 7a table: nulls injected by k-anonymity
// threshold.
func RenderFig7a(w io.Writer, stats []CycleStats) {
	fmt.Fprintf(w, "Figure 7a — labelled nulls injected by k-anonymity threshold (T=%.1f)\n", threshold)
	fmt.Fprintf(w, "%-10s %4s %8s\n", "dataset", "k", "nulls")
	for _, s := range stats {
		fmt.Fprintf(w, "%-10s %4d %8d\n", s.Dataset, s.K, s.Nulls)
	}
}

// RenderFig7b writes the Figure 7b table: information loss by k-anonymity
// threshold.
func RenderFig7b(w io.Writer, stats []CycleStats) {
	fmt.Fprintf(w, "Figure 7b — information loss by k-anonymity threshold (T=%.1f)\n", threshold)
	fmt.Fprintf(w, "%-10s %4s %10s\n", "dataset", "k", "loss")
	for _, s := range stats {
		fmt.Fprintf(w, "%-10s %4d %9.1f%%\n", s.Dataset, s.K, 100*s.InfoLoss)
	}
}

// Fig7c reruns the Figure 7a sweep under both labelled-null semantics:
// maybe-match versus the standard Skolem semantics, exposing the null
// proliferation of Figure 7c.
func Fig7c(scale float64) ([]CycleStats, error) {
	var out []CycleStats
	for _, d := range dataset25k(scale) {
		for _, sem := range []mdb.Semantics{mdb.MaybeMatch, mdb.StandardNulls} {
			for k := 2; k <= 5; k++ {
				res, err := anon.Run(d, anon.Config{
					Assessor:   risk.KAnonymity{K: k},
					Threshold:  threshold,
					Anonymizer: anon.LocalSuppression{Choice: anon.AttrMaxGain},
					Semantics:  sem,
					Order:      anon.OrderLessSignificantFirst,
				})
				if err != nil {
					return nil, fmt.Errorf("fig7c %s %v k=%d: %w", d.Name, sem, k, err)
				}
				out = append(out, CycleStats{
					Dataset: d.Name, K: k, Semantics: sem,
					Nulls: res.NullsInjected, InfoLoss: res.InfoLoss,
					Residual: len(res.Residual),
				})
			}
		}
	}
	return out, nil
}

// RenderFig7c writes the Figure 7c table: nulls injected with maybe-matching
// vs standard labelled-null semantics.
func RenderFig7c(w io.Writer, stats []CycleStats) {
	fmt.Fprintf(w, "Figure 7c — nulls injected: maybe-match vs standard null semantics (T=%.1f)\n", threshold)
	fmt.Fprintf(w, "%-10s %-12s %4s %8s %9s\n", "dataset", "semantics", "k", "nulls", "residual")
	for _, s := range stats {
		fmt.Fprintf(w, "%-10s %-12s %4d %8d %9d\n", s.Dataset, s.Semantics, s.K, s.Nulls, s.Residual)
	}
}

// RelStats is one point of the Figure 7d business-knowledge sweep.
type RelStats struct {
	Dataset       string
	Relationships int
	Nulls         int
	Risky         int
}

// Fig7d runs the business-knowledge experiment: the anonymization cycle with
// k-anonymity (k=2, T=0.5) where risk propagates along company-control
// clusters, sweeping the number of inferred control relationships from 0 to
// 400 (scaled).
func Fig7d(scale float64) ([]RelStats, error) {
	var out []RelStats
	for _, d := range dataset25k(scale) {
		var ids []string
		for _, r := range d.Rows {
			ids = append(ids, r.Values[0].Constant())
		}
		for _, nRels := range []int{0, 100, 200, 300, 400} {
			rels := int(float64(nRels) * scale)
			g := cluster.NewGraph()
			if rels > 0 {
				//conftaint:ok synthetic benchmark identifiers, not respondent microdata
				if err := cluster.StarOwnerships(g, ids, rels, 4, 7); err != nil {
					return nil, err
				}
			}
			assessor := risk.Assessor(risk.KAnonymity{K: 2})
			if rels > 0 {
				assessor = cluster.Assessor{Base: assessor, Graph: g}
			}
			// BatchFraction 1 isolates the propagation effect from the
			// batch-rescue optimization: every tuple over threshold is
			// anonymized before risk is re-evaluated, as in Algorithm 9.
			res, err := anon.Run(d, anon.Config{
				Assessor:      assessor,
				Threshold:     threshold,
				Anonymizer:    anon.LocalSuppression{Choice: anon.AttrMaxGain},
				Semantics:     mdb.MaybeMatch,
				Order:         anon.OrderLessSignificantFirst,
				BatchFraction: 1,
			})
			if err != nil {
				return nil, fmt.Errorf("fig7d %s rels=%d: %w", d.Name, rels, err)
			}
			out = append(out, RelStats{
				Dataset: d.Name, Relationships: rels,
				Nulls: res.NullsInjected, Risky: res.EverRisky,
			})
		}
	}
	return out, nil
}

// RenderFig7d writes the Figure 7d table: nulls injected by number of
// control relationships.
func RenderFig7d(w io.Writer, stats []RelStats) {
	fmt.Fprintf(w, "Figure 7d — nulls injected by number of control relationships (k=2, T=%.1f)\n", threshold)
	fmt.Fprintf(w, "%-10s %6s %8s %8s\n", "dataset", "rels", "nulls", "risky")
	for _, s := range stats {
		fmt.Fprintf(w, "%-10s %6d %8d %8d\n", s.Dataset, s.Relationships, s.Nulls, s.Risky)
	}
}

// TimeStats is one point of the Figure 7e/7f scalability sweeps.
type TimeStats struct {
	Dataset   string
	Tuples    int
	QIs       int
	Technique string
	Total     time.Duration
	RiskEval  time.Duration
	Nulls     int
}

// techniques returns the three risk estimation techniques of Figure 7e/7f:
// individual risk with the sampling estimator (the paper's costly
// “off-the-shelf statistical library” configuration), k-anonymity with k=2,
// and SUDA with MSU threshold 3.
func techniques() []risk.Assessor {
	return []risk.Assessor{
		risk.IndividualRisk{Estimator: risk.MonteCarlo, Samples: 200, Seed: 1},
		risk.KAnonymity{K: 2},
		risk.SUDA{Threshold: 3},
	}
}

func timeCycle(d *mdb.Dataset, a risk.Assessor) (TimeStats, error) {
	start := time.Now()
	// BatchFraction 1 keeps the iteration count low so the measured split
	// cleanly separates risk estimation from anonymization, as the paper's
	// dotted-vs-solid lines do.
	res, err := anon.Run(d, anon.Config{
		Assessor:      a,
		Threshold:     threshold,
		Anonymizer:    anon.LocalSuppression{Choice: anon.AttrMaxGain},
		Semantics:     mdb.MaybeMatch,
		Order:         anon.OrderLessSignificantFirst,
		BatchFraction: 1,
	})
	if err != nil {
		return TimeStats{}, fmt.Errorf("%s on %s: %w", a.Name(), d.Name, err)
	}
	return TimeStats{
		Dataset:   d.Name,
		Tuples:    len(d.Rows),
		QIs:       len(d.QuasiIdentifiers()),
		Technique: a.Name(),
		Total:     time.Since(start),
		RiskEval:  res.RiskEvalTime,
		Nulls:     res.NullsInjected,
	}, nil
}

// Fig7e measures the elapsed time of the full anonymization cycle and of its
// risk estimation component, by dataset size (6k to 100k unbalanced tuples)
// and risk estimation technique.
func Fig7e(scale float64) ([]TimeStats, error) {
	cfgs := []synth.Config{
		{Tuples: scaled(6000, scale), QIs: 4, Dist: synth.DistU, Seed: 1},
		{Tuples: scaled(12000, scale), QIs: 4, Dist: synth.DistU, Seed: 2},
		{Tuples: scaled(25000, scale), QIs: 4, Dist: synth.DistU, Seed: 4},
		{Tuples: scaled(50000, scale), QIs: 4, Dist: synth.DistU, Seed: 7},
		{Tuples: scaled(100000, scale), QIs: 4, Dist: synth.DistU, Seed: 12},
	}
	var out []TimeStats
	for _, cfg := range cfgs {
		d := synth.Generate(cfg)
		for _, a := range techniques() {
			ts, err := timeCycle(d, a)
			if err != nil {
				return nil, err
			}
			out = append(out, ts)
		}
	}
	return out, nil
}

// RenderFig7e writes the Figure 7e table: execution time by dataset size and
// risk estimation technique.
func RenderFig7e(w io.Writer, stats []TimeStats) {
	fmt.Fprintf(w, "Figure 7e — execution time by dataset size and risk technique (T=%.1f)\n", threshold)
	fmt.Fprintf(w, "%-10s %8s %-28s %12s %12s\n", "dataset", "tuples", "technique", "total", "risk-eval")
	for _, s := range stats {
		fmt.Fprintf(w, "%-10s %8d %-28s %12s %12s\n",
			s.Dataset, s.Tuples, s.Technique, s.Total.Round(time.Millisecond), s.RiskEval.Round(time.Millisecond))
	}
}

// Fig7f measures execution time by number of quasi-identifiers (4 to 9) at
// fixed 50k tuples with the real-world-like distribution.
func Fig7f(scale float64) ([]TimeStats, error) {
	cfgs := []synth.Config{
		{Tuples: scaled(50000, scale), QIs: 4, Dist: synth.DistW, Seed: 6},
		{Tuples: scaled(50000, scale), QIs: 5, Dist: synth.DistW, Seed: 8},
		{Tuples: scaled(50000, scale), QIs: 6, Dist: synth.DistW, Seed: 9},
		{Tuples: scaled(50000, scale), QIs: 8, Dist: synth.DistW, Seed: 10},
		{Tuples: scaled(50000, scale), QIs: 9, Dist: synth.DistW, Seed: 11},
	}
	var out []TimeStats
	for _, cfg := range cfgs {
		d := synth.Generate(cfg)
		for _, a := range techniques() {
			ts, err := timeCycle(d, a)
			if err != nil {
				return nil, err
			}
			out = append(out, ts)
		}
	}
	return out, nil
}

// RenderFig7f writes the Figure 7f table: execution time by number of
// quasi-identifiers and risk estimation technique.
func RenderFig7f(w io.Writer, stats []TimeStats) {
	fmt.Fprintf(w, "Figure 7f — execution time by number of quasi-identifiers (50k tuples, T=%.1f)\n", threshold)
	fmt.Fprintf(w, "%-10s %5s %-28s %12s %12s\n", "dataset", "QIs", "technique", "total", "risk-eval")
	for _, s := range stats {
		fmt.Fprintf(w, "%-10s %5d %-28s %12s %12s\n",
			s.Dataset, s.QIs, s.Technique, s.Total.Round(time.Millisecond), s.RiskEval.Round(time.Millisecond))
	}
}

// DatasetInfo is one row of the Figure 6 dataset inventory.
type DatasetInfo struct {
	Name   string
	Attrs  int
	Tuples int
	Dist   string
	Unique int // tuples violating 2-anonymity, characterizing the family
}

// Fig6 regenerates the dataset family of Figure 6 and reports, for each, the
// number of unique (2-anonymity-violating) tuples.
func Fig6(scale float64) []DatasetInfo {
	var out []DatasetInfo
	for _, cfg := range synth.StandardConfigs() {
		cfg.Tuples = scaled(cfg.Tuples, scale)
		d := synth.Generate(cfg)
		unique := 0
		for _, f := range mdb.Frequencies(d, d.QuasiIdentifiers(), mdb.MaybeMatch) {
			if f < 2 {
				unique++
			}
		}
		out = append(out, DatasetInfo{
			Name: cfg.Name(), Attrs: cfg.QIs, Tuples: cfg.Tuples,
			Dist: cfg.Dist.String(), Unique: unique,
		})
	}
	return out
}

// RenderFig6 writes the Figure 6 dataset inventory.
func RenderFig6(w io.Writer, infos []DatasetInfo) {
	fmt.Fprintln(w, "Figure 6 — datasets used in the experimental settings")
	fmt.Fprintf(w, "%-10s %6s %8s %5s %8s\n", "dataset", "attrs", "tuples", "dist", "unique")
	for _, i := range infos {
		fmt.Fprintf(w, "%-10s %6d %8d %5s %8d\n", i.Name, i.Attrs, i.Tuples, i.Dist, i.Unique)
	}
}
