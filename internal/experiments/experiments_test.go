package experiments

import (
	"strings"
	"testing"
)

// The harness runs every figure end to end at a tiny scale; assertions pin
// the shapes the paper reports, so a regression in any module that bends a
// curve fails here.
const testScale = 0.04 // 1000-tuple datasets

func TestFig6(t *testing.T) {
	infos := Fig6(testScale)
	if len(infos) != 12 {
		t.Fatalf("got %d datasets", len(infos))
	}
	var b strings.Builder
	RenderFig6(&b, infos)
	if !strings.Contains(b.String(), "Figure 6") {
		t.Error("render header missing")
	}
}

func TestFig7aShapes(t *testing.T) {
	stats, err := Fig7a(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 12 { // 3 datasets x 4 thresholds
		t.Fatalf("got %d runs", len(stats))
	}
	// Nulls monotone in k within each dataset.
	for i := 1; i < len(stats); i++ {
		if stats[i].Dataset == stats[i-1].Dataset && stats[i].Nulls < stats[i-1].Nulls {
			t.Errorf("nulls not monotone in k: %+v -> %+v", stats[i-1], stats[i])
		}
	}
	// W < U < V at k=2 (runs are ordered W, U, V).
	if !(stats[0].Nulls < stats[4].Nulls && stats[4].Nulls < stats[8].Nulls) {
		t.Errorf("family ordering broken: W=%d U=%d V=%d",
			stats[0].Nulls, stats[4].Nulls, stats[8].Nulls)
	}
	// Everything converges under maybe-match.
	for _, s := range stats {
		if s.Residual != 0 {
			t.Errorf("%s k=%d left %d residual tuples", s.Dataset, s.K, s.Residual)
		}
		if s.InfoLoss <= 0 || s.InfoLoss >= 1 {
			t.Errorf("%s k=%d info loss %g out of range", s.Dataset, s.K, s.InfoLoss)
		}
	}
	var a, b strings.Builder
	RenderFig7a(&a, stats)
	RenderFig7b(&b, stats)
	if !strings.Contains(a.String(), "7a") || !strings.Contains(b.String(), "7b") {
		t.Error("render headers missing")
	}
}

func TestFig7cShapes(t *testing.T) {
	stats, err := Fig7c(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Standard semantics must inject more nulls and leave residuals.
	byKey := map[string]CycleStats{}
	for _, s := range stats {
		byKey[s.Dataset+"|"+s.Semantics.String()+"|"+string(rune('0'+s.K))] = s
	}
	for _, s := range stats {
		if s.Semantics.String() != "standard" {
			continue
		}
		mm := byKey[s.Dataset+"|maybe-match|"+string(rune('0'+s.K))]
		if s.Nulls <= mm.Nulls {
			t.Errorf("%s k=%d: standard %d nulls <= maybe-match %d",
				s.Dataset, s.K, s.Nulls, mm.Nulls)
		}
		if s.Residual == 0 {
			t.Errorf("%s k=%d: standard semantics left no residual", s.Dataset, s.K)
		}
	}
	var b strings.Builder
	RenderFig7c(&b, stats)
	if !strings.Contains(b.String(), "standard") {
		t.Error("render missing standard rows")
	}
}

func TestFig7dShapes(t *testing.T) {
	stats, err := Fig7d(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Risky-tuple counts monotone in the number of relationships.
	for i := 1; i < len(stats); i++ {
		if stats[i].Dataset == stats[i-1].Dataset && stats[i].Risky < stats[i-1].Risky {
			t.Errorf("risky not monotone: %+v -> %+v", stats[i-1], stats[i])
		}
	}
	var b strings.Builder
	RenderFig7d(&b, stats)
	if !strings.Contains(b.String(), "rels") {
		t.Error("render header missing")
	}
}

func TestFig7eShapes(t *testing.T) {
	stats, err := Fig7e(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 15 { // 5 sizes x 3 techniques
		t.Fatalf("got %d runs", len(stats))
	}
	for _, s := range stats {
		if s.RiskEval > s.Total {
			t.Errorf("%s on %s: risk-eval %v exceeds total %v",
				s.Technique, s.Dataset, s.RiskEval, s.Total)
		}
	}
	var b strings.Builder
	RenderFig7e(&b, stats)
	if !strings.Contains(b.String(), "risk-eval") {
		t.Error("render header missing")
	}
}

func TestFig7fShapes(t *testing.T) {
	stats, err := Fig7f(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 15 { // 5 widths x 3 techniques
		t.Fatalf("got %d runs", len(stats))
	}
	// SUDA cost grows with the number of quasi-identifiers.
	var sudaFirst, sudaLast TimeStats
	for _, s := range stats {
		if strings.HasPrefix(s.Technique, "suda") {
			if sudaFirst.Technique == "" {
				sudaFirst = s
			}
			sudaLast = s
		}
	}
	if sudaLast.RiskEval < sudaFirst.RiskEval {
		t.Errorf("SUDA cost shrank with more QIs: %v -> %v",
			sudaFirst.RiskEval, sudaLast.RiskEval)
	}
	var b strings.Builder
	RenderFig7f(&b, stats)
	if !strings.Contains(b.String(), "QIs") {
		t.Error("render header missing")
	}
}
