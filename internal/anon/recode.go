package anon

import (
	"vadasa/internal/hierarchy"
	"vadasa/internal/mdb"
)

// GlobalRecoding is Algorithm 8: the value of a quasi-identifier is replaced
// by its direct super-value in the domain hierarchy (e.g. Milano -> North).
// In Global mode — the default, and what Figure 5b shows — the roll-up is
// applied to every tuple carrying the value, decreasing the granularity of
// the whole column consistently; in per-tuple mode only the risky tuple is
// recoded, as in the literal reading of Algorithm 8.
type GlobalRecoding struct {
	KB     *hierarchy.Hierarchy
	Choice AttrChoice
	// PerTuple restricts the recoding to the risky tuple.
	PerTuple bool
}

// Name implements Anonymizer.
func (GlobalRecoding) Name() string { return "global-recoding" }

// Step implements Anonymizer.
func (g GlobalRecoding) Step(ctx *Context, row int) ([]Decision, bool) {
	if g.KB == nil {
		return nil, false
	}
	d := ctx.Dataset
	r := d.Rows[row]
	var candidates []int
	for _, a := range ctx.QI {
		v := r.Values[a]
		if v.IsNull() {
			continue
		}
		if _, ok := g.KB.RollUp(d.Attrs[a].Name, v.Constant()); ok {
			candidates = append(candidates, a)
		}
	}
	if len(candidates) == 0 {
		return nil, false
	}
	attr := chooseAttr(ctx, row, candidates, g.Choice)[0]
	old := r.Values[attr]
	parent, _ := g.KB.RollUp(d.Attrs[attr].Name, old.Constant())
	newVal := mdb.Const(parent)

	affected := 0
	if g.PerTuple {
		r.Values[attr] = newVal
		affected = 1
	} else {
		for _, other := range d.Rows {
			if other.Values[attr] == old {
				other.Values[attr] = newVal
				affected++
			}
		}
	}
	return []Decision{{
		RowID:        r.ID,
		Attr:         d.Attrs[attr].Name,
		Old:          old,
		New:          newVal,
		Method:       g.Name(),
		AffectedRows: affected,
	}}, true
}

// Composite tries a sequence of anonymizers in order, using the first that
// can still act on the tuple — e.g. recode up the hierarchy while possible,
// then fall back to suppression.
type Composite []Anonymizer

// Name implements Anonymizer.
func (c Composite) Name() string {
	name := "composite("
	for i, a := range c {
		if i > 0 {
			name += ","
		}
		name += a.Name()
	}
	return name + ")"
}

// Step implements Anonymizer.
func (c Composite) Step(ctx *Context, row int) ([]Decision, bool) {
	for _, a := range c {
		if ds, ok := a.Step(ctx, row); ok {
			return ds, true
		}
	}
	return nil, false
}
