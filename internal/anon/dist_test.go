package anon

// Integration of the anonymization cycle with distributed shard scoring:
// swapping a measure for its dist.Assessor wrapper — incremental re-scoring
// fanned out to a worker over the wire — must change nothing in the Result.
// Same dataset, same decision log with bitwise-equal risk values, same
// counters: the supervisor's determinism contract observed from the layer
// that actually consumes it.

import (
	"net/http/httptest"
	"strings"
	"testing"

	"vadasa/internal/dist"
	"vadasa/internal/risk"
	"vadasa/internal/synth"
)

func TestCycleWithDistributedAssessorBitIdentical(t *testing.T) {
	srv := httptest.NewServer(dist.WorkerHandler(dist.WorkerOptions{}))
	defer srv.Close()
	tr := dist.NewHTTPTransport(strings.TrimPrefix(srv.URL, "http://"), nil)
	sup := dist.NewSupervisor([]dist.Transport{tr}, dist.Options{ShardSize: 64})
	sup.Start()
	defer sup.Close()

	for name, cfg := range incrementalConfigs() {
		t.Run(name, func(t *testing.T) {
			inner, ok := cfg.Assessor.(risk.IncrementalAssessor)
			if !ok {
				t.Fatalf("config %s assessor is not incremental", name)
			}
			da, err := dist.NewAssessor(inner, sup)
			if err != nil {
				t.Fatal(err)
			}
			var d = synth.Generate(synth.Config{Tuples: 500, QIs: 4, Dist: synth.DistU, Seed: 37})
			if name == "recode-then-suppress" {
				d = synth.Figure5()
			}
			control, err := Run(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			distributed := cfg
			distributed.Assessor = da
			got, err := Run(d, distributed)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, control, got)
			for i := range control.Decisions {
				if control.Decisions[i].Risk != got.Decisions[i].Risk {
					t.Fatalf("decision %d risk: %v vs %v (bitwise mismatch)",
						i, control.Decisions[i].Risk, got.Decisions[i].Risk)
				}
			}
		})
	}
	st := sup.Snapshot()
	if st.Epoch == 0 {
		t.Fatal("no leases granted; the cycle never reached the worker")
	}
	if st.LocalFallbacks != 0 {
		t.Fatalf("%d local fallbacks with a healthy worker", st.LocalFallbacks)
	}
}
