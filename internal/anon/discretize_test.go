package anon

import (
	"strings"
	"testing"

	"vadasa/internal/hierarchy"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
)

func numericDataset() *mdb.Dataset {
	d := mdb.NewDataset("num", []mdb.Attribute{
		{Name: "Area", Category: mdb.QuasiIdentifier},
		{Name: "Revenue", Category: mdb.QuasiIdentifier},
	})
	rows := [][2]string{
		{"North", "12.5"}, {"North", "14"}, {"North", "55"},
		{"South", "29.9"}, {"South", "88"},
	}
	for _, r := range rows {
		d.Append(&mdb.Row{Values: []mdb.Value{mdb.Const(r[0]), mdb.Const(r[1])}, Weight: 1})
	}
	return d
}

func TestDiscretize(t *testing.T) {
	d := numericDataset()
	kb := hierarchy.New()
	cuts := []float64{0, 30, 60, 90}
	if err := Discretize(d, "Revenue", cuts, kb); err != nil {
		t.Fatalf("Discretize: %v", err)
	}
	rev := d.AttrIndex("Revenue")
	want := []string{"[0..30)", "[0..30)", "[30..60)", "[0..30)", "[60..90)"}
	for i, w := range want {
		if got := d.Rows[i].Values[rev].Constant(); got != w {
			t.Errorf("row %d: %q, want %q", i+1, got, w)
		}
	}
	// The ladder is installed: intervals roll up.
	if got, ok := kb.RollUp("Revenue", "[0..30)"); !ok || got != "[0..60)" {
		t.Fatalf("ladder missing: RollUp = %q, %v", got, ok)
	}
}

func TestDiscretizeErrors(t *testing.T) {
	d := numericDataset()
	if err := Discretize(d, "Nope", []float64{0, 1}, nil); err == nil {
		t.Error("unknown attribute accepted")
	}
	if err := Discretize(d, "Area", []float64{0, 1}, nil); err == nil ||
		!strings.Contains(err.Error(), "not numeric") {
		t.Errorf("non-numeric attribute: %v", err)
	}
	if err := Discretize(d, "Revenue", []float64{0, 10}, nil); err == nil ||
		!strings.Contains(err.Error(), "outside") {
		t.Errorf("out-of-range value: %v", err)
	}
	bad := numericDataset()
	if err := Discretize(bad, "Revenue", []float64{10}, hierarchy.New()); err == nil {
		t.Error("degenerate cuts accepted")
	}
}

func TestDiscretizeSkipsNulls(t *testing.T) {
	d := numericDataset()
	rev := d.AttrIndex("Revenue")
	d.Rows[0].Values[rev] = d.Nulls.Fresh()
	if err := Discretize(d, "Revenue", []float64{0, 30, 60, 90}, nil); err != nil {
		t.Fatalf("Discretize with null: %v", err)
	}
	if !d.Rows[0].Values[rev].IsNull() {
		t.Error("null value disturbed")
	}
}

// End to end: discretize a numeric attribute, then run a recoding-first
// cycle — the risky tuple's interval must climb the ladder instead of being
// suppressed outright.
func TestDiscretizeThenRecode(t *testing.T) {
	d := numericDataset()
	kb := hierarchy.New()
	if err := Discretize(d, "Revenue", []float64{0, 30, 60, 90}, kb); err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, Config{
		Assessor:  risk.KAnonymity{K: 2},
		Threshold: 0.5,
		Anonymizer: Composite{
			GlobalRecoding{KB: kb, Choice: AttrMaxGain},
			LocalSuppression{Choice: AttrMaxGain},
		},
		Semantics: mdb.MaybeMatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	recoded := false
	for _, dec := range res.Decisions {
		if dec.Method == "global-recoding" && dec.Attr == "Revenue" {
			recoded = true
		}
	}
	if !recoded {
		t.Fatalf("no interval recoding happened; decisions: %v", res.Decisions)
	}
	if got := VerifyKAnonymity(res.Dataset, 2, mdb.MaybeMatch); len(got) != 0 {
		t.Fatalf("still violating after cycle: %v", got)
	}
}

func TestVerifyKAnonymity(t *testing.T) {
	d := numericDataset()
	violating := VerifyKAnonymity(d, 2, mdb.MaybeMatch)
	// Rows 3 (North/55) and 5 (South/88) are unique; 1,2 share nothing
	// with each other? Row1 North/12.5 vs Row2 North/14 differ on Revenue:
	// all five rows are unique.
	if len(violating) != 5 {
		t.Fatalf("violating = %v, want all 5", violating)
	}
	noQI := mdb.NewDataset("x", []mdb.Attribute{{Name: "A"}})
	noQI.Append(&mdb.Row{ID: 9, Values: []mdb.Value{mdb.Const("v")}})
	if got := VerifyKAnonymity(noQI, 2, mdb.MaybeMatch); len(got) != 1 || got[0] != 9 {
		t.Fatalf("no-QI dataset: %v", got)
	}
}
