package anon

import (
	"fmt"
	"sort"
	"strconv"

	"vadasa/internal/mdb"
)

// Microaggregate applies univariate microaggregation to a numeric attribute:
// values are sorted and partitioned into contiguous groups of at least k
// (the last group absorbs the remainder, so groups have size k..2k−1), and
// every value is replaced by its group mean. Group means repeat at least k
// times, so the attribute alone can no longer single out fewer than k
// tuples, while the column total — and hence the mean — is preserved
// exactly: the classic statistics-preserving transformation of the SDC
// toolboxes (sdcMicro's mdav in one dimension), complementing suppression
// and recoding as a third anonymization method.
//
// Labelled nulls are left untouched and excluded from the grouping.
func Microaggregate(d *mdb.Dataset, attr string, k int) error {
	if k < 2 {
		return fmt.Errorf("anon: microaggregation needs k >= 2, got %d", k)
	}
	idx := d.AttrIndex(attr)
	if idx < 0 {
		return fmt.Errorf("anon: dataset %q has no attribute %q", d.Name, attr)
	}
	type entry struct {
		row   int
		value float64
	}
	var entries []entry
	for row, r := range d.Rows {
		v := r.Values[idx]
		if v.IsNull() {
			continue
		}
		f, err := strconv.ParseFloat(v.Constant(), 64)
		if err != nil {
			return fmt.Errorf("anon: row %d: attribute %q value %s is not numeric",
				r.ID, attr, v.Redacted())
		}
		entries = append(entries, entry{row: row, value: f})
	}
	if len(entries) == 0 {
		return nil
	}
	if len(entries) < k {
		return fmt.Errorf("anon: attribute %q has %d numeric values, fewer than k=%d",
			attr, len(entries), k)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].value != entries[j].value {
			return entries[i].value < entries[j].value
		}
		return entries[i].row < entries[j].row
	})

	for start := 0; start < len(entries); start += k {
		end := start + k
		if len(entries)-end < k {
			end = len(entries) // last group absorbs the remainder
		}
		sum := 0.0
		for _, e := range entries[start:end] {
			sum += e.value
		}
		mean := sum / float64(end-start)
		label := mdb.Const(strconv.FormatFloat(mean, 'g', -1, 64))
		for _, e := range entries[start:end] {
			d.Rows[e.row].Values[idx] = label
		}
		if end == len(entries) {
			break
		}
	}
	return nil
}
