package anon

import (
	"fmt"
	"strconv"

	"vadasa/internal/hierarchy"
	"vadasa/internal/mdb"
)

// Discretize replaces the numeric constants of an attribute with level-0
// interval labels over the given cut points, and installs the matching
// interval ladder into the knowledge base so global recoding can coarsen the
// attribute further. It is the bridge that brings continuous attributes —
// revenues, growth rates — into the categorical machinery of Section 4.3,
// the way ARX and sdcMicro build value generalization hierarchies.
//
// Labelled nulls are left untouched; non-numeric or out-of-range constants
// are an error, since silently passing them through would leave selective
// raw values in the data.
func Discretize(d *mdb.Dataset, attr string, cuts []float64, kb *hierarchy.Hierarchy) error {
	idx := d.AttrIndex(attr)
	if idx < 0 {
		return fmt.Errorf("anon: dataset %q has no attribute %q", d.Name, attr)
	}
	if kb != nil {
		if err := kb.BuildIntervalLadder(attr, cuts); err != nil {
			return err
		}
	}
	for _, r := range d.Rows {
		v := r.Values[idx]
		if v.IsNull() {
			continue
		}
		num, err := strconv.ParseFloat(v.Constant(), 64)
		if err != nil {
			return fmt.Errorf("anon: row %d: attribute %q value %s is not numeric",
				r.ID, attr, v.Redacted())
		}
		label, ok := hierarchy.MapToInterval(num, cuts)
		if !ok {
			return fmt.Errorf("anon: row %d: attribute %q value %s outside [%g, %g]",
				r.ID, attr, v.Redacted(), cuts[0], cuts[len(cuts)-1])
		}
		r.Values[idx] = mdb.Const(label)
	}
	return nil
}

// VerifyKAnonymity checks the cycle's advertised post-condition directly:
// it returns the IDs of tuples whose maybe-match frequency over the
// quasi-identifiers is below k. An empty result certifies the dataset
// k-anonymous under the given null semantics — the independent check a data
// officer runs before release.
func VerifyKAnonymity(d *mdb.Dataset, k int, sem mdb.Semantics) []int {
	qi := d.QuasiIdentifiers()
	if len(qi) == 0 {
		ids := make([]int, len(d.Rows))
		for i, r := range d.Rows {
			ids[i] = r.ID
		}
		return ids
	}
	var violating []int
	//hotgroup:ok one-shot release-time verification sweep, outside the cycle
	for i, f := range mdb.Frequencies(d, qi, sem) {
		if f < k {
			violating = append(violating, d.Rows[i].ID)
		}
	}
	return violating
}
