package anon

// LocalSuppression is Algorithm 7: a quasi-identifier value of the risky
// tuple is replaced by a fresh labelled null. Under the maybe-match
// semantics of Section 4.3 the null matches any value, so the tuple joins
// every compatible aggregation group and its frequency rises.
type LocalSuppression struct {
	Choice AttrChoice
}

// Name implements Anonymizer.
func (LocalSuppression) Name() string { return "local-suppression" }

// Step implements Anonymizer.
func (s LocalSuppression) Step(ctx *Context, row int) ([]Decision, bool) {
	d := ctx.Dataset
	r := d.Rows[row]
	var candidates []int
	for _, a := range ctx.QI {
		if !r.Values[a].IsNull() {
			candidates = append(candidates, a)
		}
	}
	if len(candidates) == 0 {
		return nil, false
	}
	attr := chooseAttr(ctx, row, candidates, s.Choice)[0]
	old := r.Values[attr]
	null := d.Nulls.Fresh()
	r.Values[attr] = null
	return []Decision{{
		RowID:        r.ID,
		Attr:         d.Attrs[attr].Name,
		Old:          old,
		New:          null,
		Method:       s.Name(),
		AffectedRows: 1,
	}}, true
}
