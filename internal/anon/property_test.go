package anon

import (
	"math/rand"
	"testing"

	"vadasa/internal/hierarchy"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
	"vadasa/internal/synth"
)

// randomConfig builds a cycle configuration sweeping the heuristic space.
func randomConfig(rng *rand.Rand, k int) Config {
	choices := []AttrChoice{AttrMostSelective, AttrLeastSelective, AttrSchemaOrder, AttrMaxGain}
	orders := []TupleOrder{OrderLessSignificantFirst, OrderByRiskDesc, OrderByID}
	fracs := []float64{0, 0.1, 0.5, 1}
	var method Anonymizer = LocalSuppression{Choice: choices[rng.Intn(len(choices))]}
	if rng.Intn(3) == 0 {
		method = Composite{
			GlobalRecoding{KB: hierarchy.ItalianGeography(), Choice: choices[rng.Intn(len(choices))]},
			method,
		}
	}
	return Config{
		Assessor:      risk.KAnonymity{K: k},
		Threshold:     0.5,
		Anonymizer:    method,
		Semantics:     mdb.MaybeMatch,
		Order:         orders[rng.Intn(len(orders))],
		BatchFraction: fracs[rng.Intn(len(fracs))],
	}
}

// Post-condition: whatever heuristics are chosen, a converged k-anonymity
// cycle leaves every tuple with maybe-match frequency >= k, or reports it as
// residual. Suppression-only runs must also match NullsInjected against the
// decision log.
func TestCyclePostConditionAcrossHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 12; trial++ {
		k := 2 + rng.Intn(3)
		d := synth.Generate(synth.Config{
			Tuples: 400 + rng.Intn(400), QIs: 3 + rng.Intn(2),
			Dist: synth.Dist(rng.Intn(3)), Seed: int64(trial),
		})
		cfg := randomConfig(rng, k)
		res, err := Run(d, cfg)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg, err)
		}
		residual := make(map[int]bool, len(res.Residual))
		for _, id := range res.Residual {
			residual[id] = true
		}
		freqs := mdb.Frequencies(res.Dataset, res.Dataset.QuasiIdentifiers(), mdb.MaybeMatch)
		for i, f := range freqs {
			if f < k && !residual[res.Dataset.Rows[i].ID] {
				t.Fatalf("trial %d: row %d freq %d < %d and not residual (order %v, method %s)",
					trial, i, f, k, cfg.Order, cfg.Anonymizer.Name())
			}
		}
		// Suppression decisions must account for every injected null.
		suppressions := 0
		for _, dec := range res.Decisions {
			if dec.Method == "local-suppression" {
				suppressions++
			}
		}
		if suppressions != res.NullsInjected {
			t.Fatalf("trial %d: %d suppression decisions, %d nulls injected",
				trial, suppressions, res.NullsInjected)
		}
		// The input dataset is never touched.
		if d.NullCount() != 0 {
			t.Fatalf("trial %d: input dataset mutated", trial)
		}
	}
}

// Risk scores never leave [0,1] for any shipped measure on random datasets,
// with and without nulls.
func TestRiskRangeAcrossMeasures(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		d := synth.Generate(synth.Config{
			Tuples: 300, QIs: 4, Dist: synth.Dist(rng.Intn(3)), Seed: int64(100 + trial),
		})
		// Inject some nulls.
		qi := d.QuasiIdentifiers()
		for i := 0; i < trial*3; i++ {
			d.Rows[rng.Intn(len(d.Rows))].Values[qi[rng.Intn(len(qi))]] = d.Nulls.Fresh()
		}
		measures := []risk.Assessor{
			risk.ReIdentification{},
			risk.KAnonymity{K: 3},
			risk.IndividualRisk{Estimator: risk.Ratio},
			risk.IndividualRisk{Estimator: risk.PosteriorSeries},
			risk.IndividualRisk{Estimator: risk.MonteCarlo, Samples: 20, Seed: 1},
			risk.SUDA{Threshold: 3},
		}
		for _, m := range measures {
			for _, sem := range []mdb.Semantics{mdb.MaybeMatch, mdb.StandardNulls} {
				rs, err := m.Assess(d, sem)
				if err != nil {
					t.Fatalf("trial %d %s/%v: %v", trial, m.Name(), sem, err)
				}
				for i, r := range rs {
					if r < 0 || r > 1 {
						t.Fatalf("trial %d %s/%v row %d: risk %g outside [0,1]",
							trial, m.Name(), sem, i, r)
					}
				}
			}
		}
	}
}

// Suppressing a value never increases any tuple's re-identification risk
// (the monotonicity the cycle depends on).
func TestSuppressionNeverRaisesReIdentRisk(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		d := synth.Generate(synth.Config{
			Tuples: 200, QIs: 4, Dist: synth.DistV, Seed: int64(trial),
		})
		before, err := risk.ReIdentification{}.Assess(d, mdb.MaybeMatch)
		if err != nil {
			t.Fatal(err)
		}
		qi := d.QuasiIdentifiers()
		row := rng.Intn(len(d.Rows))
		d.Rows[row].Values[qi[rng.Intn(len(qi))]] = d.Nulls.Fresh()
		after, err := risk.ReIdentification{}.Assess(d, mdb.MaybeMatch)
		if err != nil {
			t.Fatal(err)
		}
		for i := range before {
			if after[i] > before[i]+1e-12 {
				t.Fatalf("trial %d: row %d risk rose %g -> %g", trial, i, before[i], after[i])
			}
		}
	}
}
