package anon

import (
	"context"
	"fmt"
	"sort"
	"time"

	"vadasa/internal/mdb"
	"vadasa/internal/risk"
)

// TupleOrder selects which risky tuples are anonymized first (the first
// runtime question of Section 4.4).
type TupleOrder int

// Tuple-ordering heuristics.
const (
	// OrderLessSignificantFirst is the paper's default routing strategy:
	// tuples with lower sampling weight carry less statistical
	// significance and are anonymized first.
	OrderLessSignificantFirst TupleOrder = iota
	// OrderByRiskDesc anonymizes the riskiest tuples first.
	OrderByRiskDesc
	// OrderByID processes tuples in dataset order (no routing strategy).
	OrderByID
)

// String implements fmt.Stringer.
func (o TupleOrder) String() string {
	switch o {
	case OrderLessSignificantFirst:
		return "less-significant-first"
	case OrderByRiskDesc:
		return "most-risky-first"
	case OrderByID:
		return "dataset-order"
	default:
		return fmt.Sprintf("TupleOrder(%d)", int(o))
	}
}

// Config parameterizes the anonymization cycle.
type Config struct {
	// Assessor estimates per-tuple disclosure risk (plug-in #risk).
	Assessor risk.Assessor
	// Threshold is T of Algorithm 2: tuples with risk > T are anonymized.
	Threshold float64
	// Anonymizer applies the per-tuple steps (plug-in #anonymize).
	Anonymizer Anonymizer
	// Semantics selects the labelled-null comparison semantics; the
	// maybe-match default is what makes suppression effective.
	Semantics mdb.Semantics
	// Order is the risky-tuple processing order.
	Order TupleOrder
	// MaxIterations caps the cycle (default 10000).
	MaxIterations int
	// BatchFraction bounds how many of the currently risky tuples are
	// anonymized before risk is re-evaluated, as a fraction of the risky
	// set (default 0.25, minimum batch 32). Smaller batches approximate
	// the paper's incremental monotonic-aggregation semantics more
	// closely: a suppression can rescue similar risky tuples, so fewer
	// values are removed overall — at the price of more risk evaluations.
	// Set to 1 to anonymize every risky tuple each iteration.
	BatchFraction float64
}

// Result is the outcome of an anonymization cycle.
type Result struct {
	// Dataset is the anonymized copy; the input dataset is not modified.
	Dataset *mdb.Dataset
	// Decisions is the full, ordered explanation log.
	Decisions []Decision
	// Iterations is the number of risk-evaluate/anonymize rounds run.
	Iterations int
	// InitialRisky and EverRisky count the tuples over threshold at the
	// start and at any point of the cycle.
	InitialRisky, EverRisky int
	// Residual lists the row IDs still over threshold when the cycle
	// stopped because no anonymization step could help them further.
	Residual []int
	// NullsInjected counts the labelled nulls added by the cycle —
	// the metric of Figures 7a, 7c and 7d.
	NullsInjected int
	// InfoLoss is the information-loss estimate of Section 5.1: injected
	// nulls over the maximum number of quasi-identifier values of risky
	// tuples that could theoretically be removed.
	InfoLoss float64
	// RiskEvalTime and AnonTime split the elapsed time between the risk
	// estimation component and the anonymization steps (Figure 7e's
	// dotted vs solid lines).
	RiskEvalTime, AnonTime time.Duration
}

// Run executes the anonymization cycle of Algorithm 2 on a copy of d:
// iteratively estimate the disclosure risk of every tuple and apply one
// minimal anonymization step to each tuple over threshold, until every tuple
// passes (Tuple_A) or no step can improve the stragglers.
func Run(d *mdb.Dataset, cfg Config) (*Result, error) {
	return RunContext(context.Background(), d, cfg)
}

// RunContext is Run honouring ctx: the cycle polls the context at every
// iteration boundary and between per-tuple anonymization steps, and risk
// assessment is dispatched through risk.AssessContext so cancellable
// measures stop mid-evaluation too. The returned error wraps ctx.Err() for
// errors.Is against context.Canceled / context.DeadlineExceeded.
func RunContext(ctx context.Context, d *mdb.Dataset, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Assessor == nil {
		return nil, fmt.Errorf("anon: Config.Assessor is required")
	}
	if cfg.Anonymizer == nil {
		return nil, fmt.Errorf("anon: Config.Anonymizer is required")
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("anon: threshold %g outside [0,1]", cfg.Threshold)
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 10_000
	}

	work := d.Clone()
	qi := work.QuasiIdentifiers()
	if len(qi) == 0 {
		return nil, fmt.Errorf("anon: dataset %q has no quasi-identifiers", d.Name)
	}
	res := &Result{Dataset: work}
	nullsBefore := work.NullCount()
	exhausted := make(map[int]bool)
	everRisky := make(map[int]bool)

	var risks []float64
	for iter := 0; ; iter++ {
		if iter >= maxIter {
			return nil, fmt.Errorf("anon: cycle did not converge within %d iterations", maxIter)
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("anon: cycle cancelled at iteration %d: %w", iter, err)
		}
		t0 := time.Now()
		var err error
		risks, err = risk.AssessContext(ctx, cfg.Assessor, work, cfg.Semantics)
		res.RiskEvalTime += time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("anon: risk assessment: %w", err)
		}

		var risky []int
		for row, r := range risks {
			if r > cfg.Threshold {
				if !everRisky[row] {
					everRisky[row] = true
					if iter == 0 {
						res.InitialRisky++
					}
				}
				if !exhausted[row] {
					risky = append(risky, row)
				}
			}
		}
		if len(risky) == 0 {
			res.Iterations = iter
			break
		}
		orderRisky(work, risks, risky, cfg.Order)
		frac := cfg.BatchFraction
		if frac <= 0 {
			frac = 0.25
		}
		if frac < 1 {
			limit := int(frac * float64(len(risky)))
			if limit < 32 {
				limit = 32
			}
			if limit < len(risky) {
				risky = risky[:limit]
			}
		}

		t0 = time.Now()
		actx := NewContext(work, qi)
		for _, row := range risky {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("anon: cycle cancelled at iteration %d: %w", iter, err)
			}
			decisions, ok := cfg.Anonymizer.Step(actx, row)
			if !ok {
				// Nothing more can be done for this tuple; it is
				// excluded from future batches and ends up in the
				// residual report. Other risky tuples still get their
				// turn in later iterations.
				exhausted[row] = true
				continue
			}
			for i := range decisions {
				decisions[i].Iteration = iter + 1
				decisions[i].Risk = risks[row]
			}
			res.Decisions = append(res.Decisions, decisions...)
		}
		res.AnonTime += time.Since(t0)
	}

	// Final pass for the residual report (risks holds the last assessment;
	// re-assess only if anonymization happened after it).
	t0 := time.Now()
	final, err := risk.AssessContext(ctx, cfg.Assessor, work, cfg.Semantics)
	res.RiskEvalTime += time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("anon: final risk assessment: %w", err)
	}
	for row, r := range final {
		if r > cfg.Threshold {
			res.Residual = append(res.Residual, work.Rows[row].ID)
		}
	}

	res.EverRisky = len(everRisky)
	res.NullsInjected = work.NullCount() - nullsBefore
	if denom := res.EverRisky * len(qi); denom > 0 {
		res.InfoLoss = float64(res.NullsInjected) / float64(denom)
	}
	return res, nil
}

func orderRisky(d *mdb.Dataset, risks []float64, risky []int, order TupleOrder) {
	switch order {
	case OrderLessSignificantFirst:
		sort.SliceStable(risky, func(i, j int) bool {
			a, b := d.Rows[risky[i]], d.Rows[risky[j]]
			if a.Weight != b.Weight {
				return a.Weight < b.Weight
			}
			return a.ID < b.ID
		})
	case OrderByRiskDesc:
		sort.SliceStable(risky, func(i, j int) bool {
			if risks[risky[i]] != risks[risky[j]] {
				return risks[risky[i]] > risks[risky[j]]
			}
			return d.Rows[risky[i]].ID < d.Rows[risky[j]].ID
		})
	case OrderByID:
		sort.SliceStable(risky, func(i, j int) bool {
			return d.Rows[risky[i]].ID < d.Rows[risky[j]].ID
		})
	}
}

// ExplainTuple returns the decisions that touched one tuple, in order — the
// per-respondent view an auditor asks for ("why was company X's sector
// removed?").
func (r *Result) ExplainTuple(rowID int) []Decision {
	var out []Decision
	for _, d := range r.Decisions {
		if d.RowID == rowID {
			out = append(out, d)
		}
	}
	return out
}

// NullsByAttribute breaks the injected nulls down per attribute — which
// columns paid for confidentiality.
func (r *Result) NullsByAttribute() map[string]int {
	out := make(map[string]int)
	for _, d := range r.Decisions {
		if d.Method == "local-suppression" {
			out[d.Attr]++
		}
	}
	return out
}
