package anon

import (
	"context"
	"fmt"
	"sort"
	"time"

	"vadasa/internal/govern"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
)

// decisionBytes estimates the heap footprint of a decision batch: the
// struct plus its string payloads.
func decisionBytes(ds []Decision) int64 {
	n := int64(0)
	for _, d := range ds {
		n += 112 + int64(len(d.Attr)+len(d.Method))
	}
	return n
}

// TupleOrder selects which risky tuples are anonymized first (the first
// runtime question of Section 4.4).
type TupleOrder int

// Tuple-ordering heuristics.
const (
	// OrderLessSignificantFirst is the paper's default routing strategy:
	// tuples with lower sampling weight carry less statistical
	// significance and are anonymized first.
	OrderLessSignificantFirst TupleOrder = iota
	// OrderByRiskDesc anonymizes the riskiest tuples first.
	OrderByRiskDesc
	// OrderByID processes tuples in dataset order (no routing strategy).
	OrderByID
)

// String implements fmt.Stringer.
func (o TupleOrder) String() string {
	switch o {
	case OrderLessSignificantFirst:
		return "less-significant-first"
	case OrderByRiskDesc:
		return "most-risky-first"
	case OrderByID:
		return "dataset-order"
	default:
		return fmt.Sprintf("TupleOrder(%d)", int(o))
	}
}

// Config parameterizes the anonymization cycle.
type Config struct {
	// Assessor estimates per-tuple disclosure risk (plug-in #risk).
	Assessor risk.Assessor
	// Threshold is T of Algorithm 2: tuples with risk > T are anonymized.
	Threshold float64
	// Anonymizer applies the per-tuple steps (plug-in #anonymize).
	Anonymizer Anonymizer
	// Semantics selects the labelled-null comparison semantics; the
	// maybe-match default is what makes suppression effective.
	Semantics mdb.Semantics
	// Order is the risky-tuple processing order.
	Order TupleOrder
	// MaxIterations caps the cycle (default 10000).
	MaxIterations int
	// BatchFraction bounds how many of the currently risky tuples are
	// anonymized before risk is re-evaluated, as a fraction of the risky
	// set (default 0.25, minimum batch 32). Smaller batches approximate
	// the paper's incremental monotonic-aggregation semantics more
	// closely: a suppression can rescue similar risky tuples, so fewer
	// values are removed overall — at the price of more risk evaluations.
	// Set to 1 to anonymize every risky tuple each iteration.
	BatchFraction float64
	// Checkpoint, when set, receives one Checkpoint after every committed
	// iteration — the write-ahead hook a durable job manager journals
	// through. An error from the hook aborts the cycle: if progress cannot
	// be made durable, continuing would let a crash silently lose it.
	Checkpoint CheckpointFunc
	// FullAssess forces the reference full-assessment path even when the
	// assessor supports incremental re-scoring. The incremental path is
	// bit-identical by construction, so this is an escape hatch for
	// debugging and for measuring the speedup, not a correctness knob.
	FullAssess bool
	// DebugVerify runs the full reference assessment alongside every
	// incremental one and fails the cycle on any bitwise divergence. It
	// costs what FullAssess costs on top of the incremental path; meant
	// for tests and one-off validation runs.
	DebugVerify bool
}

// Checkpoint is the durable summary of one committed cycle iteration: enough
// state to replay the iteration onto a fresh clone of the input (the
// decisions, with their injected null ids) and to rebuild the loop's control
// state (which rows are exhausted, which were ever risky). Row references in
// Exhausted and NewRisky are indexes into Dataset.Rows — stable because the
// cycle never reorders rows; Decisions reference rows by their artificial ID.
type Checkpoint struct {
	// Iteration is the 0-based loop index this checkpoint commits.
	Iteration int
	// Decisions lists the anonymization steps applied this iteration.
	Decisions []Decision
	// Exhausted lists rows newly marked unanonymizable this iteration.
	Exhausted []int
	// NewRisky lists rows first observed over threshold this iteration.
	NewRisky []int
	// RiskEval and Anon split this iteration's elapsed time.
	RiskEval, Anon time.Duration
}

// CheckpointFunc commits one iteration to durable storage. It must return
// only after the checkpoint is persistent; a returned error aborts the cycle.
type CheckpointFunc func(cp Checkpoint) error

// Result is the outcome of an anonymization cycle.
type Result struct {
	// Dataset is the anonymized copy; the input dataset is not modified.
	Dataset *mdb.Dataset
	// Decisions is the full, ordered explanation log.
	Decisions []Decision
	// Iterations is the number of risk-evaluate/anonymize rounds run.
	Iterations int
	// InitialRisky and EverRisky count the tuples over threshold at the
	// start and at any point of the cycle.
	InitialRisky, EverRisky int
	// Residual lists the row IDs still over threshold when the cycle
	// stopped because no anonymization step could help them further.
	Residual []int
	// NullsInjected counts the labelled nulls added by the cycle —
	// the metric of Figures 7a, 7c and 7d.
	NullsInjected int
	// InfoLoss is the information-loss estimate of Section 5.1: injected
	// nulls over the maximum number of quasi-identifier values of risky
	// tuples that could theoretically be removed.
	InfoLoss float64
	// RiskEvalTime and AnonTime split the elapsed time between the risk
	// estimation component and the anonymization steps (Figure 7e's
	// dotted vs solid lines).
	RiskEvalTime, AnonTime time.Duration
}

// Run executes the anonymization cycle of Algorithm 2 on a copy of d:
// iteratively estimate the disclosure risk of every tuple and apply one
// minimal anonymization step to each tuple over threshold, until every tuple
// passes (Tuple_A) or no step can improve the stragglers.
func Run(d *mdb.Dataset, cfg Config) (*Result, error) {
	return RunContext(context.Background(), d, cfg)
}

// RunContext is Run honouring ctx: the cycle polls the context at every
// iteration boundary and between per-tuple anonymization steps, and risk
// assessment is dispatched through risk.AssessContext so cancellable
// measures stop mid-evaluation too. The returned error wraps ctx.Err() for
// errors.Is against context.Canceled / context.DeadlineExceeded.
func RunContext(ctx context.Context, d *mdb.Dataset, cfg Config) (*Result, error) {
	return ResumeContext(ctx, d, cfg, nil)
}

// ResumeContext continues an interrupted cycle from its journaled
// checkpoints: the recorded decisions are replayed onto a fresh clone of the
// input dataset (no assessor or anonymizer work — the outcomes are already
// known), the loop's control state is rebuilt, and the cycle proceeds from
// the first uncommitted iteration. Because the cycle is deterministic for a
// given configuration, a run killed mid-cycle and resumed this way produces
// a dataset and decision log identical to an uninterrupted run.
//
// An empty checkpoint slice makes ResumeContext identical to RunContext.
func ResumeContext(ctx context.Context, d *mdb.Dataset, cfg Config, checkpoints []Checkpoint) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Assessor == nil {
		return nil, fmt.Errorf("anon: Config.Assessor is required")
	}
	if cfg.Anonymizer == nil {
		return nil, fmt.Errorf("anon: Config.Anonymizer is required")
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("anon: threshold %g outside [0,1]", cfg.Threshold)
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 10_000
	}

	// When ctx carries a resource governor, the working clone and the
	// accumulated decision/checkpoint buffers are charged against the
	// memory budget; the whole footprint is refunded when the cycle
	// returns. A failed reservation surfaces as the governor's typed
	// error, which the job layer treats as back-pressure, not failure.
	gov := govern.From(ctx)
	var charged int64
	defer func() { gov.Release(govern.Memory, charged) }()
	charge := func(n int64, what string) error {
		if err := gov.Reserve(govern.Memory, n); err != nil {
			return fmt.Errorf("anon: %s: %w", what, err)
		}
		charged += n
		return nil
	}

	work := d.Clone()
	if err := charge(work.EstimatedBytes(), "cloning working dataset"); err != nil {
		return nil, err
	}
	qi := work.QuasiIdentifiers()
	if len(qi) == 0 {
		return nil, fmt.Errorf("anon: dataset %q has no quasi-identifiers", d.Name)
	}
	res := &Result{Dataset: work}
	nullsBefore := work.NullCount()
	exhausted := make(map[int]bool)
	everRisky := make(map[int]bool)

	// One ID → position map serves both checkpoint replay and the
	// incremental index maintenance; positions are stable because the
	// cycle never reorders rows.
	rowPos := make(map[int]int, len(work.Rows))
	for i, r := range work.Rows {
		rowPos[r.ID] = i
	}

	startIter := 0
	for _, cp := range checkpoints {
		if cp.Iteration != startIter {
			return nil, fmt.Errorf("anon: resume checkpoint out of order: got iteration %d, want %d", cp.Iteration, startIter)
		}
		if err := replayCheckpoint(work, cp, res, exhausted, everRisky, rowPos); err != nil {
			return nil, err
		}
		startIter++
	}
	if startIter >= maxIter {
		return nil, fmt.Errorf("anon: cycle did not converge within %d iterations", maxIter)
	}

	var incr *incrementalState
	if !cfg.FullAssess {
		if incr = newIncrementalState(work, cfg, rowPos, gov); incr != nil {
			defer incr.release()
		}
	}

	var risks []float64
	for iter := startIter; ; iter++ {
		if iter >= maxIter {
			return nil, fmt.Errorf("anon: cycle did not converge within %d iterations", maxIter)
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("anon: cycle cancelled at iteration %d: %w", iter, err)
		}
		t0 := time.Now()
		var err error
		if incr != nil {
			risks, err = incr.assess(ctx, work)
		} else {
			risks, err = risk.AssessContext(ctx, cfg.Assessor, work, cfg.Semantics)
		}
		evalTime := time.Since(t0)
		res.RiskEvalTime += evalTime
		if err != nil {
			return nil, fmt.Errorf("anon: risk assessment: %w", err)
		}
		if incr != nil && cfg.DebugVerify {
			full, ferr := risk.AssessContext(ctx, cfg.Assessor, work, cfg.Semantics)
			if ferr != nil {
				return nil, fmt.Errorf("anon: debug-verify reference assessment: %w", ferr)
			}
			if row := firstDiff(risks, full); row >= 0 {
				return nil, fmt.Errorf("anon: debug-verify: iteration %d: incremental risk diverges from full assessment at row %d: %v vs %v",
					iter, row, risks[row], full[row])
			}
		}

		var risky, newRisky []int
		for row, r := range risks {
			if r > cfg.Threshold {
				if !everRisky[row] {
					everRisky[row] = true
					newRisky = append(newRisky, row)
					if iter == 0 {
						res.InitialRisky++
					}
				}
				if !exhausted[row] {
					risky = append(risky, row)
				}
			}
		}
		if len(risky) == 0 {
			res.Iterations = iter
			break
		}
		orderRisky(work, risks, risky, cfg.Order)
		frac := cfg.BatchFraction
		if frac <= 0 {
			frac = 0.25
		}
		if frac < 1 {
			limit := int(frac * float64(len(risky)))
			if limit < 32 {
				limit = 32
			}
			if limit < len(risky) {
				risky = risky[:limit]
			}
		}

		t0 = time.Now()
		actx := NewContext(work, qi)
		var iterDecisions []Decision
		var iterExhausted []int
		for _, row := range risky {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("anon: cycle cancelled at iteration %d: %w", iter, err)
			}
			decisions, ok := cfg.Anonymizer.Step(actx, row)
			if !ok {
				// Nothing more can be done for this tuple; it is
				// excluded from future batches and ends up in the
				// residual report. Other risky tuples still get their
				// turn in later iterations.
				exhausted[row] = true
				iterExhausted = append(iterExhausted, row)
				continue
			}
			for i := range decisions {
				decisions[i].Iteration = iter + 1
				decisions[i].Risk = risks[row]
			}
			iterDecisions = append(iterDecisions, decisions...)
		}
		if err := charge(decisionBytes(iterDecisions)+int64(len(iterExhausted)+len(newRisky))*8,
			fmt.Sprintf("iteration %d checkpoint buffers", iter)); err != nil {
			return nil, err
		}
		res.Decisions = append(res.Decisions, iterDecisions...)
		if incr != nil {
			if err := incr.observe(work, iterDecisions); err != nil {
				return nil, err
			}
		}
		anonTime := time.Since(t0)
		res.AnonTime += anonTime

		if cfg.Checkpoint != nil {
			cp := Checkpoint{
				Iteration: iter,
				Decisions: iterDecisions,
				Exhausted: iterExhausted,
				NewRisky:  newRisky,
				RiskEval:  evalTime,
				Anon:      anonTime,
			}
			if err := cfg.Checkpoint(cp); err != nil {
				return nil, fmt.Errorf("anon: committing iteration %d checkpoint: %w", iter, err)
			}
		}
	}

	// Residual report. The loop only exits right after an assessment that
	// found no actionable risky tuples, and nothing mutates the dataset
	// between that assessment and here — so the last risk vector is still
	// current and a final re-assessment would only repeat it (on a clean
	// run it would double the total risk-evaluation cost).
	for row, r := range risks {
		if r > cfg.Threshold {
			res.Residual = append(res.Residual, work.Rows[row].ID)
		}
	}

	res.EverRisky = len(everRisky)
	res.NullsInjected = work.NullCount() - nullsBefore
	if denom := res.EverRisky * len(qi); denom > 0 {
		res.InfoLoss = float64(res.NullsInjected) / float64(denom)
	}
	return res, nil
}

// replayCheckpoint applies one journaled iteration to the working dataset:
// decisions are re-applied verbatim (labelled-null ids included, with the
// allocator advanced past them so later fresh nulls cannot collide) and the
// control-state deltas are folded in. rowPos maps row IDs to positions —
// built once per resume, so a replay costs O(decisions), not
// O(rows × decisions).
func replayCheckpoint(work *mdb.Dataset, cp Checkpoint, res *Result, exhausted, everRisky map[int]bool, rowPos map[int]int) error {
	for _, dec := range cp.Decisions {
		rowIdx, ok := rowPos[dec.RowID]
		if !ok {
			return fmt.Errorf("anon: replay iteration %d: no tuple with id %d", cp.Iteration, dec.RowID)
		}
		attr := work.AttrIndex(dec.Attr)
		if attr < 0 {
			return fmt.Errorf("anon: replay iteration %d: no attribute %q", cp.Iteration, dec.Attr)
		}
		switch dec.Method {
		case "local-suppression":
			if !dec.New.IsNull() {
				return fmt.Errorf("anon: replay iteration %d: suppression of tuple %d recorded a non-null value", cp.Iteration, dec.RowID)
			}
			work.Rows[rowIdx].Values[attr] = dec.New
			work.Nulls.Observe(dec.New.NullID())
		case "global-recoding":
			if dec.AffectedRows <= 1 {
				// Either per-tuple mode or a global roll-up whose value
				// only the triggering row carried — same single write.
				work.Rows[rowIdx].Values[attr] = dec.New
			} else {
				n := 0
				for _, r := range work.Rows {
					if r.Values[attr] == dec.Old {
						r.Values[attr] = dec.New
						n++
					}
				}
				if n != dec.AffectedRows {
					return fmt.Errorf("anon: replay iteration %d: recoding %s %s touched %d rows, journal says %d — journal does not match this dataset",
						cp.Iteration, dec.Attr, dec.Old.Redacted(), n, dec.AffectedRows)
				}
			}
		default:
			return fmt.Errorf("anon: replay iteration %d: unknown method %q", cp.Iteration, dec.Method)
		}
	}
	res.Decisions = append(res.Decisions, cp.Decisions...)
	for _, row := range cp.Exhausted {
		if row < 0 || row >= len(work.Rows) {
			return fmt.Errorf("anon: replay iteration %d: exhausted row %d out of range", cp.Iteration, row)
		}
		exhausted[row] = true
	}
	for _, row := range cp.NewRisky {
		if row < 0 || row >= len(work.Rows) {
			return fmt.Errorf("anon: replay iteration %d: risky row %d out of range", cp.Iteration, row)
		}
		everRisky[row] = true
	}
	if cp.Iteration == 0 {
		res.InitialRisky = len(cp.NewRisky)
	}
	res.RiskEvalTime += cp.RiskEval
	res.AnonTime += cp.Anon
	return nil
}

func orderRisky(d *mdb.Dataset, risks []float64, risky []int, order TupleOrder) {
	switch order {
	case OrderLessSignificantFirst:
		sort.SliceStable(risky, func(i, j int) bool {
			a, b := d.Rows[risky[i]], d.Rows[risky[j]]
			if a.Weight != b.Weight {
				return a.Weight < b.Weight
			}
			return a.ID < b.ID
		})
	case OrderByRiskDesc:
		sort.SliceStable(risky, func(i, j int) bool {
			if risks[risky[i]] != risks[risky[j]] {
				return risks[risky[i]] > risks[risky[j]]
			}
			return d.Rows[risky[i]].ID < d.Rows[risky[j]].ID
		})
	case OrderByID:
		sort.SliceStable(risky, func(i, j int) bool {
			return d.Rows[risky[i]].ID < d.Rows[risky[j]].ID
		})
	}
}

// ExplainTuple returns the decisions that touched one tuple, in order — the
// per-respondent view an auditor asks for ("why was company X's sector
// removed?").
func (r *Result) ExplainTuple(rowID int) []Decision {
	var out []Decision
	for _, d := range r.Decisions {
		if d.RowID == rowID {
			out = append(out, d)
		}
	}
	return out
}

// NullsByAttribute breaks the injected nulls down per attribute — which
// columns paid for confidentiality.
func (r *Result) NullsByAttribute() map[string]int {
	out := make(map[string]int)
	for _, d := range r.Decisions {
		if d.Method == "local-suppression" {
			out[d.Attr]++
		}
	}
	return out
}
