// Package anon implements the smart anonymization of Section 4.3 and the
// anonymization cycle of Algorithm 2: local suppression with labelled nulls,
// global recoding over domain hierarchies, the greedy runtime heuristics of
// Section 4.4, and the statistics-preservation metrics of Section 5.1.
package anon

import (
	"fmt"

	"vadasa/internal/mdb"
)

// Decision records one anonymization step: which tuple and attribute were
// touched, what replaced what, and why. The decision log is what makes the
// cycle fully explainable — every suppression is motivated by the specific
// risk binding that triggered it.
type Decision struct {
	RowID     int       // artificial identifier I of the triggering tuple
	Attr      string    // quasi-identifier that was anonymized
	Old, New  mdb.Value // value before and after
	Method    string    // "local-suppression" or "global-recoding"
	Risk      float64   // disclosure risk that triggered the step
	Iteration int       // anonymization-cycle iteration
	// AffectedRows counts the tuples changed by the step: 1 for local
	// suppression, possibly many for global recoding.
	AffectedRows int
}

// String implements fmt.Stringer. The old and new values are rendered as
// digests: decision logs and explain output are operational surfaces, and
// the exact cell values live (waived, access-controlled) in the journal.
// Consumers needing the raw values read the Old/New fields directly.
func (d Decision) String() string {
	return fmt.Sprintf("iter %d: %s on tuple %d: %s %s -> %s (risk %.4g, %d rows)",
		d.Iteration, d.Method, d.RowID, d.Attr, d.Old.Redacted(), d.New.Redacted(), d.Risk, d.AffectedRows)
}

// Context carries the state an anonymization step works in: the dataset
// being anonymized, its quasi-identifier indexes, and a lazily built
// selectivity index. The cycle creates a fresh Context per iteration, so the
// selectivity snapshot is at most one iteration stale — greedy tie-breaking
// quality, at a fraction of the cost of per-step scans.
type Context struct {
	Dataset *mdb.Dataset
	QI      []int

	marg        *marginalIndex
	freqWithout map[int][]int
}

// NewContext returns a step context for the dataset.
func NewContext(d *mdb.Dataset, qi []int) *Context {
	return &Context{Dataset: d, QI: qi}
}

// FreqWithout returns, for every row, the maybe-match frequency the row
// would have if the given quasi-identifier were ignored — the group size the
// row lands in after suppressing that attribute. One grouping pass per
// attribute serves every risky tuple of the iteration, which is what makes
// the exact-gain greedy affordable (the “most risky first” routing strategy
// of Section 4.4 relies on a program computing the resulting risk).
func (c *Context) FreqWithout(attr int) []int {
	if c.freqWithout == nil {
		c.freqWithout = make(map[int][]int, len(c.QI))
	}
	if fs, ok := c.freqWithout[attr]; ok {
		return fs
	}
	rest := make([]int, 0, len(c.QI)-1)
	for _, a := range c.QI {
		if a != attr {
			rest = append(rest, a)
		}
	}
	//hotgroup:ok memoized per attribute for one batch; not the per-iteration assessment
	fs := mdb.Frequencies(c.Dataset, rest, mdb.MaybeMatch)
	c.freqWithout[attr] = fs
	return fs
}

// Marginal returns how many rows carry a value compatible with v at the
// attribute under maybe-match — the selectivity measure behind
// AttrMostSelective. The underlying index is built on first use.
func (c *Context) Marginal(attr int, v mdb.Value) int {
	if c.marg == nil {
		c.marg = buildMarginalIndex(c.Dataset, c.QI)
	}
	return c.marg.marginal(attr, v)
}

// Anonymizer applies one minimal anonymization step to a risky tuple
// (the polymorphic #anonymize of Algorithm 2).
type Anonymizer interface {
	Name() string
	// Step mutates ctx.Dataset so the disclosure risk of row (an index
	// into Dataset.Rows) decreases. It reports false when nothing further
	// can be done for that row.
	Step(ctx *Context, row int) ([]Decision, bool)
}

// AttrChoice selects which quasi-identifier of a risky tuple is anonymized
// first (the second runtime question of Section 4.4).
type AttrChoice int

// Attribute-choice heuristics.
const (
	// AttrMostSelective is the paper's “most risky first” greedy: the
	// attribute whose value is rarest in the dataset is anonymized first,
	// which removes sample uniques with the fewest steps and so preserves
	// the most data utility (the Figure 5 discussion).
	AttrMostSelective AttrChoice = iota
	// AttrLeastSelective is the adversarial ablation: anonymize the most
	// common value first.
	AttrLeastSelective
	// AttrSchemaOrder ignores selectivity and follows schema order — the
	// naive binding order of Algorithm 7 without a routing strategy.
	AttrSchemaOrder
	// AttrMaxGain simulates the effect of each candidate suppression and
	// picks the attribute whose removal lands the tuple in the largest
	// aggregation group — the strongest form of the paper's greedy, where
	// the routing strategy itself runs the risk computation. Tuples risky
	// on different combinations tend to collapse into the same suppressed
	// pattern, which is what keeps information loss low on very unbalanced
	// data (the Figure 7b discussion).
	AttrMaxGain
)

// String implements fmt.Stringer.
func (c AttrChoice) String() string {
	switch c {
	case AttrMostSelective:
		return "most-selective-first"
	case AttrLeastSelective:
		return "least-selective-first"
	case AttrSchemaOrder:
		return "schema-order"
	case AttrMaxGain:
		return "max-gain"
	default:
		return fmt.Sprintf("AttrChoice(%d)", int(c))
	}
}

// marginalIndex caches, per attribute, how many rows carry each constant
// value plus how many carry labelled nulls, so the selectivity of a value
// under maybe-match is a lookup instead of a scan.
type marginalIndex struct {
	counts []map[string]int // by attribute index
	nulls  []int
}

func buildMarginalIndex(d *mdb.Dataset, qi []int) *marginalIndex {
	m := &marginalIndex{
		counts: make([]map[string]int, len(d.Attrs)),
		nulls:  make([]int, len(d.Attrs)),
	}
	for _, a := range qi {
		m.counts[a] = make(map[string]int)
	}
	for _, r := range d.Rows {
		for _, a := range qi {
			v := r.Values[a]
			if v.IsNull() {
				m.nulls[a]++
			} else {
				m.counts[a][v.Constant()]++
			}
		}
	}
	return m
}

func (m *marginalIndex) marginal(attr int, v mdb.Value) int {
	if v.IsNull() {
		return m.nulls[attr] // callers only rank constants; defensive
	}
	return m.counts[attr][v.Constant()] + m.nulls[attr]
}

// chooseAttr orders the candidate attribute indexes of a row according to
// the heuristic and returns them best-first.
func chooseAttr(ctx *Context, row int, candidates []int, choice AttrChoice) []int {
	if len(candidates) <= 1 || choice == AttrSchemaOrder {
		return candidates
	}
	type scored struct {
		attr  int
		count int
	}
	scores := make([]scored, len(candidates))
	r := ctx.Dataset.Rows[row]
	for i, a := range candidates {
		var count int
		if choice == AttrMaxGain {
			count = ctx.FreqWithout(a)[row]
		} else {
			count = ctx.Marginal(a, r.Values[a])
		}
		scores[i] = scored{attr: a, count: count}
	}
	// Insertion sort: candidate lists are tiny (≤ 9 attributes), and ties
	// break on schema order for determinism.
	for i := 1; i < len(scores); i++ {
		for j := i; j > 0; j-- {
			better := false
			switch choice {
			case AttrMostSelective:
				better = scores[j].count < scores[j-1].count
			case AttrLeastSelective:
				better = scores[j].count > scores[j-1].count
			case AttrMaxGain:
				better = scores[j].count > scores[j-1].count
			}
			if !better {
				break
			}
			scores[j], scores[j-1] = scores[j-1], scores[j]
		}
	}
	out := make([]int, len(scores))
	for i, s := range scores {
		out[i] = s.attr
	}
	return out
}
