package anon

import (
	"runtime"
	"testing"

	"vadasa/internal/hierarchy"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
	"vadasa/internal/synth"
)

// incrementalConfigs covers every incremental assessor plus the recoding
// anonymizer (whose decisions invalidate the index and force mid-cycle
// rebuilds), under both null semantics.
func incrementalConfigs() map[string]Config {
	return map[string]Config{
		"kanon-suppression": {
			Assessor:   risk.KAnonymity{K: 3},
			Threshold:  0.5,
			Anonymizer: LocalSuppression{Choice: AttrMostSelective},
			Semantics:  mdb.MaybeMatch,
			Order:      OrderLessSignificantFirst,
		},
		"kanon-standard-nulls": {
			Assessor:   risk.KAnonymity{K: 3},
			Threshold:  0.5,
			Anonymizer: LocalSuppression{Choice: AttrMostSelective},
			Semantics:  mdb.StandardNulls,
		},
		"reident-suppression": {
			Assessor:   risk.ReIdentification{},
			Threshold:  0.2,
			Anonymizer: LocalSuppression{Choice: AttrMostSelective},
			Semantics:  mdb.MaybeMatch,
		},
		"individual-montecarlo": {
			Assessor:   risk.IndividualRisk{Estimator: risk.MonteCarlo, Samples: 50, Seed: 11},
			Threshold:  0.2,
			Anonymizer: LocalSuppression{Choice: AttrMostSelective},
			Semantics:  mdb.MaybeMatch,
			Order:      OrderByRiskDesc,
		},
		"recode-then-suppress": {
			Assessor:  risk.KAnonymity{K: 2},
			Threshold: 0.5,
			Anonymizer: Composite{
				GlobalRecoding{KB: hierarchy.ItalianGeography(), Choice: AttrMostSelective},
				LocalSuppression{Choice: AttrMostSelective},
			},
			Semantics: mdb.MaybeMatch,
		},
	}
}

// The incremental cycle must be indistinguishable from the reference
// full-assessment path: identical dataset, decision log (risk values
// bitwise included), counters and residuals. This is the determinism
// contract journal replay (PR 2) depends on.
func TestCycleIncrementalMatchesReference(t *testing.T) {
	for name, cfg := range incrementalConfigs() {
		t.Run(name, func(t *testing.T) {
			var d *mdb.Dataset
			if name == "recode-then-suppress" {
				d = synth.Figure5()
			} else {
				d = synth.Generate(synth.Config{Tuples: 500, QIs: 4, Dist: synth.DistU, Seed: 37})
			}
			reference := cfg
			reference.FullAssess = true
			control, err := Run(d, reference)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, control, got)
			for i := range control.Decisions {
				if control.Decisions[i].Risk != got.Decisions[i].Risk {
					t.Fatalf("decision %d risk: %v vs %v (bitwise mismatch)",
						i, control.Decisions[i].Risk, got.Decisions[i].Risk)
				}
			}
			if control.InfoLoss != got.InfoLoss {
				t.Fatalf("info loss: %v vs %v", control.InfoLoss, got.InfoLoss)
			}
		})
	}
}

// DebugVerify re-runs the reference assessment every iteration and fails on
// any divergence; a clean pass is the runtime form of the property above.
func TestCycleDebugVerify(t *testing.T) {
	for name, cfg := range incrementalConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.DebugVerify = true
			d := synth.Generate(synth.Config{Tuples: 300, QIs: 4, Dist: synth.DistU, Seed: 41})
			if name == "recode-then-suppress" {
				d = synth.Figure5()
			}
			if _, err := Run(d, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Force real parallelism inside the pool-backed stages and re-check the
// reference equality; combined with -race in CI this proves the parallel
// path is both data-race-free and bit-deterministic.
func TestCycleIncrementalParallelDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	cfg := incrementalConfigs()["individual-montecarlo"]
	d := synth.Generate(synth.Config{Tuples: 800, QIs: 4, Dist: synth.DistW, Seed: 43})
	reference := cfg
	reference.FullAssess = true
	control, err := Run(d, reference)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, control, got)
}

// Resume must keep producing identical results now that the continued part
// of the cycle runs incrementally over a replayed, null-bearing dataset.
func TestResumeWithIncrementalAssessment(t *testing.T) {
	cfg := incrementalConfigs()["kanon-suppression"]
	d := synth.Generate(synth.Config{Tuples: 400, QIs: 4, Dist: synth.DistU, Seed: 23})
	var cps []Checkpoint
	collect := cfg
	collect.Checkpoint = func(cp Checkpoint) error { cps = append(cps, cp); return nil }
	control, err := Run(d, collect)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) < 2 {
		t.Fatalf("need at least 2 checkpoints, got %d", len(cps))
	}
	mid := len(cps) / 2
	resumed, err := ResumeContext(nil, d, cfg, cps[:mid])
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, control, resumed)
}

// BenchmarkReplayCheckpoint regression-tests the resume fast path: replaying
// a journal is O(decisions) with the per-resume ID map, where the old
// per-decision row scan made large journals quadratic.
func BenchmarkReplayCheckpoint(b *testing.B) {
	d := synth.Generate(synth.Config{Tuples: 5000, QIs: 4, Dist: synth.DistU, Seed: 59})
	cfg := Config{
		Assessor:      risk.KAnonymity{K: 4},
		Threshold:     0.5,
		Anonymizer:    LocalSuppression{Choice: AttrMostSelective},
		Semantics:     mdb.MaybeMatch,
		BatchFraction: 1,
	}
	var cps []Checkpoint
	collect := cfg
	collect.Checkpoint = func(cp Checkpoint) error { cps = append(cps, cp); return nil }
	if _, err := Run(d, collect); err != nil {
		b.Fatal(err)
	}
	decisions := 0
	for _, cp := range cps {
		decisions += len(cp.Decisions)
	}
	b.ReportMetric(float64(decisions), "decisions/replay")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Replaying the full journal leaves one closing assessment that
		// finds nothing risky; replay cost dominates on large journals.
		if _, err := ResumeContext(nil, d, cfg, cps); err != nil {
			b.Fatal(err)
		}
	}
}
