package anon

import (
	"strings"
	"testing"

	"vadasa/internal/hierarchy"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
	"vadasa/internal/synth"
)

// Section 4.4: anonymizing tuple 1 of Figure 5a should suppress Sector —
// the most selective value — which removes every sample unique in one step.
func TestSuppressionChoosesMostSelective(t *testing.T) {
	d := synth.Figure5()
	qi := d.QuasiIdentifiers()
	s := LocalSuppression{Choice: AttrMostSelective}
	decisions, ok := s.Step(NewContext(d, d.QuasiIdentifiers()), 0)
	if !ok || len(decisions) != 1 {
		t.Fatalf("Step: %v, %v", decisions, ok)
	}
	if decisions[0].Attr != "Sector" {
		t.Fatalf("suppressed %s, want Sector", decisions[0].Attr)
	}
	if !d.Rows[0].Values[d.AttrIndex("Sector")].IsNull() {
		t.Fatal("value not replaced by a labelled null")
	}
	// Frequency should now be 5 (Figure 5b).
	if f := mdb.Frequencies(d, qi, mdb.MaybeMatch)[0]; f != 5 {
		t.Fatalf("frequency after suppression = %d, want 5", f)
	}
}

func TestSuppressionSchemaOrder(t *testing.T) {
	d := synth.Figure5()
	s := LocalSuppression{Choice: AttrSchemaOrder}
	decisions, _ := s.Step(NewContext(d, d.QuasiIdentifiers()), 0)
	if decisions[0].Attr != "Area" {
		t.Fatalf("schema-order suppressed %s, want Area", decisions[0].Attr)
	}
}

func TestSuppressionLeastSelective(t *testing.T) {
	d := synth.Figure5()
	s := LocalSuppression{Choice: AttrLeastSelective}
	decisions, _ := s.Step(NewContext(d, d.QuasiIdentifiers()), 0)
	// For tuple 1 the least selective values are Roma/1000+/0-30 (5 each);
	// ties break on schema order, so Area is chosen.
	if decisions[0].Attr != "Area" {
		t.Fatalf("least-selective suppressed %s, want Area", decisions[0].Attr)
	}
}

func TestSuppressionExhausted(t *testing.T) {
	d := synth.Figure5()
	qi := d.QuasiIdentifiers()
	s := LocalSuppression{}
	for i := 0; i < len(qi); i++ {
		if _, ok := s.Step(NewContext(d, d.QuasiIdentifiers()), 0); !ok {
			t.Fatalf("step %d failed early", i)
		}
	}
	if _, ok := s.Step(NewContext(d, d.QuasiIdentifiers()), 0); ok {
		t.Fatal("fully suppressed tuple still anonymizable")
	}
}

// Figure 5b: recoding Area rolls Milano and Torino up to North for the
// whole column, making tuples 6 and 7 indistinguishable.
func TestGlobalRecodingFigure5(t *testing.T) {
	d := synth.Figure5()
	qi := d.QuasiIdentifiers()
	g := GlobalRecoding{KB: hierarchy.ItalianGeography(), Choice: AttrMostSelective}
	decisions, ok := g.Step(NewContext(d, d.QuasiIdentifiers()), 5) // tuple 6 (Milano)
	if !ok {
		t.Fatal("recoding step failed")
	}
	dec := decisions[0]
	if dec.Attr != "Area" || dec.New != mdb.Const("North") {
		t.Fatalf("decision = %+v", dec)
	}
	if dec.AffectedRows != 1 { // only Milano rows carry the old value
		t.Fatalf("affected rows = %d", dec.AffectedRows)
	}
	// Torino is a separate value: recode tuple 7 too.
	if _, ok := g.Step(NewContext(d, d.QuasiIdentifiers()), 6); !ok {
		t.Fatal("second recoding step failed")
	}
	freqs := mdb.Frequencies(d, qi, mdb.MaybeMatch)
	if freqs[5] != 2 || freqs[6] != 2 {
		t.Fatalf("frequencies after recoding = %v", freqs[5:])
	}
}

func TestGlobalRecodingAffectsWholeColumn(t *testing.T) {
	d := synth.Figure5()
	g := GlobalRecoding{KB: hierarchy.ItalianGeography()}
	// Tuple 1 (Roma): all five Roma rows must be recoded to Center.
	decisions, ok := g.Step(NewContext(d, d.QuasiIdentifiers()), 0)
	if !ok {
		t.Fatal("recoding failed")
	}
	if decisions[0].AffectedRows != 5 {
		t.Fatalf("affected rows = %d, want 5", decisions[0].AffectedRows)
	}
	area := d.AttrIndex("Area")
	for i := 0; i < 5; i++ {
		if d.Rows[i].Values[area] != mdb.Const("Center") {
			t.Fatalf("row %d area = %v", i+1, d.Rows[i].Values[area])
		}
	}
}

func TestGlobalRecodingPerTuple(t *testing.T) {
	d := synth.Figure5()
	g := GlobalRecoding{KB: hierarchy.ItalianGeography(), PerTuple: true}
	decisions, ok := g.Step(NewContext(d, d.QuasiIdentifiers()), 0)
	if !ok || decisions[0].AffectedRows != 1 {
		t.Fatalf("per-tuple recoding affected %d rows", decisions[0].AffectedRows)
	}
	area := d.AttrIndex("Area")
	if d.Rows[1].Values[area] != mdb.Const("Roma") {
		t.Fatal("per-tuple recoding leaked to other rows")
	}
}

func TestGlobalRecodingExhausted(t *testing.T) {
	d := synth.Figure5()
	g := GlobalRecoding{KB: hierarchy.ItalianGeography()}
	// Climb Roma -> Center -> Italia; after that Area is at the top and
	// the other attributes have no hierarchy: no step possible.
	if _, ok := g.Step(NewContext(d, d.QuasiIdentifiers()), 0); !ok {
		t.Fatal("first step failed")
	}
	if _, ok := g.Step(NewContext(d, d.QuasiIdentifiers()), 0); !ok {
		t.Fatal("second step failed")
	}
	if _, ok := g.Step(NewContext(d, d.QuasiIdentifiers()), 0); ok {
		t.Fatal("step possible beyond hierarchy top")
	}
	if g2 := (GlobalRecoding{}); true {
		if _, ok := g2.Step(NewContext(d, d.QuasiIdentifiers()), 0); ok {
			t.Fatal("recoding without a KB succeeded")
		}
	}
}

func TestCompositeFallsBack(t *testing.T) {
	d := synth.Figure5()
	c := Composite{
		GlobalRecoding{KB: hierarchy.ItalianGeography()},
		LocalSuppression{Choice: AttrMostSelective},
	}
	if !strings.Contains(c.Name(), "global-recoding") || !strings.Contains(c.Name(), "local-suppression") {
		t.Fatalf("composite name = %q", c.Name())
	}
	// First two steps recode Area up to Italia, further steps suppress.
	methods := []string{}
	for i := 0; i < 3; i++ {
		ds, ok := c.Step(NewContext(d, d.QuasiIdentifiers()), 0)
		if !ok {
			t.Fatalf("composite step %d failed", i)
		}
		methods = append(methods, ds[0].Method)
	}
	if methods[0] != "global-recoding" || methods[1] != "global-recoding" || methods[2] != "local-suppression" {
		t.Fatalf("methods = %v", methods)
	}
}

func kCycle(k int, sem mdb.Semantics, d *mdb.Dataset) (*Result, error) {
	return Run(d, Config{
		Assessor:   risk.KAnonymity{K: k},
		Threshold:  0.5,
		Anonymizer: LocalSuppression{Choice: AttrMostSelective},
		Semantics:  sem,
		Order:      OrderLessSignificantFirst,
	})
}

func TestCycleFigure5KAnonymity(t *testing.T) {
	d := synth.Figure5()
	res, err := kCycle(2, mdb.MaybeMatch, d)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Input untouched.
	if d.NullCount() != 0 {
		t.Fatal("input dataset was mutated")
	}
	// Every tuple must now be 2-anonymous.
	freqs := mdb.Frequencies(res.Dataset, res.Dataset.QuasiIdentifiers(), mdb.MaybeMatch)
	for i, f := range freqs {
		if f < 2 {
			t.Errorf("row %d frequency %d < 2 after cycle", i+1, f)
		}
	}
	if len(res.Residual) != 0 {
		t.Errorf("residual rows: %v", res.Residual)
	}
	if res.InitialRisky != 3 { // tuples 1, 6, 7
		t.Errorf("initial risky = %d, want 3", res.InitialRisky)
	}
	if res.NullsInjected == 0 || res.NullsInjected != res.Dataset.NullCount() {
		t.Errorf("nulls injected = %d, dataset has %d", res.NullsInjected, res.Dataset.NullCount())
	}
	if res.InfoLoss <= 0 || res.InfoLoss > 1 {
		t.Errorf("info loss = %g", res.InfoLoss)
	}
	for _, dec := range res.Decisions {
		if dec.Method != "local-suppression" || dec.Iteration < 1 || dec.Risk <= 0.5 {
			t.Errorf("suspect decision: %+v", dec)
		}
	}
}

// Under the standard Skolem semantics suppression never helps: the cycle
// must exhaust the risky tuples (all quasi-identifiers suppressed) and
// report them as residual — the proliferation of Figure 7c.
func TestCycleStandardSemanticsProliferates(t *testing.T) {
	d := synth.Figure5()
	maybe, err := kCycle(2, mdb.MaybeMatch, d)
	if err != nil {
		t.Fatal(err)
	}
	std, err := kCycle(2, mdb.StandardNulls, d)
	if err != nil {
		t.Fatal(err)
	}
	if std.NullsInjected <= maybe.NullsInjected {
		t.Fatalf("standard semantics injected %d nulls, maybe-match %d",
			std.NullsInjected, maybe.NullsInjected)
	}
	// All QIs of the risky tuples end up suppressed, and the tuples stay
	// risky.
	if want := 3 * len(d.QuasiIdentifiers()); std.NullsInjected != want {
		t.Errorf("standard nulls = %d, want %d", std.NullsInjected, want)
	}
	if len(std.Residual) != 3 {
		t.Errorf("standard residual = %v, want 3 rows", std.Residual)
	}
}

func TestCycleReIdentificationRisk(t *testing.T) {
	d := synth.InflationGrowth()
	res, err := Run(d, Config{
		Assessor:   risk.ReIdentification{},
		Threshold:  0.02, // flags tuples with group weight < 50: only tuple 15 (1/30)
		Anonymizer: LocalSuppression{Choice: AttrMostSelective},
		Semantics:  mdb.MaybeMatch,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.InitialRisky != 1 {
		t.Fatalf("initial risky = %d, want 1 (tuple 15)", res.InitialRisky)
	}
	rs, _ := risk.ReIdentification{}.Assess(res.Dataset, mdb.MaybeMatch)
	for i, r := range rs {
		if r > 0.02 {
			t.Errorf("tuple %d risk %g still above threshold", i+1, r)
		}
	}
}

func TestCycleWithRecodingAndSuppression(t *testing.T) {
	d := synth.Figure5()
	res, err := Run(d, Config{
		Assessor:  risk.KAnonymity{K: 2},
		Threshold: 0.5,
		Anonymizer: Composite{
			GlobalRecoding{KB: hierarchy.ItalianGeography(), Choice: AttrMostSelective},
			LocalSuppression{Choice: AttrMostSelective},
		},
		Semantics: mdb.MaybeMatch,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Residual) != 0 {
		t.Errorf("residual: %v", res.Residual)
	}
	// Recoding must have been used (Milano/Torino roll up to North).
	sawRecode := false
	for _, dec := range res.Decisions {
		if dec.Method == "global-recoding" {
			sawRecode = true
		}
	}
	if !sawRecode {
		t.Error("composite cycle never recoded")
	}
}

func TestCycleValidatesConfig(t *testing.T) {
	d := synth.Figure5()
	if _, err := Run(d, Config{Threshold: 0.5, Anonymizer: LocalSuppression{}}); err == nil {
		t.Error("missing assessor accepted")
	}
	if _, err := Run(d, Config{Assessor: risk.KAnonymity{K: 2}, Threshold: 0.5}); err == nil {
		t.Error("missing anonymizer accepted")
	}
	if _, err := Run(d, Config{Assessor: risk.KAnonymity{K: 2}, Threshold: 1.5, Anonymizer: LocalSuppression{}}); err == nil {
		t.Error("threshold > 1 accepted")
	}
	noQI := mdb.NewDataset("noqi", []mdb.Attribute{{Name: "A", Category: mdb.NonIdentifying}})
	if _, err := Run(noQI, Config{Assessor: risk.KAnonymity{K: 2}, Threshold: 0.5, Anonymizer: LocalSuppression{}}); err == nil {
		t.Error("dataset without QIs accepted")
	}
}

func TestCycleOnGeneratedData(t *testing.T) {
	d := synth.Generate(synth.Config{Tuples: 3000, QIs: 4, Dist: synth.DistU, Seed: 17})
	for _, order := range []TupleOrder{OrderLessSignificantFirst, OrderByRiskDesc, OrderByID} {
		res, err := Run(d, Config{
			Assessor:   risk.KAnonymity{K: 3},
			Threshold:  0.5,
			Anonymizer: LocalSuppression{Choice: AttrMostSelective},
			Semantics:  mdb.MaybeMatch,
			Order:      order,
		})
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		freqs := mdb.Frequencies(res.Dataset, res.Dataset.QuasiIdentifiers(), mdb.MaybeMatch)
		for i, f := range freqs {
			if f < 3 {
				t.Fatalf("%v: row %d frequency %d < 3", order, i, f)
			}
		}
		if res.NullsInjected == 0 {
			t.Fatalf("%v: no nulls injected on an unbalanced dataset", order)
		}
	}
}

// Higher k must never need fewer nulls (the monotone trend of Figure 7a).
func TestNullsMonotoneInK(t *testing.T) {
	d := synth.Generate(synth.Config{Tuples: 2000, QIs: 4, Dist: synth.DistU, Seed: 21})
	prev := -1
	for k := 2; k <= 5; k++ {
		res, err := kCycle(k, mdb.MaybeMatch, d)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.NullsInjected < prev {
			t.Fatalf("k=%d injected %d nulls, k=%d injected %d",
				k, res.NullsInjected, k-1, prev)
		}
		prev = res.NullsInjected
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{RowID: 7, Attr: "Sector", Old: mdb.Const("Textiles"),
		New: mdb.Null(3), Method: "local-suppression", Risk: 1, Iteration: 2, AffectedRows: 1}
	s := d.String()
	// Cell values are rendered as digests: the decision log is an
	// operational surface and must not carry raw microdata. Labelled
	// nulls are already anonymous and keep their ⊥i form.
	for _, want := range []string{"tuple 7", "Sector", mdb.Const("Textiles").Redacted(), "⊥3", "local-suppression"} {
		if !strings.Contains(s, want) {
			t.Errorf("Decision.String() = %q missing %q", s, want)
		}
	}
	if strings.Contains(s, "Textiles") {
		t.Errorf("Decision.String() = %q leaks the raw cell value", s)
	}
}

func TestHeuristicNames(t *testing.T) {
	if AttrMostSelective.String() == "" || OrderLessSignificantFirst.String() == "" {
		t.Fatal("empty heuristic names")
	}
	if AttrChoice(99).String() == OrderByID.String() {
		t.Fatal("unexpected name collision")
	}
}

func TestResultExplainTupleAndNullsByAttribute(t *testing.T) {
	d := synth.Figure5()
	res, err := kCycle(2, mdb.MaybeMatch, d)
	if err != nil {
		t.Fatal(err)
	}
	// Tuple 1 was anonymized; its decision log is non-empty and targeted.
	decs := res.ExplainTuple(1)
	if len(decs) == 0 {
		t.Fatal("no decisions for tuple 1")
	}
	for _, dec := range decs {
		if dec.RowID != 1 {
			t.Fatalf("foreign decision: %+v", dec)
		}
	}
	if got := res.ExplainTuple(2); len(got) != 0 {
		t.Fatalf("tuple 2 was never risky but has decisions: %v", got)
	}
	byAttr := res.NullsByAttribute()
	total := 0
	for _, n := range byAttr {
		total += n
	}
	if total != res.NullsInjected {
		t.Fatalf("per-attribute nulls %d != total %d", total, res.NullsInjected)
	}
}
