package anon

import (
	"context"
	"errors"
	"testing"

	"vadasa/internal/mdb"
	"vadasa/internal/synth"
)

// cancelOnAssess cancels the run's context from inside its first assessment
// and reports every tuple as maximally risky, so a cycle that ignored the
// context would keep iterating forever (suppression never lowers the risk).
type cancelOnAssess struct {
	cancel context.CancelFunc
	calls  int
}

func (c *cancelOnAssess) Name() string { return "cancel-on-assess" }

func (c *cancelOnAssess) Assess(d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	c.calls++
	c.cancel()
	out := make([]float64, len(d.Rows))
	for i := range out {
		out[i] = 1
	}
	return out, nil
}

func TestCycleRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	probe := &cancelOnAssess{cancel: func() {}}
	_, err := RunContext(ctx, synth.Figure5(), Config{
		Assessor:   probe,
		Threshold:  0.5,
		Anonymizer: LocalSuppression{Choice: AttrMostSelective},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if probe.calls != 0 {
		t.Fatalf("assessor ran %d times on an already-cancelled context", probe.calls)
	}
}

// TestCycleRunContextStopsWithinOneIteration is the acceptance check for the
// cycle: cancellation raised during iteration N must stop the cycle before
// iteration N+1 assesses again.
func TestCycleRunContextStopsWithinOneIteration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	probe := &cancelOnAssess{cancel: cancel}
	_, err := RunContext(ctx, synth.Figure5(), Config{
		Assessor:   probe,
		Threshold:  0.5,
		Anonymizer: LocalSuppression{Choice: AttrMostSelective},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if probe.calls != 1 {
		t.Fatalf("assessor ran %d times, want exactly 1 (cancel must land at the iteration boundary)", probe.calls)
	}
}
