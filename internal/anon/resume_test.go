package anon

import (
	"errors"
	"fmt"
	"testing"

	"vadasa/internal/hierarchy"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
	"vadasa/internal/synth"
)

// countingAssessor wraps an assessor and counts Assess calls, so tests can
// prove the cycle runs exactly one assessment per iteration (the residual
// report reuses the last vector instead of re-assessing).
type countingAssessor struct {
	inner risk.Assessor
	calls int
}

func (c *countingAssessor) Name() string { return c.inner.Name() }

func (c *countingAssessor) Assess(d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	c.calls++
	return c.inner.Assess(d, sem)
}

func sameDataset(t *testing.T, a, b *mdb.Dataset) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i].ID != b.Rows[i].ID {
			t.Fatalf("row %d ids differ: %d vs %d", i, a.Rows[i].ID, b.Rows[i].ID)
		}
		for j := range a.Rows[i].Values {
			if a.Rows[i].Values[j] != b.Rows[i].Values[j] {
				t.Fatalf("row %d attr %s: %v vs %v",
					i, a.Attrs[j].Name, a.Rows[i].Values[j], b.Rows[i].Values[j])
			}
		}
	}
}

func sameResult(t *testing.T, control, resumed *Result) {
	t.Helper()
	sameDataset(t, control.Dataset, resumed.Dataset)
	if len(control.Decisions) != len(resumed.Decisions) {
		t.Fatalf("decision counts differ: %d vs %d", len(control.Decisions), len(resumed.Decisions))
	}
	for i := range control.Decisions {
		c, r := control.Decisions[i], resumed.Decisions[i]
		if c.RowID != r.RowID || c.Attr != r.Attr || c.Method != r.Method ||
			c.Old != r.Old || c.New != r.New || c.Iteration != r.Iteration ||
			c.AffectedRows != r.AffectedRows {
			t.Fatalf("decision %d differs:\n  control: %+v\n  resumed: %+v", i, c, r)
		}
	}
	if control.Iterations != resumed.Iterations {
		t.Fatalf("iterations: %d vs %d", control.Iterations, resumed.Iterations)
	}
	if control.InitialRisky != resumed.InitialRisky {
		t.Fatalf("initial risky: %d vs %d", control.InitialRisky, resumed.InitialRisky)
	}
	if control.EverRisky != resumed.EverRisky {
		t.Fatalf("ever risky: %d vs %d", control.EverRisky, resumed.EverRisky)
	}
	if control.NullsInjected != resumed.NullsInjected {
		t.Fatalf("nulls injected: %d vs %d", control.NullsInjected, resumed.NullsInjected)
	}
	if len(control.Residual) != len(resumed.Residual) {
		t.Fatalf("residual: %v vs %v", control.Residual, resumed.Residual)
	}
	for i := range control.Residual {
		if control.Residual[i] != resumed.Residual[i] {
			t.Fatalf("residual: %v vs %v", control.Residual, resumed.Residual)
		}
	}
}

// resumeConfigs are cycle configurations exercising both anonymization
// methods the replay path must handle: pure suppression, and recoding with
// suppression fallback (column-wide writes with AffectedRows > 1).
func resumeConfigs() map[string]Config {
	return map[string]Config{
		"suppression": {
			Assessor:   risk.KAnonymity{K: 3},
			Threshold:  0.5,
			Anonymizer: LocalSuppression{Choice: AttrMostSelective},
			Semantics:  mdb.MaybeMatch,
			Order:      OrderLessSignificantFirst,
		},
		"recode-then-suppress": {
			Assessor:  risk.KAnonymity{K: 2},
			Threshold: 0.5,
			Anonymizer: Composite{
				GlobalRecoding{KB: hierarchy.ItalianGeography(), Choice: AttrMostSelective},
				LocalSuppression{Choice: AttrMostSelective},
			},
			Semantics: mdb.MaybeMatch,
		},
	}
}

// TestResumeEveryPrefix is the determinism contract behind crash recovery:
// for every prefix of the checkpoint stream, replaying that prefix and
// continuing must reproduce the uninterrupted run exactly — same dataset,
// same decision log, same counters.
func TestResumeEveryPrefix(t *testing.T) {
	for name, cfg := range resumeConfigs() {
		t.Run(name, func(t *testing.T) {
			d := synth.Figure5()
			if name == "suppression" {
				d = synth.Generate(synth.Config{Tuples: 400, QIs: 4, Dist: synth.DistU, Seed: 23})
			}

			var cps []Checkpoint
			collect := cfg
			collect.Checkpoint = func(cp Checkpoint) error {
				cps = append(cps, cp)
				return nil
			}
			control, err := RunContext(nil, d, collect)
			if err != nil {
				t.Fatal(err)
			}
			if len(cps) == 0 {
				t.Fatal("cycle committed no checkpoints; test proves nothing")
			}
			if len(cps) != control.Iterations {
				t.Fatalf("%d checkpoints for %d iterations", len(cps), control.Iterations)
			}

			for k := 0; k <= len(cps); k++ {
				resumed, err := ResumeContext(nil, d, cfg, cps[:k])
				if err != nil {
					t.Fatalf("resume from %d/%d checkpoints: %v", k, len(cps), err)
				}
				sameResult(t, control, resumed)
			}
		})
	}
}

// TestResumeChecksCheckpointOrder: a gap or reorder in the journaled
// iterations means the journal does not describe this run; resume must
// refuse rather than replay a wrong state.
func TestResumeChecksCheckpointOrder(t *testing.T) {
	d := synth.Figure5()
	cfg := resumeConfigs()["suppression"]
	var cps []Checkpoint
	collect := cfg
	collect.Checkpoint = func(cp Checkpoint) error {
		cps = append(cps, cp)
		return nil
	}
	if _, err := RunContext(nil, synth.Generate(synth.Config{Tuples: 400, QIs: 4, Dist: synth.DistU, Seed: 23}), collect); err != nil {
		t.Fatal(err)
	}
	if len(cps) < 2 {
		t.Fatalf("need at least 2 checkpoints, got %d", len(cps))
	}
	if _, err := ResumeContext(nil, d, cfg, []Checkpoint{cps[1]}); err == nil {
		t.Fatal("resume accepted a checkpoint stream starting at iteration 1")
	}
	if _, err := ResumeContext(nil, d, cfg, []Checkpoint{cps[1], cps[0]}); err == nil {
		t.Fatal("resume accepted reordered checkpoints")
	}
}

// TestResumeRejectsForeignJournal: decisions referencing tuples or attributes
// the dataset does not have must fail loudly, not corrupt the clone.
func TestResumeRejectsForeignJournal(t *testing.T) {
	d := synth.Figure5()
	cfg := resumeConfigs()["suppression"]
	bad := Checkpoint{Iteration: 0, Decisions: []Decision{{
		RowID: 9999, Attr: "Area", Method: "local-suppression", New: mdb.Null(1),
	}}}
	if _, err := ResumeContext(nil, d, cfg, []Checkpoint{bad}); err == nil {
		t.Fatal("resume accepted a decision for a nonexistent tuple")
	}
	bad.Decisions[0] = Decision{RowID: 1, Attr: "NoSuchAttr", Method: "local-suppression", New: mdb.Null(1)}
	if _, err := ResumeContext(nil, d, cfg, []Checkpoint{bad}); err == nil {
		t.Fatal("resume accepted a decision for a nonexistent attribute")
	}
	bad.Decisions[0] = Decision{RowID: 1, Attr: "Area", Method: "teleportation", New: mdb.Null(1)}
	if _, err := ResumeContext(nil, d, cfg, []Checkpoint{bad}); err == nil {
		t.Fatal("resume accepted an unknown anonymization method")
	}
}

// TestCheckpointErrorAbortsCycle: the checkpoint hook is a write-ahead
// commit point — if the journal write fails, continuing would produce state
// the journal cannot reconstruct, so the cycle must stop.
func TestCheckpointErrorAbortsCycle(t *testing.T) {
	d := synth.Figure5()
	cfg := resumeConfigs()["suppression"]
	boom := errors.New("disk full")
	calls := 0
	cfg.Checkpoint = func(cp Checkpoint) error {
		calls++
		return boom
	}
	_, err := RunContext(nil, d, cfg)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped checkpoint error", err)
	}
	if calls != 1 {
		t.Fatalf("cycle continued after a failed checkpoint (%d calls)", calls)
	}
}

// TestResumeFreshNullsDoNotCollide: null ids allocated after a resume must
// not reuse ids recorded in the journal, or distinct suppressions would
// merge under maybe-match semantics.
func TestResumeFreshNullsDoNotCollide(t *testing.T) {
	d := synth.Generate(synth.Config{Tuples: 400, QIs: 4, Dist: synth.DistU, Seed: 23})
	cfg := resumeConfigs()["suppression"]
	var cps []Checkpoint
	collect := cfg
	collect.Checkpoint = func(cp Checkpoint) error {
		cps = append(cps, cp)
		return nil
	}
	if _, err := RunContext(nil, d, collect); err != nil {
		t.Fatal(err)
	}
	if len(cps) < 2 {
		t.Fatalf("need at least 2 checkpoints, got %d", len(cps))
	}
	res, err := ResumeContext(nil, d, cfg, cps[:1])
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]string{}
	for _, dec := range res.Decisions {
		if !dec.New.IsNull() {
			continue
		}
		key := fmt.Sprintf("%d/%s", dec.RowID, dec.Attr)
		if prev, dup := seen[dec.New.NullID()]; dup && prev != key {
			t.Fatalf("null id %d used for both %s and %s", dec.New.NullID(), prev, key)
		}
		seen[dec.New.NullID()] = key
	}
}

// TestCycleAssessesOncePerIteration locks in the residual-pass fix: the
// loop exits only immediately after an assessment with no mutation in
// between, so the residual report must reuse that vector instead of paying
// for (and timing) a redundant final assessment.
func TestCycleAssessesOncePerIteration(t *testing.T) {
	// Clean dataset (every row identical, so nothing is ever risky): one
	// assessment decides the cycle is done; there must be no second
	// "final" pass.
	clean := mdb.NewDataset("clean", []mdb.Attribute{
		{Name: "Area", Category: mdb.QuasiIdentifier},
		{Name: "Sector", Category: mdb.QuasiIdentifier},
	})
	for i := 0; i < 8; i++ {
		clean.Append(&mdb.Row{Values: []mdb.Value{mdb.Const("Roma"), mdb.Const("Commerce")}})
	}
	probe := &countingAssessor{inner: risk.KAnonymity{K: 2}}
	res, err := Run(clean, Config{
		Assessor:   probe,
		Threshold:  0.5,
		Anonymizer: LocalSuppression{},
		Semantics:  mdb.MaybeMatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Fatalf("constant dataset took %d iterations", res.Iterations)
	}
	if probe.calls != 1 {
		t.Fatalf("clean run assessed %d times, want exactly 1", probe.calls)
	}

	// Working dataset: exactly one assessment per loop entry, none extra.
	probe = &countingAssessor{inner: risk.KAnonymity{K: 2}}
	res, err = Run(synth.Figure5(), Config{
		Assessor:   probe,
		Threshold:  0.5,
		Anonymizer: LocalSuppression{Choice: AttrMostSelective},
		Semantics:  mdb.MaybeMatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if probe.calls != res.Iterations+1 {
		t.Fatalf("assessed %d times over %d iterations, want %d",
			probe.calls, res.Iterations, res.Iterations+1)
	}
}
