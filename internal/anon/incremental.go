package anon

import (
	"context"
	"fmt"

	"vadasa/internal/govern"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
)

// incrementalState threads one iteration's anonymization deltas into the
// next risk assessment. Instead of regrouping the whole dataset every
// iteration, the cycle builds a group index once, feeds each committed
// decision batch into it (local suppressions as cell→null transitions,
// anything else as an invalidation), and asks the assessor to re-score only
// the rows whose group membership actually changed.
//
// The state is only constructed for assessors implementing
// risk.IncrementalAssessor; for everything else — SUDA, the cluster
// assessor — the cycle keeps the reference full-assessment path. Both paths
// are bit-identical by construction (the index mirrors mdb.ComputeGroups'
// summation orders and the estimators are pure per group), which
// Config.DebugVerify re-proves at runtime on every iteration.
type incrementalState struct {
	ia     risk.IncrementalAssessor
	attrs  []int
	sem    mdb.Semantics
	rowPos map[int]int // row ID → position, stable: the cycle never reorders

	idx  *mdb.GroupIndex
	prev []float64

	gov      *govern.Governor
	idxBytes int64
}

// newIncrementalState prepares incremental assessment for the cycle, or
// returns nil when the assessor cannot support it (not incremental, or its
// index attributes do not resolve — the full path will surface that error
// with its usual identity).
func newIncrementalState(work *mdb.Dataset, cfg Config, rowPos map[int]int, gov *govern.Governor) *incrementalState {
	ia, ok := cfg.Assessor.(risk.IncrementalAssessor)
	if !ok {
		return nil
	}
	attrs, err := ia.IndexAttrs(work)
	if err != nil {
		return nil
	}
	return &incrementalState{ia: ia, attrs: attrs, sem: cfg.Semantics, rowPos: rowPos, gov: gov}
}

// release refunds the index's memory reservation; deferred by the cycle.
func (s *incrementalState) release() {
	s.gov.Release(govern.Memory, s.idxBytes)
	s.idxBytes = 0
}

// assess returns the current risk vector: a build-and-full-score on the
// first call (and after an invalidation), a commit-and-rescore of just the
// dirty rows otherwise.
func (s *incrementalState) assess(ctx context.Context, work *mdb.Dataset) ([]float64, error) {
	var dirty []int
	if s.idx == nil || !s.idx.Valid() {
		idx, err := mdb.BuildGroupIndex(ctx, work, s.attrs, s.sem)
		if err != nil {
			return nil, err
		}
		// Swap the memory reservation to the fresh index before the old
		// one becomes collectable; the prev vector rides along.
		bytes := idx.EstimatedBytes() + int64(len(work.Rows))*8
		//governcharge:ok — released by release(), deferred in ResumeContext
		if err := s.gov.Reserve(govern.Memory, bytes); err != nil {
			return nil, fmt.Errorf("anon: building group index: %w", err)
		}
		s.gov.Release(govern.Memory, s.idxBytes)
		s.idx, s.idxBytes, s.prev = idx, bytes, nil
	} else {
		var err error
		dirty, err = s.idx.Commit(ctx)
		if err != nil {
			return nil, err
		}
	}
	out, err := s.ia.Rescore(ctx, s.idx, dirty, s.prev)
	if err != nil {
		return nil, err
	}
	s.prev = out
	return out, nil
}

// observe feeds one iteration's committed decisions into the index. Local
// suppressions are the cell→null transitions the index absorbs in place;
// any other method (global recoding rewrites arbitrarily many cells to
// constants the index has no delta form for) invalidates it, forcing a
// rebuild at the next assessment.
func (s *incrementalState) observe(work *mdb.Dataset, decisions []Decision) error {
	if s.idx == nil || !s.idx.Valid() {
		return nil
	}
	for _, dec := range decisions {
		if dec.Method != "local-suppression" {
			s.idx.Invalidate()
			return nil
		}
		pos, ok := s.rowPos[dec.RowID]
		if !ok {
			return fmt.Errorf("anon: incremental: decision references unknown tuple %d", dec.RowID)
		}
		attr := work.AttrIndex(dec.Attr)
		if attr < 0 {
			return fmt.Errorf("anon: incremental: decision references unknown attribute %q", dec.Attr)
		}
		if err := s.idx.SuppressCell(pos, attr); err != nil {
			return fmt.Errorf("anon: incremental: %w", err)
		}
	}
	return nil
}

// firstDiff returns the first position where the two vectors differ bitwise,
// or -1. Used by the debug-verify cross-check.
func firstDiff(a, b []float64) int {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}
