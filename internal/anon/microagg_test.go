package anon

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"vadasa/internal/mdb"
)

func weightColumnDataset(values []float64) *mdb.Dataset {
	d := mdb.NewDataset("m", []mdb.Attribute{
		{Name: "Area", Category: mdb.QuasiIdentifier},
		{Name: "Income", Category: mdb.NonIdentifying},
	})
	for _, v := range values {
		d.Append(&mdb.Row{
			Values: []mdb.Value{mdb.Const("x"), mdb.Const(strconv.FormatFloat(v, 'g', -1, 64))},
			Weight: 1,
		})
	}
	return d
}

func TestMicroaggregate(t *testing.T) {
	d := weightColumnDataset([]float64{10, 20, 30, 100, 110, 120})
	if err := Microaggregate(d, "Income", 3); err != nil {
		t.Fatalf("Microaggregate: %v", err)
	}
	idx := d.AttrIndex("Income")
	want := []string{"20", "20", "20", "110", "110", "110"}
	for i, w := range want {
		if got := d.Rows[i].Values[idx].Constant(); got != w {
			t.Errorf("row %d: %q, want %q", i+1, got, w)
		}
	}
}

func TestMicroaggregateRemainderAbsorbed(t *testing.T) {
	// 7 values with k=3: groups of 3 and 4.
	d := weightColumnDataset([]float64{1, 2, 3, 4, 5, 6, 7})
	if err := Microaggregate(d, "Income", 3); err != nil {
		t.Fatal(err)
	}
	idx := d.AttrIndex("Income")
	counts := map[string]int{}
	for _, r := range d.Rows {
		counts[r.Values[idx].Constant()]++
	}
	for v, c := range counts {
		if c < 3 {
			t.Errorf("group mean %q appears %d times, want >= 3", v, c)
		}
	}
}

func TestMicroaggregatePreservesSum(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	values := make([]float64, 50)
	total := 0.0
	for i := range values {
		values[i] = float64(rng.Intn(1000))
		total += values[i]
	}
	d := weightColumnDataset(values)
	if err := Microaggregate(d, "Income", 4); err != nil {
		t.Fatal(err)
	}
	idx := d.AttrIndex("Income")
	after := 0.0
	for _, r := range d.Rows {
		v, err := strconv.ParseFloat(r.Values[idx].Constant(), 64)
		if err != nil {
			t.Fatal(err)
		}
		after += v
	}
	if math.Abs(after-total) > 1e-6*total {
		t.Fatalf("sum changed: %g -> %g", total, after)
	}
}

func TestMicroaggregateErrors(t *testing.T) {
	d := weightColumnDataset([]float64{1, 2, 3})
	if err := Microaggregate(d, "Income", 1); err == nil {
		t.Error("k=1 accepted")
	}
	if err := Microaggregate(d, "Nope", 2); err == nil {
		t.Error("unknown attribute accepted")
	}
	if err := Microaggregate(d, "Area", 2); err == nil {
		t.Error("non-numeric attribute accepted")
	}
	tiny := weightColumnDataset([]float64{1})
	if err := Microaggregate(tiny, "Income", 2); err == nil {
		t.Error("fewer values than k accepted")
	}
}

func TestMicroaggregateSkipsNulls(t *testing.T) {
	d := weightColumnDataset([]float64{1, 2, 3, 4})
	idx := d.AttrIndex("Income")
	d.Rows[0].Values[idx] = d.Nulls.Fresh()
	if err := Microaggregate(d, "Income", 3); err != nil {
		t.Fatal(err)
	}
	if !d.Rows[0].Values[idx].IsNull() {
		t.Error("null disturbed")
	}
	// The remaining three values form one group with mean 3.
	if got := d.Rows[1].Values[idx].Constant(); got != "3" {
		t.Errorf("mean = %q, want 3", got)
	}
}

func TestMicroaggregateEmptyColumn(t *testing.T) {
	d := weightColumnDataset([]float64{1, 2})
	idx := d.AttrIndex("Income")
	d.Rows[0].Values[idx] = d.Nulls.Fresh()
	d.Rows[1].Values[idx] = d.Nulls.Fresh()
	if err := Microaggregate(d, "Income", 2); err != nil {
		t.Fatalf("all-null column: %v", err)
	}
}
