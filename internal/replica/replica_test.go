package replica

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"vadasa/internal/faultfs"
	"vadasa/internal/journal"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
	"vadasa/internal/stream"
)

func testAttrs() []mdb.Attribute {
	return []mdb.Attribute{
		{Name: "Id", Category: mdb.Identifier},
		{Name: "Sector", Category: mdb.QuasiIdentifier},
		{Name: "Region", Category: mdb.QuasiIdentifier},
		{Name: "Size", Category: mdb.QuasiIdentifier},
		{Name: "Weight", Category: mdb.Weight},
	}
}

// testRows pairs quasi-identifiers by absolute index so an even-sized
// window starting at an even offset satisfies k=2 with no suppressions.
func testRows(start, n int) [][]string {
	out := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		k := (start + i) / 2
		out = append(out, []string{
			fmt.Sprintf("c%d", start+i),
			fmt.Sprintf("sector%d", k%3),
			fmt.Sprintf("region%d", k%2),
			fmt.Sprintf("size%d", k%4),
			fmt.Sprintf("%d", 10+(start+i)%5),
		})
	}
	return out
}

func testStreamOptions() stream.Options {
	return stream.Options{
		Assessor:  risk.KAnonymity{K: 2},
		Threshold: 0.5,
		Semantics: mdb.MaybeMatch,
		Attrs:     testAttrs(),
	}
}

// localTransport delivers shipments straight into a Standby in-process.
type localTransport struct {
	sb   *Standby
	addr string
}

func (l *localTransport) Ship(ctx context.Context, req *ShipRequest) (*ShipResponse, error) {
	return l.sb.HandleShip(ctx, req)
}
func (l *localTransport) Addr() string { return l.addr }
func (l *localTransport) Close() error { return nil }

// cluster is a one-primary one-standby harness over real files.
type cluster struct {
	t         testing.TB
	dir       string
	node      *Node // primary's fencing authority
	sbNode    *Node // standby's fencing authority
	primary   *Primary
	standby   *Standby
	transport Transport
	streamDir string // primary's stream WALs
	mirrorDir string // standby's mirrored stream WALs
}

func newCluster(t testing.TB, sync bool, wrap func(Transport) Transport) *cluster {
	t.Helper()
	dir := t.TempDir()
	c := &cluster{t: t, dir: dir,
		streamDir: filepath.Join(dir, "primary"),
		mirrorDir: filepath.Join(dir, "standby"),
	}
	if err := faultfs.OS.MkdirAll(c.streamDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var err error
	c.node, err = OpenNode("p1", filepath.Join(c.streamDir, NodeJournalName), RolePrimary, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.sbNode, err = OpenNode("s1", filepath.Join(dir, "standby-"+NodeJournalName), RoleStandby, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.standby, err = NewStandby(StandbyOptions{
		Node:       c.sbNode,
		Roots:      map[string]Root{"stream": {Dir: c.mirrorDir, Ext: ".wal"}},
		FollowRoot: "stream",
		OpenFollower: func(ctx context.Context, id, path string) (*stream.Follower, error) {
			return stream.OpenFollower(ctx, id, path, testStreamOptions())
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.transport = &localTransport{sb: c.standby, addr: "local"}
	if wrap != nil {
		c.transport = wrap(c.transport)
	}
	c.primary, err = NewPrimary(PrimaryOptions{
		Node:           c.node,
		Peers:          []Transport{c.transport},
		Sync:           sync,
		SyncTimeout:    5 * time.Second,
		RetryBase:      5 * time.Millisecond,
		RetryCap:       50 * time.Millisecond,
		DigestInterval: -1, // tests drive RefreshDigests directly
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.primary.Start()
	t.Cleanup(func() {
		c.primary.Close()
		c.standby.Close()
		c.node.Close()
		c.sbNode.Close()
	})
	return c
}

// openStream opens a primary-side stream wired into the shipper.
func (c *cluster) openStream(ctx context.Context, id string) *stream.Stream {
	c.t.Helper()
	path := filepath.Join(c.streamDir, id+".wal")
	opts := testStreamOptions()
	opts.FenceCheck = c.node.FenceCheck
	opts.OnAppend = c.primary.Hook("stream/"+id, path)
	s, err := stream.Open(ctx, id, path, opts)
	if err != nil {
		c.t.Fatal(err)
	}
	c.primary.Register("stream/"+id, path, s.JournalSeq(), func(ctx context.Context) (*LogDigest, error) {
		d, err := s.Digest(ctx)
		if err != nil {
			return nil, err
		}
		return &LogDigest{Seq: d.Seq, Rows: d.Rows, Window: d.Window, Risk: d.Risk}, nil
	})
	return s
}

func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (c *cluster) waitCaughtUp() {
	c.t.Helper()
	waitFor(c.t, "replication to catch up", func() bool { return c.primary.Lag() == 0 })
}

func TestNodeEpochLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, NodeJournalName)

	n, err := OpenNode("n1", path, RolePrimary, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Epoch() != 1 || n.Granted() != 1 {
		t.Fatalf("fresh primary epoch %d/%d, want 1/1", n.Granted(), n.Epoch())
	}
	if err := n.FenceCheck(); err != nil {
		t.Fatalf("fresh primary fenced: %v", err)
	}
	// Seeing a higher epoch demotes, durably.
	if err := n.Observe(3, "test"); err != nil {
		t.Fatal(err)
	}
	if err := n.FenceCheck(); !IsFenced(err) {
		t.Fatalf("demoted primary FenceCheck = %v, want *FencedError", err)
	}
	n.Close()

	// A restart cannot un-demote.
	n, err = OpenNode("n1", path, RolePrimary, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.FenceCheck(); !IsFenced(err) {
		t.Fatalf("restarted demoted primary FenceCheck = %v, want *FencedError", err)
	}
	// A stale fence token is rejected; a fresh one re-promotes.
	if err := n.Promote(3); !IsFenced(err) {
		t.Fatalf("Promote(3) after seeing 3 = %v, want *FencedError", err)
	}
	if err := n.Promote(4); err != nil {
		t.Fatal(err)
	}
	if err := n.FenceCheck(); err != nil {
		t.Fatalf("re-promoted node fenced: %v", err)
	}
	n.Close()

	// The grant survives another restart.
	n, err = OpenNode("n1", path, RolePrimary, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Granted() != 4 || n.Epoch() != 4 {
		t.Fatalf("restarted epoch %d/%d, want 4/4", n.Granted(), n.Epoch())
	}
	if err := n.FenceCheck(); err != nil {
		t.Fatalf("restarted promoted node fenced: %v", err)
	}
}

func TestShipAndFollow(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, false, nil)
	s := c.openStream(ctx, "trades")
	defer s.Close(ctx)

	if _, err := s.Append(ctx, "b1", testRows(0, 6)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, "b2", testRows(6, 4)); err != nil {
		t.Fatal(err)
	}
	c.waitCaughtUp()

	fol := c.standby.Follower("stream/trades")
	if fol == nil {
		t.Fatal("standby has no follower for the shipped stream")
	}
	if fol.Seq() != s.JournalSeq() {
		t.Fatalf("follower at seq %d, primary at %d", fol.Seq(), s.JournalSeq())
	}
	st := fol.Status(ctx)
	if st.Rows != 10 || st.Batches != 2 {
		t.Fatalf("follower status %+v, want 10 rows in 2 batches", st)
	}

	// The mirrored WAL is byte-identical to the primary's.
	want, err := faultfs.OS.ReadFile(filepath.Join(c.streamDir, "trades.wal"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := faultfs.OS.ReadFile(filepath.Join(c.mirrorDir, "trades.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("mirror differs from primary WAL: %d vs %d bytes", len(got), len(want))
	}

	// The follower's recomputed digest matches the primary's at the same
	// position — shipped digests report no divergence.
	c.primary.RefreshDigests(ctx)
	waitFor(t, "digest shipment", func() bool {
		st := c.standby.Status()
		return !st.LastShip.IsZero()
	})
	c.waitCaughtUp()
	pd, err := s.Digest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := fol.Digest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pd.Equal(fd) {
		t.Fatalf("digests diverge: primary %+v, follower %+v", pd, fd)
	}
	if d := c.standby.Diverged(); len(d) != 0 {
		t.Fatalf("standby reports divergence %v for identical state", d)
	}
	if d := c.primary.Status().Diverged; len(d) != 0 {
		t.Fatalf("primary recorded divergence %v for identical state", d)
	}
}

func TestShipFaultsConverge(t *testing.T) {
	ctx := context.Background()
	var ft *FaultTransport
	c := newCluster(t, false, func(inner Transport) Transport {
		ft = NewFaultTransport(inner)
		return ft
	})
	// Drop the first shipment, tear the second, duplicate the third: the
	// retry loop, the framing rules and the sequence check must absorb all
	// three without poisoning the mirror.
	ft.DropShip(1)
	ft.TruncateShip(2)
	ft.DupShip(3)

	s := c.openStream(ctx, "trades")
	defer s.Close(ctx)
	if _, err := s.Append(ctx, "b1", testRows(0, 6)); err != nil {
		t.Fatal(err)
	}
	c.waitCaughtUp()
	if ft.Ships() < 3 {
		t.Fatalf("only %d shipments; the armed faults did not all fire", ft.Ships())
	}

	fol := c.standby.Follower("stream/trades")
	if fol == nil || fol.Seq() != s.JournalSeq() {
		t.Fatalf("standby did not converge (follower %v)", fol)
	}
	want, _ := faultfs.OS.ReadFile(filepath.Join(c.streamDir, "trades.wal"))
	got, _ := faultfs.OS.ReadFile(filepath.Join(c.mirrorDir, "trades.wal"))
	if !bytes.Equal(want, got) {
		t.Fatal("mirror differs from primary WAL after injected faults")
	}
	if d := c.standby.Diverged(); len(d) != 0 {
		t.Fatalf("faults marked the standby diverged: %v", d)
	}
}

func TestSyncCommitAcksBeforeReturn(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, true, nil)
	s := c.openStream(ctx, "trades")
	defer s.Close(ctx)

	if _, err := s.Append(ctx, "b1", testRows(0, 6)); err != nil {
		t.Fatal(err)
	}
	// Synchronous commit: by the time Append returns, the standby has the
	// records durable — no waiting.
	if lag := c.primary.Lag(); lag != 0 {
		t.Fatalf("sync append returned with %d unacknowledged records", lag)
	}
	if fol := c.standby.Follower("stream/trades"); fol == nil || fol.Seq() != s.JournalSeq() {
		t.Fatal("standby behind after synchronous append")
	}
}

// deadTransport fails every shipment — a peer that is down.
type deadTransport struct{}

func (deadTransport) Ship(ctx context.Context, req *ShipRequest) (*ShipResponse, error) {
	return nil, errors.New("injected: peer down")
}
func (deadTransport) Addr() string { return "dead" }
func (deadTransport) Close() error { return nil }

func TestSyncCommitFailsAndRepairsWithoutFollower(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	node, err := OpenNode("p1", filepath.Join(dir, NodeJournalName), RolePrimary, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	p, err := NewPrimary(PrimaryOptions{
		Node:           node,
		Peers:          []Transport{deadTransport{}},
		Sync:           true,
		SyncTimeout:    50 * time.Millisecond,
		RetryBase:      5 * time.Millisecond,
		DigestInterval: -1,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Close()

	path := filepath.Join(dir, "trades.wal")
	opts := testStreamOptions()
	opts.FenceCheck = node.FenceCheck
	opts.OnAppend = p.Hook("stream/trades", path)
	// With no follower reachable even the create record cannot commit: the
	// stream never opens, and nothing it wrote survives.
	if _, err := stream.Open(ctx, "trades", path, opts); err == nil {
		t.Fatal("stream.Open committed a record with no follower acknowledging it")
	} else {
		var se *SyncError
		if !errors.As(err, &se) {
			t.Fatalf("Open error %v, want a wrapped *SyncError", err)
		}
	}
}

// intentDigest reads the pending release intent recorded in a WAL.
func intentDigest(t *testing.T, path string) (string, int) {
	t.Helper()
	it, err := journal.RecordsIn(context.Background(), faultfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	digest, rows := "", 0
	for it.Next() {
		rec := it.Record()
		if rec.Type != "intent" {
			continue
		}
		var p struct {
			Rows   int    `json:"rows"`
			Digest string `json:"digest"`
		}
		if err := rec.Decode(&p); err != nil {
			t.Fatal(err)
		}
		digest, rows = p.Digest, p.Rows
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return digest, rows
}

// TestFailoverMidIntent is the acceptance scenario: the primary dies
// between journaling a release intent and publishing it, the standby is
// promoted with a higher fence, completes the very same release
// byte-identically through the normal recovery path, and the demoted
// primary's subsequent writes fail with the typed fencing error.
func TestFailoverMidIntent(t *testing.T) {
	ctx := context.Background()
	var crashed bool
	var mu sync.Mutex
	c := newCluster(t, true, nil)

	// Wire the stream through a hook that "crashes" the primary when the
	// publish record tries to commit: the intent before it has shipped
	// (synchronous commit), the publish has not — exactly the SIGKILL
	// window between intent and publish.
	id := "trades"
	path := filepath.Join(c.streamDir, id+".wal")
	opts := testStreamOptions()
	opts.FenceCheck = c.node.FenceCheck
	inner := c.primary.Hook("stream/"+id, path)
	opts.OnAppend = func(seq int, line []byte) error {
		mu.Lock()
		armed := crashed
		mu.Unlock()
		if armed && bytes.Contains(line, []byte(`"type":"publish"`)) {
			return errors.New("injected crash before publish")
		}
		return inner(seq, line)
	}
	s, err := stream.Open(ctx, id, path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(ctx)
	c.primary.Register("stream/"+id, path, s.JournalSeq(), func(ctx context.Context) (*LogDigest, error) {
		d, err := s.Digest(ctx)
		if err != nil {
			return nil, err
		}
		return &LogDigest{Seq: d.Seq, Rows: d.Rows, Window: d.Window, Risk: d.Risk}, nil
	})

	if _, err := s.Append(ctx, "b1", testRows(0, 6)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	crashed = true
	mu.Unlock()
	if _, err := s.Release(ctx); err == nil {
		t.Fatal("release completed through the injected crash")
	}
	// The publish record was truncated by Repair; the intent is the
	// primary WAL's last word, and the standby mirrors it exactly.
	c.waitCaughtUp()
	wantDigest, wantRows := intentDigest(t, path)
	if wantDigest == "" {
		t.Fatal("no intent record in the primary WAL")
	}
	gotDigest, _ := intentDigest(t, filepath.Join(c.mirrorDir, id+".wal"))
	if gotDigest != wantDigest {
		t.Fatalf("mirrored intent digest %q, want %q", gotDigest, wantDigest)
	}

	// Promote the standby with a fence above every epoch it has seen.
	fence := c.sbNode.Epoch() + 1
	if err := c.standby.Promote(ctx, fence); err != nil {
		t.Fatal(err)
	}
	// Promotion is the normal startup recovery over the mirrored WAL: the
	// pending intent completes into a published release.
	pOpts := testStreamOptions()
	pOpts.FenceCheck = c.sbNode.FenceCheck
	ps, err := stream.Open(ctx, id, filepath.Join(c.mirrorDir, id+".wal"), pOpts)
	if err != nil {
		t.Fatalf("promoted open: %v", err)
	}
	defer ps.Close(ctx)
	info, err := ps.Release(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Digest != wantDigest || info.Rows != wantRows {
		t.Fatalf("promoted release %+v, want digest %q rows %d", info, wantDigest, wantRows)
	}
	b, err := ps.ReleaseBytes(info)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	if hex.EncodeToString(sum[:]) != wantDigest {
		t.Fatal("promoted release bytes contradict the intent digest")
	}
	// Exactly once: re-requesting serves the same release, not a new one.
	again, err := ps.Release(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if again.Seq != info.Seq || again.Digest != info.Digest {
		t.Fatalf("re-served release %+v, want %+v", again, info)
	}

	// The demoted primary learns its place through the ship channel (the
	// promoted standby refuses its shipments), and every write path fails
	// with the typed fencing error.
	mu.Lock()
	crashed = false
	mu.Unlock()
	c.primary.RefreshDigests(ctx) // wakes the ship loop
	waitFor(t, "primary demotion", func() bool { return IsFenced(c.node.FenceCheck()) })
	if _, err := s.Append(ctx, "b2", testRows(6, 4)); !IsFenced(err) {
		t.Fatalf("demoted primary Append = %v, want *FencedError", err)
	}
	if _, err := s.Release(ctx); !IsFenced(err) {
		t.Fatalf("demoted primary Release = %v, want *FencedError", err)
	}
	// A demoted primary restarting with that pending intent must refuse to
	// reopen the stream — completing the publish would double-release.
	s.Close(ctx)
	rOpts := testStreamOptions()
	rOpts.FenceCheck = c.node.FenceCheck
	if rs, err := stream.Open(ctx, id, path, rOpts); err == nil {
		rs.Close(ctx)
		t.Fatal("demoted primary reopened a stream with a pending intent")
	} else if !IsFenced(err) {
		t.Fatalf("demoted reopen error %v, want *FencedError", err)
	}
}

func TestStandbyRejectsStaleEpochAndDivergenceIsSticky(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, false, nil)
	s := c.openStream(ctx, "trades")
	defer s.Close(ctx)
	if _, err := s.Append(ctx, "b1", testRows(0, 6)); err != nil {
		t.Fatal(err)
	}
	c.waitCaughtUp()

	// A shipment from a lower epoch than the standby has seen is fenced.
	if err := c.sbNode.Observe(9, "test"); err != nil {
		t.Fatal(err)
	}
	_, err := c.standby.HandleShip(ctx, &ShipRequest{Primary: "old", Epoch: 1})
	if !IsFenced(err) {
		t.Fatalf("stale-epoch shipment = %v, want *FencedError", err)
	}

	// A digest that contradicts the replayed state marks the log diverged,
	// stickily.
	fol := c.standby.Follower("stream/trades")
	resp, err := c.standby.HandleShip(ctx, &ShipRequest{Primary: "p1", Epoch: 9, Digests: []LogDigest{{
		Log: "stream/trades", Seq: fol.Seq(), Rows: 6,
		Window: "0000000000000000000000000000000000000000000000000000000000000000",
		Risk:   "0000000000000000000000000000000000000000000000000000000000000000",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Diverged) != 1 || resp.Diverged[0] != "stream/trades" {
		t.Fatalf("diverged = %v, want [stream/trades]", resp.Diverged)
	}
	resp, err = c.standby.HandleShip(ctx, &ShipRequest{Primary: "p1", Epoch: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Diverged) != 1 {
		t.Fatalf("divergence not sticky: %v", resp.Diverged)
	}
}

func TestStandbyRecoverResumes(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, false, nil)
	s := c.openStream(ctx, "trades")
	defer s.Close(ctx)
	if _, err := s.Append(ctx, "b1", testRows(0, 6)); err != nil {
		t.Fatal(err)
	}
	c.waitCaughtUp()
	seq := c.standby.Follower("stream/trades").Seq()
	c.standby.Close()

	// A restarted standby picks the mirror back up from its files alone.
	sb2, err := NewStandby(StandbyOptions{
		Node:       c.sbNode,
		Roots:      map[string]Root{"stream": {Dir: c.mirrorDir, Ext: ".wal"}},
		FollowRoot: "stream",
		OpenFollower: func(ctx context.Context, id, path string) (*stream.Follower, error) {
			return stream.OpenFollower(ctx, id, path, testStreamOptions())
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sb2.Close()
	if err := sb2.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	fol := sb2.Follower("stream/trades")
	if fol == nil || fol.Seq() != seq {
		t.Fatalf("recovered standby follower %v, want seq %d", fol, seq)
	}
	// Duplicate frames below the durable floor are absorbed silently.
	data, err := faultfs.OS.ReadFile(filepath.Join(c.mirrorDir, "trades.wal"))
	if err != nil {
		t.Fatal(err)
	}
	first := data[:bytes.IndexByte(data, '\n')]
	resp, err := sb2.HandleShip(ctx, &ShipRequest{Primary: "p1", Epoch: 1, Frames: []Frame{
		{Log: "stream/trades", Seq: 1, Line: first},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Acked["stream/trades"] != seq {
		t.Fatalf("ack after duplicate = %d, want %d", resp.Acked["stream/trades"], seq)
	}
	after, _ := faultfs.OS.ReadFile(filepath.Join(c.mirrorDir, "trades.wal"))
	if !bytes.Equal(data, after) {
		t.Fatal("duplicate frame mutated the mirror")
	}
}

func TestStandbyRejectsGapsAndCorruptFrames(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, false, nil)
	s := c.openStream(ctx, "trades")
	defer s.Close(ctx)
	if _, err := s.Append(ctx, "b1", testRows(0, 6)); err != nil {
		t.Fatal(err)
	}
	c.waitCaughtUp()
	seq := c.standby.Follower("stream/trades").Seq()

	// A gapped frame is not applied and not acked past the floor.
	resp, err := c.standby.HandleShip(ctx, &ShipRequest{Primary: "p1", Epoch: 1, Frames: []Frame{
		{Log: "stream/trades", Seq: seq + 5, Line: []byte("deadbeef {}")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Acked["stream/trades"] != seq {
		t.Fatalf("gap advanced the ack to %d", resp.Acked["stream/trades"])
	}
	// A corrupt frame at the right sequence is rejected by the CRC.
	resp, err = c.standby.HandleShip(ctx, &ShipRequest{Primary: "p1", Epoch: 1, Frames: []Frame{
		{Log: "stream/trades", Seq: seq + 1, Line: []byte("deadbeef {\"broken\":true}")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Acked["stream/trades"] != seq {
		t.Fatalf("corrupt frame advanced the ack to %d", resp.Acked["stream/trades"])
	}
	if d := c.standby.Diverged(); len(d) != 0 {
		t.Fatalf("transport corruption must not mark divergence, got %v", d)
	}
	// Path-escaping log names are refused outright.
	resp, err = c.standby.HandleShip(ctx, &ShipRequest{Primary: "p1", Epoch: 1, Frames: []Frame{
		{Log: "stream/../evil", Seq: 1, Line: []byte("deadbeef {}")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.Acked["stream/../evil"]; ok {
		t.Fatal("standby acked a path-escaping log name")
	}
}
