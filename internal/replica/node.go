package replica

import (
	"fmt"
	"sync"

	"vadasa/internal/faultfs"
	"vadasa/internal/journal"
)

// Role is a node's replication role.
type Role string

const (
	// RolePrimary accepts writes and ships its journals.
	RolePrimary Role = "primary"
	// RoleStandby mirrors a primary's journals and serves reads.
	RoleStandby Role = "standby"
)

// TypeEpoch is the journal record type of the replication-epoch journal:
// one record per epoch transition, the same restart-floor discipline
// internal/dist uses for shard leases.
const TypeEpoch journal.Type = "epoch"

// epochPayload is the journaled epoch transition. Action "grant" records
// this node acting as primary under Epoch (startup or promotion); action
// "observe" records an epoch seen from elsewhere (a shipping primary, or
// a fencing rejection). On restart the maximum over all records is the
// floor no future grant may step under.
type epochPayload struct {
	Epoch  uint64 `json:"epoch"`
	Action string `json:"action"` // "grant" or "observe"
	Cause  string `json:"cause,omitempty"`
}

// Node is the fencing authority of one vadasad process: it persists the
// replication epoch in a dedicated journal (NodeJournalName, deliberately
// not matching the stream registry's *.wal glob) and answers the single
// question every write path asks — "may this node still act as primary?"
type Node struct {
	mu   sync.Mutex
	id   string
	path string
	w    *journal.Writer

	role  Role
	grant uint64 // highest epoch this node was granted (0 = never primary)
	seen  uint64 // highest epoch seen anywhere (>= grant)
}

// NodeJournalName is the epoch journal's file name within the state
// directory.
const NodeJournalName = "replica.journal"

// OpenNode opens (or creates) the epoch journal at path and establishes
// the node's fencing state. A fresh primary grants itself epoch 1; a
// restarting primary keeps its last granted epoch unless a higher epoch
// was observed in the meantime — in which case it comes back *fenced* and
// refuses writes until promoted with a fresh fence token.
func OpenNode(id string, path string, role Role, fs faultfs.FS) (*Node, error) {
	if fs == nil {
		fs = faultfs.OS
	}
	if role != RolePrimary && role != RoleStandby {
		return nil, fmt.Errorf("replica: unknown role %q", role)
	}
	n := &Node{id: id, path: path, role: role}
	cfg := journal.Config{FS: fs}
	if f, err := fs.Open(path); err == nil {
		f.Close()
		w, scan, oerr := journal.OpenAppendWith(path, cfg)
		if oerr != nil {
			return nil, fmt.Errorf("replica: opening epoch journal: %w", oerr)
		}
		n.w = w
		for _, rec := range scan.Records {
			var p epochPayload
			if err := rec.Decode(&p); err != nil {
				w.Close()
				return nil, err
			}
			if p.Epoch > n.seen {
				n.seen = p.Epoch
			}
			if p.Action == "grant" && p.Epoch > n.grant {
				n.grant = p.Epoch
			}
		}
	} else {
		w, cerr := journal.CreateWith(path, cfg)
		if cerr != nil {
			return nil, fmt.Errorf("replica: creating epoch journal: %w", cerr)
		}
		n.w = w
	}
	if role == RolePrimary && n.seen == 0 {
		// First boot as primary: grant epoch 1. A restarting primary keeps
		// its journaled grant; one that was demoted while down (an observe
		// record outranks its grant) comes back fenced and stays fenced
		// until promoted with a fresh token.
		if err := n.appendLocked(epochPayload{Epoch: 1, Action: "grant", Cause: "startup"}); err != nil {
			n.w.Close()
			return nil, err
		}
		n.grant, n.seen = 1, 1
	}
	return n, nil
}

func (n *Node) appendLocked(p epochPayload) error {
	if err := n.w.Append(TypeEpoch, p); err != nil {
		if rerr := n.w.Repair(); rerr != nil {
			return fmt.Errorf("replica: epoch journal append (repair also failed: %v): %w", rerr, err)
		}
		return fmt.Errorf("replica: epoch journal append: %w", err)
	}
	return nil
}

// ID returns the node's identifier.
func (n *Node) ID() string { return n.id }

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Epoch returns the highest epoch this node has seen.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seen
}

// Granted returns this node's own epoch (its last grant; 0 if never
// primary).
func (n *Node) Granted() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.grant
}

// FenceCheck answers whether the node may act as primary right now: nil
// when it holds the highest epoch it has ever seen, a *FencedError
// otherwise. Stream options take exactly this function, so a demoted
// primary's appends and publishes fail typed.
func (n *Node) FenceCheck() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RolePrimary && n.grant == n.seen && n.grant > 0 {
		return nil
	}
	return &FencedError{Epoch: n.grant, Seen: n.seen}
}

// Observe records an epoch seen elsewhere. Seeing a higher epoch than our
// own grant while primary is a demotion: the observation is persisted
// before it takes effect, so a restart cannot un-demote the node.
func (n *Node) Observe(epoch uint64, cause string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if epoch <= n.seen {
		return nil
	}
	if err := n.appendLocked(epochPayload{Epoch: epoch, Action: "observe", Cause: cause}); err != nil {
		return err
	}
	n.seen = epoch
	return nil
}

// Promote grants this node the fence token and makes it primary. The
// token must be strictly greater than every epoch the node has seen —
// callers obtain it out of band (the operator, or max(seen)+1 from
// /replstatus) — and the grant is journaled before the role changes, so
// the promotion survives a crash.
func (n *Node) Promote(fence uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if fence <= n.seen {
		return &FencedError{Epoch: fence, Seen: n.seen}
	}
	if err := n.appendLocked(epochPayload{Epoch: fence, Action: "grant", Cause: "promote"}); err != nil {
		return err
	}
	n.grant, n.seen = fence, fence
	n.role = RolePrimary
	return nil
}

// Close closes the epoch journal.
func (n *Node) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.w.Close()
}
