package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Transport carries shipments to one standby. Implementations must be safe
// for concurrent use. A *FencedError return means the standby holds a
// higher epoch — the sender must demote itself; any other error means the
// shipment's fate is unknown and the sender retries (frames are idempotent
// on the receiver, so re-delivery is safe).
type Transport interface {
	// Ship leaves the process boundary: every frame shipped is a
	// confidentiality sink for the conftaint analyzer.
	//
	//conftaint:sink
	Ship(ctx context.Context, req *ShipRequest) (*ShipResponse, error)
	Addr() string
	Close() error
}

// HTTPTransport ships to a vadasad standby's POST /repl/ship endpoint.
type HTTPTransport struct {
	base   string
	client *http.Client
}

// NewHTTPTransport builds a transport for a standby at base — a URL like
// "http://host:port" (a bare host:port is accepted and prefixed). client
// may be nil, selecting a private keep-alive client; per-call deadlines
// come from the context.
func NewHTTPTransport(base string, client *http.Client) *HTTPTransport {
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 2,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	return &HTTPTransport{base: base, client: client}
}

// Addr implements Transport.
func (h *HTTPTransport) Addr() string { return h.base }

// Close implements Transport.
func (h *HTTPTransport) Close() error {
	h.client.CloseIdleConnections()
	return nil
}

// Ship implements Transport. A 409 response carrying an epoch decodes to
// *FencedError; anything else non-2xx is an opaque retryable failure.
func (h *HTTPTransport) Ship(ctx context.Context, sr *ShipRequest) (*ShipResponse, error) {
	body, err := json.Marshal(sr)
	if err != nil {
		return nil, fmt.Errorf("replica: encoding shipment: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/repl/ship", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: shipping to %s: %w", h.base, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusConflict {
		var fe struct {
			Error string `json:"error"`
			Epoch uint64 `json:"epoch"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&fe); err == nil && fe.Epoch > 0 {
			return nil, &FencedError{Epoch: sr.Epoch, Seen: fe.Epoch}
		}
		return nil, fmt.Errorf("replica: %s refused shipment with 409", h.base)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: %s answered %d", h.base, resp.StatusCode)
	}
	var out ShipResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("replica: %s: corrupt ship response: %w", h.base, err)
	}
	return &out, nil
}

// FaultTransport wraps a Transport and injects deterministic shipping
// faults, addressed by 1-based Ship count — the replication sibling of
// internal/dist's FaultTransport. Chaos tests use it to prove the
// protocol's idempotency: a dropped shipment is retried, a duplicated one
// is absorbed by the standby's sequence check, and a torn frame is
// rejected by the journal framing rules without poisoning the mirror.
type FaultTransport struct {
	inner Transport

	mu       sync.Mutex
	ships    int
	drop     map[int]bool
	dup      map[int]bool
	truncate map[int]bool
}

// NewFaultTransport wraps inner with an initially fault-free injector.
func NewFaultTransport(inner Transport) *FaultTransport {
	return &FaultTransport{
		inner:    inner,
		drop:     make(map[int]bool),
		dup:      make(map[int]bool),
		truncate: make(map[int]bool),
	}
}

// DropShip swallows the n-th Ship (1-based): the standby never sees it and
// the caller gets a retryable error.
func (f *FaultTransport) DropShip(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.drop[n] = true
}

// DupShip delivers the n-th Ship's request twice, returning the second
// response — the network-level duplicate the standby's per-log sequence
// check must absorb.
func (f *FaultTransport) DupShip(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dup[n] = true
}

// TruncateShip corrupts the n-th Ship in transit: every frame loses the
// second half of its line bytes (a torn write on the wire). The standby
// must reject the frames — CRC or sequence — and ack nothing.
func (f *FaultTransport) TruncateShip(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.truncate[n] = true
}

// Ships reports how many Ship invocations the transport has seen.
func (f *FaultTransport) Ships() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ships
}

// Ship implements Transport, applying any faults armed for this call.
func (f *FaultTransport) Ship(ctx context.Context, req *ShipRequest) (*ShipResponse, error) {
	f.mu.Lock()
	f.ships++
	n := f.ships
	drop := f.drop[n]
	dup := f.dup[n]
	trunc := f.truncate[n]
	f.mu.Unlock()

	if drop {
		return nil, fmt.Errorf("replica: injected drop of shipment %d to %s", n, f.Addr())
	}
	if trunc && len(req.Frames) > 0 {
		torn := *req
		torn.Frames = make([]Frame, len(req.Frames))
		for i, fr := range req.Frames {
			fr.Line = fr.Line[:len(fr.Line)/2]
			torn.Frames[i] = fr
		}
		req = &torn
	}
	resp, err := f.inner.Ship(ctx, req)
	if dup && err == nil {
		// Duplicate delivery: the standby sees the same frames again; its
		// sequence check skips them and the second response is returned.
		resp, err = f.inner.Ship(ctx, req)
	}
	return resp, err
}

// Addr implements Transport.
func (f *FaultTransport) Addr() string { return f.inner.Addr() }

// Close implements Transport.
func (f *FaultTransport) Close() error { return f.inner.Close() }
