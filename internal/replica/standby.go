package replica

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"vadasa/internal/faultfs"
	"vadasa/internal/journal"
	"vadasa/internal/stream"
)

// Root maps a log namespace to a local directory: a frame for
// "<root>/<name>" lands in Dir/<name><Ext>. The extensions mirror the
// primary's layout — stream WALs are "<id>.wal", job journals are
// "<id>.journal" — so a promoted standby's files are exactly where the
// normal startup recovery expects them.
type Root struct {
	Dir string
	Ext string
}

// FollowerFactory builds the read-only replay view over a mirrored stream
// WAL — on a server, a closure that rebuilds the stream Options from the
// WAL's create record exactly as startup recovery does, then calls
// stream.OpenFollower. A nil factory mirrors bytes only (still enough for
// a byte-identical promotion; divergence detection and read-only serving
// need the follower).
type FollowerFactory func(ctx context.Context, id, path string) (*stream.Follower, error)

// StandbyOptions tunes a Standby. Node and Roots are required.
type StandbyOptions struct {
	// Node is the fencing authority.
	Node *Node
	// Roots maps log namespaces ("stream", "jobs") to local directories.
	Roots map[string]Root
	// OpenFollower builds replay views for logs under FollowRoot.
	OpenFollower FollowerFactory
	// FollowRoot is the namespace whose logs get followers ("stream").
	FollowRoot string
	// FS is the filesystem mirrored journals are written through.
	FS faultfs.FS
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// flog is one mirrored journal on the standby.
type flog struct {
	name     string // "<root>/<name>"
	id       string // bare name
	root     string
	path     string
	f        faultfs.File
	seq      int // last durable, contiguous sequence
	follower *stream.Follower
	// materialized is the release sequence whose file was last regenerated
	// next to the mirror (release files do not ship; see materializeLocked).
	materialized int
	diverged     bool
	lastErr      string
}

// logName validates the bare log identifier inside a namespace: the same
// shape the server allows for stream IDs and job IDs, and in particular
// nothing that can escape the root directory.
var logName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,127}$`)

// Standby receives shipments: it validates every frame with the journal's
// own framing rules, appends it to the mirrored file, fsyncs once per log
// per shipment, and only then acknowledges and feeds the record to the
// log's follower. The mirrored files are the real recovery substrate —
// Promote closes the followers and the normal startup recovery path takes
// over, byte-for-byte on the same WALs the primary wrote.
type Standby struct {
	opts StandbyOptions
	fs   faultfs.FS

	mu       sync.Mutex
	logs     map[string]*flog
	promoted bool
	closed   bool
	lastShip time.Time
	shipFrom string
	frames   int64 // total frames accepted
}

// NewStandby builds a standby receiver.
func NewStandby(opts StandbyOptions) (*Standby, error) {
	if opts.Node == nil {
		return nil, fmt.Errorf("replica: StandbyOptions.Node is required")
	}
	if len(opts.Roots) == 0 {
		return nil, fmt.Errorf("replica: StandbyOptions.Roots is required")
	}
	fs := opts.FS
	if fs == nil {
		fs = faultfs.OS
	}
	for name, r := range opts.Roots {
		if err := fs.MkdirAll(r.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("replica: creating %s root: %w", name, err)
		}
	}
	return &Standby{opts: opts, fs: fs, logs: make(map[string]*flog)}, nil
}

func (sb *Standby) logf(format string, args ...any) {
	if sb.opts.Logf != nil {
		sb.opts.Logf(format, args...)
	}
}

// Recover reopens every mirrored journal found under the roots — a
// restarting standby resumes exactly where its files left off, including
// repairing torn tails from a crash mid-append.
func (sb *Standby) Recover(ctx context.Context) error {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	for rootName, root := range sb.opts.Roots {
		paths, err := sb.fs.Glob(filepath.Join(root.Dir, "*"+root.Ext))
		if err != nil {
			return fmt.Errorf("replica: scanning %s root: %w", rootName, err)
		}
		sort.Strings(paths)
		for _, path := range paths {
			if filepath.Base(path) == NodeJournalName {
				continue
			}
			id := strings.TrimSuffix(filepath.Base(path), root.Ext)
			if !logName.MatchString(id) {
				continue
			}
			name := rootName + "/" + id
			if _, ok := sb.logs[name]; ok {
				continue
			}
			fl, err := sb.openLogLocked(ctx, rootName, id)
			if err != nil {
				sb.logf("replica: recovering mirror %s: %v", name, err)
				continue
			}
			sb.logs[name] = fl
		}
	}
	return nil
}

// openLogLocked opens (or creates) the mirrored file for one log,
// scanning it for the durable sequence floor and repairing torn tails,
// then attaches a follower when the namespace calls for one.
func (sb *Standby) openLogLocked(ctx context.Context, rootName, id string) (*flog, error) {
	root, ok := sb.opts.Roots[rootName]
	if !ok {
		return nil, fmt.Errorf("replica: unknown log root %q", rootName)
	}
	if !logName.MatchString(id) {
		return nil, fmt.Errorf("replica: invalid log name %q", id)
	}
	fl := &flog{name: rootName + "/" + id, id: id, root: rootName, path: filepath.Join(root.Dir, id+root.Ext)}
	if _, err := sb.fs.ReadFile(fl.path); err == nil {
		it, err := journal.RecordsIn(ctx, sb.fs, fl.path)
		if err != nil {
			return nil, err
		}
		for it.Next() {
		}
		if err := it.Err(); err != nil {
			it.Close()
			return nil, err
		}
		valid, seq, torn := it.Valid(), it.LastSeq(), it.Torn()
		it.Close()
		f, err := sb.fs.OpenFile(fl.path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		if torn {
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return nil, fmt.Errorf("replica: truncating torn mirror tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("replica: syncing mirror repair: %w", err)
			}
		}
		if _, err := f.Seek(valid, 0); err != nil {
			f.Close()
			return nil, err
		}
		fl.f, fl.seq = f, seq
	} else {
		f, err := sb.fs.OpenFile(fl.path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return nil, fmt.Errorf("replica: creating mirror: %w", err)
		}
		if dir, derr := sb.fs.Open(root.Dir); derr == nil {
			dir.Sync()
			dir.Close()
		}
		fl.f = f
	}
	sb.attachFollowerLocked(ctx, fl)
	return fl, nil
}

// attachFollowerLocked (re)builds the follower over the mirrored file.
// Failure is not fatal — the standby keeps mirroring bytes and retries on
// the next shipment — but it is loud, because without a follower there is
// no divergence detection and no read-only serving for that log.
func (sb *Standby) attachFollowerLocked(ctx context.Context, fl *flog) {
	if fl.follower != nil || fl.root != sb.opts.FollowRoot || sb.opts.OpenFollower == nil || fl.seq == 0 {
		return
	}
	fol, err := sb.opts.OpenFollower(ctx, fl.id, fl.path)
	if err != nil {
		fl.lastErr = err.Error()
		sb.logf("replica: follower for %s: %v", fl.name, err)
		return
	}
	fl.follower = fol
	fl.lastErr = ""
	sb.materializeLocked(fl)
}

// materializeLocked regenerates the published release's file next to the
// mirrored WAL. Journals ship, release files do not; without the file a
// promotion's stream recovery (which verifies it against the publish
// record) would fail. Running right after the publish record is applied —
// while the replayed window still matches the journaled digest — makes the
// regeneration exact. A mirror that cannot produce the file is not a
// faithful standby: that is divergence, not a transient fault.
func (sb *Standby) materializeLocked(fl *flog) {
	pub := fl.follower.Published()
	if pub == nil || pub.Seq == fl.materialized {
		return
	}
	if err := fl.follower.MaterializePublished(filepath.Dir(fl.path)); err != nil {
		sb.logf("replica: %s DIVERGED: %v", fl.name, err)
		fl.diverged = true
		fl.lastErr = err.Error()
		return
	}
	fl.materialized = pub.Seq
}

// HandleShip is the receiver half of the protocol. It enforces the epoch
// fence, makes every acceptable frame durable, advances per-log acks, and
// checks any piggybacked digests against the local replay state.
func (sb *Standby) HandleShip(ctx context.Context, req *ShipRequest) (*ShipResponse, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.closed {
		return nil, fmt.Errorf("replica: standby is closed")
	}
	if sb.promoted {
		return nil, &FencedError{Epoch: req.Epoch, Seen: sb.opts.Node.Epoch()}
	}
	if seen := sb.opts.Node.Epoch(); req.Epoch < seen {
		return nil, &FencedError{Epoch: req.Epoch, Seen: seen}
	}
	if err := sb.opts.Node.Observe(req.Epoch, "ship from "+req.Primary); err != nil {
		return nil, err
	}
	sb.lastShip = time.Now()
	sb.shipFrom = req.Primary

	// Group frames per log, preserving arrival order (the primary ships
	// each log's frames in sequence order).
	order := make([]string, 0, 4)
	byLog := make(map[string][]Frame)
	for _, fr := range req.Frames {
		if _, ok := byLog[fr.Log]; !ok {
			order = append(order, fr.Log)
		}
		byLog[fr.Log] = append(byLog[fr.Log], fr)
	}

	resp := &ShipResponse{Epoch: sb.opts.Node.Epoch(), Acked: make(map[string]int)}
	for _, name := range order {
		fl, err := sb.logLocked(ctx, name)
		if err != nil {
			sb.logf("replica: shipment for %s refused: %v", name, err)
			continue
		}
		sb.applyFramesLocked(ctx, fl, byLog[name])
	}
	for _, d := range req.Digests {
		sb.checkDigestLocked(ctx, d)
	}
	// Ack every known log, not just the touched ones: a primary that
	// restarted learns its peers' positions from the first response.
	for name, fl := range sb.logs {
		resp.Acked[name] = fl.seq
		if fl.diverged {
			resp.Diverged = append(resp.Diverged, name)
		}
	}
	sort.Strings(resp.Diverged)
	return resp, nil
}

func (sb *Standby) logLocked(ctx context.Context, name string) (*flog, error) {
	if fl, ok := sb.logs[name]; ok {
		return fl, nil
	}
	rootName, id, ok := strings.Cut(name, "/")
	if !ok {
		return nil, fmt.Errorf("replica: malformed log name %q", name)
	}
	fl, err := sb.openLogLocked(ctx, rootName, id)
	if err != nil {
		return nil, err
	}
	sb.logs[name] = fl
	return fl, nil
}

// applyFramesLocked validates, appends and fsyncs one log's frames, then
// replays the accepted records into the follower. Duplicates (seq at or
// below the durable floor) are skipped; a gap or a corrupt frame stops
// the log's batch — nothing past it is acked, and the primary re-ships
// from the ack point.
func (sb *Standby) applyFramesLocked(ctx context.Context, fl *flog, frames []Frame) {
	var accepted []journal.Record
	var buf []byte
	next := fl.seq + 1
	for _, fr := range frames {
		if fr.Seq <= fl.seq {
			continue // duplicate delivery: already durable
		}
		if fr.Seq != next {
			fl.lastErr = fmt.Sprintf("gap: frame %d after %d", fr.Seq, next-1)
			break
		}
		rec, ok := journal.ParseLine(fr.Line, fr.Seq)
		if !ok {
			fl.lastErr = fmt.Sprintf("corrupt frame at seq %d", fr.Seq)
			sb.logf("replica: %s: rejecting corrupt frame at seq %d", fl.name, fr.Seq)
			break
		}
		buf = append(buf, fr.Line...)
		buf = append(buf, '\n')
		accepted = append(accepted, rec)
		next++
	}
	if len(accepted) == 0 {
		return
	}
	if _, err := fl.f.Write(buf); err != nil {
		fl.lastErr = err.Error()
		sb.repairLocked(ctx, fl)
		return
	}
	if err := fl.f.Sync(); err != nil {
		fl.lastErr = err.Error()
		sb.repairLocked(ctx, fl)
		return
	}
	fl.seq = accepted[len(accepted)-1].Seq
	fl.lastErr = ""
	sb.frames += int64(len(accepted))

	if fl.follower == nil {
		sb.attachFollowerLocked(ctx, fl) // replays the whole file, new records included
		return
	}
	for _, rec := range accepted {
		if err := fl.follower.Apply(ctx, rec); err != nil {
			// The mirrored journal holds a record the replay rejects: the
			// replica's state machine disagrees with the primary's. That is
			// divergence, not a transient fault.
			sb.logf("replica: %s DIVERGED: replaying seq %d: %v", fl.name, rec.Seq, err)
			fl.diverged = true
			fl.lastErr = err.Error()
			fl.follower.Close()
			fl.follower = nil
			return
		}
		sb.materializeLocked(fl)
	}
}

// repairLocked truncates a mirrored file back to its durable floor after
// a failed append, reopening the handle — the mirror-side analogue of
// journal.Writer.Repair.
func (sb *Standby) repairLocked(ctx context.Context, fl *flog) {
	fl.f.Close()
	name, id, root := fl.name, fl.id, fl.root
	reopened, err := sb.openLogLocked(ctx, root, id)
	if err != nil {
		sb.logf("replica: repairing mirror %s: %v", name, err)
		delete(sb.logs, name)
		return
	}
	if fl.follower != nil && reopened.follower == nil {
		reopened.follower = fl.follower
	}
	reopened.diverged = fl.diverged
	sb.logs[name] = reopened
}

// checkDigestLocked compares a primary digest against the local replay
// state. Only an exact sequence match is comparable; a mismatch at the
// same sequence is divergence and is sticky until an operator rebuilds
// the mirror.
func (sb *Standby) checkDigestLocked(ctx context.Context, d LogDigest) {
	fl, ok := sb.logs[d.Log]
	if !ok || fl.follower == nil || fl.seq != d.Seq {
		return
	}
	got, err := fl.follower.Digest(ctx)
	if err != nil {
		sb.logf("replica: digest of %s at seq %d: %v", d.Log, d.Seq, err)
		return
	}
	if got.Rows != d.Rows || got.Window != d.Window || got.Risk != d.Risk {
		sb.logf("replica: %s DIVERGED at seq %d: rows %d/%d window %.12s…/%.12s… risk %.12s…/%.12s…",
			d.Log, d.Seq, got.Rows, d.Rows, got.Window, d.Window, got.Risk, d.Risk)
		fl.diverged = true
	}
}

// Follower returns the replay view of one mirrored stream (nil if the log
// is unknown or has no follower) — the standby's read-only serving path.
func (sb *Standby) Follower(name string) *stream.Follower {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if fl, ok := sb.logs[name]; ok {
		return fl.follower
	}
	return nil
}

// Followers lists the mirrored logs under the follow root that currently
// have a replay view, sorted by name.
func (sb *Standby) Followers() []*stream.Follower {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	names := make([]string, 0, len(sb.logs))
	for name, fl := range sb.logs {
		if fl.follower != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]*stream.Follower, 0, len(names))
	for _, name := range names {
		out = append(out, sb.logs[name].follower)
	}
	return out
}

// Diverged lists logs whose state digests contradicted the primary's.
func (sb *Standby) Diverged() []string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	var out []string
	for name, fl := range sb.logs {
		if fl.diverged {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Promote fences the standby into a primary: the grant (which must
// outrank every seen epoch) is journaled, the followers and mirror
// handles are closed, and further shipments are rejected with
// *FencedError. The caller then runs the NORMAL startup recovery over the
// mirrored directories — stream.Open completes any release caught between
// intent and publish, exactly as it would after a local crash; there is
// no promotion-specific state machine.
func (sb *Standby) Promote(ctx context.Context, fence uint64) error {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.promoted {
		return fmt.Errorf("replica: already promoted (epoch %d)", sb.opts.Node.Granted())
	}
	if err := sb.opts.Node.Promote(fence); err != nil {
		return err
	}
	sb.closeLogsLocked()
	sb.promoted = true
	return nil
}

// Close releases every mirror handle and follower without promoting;
// further shipments are refused with a retryable error.
func (sb *Standby) Close() {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.closed = true
	sb.closeLogsLocked()
}

func (sb *Standby) closeLogsLocked() {
	for _, fl := range sb.logs {
		if fl.follower != nil {
			fl.follower.Close()
			fl.follower = nil
		}
		if fl.f != nil {
			fl.f.Close()
			fl.f = nil
		}
	}
}

// LogStatus is one mirrored journal in StandbyStatus.
type LogStatus struct {
	Name      string `json:"name"`
	Seq       int    `json:"seq"`
	Follower  bool   `json:"follower"`
	Diverged  bool   `json:"diverged,omitempty"`
	LastError string `json:"lastError,omitempty"`
}

// StandbyStatus is the standby half of /replstatus.
type StandbyStatus struct {
	Promoted bool        `json:"promoted"`
	Frames   int64       `json:"frames"`
	LastShip time.Time   `json:"lastShip,omitzero"`
	ShipFrom string      `json:"shipFrom,omitempty"`
	Logs     []LogStatus `json:"logs,omitempty"`
	Diverged []string    `json:"diverged,omitempty"`
}

// Status snapshots the standby for observability.
func (sb *Standby) Status() StandbyStatus {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	st := StandbyStatus{Promoted: sb.promoted, Frames: sb.frames, LastShip: sb.lastShip, ShipFrom: sb.shipFrom}
	names := make([]string, 0, len(sb.logs))
	for name := range sb.logs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fl := sb.logs[name]
		st.Logs = append(st.Logs, LogStatus{
			Name: name, Seq: fl.seq, Follower: fl.follower != nil,
			Diverged: fl.diverged, LastError: fl.lastErr,
		})
		if fl.diverged {
			st.Diverged = append(st.Diverged, name)
		}
	}
	return st
}
