package replica

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkReplShipThroughput measures the asynchronous shipping pipeline
// end to end: journaled appends on the primary through the shipper, the
// framed transport, the standby's durable mirror write and the follower
// replay. The timer covers b.N appends plus the drain to Lag()==0, so the
// per-op figure is the pipeline's sustained cost per record, not just the
// primary-side journal write.
func BenchmarkReplShipThroughput(b *testing.B) {
	c := newCluster(b, false, nil)
	ctx := context.Background()
	s := c.openStream(ctx, "bench")
	rows := testRows(0, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(ctx, fmt.Sprintf("b%d", i), rows); err != nil {
			b.Fatal(err)
		}
	}
	c.waitCaughtUp()
}

// BenchmarkReplSyncAppendLatency measures a synchronous commit: each Append
// blocks until a standby has made the record durable and acked it, so the
// per-op figure is the full round-trip a -repl-sync deployment pays on the
// write path.
func BenchmarkReplSyncAppendLatency(b *testing.B) {
	c := newCluster(b, true, nil)
	ctx := context.Background()
	s := c.openStream(ctx, "bench")
	rows := testRows(0, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(ctx, fmt.Sprintf("b%d", i), rows); err != nil {
			b.Fatal(err)
		}
	}
}
