// Package replica implements warm-standby replication for the vadasad
// durability layer: a primary ships every committed journal record — job
// WALs and stream WALs alike — to one or more standbys over HTTP, and a
// standby maintains its state through the very same journal replay code
// paths that run at startup recovery. There is no second state machine:
// the unit of replication is the exact framed journal line (CRC prefix
// included), so a standby's mirrored WAL is byte-identical to the
// primary's, and promotion is nothing more than running the normal
// recovery path over files the node already has.
//
// Three mechanisms make failover safe:
//
//   - Epoch fencing. A monotonic replication epoch is persisted in a small
//     journal of its own. Promote requires a fence token strictly greater
//     than any epoch the node has seen, and a demoted primary's appends and
//     publishes fail with *FencedError — split-brain cannot double-publish
//     a release.
//   - Write-ahead shipping with acks. Frames carry per-log sequence
//     numbers; a standby accepts a frame only if the journal's own framing
//     rules (CRC-32C, strict sequence) accept it, appends it to the
//     mirrored file, fsyncs, and only then acknowledges. In synchronous
//     mode the primary's append does not commit until a follower has
//     acknowledged it.
//   - Divergence detection. The primary piggybacks SHA-256 state digests
//     (window bytes + risk vector bits at a journal position) on the ship
//     stream; a standby that replayed to the same position recomputes them
//     and reports `diverged` rather than silently serving wrong releases.
package replica

import (
	"errors"
	"fmt"
)

// Frame is one replicated journal record: the exact framed line bytes the
// primary's journal committed (CRC-32C prefix, no trailing newline). The
// standby re-validates the frame with journal.ParseLine before appending
// it, so corruption in transit can never enter a mirrored WAL.
type Frame struct {
	// Log names the journal the frame belongs to, as "<root>/<name>" —
	// e.g. "stream/trades" or "jobs/j-01HX...". The standby maps roots to
	// local directories and refuses path-escaping names.
	Log string `json:"log"`
	// Seq is the record's journal sequence number (1-based, per log).
	Seq int `json:"seq"`
	// Line is the framed record bytes. JSON base64-encodes it.
	Line []byte `json:"line"`
}

// LogDigest is a stream state digest piggybacked on the ship stream,
// tagged with the log it covers. The standby compares it only when its
// replay position equals Seq.
type LogDigest struct {
	Log    string `json:"log"`
	Seq    int    `json:"seq"`
	Rows   int    `json:"rows"`
	Window string `json:"window"`
	Risk   string `json:"risk"`
}

// ShipRequest is one batched shipment from primary to standby.
type ShipRequest struct {
	// Primary identifies the sending node (diagnostics only).
	Primary string `json:"primary"`
	// Epoch is the sender's replication epoch. A standby that has seen a
	// higher epoch refuses the shipment with a fencing error; a standby
	// that sees a higher epoch than its own adopts and persists it.
	Epoch uint64 `json:"epoch"`
	// Frames are the records, in per-log sequence order.
	Frames []Frame `json:"frames,omitempty"`
	// Digests are the primary's state digests for divergence detection.
	Digests []LogDigest `json:"digests,omitempty"`
}

// ShipResponse acknowledges a shipment.
type ShipResponse struct {
	// Epoch is the receiver's replication epoch.
	Epoch uint64 `json:"epoch"`
	// Acked maps each log touched by the request to the highest journal
	// sequence the standby has made durable — the primary's replication
	// ack point.
	Acked map[string]int `json:"acked,omitempty"`
	// Diverged lists logs whose recomputed state digest contradicted the
	// primary's.
	Diverged []string `json:"diverged,omitempty"`
}

// FencedError is the typed rejection of a write, shipment or promotion by
// the epoch fence: the acting node's epoch is not the highest the cluster
// has granted, so acting on its behalf could split the brain.
type FencedError struct {
	// Epoch is the acting node's own epoch (its last grant; 0 if never
	// granted one).
	Epoch uint64
	// Seen is the highest epoch the rejecting node has observed.
	Seen uint64
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("replica: fenced: epoch %d is stale (epoch %d has been granted)", e.Epoch, e.Seen)
}

// IsFenced reports whether err is (or wraps) a *FencedError.
func IsFenced(err error) bool {
	var fe *FencedError
	return errors.As(err, &fe)
}
