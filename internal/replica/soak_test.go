package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"vadasa/internal/stream"
)

// replSoakRun is one randomized primary-kill/promote-under-load round: a
// cluster with randomized commit mode and random ship-level faults takes a
// random write load, the primary is killed cold (no drain, no checkpoint),
// the standby is fenced into the primary role over whatever prefix it
// mirrored, and the promoted node must recover that prefix byte-identically
// and keep serving — while the demoted primary's writes fail fenced.
func replSoakRun(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	syncMode := rng.Intn(2) == 0
	var ft *FaultTransport
	c := newCluster(t, syncMode, func(tr Transport) Transport {
		ft = NewFaultTransport(tr)
		return ft
	})
	// Random ship-level faults across the run: drops, duplicates and torn
	// frames, each on its own ship index so every fault class is exercised
	// without stacking on one call.
	for i := 0; i < 6; i++ {
		n := 1 + rng.Intn(30)
		switch rng.Intn(3) {
		case 0:
			ft.DropShip(n)
		case 1:
			ft.DupShip(n)
		case 2:
			ft.TruncateShip(n)
		}
	}
	ctx := context.Background()
	s := c.openStream(ctx, "soak")

	nextRow, batch := 0, 0
	released, acked := 0, 0
	ops := 15 + rng.Intn(25)
	for op := 0; op < ops; op++ {
		switch {
		case rng.Intn(4) == 0 && nextRow > 0:
			info, err := s.Release(ctx)
			if err != nil {
				t.Fatalf("seed %d op %d: release: %v", seed, op, err)
			}
			released = info.Seq
			if rng.Intn(2) == 0 {
				if err := s.Ack(ctx, info.Seq); err != nil {
					t.Fatalf("seed %d op %d: ack: %v", seed, op, err)
				}
				acked = info.Seq
			}
		default:
			batch++
			rows := testRows(nextRow, 2*(1+rng.Intn(3)))
			_, err := s.Append(ctx, fmt.Sprintf("b%d", batch), rows)
			var se *SyncError
			if errors.As(err, &se) {
				// Synchronous commit lost its ack window to an injected
				// fault; the record was rolled back. Retrying the same
				// batch after the shipper recovers is the client contract.
				c.waitCaughtUp()
				_, err = s.Append(ctx, fmt.Sprintf("b%d", batch), rows)
			}
			if err != nil {
				t.Fatalf("seed %d op %d: append: %v", seed, op, err)
			}
			nextRow += len(rows)
		}
	}
	c.waitCaughtUp()
	if d := c.standby.Diverged(); len(d) != 0 {
		t.Fatalf("seed %d: standby diverged under faults: %v", seed, d)
	}

	// Kill the primary cold: the shipper dies with it; its stream is never
	// drained. The standby holds some committed prefix of the WAL.
	c.primary.Close()

	primaryWAL, err := os.ReadFile(filepath.Join(c.streamDir, "soak.wal"))
	if err != nil {
		t.Fatalf("seed %d: reading primary WAL: %v", seed, err)
	}
	mirrorWAL, err := os.ReadFile(filepath.Join(c.mirrorDir, "soak.wal"))
	if err != nil {
		t.Fatalf("seed %d: reading mirror WAL: %v", seed, err)
	}
	if !bytes.HasPrefix(primaryWAL, mirrorWAL) {
		t.Fatalf("seed %d: mirror is not a byte prefix of the primary WAL (%d vs %d bytes)",
			seed, len(mirrorWAL), len(primaryWAL))
	}

	fence := c.sbNode.Epoch() + 1
	if err := c.standby.Promote(ctx, fence); err != nil {
		t.Fatalf("seed %d: promote: %v", seed, err)
	}

	// The promoted node recovers the mirror through the normal startup
	// path: any pending intent completes exactly once, any published
	// release is re-served from the materialized file.
	opts := testStreamOptions()
	opts.FenceCheck = c.sbNode.FenceCheck
	ps, err := stream.Open(ctx, "soak", filepath.Join(c.mirrorDir, "soak.wal"), opts)
	if err != nil {
		t.Fatalf("seed %d: opening promoted stream: %v", seed, err)
	}
	defer ps.Close(ctx)
	if pub := ps.Published(); pub != nil {
		if _, err := ps.ReleaseBytes(pub); err != nil {
			t.Fatalf("seed %d: promoted release bytes: %v", seed, err)
		}
		if pub.Seq <= acked || pub.Seq > released {
			t.Fatalf("seed %d: promoted release seq %d outside (%d, %d]", seed, pub.Seq, acked, released)
		}
	}

	// The promoted node takes writes: the same load shape keeps working.
	for i := 0; i < 3; i++ {
		batch++
		rows := testRows(nextRow, 2)
		if _, err := ps.Append(ctx, fmt.Sprintf("b%d", batch), rows); err != nil {
			t.Fatalf("seed %d: promoted append: %v", seed, err)
		}
		nextRow += 2
	}
	if pub := ps.Published(); pub == nil {
		info, err := ps.Release(ctx)
		if err != nil {
			t.Fatalf("seed %d: promoted release: %v", seed, err)
		}
		if err := ps.Ack(ctx, info.Seq); err != nil {
			t.Fatalf("seed %d: promoted ack: %v", seed, err)
		}
	}

	// The demoted primary learns the new epoch (in production via the
	// fencing 409 on its next shipment) and must refuse every write.
	if err := c.node.Observe(fence, "soak promotion"); err != nil {
		t.Fatalf("seed %d: observe: %v", seed, err)
	}
	if _, err := s.Append(ctx, "after-demotion", testRows(nextRow, 2)); !IsFenced(err) {
		t.Fatalf("seed %d: demoted append error = %v, want fenced", seed, err)
	}
}

// TestReplSoak is the replication half of `make soak`: randomized
// primary-kill/promote-under-load rounds with fresh logged seeds, bounded
// by VADASA_SOAK_SECONDS of wall clock. Only runs when VADASA_SOAK is set
// so the tier-1 suite stays fast.
func TestReplSoak(t *testing.T) {
	if os.Getenv("VADASA_SOAK") == "" {
		t.Skip("set VADASA_SOAK=1 (or run `make soak`) to run the replication soak")
	}
	budget := 60 * time.Second
	if v := os.Getenv("VADASA_SOAK_SECONDS"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad VADASA_SOAK_SECONDS %q: %v", v, err)
		}
		budget = time.Duration(secs) * time.Second
	}
	deadline := time.Now().Add(budget)
	seed := int64(time.Now().UnixNano()) // soak explores; chaos tests pin seeds
	runs := 0
	for time.Now().Before(deadline) {
		seed++
		runs++
		t.Run(fmt.Sprintf("run%d_seed%d", runs, seed), func(t *testing.T) {
			replSoakRun(t, seed)
		})
	}
	t.Logf("soak: %d randomized failover runs in %v (last seed %d)", runs, budget, seed)
}
