package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"vadasa/internal/faultfs"
	"vadasa/internal/journal"
)

// DigestFunc produces the current state digest of one log — on a server,
// a closure over Stream.Digest. It is called from the primary's digest
// loop, never from the ship loop, so a synchronous append waiting for an
// ack can never deadlock against a digest computation that needs the
// stream's lock.
type DigestFunc func(ctx context.Context) (*LogDigest, error)

// SyncError is the typed failure of a synchronous commit: no follower
// acknowledged the record within the timeout. The journal append that
// carried the record fails, and the caller's Repair truncates it — the
// record never happened as far as clients are concerned. (If a follower
// applied the frame but its ack was lost, the mirror runs one record
// ahead; the divergence detector reports it rather than letting it fester.)
type SyncError struct {
	Log  string
	Seq  int
	Wait time.Duration
}

func (e *SyncError) Error() string {
	return fmt.Sprintf("replica: no follower acknowledged %s@%d within %s", e.Log, e.Seq, e.Wait)
}

// PrimaryOptions tunes the shipper. Zero values select defaults.
type PrimaryOptions struct {
	// Node is the fencing authority. Required.
	Node *Node
	// Peers are the standbys to ship to. At least one is required in
	// Sync mode.
	Peers []Transport
	// Sync makes every journal append wait until a follower has
	// acknowledged the record (or SyncTimeout passes, failing the
	// append).
	Sync bool
	// SyncTimeout bounds the synchronous-commit wait (default 5s).
	SyncTimeout time.Duration
	// LagMax, when positive, is the un-acked record count above which
	// ReadyErr reports the primary unhealthy (async mode's safety valve).
	LagMax int
	// BatchMax bounds frames per shipment (default 256).
	BatchMax int
	// RetryBase is the first retry backoff (default 50ms), doubling to
	// RetryCap (default 2s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// ShipTimeout bounds one shipment round-trip (default 10s).
	ShipTimeout time.Duration
	// DigestInterval is the cadence of the digest loop (default 2s;
	// negative disables the loop — tests drive RefreshDigests directly).
	DigestInterval time.Duration
	// FS is the filesystem journal files are read through (nil = real).
	FS faultfs.FS
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (o PrimaryOptions) syncTimeout() time.Duration {
	if o.SyncTimeout > 0 {
		return o.SyncTimeout
	}
	return 5 * time.Second
}

func (o PrimaryOptions) batchMax() int {
	if o.BatchMax > 0 {
		return o.BatchMax
	}
	return 256
}

func (o PrimaryOptions) retryBase() time.Duration {
	if o.RetryBase > 0 {
		return o.RetryBase
	}
	return 50 * time.Millisecond
}

func (o PrimaryOptions) retryCap() time.Duration {
	if o.RetryCap > 0 {
		return o.RetryCap
	}
	return 2 * time.Second
}

func (o PrimaryOptions) shipTimeout() time.Duration {
	if o.ShipTimeout > 0 {
		return o.ShipTimeout
	}
	return 10 * time.Second
}

// plog is one shipped journal on the primary side.
type plog struct {
	path   string
	tail   int // last committed sequence on disk
	digest DigestFunc
	dig    *LogDigest // latest digest the digest loop computed
}

// cursor remembers where a peer's next frame read starts: the byte offset
// of the record carrying sequence next. Committed journal bytes are
// immutable (Repair only ever truncates uncommitted tails), so a cursor
// only goes stale when a shipment fails mid-flight — then it rewinds to
// the start and re-skips, the rare-path price for O(new bytes) shipping
// on the common path.
type cursor struct {
	next int
	off  int64
}

// peer is one standby from the primary's point of view.
type peer struct {
	t          Transport
	wake       chan struct{}
	acked      map[string]int
	cursors    map[string]*cursor
	sentDigest map[string]int // last digest seq shipped per log
	lastErr    string
	fails      int
	shipped    int64 // frames successfully acknowledged
}

// Primary ships committed journal records to every peer, each on its own
// goroutine with bounded exponential backoff, and tracks per-peer acks.
// Logs register themselves lazily through Hook — the journal append
// observer — so the create record of a brand-new stream is already
// replicated by the time its Open returns.
type Primary struct {
	opts PrimaryOptions
	fs   faultfs.FS

	mu       sync.Mutex
	logs     map[string]*plog
	peers    []*peer
	diverged map[string]bool
	ackWait  chan struct{} // closed + replaced on every ack advance
	started  bool
	closed   bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewPrimary builds a shipper. Call Register/Hook to attach logs, then
// Start.
func NewPrimary(opts PrimaryOptions) (*Primary, error) {
	if opts.Node == nil {
		return nil, fmt.Errorf("replica: PrimaryOptions.Node is required")
	}
	if opts.Sync && len(opts.Peers) == 0 {
		return nil, fmt.Errorf("replica: synchronous commit needs at least one peer")
	}
	fs := opts.FS
	if fs == nil {
		fs = faultfs.OS
	}
	p := &Primary{
		opts:     opts,
		fs:       fs,
		logs:     make(map[string]*plog),
		diverged: make(map[string]bool),
		ackWait:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, t := range opts.Peers {
		p.peers = append(p.peers, &peer{
			t:          t,
			wake:       make(chan struct{}, 1),
			acked:      make(map[string]int),
			cursors:    make(map[string]*cursor),
			sentDigest: make(map[string]int),
		})
	}
	return p, nil
}

func (p *Primary) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

// Register attaches (or updates) a shipped log: its file path, its current
// journal tail, and optionally a digest source for divergence detection.
// Safe before or after Start; registering an already-hooked log only adds
// what is missing.
func (p *Primary) Register(log, path string, tail int, digest DigestFunc) {
	p.mu.Lock()
	pl := p.logs[log]
	if pl == nil {
		pl = &plog{path: path}
		p.logs[log] = pl
	}
	if pl.path == "" {
		pl.path = path
	}
	if tail > pl.tail {
		pl.tail = tail
	}
	if digest != nil {
		pl.digest = digest
	}
	p.mu.Unlock()
	p.wakePeers()
}

// Unregister detaches a log (a closed stream); already-shipped frames
// stay shipped.
func (p *Primary) Unregister(log string) {
	p.mu.Lock()
	delete(p.logs, log)
	p.mu.Unlock()
}

// Hook returns the journal append observer for one log — the function a
// stream's Options.OnAppend (or the jobs manager's equivalent) carries.
// Asynchronous mode notes the new tail and wakes the shippers; synchronous
// mode additionally blocks until a follower acknowledges the sequence.
func (p *Primary) Hook(log, path string) func(seq int, line []byte) error {
	return func(seq int, line []byte) error {
		p.mu.Lock()
		pl := p.logs[log]
		if pl == nil {
			pl = &plog{path: path}
			p.logs[log] = pl
		}
		if seq > pl.tail {
			pl.tail = seq
		}
		p.mu.Unlock()
		p.wakePeers()
		if !p.opts.Sync {
			return nil
		}
		return p.waitAck(log, seq)
	}
}

// waitAck blocks until any peer's ack covers (log, seq), the timeout
// passes, or the shipper closes.
func (p *Primary) waitAck(log string, seq int) error {
	wait := p.opts.syncTimeout()
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		p.mu.Lock()
		acked := false
		for _, pr := range p.peers {
			if pr.acked[log] >= seq {
				acked = true
				break
			}
		}
		ch := p.ackWait
		p.mu.Unlock()
		if acked {
			return nil
		}
		select {
		case <-ch:
		case <-deadline.C:
			return &SyncError{Log: log, Seq: seq, Wait: wait}
		case <-p.done:
			return fmt.Errorf("replica: shipper closed before %s@%d was acknowledged", log, seq)
		}
	}
}

// wakePeers nudges every ship loop (non-blocking).
func (p *Primary) wakePeers() {
	p.mu.Lock()
	peers := p.peers
	p.mu.Unlock()
	for _, pr := range peers {
		select {
		case pr.wake <- struct{}{}:
		default:
		}
	}
}

// Start launches one ship loop per peer and the digest loop.
func (p *Primary) Start() {
	p.mu.Lock()
	if p.started || p.closed {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.mu.Unlock()
	for i := range p.peers {
		p.wg.Add(1)
		go p.shipLoop(p.peers[i])
	}
	if p.opts.DigestInterval >= 0 {
		p.wg.Add(1)
		go p.digestLoop()
	}
}

// Close stops the loops and closes the transports.
func (p *Primary) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
	p.wg.Wait()
	for _, pr := range p.peers {
		pr.t.Close()
	}
}

// digestLoop periodically recomputes state digests for every log that has
// a digest source, then wakes the shippers to piggyback them.
func (p *Primary) digestLoop() {
	defer p.wg.Done()
	ival := p.opts.DigestInterval
	if ival == 0 {
		ival = 2 * time.Second
	}
	t := time.NewTicker(ival)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), ival)
			p.RefreshDigests(ctx)
			cancel()
		}
	}
}

// RefreshDigests recomputes every registered log's digest now. Exposed so
// tests (and the promote flow) can force a divergence check
// deterministically instead of waiting out the ticker.
func (p *Primary) RefreshDigests(ctx context.Context) {
	p.mu.Lock()
	type item struct {
		log string
		fn  DigestFunc
	}
	var items []item
	for name, pl := range p.logs {
		if pl.digest != nil {
			items = append(items, item{name, pl.digest})
		}
	}
	p.mu.Unlock()
	sort.Slice(items, func(i, j int) bool { return items[i].log < items[j].log })
	for _, it := range items {
		dig, err := it.fn(ctx)
		if err != nil {
			p.logf("replica: digest of %s: %v", it.log, err)
			continue
		}
		dig.Log = it.log
		p.mu.Lock()
		if pl := p.logs[it.log]; pl != nil {
			pl.dig = dig
		}
		p.mu.Unlock()
	}
	p.wakePeers()
}

// shipLoop drives one peer: build a batch of unshipped frames (plus any
// fresh digests), ship it, admit the acks; on failure retry with bounded
// exponential backoff. Fencing rejections demote the whole node.
func (p *Primary) shipLoop(pr *peer) {
	defer p.wg.Done()
	backoff := p.opts.retryBase()
	for {
		req, err := p.buildRequest(pr)
		if err != nil {
			p.logf("replica: building shipment for %s: %v", pr.t.Addr(), err)
			p.setPeerErr(pr, err)
		}
		if req == nil {
			select {
			case <-p.done:
				return
			case <-pr.wake:
				continue
			case <-time.After(backoff):
				// Re-probe even unwoken: a Register may have raced a wake.
				continue
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), p.opts.shipTimeout())
		resp, err := pr.t.Ship(ctx, req)
		cancel()
		if err != nil {
			var fe *FencedError
			if errors.As(err, &fe) {
				// The standby outranks us: persist the observation (which
				// demotes this node) and stop pushing — a fenced primary
				// has nothing legitimate to ship.
				if oerr := p.opts.Node.Observe(fe.Seen, "fenced by "+pr.t.Addr()); oerr != nil {
					p.logf("replica: recording fencing epoch %d: %v", fe.Seen, oerr)
				}
				p.logf("replica: demoted: %s holds epoch %d", pr.t.Addr(), fe.Seen)
			}
			p.setPeerErr(pr, err)
			select {
			case <-p.done:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > p.opts.retryCap() {
				backoff = p.opts.retryCap()
			}
			continue
		}
		backoff = p.opts.retryBase()
		p.admit(pr, req, resp)
		select {
		case <-p.done:
			return
		default:
		}
	}
}

func (p *Primary) setPeerErr(pr *peer, err error) {
	p.mu.Lock()
	pr.lastErr = err.Error()
	pr.fails++
	p.mu.Unlock()
}

// buildRequest assembles the next shipment for pr: frames every log whose
// tail is past the peer's ack, in log-name order, bounded by BatchMax,
// plus any digest not yet sent at its sequence. Returns nil when the peer
// is fully caught up.
func (p *Primary) buildRequest(pr *peer) (*ShipRequest, error) {
	// A fenced primary has nothing legitimate to ship: go quiet rather
	// than spam the new primary with stale-epoch requests.
	if p.opts.Node.FenceCheck() != nil {
		return nil, nil
	}
	p.mu.Lock()
	type want struct {
		log   string
		path  string
		from  int // first sequence to ship
		tail  int
		cur   cursor
		dig   *LogDigest
		sentD int
	}
	var wants []want
	for name, pl := range p.logs {
		w := want{log: name, path: pl.path, from: pr.acked[name] + 1, tail: pl.tail, sentD: pr.sentDigest[name]}
		if c := pr.cursors[name]; c != nil {
			w.cur = *c
		} else {
			w.cur = cursor{next: 1}
		}
		if pl.dig != nil && pl.dig.Seq > w.sentD {
			w.dig = pl.dig
		}
		if w.from <= w.tail || w.dig != nil {
			wants = append(wants, w)
		}
	}
	epoch := p.opts.Node.Granted()
	id := p.opts.Node.ID()
	p.mu.Unlock()
	if len(wants) == 0 {
		return nil, nil
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].log < wants[j].log })

	req := &ShipRequest{Primary: id, Epoch: epoch}
	budget := p.opts.batchMax()
	var firstErr error
	for _, w := range wants {
		if w.dig != nil {
			req.Digests = append(req.Digests, *w.dig)
		}
		if w.from > w.tail || budget <= 0 {
			continue
		}
		cur := w.cur
		if cur.next > w.from {
			// A failed shipment left the cursor past the ack point: rewind
			// and re-skip from the start (committed bytes are immutable, so
			// this is safe, just slower).
			cur = cursor{next: 1}
		}
		frames, nc, err := readFrames(p.fs, w.path, w.log, cur, w.from, w.tail, budget)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("reading %s: %w", w.log, err)
			}
			continue
		}
		budget -= len(frames)
		req.Frames = append(req.Frames, frames...)
		p.mu.Lock()
		pr.cursors[w.log] = &nc
		p.mu.Unlock()
	}
	if len(req.Frames) == 0 && len(req.Digests) == 0 {
		return nil, firstErr
	}
	return req, firstErr
}

// readFrames scans the journal file from cur (the offset of record
// cur.next), collecting frames with from <= seq <= maxSeq, at most max of
// them. It returns the frames and the advanced cursor.
func readFrames(fs faultfs.FS, path, log string, cur cursor, from, maxSeq, max int) ([]Frame, cursor, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, cur, err
	}
	if cur.off > int64(len(data)) || cur.next < 1 {
		cur = cursor{next: 1}
	}
	var frames []Frame
	off := cur.off
	want := cur.next
	for off < int64(len(data)) && len(frames) < max && want <= maxSeq {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: not committed, never shipped
		}
		line := data[off : off+int64(nl)]
		rec, ok := journal.ParseLine(line, want)
		if !ok {
			// Either a torn tail pending repair, or the cursor is stale
			// after a truncation race; rewind so the next build rescans.
			return frames, cursor{next: 1}, nil
		}
		if rec.Seq >= from {
			frames = append(frames, Frame{Log: log, Seq: rec.Seq, Line: append([]byte(nil), line...)})
		}
		off += int64(nl) + 1
		want++
	}
	return frames, cursor{next: want, off: off}, nil
}

// admit merges a successful response: per-log acks advance, divergence
// reports are recorded, and every synchronous waiter is re-checked.
func (p *Primary) admit(pr *peer, req *ShipRequest, resp *ShipResponse) {
	p.mu.Lock()
	for log, a := range resp.Acked {
		if a > pr.acked[log] {
			pr.shipped += int64(a - pr.acked[log])
			pr.acked[log] = a
		}
	}
	for _, d := range req.Digests {
		// Only a delivered digest counts as sent; a failed shipment's
		// digests are rebuilt and retried.
		if d.Seq > pr.sentDigest[d.Log] {
			pr.sentDigest[d.Log] = d.Seq
		}
	}
	for _, lg := range resp.Diverged {
		if !p.diverged[lg] {
			p.logf("replica: standby %s reports %s DIVERGED", pr.t.Addr(), lg)
		}
		p.diverged[lg] = true
	}
	pr.lastErr = ""
	close(p.ackWait)
	p.ackWait = make(chan struct{})
	p.mu.Unlock()
	if resp.Epoch > p.opts.Node.Granted() {
		if err := p.opts.Node.Observe(resp.Epoch, "ship response from "+pr.t.Addr()); err != nil {
			p.logf("replica: recording epoch %d: %v", resp.Epoch, err)
		}
	}
}

// Lag is the worst per-peer total of unacknowledged records across all
// logs — 0 when every peer is caught up.
func (p *Primary) Lag() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	worst := 0
	for _, pr := range p.peers {
		lag := 0
		for name, pl := range p.logs {
			if d := pl.tail - pr.acked[name]; d > 0 {
				lag += d
			}
		}
		if lag > worst {
			worst = lag
		}
	}
	return worst
}

// ReadyErr reports why the primary should fail a readiness probe: fenced,
// or lagging past LagMax. Nil when healthy.
func (p *Primary) ReadyErr() error {
	if err := p.opts.Node.FenceCheck(); err != nil {
		return err
	}
	if p.opts.LagMax > 0 {
		if lag := p.Lag(); lag > p.opts.LagMax {
			return fmt.Errorf("replica: %d unacknowledged records exceed the %d lag bound", lag, p.opts.LagMax)
		}
	}
	return nil
}

// PeerStatus is one standby's view in PrimaryStatus.
type PeerStatus struct {
	Addr      string         `json:"addr"`
	Acked     map[string]int `json:"acked,omitempty"`
	Lag       int            `json:"lag"`
	Shipped   int64          `json:"shipped"`
	Failures  int            `json:"failures,omitempty"`
	LastError string         `json:"lastError,omitempty"`
}

// PrimaryStatus is the primary half of /replstatus.
type PrimaryStatus struct {
	Sync     bool           `json:"sync"`
	LagMax   int            `json:"lagMax,omitempty"`
	Lag      int            `json:"lag"`
	Logs     map[string]int `json:"logs"`
	Peers    []PeerStatus   `json:"peers"`
	Diverged []string       `json:"diverged,omitempty"`
}

// Status snapshots the shipper for observability.
func (p *Primary) Status() PrimaryStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PrimaryStatus{Sync: p.opts.Sync, LagMax: p.opts.LagMax, Logs: make(map[string]int, len(p.logs))}
	for name, pl := range p.logs {
		st.Logs[name] = pl.tail
	}
	for _, pr := range p.peers {
		ps := PeerStatus{Addr: pr.t.Addr(), Acked: make(map[string]int, len(pr.acked)),
			Shipped: pr.shipped, Failures: pr.fails, LastError: pr.lastErr}
		for name, a := range pr.acked {
			ps.Acked[name] = a
		}
		for name, pl := range p.logs {
			if d := pl.tail - pr.acked[name]; d > 0 {
				ps.Lag += d
			}
		}
		if ps.Lag > st.Lag {
			st.Lag = ps.Lag
		}
		st.Peers = append(st.Peers, ps)
	}
	for lg := range p.diverged {
		st.Diverged = append(st.Diverged, lg)
	}
	sort.Strings(st.Diverged)
	return st
}
