// Package attack implements the re-identification attack model of
// Section 2.2 and Figure 2: an identity oracle holding the population's
// quasi-identifiers and identities, and a record-linkage attacker that
// blocks oracle records on the microdata tuple's quasi-identifier values and
// guesses within the block. It exists to validate the risk measures — the
// expected attack success of a tuple should track its estimated disclosure
// risk, and anonymization should demolish it.
package attack

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"vadasa/internal/mdb"
)

// Record is one population entry of the identity oracle: quasi-identifier
// values plus the universally recognized identity I. Signal optionally
// carries an auxiliary numeric attribute (e.g. a published balance-sheet
// figure) the attacker can match on within a block — step 2 of the attack
// strategy of Figure 2, where the candidate that "best fits the tuple
// w.r.t. the other attributes" is chosen.
type Record struct {
	Identity string
	Values   []string // indexed like Oracle.QIs
	Signal   float64
	HasSig   bool
}

// Oracle is the identity oracle O(i', q', I) of Section 2.1, restricted to
// the quasi-identifier part — the realistic external source an attacker
// cross-links against.
type Oracle struct {
	QIs     []string // quasi-identifier attribute names
	Records []Record
	// SignalAttr names the auxiliary attribute the records' signals were
	// drawn from, when the oracle was built with one.
	SignalAttr string

	index map[string][]int // full-combination key -> record positions
}

// key builds the exact-match blocking key.
func key(values []string) string {
	var b strings.Builder
	for _, v := range values {
		fmt.Fprintf(&b, "%d:", len(v))
		b.WriteString(v)
	}
	return b.String()
}

// BuildOptions parameterizes oracle synthesis.
type BuildOptions struct {
	// MaxPerRow caps the population records spawned per tuple (default 1000).
	MaxPerRow int
	// SignalAttr optionally names a numeric attribute publicly known about
	// the population (e.g. a balance-sheet figure). The true respondent's
	// record carries the exact value; lookalikes carry values drawn from
	// the attribute's empirical distribution, so an attacker can run the
	// matching step of Figure 2 inside a block.
	SignalAttr string
	// Seed drives the lookalikes' signal sampling.
	Seed int64
}

// Build synthesizes an identity oracle from a microdata DB: every tuple
// spawns round(weight) population records sharing its quasi-identifier
// values (capped at maxPerRow, minimum 1), one of which — the first — is the
// actual respondent. It returns the oracle and the true identity of each row
// ID, the ground truth an attack is scored against.
//
// The dataset must not contain labelled nulls: the oracle represents the
// original population, so it is built before anonymization.
func Build(d *mdb.Dataset, maxPerRow int) (*Oracle, map[int]string, error) {
	return BuildWithOptions(d, BuildOptions{MaxPerRow: maxPerRow})
}

// BuildWithOptions is Build with full control, including the auxiliary
// matching signal.
func BuildWithOptions(d *mdb.Dataset, opts BuildOptions) (*Oracle, map[int]string, error) {
	maxPerRow := opts.MaxPerRow
	if maxPerRow < 1 {
		maxPerRow = 1000
	}
	qi := d.QuasiIdentifiers()
	if len(qi) == 0 {
		return nil, nil, fmt.Errorf("attack: dataset %q has no quasi-identifiers", d.Name)
	}
	sigIdx := -1
	var sigValues []float64
	if opts.SignalAttr != "" {
		sigIdx = d.AttrIndex(opts.SignalAttr)
		if sigIdx < 0 {
			return nil, nil, fmt.Errorf("attack: dataset %q has no signal attribute %q",
				d.Name, opts.SignalAttr)
		}
		for _, r := range d.Rows {
			v := r.Values[sigIdx]
			if v.IsNull() {
				continue
			}
			f, err := strconv.ParseFloat(v.Constant(), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("attack: row %d: signal attribute %q value %s is not numeric",
					r.ID, opts.SignalAttr, v.Redacted())
			}
			sigValues = append(sigValues, f)
		}
		if len(sigValues) == 0 {
			return nil, nil, fmt.Errorf("attack: signal attribute %q has no numeric values", opts.SignalAttr)
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	o := &Oracle{index: make(map[string][]int), SignalAttr: opts.SignalAttr}
	for _, i := range qi {
		o.QIs = append(o.QIs, d.Attrs[i].Name)
	}
	truth := make(map[int]string, len(d.Rows))
	for _, r := range d.Rows {
		values := make([]string, len(qi))
		for j, i := range qi {
			v := r.Values[i]
			if v.IsNull() {
				return nil, nil, fmt.Errorf(
					"attack: row %d has a labelled null; build the oracle from the original data", r.ID)
			}
			values[j] = v.Constant()
		}
		n := int(math.Round(r.Weight))
		if n < 1 {
			n = 1
		}
		if n > maxPerRow {
			n = maxPerRow
		}
		var trueSignal float64
		hasSig := false
		if sigIdx >= 0 {
			if v := r.Values[sigIdx]; !v.IsNull() {
				trueSignal, _ = strconv.ParseFloat(v.Constant(), 64)
				hasSig = true
			}
		}
		for j := 0; j < n; j++ {
			rec := Record{
				Identity: fmt.Sprintf("E%d-%d", r.ID, j),
				Values:   values,
			}
			if sigIdx >= 0 {
				if j == 0 && hasSig {
					rec.Signal, rec.HasSig = trueSignal, true
				} else {
					rec.Signal, rec.HasSig = sigValues[rng.Intn(len(sigValues))], true
				}
			}
			o.index[key(values)] = append(o.index[key(values)], len(o.Records))
			o.Records = append(o.Records, rec)
		}
		truth[r.ID] = fmt.Sprintf("E%d-0", r.ID)
	}
	return o, truth, nil
}

// Block returns the oracle records compatible with the given tuple values
// under maybe-match: a labelled null blocks on nothing, so it matches every
// record (step 1 of the attack strategy; anonymization works precisely by
// blowing this set up).
func (o *Oracle) Block(values []mdb.Value) []int {
	hasNull := false
	for _, v := range values {
		if v.IsNull() {
			hasNull = true
			break
		}
	}
	if !hasNull {
		consts := make([]string, len(values))
		for i, v := range values {
			consts[i] = v.Constant()
		}
		return o.index[key(consts)]
	}
	var out []int
	for pos, rec := range o.Records {
		ok := true
		for i, v := range values {
			if !v.IsNull() && v.Constant() != rec.Values[i] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, pos)
		}
	}
	return out
}

// RowOutcome is the attack outcome for one microdata tuple.
type RowOutcome struct {
	RowID     int
	BlockSize int
	// Expected is the probability of a correct guess: 1/|block| when the
	// respondent is in the block, 0 otherwise.
	Expected float64
	// Correct reports whether the sampled (uniform) guess hit the
	// respondent.
	Correct bool
	// Matched reports whether the signal-matching guess hit the
	// respondent (only meaningful when the oracle carries signals).
	Matched bool
}

// Result aggregates an attack run.
type Result struct {
	PerRow []RowOutcome
	// ExpectedSuccesses is the sum of per-row success probabilities — the
	// attacker's expected number of re-identifications.
	ExpectedSuccesses float64
	// SampledSuccesses counts the actual hits of the sampled guesses.
	SampledSuccesses int
	// MatchedSuccesses counts hits of the signal-matching attacker —
	// step 2 of Figure 2, choosing the block candidate that best fits the
	// tuple's auxiliary attribute. Zero when the oracle has no signals.
	MatchedSuccesses int
	// MeanBlockSize measures how expensive the matching step is — large
	// blocks are what make the attack computationally ineffective
	// (Section 2.2).
	MeanBlockSize float64
}

// Run attacks every tuple of d against the oracle: block on the (possibly
// anonymized) quasi-identifier values, then guess uniformly within the
// block. truth maps row IDs to the respondent identities from Build.
func (o *Oracle) Run(d *mdb.Dataset, truth map[int]string, seed int64) (*Result, error) {
	qi := d.QuasiIdentifiers()
	if len(qi) != len(o.QIs) {
		return nil, fmt.Errorf("attack: dataset has %d quasi-identifiers, oracle %d", len(qi), len(o.QIs))
	}
	for j, i := range qi {
		if d.Attrs[i].Name != o.QIs[j] {
			return nil, fmt.Errorf("attack: quasi-identifier %d is %q, oracle expects %q",
				j, d.Attrs[i].Name, o.QIs[j])
		}
	}
	sigIdx := -1
	if o.SignalAttr != "" {
		sigIdx = d.AttrIndex(o.SignalAttr)
	}
	rng := rand.New(rand.NewSource(seed))
	res := &Result{}
	values := make([]mdb.Value, len(qi))
	totalBlock := 0
	for _, r := range d.Rows {
		for j, i := range qi {
			values[j] = r.Values[i]
		}
		block := o.Block(values)
		out := RowOutcome{RowID: r.ID, BlockSize: len(block)}
		if len(block) > 0 {
			inBlock := false
			want := truth[r.ID]
			for _, pos := range block {
				if o.Records[pos].Identity == want {
					inBlock = true
					break
				}
			}
			if inBlock {
				out.Expected = 1 / float64(len(block))
			}
			guess := block[rng.Intn(len(block))]
			out.Correct = o.Records[guess].Identity == want

			// Matching step: rank the block by signal distance.
			if sigIdx >= 0 {
				if v := r.Values[sigIdx]; !v.IsNull() {
					if target, err := strconv.ParseFloat(v.Constant(), 64); err == nil {
						best, bestDist := -1, math.Inf(1)
						for _, pos := range block {
							rec := o.Records[pos]
							if !rec.HasSig {
								continue
							}
							if dist := math.Abs(rec.Signal - target); dist < bestDist {
								best, bestDist = pos, dist
							}
						}
						out.Matched = best >= 0 && o.Records[best].Identity == want
					}
				}
			}
		}
		res.PerRow = append(res.PerRow, out)
		res.ExpectedSuccesses += out.Expected
		if out.Correct {
			res.SampledSuccesses++
		}
		if out.Matched {
			res.MatchedSuccesses++
		}
		totalBlock += out.BlockSize
	}
	if len(d.Rows) > 0 {
		res.MeanBlockSize = float64(totalBlock) / float64(len(d.Rows))
	}
	return res, nil
}
