package attack

import (
	"math"
	"testing"

	"vadasa/internal/anon"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
	"vadasa/internal/synth"
)

func TestBuildOracle(t *testing.T) {
	d := synth.InflationGrowth()
	o, truth, err := Build(d, 1000)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(o.QIs) != 5 {
		t.Fatalf("oracle QIs = %v", o.QIs)
	}
	// Total records = sum of weights (all under the cap).
	wantRecords := 0
	for _, r := range d.Rows {
		wantRecords += int(r.Weight)
	}
	if len(o.Records) != wantRecords {
		t.Fatalf("oracle has %d records, want %d", len(o.Records), wantRecords)
	}
	if len(truth) != 20 {
		t.Fatalf("truth has %d entries", len(truth))
	}
	if truth[4] != "E4-0" {
		t.Fatalf("truth[4] = %q", truth[4])
	}
}

func TestBuildRejectsNulls(t *testing.T) {
	d := synth.Figure5()
	d.Rows[0].Values[1] = d.Nulls.Fresh()
	if _, _, err := Build(d, 10); err == nil {
		t.Fatal("oracle built from anonymized data")
	}
}

func TestBuildRejectsNoQIs(t *testing.T) {
	d := mdb.NewDataset("x", []mdb.Attribute{{Name: "A", Category: mdb.NonIdentifying}})
	if _, _, err := Build(d, 10); err == nil {
		t.Fatal("oracle built without quasi-identifiers")
	}
}

func TestBuildCapsPerRow(t *testing.T) {
	d := synth.InflationGrowth()
	o, _, err := Build(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Records) != 5*len(d.Rows) {
		t.Fatalf("capped oracle has %d records, want %d", len(o.Records), 5*len(d.Rows))
	}
}

// Expected attack success must equal the re-identification risk when the
// oracle is built from exact weights: block size = group weight sum.
func TestExpectedSuccessMatchesReIdentificationRisk(t *testing.T) {
	d := synth.InflationGrowth()
	o, truth, err := Build(d, 1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(d, truth, 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	risks, err := risk.ReIdentification{}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range res.PerRow {
		if math.Abs(out.Expected-risks[i]) > 1e-9 {
			t.Errorf("tuple %d: expected attack success %g, re-identification risk %g",
				out.RowID, out.Expected, risks[i])
		}
	}
}

func TestAnonymizationDefeatsAttack(t *testing.T) {
	d := synth.Generate(synth.Config{Tuples: 800, QIs: 4, Dist: synth.DistV, Seed: 13})
	o, truth, err := Build(d, 50)
	if err != nil {
		t.Fatal(err)
	}
	before, err := o.Run(d, truth, 1)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := anon.Run(d, anon.Config{
		Assessor:   risk.KAnonymity{K: 3},
		Threshold:  0.5,
		Anonymizer: anon.LocalSuppression{Choice: anon.AttrMostSelective},
		Semantics:  mdb.MaybeMatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	after, err := o.Run(cyc.Dataset, truth, 1)
	if err != nil {
		t.Fatal(err)
	}
	if after.ExpectedSuccesses >= before.ExpectedSuccesses {
		t.Fatalf("anonymization did not reduce expected successes: %g -> %g",
			before.ExpectedSuccesses, after.ExpectedSuccesses)
	}
	if after.MeanBlockSize <= before.MeanBlockSize {
		t.Fatalf("anonymization did not grow blocks: %g -> %g",
			before.MeanBlockSize, after.MeanBlockSize)
	}
	// Per-row: no tuple becomes easier to attack.
	for i := range before.PerRow {
		if after.PerRow[i].Expected > before.PerRow[i].Expected+1e-12 {
			t.Fatalf("tuple %d got easier to attack: %g -> %g",
				before.PerRow[i].RowID, before.PerRow[i].Expected, after.PerRow[i].Expected)
		}
	}
}

func TestBlockWithNullMatchesEverythingCompatible(t *testing.T) {
	d := synth.Figure5()
	o, _, err := Build(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	qi := d.QuasiIdentifiers()
	values := make([]mdb.Value, len(qi))
	for j, i := range qi {
		values[j] = d.Rows[0].Values[i]
	}
	if got := len(o.Block(values)); got != 1 {
		t.Fatalf("exact block size = %d, want 1", got)
	}
	values[1] = mdb.Null(1) // suppress Sector
	if got := len(o.Block(values)); got != 5 {
		t.Fatalf("null block size = %d, want 5 (all Roma/1000+/0-30)", got)
	}
	// All nulls: whole oracle.
	for j := range values {
		values[j] = mdb.Null(uint64(j + 1))
	}
	if got := len(o.Block(values)); got != len(o.Records) {
		t.Fatalf("all-null block size = %d, want %d", got, len(o.Records))
	}
}

func TestRunValidatesSchema(t *testing.T) {
	d := synth.Figure5()
	o, truth, err := Build(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	other := synth.InflationGrowth()
	if _, err := o.Run(other, truth, 1); err == nil {
		t.Fatal("mismatched schema accepted")
	}
}

func TestSampledGuessesDeterministicPerSeed(t *testing.T) {
	d := synth.Generate(synth.Config{Tuples: 300, QIs: 4, Dist: synth.DistU, Seed: 3})
	o, truth, err := Build(d, 20)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := o.Run(d, truth, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := o.Run(d, truth, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r1.SampledSuccesses != r2.SampledSuccesses {
		t.Fatal("same seed produced different sampled outcomes")
	}
}

// The matching attacker (Figure 2 step 2) must beat uniform guessing when an
// informative auxiliary signal is published, and anonymization must still
// beat the matcher down.
func TestMatchingAttackerBeatsUniform(t *testing.T) {
	d := synth.InflationGrowth()
	o, truth, err := BuildWithOptions(d, BuildOptions{
		MaxPerRow:  1000,
		SignalAttr: "Growth6mos",
		Seed:       3,
	})
	if err != nil {
		t.Fatalf("BuildWithOptions: %v", err)
	}
	if o.SignalAttr != "Growth6mos" {
		t.Fatal("signal attribute not recorded")
	}
	res, err := o.Run(d, truth, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every tuple's combination is unique in Figure 1, so the block holds
	// the respondent plus weight-1 lookalikes. The exact-signal matcher
	// should re-identify far more tuples than the uniform guesser's
	// expectation (~0.2 tuples).
	if res.MatchedSuccesses < 10 {
		t.Fatalf("matching attacker got %d of %d; want most tuples", res.MatchedSuccesses, len(d.Rows))
	}
	if float64(res.MatchedSuccesses) <= res.ExpectedSuccesses {
		t.Fatalf("matcher (%d) not better than uniform expectation (%.2f)",
			res.MatchedSuccesses, res.ExpectedSuccesses)
	}

	// Anonymize and re-attack: matching success must drop.
	cyc, err := anon.Run(d, anon.Config{
		Assessor:   risk.KAnonymity{K: 3},
		Threshold:  0.5,
		Anonymizer: anon.LocalSuppression{Choice: anon.AttrMaxGain},
		Semantics:  mdb.MaybeMatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	after, err := o.Run(cyc.Dataset, truth, 1)
	if err != nil {
		t.Fatal(err)
	}
	if after.MatchedSuccesses >= res.MatchedSuccesses {
		t.Fatalf("anonymization did not hurt the matcher: %d -> %d",
			res.MatchedSuccesses, after.MatchedSuccesses)
	}
}

func TestBuildWithOptionsValidation(t *testing.T) {
	d := synth.InflationGrowth()
	if _, _, err := BuildWithOptions(d, BuildOptions{SignalAttr: "Nope"}); err == nil {
		t.Error("unknown signal attribute accepted")
	}
	if _, _, err := BuildWithOptions(d, BuildOptions{SignalAttr: "Sector"}); err == nil {
		t.Error("non-numeric signal attribute accepted")
	}
}

func TestOracleWithoutSignalHasNoMatches(t *testing.T) {
	d := synth.Figure5()
	o, truth, err := Build(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(d, truth, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedSuccesses != 0 {
		t.Fatalf("matched successes without signals: %d", res.MatchedSuccesses)
	}
}
