package utility

import (
	"math"
	"strings"
	"testing"

	"vadasa/internal/anon"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
	"vadasa/internal/synth"
)

func TestCompareIdentical(t *testing.T) {
	d := synth.Figure5()
	rep, err := Compare(d, d.Clone())
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if rep.SuppressionRate != 0 {
		t.Errorf("suppression rate = %g, want 0", rep.SuppressionRate)
	}
	for _, a := range rep.Attributes {
		if a.Suppressed != 0 || a.Recoded != 0 || a.TotalVariation != 0 {
			t.Errorf("attribute %s not pristine: %+v", a.Name, a)
		}
	}
	if rep.MeanGroupSizeBefore != rep.MeanGroupSizeAfter {
		t.Errorf("group sizes differ on identical data")
	}
}

func TestCompareCountsSuppressionsAndRecodes(t *testing.T) {
	before := synth.Figure5()
	after := before.Clone()
	sector := after.AttrIndex("Sector")
	area := after.AttrIndex("Area")
	after.Rows[0].Values[sector] = after.Nulls.Fresh() // suppression
	after.Rows[5].Values[area] = mdb.Const("North")    // recode Milano
	after.Rows[6].Values[area] = mdb.Const("North")    // recode Torino

	rep, err := Compare(before, after)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AttributeReport{}
	for _, a := range rep.Attributes {
		byName[a.Name] = a
	}
	if byName["Sector"].Suppressed != 1 || byName["Sector"].Recoded != 0 {
		t.Errorf("Sector report = %+v", byName["Sector"])
	}
	if byName["Area"].Recoded != 2 || byName["Area"].Suppressed != 0 {
		t.Errorf("Area report = %+v", byName["Area"])
	}
	// 1 suppressed cell of 7 rows x 4 QIs.
	if want := 1.0 / 28; math.Abs(rep.SuppressionRate-want) > 1e-12 {
		t.Errorf("suppression rate = %g, want %g", rep.SuppressionRate, want)
	}
	// Area TV distance: before {Roma:5, Milano:1, Torino:1}/7, after
	// {Roma:5, North:2}/7 -> TV = (|5-5| + 1 + 1 + 2)/2/7 = 2/7.
	if want := 2.0 / 7; math.Abs(byName["Area"].TotalVariation-want) > 1e-12 {
		t.Errorf("Area TV = %g, want %g", byName["Area"].TotalVariation, want)
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	a := synth.Figure5()
	b := synth.InflationGrowth()
	if _, err := Compare(a, b); err == nil {
		t.Error("different schemas accepted")
	}
	c := a.Clone()
	c.Rows = c.Rows[:3]
	if _, err := Compare(a, c); err == nil {
		t.Error("different row counts accepted")
	}
	renamed := a.Clone()
	renamed.Attrs[1].Name = "Zone"
	if _, err := Compare(a, renamed); err == nil {
		t.Error("renamed attribute accepted")
	}
	noQI := mdb.NewDataset("x", []mdb.Attribute{{Name: "A"}})
	if _, err := Compare(noQI, noQI.Clone()); err == nil {
		t.Error("dataset without quasi-identifiers accepted")
	}
}

// After a k-anonymity cycle, the achieved min group size must be >= k and
// mean group size must not shrink.
func TestCompareAfterCycle(t *testing.T) {
	d := synth.Generate(synth.Config{Tuples: 2000, QIs: 4, Dist: synth.DistU, Seed: 8})
	res, err := anon.Run(d, anon.Config{
		Assessor:   risk.KAnonymity{K: 3},
		Threshold:  0.5,
		Anonymizer: anon.LocalSuppression{Choice: anon.AttrMaxGain},
		Semantics:  mdb.MaybeMatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Compare(d, res.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinGroupSizeAfter < 3 {
		t.Errorf("min group size after = %d, want >= 3", rep.MinGroupSizeAfter)
	}
	if rep.MeanGroupSizeAfter < rep.MeanGroupSizeBefore {
		t.Errorf("mean group size shrank: %g -> %g",
			rep.MeanGroupSizeBefore, rep.MeanGroupSizeAfter)
	}
	if rep.SuppressionRate <= 0 || rep.SuppressionRate > 0.2 {
		t.Errorf("suppression rate = %g, want small but positive", rep.SuppressionRate)
	}
	// Total suppressed across attributes must equal the cycle's null count.
	total := 0
	for _, a := range rep.Attributes {
		total += a.Suppressed
	}
	if total != res.NullsInjected {
		t.Errorf("suppressed cells %d != nulls injected %d", total, res.NullsInjected)
	}
}

func TestRender(t *testing.T) {
	d := synth.Figure5()
	after := d.Clone()
	after.Rows[0].Values[1] = after.Nulls.Fresh()
	rep, err := Compare(d, after)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	rep.Render(&b)
	out := b.String()
	for _, want := range []string{"utility report", "Sector", "suppression rate", "min group size"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTotalVariationEdgeCases(t *testing.T) {
	if tv := totalVariation(nil, 0, nil, 0); tv != 0 {
		t.Errorf("empty vs empty = %g", tv)
	}
	if tv := totalVariation(map[string]float64{"a": 1}, 1, nil, 0); tv != 1 {
		t.Errorf("something vs nothing = %g", tv)
	}
	same := map[string]float64{"a": 2, "b": 2}
	if tv := totalVariation(same, 4, same, 4); tv != 0 {
		t.Errorf("identical = %g", tv)
	}
	p := map[string]float64{"a": 1}
	q := map[string]float64{"b": 1}
	if tv := totalVariation(p, 1, q, 1); tv != 1 {
		t.Errorf("disjoint = %g", tv)
	}
}
