// Package utility quantifies how much statistical value an anonymized
// microdata DB retains — the paper's desideratum (v): anonymization should
// remove the minimum amount of information needed for confidentiality while
// preserving the statistical soundness of the data. It compares an
// anonymized dataset against its original along three axes: how many values
// were masked per attribute, how far each attribute's marginal distribution
// drifted, and how the aggregation-group structure changed.
package utility

import (
	"fmt"
	"io"
	"sort"

	"vadasa/internal/mdb"
)

// AttributeReport measures the damage to one quasi-identifier.
type AttributeReport struct {
	Name string
	// Suppressed counts values replaced by labelled nulls.
	Suppressed int
	// Recoded counts values changed to a different constant (global
	// recoding to a coarser level).
	Recoded int
	// TotalVariation is the total-variation distance between the
	// attribute's marginal distribution before and after (nulls excluded,
	// recoded values counted at their new level): 0 = identical,
	// 1 = disjoint.
	TotalVariation float64
}

// Report is the utility comparison of an anonymized dataset against its
// original.
type Report struct {
	Rows int
	// Attributes, in schema order (quasi-identifiers only).
	Attributes []AttributeReport
	// SuppressionRate is the fraction of quasi-identifier cells masked.
	SuppressionRate float64
	// MeanGroupSizeBefore/After describe the aggregation-group structure:
	// anonymization grows groups (that is the point), and the growth
	// factor tells an analyst how much resolution was traded away.
	MeanGroupSizeBefore, MeanGroupSizeAfter float64
	// MinGroupSizeAfter is the smallest maybe-match group in the
	// anonymized data — the achieved anonymity level.
	MinGroupSizeAfter int
}

// Compare computes the utility report. The datasets must have the same
// schema and row count, with rows aligned by position (the anonymization
// cycle preserves order).
func Compare(before, after *mdb.Dataset) (*Report, error) {
	if len(before.Attrs) != len(after.Attrs) {
		return nil, fmt.Errorf("utility: schemas differ: %d vs %d attributes",
			len(before.Attrs), len(after.Attrs))
	}
	for i := range before.Attrs {
		if before.Attrs[i].Name != after.Attrs[i].Name {
			return nil, fmt.Errorf("utility: attribute %d is %q vs %q",
				i, before.Attrs[i].Name, after.Attrs[i].Name)
		}
	}
	if len(before.Rows) != len(after.Rows) {
		return nil, fmt.Errorf("utility: row counts differ: %d vs %d",
			len(before.Rows), len(after.Rows))
	}
	qi := before.QuasiIdentifiers()
	if len(qi) == 0 {
		return nil, fmt.Errorf("utility: dataset %q has no quasi-identifiers", before.Name)
	}

	rep := &Report{Rows: len(before.Rows)}
	totalCells := len(before.Rows) * len(qi)
	totalSuppressed := 0
	for _, a := range qi {
		ar := AttributeReport{Name: before.Attrs[a].Name}
		beforeCounts := make(map[string]float64)
		afterCounts := make(map[string]float64)
		beforeN, afterN := 0, 0
		for r := range before.Rows {
			bv := before.Rows[r].Values[a]
			av := after.Rows[r].Values[a]
			if !bv.IsNull() {
				beforeCounts[bv.Constant()]++
				beforeN++
			}
			switch {
			case av.IsNull():
				if !bv.IsNull() {
					ar.Suppressed++
				}
			default:
				afterCounts[av.Constant()]++
				afterN++
				if !bv.IsNull() && av.Constant() != bv.Constant() {
					ar.Recoded++
				}
			}
		}
		ar.TotalVariation = totalVariation(beforeCounts, beforeN, afterCounts, afterN)
		totalSuppressed += ar.Suppressed
		rep.Attributes = append(rep.Attributes, ar)
	}
	if totalCells > 0 {
		rep.SuppressionRate = float64(totalSuppressed) / float64(totalCells)
	}

	rep.MeanGroupSizeBefore = meanGroup(before, qi)
	rep.MeanGroupSizeAfter = meanGroup(after, qi)
	rep.MinGroupSizeAfter = minGroup(after, qi)
	return rep, nil
}

func totalVariation(p map[string]float64, pn int, q map[string]float64, qn int) float64 {
	if pn == 0 || qn == 0 {
		if pn == qn {
			return 0
		}
		return 1
	}
	keys := make(map[string]bool, len(p)+len(q))
	for k := range p {
		keys[k] = true
	}
	for k := range q {
		keys[k] = true
	}
	tv := 0.0
	for k := range keys {
		diff := p[k]/float64(pn) - q[k]/float64(qn)
		if diff < 0 {
			diff = -diff
		}
		tv += diff
	}
	return tv / 2
}

func meanGroup(d *mdb.Dataset, qi []int) float64 {
	if len(d.Rows) == 0 {
		return 0
	}
	total := 0
	for _, f := range mdb.Frequencies(d, qi, mdb.MaybeMatch) {
		total += f
	}
	return float64(total) / float64(len(d.Rows))
}

func minGroup(d *mdb.Dataset, qi []int) int {
	minF := 0
	for i, f := range mdb.Frequencies(d, qi, mdb.MaybeMatch) {
		if i == 0 || f < minF {
			minF = f
		}
	}
	return minF
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "utility report over %d tuples\n", r.Rows)
	fmt.Fprintf(w, "  %-24s %10s %8s %8s\n", "attribute", "suppressed", "recoded", "TV-dist")
	attrs := append([]AttributeReport(nil), r.Attributes...)
	sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Suppressed > attrs[j].Suppressed })
	for _, a := range attrs {
		fmt.Fprintf(w, "  %-24s %10d %8d %8.4f\n", a.Name, a.Suppressed, a.Recoded, a.TotalVariation)
	}
	fmt.Fprintf(w, "  suppression rate: %.2f%% of quasi-identifier cells\n", 100*r.SuppressionRate)
	fmt.Fprintf(w, "  mean group size:  %.1f -> %.1f\n", r.MeanGroupSizeBefore, r.MeanGroupSizeAfter)
	fmt.Fprintf(w, "  min group size after anonymization: %d\n", r.MinGroupSizeAfter)
}
