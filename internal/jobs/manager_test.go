package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"vadasa/internal/anon"
	"vadasa/internal/journal"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
)

// testInput writes a throwaway dataset file (the manager only digests it).
func testInput(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := os.WriteFile(path, []byte("I,Area\n1,Roma\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fastOpts(t *testing.T) Options {
	return Options{
		Dir:         t.TempDir(),
		Workers:     2,
		MaxAttempts: 3,
		RetryBase:   time.Millisecond,
		RetryCap:    4 * time.Millisecond,
	}
}

// waitState polls until the job reaches a terminal state or the deadline.
func waitState(t *testing.T, m *Manager, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == want {
			return j
		}
		if j.State.Terminal() {
			t.Fatalf("job settled at %s (%q), want %s", j.State, j.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job never reached %s", want)
	return Job{}
}

// scriptRunner runs a fixed number of fake iterations, failing per script.
type scriptRunner struct {
	mu         sync.Mutex
	iterations int           // checkpoints to emit per full run
	failUntil  int           // attempts 1..failUntil-1 fail...
	transient  bool          // ...with a transient error when true
	failAfter  int           // checkpoints to emit before failing (per attempt)
	calls      int           // attempts observed
	resumeLens []int         // len(resume) seen at each attempt
	block      chan struct{} // when non-nil, Run blocks here after failAfter checkpoints
}

func (r *scriptRunner) Run(ctx context.Context, id string, spec Spec, resume []anon.Checkpoint, checkpoint anon.CheckpointFunc) (*Outcome, error) {
	r.mu.Lock()
	r.calls++
	call := r.calls
	r.resumeLens = append(r.resumeLens, len(resume))
	r.mu.Unlock()

	emit := func(i int) error {
		return checkpoint(anon.Checkpoint{
			Iteration: i,
			Decisions: []anon.Decision{{
				RowID: i + 1, Attr: "Area", Old: mdb.Const("Roma"),
				New: mdb.Null(uint64(i + 1)), Method: "local-suppression",
				Risk: 1, Iteration: i + 1, AffectedRows: 1,
			}},
			NewRisky: []int{i},
		})
	}
	done := len(resume)
	for i := done; i < r.iterations; i++ {
		if call < r.failUntil && i-done == r.failAfter {
			err := fmt.Errorf("attempt %d: assessor hiccup", call)
			if r.transient {
				return nil, risk.MarkTransient(err)
			}
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := emit(i); err != nil {
			return nil, err
		}
		if r.block != nil && i-done+1 == r.failAfter {
			select {
			case <-r.block:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	return &Outcome{Iterations: r.iterations, Decisions: r.iterations}, nil
}

func TestJobHappyPath(t *testing.T) {
	r := &scriptRunner{iterations: 3, failUntil: 0}
	opts := fastOpts(t)
	m, err := NewManager(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, err := m.Submit(Spec{Dataset: testInput(t), Params: map[string][]string{"measure": {"k-anonymity"}}})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, j.ID, StateDone)
	if got.Outcome == nil || got.Outcome.Iterations != 3 {
		t.Fatalf("outcome = %+v", got.Outcome)
	}
	if got.Attempts != 1 {
		t.Fatalf("attempts = %d", got.Attempts)
	}

	scan, err := journal.ReadFile(filepath.Join(opts.Dir, j.ID+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	types := make([]journal.Type, 0, len(scan.Records))
	for _, rec := range scan.Records {
		types = append(types, rec.Type)
	}
	want := []journal.Type{journal.TypeStart, journal.TypeIter, journal.TypeIter, journal.TypeIter, journal.TypeDone}
	if fmt.Sprint(types) != fmt.Sprint(want) {
		t.Fatalf("journal records = %v, want %v", types, want)
	}
}

func TestTransientFailureRetriedFromJournaledProgress(t *testing.T) {
	// Attempts 1 and 2 die (transiently) after committing 1 new iteration
	// each; attempt 3 finishes. The resume slice must grow across attempts:
	// committed work is never redone.
	r := &scriptRunner{iterations: 4, failUntil: 3, transient: true, failAfter: 1}
	m, err := NewManager(r, fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, err := m.Submit(Spec{Dataset: testInput(t)})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, j.ID, StateDone)
	if got.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", got.Attempts)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if fmt.Sprint(r.resumeLens) != fmt.Sprint([]int{0, 1, 2}) {
		t.Fatalf("resume lengths across attempts = %v, want [0 1 2]", r.resumeLens)
	}
}

func TestPermanentFailureFailsFast(t *testing.T) {
	r := &scriptRunner{iterations: 4, failUntil: 99, transient: false}
	m, err := NewManager(r, fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, err := m.Submit(Spec{Dataset: testInput(t)})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, j.ID, StateFailed)
	if got.Attempts != 1 {
		t.Fatalf("permanent failure burned %d attempts, want 1", got.Attempts)
	}
	if !strings.Contains(got.Error, "hiccup") {
		t.Fatalf("error = %q", got.Error)
	}
}

func TestTransientFailureExhaustsAttempts(t *testing.T) {
	r := &scriptRunner{iterations: 4, failUntil: 99, transient: true}
	m, err := NewManager(r, fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, err := m.Submit(Spec{Dataset: testInput(t)})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, j.ID, StateFailed)
	if got.Attempts != 3 {
		t.Fatalf("attempts = %d, want MaxAttempts=3", got.Attempts)
	}
}

func TestPanicIsolatedToJob(t *testing.T) {
	boom := RunnerFunc(func(ctx context.Context, id string, spec Spec, resume []anon.Checkpoint, cp anon.CheckpointFunc) (*Outcome, error) {
		if strings.HasSuffix(spec.Dataset, "boom.csv") {
			panic("measure exploded")
		}
		return &Outcome{}, nil
	})
	m, err := NewManager(boom, fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	dir := t.TempDir()
	bad := filepath.Join(dir, "boom.csv")
	good := filepath.Join(dir, "ok.csv")
	for _, p := range []string{bad, good} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	jb, err := m.Submit(Spec{Dataset: bad})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, jb.ID, StateFailed)
	if !strings.Contains(got.Error, "panicked") {
		t.Fatalf("error = %q", got.Error)
	}
	// The pool survived: another job still executes.
	jg, err := m.Submit(Spec{Dataset: good})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, jg.ID, StateDone)
}

func TestCancelRunningJob(t *testing.T) {
	r := &scriptRunner{iterations: 100, failAfter: 1, block: make(chan struct{})}
	opts := fastOpts(t)
	m, err := NewManager(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, err := m.Submit(Spec{Dataset: testInput(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateRunning)
	// Let it commit its first checkpoint, then cancel while blocked.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if jj, _ := m.Get(j.ID); len(jj.resume) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, j.ID, StateCancelled)
	if got.Outcome != nil {
		t.Fatal("cancelled job has an outcome")
	}
	// A user cancel is terminal: the journal must carry a done record...
	scan, err := journal.ReadFile(filepath.Join(opts.Dir, j.ID+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	if scan.Last().Type != journal.TypeDone {
		t.Fatalf("cancelled journal ends in %q, want done", scan.Last().Type)
	}
	// ...and cancelling again reports the job settled.
	if err := m.Cancel(j.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("second cancel: %v, want ErrTerminal", err)
	}
}

func TestCloseLeavesJournalResumableAndRecoverCompletes(t *testing.T) {
	opts := fastOpts(t)
	input := testInput(t)
	r := &scriptRunner{iterations: 5, failAfter: 2, block: make(chan struct{})}
	m, err := NewManager(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(Spec{Dataset: input})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateRunning)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if jj, _ := m.Get(j.ID); len(jj.resume) >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	m.Close() // simulated crash/shutdown mid-run

	scan, err := journal.ReadFile(filepath.Join(opts.Dir, j.ID+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	if scan.Last().Type == journal.TypeDone {
		t.Fatal("shutdown wrote a terminal record; job would not resume")
	}

	r2 := &scriptRunner{iterations: 5}
	m2, err := NewManager(r2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	resumed, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 || resumed[0] != j.ID {
		t.Fatalf("resumed = %v, want [%s]", resumed, j.ID)
	}
	got := waitState(t, m2, j.ID, StateDone)
	if !got.Recovered {
		t.Fatal("resumed job not marked Recovered")
	}
	r2.mu.Lock()
	lens := r2.resumeLens
	r2.mu.Unlock()
	if len(lens) != 1 || lens[0] != 2 {
		t.Fatalf("resume lengths = %v, want [2]: committed iterations must not rerun", lens)
	}
	// The journal now ends terminally and has exactly 5 iter records total
	// across both processes — no duplicates.
	scan, err = journal.ReadFile(filepath.Join(opts.Dir, j.ID+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	iters := 0
	for _, rec := range scan.Records {
		if rec.Type == journal.TypeIter {
			iters++
		}
	}
	if iters != 5 || scan.Last().Type != journal.TypeDone {
		t.Fatalf("recovered journal: %d iter records, last=%q", iters, scan.Last().Type)
	}
}

func TestRecoverTerminalJournalMaterializesJob(t *testing.T) {
	opts := fastOpts(t)
	r := &scriptRunner{iterations: 2}
	m, err := NewManager(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(Spec{Dataset: testInput(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateDone)
	m.Close()

	m2, err := NewManager(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	resumed, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 0 {
		t.Fatalf("terminal job re-queued: %v", resumed)
	}
	got, err := m2.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || got.Outcome == nil || got.Outcome.Iterations != 2 {
		t.Fatalf("recovered terminal job = %+v", got)
	}
}

func TestRecoverRefusesChangedInput(t *testing.T) {
	opts := fastOpts(t)
	input := testInput(t)
	r := &scriptRunner{iterations: 5, failAfter: 1, block: make(chan struct{})}
	m, err := NewManager(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(Spec{Dataset: input})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateRunning)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if jj, _ := m.Get(j.ID); len(jj.resume) >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	m.Close()
	if err := os.WriteFile(input, []byte("I,Area\n1,Milano\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := NewManager(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := m2.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || !strings.Contains(got.Error, "changed since submission") {
		t.Fatalf("job over a changed input = %s (%q), want failed/digest mismatch", got.State, got.Error)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cp := anon.Checkpoint{
		Iteration: 3,
		Decisions: []anon.Decision{
			{RowID: 7, Attr: "Area", Old: mdb.Const("Roma"), New: mdb.Null(4),
				Method: "local-suppression", Risk: 0.75, Iteration: 4, AffectedRows: 1},
			{RowID: 9, Attr: "Area", Old: mdb.Const("Milano"), New: mdb.Const("North"),
				Method: "global-recoding", Risk: 1, Iteration: 4, AffectedRows: 3},
		},
		Exhausted: []int{1, 2},
		NewRisky:  []int{5},
		RiskEval:  3 * time.Millisecond,
		Anon:      time.Millisecond,
	}
	back, err := decodeCheckpoint(encodeCheckpoint(cp))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", back) != fmt.Sprintf("%+v", cp) {
		t.Fatalf("round trip changed the checkpoint:\n  in:  %+v\n  out: %+v", cp, back)
	}
	// A suppression that somehow journaled a constant must be rejected, not
	// replayed into the dataset.
	bad := encodeCheckpoint(cp)
	bad.Decisions[0].New = "Roma"
	if _, err := decodeCheckpoint(bad); err == nil {
		t.Fatal("non-null suppression decoded without error")
	}
}

func TestSubmitRejectsMissingInput(t *testing.T) {
	m, err := NewManager(&scriptRunner{}, fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Submit(Spec{Dataset: "/nonexistent/input.csv"}); err == nil {
		t.Fatal("submit with missing input succeeded")
	}
	if _, err := m.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(nope) = %v, want ErrNotFound", err)
	}
	if err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel(nope) = %v, want ErrNotFound", err)
	}
}

// A cancel landing during the retry backoff must settle the job
// immediately — not burn the rest of the delay, and not spend another
// attempt running the cycle against a dead context.
func TestCancelDuringBackoffSettlesImmediately(t *testing.T) {
	r := &scriptRunner{iterations: 2, failUntil: 99, transient: true}
	opts := fastOpts(t)
	opts.RetryBase = time.Minute // a full backoff would blow the test deadline
	opts.RetryCap = time.Minute
	m, err := NewManager(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, err := m.Submit(Spec{Dataset: testInput(t), Params: map[string][]string{"measure": {"k-anonymity"}}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first attempt to fail and the job to enter its backoff.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r.mu.Lock()
		calls := r.calls
		r.mu.Unlock()
		if calls >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first attempt never ran")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, j.ID, StateCancelled)
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("cancel took %s — the backoff was not aborted", waited)
	}
	if got.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no attempt after cancel)", got.Attempts)
	}
	r.mu.Lock()
	calls := r.calls
	r.mu.Unlock()
	if calls != 1 {
		t.Fatalf("runner ran %d times, want 1", calls)
	}
}
