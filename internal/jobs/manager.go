package jobs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"vadasa/internal/anon"
	"vadasa/internal/faultfs"
	"vadasa/internal/govern"
	"vadasa/internal/journal"
	"vadasa/internal/risk"
)

// Options tunes a Manager. The zero value is usable: sensible defaults are
// filled in by NewManager.
type Options struct {
	// Dir is the journal directory. Required.
	Dir string
	// Workers bounds concurrent cycles (default 2).
	Workers int
	// MaxAttempts bounds runs per job including the first (default 3).
	// Only transient failures (risk.IsTransient) consume retries.
	MaxAttempts int
	// RetryBase is the first retry delay (default 100ms); each further
	// attempt doubles it up to RetryCap (default 5s). Actual delays are
	// jittered to 50–100% of the nominal value.
	RetryBase time.Duration
	RetryCap  time.Duration
	// QueueDepth bounds jobs waiting for a worker (default 256). Submit
	// fails fast when the queue is full rather than blocking the caller.
	QueueDepth int
	// FS is the filesystem journals and inputs are accessed through;
	// nil means the real one. Tests inject faultfs.Faulty to pin
	// disk-pressure behaviour deterministically.
	FS faultfs.FS
	// DiskHeadroom, when positive, is the free-byte floor for the
	// journal directory: appends are refused below it (pausing the
	// job), and paused jobs resume only once free space is back above
	// it.
	DiskHeadroom int64
	// Governor, when non-nil, is the scope job resource charges roll up
	// to (normally the server's root governor). Each job runs under its
	// own child scope; a saturated budget pauses the job rather than
	// failing it.
	Governor *govern.Governor
	// PauseProbe is how often paused jobs re-check for pressure to
	// clear (default 500ms; tests shorten it).
	PauseProbe time.Duration
	// JournalHook, when non-nil, builds the per-journal append observer
	// wired into every job journal (the replication shipper's Hook). id
	// is the job id, path its journal file. The observer sees each
	// record after the local fsync and may fail the append.
	JournalHook func(id, path string) func(seq int, line []byte) error
}

// Manager owns the worker pool and the journal directory. Create one with
// NewManager, call Recover once to re-queue interrupted jobs, and Close on
// shutdown; Close leaves running jobs' journals un-terminated on purpose so
// the next Recover resumes them.
type Manager struct {
	runner Runner
	opts   Options

	baseCtx context.Context
	stop    context.CancelFunc
	queue   chan *Job
	wg      sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*Job
	writers map[string]*journal.Writer
	cancels map[string]context.CancelFunc
	closed  bool
}

// NewManager starts a manager with its worker pool. The journal directory is
// created if missing.
func NewManager(runner Runner, opts Options) (*Manager, error) {
	if runner == nil {
		return nil, fmt.Errorf("jobs: Runner is required")
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("jobs: Options.Dir is required")
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating journal dir: %w", err)
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 100 * time.Millisecond
	}
	if opts.RetryCap <= 0 {
		opts.RetryCap = 5 * time.Second
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.PauseProbe <= 0 {
		opts.PauseProbe = 500 * time.Millisecond
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		runner:  runner,
		opts:    opts,
		baseCtx: ctx,
		stop:    stop,
		queue:   make(chan *Job, opts.QueueDepth),
		jobs:    make(map[string]*Job),
		writers: make(map[string]*journal.Writer),
		cancels: make(map[string]context.CancelFunc),
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.resumeLoop()
	return m, nil
}

// journalConfig is the filesystem configuration one job's journal uses.
func (m *Manager) journalConfig(id, path string) journal.Config {
	cfg := journal.Config{FS: m.opts.FS, DiskHeadroom: m.opts.DiskHeadroom}
	if m.opts.JournalHook != nil {
		cfg.OnAppend = m.opts.JournalHook(id, path)
	}
	return cfg
}

// Close stops accepting submissions, cancels running cycles, and waits for
// the workers. Interrupted jobs keep their journals un-terminated — unlike a
// user Cancel, shutdown is not a verdict on the job, and Recover on the next
// start re-queues them from the last committed iteration.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, w := range m.writers {
		w.Close()
		delete(m.writers, id)
	}
}

// Submit journals and enqueues a new job. The start record — spec plus the
// input file's SHA-256 — hits disk before Submit returns, so a crash a
// microsecond later loses nothing.
func (m *Manager) Submit(spec Spec) (Job, error) {
	digest, err := digestFile(m.opts.FS, spec.Dataset)
	if err != nil {
		return Job{}, fmt.Errorf("jobs: digesting input: %w", err)
	}
	id, err := newID()
	if err != nil {
		return Job{}, err
	}
	w, err := journal.CreateWith(m.journalPath(id), m.journalConfig(id, m.journalPath(id)))
	if err != nil {
		return Job{}, fmt.Errorf("jobs: creating journal: %w", err)
	}
	now := time.Now()
	if err := w.Append(journal.TypeStart, startPayload{JobID: id, Spec: spec, Digest: digest, Created: now}); err != nil {
		w.Close()
		return Job{}, fmt.Errorf("jobs: journaling start: %w", err)
	}
	j := &Job{ID: id, Spec: spec, State: StatePending, Created: now}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		w.Close()
		return Job{}, fmt.Errorf("jobs: manager is closed")
	}
	m.jobs[id] = j
	m.writers[id] = w
	m.mu.Unlock()

	select {
	case m.queue <- j:
	default:
		m.mu.Lock()
		delete(m.jobs, id)
		delete(m.writers, id)
		m.mu.Unlock()
		w.Close()
		m.opts.FS.Remove(m.journalPath(id))
		return Job{}, fmt.Errorf("jobs: queue full (%d pending)", m.opts.QueueDepth)
	}
	return m.snapshot(j), nil
}

// Get returns a copy of the job's current state.
func (m *Manager) Get(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	return *j, nil
}

// List returns all known jobs, newest first.
func (m *Manager) List() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Created.Equal(out[k].Created) {
			return out[i].Created.After(out[k].Created)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Cancel aborts a job. A queued job is finalized immediately; a running one
// has its context cancelled and the worker writes the terminal record. In
// both cases the journal gets a done record with state "cancelled" — unlike
// Close, a user cancel IS a verdict and the job must not resurrect on the
// next restart.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	switch j.State {
	case StatePending, StatePaused:
		m.finishLocked(j, StateCancelled, nil, "cancelled before execution")
		m.mu.Unlock()
		return nil
	case StateRunning:
		j.userCancel = true
		cancel := m.cancels[id]
		m.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		m.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrTerminal, id, j.State)
	}
}

// Recover scans the journal directory: journals ending in a done record are
// materialized as terminal jobs (status survives restarts); journals without
// one are jobs the previous process never finished — their committed
// iterations are decoded and the job re-queued to resume right after the
// last of them. Torn trailing records were, by the write-ahead contract,
// never acted upon, so truncating them loses no work. Returns the ids of
// re-queued jobs.
func (m *Manager) Recover() ([]string, error) {
	paths, err := m.opts.FS.Glob(filepath.Join(m.opts.Dir, "*.journal"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var resumed []string
	for _, path := range paths {
		id := strings.TrimSuffix(filepath.Base(path), ".journal")
		m.mu.Lock()
		_, known := m.jobs[id]
		m.mu.Unlock()
		if known {
			continue
		}
		if rid, err := m.recoverOne(id, path); err != nil {
			return resumed, fmt.Errorf("jobs: recovering %s: %w", filepath.Base(path), err)
		} else if rid != "" {
			resumed = append(resumed, rid)
		}
	}
	return resumed, nil
}

// recoverOne loads one journal; it returns the job id when the job was
// re-queued, "" when it was terminal or unusable.
func (m *Manager) recoverOne(id, path string) (string, error) {
	scan, err := journal.ReadFileIn(m.opts.FS, path)
	if err != nil {
		return "", err
	}
	if len(scan.Records) == 0 || scan.Records[0].Type != journal.TypeStart {
		// Nothing durable ever committed (the crash landed inside the very
		// first append): there is no spec to resume, and nothing is lost.
		return "", nil
	}
	var start startPayload
	if err := scan.Records[0].Decode(&start); err != nil {
		return "", fmt.Errorf("decoding start record: %w", err)
	}
	if start.JobID != "" && start.JobID != id {
		return "", fmt.Errorf("journal %s claims job id %s", id, start.JobID)
	}
	j := &Job{ID: id, Spec: start.Spec, Created: start.Created, Recovered: true}

	if last := scan.Last(); last.Type == journal.TypeDone {
		var done donePayload
		if err := last.Decode(&done); err != nil {
			return "", fmt.Errorf("decoding done record: %w", err)
		}
		j.State = done.State
		j.Error = done.Error
		j.Attempts = done.Attempts
		j.Outcome = done.Outcome
		m.mu.Lock()
		m.jobs[id] = j
		m.mu.Unlock()
		return "", nil
	}

	// Unterminated: the job was live when the process died. Reopen (which
	// truncates any torn tail) and rebuild the committed progress.
	w, scan, err := journal.OpenAppendWith(path, m.journalConfig(id, path))
	if err != nil {
		return "", err
	}
	for _, rec := range scan.Records[1:] {
		if rec.Type != journal.TypeIter {
			w.Close()
			return "", fmt.Errorf("unterminated journal holds a %q record", rec.Type)
		}
		var p iterPayload
		if err := rec.Decode(&p); err != nil {
			w.Close()
			return "", fmt.Errorf("decoding iteration record: %w", err)
		}
		cp, err := decodeCheckpoint(p)
		if err != nil {
			w.Close()
			return "", err
		}
		j.resume = append(j.resume, cp)
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		w.Close()
		return "", fmt.Errorf("manager is closed")
	}
	m.jobs[id] = j
	m.writers[id] = w

	// The journal is the truth about the input it was recorded against; a
	// dataset file that changed since would make every journaled decision
	// meaningless. Permanent failure, not a retry.
	digest, err := digestFile(m.opts.FS, start.Spec.Dataset)
	if err != nil {
		m.finishLocked(j, StateFailed, nil, fmt.Sprintf("input vanished during recovery: %v", err))
		m.mu.Unlock()
		return "", nil
	}
	if digest != start.Digest {
		m.finishLocked(j, StateFailed, nil, fmt.Sprintf("input %s changed since submission (digest %.12s != %.12s)", start.Spec.Dataset, digest, start.Digest))
		m.mu.Unlock()
		return "", nil
	}
	j.State = StatePending
	m.mu.Unlock()

	select {
	case m.queue <- j:
		return id, nil
	default:
		m.mu.Lock()
		m.finishLocked(j, StateFailed, nil, "recovery queue full")
		m.mu.Unlock()
		return "", nil
	}
}

func (m *Manager) journalPath(id string) string {
	return filepath.Join(m.opts.Dir, id+".journal")
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case j := <-m.queue:
			m.execute(j)
		}
	}
}

// execute drives one job to a terminal state — or, when the manager itself
// shuts down mid-run, abandons it with the journal left open for recovery.
func (m *Manager) execute(j *Job) {
	m.mu.Lock()
	if j.State != StatePending { // cancelled while queued
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	m.cancels[j.ID] = cancel
	j.State = StateRunning
	if j.Started.IsZero() {
		j.Started = time.Now()
	}
	m.mu.Unlock()
	if m.opts.Governor != nil {
		// Per-job scope: the cycle's datalog, SUDA and clone charges
		// roll up through it to the server budget, and Close refunds
		// whatever the attempt still held, pass or fail.
		jg := m.opts.Governor.Child("job "+j.ID, govern.Limits{})
		defer jg.Close()
		ctx = govern.With(ctx, jg)
	}
	defer func() {
		cancel()
		m.mu.Lock()
		delete(m.cancels, j.ID)
		m.mu.Unlock()
	}()

	for {
		m.mu.Lock()
		j.Attempts++
		attempt := j.Attempts
		m.mu.Unlock()

		out, err := m.attempt(ctx, j)
		switch {
		case err == nil:
			m.mu.Lock()
			m.finishLocked(j, StateDone, out, "")
			m.mu.Unlock()
			return
		case ctx.Err() != nil:
			m.mu.Lock()
			if j.userCancel {
				m.finishLocked(j, StateCancelled, nil, err.Error())
			}
			// Manager shutdown: no terminal record — Recover resumes the
			// job from its last committed iteration on the next start.
			m.mu.Unlock()
			return
		case pausable(err):
			// Disk pressure or a saturated resource budget is
			// back-pressure, not a verdict: park the job at its last
			// journaled checkpoint with the journal open. The resume
			// loop re-queues it once pressure clears; across a restart
			// the un-terminated journal recovers it like any
			// interrupted job. The attempt is refunded — waiting for
			// space must not eat the retry budget.
			m.mu.Lock()
			j.Attempts--
			j.State = StatePaused
			j.Error = err.Error()
			m.mu.Unlock()
			return
		case risk.IsTransient(err) && attempt < m.opts.MaxAttempts:
			timer := time.NewTimer(m.backoff(attempt))
			select {
			case <-ctx.Done():
				// Cancelled or shut down while waiting: settle the job
				// now instead of looping into a doomed attempt — the
				// retry would only burn an attempt running the cycle
				// against a dead context.
				timer.Stop()
				m.mu.Lock()
				if j.userCancel {
					m.finishLocked(j, StateCancelled, nil, ctx.Err().Error())
				}
				// Manager shutdown: no terminal record — Recover resumes
				// the job from its last committed iteration.
				m.mu.Unlock()
				return
			case <-timer.C:
			}
		default:
			m.mu.Lock()
			m.finishLocked(j, StateFailed, nil, err.Error())
			m.mu.Unlock()
			return
		}
	}
}

// attempt runs the Runner once with panic isolation: a panicking measure or
// anonymizer fails this job (permanently — a deterministic cycle panics the
// same way on every retry) instead of killing the whole worker pool.
func (m *Manager) attempt(ctx context.Context, j *Job) (out *Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("jobs: cycle panicked: %v", r)
		}
	}()
	m.mu.Lock()
	resume := j.resume[:len(j.resume):len(j.resume)]
	m.mu.Unlock()
	checkpoint := func(cp anon.Checkpoint) error {
		m.mu.Lock()
		defer m.mu.Unlock()
		w := m.writers[j.ID]
		if w == nil {
			return fmt.Errorf("jobs: journal for %s is closed", j.ID)
		}
		if err := w.Append(journal.TypeIter, encodeCheckpoint(cp)); err != nil {
			// A failed append may have torn a partial record into the
			// file (ENOSPC mid-write). Truncate back to the committed
			// prefix now — shrinking needs no free space — so both an
			// in-process resume and a post-crash recovery see a clean
			// journal. The original error still decides the job's fate.
			if rerr := w.Repair(); rerr != nil {
				return fmt.Errorf("%w (and repair failed: %v)", err, rerr)
			}
			return err
		}
		j.resume = append(j.resume, cp)
		return nil
	}
	return m.runner.Run(ctx, j.ID, j.Spec, resume, checkpoint)
}

// finishLocked writes the terminal journal record and settles the in-memory
// state. Callers hold m.mu.
func (m *Manager) finishLocked(j *Job, state State, out *Outcome, errMsg string) {
	if w := m.writers[j.ID]; w != nil {
		p := donePayload{State: state, Error: errMsg, Attempts: j.Attempts, Outcome: out}
		if aerr := w.Append(journal.TypeDone, p); aerr != nil && errMsg == "" {
			errMsg = fmt.Sprintf("journaling terminal state: %v", aerr)
		}
		w.Close()
		delete(m.writers, j.ID)
	}
	j.State = state
	j.Outcome = out
	j.Error = errMsg
	j.Finished = time.Now()
}

// snapshot copies a job under the lock.
func (m *Manager) snapshot(j *Job) Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return *j
}

// pressure reports why paused jobs cannot yet resume: the journal
// volume is below the disk-headroom floor, or the governor is
// saturated. Nil means the coast is clear.
func (m *Manager) pressure() error {
	if m.opts.DiskHeadroom > 0 {
		free, err := m.opts.FS.Free(m.opts.Dir)
		if err == nil && free >= 0 && free < m.opts.DiskHeadroom {
			return fmt.Errorf("jobs: %d bytes free below %d headroom: %w", free, m.opts.DiskHeadroom, syscall.ENOSPC)
		}
	}
	if m.opts.Governor != nil {
		if err := m.opts.Governor.Err(); err != nil {
			return err
		}
	}
	return nil
}

// resumeLoop periodically re-queues paused jobs once pressure clears.
// It is the other half of the pause contract: a job parked on ENOSPC
// or a saturated budget is the manager's to wake, not the client's.
func (m *Manager) resumeLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.opts.PauseProbe)
	defer ticker.Stop()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case <-ticker.C:
			m.resumePaused()
		}
	}
}

func (m *Manager) resumePaused() {
	if m.pressure() != nil {
		return
	}
	m.mu.Lock()
	var ready []*Job
	for _, j := range m.jobs {
		if j.State == StatePaused {
			ready = append(ready, j)
		}
	}
	// Oldest first, ties by id: deterministic wake order.
	sort.Slice(ready, func(i, k int) bool {
		if !ready[i].Created.Equal(ready[k].Created) {
			return ready[i].Created.Before(ready[k].Created)
		}
		return ready[i].ID < ready[k].ID
	})
	for _, j := range ready {
		j.State = StatePending
		j.Error = ""
	}
	m.mu.Unlock()
	for _, j := range ready {
		select {
		case m.queue <- j:
		default:
			// Queue full: park again and try at the next probe.
			m.mu.Lock()
			if j.State == StatePending {
				j.State = StatePaused
			}
			m.mu.Unlock()
		}
	}
}

// backoff returns the jittered delay before retry number attempt+1:
// exponential in the attempt count, capped, and scattered over 50–100% of
// the nominal value so a burst of failures does not retry in lockstep.
func (m *Manager) backoff(attempt int) time.Duration {
	d := m.opts.RetryBase
	for i := 1; i < attempt && d < m.opts.RetryCap; i++ {
		d *= 2
	}
	if d > m.opts.RetryCap {
		d = m.opts.RetryCap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + rand.N(half+1)
}
