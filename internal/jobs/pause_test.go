package jobs

import (
	"context"
	"strings"
	"testing"
	"time"

	"vadasa/internal/anon"
	"vadasa/internal/faultfs"
	"vadasa/internal/govern"
	"vadasa/internal/journal"
)

// A checkpoint append refused for lack of disk headroom pauses the job
// at its journaled prefix; when space frees, the resume loop re-queues
// it and the second attempt starts from the committed checkpoints.
func TestDiskPressurePausesAndResumes(t *testing.T) {
	faulty := faultfs.NewFaulty(faultfs.OS)
	opts := fastOpts(t)
	opts.FS = faulty
	opts.DiskHeadroom = 1 << 20
	opts.PauseProbe = 2 * time.Millisecond

	r := &scriptRunner{iterations: 4, failAfter: 2, block: make(chan struct{})}
	m, err := NewManager(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	j, err := m.Submit(Spec{Dataset: testInput(t)})
	if err != nil {
		t.Fatal(err)
	}
	// The runner parks after journaling 2 checkpoints; drop free space
	// below the headroom floor, then let it try checkpoint 3.
	waitCheckpoints(t, m, j.ID, 2)
	faulty.SetFree(100)
	close(r.block)

	paused := waitState(t, m, j.ID, StatePaused)
	if !strings.Contains(paused.Error, "headroom") {
		t.Fatalf("paused job error = %q, want a headroom explanation", paused.Error)
	}
	if paused.Attempts != 0 {
		t.Fatalf("paused job consumed %d attempts; pauses must be free", paused.Attempts)
	}

	// The journal holds exactly the committed prefix, no torn tail.
	scan, err := journal.ReadFileIn(faulty, m.journalPath(j.ID))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(scan.Records); got != 3 || scan.Torn { // start + 2 iters
		t.Fatalf("journal has %d records (torn=%v), want 3 clean", got, scan.Torn)
	}

	faulty.SetFree(-1) // space freed
	got := waitState(t, m, j.ID, StateDone)
	if got.Outcome == nil || got.Outcome.Iterations != 4 {
		t.Fatalf("outcome = %+v, want 4 iterations", got.Outcome)
	}
	if got.Attempts != 1 {
		t.Fatalf("finished with %d attempts, want 1", got.Attempts)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.resumeLens) != 2 || r.resumeLens[0] != 0 || r.resumeLens[1] != 2 {
		t.Fatalf("resume lengths per attempt = %v, want [0 2]", r.resumeLens)
	}
}

// waitCheckpoints polls until the job's journal holds the start record
// plus n committed iterations.
func waitCheckpoints(t *testing.T, m *Manager, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		m.mu.Lock()
		got := 0
		if j := m.jobs[id]; j != nil {
			got = len(j.resume)
		}
		m.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job never journaled %d checkpoints", n)
}

// A run failing on a saturated resource budget pauses instead of
// consuming retries, and resumes once the budget frees.
func TestGovernorSaturationPausesAndResumes(t *testing.T) {
	gov := govern.New("server", govern.Limits{MaxBytes: 1000})
	hold := gov.Child("hog", govern.Limits{})
	if err := hold.Reserve(govern.Memory, 1000); err != nil {
		t.Fatal(err)
	}

	runner := RunnerFunc(func(ctx context.Context, id string, spec Spec, resume []anon.Checkpoint, cp anon.CheckpointFunc) (*Outcome, error) {
		// Model a cycle whose clone reservation trips the budget while
		// the hog holds it all, exactly as anon.ResumeContext would.
		if err := govern.From(ctx).Reserve(govern.Memory, 500); err != nil {
			return nil, err
		}
		return &Outcome{Iterations: 1}, nil
	})

	opts := fastOpts(t)
	opts.Governor = gov
	opts.PauseProbe = 2 * time.Millisecond
	m, err := NewManager(runner, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	j, err := m.Submit(Spec{Dataset: testInput(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StatePaused)
	hold.Close() // budget freed
	got := waitState(t, m, j.ID, StateDone)
	if got.Attempts != 1 {
		t.Fatalf("finished with %d attempts, want 1", got.Attempts)
	}
	// The job's scope closes just after the state settles; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for gov.Used(govern.Memory) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if used := gov.Used(govern.Memory); used != 0 {
		t.Fatalf("governor holds %d bytes after the job finished", used)
	}
}

// Cancelling a paused job settles it immediately with a terminal
// journal record; it must not resurrect when pressure clears.
func TestCancelPausedJob(t *testing.T) {
	faulty := faultfs.NewFaulty(faultfs.OS)
	opts := fastOpts(t)
	opts.FS = faulty
	opts.DiskHeadroom = 1 << 20
	opts.PauseProbe = time.Hour // keep the resume loop out of this test

	r := &scriptRunner{iterations: 2, failAfter: 1, block: make(chan struct{})}
	m, err := NewManager(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, err := m.Submit(Spec{Dataset: testInput(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitCheckpoints(t, m, j.ID, 1)
	faulty.SetFree(100)
	close(r.block)
	waitState(t, m, j.ID, StatePaused)

	faulty.SetFree(-1) // space back — the done record can be journaled
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", got.State)
	}
	scan, err := journal.ReadFileIn(faulty, m.journalPath(j.ID))
	if err != nil {
		t.Fatal(err)
	}
	if last := scan.Last(); last.Type != journal.TypeDone {
		t.Fatalf("journal last record = %s, want done", last.Type)
	}
}
