// Package jobs runs anonymization cycles as durable, asynchronous jobs: a
// bounded worker pool executes submissions, every committed iteration is
// journaled through internal/journal before the cycle may proceed, transient
// assessor failures are retried with exponential backoff from the journaled
// progress, and on startup the journal directory is scanned so jobs
// interrupted by a crash resume from their last committed iteration.
//
// The package is deliberately ignorant of how a cycle is configured: the
// Runner interface is implemented by the embedding server, which interprets
// Spec.Params. jobs only guarantees durability, retries, and isolation.
package jobs

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"syscall"
	"time"

	"vadasa/internal/anon"
	"vadasa/internal/faultfs"
	"vadasa/internal/govern"
)

// IsDiskPressure reports whether err stems from a full or
// quota-exhausted volume (ENOSPC, EDQUOT). Disk pressure is transient
// in a stronger sense than a flaky assessor: space can free at any
// moment and no number of back-to-back retries helps until it does —
// so the manager pauses the job at its journaled prefix instead of
// burning retry attempts or failing permanently.
func IsDiskPressure(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}

// pausable reports whether a run failure is back-pressure rather than
// a verdict on the job: disk pressure or a saturated resource budget.
func pausable(err error) bool {
	var ebe *govern.ErrBudgetExceeded
	return IsDiskPressure(err) || errors.As(err, &ebe)
}

// Spec describes one anonymization job. It must round-trip through JSON
// unchanged: the journal's start record is the only copy that survives a
// crash, and resuming with a different configuration would replay decisions
// into a cycle that never made them.
type Spec struct {
	// Dataset is the path of the input CSV. The file is digested at submit
	// time; recovery refuses to resume over a file that changed since.
	Dataset string `json:"dataset"`
	// Params carries the cycle configuration (measure, threshold, semantics,
	// anonymizer choices) in URL-query form, interpreted by the Runner.
	Params map[string][]string `json:"params,omitempty"`
}

// State is a job's lifecycle phase.
type State string

// Job states. Pending, Running and Paused are transient; the rest are
// terminal and recorded in the journal's done record.
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	// StatePaused marks a job parked at its last journaled checkpoint
	// because the disk ran out of headroom or the resource governor was
	// saturated. Paused is not a verdict: the manager re-queues the job
	// when pressure clears, and across a restart the un-terminated
	// journal makes Recover resume it like any interrupted job.
	StatePaused State = "paused"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Outcome summarizes a completed cycle. OutputPath points at the anonymized
// CSV the Runner wrote; the rest mirrors anon.Result's counters.
type Outcome struct {
	OutputPath    string  `json:"output_path"`
	Iterations    int     `json:"iterations"`
	InitialRisky  int     `json:"initial_risky"`
	EverRisky     int     `json:"ever_risky"`
	NullsInjected int     `json:"nulls_injected"`
	InfoLoss      float64 `json:"info_loss"`
	Residual      []int   `json:"residual,omitempty"`
	Decisions     int     `json:"decisions"`
}

// Job is the observable state of a submission. Accessors of Manager return
// copies, so readers never race the worker mutating the original.
type Job struct {
	ID       string    `json:"id"`
	Spec     Spec      `json:"spec"`
	State    State     `json:"state"`
	Error    string    `json:"error,omitempty"`
	Attempts int       `json:"attempts"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	Outcome  *Outcome  `json:"outcome,omitempty"`
	// Recovered marks a job re-queued from the journal after a restart.
	Recovered bool `json:"recovered,omitempty"`

	// resume holds the committed checkpoints of the current run, fed back
	// into the Runner on retry so a transient failure does not redo (or
	// double-journal) finished iterations.
	resume     []anon.Checkpoint
	userCancel bool
}

// Runner executes one anonymization cycle. resume carries the committed
// checkpoints to replay; checkpoint must be wired into the cycle so every
// iteration is journaled before the next one starts. Implementations label
// retryable failures with risk.MarkTransient; everything else is permanent.
type Runner interface {
	Run(ctx context.Context, id string, spec Spec, resume []anon.Checkpoint, checkpoint anon.CheckpointFunc) (*Outcome, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx context.Context, id string, spec Spec, resume []anon.Checkpoint, checkpoint anon.CheckpointFunc) (*Outcome, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, id string, spec Spec, resume []anon.Checkpoint, checkpoint anon.CheckpointFunc) (*Outcome, error) {
	return f(ctx, id, spec, resume, checkpoint)
}

// ErrNotFound reports an unknown job id.
var ErrNotFound = errors.New("jobs: no such job")

// ErrTerminal reports an operation on a job that already finished.
var ErrTerminal = errors.New("jobs: job already finished")

// newID returns a 16-hex-char random job identifier.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: generating id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// digestFile returns the hex SHA-256 of the file at path — the fingerprint
// recorded at submit time and re-checked before a recovery resumes over it.
func digestFile(fsys faultfs.FS, path string) (string, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
