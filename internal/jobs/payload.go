package jobs

import (
	"fmt"
	"time"

	"vadasa/internal/anon"
	"vadasa/internal/mdb"
)

// The journal framing (internal/journal) carries opaque JSON payloads; the
// schemas below are what jobs writes into them. Values travel in the textual
// form of mdb.Value.String ("⊥7" for labelled nulls), so the journal stays
// greppable and the parser on the way back re-observes null ids.

// startPayload is the first record of every job journal: everything needed
// to re-create the run after a crash, plus the input digest that guards
// against resuming over a dataset that changed on disk.
type startPayload struct {
	JobID   string    `json:"job_id"`
	Spec    Spec      `json:"spec"`
	Digest  string    `json:"digest"`
	Created time.Time `json:"created"`
}

// decisionRecord is the wire form of anon.Decision.
type decisionRecord struct {
	RowID        int     `json:"row"`
	Attr         string  `json:"attr"`
	Old          string  `json:"old"`
	New          string  `json:"new"`
	Method       string  `json:"method"`
	Risk         float64 `json:"risk"`
	Iteration    int     `json:"iter"`
	AffectedRows int     `json:"affected"`
}

// iterPayload is one committed cycle iteration — the unit of recovery.
type iterPayload struct {
	Iteration  int              `json:"iteration"`
	Decisions  []decisionRecord `json:"decisions,omitempty"`
	Exhausted  []int            `json:"exhausted,omitempty"`
	NewRisky   []int            `json:"new_risky,omitempty"`
	RiskEvalNS int64            `json:"risk_eval_ns"`
	AnonNS     int64            `json:"anon_ns"`
}

// donePayload terminates a journal. Its presence is what recovery keys on: a
// journal without one describes a job that was still running when the
// process died, and must be re-queued.
type donePayload struct {
	State    State    `json:"state"`
	Error    string   `json:"error,omitempty"`
	Attempts int      `json:"attempts"`
	Outcome  *Outcome `json:"outcome,omitempty"`
}

func encodeCheckpoint(cp anon.Checkpoint) iterPayload {
	p := iterPayload{
		Iteration:  cp.Iteration,
		Exhausted:  cp.Exhausted,
		NewRisky:   cp.NewRisky,
		RiskEvalNS: int64(cp.RiskEval),
		AnonNS:     int64(cp.Anon),
	}
	for _, d := range cp.Decisions {
		p.Decisions = append(p.Decisions, decisionRecord{
			RowID:        d.RowID,
			Attr:         d.Attr,
			Old:          d.Old.String(),
			New:          d.New.String(),
			Method:       d.Method,
			Risk:         d.Risk,
			Iteration:    d.Iteration,
			AffectedRows: d.AffectedRows,
		})
	}
	return p
}

func decodeCheckpoint(p iterPayload) (anon.Checkpoint, error) {
	cp := anon.Checkpoint{
		Iteration: p.Iteration,
		Exhausted: p.Exhausted,
		NewRisky:  p.NewRisky,
		RiskEval:  time.Duration(p.RiskEvalNS),
		Anon:      time.Duration(p.AnonNS),
	}
	// The scratch allocator only absorbs Observe calls from explicit ⊥i
	// tokens; the resuming cycle re-observes the ids on its own dataset
	// clone during replay.
	var scratch mdb.NullAllocator
	for _, d := range p.Decisions {
		newV := mdb.ParseValue(d.New, &scratch)
		if d.Method == "local-suppression" && !newV.IsNull() {
			return anon.Checkpoint{}, fmt.Errorf("jobs: journaled suppression of tuple %d has non-null value %q", d.RowID, d.New)
		}
		cp.Decisions = append(cp.Decisions, anon.Decision{
			RowID:        d.RowID,
			Attr:         d.Attr,
			Old:          mdb.ParseValue(d.Old, &scratch),
			New:          newV,
			Method:       d.Method,
			Risk:         d.Risk,
			Iteration:    d.Iteration,
			AffectedRows: d.AffectedRows,
		})
	}
	return cp, nil
}
