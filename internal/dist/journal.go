package dist

import (
	"vadasa/internal/journal"
)

// LeaseAction tags what a lease journal record witnesses.
const (
	// LeaseGrant: the epoch was issued to a worker for a task.
	LeaseGrant = "grant"
	// LeaseRevoke: the epoch was invalidated (timeout, transport failure,
	// corrupt reply) before any reply was admitted under it.
	LeaseRevoke = "revoke"
	// LeaseAccept: a reply carrying the epoch passed the fence; the task
	// is settled and every other epoch of the task is dead.
	LeaseAccept = "accept"
)

// LeasePayload is the journal.TypeLease record body. Lease records are
// advisory for a live run — the in-memory fence is authoritative — but
// they make reassignment crash-consistent: a supervisor restarting over
// the same journal seeds its epoch counter above every epoch ever granted
// (RecoverFence), so a worker surviving from the previous incarnation
// cannot have a stale reply admitted by the new one.
type LeasePayload struct {
	Run    string `json:"run"`
	Task   int    `json:"task"`
	Epoch  uint64 `json:"epoch"`
	Worker string `json:"worker,omitempty"`
	Action string `json:"action"`
}

// RecoverFence scans a journal for lease records and returns the highest
// epoch ever granted — the floor a restarted supervisor must start above
// (Options.FirstEpoch = RecoverFence(scan) + 1). Records that fail to
// decode are skipped: the journal layer already validated framing and
// checksums, and an unknown payload schema must not block recovery.
func RecoverFence(scan journal.Scan) uint64 {
	var max uint64
	for _, rec := range scan.Records {
		if rec.Type != journal.TypeLease {
			continue
		}
		var p LeasePayload
		if err := rec.Decode(&p); err != nil {
			continue
		}
		if p.Epoch > max {
			max = p.Epoch
		}
	}
	return max
}
