package dist

import (
	"context"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vadasa/internal/mdb"
	"vadasa/internal/risk"
)

// testRows builds a deterministic synthetic shard workload: group
// aggregates with fractional weights, so any float mishandling on the wire
// or in the merge shows up as a bitwise mismatch.
func testRows(rng *rand.Rand, n int) []TaskRow {
	rows := make([]TaskRow, n)
	for i := range rows {
		f := 1 + rng.Intn(6)
		rows[i] = TaskRow{
			Pos:       i,
			ID:        i + 1,
			Freq:      f,
			WeightSum: float64(f) * (1 + rng.Float64()*4),
		}
	}
	return rows
}

func testSpecs() []MeasureSpec {
	return []MeasureSpec{
		{Kind: KindKAnonymity, K: 3},
		{Kind: KindReIdentification},
		{Kind: KindIndividualRisk, Estimator: int(risk.MonteCarlo), Samples: 40, Seed: 7},
	}
}

// httpWorker starts an in-process worker over httptest and returns a
// transport addressing it.
func httpWorker(t *testing.T, opts WorkerOptions) *HTTPTransport {
	t.Helper()
	srv := httptest.NewServer(WorkerHandler(opts))
	t.Cleanup(srv.Close)
	return NewHTTPTransport(strings.TrimPrefix(srv.URL, "http://"), nil)
}

// incrTestDataset mirrors the risk package's incremental-test dataset:
// random QI values and fractional weights, so float mishandling anywhere in
// the distributed path surfaces as a bitwise mismatch.
func incrTestDataset(rng *rand.Rand, rows, qis, domain int) *mdb.Dataset {
	attrs := make([]mdb.Attribute, qis+1)
	for i := 0; i < qis; i++ {
		attrs[i] = mdb.Attribute{Name: string(rune('A' + i)), Category: mdb.QuasiIdentifier}
	}
	attrs[qis] = mdb.Attribute{Name: "W", Category: mdb.Weight}
	d := mdb.NewDataset("rand", attrs)
	for r := 0; r < rows; r++ {
		vals := make([]mdb.Value, qis+1)
		for i := 0; i < qis; i++ {
			vals[i] = mdb.Const(string(rune('a' + rng.Intn(domain))))
		}
		vals[qis] = mdb.Const("w")
		d.Append(&mdb.Row{ID: r + 1, Values: vals, Weight: 1 + rng.Float64()*4})
	}
	return d
}

func buildGroupIndex(ctx context.Context, d *mdb.Dataset, attrs []int) (*mdb.GroupIndex, error) {
	return mdb.BuildGroupIndex(ctx, d, attrs, mdb.MaybeMatch)
}

func assertSameBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d values, want %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: value %d = %x, want %x (%g vs %g)",
				name, i, math.Float64bits(got[i]), math.Float64bits(want[i]), got[i], want[i])
		}
	}
}

// Property: SpecFor round-trips every distributable measure, and
// MeasureSpec.Score lands on the same bits as the measure's own ScoreGroup.
func TestSpecForRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := testRows(rng, 300)
	for _, m := range []risk.IncrementalAssessor{
		risk.KAnonymity{K: 3},
		risk.ReIdentification{},
		risk.IndividualRisk{Estimator: risk.MonteCarlo, Samples: 40, Seed: 7},
		risk.IndividualRisk{Estimator: risk.PosteriorSeries},
	} {
		spec, ok := SpecFor(m)
		if !ok {
			t.Fatalf("SpecFor(%s) not distributable", m.Name())
		}
		got, err := spec.Score(rows)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, len(rows))
		scorer := m.(risk.GroupScorer)
		for i, r := range rows {
			want[i], err = scorer.ScoreGroup(mdb.GroupInfo{Freq: r.Freq, WeightSum: r.WeightSum}, r.ID)
			if err != nil {
				t.Fatal(err)
			}
		}
		assertSameBits(t, m.Name(), got, want)
	}
	if _, ok := SpecFor(risk.SUDA{Threshold: 3}); ok {
		t.Fatal("SUDA must not be distributable")
	}
}

func TestScoreErrorIdentity(t *testing.T) {
	rows := []TaskRow{
		{Pos: 0, ID: 10, Freq: 2, WeightSum: 3.5},
		{Pos: 1, ID: 11, Freq: 1, WeightSum: -2},
		{Pos: 2, ID: 12, Freq: 1, WeightSum: 0},
	}
	_, err := MeasureSpec{Kind: KindReIdentification}.Score(rows)
	want := "risk: row 11 has non-positive group weight -2"
	if err == nil || err.Error() != want {
		t.Fatalf("err = %v, want %q", err, want)
	}
	if _, err := (MeasureSpec{Kind: "bogus"}).Score(rows); err == nil {
		t.Fatal("unknown kind must error")
	}
}

// funcTransport is a scriptable in-memory Transport for supervisor unit
// tests.
type funcTransport struct {
	addr string
	call func(ctx context.Context, t Task) (Reply, error)
	ping func(ctx context.Context) error

	mu    sync.Mutex
	calls int
}

func (f *funcTransport) Call(ctx context.Context, t Task) (Reply, error) {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	return f.call(ctx, t)
}

func (f *funcTransport) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *funcTransport) Ping(ctx context.Context) error {
	if f.ping != nil {
		return f.ping(ctx)
	}
	return nil
}

func (f *funcTransport) Addr() string { return f.addr }
func (f *funcTransport) Close() error { return nil }

// scoringTransport answers like a correct worker, in memory.
func scoringTransport(addr string, delay time.Duration) *funcTransport {
	return &funcTransport{
		addr: addr,
		call: func(ctx context.Context, t Task) (Reply, error) {
			if delay > 0 {
				select {
				case <-ctx.Done():
					return Reply{}, ctx.Err()
				case <-time.After(delay):
				}
			}
			r := Reply{Seq: t.Seq, Epoch: t.Epoch}
			values, err := t.Measure.Score(t.Rows)
			if err != nil {
				r.Err = err.Error()
			} else {
				r.Values = values
			}
			return r, nil
		},
	}
}
