package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Transport carries tasks to one worker. Implementations must be safe for
// concurrent use: the supervisor dispatches, hedges and heartbeats over the
// same transport from different goroutines.
//
// A non-nil error from Call means the reply was not obtained — network
// failure, timeout, process death, corrupt framing — and the supervisor
// treats the worker as lost for that lease. A nil error with Reply.Err set
// means the worker ran the task and scoring failed deterministically; that
// is a task outcome, not a transport failure.
type Transport interface {
	Call(ctx context.Context, t Task) (Reply, error)
	Ping(ctx context.Context) error
	Addr() string
	Close() error
}

// HTTPTransport speaks the vadasaw worker wire protocol: POST /task with a
// JSON Task, GET /healthz for liveness.
type HTTPTransport struct {
	addr   string
	client *http.Client
}

// NewHTTPTransport builds a transport for a worker at addr (host:port).
// client may be nil, selecting a private client with sane keep-alive
// defaults; per-call deadlines come from the context, not the client.
func NewHTTPTransport(addr string, client *http.Client) *HTTPTransport {
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return &HTTPTransport{addr: addr, client: client}
}

// Addr implements Transport.
func (h *HTTPTransport) Addr() string { return h.addr }

// Call implements Transport.
func (h *HTTPTransport) Call(ctx context.Context, t Task) (Reply, error) {
	body, err := json.Marshal(t)
	if err != nil {
		return Reply{}, fmt.Errorf("dist: encoding task %d: %w", t.Seq, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+h.addr+"/task", bytes.NewReader(body))
	if err != nil {
		return Reply{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err != nil {
		return Reply{}, fmt.Errorf("%w: %s: %v", ErrWorkerLost, h.addr, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return Reply{}, fmt.Errorf("%w: %s answered %d", ErrWorkerLost, h.addr, resp.StatusCode)
	}
	var r Reply
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return Reply{}, fmt.Errorf("%w: %s: corrupt reply: %v", ErrWorkerLost, h.addr, err)
	}
	return r, nil
}

// Ping implements Transport.
func (h *HTTPTransport) Ping(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+h.addr+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrWorkerLost, h.addr, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: %s healthz answered %d", ErrWorkerLost, h.addr, resp.StatusCode)
	}
	return nil
}

// Close implements Transport.
func (h *HTTPTransport) Close() error {
	h.client.CloseIdleConnections()
	return nil
}
