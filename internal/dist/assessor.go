package dist

import (
	"context"
	"fmt"

	"vadasa/internal/mdb"
	"vadasa/internal/risk"
)

// Assessor adapts a Supervisor into a risk.IncrementalAssessor, so the
// anonymization cycle's incremental path transparently executes its
// per-iteration re-scoring on the worker fleet: Config.Assessor gets an
// *Assessor and nothing else in the cycle changes.
//
// Only Rescore is distributed. Full assessments (Assess/AssessContext)
// delegate to the wrapped local measure — they run once per job against
// many Rescore calls, and keeping them local means the cycle's
// DebugVerify mode (incremental vs. full cross-check) doubles as an
// automatic distributed-vs-local bitwise verification.
type Assessor struct {
	inner risk.IncrementalAssessor
	spec  MeasureSpec
	sup   *Supervisor
}

// NewAssessor wraps inner for supervised execution. It fails for measures
// that cannot ship over the wire (see SpecFor); callers fall back to using
// inner directly — the same degradation the supervisor applies at runtime,
// decided at configuration time instead.
func NewAssessor(inner risk.IncrementalAssessor, sup *Supervisor) (*Assessor, error) {
	spec, ok := SpecFor(inner)
	if !ok {
		return nil, fmt.Errorf("dist: measure %s is not distributable", inner.Name())
	}
	return &Assessor{inner: inner, spec: spec, sup: sup}, nil
}

// Name implements risk.Assessor with the wrapped measure's name, so logs,
// errors and journal records are indistinguishable from a local run.
func (a *Assessor) Name() string { return a.inner.Name() }

// Assess implements risk.Assessor, delegating locally.
func (a *Assessor) Assess(d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	return a.inner.Assess(d, sem)
}

// AssessContext implements risk.ContextAssessor, delegating locally.
func (a *Assessor) AssessContext(ctx context.Context, d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	return a.inner.AssessContext(ctx, d, sem)
}

// IndexAttrs implements risk.IncrementalAssessor, delegating locally.
func (a *Assessor) IndexAttrs(d *mdb.Dataset) ([]int, error) {
	return a.inner.IndexAttrs(d)
}

// Rescore implements risk.IncrementalAssessor by sharding the dirty rows'
// group aggregates across the supervisor's workers. The contract is the
// local one, bit for bit: out equals prev except at dirty positions, which
// carry exactly the values inner.Rescore would have computed — worker and
// fallback both evaluate the shared risk.GroupScorer code.
func (a *Assessor) Rescore(ctx context.Context, idx *mdb.GroupIndex, dirty []int, prev []float64) ([]float64, error) {
	infos := idx.Infos()
	rows := idx.Dataset().Rows
	n := len(infos)

	var positions []int
	if prev == nil {
		positions = make([]int, n)
		for i := range positions {
			positions[i] = i
		}
	} else {
		if len(prev) != n {
			// The exact error the local rescore paths produce.
			return nil, fmt.Errorf("risk: rescore: previous vector has %d rows, index has %d", len(prev), n)
		}
		positions = dirty
	}

	taskRows := make([]TaskRow, len(positions))
	for i, pos := range positions {
		g := infos[pos]
		taskRows[i] = TaskRow{Pos: pos, ID: rows[pos].ID, Freq: g.Freq, WeightSum: g.WeightSum}
	}
	values, err := a.sup.Execute(ctx, a.spec, taskRows)
	if err != nil {
		return nil, err
	}

	out := make([]float64, n)
	if prev != nil {
		copy(out, prev)
	}
	for i, pos := range positions {
		out[pos] = values[i]
	}
	return out, nil
}
