package dist

import (
	"os"
	"testing"
)

// workerEnv flips the test binary into a real vadasaw worker process: the
// chaos tests re-exec themselves with it set, so the processes they SIGKILL
// run exactly the production WorkerMain loop — same code cmd/vadasaw ships.
const workerEnv = "VADASAW_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		os.Exit(WorkerMain(os.Args[1:], os.Stdout))
	}
	os.Exit(m.Run())
}
