package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"vadasa/internal/govern"
	"vadasa/internal/journal"
	"vadasa/internal/risk"
)

func quickOpts() Options {
	return Options{
		Run:               "test",
		ShardSize:         64,
		LeaseTTL:          2 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  200 * time.Millisecond,
		MaxAttempts:       3,
		RetryBase:         5 * time.Millisecond,
		RetryCap:          50 * time.Millisecond,
	}
}

// Property: for every distributable spec, Execute over healthy in-memory
// workers merges to the exact bits of a local Score.
func TestExecuteMatchesLocalBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rows := testRows(rng, 1000)
	sup := NewSupervisor([]Transport{
		scoringTransport("w1", 0),
		scoringTransport("w2", time.Millisecond),
		scoringTransport("w3", 0),
	}, quickOpts())
	defer sup.Close()
	for _, spec := range testSpecs() {
		want, err := spec.Score(rows)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sup.Execute(context.Background(), spec, rows)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBits(t, spec.Kind, got, want)
	}
	if sup.Snapshot().LocalFallbacks != 0 {
		t.Fatalf("healthy run fell back locally: %+v", sup.Snapshot())
	}
}

// A worker that fails its first calls forces retries; the result must not
// change and the failing worker must be routed around.
func TestExecuteRetriesWorkerFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rows := testRows(rng, 200)
	spec := testSpecs()[0]
	flaky := &funcTransport{addr: "flaky"}
	flaky.call = func(ctx context.Context, tk Task) (Reply, error) {
		if flaky.Calls() <= 2 {
			return Reply{}, fmt.Errorf("%w: flaky: connection refused", ErrWorkerLost)
		}
		return scoringTransport("flaky", 0).call(ctx, tk)
	}
	sup := NewSupervisor([]Transport{flaky, scoringTransport("good", 0)}, quickOpts())
	defer sup.Close()
	want, _ := spec.Score(rows)
	got, err := sup.Execute(context.Background(), spec, rows)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBits(t, "retry", got, want)
}

// With every worker down, Execute degrades to in-process scoring — same
// bits — and the supervisor reports Degraded.
func TestExecuteDegradesInProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	rows := testRows(rng, 150)
	spec := testSpecs()[1]
	dead := &funcTransport{
		addr: "dead",
		call: func(ctx context.Context, tk Task) (Reply, error) {
			return Reply{}, fmt.Errorf("%w: dead: no route", ErrWorkerLost)
		},
		ping: func(ctx context.Context) error { return errors.New("no route") },
	}
	sup := NewSupervisor([]Transport{dead}, quickOpts())
	sup.Start()
	defer sup.Close()
	want, _ := spec.Score(rows)
	got, err := sup.Execute(context.Background(), spec, rows)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBits(t, "degraded", got, want)
	if sup.Snapshot().LocalFallbacks == 0 {
		t.Fatal("expected local fallbacks with a dead worker")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !sup.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("supervisor never classified the dead worker as unhealthy")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// An empty fleet is degraded from the start.
	none := NewSupervisor(nil, quickOpts())
	defer none.Close()
	if !none.Degraded() {
		t.Fatal("empty supervisor must be degraded")
	}
	got, err = none.Execute(context.Background(), spec, rows)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBits(t, "empty fleet", got, want)
}

// RequireWorkers converts degradation into ErrDegraded / ErrWorkerLost
// instead of silent in-process execution.
func TestExecuteRequireWorkers(t *testing.T) {
	rows := testRows(rand.New(rand.NewSource(45)), 50)
	spec := testSpecs()[0]

	opts := quickOpts()
	opts.RequireWorkers = true
	none := NewSupervisor(nil, opts)
	defer none.Close()
	if _, err := none.Execute(context.Background(), spec, rows); !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}

	dead := &funcTransport{
		addr: "dead",
		call: func(ctx context.Context, tk Task) (Reply, error) {
			return Reply{}, fmt.Errorf("%w: dead", ErrWorkerLost)
		},
	}
	sup := NewSupervisor([]Transport{dead}, opts)
	defer sup.Close()
	if _, err := sup.Execute(context.Background(), spec, rows); !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("err = %v, want ErrWorkerLost", err)
	}
}

// A deterministic scoring error is a task outcome: no retry, the exact
// message surfaces.
func TestExecuteScoringErrorNoRetry(t *testing.T) {
	rows := []TaskRow{{Pos: 0, ID: 7, Freq: 1, WeightSum: -1}}
	w := scoringTransport("w", 0)
	sup := NewSupervisor([]Transport{w}, quickOpts())
	defer sup.Close()
	_, err := sup.Execute(context.Background(), MeasureSpec{Kind: KindReIdentification}, rows)
	want := "risk: row 7 has non-positive group weight -1"
	if err == nil || err.Error() != want {
		t.Fatalf("err = %v, want %q", err, want)
	}
	if w.Calls() != 1 {
		t.Fatalf("scoring error was retried: %d calls", w.Calls())
	}
}

// The epoch fence: a late reply whose lease was revoked is discarded even
// though it is structurally valid, and a second reply for a settled task
// is discarded too.
func TestAdmitFence(t *testing.T) {
	sup := NewSupervisor(nil, quickOpts())
	defer sup.Close()
	task := &taskState{seq: 3, valid: map[uint64]bool{}}
	w := &worker{t: scoringTransport("w", 0)}

	e1 := sup.grant(task, w)
	e2 := sup.grant(task, w) // hedge: both valid at once
	sup.revoke(task, e1, "w")

	// Revoked epoch: fenced out.
	if ok, corrupt := sup.admit(task, Reply{Seq: 3, Epoch: e1, Values: []float64{1}}, 1, "w"); ok || corrupt {
		t.Fatalf("revoked epoch admitted (ok=%v corrupt=%v)", ok, corrupt)
	}
	// Wrong task: fenced out.
	if ok, _ := sup.admit(task, Reply{Seq: 4, Epoch: e2, Values: []float64{1}}, 1, "w"); ok {
		t.Fatal("wrong-seq reply admitted")
	}
	// Truncated reply on a valid epoch: revokes that lease, not admitted.
	e3 := sup.grant(task, w)
	if ok, corrupt := sup.admit(task, Reply{Seq: 3, Epoch: e3, Values: []float64{1}}, 2, "w"); ok || !corrupt {
		t.Fatalf("truncated reply: ok=%v corrupt=%v, want rejected+corrupt", ok, corrupt)
	}
	if ok, _ := sup.admit(task, Reply{Seq: 3, Epoch: e3, Values: []float64{1, 2}}, 2, "w"); ok {
		t.Fatal("reply admitted on lease revoked for truncation")
	}
	// The surviving hedge epoch wins...
	if ok, _ := sup.admit(task, Reply{Seq: 3, Epoch: e2, Values: []float64{1, 2}}, 2, "w"); !ok {
		t.Fatal("valid hedge reply rejected")
	}
	// ...and settles the task: every later reply dies at the fence.
	e4 := sup.grant(task, w)
	if ok, _ := sup.admit(task, Reply{Seq: 3, Epoch: e4, Values: []float64{1, 2}}, 2, "w"); ok {
		t.Fatal("reply admitted after task settled")
	}
	if sup.Snapshot().StaleReplies == 0 {
		t.Fatal("fence rejections not counted")
	}
}

// Hedged dispatch: a straggling worker's task is re-dispatched and the
// hedge's reply wins; the straggler's late reply is fenced, not merged.
func TestHedging(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	rows := testRows(rng, 64) // one shard
	spec := testSpecs()[0]
	// Both workers are slow, so whichever gets the dispatch, the hedge
	// timer fires first; the first reply wins and the sibling is fenced.
	slow := scoringTransport("slow", 150*time.Millisecond)
	slow2 := scoringTransport("slow2", 150*time.Millisecond)
	opts := quickOpts()
	opts.HedgeAfter = 30 * time.Millisecond
	sup := NewSupervisor([]Transport{slow, slow2}, opts)
	defer sup.Close()

	want, _ := spec.Score(rows)
	got, err := sup.Execute(context.Background(), spec, rows)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBits(t, "hedged", got, want)
	st := sup.Snapshot()
	if st.Hedges == 0 {
		t.Fatalf("no hedges launched: %+v", st)
	}
}

// Lease grants, revocations and accepts land in the journal, and
// RecoverFence restores the epoch floor from a scan.
func TestLeaseJournalAndRecoverFence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dist.journal")
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows(rand.New(rand.NewSource(47)), 100)
	opts := quickOpts()
	opts.Journal = w
	opts.FirstEpoch = 41
	sup := NewSupervisor([]Transport{scoringTransport("w1", 0)}, opts)
	if _, err := sup.Execute(context.Background(), testSpecs()[0], rows); err != nil {
		t.Fatal(err)
	}
	sup.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	scan, err := journal.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var grants, accepts int
	for _, rec := range scan.Records {
		if rec.Type != journal.TypeLease {
			continue
		}
		var p LeasePayload
		if err := rec.Decode(&p); err != nil {
			t.Fatal(err)
		}
		if p.Run != "test" || p.Epoch <= 41 {
			t.Fatalf("bad lease record %+v", p)
		}
		switch p.Action {
		case LeaseGrant:
			grants++
		case LeaseAccept:
			accepts++
		}
	}
	wantTasks := (len(rows) + opts.ShardSize - 1) / opts.ShardSize
	if grants < wantTasks || accepts != wantTasks {
		t.Fatalf("grants=%d accepts=%d, want >=%d and ==%d", grants, accepts, wantTasks, wantTasks)
	}
	if floor := RecoverFence(*scan); floor <= 41 || floor != sup.epoch.Load() {
		t.Fatalf("RecoverFence = %d, want the final epoch %d", floor, sup.epoch.Load())
	}
	// A restarted supervisor seeded above the floor can never re-issue an
	// epoch the dead incarnation granted.
	sup2 := NewSupervisor(nil, Options{FirstEpoch: RecoverFence(*scan) + 1})
	defer sup2.Close()
	task := &taskState{seq: 0, valid: map[uint64]bool{}}
	if e := sup2.grant(task, &worker{t: scoringTransport("w", 0)}); e <= RecoverFence(*scan) {
		t.Fatalf("restarted epoch %d not above floor %d", e, RecoverFence(*scan))
	}
}

// Per-worker governor scopes observe in-flight task bytes and drain to
// zero after the run.
func TestWorkerGovernorScopes(t *testing.T) {
	root := govern.New("server", govern.Limits{})
	rows := testRows(rand.New(rand.NewSource(48)), 500)
	opts := quickOpts()
	opts.Governor = root
	sup := NewSupervisor([]Transport{scoringTransport("w1", 0)}, opts)
	if _, err := sup.Execute(context.Background(), testSpecs()[0], rows); err != nil {
		t.Fatal(err)
	}
	if used := root.Used(govern.Memory); used != 0 {
		t.Fatalf("root still charged %d bytes after run", used)
	}
	sup.Close()
}

// The dist.Assessor integration: Rescore over workers is bitwise the
// wrapped measure's Rescore, for both the full build and the dirty-set
// fast path.
func TestAssessorRescoreBitwise(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(49))
	d := incrTestDataset(rng, 180, 3, 3)
	sup := NewSupervisor([]Transport{
		scoringTransport("w1", 0),
		scoringTransport("w2", 0),
	}, quickOpts())
	defer sup.Close()

	for _, inner := range []risk.IncrementalAssessor{
		risk.KAnonymity{K: 3},
		risk.ReIdentification{},
		risk.IndividualRisk{Estimator: risk.MonteCarlo, Samples: 30, Seed: 5},
	} {
		da, err := NewAssessor(inner, sup)
		if err != nil {
			t.Fatal(err)
		}
		if da.Name() != inner.Name() {
			t.Fatalf("name %q, want %q", da.Name(), inner.Name())
		}
		attrs, err := da.IndexAttrs(d)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := buildGroupIndex(ctx, d, attrs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := inner.Rescore(ctx, idx, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := da.Rescore(ctx, idx, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBits(t, inner.Name()+"/full", got, want)

		// Dirty-set fast path after suppressions.
		qi := d.QuasiIdentifiers()
		for i := 0; i < 12; i++ {
			pos := rng.Intn(len(d.Rows))
			attr := qi[rng.Intn(len(qi))]
			if d.Rows[pos].Values[attr].IsNull() {
				continue
			}
			d.Rows[pos].Values[attr] = d.Nulls.Fresh()
			if err := idx.SuppressCell(pos, attr); err != nil {
				t.Fatal(err)
			}
		}
		dirty, err := idx.Commit(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want2, err := inner.Rescore(ctx, idx, dirty, want)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := da.Rescore(ctx, idx, dirty, got)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBits(t, inner.Name()+"/dirty", got2, want2)
	}
}
