// Package dist is the supervised shard-execution layer of the anonymization
// cycle: it fans the per-group risk re-scoring work of an incremental
// assessment out to vadasaw worker processes — spawned children or HTTP
// peers — and owns the robustness contract that makes that safe:
//
//   - heartbeat-based liveness with deadline detection, so a hung worker is
//     detected and routed around rather than stalling the run;
//   - per-task idempotent leases with monotonic epochs, so the reply of a
//     worker presumed dead (and whose task was re-dispatched) is discarded
//     at the fence instead of racing the retry;
//   - bounded retry with exponential backoff and jitter, plus optional
//     hedged re-dispatch for stragglers;
//   - graceful degradation to in-process execution when no worker is
//     healthy — the run completes, the service reports degraded, not down.
//
// The determinism bar is set by the single-process path of PR 5: the merged
// distributed result must be bit-identical to risk.IncrementalAssessor run
// locally, under any injected failure. Three properties carry that:
//
//  1. The unit of remote work is risk.GroupScorer.ScoreGroup — a pure
//     function of a row's maintained group aggregates. Worker and local
//     fallback execute the same compiled code, so the same inputs produce
//     the same bits wherever they run.
//  2. The wire format is JSON, and Go's float64 JSON encoding is the
//     shortest representation that round-trips exactly — a risk value or
//     weight sum survives the trip bit-for-bit.
//  3. Each task owns a disjoint slice of row positions and exactly one
//     reply per task is ever admitted past the epoch fence, so merge order
//     cannot influence the output.
//
// Failures therefore cost latency, never bits.
package dist

import (
	"errors"
	"fmt"

	"vadasa/internal/mdb"
	"vadasa/internal/risk"
)

// ErrWorkerLost reports that a worker became unreachable, crashed, timed
// out, or returned a structurally corrupt reply while holding a task lease.
// It is transient by construction — the supervisor retries on another
// worker or degrades to local execution — and is exported so callers can
// classify transport failures distinctly from scoring errors.
var ErrWorkerLost = errors.New("dist: worker lost")

// ErrLeaseExpired reports a reply that arrived after its lease epoch was
// revoked (the worker was presumed dead and the task re-dispatched) or
// after another lease's reply was already admitted. Such replies are
// discarded at the fence; the error surfaces only in logs and stats —
// never as a task outcome, because by definition another attempt owns the
// task by then.
var ErrLeaseExpired = errors.New("dist: lease expired")

// ErrDegraded reports that the supervisor has no healthy workers and was
// configured (RequireWorkers) to refuse in-process fallback. Servers map it
// to 503 with a Retry-After header, distinct from budget-saturation 503s.
var ErrDegraded = errors.New("dist: no healthy workers (degraded)")

// TaskRow is one row's scoring input: its position in the dataset (where
// the result lands), its row ID (error identity only — local and remote
// scoring errors must carry the same message), and the maintained group
// aggregates risk.GroupScorer consumes.
type TaskRow struct {
	Pos       int     `json:"pos"`
	ID        int     `json:"id"`
	Freq      int     `json:"f"`
	WeightSum float64 `json:"w"`
}

// Task is one shard of re-scoring work under one lease epoch. Run names
// the supervisor incarnation (journal/debug identity), Seq the shard, and
// Epoch the lease: the worker echoes both back so the supervisor's fence
// can match the reply to the exact grant it answers.
type Task struct {
	Run     string      `json:"run"`
	Seq     int         `json:"seq"`
	Epoch   uint64      `json:"epoch"`
	Measure MeasureSpec `json:"measure"`
	Rows    []TaskRow   `json:"rows"`
}

// Reply is a worker's answer: Values aligned with Task.Rows, or Err when
// scoring failed deterministically (a data error, not an infrastructure
// one — the supervisor fails the run with it rather than retrying).
type Reply struct {
	Seq    int       `json:"seq"`
	Epoch  uint64    `json:"epoch"`
	Values []float64 `json:"values,omitempty"`
	Err    string    `json:"err,omitempty"`
}

// Measure kinds a worker can evaluate. Only measures whose score is a pure
// function of a row's GroupInfo ship over the wire — the same set that
// implements risk.IncrementalAssessor.
const (
	KindKAnonymity       = "k-anonymity"
	KindReIdentification = "re-identification"
	KindIndividualRisk   = "individual-risk"
)

// MeasureSpec is the serializable identity of a shippable risk measure:
// exactly the fields that influence ScoreGroup, nothing else (attribute
// selections live in the group index the supervisor already resolved).
// SpecFor extracts it from a live measure; Score re-instantiates the
// measure on the other side.
type MeasureSpec struct {
	Kind      string `json:"kind"`
	K         int    `json:"k,omitempty"`
	Estimator int    `json:"estimator,omitempty"`
	Samples   int    `json:"samples,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
}

// SpecFor derives the wire spec of a measure, reporting false for measures
// that cannot ship (SUDA, cluster-wrapped, custom assessors). The mapping
// is total over the risk measures that implement risk.IncrementalAssessor.
func SpecFor(m risk.Assessor) (MeasureSpec, bool) {
	switch a := m.(type) {
	case risk.KAnonymity:
		return MeasureSpec{Kind: KindKAnonymity, K: a.K}, true
	case risk.ReIdentification:
		return MeasureSpec{Kind: KindReIdentification}, true
	case risk.IndividualRisk:
		return MeasureSpec{
			Kind:      KindIndividualRisk,
			Estimator: int(a.Estimator),
			Samples:   a.Samples,
			Seed:      a.Seed,
		}, true
	}
	return MeasureSpec{}, false
}

// scorer re-instantiates the measure the spec describes.
func (sp MeasureSpec) scorer() (risk.GroupScorer, error) {
	switch sp.Kind {
	case KindKAnonymity:
		return risk.KAnonymity{K: sp.K}, nil
	case KindReIdentification:
		return risk.ReIdentification{}, nil
	case KindIndividualRisk:
		return risk.IndividualRisk{
			Estimator: risk.Estimator(sp.Estimator),
			Samples:   sp.Samples,
			Seed:      sp.Seed,
		}, nil
	}
	return nil, fmt.Errorf("dist: unknown measure kind %q", sp.Kind)
}

// Score evaluates the spec's measure over the rows, in row order, stopping
// at the first error — the same iteration discipline the local Rescore
// path uses, so error identity (which row's error surfaces) matches the
// single-process reference. Values are memoized per (Freq, WeightSum) pair;
// ScoreGroup is pure in that pair, so the memo saves work without touching
// bits. Both the worker process and the supervisor's degraded in-process
// fallback call exactly this function: one code path, one set of bits.
func (sp MeasureSpec) Score(rows []TaskRow) ([]float64, error) {
	scorer, err := sp.scorer()
	if err != nil {
		return nil, err
	}
	type gkey struct {
		f int
		w float64
	}
	cache := make(map[gkey]float64)
	out := make([]float64, len(rows))
	for i, row := range rows {
		k := gkey{row.Freq, row.WeightSum}
		v, ok := cache[k]
		if !ok {
			v, err = scorer.ScoreGroup(mdb.GroupInfo{Freq: row.Freq, WeightSum: row.WeightSum}, row.ID)
			if err != nil {
				return nil, err
			}
			cache[k] = v
		}
		out[i] = v
	}
	return out, nil
}
