package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"vadasa/internal/govern"
	"vadasa/internal/journal"
	"vadasa/internal/pool"
)

// Options tunes a Supervisor. Zero values select the documented defaults.
type Options struct {
	// Run names this supervisor incarnation in journal records and logs.
	Run string
	// ShardSize is the number of rows per task (default 1024).
	ShardSize int
	// Parallel caps concurrently outstanding tasks (default 2×workers,
	// minimum 2).
	Parallel int
	// LeaseTTL bounds one dispatch: a worker that has not replied within
	// it is presumed dead, its epoch revoked, the task retried (default
	// 10s).
	LeaseTTL time.Duration
	// HeartbeatInterval spaces liveness probes (default 2s); a worker
	// failing a probe is routed around until a probe succeeds again.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout bounds one probe (default 1s).
	HeartbeatTimeout time.Duration
	// MaxAttempts bounds dispatch rounds per task, the first included
	// (default 3). Exhaustion degrades to local execution — or fails with
	// ErrWorkerLost under RequireWorkers.
	MaxAttempts int
	// RetryBase and RetryCap shape the exponential backoff between rounds
	// (defaults 50ms and 2s); each delay is jittered ±50%. Jitter touches
	// timing only — results are fenced, never raced.
	RetryBase time.Duration
	RetryCap  time.Duration
	// HedgeAfter, when positive, re-dispatches a task to a second worker
	// if the first has not replied within it — both epochs stay valid and
	// the first admitted reply wins. Zero disables hedging.
	HedgeAfter time.Duration
	// RequireWorkers forbids the in-process fallback: with no healthy
	// workers, Execute fails with ErrDegraded instead of degrading
	// silently. Operators choose it when worker isolation is the point
	// (memory budgets, blast radius), accepting unavailability over
	// in-process execution.
	RequireWorkers bool
	// Governor, when non-nil, is the parent scope: each worker gets a
	// child scope charged with its in-flight task bytes, so one slow
	// worker accumulating hedged work shows up in /readyz before it
	// becomes a memory problem.
	Governor *govern.Governor
	// Journal, when non-nil, receives TypeLease records for every grant,
	// revoke and accept. Appends are advisory: a failure is logged and the
	// run continues — correctness is fenced in memory; the records buy
	// observability and a crash-consistent epoch floor (RecoverFence).
	Journal *journal.Writer
	// FirstEpoch seeds the epoch counter (default 0, first grant = 1). A
	// supervisor restarting over a journal passes RecoverFence(scan)+1.
	FirstEpoch uint64
	// Logf receives supervision diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func (o *Options) fill(workers int) {
	if o.Run == "" {
		o.Run = "dist"
	}
	if o.ShardSize <= 0 {
		o.ShardSize = 1024
	}
	if o.Parallel <= 0 {
		o.Parallel = 2 * workers
		if o.Parallel < 2 {
			o.Parallel = 2
		}
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 2 * time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = 2 * time.Second
	}
}

// taskRowBytes is the per-row governor charge for an in-flight task: the
// wire row (~40 bytes of JSON) plus its reply value.
const taskRowBytes = 48

// worker is the supervisor's view of one Transport.
type worker struct {
	t   Transport
	gov *govern.Governor

	mu       sync.Mutex
	healthy  bool
	lastSeen time.Time
	inflight int
}

func (w *worker) setHealthy(ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.healthy = ok
	if ok {
		w.lastSeen = time.Now()
	}
}

func (w *worker) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

// WorkerStats is one worker's observable state.
type WorkerStats struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Inflight int    `json:"inflight"`
}

// Stats is a supervisor snapshot for probes and logs.
type Stats struct {
	Workers        []WorkerStats `json:"workers"`
	Healthy        int           `json:"healthy"`
	Epoch          uint64        `json:"epoch"`
	LocalFallbacks uint64        `json:"localFallbacks"`
	Hedges         uint64        `json:"hedges"`
	StaleReplies   uint64        `json:"staleReplies"`
	Retries        uint64        `json:"retries"`
}

// taskState is the lease fence of one task: the set of currently valid
// epochs and whether a reply has been admitted. All access goes through
// the supervisor's grant/revoke/admit methods.
type taskState struct {
	seq int

	mu    sync.Mutex
	valid map[uint64]bool
	done  bool
}

// Supervisor owns a set of workers and executes sharded scoring work over
// them under the package's robustness contract. Create with NewSupervisor,
// start background heartbeats with Start, release with Close.
type Supervisor struct {
	opts    Options
	workers []*worker
	rr      atomic.Uint64 // round-robin dispatch cursor
	epoch   atomic.Uint64 // monotonic lease epoch counter

	jmu sync.Mutex // serializes journal appends (Writer is not concurrency-safe)

	localFallbacks atomic.Uint64
	hedges         atomic.Uint64
	staleReplies   atomic.Uint64
	retries        atomic.Uint64

	stopOnce sync.Once
	stopc    chan struct{}
	hbDone   chan struct{}
}

// NewSupervisor builds a supervisor over the given worker transports. The
// list may be empty: the supervisor is then permanently degraded and every
// Execute runs in-process (or fails, under RequireWorkers). Workers start
// out healthy and are re-classified by calls and heartbeats.
func NewSupervisor(transports []Transport, opts Options) *Supervisor {
	opts.fill(len(transports))
	s := &Supervisor{
		opts:  opts,
		stopc: make(chan struct{}),
	}
	s.epoch.Store(opts.FirstEpoch)
	for _, t := range transports {
		w := &worker{t: t, healthy: true, lastSeen: time.Now()}
		if opts.Governor != nil {
			w.gov = opts.Governor.Child("worker:"+t.Addr(), govern.Limits{})
		}
		s.workers = append(s.workers, w)
	}
	return s
}

// Start launches the heartbeat loop. It returns immediately; Close stops
// the loop. Calling Start is optional — without it, worker health is still
// maintained by dispatch outcomes — but heartbeats recover a worker's
// healthy flag without burning a task attempt on it.
func (s *Supervisor) Start() {
	if len(s.workers) == 0 {
		return
	}
	s.hbDone = make(chan struct{})
	go s.heartbeatLoop()
}

func (s *Supervisor) heartbeatLoop() {
	defer close(s.hbDone)
	ticker := time.NewTicker(s.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-ticker.C:
			s.probeAll()
		}
	}
}

func (s *Supervisor) probeAll() {
	var wg sync.WaitGroup
	for _, w := range s.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), s.opts.HeartbeatTimeout)
			defer cancel()
			err := w.t.Ping(ctx)
			was := w.isHealthy()
			w.setHealthy(err == nil)
			if err != nil && was {
				s.logf("dist: worker %s failed heartbeat: %v", w.t.Addr(), err)
			} else if err == nil && !was {
				s.logf("dist: worker %s recovered", w.t.Addr())
			}
		}(w)
	}
	wg.Wait()
}

// Close stops heartbeats and closes every transport and worker scope.
func (s *Supervisor) Close() {
	s.stopOnce.Do(func() { close(s.stopc) })
	if s.hbDone != nil {
		<-s.hbDone
	}
	for _, w := range s.workers {
		w.t.Close()
		w.gov.Close()
	}
}

// Healthy reports how many workers currently pass liveness.
func (s *Supervisor) Healthy() int {
	n := 0
	for _, w := range s.workers {
		if w.isHealthy() {
			n++
		}
	}
	return n
}

// Degraded reports whether Execute would run in-process right now: no
// workers configured, or none healthy.
func (s *Supervisor) Degraded() bool { return s.Healthy() == 0 }

// RequiresWorkers reports the RequireWorkers configuration.
func (s *Supervisor) RequiresWorkers() bool { return s.opts.RequireWorkers }

// Snapshot returns current supervision counters and per-worker health.
func (s *Supervisor) Snapshot() Stats {
	st := Stats{
		Epoch:          s.epoch.Load(),
		LocalFallbacks: s.localFallbacks.Load(),
		Hedges:         s.hedges.Load(),
		StaleReplies:   s.staleReplies.Load(),
		Retries:        s.retries.Load(),
	}
	for _, w := range s.workers {
		w.mu.Lock()
		ws := WorkerStats{Addr: w.t.Addr(), Healthy: w.healthy, Inflight: w.inflight}
		w.mu.Unlock()
		st.Workers = append(st.Workers, ws)
		if ws.Healthy {
			st.Healthy++
		}
	}
	return st
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// journalLease appends one lease record; failures are logged, never fatal
// (the in-memory fence is authoritative — see Options.Journal).
func (s *Supervisor) journalLease(action string, seq int, epoch uint64, workerAddr string) {
	if s.opts.Journal == nil {
		return
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	err := s.opts.Journal.Append(journal.TypeLease, LeasePayload{
		Run: s.opts.Run, Task: seq, Epoch: epoch, Worker: workerAddr, Action: action,
	})
	if err != nil {
		s.logf("dist: journaling lease %s task=%d epoch=%d: %v", action, seq, epoch, err)
	}
}

// grant issues a fresh epoch for the task and records it as valid.
func (s *Supervisor) grant(task *taskState, w *worker) uint64 {
	epoch := s.epoch.Add(1)
	task.mu.Lock()
	task.valid[epoch] = true
	task.mu.Unlock()
	s.journalLease(LeaseGrant, task.seq, epoch, w.t.Addr())
	return epoch
}

// revoke invalidates one epoch (timeout, transport failure, corrupt
// reply); a reply carrying it can never be admitted afterwards.
func (s *Supervisor) revoke(task *taskState, epoch uint64, workerAddr string) {
	task.mu.Lock()
	delete(task.valid, epoch)
	task.mu.Unlock()
	s.journalLease(LeaseRevoke, task.seq, epoch, workerAddr)
}

// admit is the epoch fence — the single point where a worker reply can
// become a task result. It accepts a reply iff it names this task, its
// epoch is still valid, no reply was admitted before, and (for successful
// replies) the value vector has exactly one entry per row. On acceptance
// every lease of the task dies, so a hedged sibling or duplicate delivery
// arriving later is rejected here, not merged. corrupt reports a reply
// that passed the fence but failed structural validation — the caller
// treats the worker as lost and retries.
func (s *Supervisor) admit(task *taskState, r Reply, n int, workerAddr string) (accepted, corrupt bool) {
	task.mu.Lock()
	if task.done || r.Seq != task.seq || !task.valid[r.Epoch] {
		task.mu.Unlock()
		s.staleReplies.Add(1)
		s.logf("dist: rejecting reply task=%d epoch=%d from %s: %v", r.Seq, r.Epoch, workerAddr, ErrLeaseExpired)
		return false, false
	}
	//distfence:ok admit IS the fence; this is the truncation check behind it
	if r.Err == "" && len(r.Values) != n {
		delete(task.valid, r.Epoch)
		task.mu.Unlock()
		s.journalLease(LeaseRevoke, task.seq, r.Epoch, workerAddr)
		s.logf("dist: corrupt reply task=%d epoch=%d from %s: %d values for %d rows",
			r.Seq, r.Epoch, workerAddr, len(r.Values), n) //distfence:ok fence's own rejection diagnostic
		return false, true
	}
	task.done = true
	task.valid = map[uint64]bool{}
	task.mu.Unlock()
	s.journalLease(LeaseAccept, task.seq, r.Epoch, workerAddr)
	return true, false
}

// revokeAll invalidates every outstanding epoch of the task.
func (s *Supervisor) revokeAll(task *taskState, workerAddr string) {
	task.mu.Lock()
	epochs := make([]uint64, 0, len(task.valid))
	for e := range task.valid {
		epochs = append(epochs, e)
	}
	task.valid = map[uint64]bool{}
	task.mu.Unlock()
	for _, e := range epochs {
		s.journalLease(LeaseRevoke, task.seq, e, workerAddr)
	}
}

// pickWorker round-robins over healthy workers; exclude skips one (hedge
// dispatch prefers a different worker). When no worker passes liveness the
// round-robin continues over unhealthy ones: health is advisory routing,
// not a correctness gate — a mis-classified worker costs one bounded
// attempt, while refusing to try would turn one dropped packet on a
// single-worker fleet into a permanent local fallback. Returns nil only
// for an empty fleet.
func (s *Supervisor) pickWorker(exclude *worker) *worker {
	n := len(s.workers)
	if n == 0 {
		return nil
	}
	start := int(s.rr.Add(1))
	var excludedHealthy, unhealthy *worker
	for i := 0; i < n; i++ {
		w := s.workers[(start+i)%n]
		switch {
		case !w.isHealthy():
			if unhealthy == nil {
				unhealthy = w
			}
		case w == exclude:
			excludedHealthy = w
		default:
			return w
		}
	}
	if excludedHealthy != nil {
		return excludedHealthy
	}
	return unhealthy
}

// Execute shards rows, runs every shard under supervision, and merges the
// results into a vector aligned with rows. With no healthy workers it
// degrades to in-process scoring (unless RequireWorkers). The merged
// output is bit-identical to MeasureSpec.Score(rows) run locally — see the
// package comment for the argument.
func (s *Supervisor) Execute(ctx context.Context, spec MeasureSpec, rows []TaskRow) ([]float64, error) {
	if len(rows) == 0 {
		return []float64{}, nil
	}
	if s.Degraded() {
		if s.opts.RequireWorkers {
			return nil, fmt.Errorf("%w: %d workers configured, 0 healthy", ErrDegraded, len(s.workers))
		}
		s.localFallbacks.Add(1)
		s.logf("dist: no healthy workers, scoring %d rows in-process", len(rows))
		return spec.Score(rows)
	}

	type shard struct{ lo, hi int }
	var shards []shard
	for lo := 0; lo < len(rows); lo += s.opts.ShardSize {
		hi := lo + s.opts.ShardSize
		if hi > len(rows) {
			hi = len(rows)
		}
		shards = append(shards, shard{lo, hi})
	}
	out := make([]float64, len(rows))
	err := pool.ForEach(ctx, s.opts.Parallel, len(shards), func(i int) error {
		vals, err := s.runTask(ctx, i, spec, rows[shards[i].lo:shards[i].hi])
		if err != nil {
			return err
		}
		copy(out[shards[i].lo:shards[i].hi], vals)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// dispatchResult carries one dispatch outcome back to runTask's loop.
type dispatchResult struct {
	reply Reply
	err   error
	epoch uint64
	w     *worker
}

// runTask drives one shard to completion: dispatch under a fresh lease,
// wait fenced, hedge stragglers, retry failures with backoff, and fall
// back to in-process scoring when workers are exhausted.
func (s *Supervisor) runTask(ctx context.Context, seq int, spec MeasureSpec, rows []TaskRow) ([]float64, error) {
	task := &taskState{seq: seq, valid: map[uint64]bool{}}
	// Buffered past the worst case (one dispatch + one hedge per attempt)
	// so late repliers never block on a loop that has moved on.
	replyc := make(chan dispatchResult, 2*s.opts.MaxAttempts+2)

	dispatch := func(w *worker) uint64 {
		epoch := s.grant(task, w)
		t := Task{Run: s.opts.Run, Seq: seq, Epoch: epoch, Measure: spec, Rows: rows}
		w.mu.Lock()
		w.inflight++
		w.mu.Unlock()
		go func() {
			charge := int64(len(rows)) * taskRowBytes
			//governcharge:ok released on every path below once the call settles
			if err := w.gov.Reserve(govern.Memory, charge); err != nil {
				// The worker's scope is saturated: treat like a refused
				// connection so the retry path picks someone else.
				w.mu.Lock()
				w.inflight--
				w.mu.Unlock()
				replyc <- dispatchResult{err: fmt.Errorf("%w: %s: %v", ErrWorkerLost, w.t.Addr(), err), epoch: epoch, w: w}
				return
			}
			callCtx, cancel := context.WithTimeout(ctx, s.opts.LeaseTTL)
			r, err := w.t.Call(callCtx, t)
			cancel()
			w.gov.Release(govern.Memory, charge)
			w.mu.Lock()
			w.inflight--
			w.mu.Unlock()
			replyc <- dispatchResult{reply: r, err: err, epoch: epoch, w: w}
		}()
		return epoch
	}

	var lastAddr string
	for attempt := 0; attempt < s.opts.MaxAttempts; attempt++ {
		w := s.pickWorker(nil)
		if w == nil {
			break // degraded mid-run: fall through to local
		}
		lastAddr = w.t.Addr()
		if attempt > 0 {
			s.retries.Add(1)
			if err := s.backoff(ctx, attempt); err != nil {
				return nil, err
			}
		}
		roundEpochs := map[uint64]bool{dispatch(w): true}
		outstanding := 1

		var hedgec <-chan time.Time
		var hedgeTimer *time.Timer
		if s.opts.HedgeAfter > 0 {
			hedgeTimer = time.NewTimer(s.opts.HedgeAfter)
			hedgec = hedgeTimer.C
		}
		deadline := time.NewTimer(s.opts.LeaseTTL + s.opts.LeaseTTL/4)

	wait:
		for {
			select {
			case <-ctx.Done():
				stopTimers(hedgeTimer, deadline)
				s.revokeAll(task, lastAddr)
				return nil, ctx.Err()

			case res := <-replyc:
				if !roundEpochs[res.epoch] {
					// Late reply from an earlier round. Its epoch was
					// revoked when that round ended, so the fence rejects
					// it — run it through admit anyway for uniform
					// accounting, and keep waiting on this round's leases.
					if res.err == nil {
						s.admit(task, res.reply, len(rows), res.w.t.Addr())
					}
					continue
				}
				if res.err != nil {
					outstanding--
					res.w.setHealthy(false)
					s.revoke(task, res.epoch, res.w.t.Addr())
					s.logf("dist: task %d epoch %d on %s failed: %v", seq, res.epoch, res.w.t.Addr(), res.err)
					if outstanding > 0 {
						continue // a hedge is still in flight
					}
					stopTimers(hedgeTimer, deadline)
					break wait // next attempt
				}
				res.w.setHealthy(true)
				accepted, corrupt := s.admit(task, res.reply, len(rows), res.w.t.Addr())
				if accepted {
					stopTimers(hedgeTimer, deadline)
					if res.reply.Err != "" {
						// Deterministic scoring failure: same outcome the
						// local path would produce — fail, don't retry.
						return nil, errors.New(res.reply.Err)
					}
					return res.reply.Values, nil
				}
				outstanding--
				if corrupt {
					res.w.setHealthy(false)
					if outstanding > 0 {
						continue
					}
					stopTimers(hedgeTimer, deadline)
					break wait
				}
				// Stale (fence-rejected): only relevant if nothing else is
				// in flight anymore — then this round is over.
				if outstanding <= 0 {
					stopTimers(hedgeTimer, deadline)
					break wait
				}

			case <-hedgec:
				hedgec = nil
				if w2 := s.pickWorker(w); w2 != nil {
					s.hedges.Add(1)
					s.logf("dist: hedging task %d on %s", seq, w2.t.Addr())
					roundEpochs[dispatch(w2)] = true
					outstanding++
				}

			case <-deadline.C:
				// Lease TTL blown with the call's own timeout somehow not
				// surfacing (a stuck transport): revoke everything and
				// re-dispatch. Late replies die at the fence.
				stopTimers(hedgeTimer, nil)
				s.revokeAll(task, lastAddr)
				w.setHealthy(false)
				s.logf("dist: task %d lease expired on %s", seq, w.t.Addr())
				break wait
			}
		}
	}

	if s.opts.RequireWorkers {
		return nil, fmt.Errorf("%w: task %d exhausted %d attempts (last worker %s)",
			ErrWorkerLost, seq, s.opts.MaxAttempts, lastAddr)
	}
	s.localFallbacks.Add(1)
	s.logf("dist: task %d falling back to in-process scoring (%d rows)", seq, len(rows))
	return spec.Score(rows)
}

// backoff sleeps the exponential, jittered retry delay for the given
// attempt (1-based round that failed), honouring cancellation.
func (s *Supervisor) backoff(ctx context.Context, attempt int) error {
	d := s.opts.RetryBase << (attempt - 1)
	if d > s.opts.RetryCap || d <= 0 {
		d = s.opts.RetryCap
	}
	// ±50% jitter de-synchronizes retry storms. Timing only: results are
	// fenced, so scheduling noise cannot reach the output bits.
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func stopTimers(timers ...*time.Timer) {
	for _, t := range timers {
		if t != nil {
			t.Stop()
		}
	}
}
