package dist

import (
	"context"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

// spawnWorker re-execs the test binary as a real vadasaw process.
func spawnWorker(t *testing.T, args ...string) *Proc {
	t.Helper()
	argv := append([]string{"-addr=127.0.0.1:0", "-quiet"}, args...)
	p, err := Spawn(os.Args[0], argv, []string{workerEnv + "=1"}, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The acceptance chaos run: 4 worker processes, one SIGKILLed mid-task
// (its -hold keeps the task in flight when the kill lands), one dropped
// RPC and one duplicated RPC injected on the survivors — and the merged
// result is bit-identical to the single-process reference. Run under
// -race by `make chaos` and the chaos CI job.
func TestChaosKillAndFaultsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	rng := rand.New(rand.NewSource(54))
	rows := testRows(rng, 2000)
	spec := testSpecs()[2] // Monte-Carlo: heaviest float path on the wire
	want, err := spec.Score(rows)
	if err != nil {
		t.Fatal(err)
	}

	// Worker 0 holds every task for 400ms: the SIGKILL below lands while
	// it owns a lease. Workers 1-3 are healthy but faulted at the RPC
	// layer: worker 1 drops its first delivery, worker 2 duplicates its
	// second.
	victim := spawnWorker(t, "-hold=400ms")
	var procs []*Proc
	var transports []Transport
	procs = append(procs, victim)
	transports = append(transports, victim.Transport())
	var dropFT, dupFT *FaultTransport
	for i := 1; i < 4; i++ {
		p := spawnWorker(t)
		procs = append(procs, p)
		ft := NewFaultTransport(p.Transport())
		switch i {
		case 1:
			ft.DropCall(1)
			dropFT = ft
		case 2:
			ft.DupCall(2)
			dupFT = ft
		}
		transports = append(transports, ft)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Kill()
		}
	})

	opts := quickOpts()
	opts.ShardSize = 100 // 20 tasks across 4 workers
	opts.MaxAttempts = 5
	opts.LeaseTTL = 5 * time.Second
	opts.Logf = t.Logf
	sup := NewSupervisor(transports, opts)
	sup.Start()
	defer sup.Close()

	// SIGKILL the victim once the run is in flight — its held tasks die
	// with it and must be re-leased elsewhere.
	killed := make(chan struct{})
	var execDone atomic.Bool
	go func() {
		defer close(killed)
		time.Sleep(150 * time.Millisecond)
		if execDone.Load() {
			return
		}
		victim.Kill()
	}()

	got, err := sup.Execute(context.Background(), spec, rows)
	execDone.Store(true)
	<-killed
	if err != nil {
		t.Fatal(err)
	}
	assertSameBits(t, "chaos", got, want)

	st := sup.Snapshot()
	t.Logf("chaos run: %+v; drop transport calls=%d dup transport calls=%d",
		st, dropFT.Calls(), dupFT.Calls())
	if st.Retries == 0 {
		t.Fatal("chaos run saw no retries — faults were not exercised")
	}
}

// All workers SIGKILLed before the run: every task degrades to in-process
// execution, the result still holds bitwise, and the supervisor reports
// degraded once heartbeats catch up.
func TestChaosAllWorkersDownDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	rows := testRows(rand.New(rand.NewSource(55)), 400)
	spec := testSpecs()[0]
	want, _ := spec.Score(rows)

	var transports []Transport
	for i := 0; i < 2; i++ {
		p := spawnWorker(t)
		transports = append(transports, p.Transport())
		p.Kill()
	}
	opts := quickOpts()
	opts.MaxAttempts = 2
	sup := NewSupervisor(transports, opts)
	sup.Start()
	defer sup.Close()

	got, err := sup.Execute(context.Background(), spec, rows)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBits(t, "all-down", got, want)
	if sup.Snapshot().LocalFallbacks == 0 {
		t.Fatal("no local fallbacks despite a dead fleet")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !sup.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("supervisor never reported degraded")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
