package dist

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// WorkerOptions tunes a worker's task handler.
type WorkerOptions struct {
	// Hold delays every task for the given duration between decode and
	// scoring — a chaos knob that widens the window in which a SIGKILL or
	// an injected fault lands mid-task. Zero in production.
	Hold time.Duration
	// Logf receives worker diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func (o WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// WorkerHandler is the vadasaw wire surface: POST /task scores a shard,
// GET /healthz answers liveness probes. The handler is stateless and the
// scoring pure, so re-delivered tasks (retries, duplicated RPCs) recompute
// identical bits — worker idempotency falls out of purity rather than
// deduplication bookkeeping.
func WorkerHandler(opts WorkerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /task", func(w http.ResponseWriter, r *http.Request) {
		var t Task
		if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
			http.Error(w, "bad task: "+err.Error(), http.StatusBadRequest)
			return
		}
		if opts.Hold > 0 {
			time.Sleep(opts.Hold)
		}
		reply := Reply{Seq: t.Seq, Epoch: t.Epoch}
		values, err := t.Measure.Score(t.Rows)
		if err != nil {
			// A scoring error is a deterministic property of the data, not
			// of this worker: it rides back inside a successful reply so
			// the supervisor fails the task instead of retrying it.
			reply.Err = err.Error()
		} else {
			//distfence:ok worker endpoint: produces values, never admits them
			reply.Values = values
		}
		opts.logf("vadasaw: task run=%s seq=%d epoch=%d rows=%d err=%q",
			t.Run, t.Seq, t.Epoch, len(t.Rows), reply.Err)
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(reply); err != nil {
			opts.logf("vadasaw: encoding reply for task %d: %v", t.Seq, err)
		}
	})
	return mux
}

// listeningPrefix is the line a worker prints to stdout once it accepts
// connections; Spawn parses the address after it.
const listeningPrefix = "vadasaw listening on "

// WorkerMain is the entire vadasaw worker process: parse flags, listen,
// announce the bound address on stdout, serve until killed. It is shared
// between cmd/vadasaw and the test binaries' re-exec path (a TestMain that
// detects a worker environment variable), so chaos tests SIGKILL real
// processes running exactly the production loop. Returns the process exit
// code.
func WorkerMain(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("vadasaw", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	hold := fs.Duration("hold", 0, "artificial per-task delay between decode and scoring (chaos testing)")
	quiet := fs.Bool("quiet", false, "suppress per-task diagnostics on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	opts := WorkerOptions{Hold: *hold}
	if !*quiet {
		opts.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vadasaw: listen %s: %v\n", *addr, err)
		return 1
	}
	// The announce line is the spawn handshake: the parent reads it to
	// learn the bound port before sending work.
	fmt.Fprintf(stdout, "%s%s\n", listeningPrefix, l.Addr().String())
	if f, ok := stdout.(*os.File); ok {
		f.Sync()
	}
	srv := &http.Server{Handler: WorkerHandler(opts), ReadHeaderTimeout: 5 * time.Second}
	if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "vadasaw: serve: %v\n", err)
		return 1
	}
	return 0
}

// Proc is a worker child process spawned by the supervisor's host.
type Proc struct {
	cmd  *exec.Cmd
	addr string

	mu      sync.Mutex
	waited  bool
	waitErr error
}

// Spawn starts bin with args as a vadasaw worker, waits for its announce
// line (bounded by timeout), and returns a handle addressing it. extraEnv
// entries are appended to the inherited environment — the test re-exec
// path uses this to flip the binary into worker mode.
func Spawn(bin string, args []string, extraEnv []string, timeout time.Duration) (*Proc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), extraEnv...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: spawning %s: %w", bin, err)
	}
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, listeningPrefix) {
				addrc <- strings.TrimSpace(strings.TrimPrefix(line, listeningPrefix))
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		errc <- fmt.Errorf("dist: worker %s exited before announcing its address", bin)
	}()
	select {
	case addr := <-addrc:
		return &Proc{cmd: cmd, addr: addr}, nil
	case err := <-errc:
		cmd.Process.Kill()
		cmd.Wait()
		return nil, err
	case <-time.After(timeout):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("dist: worker %s did not announce within %s", bin, timeout)
	}
}

// Addr returns the worker's announced listen address.
func (p *Proc) Addr() string { return p.addr }

// Transport returns an HTTP transport addressing the worker.
func (p *Proc) Transport() *HTTPTransport { return NewHTTPTransport(p.addr, nil) }

// Kill delivers SIGKILL — no grace, no cleanup, the crash chaos tests
// need — and reaps the child.
func (p *Proc) Kill() error {
	p.cmd.Process.Kill()
	return p.wait()
}

func (p *Proc) wait() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.waited {
		p.waited = true
		p.waitErr = p.cmd.Wait()
	}
	return p.waitErr
}
