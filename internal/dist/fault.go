package dist

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// FaultTransport wraps a Transport and injects deterministic transport
// failures, addressed by 1-based Call count — the RPC-layer sibling of
// internal/faultfs. Chaos tests compose the two: a worker SIGKILLed
// mid-task while the journal takes a torn write, with the retry's RPC
// duplicated on top, must still converge to the bit-identical release.
//
// Fault semantics, applied in this order when several target one call:
//
//   - Drop: the request is swallowed — the worker never sees it — and the
//     caller gets ErrWorkerLost, as with a network partition on send.
//   - Delay: the request is held before delivery (a slow link; composes
//     with lease TTLs and hedging).
//   - Dup: the task is delivered to the worker twice and the SECOND reply
//     is returned — exercising worker idempotency (pure re-computation)
//     and, with a revoked first epoch, the supervisor's reply fence.
//   - Truncate: the task is delivered, but the reply loses the second half
//     of its values — a torn response. The supervisor must detect the
//     length mismatch and treat the worker as lost rather than merging a
//     short vector.
//
// Faults are one-shot per call number; unconfigured calls pass through.
type FaultTransport struct {
	inner Transport

	mu       sync.Mutex
	calls    int
	drop     map[int]bool
	dup      map[int]bool
	truncate map[int]bool
	delay    map[int]time.Duration
}

// NewFaultTransport wraps inner with an initially fault-free injector.
func NewFaultTransport(inner Transport) *FaultTransport {
	return &FaultTransport{
		inner:    inner,
		drop:     make(map[int]bool),
		dup:      make(map[int]bool),
		truncate: make(map[int]bool),
		delay:    make(map[int]time.Duration),
	}
}

// DropCall swallows the n-th Call (1-based): the worker never sees it and
// the caller gets ErrWorkerLost.
func (f *FaultTransport) DropCall(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.drop[n] = true
}

// DupCall delivers the n-th Call's task to the worker twice, returning the
// second reply.
func (f *FaultTransport) DupCall(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dup[n] = true
}

// TruncateCall corrupts the n-th Call's reply by dropping the second half
// of its values.
func (f *FaultTransport) TruncateCall(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.truncate[n] = true
}

// DelayCall holds the n-th Call for d before delivering it.
func (f *FaultTransport) DelayCall(n int, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay[n] = d
}

// Calls reports how many Call invocations the transport has seen.
func (f *FaultTransport) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Call implements Transport, applying any faults armed for this call.
func (f *FaultTransport) Call(ctx context.Context, t Task) (Reply, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	drop := f.drop[n]
	dup := f.dup[n]
	trunc := f.truncate[n]
	delay := f.delay[n]
	f.mu.Unlock()

	if drop {
		return Reply{}, fmt.Errorf("%w: %s: injected drop of call %d", ErrWorkerLost, f.Addr(), n)
	}
	if delay > 0 {
		select {
		case <-ctx.Done():
			return Reply{}, fmt.Errorf("%w: %s: %v", ErrWorkerLost, f.Addr(), ctx.Err())
		case <-time.After(delay):
		}
	}
	r, err := f.inner.Call(ctx, t)
	if dup && err == nil {
		// Duplicate delivery: the worker computes the task again; the
		// second reply is what the network hands back. A correct worker is
		// pure, so both replies carry identical bits.
		r, err = f.inner.Call(ctx, t)
	}
	if trunc && err == nil {
		//distfence:ok fault injector: corrupts values upstream of the fence on purpose
		r.Values = r.Values[:len(r.Values)/2]
	}
	return r, err
}

// Ping implements Transport, passing through unfaulted.
func (f *FaultTransport) Ping(ctx context.Context) error { return f.inner.Ping(ctx) }

// Addr implements Transport.
func (f *FaultTransport) Addr() string { return f.inner.Addr() }

// Close implements Transport.
func (f *FaultTransport) Close() error { return f.inner.Close() }
