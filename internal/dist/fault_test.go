package dist

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// Each injected transport fault — drop, duplicate, truncate, delay — must
// cost latency only: the merged result stays bit-identical to local.
func TestFaultTransportSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	rows := testRows(rng, 64)
	spec := testSpecs()[2] // Monte-Carlo: the heaviest float path
	want, err := spec.Score(rows)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("drop", func(t *testing.T) {
		ft := NewFaultTransport(scoringTransport("w", 0))
		ft.DropCall(1)
		sup := NewSupervisor([]Transport{ft}, quickOpts())
		defer sup.Close()
		got, err := sup.Execute(context.Background(), spec, rows)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBits(t, "drop", got, want)
		if ft.Calls() < 2 {
			t.Fatalf("dropped call not retried: %d calls", ft.Calls())
		}
	})

	t.Run("dup", func(t *testing.T) {
		inner := scoringTransport("w", 0)
		ft := NewFaultTransport(inner)
		ft.DupCall(1)
		sup := NewSupervisor([]Transport{ft}, quickOpts())
		defer sup.Close()
		got, err := sup.Execute(context.Background(), spec, rows)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBits(t, "dup", got, want)
		if inner.Calls() != 2 {
			t.Fatalf("worker saw %d deliveries, want 2 (duplicate)", inner.Calls())
		}
	})

	t.Run("truncate", func(t *testing.T) {
		ft := NewFaultTransport(scoringTransport("w", 0))
		ft.TruncateCall(1)
		sup := NewSupervisor([]Transport{ft}, quickOpts())
		defer sup.Close()
		got, err := sup.Execute(context.Background(), spec, rows)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBits(t, "truncate", got, want)
		if ft.Calls() < 2 {
			t.Fatalf("truncated reply not retried: %d calls", ft.Calls())
		}
	})

	t.Run("delay", func(t *testing.T) {
		ft := NewFaultTransport(scoringTransport("w", 0))
		ft.DelayCall(1, 20*time.Millisecond)
		sup := NewSupervisor([]Transport{ft}, quickOpts())
		defer sup.Close()
		got, err := sup.Execute(context.Background(), spec, rows)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBits(t, "delay", got, want)
	})
}

// A drop surfaces as ErrWorkerLost to direct callers.
func TestFaultTransportDropError(t *testing.T) {
	ft := NewFaultTransport(scoringTransport("w", 0))
	ft.DropCall(1)
	_, err := ft.Call(context.Background(), Task{Seq: 0, Measure: testSpecs()[0]})
	if !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("err = %v, want ErrWorkerLost", err)
	}
}

// Composed faults across several workers in one run: the supervisor routes
// around all of them and the bits hold.
func TestFaultStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	rows := testRows(rng, 600)
	spec := testSpecs()[2]
	want, err := spec.Score(rows)
	if err != nil {
		t.Fatal(err)
	}
	var transports []Transport
	for i := 0; i < 3; i++ {
		ft := NewFaultTransport(scoringTransport("w", time.Duration(i)*time.Millisecond))
		ft.DropCall(1)
		ft.DupCall(2)
		ft.TruncateCall(3)
		ft.DelayCall(4, 10*time.Millisecond)
		transports = append(transports, ft)
	}
	opts := quickOpts()
	opts.MaxAttempts = 5
	sup := NewSupervisor(transports, opts)
	defer sup.Close()
	got, err := sup.Execute(context.Background(), spec, rows)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBits(t, "storm", got, want)
}
