package dist

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"testing"
	"time"
)

// The HTTP worker surface end to end (in-process listener): scoring,
// idempotent re-delivery, healthz, scoring-error replies.
func TestWorkerHandler(t *testing.T) {
	tr := httpWorker(t, WorkerOptions{})
	defer tr.Close()
	ctx := context.Background()
	if err := tr.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(52))
	rows := testRows(rng, 128)
	for _, spec := range testSpecs() {
		task := Task{Run: "t", Seq: 5, Epoch: 9, Measure: spec, Rows: rows}
		want, err := spec.Score(rows)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := tr.Call(ctx, task)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Seq != 5 || r1.Epoch != 9 || r1.Err != "" {
			t.Fatalf("reply header %+v", r1)
		}
		assertSameBits(t, spec.Kind+"/wire", r1.Values, want)

		// Re-delivery (a duplicated RPC, a retry): identical bits.
		r2, err := tr.Call(ctx, task)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBits(t, spec.Kind+"/redelivery", r2.Values, r1.Values)
	}

	// A scoring error rides inside a successful reply.
	bad := Task{Seq: 1, Measure: MeasureSpec{Kind: KindReIdentification},
		Rows: []TaskRow{{Pos: 0, ID: 3, Freq: 1, WeightSum: 0}}}
	r, err := tr.Call(ctx, bad)
	if err != nil {
		t.Fatal(err)
	}
	if want := "risk: row 3 has non-positive group weight 0"; r.Err != want {
		t.Fatalf("reply err %q, want %q", r.Err, want)
	}
}

// Spawn starts a real worker process (the test binary re-exec'd through
// WorkerMain), the handshake yields its address, it serves work, and Kill
// makes it unreachable.
func TestSpawnAndKill(t *testing.T) {
	p, err := Spawn(os.Args[0], []string{"-addr=127.0.0.1:0", "-quiet"},
		[]string{workerEnv + "=1"}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Transport()
	defer tr.Close()
	ctx := context.Background()
	if err := tr.Ping(ctx); err != nil {
		t.Fatalf("spawned worker not reachable: %v", err)
	}
	rows := testRows(rand.New(rand.NewSource(53)), 64)
	spec := testSpecs()[0]
	want, _ := spec.Score(rows)
	r, err := tr.Call(ctx, Task{Seq: 0, Epoch: 1, Measure: spec, Rows: rows})
	if err != nil {
		t.Fatal(err)
	}
	assertSameBits(t, "spawned", r.Values, want)

	if err := p.Kill(); err == nil {
		t.Log("worker exited cleanly after SIGKILL (unexpected but harmless)")
	}
	pingCtx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	if err := tr.Ping(pingCtx); !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("ping after SIGKILL = %v, want ErrWorkerLost", err)
	}
}
