// Package cluster embeds the complex business knowledge of Section 4.4:
// company-control relationships derived from an ownership graph, entity
// clusters, and the propagation of disclosure risk along linked entities —
// re-identifying one member of a cluster makes the others easier to
// re-identify, so the whole cluster shares the combined risk
// 1 − Π(1 − ρ) of Algorithm 9.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"vadasa/internal/mdb"
	"vadasa/internal/risk"
)

// Graph is a company-ownership graph: AddOwnership(x, y, w) states that x
// directly owns a share w of y (the Own(X,Y,W) facts).
type Graph struct {
	own      map[string]map[string]float64
	entities map[string]bool
}

// NewGraph returns an empty ownership graph.
func NewGraph() *Graph {
	return &Graph{
		own:      make(map[string]map[string]float64),
		entities: make(map[string]bool),
	}
}

// AddOwnership records a direct ownership share in (0,1]. Multiple calls for
// the same pair accumulate (capped at 1).
func (g *Graph) AddOwnership(owner, owned string, share float64) error {
	if share <= 0 || share > 1 {
		return fmt.Errorf("cluster: ownership share %g outside (0,1]", share)
	}
	if owner == owned {
		return fmt.Errorf("cluster: %q cannot own itself", owner)
	}
	m, ok := g.own[owner]
	if !ok {
		m = make(map[string]float64)
		g.own[owner] = m
	}
	m[owned] += share
	if m[owned] > 1 {
		m[owned] = 1
	}
	g.entities[owner] = true
	g.entities[owned] = true
	return nil
}

// Entities returns the entities mentioned in the graph, sorted.
func (g *Graph) Entities() []string {
	out := make([]string, 0, len(g.entities))
	for e := range g.entities {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Edge is one direct ownership share.
type Edge struct {
	Owner, Owned string
	Share        float64
}

// Edges lists the direct ownership edges, sorted by owner then owned.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for owner, m := range g.own {
		for owned, share := range m {
			out = append(out, Edge{Owner: owner, Owned: owned, Share: share})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Owner != out[j].Owner {
			return out[i].Owner < out[j].Owner
		}
		return out[i].Owned < out[j].Owned
	})
	return out
}

// EdgeCount returns the number of direct ownership edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, m := range g.own {
		n += len(m)
	}
	return n
}

// Controls computes the company-control relation of the Section 4.4 rules:
// X controls Y if X directly owns more than 50% of Y, or if the companies X
// controls (X included) jointly own more than 50% of Y. The computation is a
// monotone fixpoint, exactly like the msum-guarded recursive Vadalog rule;
// it runs a worklist per controller over the reachable out-edges only, so
// large entity sets with sparse ownership (the Figure 7d setting) stay
// cheap.
func (g *Graph) Controls() map[string]map[string]bool {
	rel := make(map[string]map[string]bool, len(g.own))
	for x := range g.own {
		controlled := make(map[string]bool)
		// joint[y] accumulates the ownership of y held by x and the
		// companies x already controls.
		joint := make(map[string]float64)
		queue := []string{x}
		for len(queue) > 0 {
			z := queue[0]
			queue = queue[1:]
			for y, w := range g.own[z] {
				if y == x || controlled[y] {
					continue
				}
				joint[y] += w
				if joint[y] > 0.5 {
					controlled[y] = true
					queue = append(queue, y)
				}
			}
		}
		if len(controlled) > 0 {
			rel[x] = controlled
		}
	}
	return rel
}

// Clusters partitions the given entities into clusters: two entities are
// clustered together when one (transitively) controls the other. Entities
// absent from the graph form singletons.
func (g *Graph) Clusters(entities []string) [][]string {
	parent := make(map[string]string, len(entities))
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	inSet := make(map[string]bool, len(entities))
	for _, e := range entities {
		find(e)
		inSet[e] = true
	}
	for x, ys := range g.Controls() {
		if !inSet[x] {
			continue
		}
		for y := range ys {
			if inSet[y] {
				union(x, y)
			}
		}
	}
	byRoot := make(map[string][]string)
	for _, e := range entities {
		r := find(e)
		byRoot[r] = append(byRoot[r], e)
	}
	out := make([][]string, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// CombinedRisk propagates per-entity risks within clusters: every member of
// a cluster gets 1 − Π(1 − ρc), the probability that at least one member is
// re-identified (Algorithm 9, Rule 2). Entities missing from risks
// contribute nothing.
func CombinedRisk(risks map[string]float64, clusters [][]string) map[string]float64 {
	out := make(map[string]float64, len(risks))
	for _, members := range clusters {
		if len(members) == 1 {
			// Exact for singletons: no propagation, no float round-trip.
			out[members[0]] = risks[members[0]]
			continue
		}
		surv := 1.0
		for _, m := range members {
			surv *= 1 - risks[m]
		}
		combined := 1 - surv
		for _, m := range members {
			out[m] = combined
		}
	}
	return out
}

// Assessor decorates a base risk assessor with cluster propagation: it is
// the enhanced anonymization cycle of Algorithm 9 seen as a plug-in risk
// measure. Entities are identified by the dataset's direct-identifier
// attribute (or EntityAttr when set); tuples whose entity was suppressed or
// is absent behave as singletons.
type Assessor struct {
	Base  risk.Assessor
	Graph *Graph
	// EntityAttr names the attribute holding the entity identity; empty
	// selects the first Identifier attribute of the dataset.
	EntityAttr string
}

// Name implements risk.Assessor.
func (a Assessor) Name() string {
	return fmt.Sprintf("cluster(%s)", a.Base.Name())
}

// Assess implements risk.Assessor.
func (a Assessor) Assess(d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	return a.AssessContext(context.Background(), d, sem)
}

// AssessContext implements risk.ContextAssessor by forwarding the context to
// the base measure (the decorator must not make a cancellable measure
// uncancellable) and polling it around the propagation passes.
func (a Assessor) AssessContext(ctx context.Context, d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	if a.Base == nil || a.Graph == nil {
		return nil, fmt.Errorf("cluster: Assessor needs both Base and Graph")
	}
	base, err := risk.AssessContext(ctx, a.Base, d, sem)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: propagation cancelled: %w", err)
	}
	entAttr := -1
	if a.EntityAttr != "" {
		entAttr = d.AttrIndex(a.EntityAttr)
		if entAttr < 0 {
			return nil, fmt.Errorf("cluster: dataset %q has no attribute %q", d.Name, a.EntityAttr)
		}
	} else {
		for i, at := range d.Attrs {
			if at.Category == mdb.Identifier {
				entAttr = i
				break
			}
		}
		if entAttr < 0 {
			return nil, fmt.Errorf("cluster: dataset %q has no identifier attribute for entity lookup", d.Name)
		}
	}

	entityOf := make([]string, len(d.Rows))
	riskOf := make(map[string]float64, len(d.Rows))
	var entities []string
	for i, r := range d.Rows {
		v := r.Values[entAttr]
		if v.IsNull() {
			continue // suppressed identity: singleton, keeps base risk
		}
		e := v.Constant()
		entityOf[i] = e
		riskOf[e] = base[i]
		entities = append(entities, e)
	}
	combined := CombinedRisk(riskOf, a.Graph.Clusters(entities))

	out := make([]float64, len(base))
	for i := range base {
		if e := entityOf[i]; e != "" {
			out[i] = combined[e]
		} else {
			out[i] = base[i]
		}
	}
	return out, nil
}

// StarOwnerships adds n control edges (share 0.6) arranged as stars: each
// hub entity owns fanout randomly chosen entities. Real ownership networks
// are hub-heavy — holding companies control several affiliates — so control
// clusters are larger than the pairs uniform random edges would produce;
// this is the generator behind the Figure 7d sweep, where bigger clusters
// are what make risk propagation visible. Runs are reproducible per seed.
func StarOwnerships(g *Graph, entities []string, n, fanout int, seed int64) error {
	if fanout < 1 {
		return fmt.Errorf("cluster: fanout must be positive")
	}
	if len(entities) < fanout+1 && n > 0 {
		return fmt.Errorf("cluster: need more than %d entities for fanout %d", fanout, fanout)
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]string]bool, n)
	added, attempts := 0, 0
	for added < n {
		hub := entities[rng.Intn(len(entities))]
		for spoke := 0; spoke < fanout && added < n; {
			if attempts++; attempts > 100*(n+1) {
				return fmt.Errorf("cluster: could not place %d star edges among %d entities", n, len(entities))
			}
			b := entities[rng.Intn(len(entities))]
			if b == hub || seen[[2]string{hub, b}] || seen[[2]string{b, hub}] {
				continue
			}
			seen[[2]string{hub, b}] = true
			if err := g.AddOwnership(hub, b, 0.6); err != nil {
				return err
			}
			added++
			spoke++
		}
	}
	return nil
}

// RandomOwnerships adds n control edges (share 0.6) between randomly chosen
// distinct entities, avoiding duplicate pairs. The rng seed makes runs
// reproducible.
func RandomOwnerships(g *Graph, entities []string, n int, seed int64) error {
	if len(entities) < 2 && n > 0 {
		return fmt.Errorf("cluster: need at least two entities for ownership edges")
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]string]bool, n)
	for added := 0; added < n; {
		a := entities[rng.Intn(len(entities))]
		b := entities[rng.Intn(len(entities))]
		if a == b || seen[[2]string{a, b}] || seen[[2]string{b, a}] {
			continue
		}
		seen[[2]string{a, b}] = true
		if err := g.AddOwnership(a, b, 0.6); err != nil {
			return err
		}
		added++
	}
	return nil
}
