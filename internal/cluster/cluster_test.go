package cluster

import (
	"fmt"
	"math"
	"testing"

	"vadasa/internal/mdb"
	"vadasa/internal/risk"
	"vadasa/internal/synth"
)

func TestControlsDirectAndJoint(t *testing.T) {
	g := NewGraph()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddOwnership("a", "b", 0.6))
	must(g.AddOwnership("a", "e", 0.7))
	must(g.AddOwnership("b", "c", 0.3))
	must(g.AddOwnership("e", "c", 0.3))
	must(g.AddOwnership("c", "d", 0.9))

	rel := g.Controls()
	want := [][2]string{{"a", "b"}, {"a", "e"}, {"a", "c"}, {"a", "d"}, {"c", "d"}}
	got := 0
	for _, w := range want {
		if !rel[w[0]][w[1]] {
			t.Errorf("missing control %s->%s", w[0], w[1])
		}
	}
	for x, ys := range rel {
		got += len(ys)
		_ = x
	}
	if got != len(want) {
		t.Errorf("control relation has %d pairs, want %d: %v", got, len(want), rel)
	}
	if rel["b"]["c"] {
		t.Error("spurious control b->c")
	}
}

func TestAddOwnershipValidation(t *testing.T) {
	g := NewGraph()
	if err := g.AddOwnership("a", "a", 0.6); err == nil {
		t.Error("self-ownership accepted")
	}
	if err := g.AddOwnership("a", "b", 0); err == nil {
		t.Error("zero share accepted")
	}
	if err := g.AddOwnership("a", "b", 1.5); err == nil {
		t.Error("share > 1 accepted")
	}
	// Accumulation caps at 1.
	if err := g.AddOwnership("a", "b", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOwnership("a", "b", 0.8); err != nil {
		t.Fatal(err)
	}
	if g.own["a"]["b"] != 1 {
		t.Errorf("accumulated share = %g, want 1", g.own["a"]["b"])
	}
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d", g.EdgeCount())
	}
}

func TestClusters(t *testing.T) {
	g := NewGraph()
	if err := g.AddOwnership("a", "b", 0.6); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOwnership("c", "d", 0.7); err != nil {
		t.Fatal(err)
	}
	clusters := g.Clusters([]string{"a", "b", "c", "d", "x"})
	if len(clusters) != 3 {
		t.Fatalf("clusters = %v", clusters)
	}
	// Sorted by first member: [a b], [c d], [x].
	if clusters[0][0] != "a" || clusters[0][1] != "b" || clusters[2][0] != "x" {
		t.Fatalf("clusters = %v", clusters)
	}
}

func TestCombinedRisk(t *testing.T) {
	risks := map[string]float64{"a": 0.5, "b": 0.2, "x": 0.3}
	clusters := [][]string{{"a", "b"}, {"x"}}
	got := CombinedRisk(risks, clusters)
	if want := 1 - 0.5*0.8; math.Abs(got["a"]-want) > 1e-12 || math.Abs(got["b"]-want) > 1e-12 {
		t.Errorf("cluster risk = %g/%g, want %g", got["a"], got["b"], want)
	}
	if got["x"] != 0.3 {
		t.Errorf("singleton risk = %g, want unchanged 0.3", got["x"])
	}
}

// Cluster risk is at least the maximum member risk, with equality for
// singletons (a DESIGN.md invariant).
func TestCombinedRiskDominatesMax(t *testing.T) {
	risks := map[string]float64{"a": 0.9, "b": 0.1, "c": 0.4}
	got := CombinedRisk(risks, [][]string{{"a", "b", "c"}})
	for e, r := range risks {
		if got[e] < r-1e-12 {
			t.Errorf("cluster risk %g below member %s risk %g", got[e], e, r)
		}
	}
	single := CombinedRisk(risks, [][]string{{"b"}})
	if single["b"] != risks["b"] {
		t.Errorf("singleton changed: %g", single["b"])
	}
}

func TestAssessorPropagatesRisk(t *testing.T) {
	d := synth.Figure5()
	g := NewGraph()
	// Link risky tuple 1 (id 099876) with safe tuple 2 (id 765389).
	if err := g.AddOwnership("099876", "765389", 0.9); err != nil {
		t.Fatal(err)
	}
	base := risk.KAnonymity{K: 2}
	a := Assessor{Base: base, Graph: g}
	rs, err := a.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	// Tuple 1 is unique (base risk 1); tuple 2 inherits it via the cluster.
	if rs[0] != 1 || rs[1] != 1 {
		t.Errorf("risks = %v, want tuples 1 and 2 at 1", rs[:3])
	}
	// Tuple 3 shares tuple 2's combination but is not clustered: base 0.
	if rs[2] != 0 {
		t.Errorf("tuple 3 risk = %g, want 0", rs[2])
	}
}

func TestAssessorSuppressedIdentityIsSingleton(t *testing.T) {
	d := synth.Figure5()
	g := NewGraph()
	if err := g.AddOwnership("099876", "765389", 0.9); err != nil {
		t.Fatal(err)
	}
	// Suppress tuple 2's identity: it must fall back to its base risk.
	d.Rows[1].Values[0] = d.Nulls.Fresh()
	rs, err := Assessor{Base: risk.KAnonymity{K: 2}, Graph: g}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	if rs[1] != 0 {
		t.Errorf("suppressed-identity tuple risk = %g, want base 0", rs[1])
	}
}

func TestAssessorValidation(t *testing.T) {
	d := synth.Figure5()
	if _, err := (Assessor{}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Error("empty assessor accepted")
	}
	if _, err := (Assessor{Base: risk.KAnonymity{K: 2}, Graph: NewGraph(), EntityAttr: "Nope"}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Error("unknown entity attribute accepted")
	}
	noID := mdb.NewDataset("x", []mdb.Attribute{{Name: "A", Category: mdb.QuasiIdentifier}})
	noID.Append(&mdb.Row{Values: []mdb.Value{mdb.Const("v")}, Weight: 1})
	if _, err := (Assessor{Base: risk.KAnonymity{K: 2}, Graph: NewGraph()}).Assess(noID, mdb.MaybeMatch); err == nil {
		t.Error("dataset without identifier accepted")
	}
}

func TestRandomOwnerships(t *testing.T) {
	g := NewGraph()
	entities := []string{"a", "b", "c", "d", "e", "f"}
	if err := RandomOwnerships(g, entities, 5, 42); err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 5 {
		t.Fatalf("EdgeCount = %d, want 5", g.EdgeCount())
	}
	// Reproducible.
	g2 := NewGraph()
	if err := RandomOwnerships(g2, entities, 5, 42); err != nil {
		t.Fatal(err)
	}
	for x, ys := range g.own {
		for y := range ys {
			if g2.own[x][y] == 0 {
				t.Fatalf("seeded generation not reproducible: missing %s->%s", x, y)
			}
		}
	}
	if err := RandomOwnerships(NewGraph(), []string{"solo"}, 1, 1); err == nil {
		t.Error("single-entity edge generation accepted")
	}
}

func TestStarOwnerships(t *testing.T) {
	g := NewGraph()
	entities := make([]string, 50)
	for i := range entities {
		entities[i] = fmt.Sprintf("e%02d", i)
	}
	if err := StarOwnerships(g, entities, 20, 4, 3); err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 20 {
		t.Fatalf("EdgeCount = %d, want 20", g.EdgeCount())
	}
	// Star topology: some entity owns several others.
	maxOut := 0
	for _, ys := range g.own {
		if len(ys) > maxOut {
			maxOut = len(ys)
		}
	}
	if maxOut < 2 {
		t.Fatalf("no hub found; max out-degree %d", maxOut)
	}
	if err := StarOwnerships(NewGraph(), entities, 10, 0, 1); err == nil {
		t.Error("zero fanout accepted")
	}
	if err := StarOwnerships(NewGraph(), entities[:2], 10, 4, 1); err == nil {
		t.Error("too few entities accepted")
	}
	// Saturated pair space must error out, not loop forever.
	if err := StarOwnerships(NewGraph(), []string{"a", "b", "c", "d", "e"}, 100, 4, 1); err == nil {
		t.Error("unplaceable edge count accepted")
	}
}

// More relationships never decrease the number of risky tuples (the
// monotone trend behind Figure 7d).
func TestMoreRelationshipsMoreRisk(t *testing.T) {
	d := synth.Generate(synth.Config{Tuples: 1500, QIs: 4, Dist: synth.DistU, Seed: 31})
	var ids []string
	for _, r := range d.Rows {
		ids = append(ids, r.Values[0].Constant())
	}
	count := func(nRels int) int {
		g := NewGraph()
		if err := RandomOwnerships(g, ids, nRels, 7); err != nil {
			t.Fatal(err)
		}
		rs, err := Assessor{Base: risk.KAnonymity{K: 2}, Graph: g}.Assess(d, mdb.MaybeMatch)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, r := range rs {
			if r > 0.5 {
				n++
			}
		}
		return n
	}
	prev := -1
	for _, nRels := range []int{0, 50, 150} {
		n := count(nRels)
		if n < prev {
			t.Fatalf("risky count decreased with more relationships: %d -> %d", prev, n)
		}
		prev = n
	}
}
