package hierarchy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Interval ladders bring numeric attributes into the global-recoding world:
// a numeric value first rolls up to its finest interval, then each
// generalization level halves the resolution by merging adjacent intervals —
// the standard value-generalization-hierarchy construction of the SDC tools
// (ARX, sdcMicro) expressed as TypeOf/SubTypeOf/InstOf/IsA knowledge.

// IntervalLabel renders the half-open interval [lo, hi) in the ladder's
// label format; the ".." separator keeps negative bounds unambiguous.
func IntervalLabel(lo, hi float64) string {
	return fmt.Sprintf("[%s..%s)", trimFloat(lo), trimFloat(hi))
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}

// BuildIntervalLadder installs, for the attribute attr, a hierarchy of
// numeric intervals over the given ascending cut points: level 0 has one
// interval [cuts[i], cuts[i+1]) per adjacent pair, and every further level
// merges pairs of intervals until a single interval remains. Values are
// mapped into level-0 intervals by MapToInterval.
//
// For cuts [0, 30, 60, 90] the ladder is
//
//	[0..30) [30..60) [60..90)     level 0 (type attr.L0)
//	[0..60) [60..90)              level 1
//	[0..90)                       level 2 (top)
//
// Levels are typed attr.L0, attr.L1, ... so RollUp's type checks hold.
func (h *Hierarchy) BuildIntervalLadder(attr string, cuts []float64) error {
	if len(cuts) < 2 {
		return fmt.Errorf("hierarchy: interval ladder for %q needs at least 2 cut points", attr)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			return fmt.Errorf("hierarchy: cut points for %q not strictly ascending at %d", attr, i)
		}
	}

	type iv struct{ lo, hi float64 }
	level := make([]iv, 0, len(cuts)-1)
	for i := 0; i+1 < len(cuts); i++ {
		level = append(level, iv{cuts[i], cuts[i+1]})
	}
	h.SetAttributeType(attr, typeName(attr, 0))
	for depth := 0; len(level) > 1; depth++ {
		var next []iv
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, iv{level[i].lo, level[i+1].hi})
			} else {
				next = append(next, level[i])
			}
		}
		if err := h.AddSubType(typeName(attr, depth), typeName(attr, depth+1)); err != nil {
			return err
		}
		for i, child := range level {
			parent := next[i/2]
			childLabel := IntervalLabel(child.lo, child.hi)
			parentLabel := IntervalLabel(parent.lo, parent.hi)
			h.AddInstance(childLabel, typeName(attr, depth))
			h.AddInstance(parentLabel, typeName(attr, depth+1))
			if childLabel == parentLabel {
				continue // odd leftover carried up unchanged
			}
			if err := h.AddIsA(childLabel, parentLabel); err != nil {
				return err
			}
		}
		level = next
	}
	return nil
}

func typeName(attr string, depth int) string {
	return fmt.Sprintf("%s.L%d", attr, depth)
}

// MapToInterval returns the level-0 interval label of a numeric value under
// the given cut points, or false when the value falls outside the ladder.
// The last interval is closed: cuts[len-1] belongs to it.
func MapToInterval(value float64, cuts []float64) (string, bool) {
	if len(cuts) < 2 || value < cuts[0] || value > cuts[len(cuts)-1] {
		return "", false
	}
	// The top boundary joins the last (closed) interval.
	if value == cuts[len(cuts)-1] {
		return IntervalLabel(cuts[len(cuts)-2], cuts[len(cuts)-1]), true
	}
	i := sort.SearchFloat64s(cuts, value) // first index with cuts[i] >= value
	if cuts[i] != value {
		i--
	}
	return IntervalLabel(cuts[i], cuts[i+1]), true
}

// ParseIntervalLabel parses a label produced by IntervalLabel.
func ParseIntervalLabel(label string) (lo, hi float64, err error) {
	s, ok := strings.CutPrefix(label, "[")
	if !ok {
		return 0, 0, fmt.Errorf("hierarchy: bad interval label %q", label)
	}
	s, ok = strings.CutSuffix(s, ")")
	if !ok {
		return 0, 0, fmt.Errorf("hierarchy: bad interval label %q", label)
	}
	loStr, hiStr, ok := strings.Cut(s, "..")
	if !ok {
		return 0, 0, fmt.Errorf("hierarchy: bad interval label %q", label)
	}
	lo, err = strconv.ParseFloat(loStr, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("hierarchy: bad interval label %q: %v", label, err)
	}
	hi, err = strconv.ParseFloat(hiStr, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("hierarchy: bad interval label %q: %v", label, err)
	}
	return lo, hi, nil
}
