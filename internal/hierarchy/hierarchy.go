// Package hierarchy holds the domain knowledge used by global recoding
// (Algorithm 8): attribute types, the sub-type lattice, value instances and
// the isA relation between values and their coarser parents — e.g. the
// Italian geography where Milano isA North, and City is a sub-type of
// Region.
package hierarchy

import (
	"fmt"
	"sort"

	"vadasa/internal/mdb"
)

// Hierarchy is a knowledge base of TypeOf/SubTypeOf/InstOf/IsA facts.
type Hierarchy struct {
	attrType map[string]string   // attribute name -> base type
	superOf  map[string]string   // type -> direct super-type
	instOf   map[string]string   // value -> type
	parentOf map[string]string   // value -> coarser value (isA)
	children map[string][]string // inverse of parentOf, kept sorted
}

// New returns an empty hierarchy.
func New() *Hierarchy {
	return &Hierarchy{
		attrType: make(map[string]string),
		superOf:  make(map[string]string),
		instOf:   make(map[string]string),
		parentOf: make(map[string]string),
		children: make(map[string][]string),
	}
}

// SetAttributeType records TypeOf(attr, typ): the base type of an attribute's
// values.
func (h *Hierarchy) SetAttributeType(attr, typ string) {
	h.attrType[attr] = typ
}

// AttributeType returns the declared base type of an attribute.
func (h *Hierarchy) AttributeType(attr string) (string, bool) {
	t, ok := h.attrType[attr]
	return t, ok
}

// AddSubType records SubTypeOf(typ, super): values of typ generalize to
// values of super. It rejects self-loops and cycles.
func (h *Hierarchy) AddSubType(typ, super string) error {
	if typ == super {
		return fmt.Errorf("hierarchy: type %q cannot be its own super-type", typ)
	}
	h.superOf[typ] = super
	// Cycle check by walking up.
	seen := map[string]bool{typ: true}
	for t := super; t != ""; t = h.superOf[t] {
		if seen[t] {
			delete(h.superOf, typ)
			return fmt.Errorf("hierarchy: SubTypeOf(%s,%s) introduces a cycle", typ, super)
		}
		seen[t] = true
	}
	return nil
}

// SuperType returns the direct super-type of a type.
func (h *Hierarchy) SuperType(typ string) (string, bool) {
	s, ok := h.superOf[typ]
	return s, ok
}

// AddInstance records InstOf(value, typ).
func (h *Hierarchy) AddInstance(value, typ string) {
	h.instOf[value] = typ
}

// TypeOfValue returns the type a value is an instance of.
func (h *Hierarchy) TypeOfValue(value string) (string, bool) {
	t, ok := h.instOf[value]
	return t, ok
}

// AddIsA records IsA(value, parent): value generalizes to parent. The parent
// must be an instance of the super-type of the value's type when both are
// declared; inconsistent roll-ups are rejected so recoding can trust the KB.
func (h *Hierarchy) AddIsA(value, parent string) error {
	if value == parent {
		return fmt.Errorf("hierarchy: IsA(%s,%s) is a self-loop", value, parent)
	}
	if vt, ok := h.instOf[value]; ok {
		if super, ok := h.superOf[vt]; ok {
			if pt, ok := h.instOf[parent]; ok && pt != super {
				return fmt.Errorf("hierarchy: IsA(%s,%s): parent has type %s, want %s",
					value, parent, pt, super)
			}
		}
	}
	// Cycle check along the isA chain.
	seen := map[string]bool{value: true}
	for v := parent; v != ""; {
		if seen[v] {
			return fmt.Errorf("hierarchy: IsA(%s,%s) introduces a cycle", value, parent)
		}
		seen[v] = true
		next, ok := h.parentOf[v]
		if !ok {
			break
		}
		v = next
	}
	h.parentOf[value] = parent
	h.children[parent] = append(h.children[parent], value)
	sort.Strings(h.children[parent])
	return nil
}

// Parent returns the coarser value a value rolls up to.
func (h *Hierarchy) Parent(value string) (string, bool) {
	p, ok := h.parentOf[value]
	return p, ok
}

// Children returns the values that roll up to the given value, sorted.
func (h *Hierarchy) Children(value string) []string {
	return append([]string(nil), h.children[value]...)
}

// RollUp implements the lookup of Algorithm 8 for one value of an attribute:
// it climbs the type hierarchy one level, returning the coarser value.
// The boolean is false when the value has no parent (top of the hierarchy or
// unknown value).
func (h *Hierarchy) RollUp(attr, value string) (string, bool) {
	parent, ok := h.parentOf[value]
	if !ok {
		return "", false
	}
	// When full typing is available, verify the climb is consistent with
	// the declared type lattice, as Algorithm 8 does: TypeOf(A,X),
	// SubTypeOf(X,Y), IsA(v,Z), InstOf(Z,Y).
	vt, hasVT := h.instOf[value]
	if hasVT {
		super, hasSuper := h.superOf[vt]
		if hasSuper {
			if pt, ok := h.instOf[parent]; ok && pt != super {
				return "", false
			}
		}
	}
	return parent, true
}

// Depth returns how many roll-ups are possible from a value.
func (h *Hierarchy) Depth(value string) int {
	d := 0
	seen := map[string]bool{}
	for {
		if seen[value] {
			return d
		}
		seen[value] = true
		p, ok := h.parentOf[value]
		if !ok {
			return d
		}
		d++
		value = p
	}
}

// Facts exports the knowledge base in the paper's TypeOf/SubTypeOf/InstOf/IsA
// predicates for use as an extensional component of reasoning programs.
func (h *Hierarchy) Facts() []mdb.Fact {
	var fs []mdb.Fact
	add := func(pred string, m map[string]string) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fs = append(fs, mdb.Fact{Pred: pred, Args: []string{k, m[k]}})
		}
	}
	add("typeof", h.attrType)
	add("subtypeof", h.superOf)
	add("instof", h.instOf)
	add("isa", h.parentOf)
	return fs
}

// ItalianGeography builds the geography fixture used throughout the paper:
// cities roll up to macro-regions (North/Center/South), which roll up to the
// country.
func ItalianGeography() *Hierarchy {
	h := New()
	h.SetAttributeType("Area", "City")
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(h.AddSubType("City", "Region"))
	must(h.AddSubType("Region", "Country"))
	regions := map[string][]string{
		"North":  {"Milano", "Torino", "Venezia", "Genova", "Bologna"},
		"Center": {"Roma", "Firenze", "Perugia", "Ancona"},
		"South":  {"Napoli", "Bari", "Palermo", "Catanzaro"},
	}
	for region, cities := range regions {
		h.AddInstance(region, "Region")
		must(h.AddIsA(region, "Italia"))
		for _, city := range cities {
			h.AddInstance(city, "City")
			must(h.AddIsA(city, region))
		}
	}
	h.AddInstance("Italia", "Country")
	return h
}
