package hierarchy

import (
	"strings"
	"testing"
)

func TestItalianGeographyRollUp(t *testing.T) {
	h := ItalianGeography()
	cases := [][2]string{
		{"Milano", "North"},
		{"Torino", "North"},
		{"Roma", "Center"},
		{"Napoli", "South"},
		{"North", "Italia"},
	}
	for _, c := range cases {
		got, ok := h.RollUp("Area", c[0])
		if !ok || got != c[1] {
			t.Errorf("RollUp(%s) = %q, %v; want %q", c[0], got, ok, c[1])
		}
	}
	if _, ok := h.RollUp("Area", "Italia"); ok {
		t.Error("top of hierarchy rolled up")
	}
	if _, ok := h.RollUp("Area", "Atlantis"); ok {
		t.Error("unknown value rolled up")
	}
}

func TestDepth(t *testing.T) {
	h := ItalianGeography()
	if d := h.Depth("Milano"); d != 2 {
		t.Errorf("Depth(Milano) = %d, want 2", d)
	}
	if d := h.Depth("Italia"); d != 0 {
		t.Errorf("Depth(Italia) = %d, want 0", d)
	}
	if d := h.Depth("Atlantis"); d != 0 {
		t.Errorf("Depth(Atlantis) = %d, want 0", d)
	}
}

func TestChildren(t *testing.T) {
	h := ItalianGeography()
	kids := h.Children("North")
	if len(kids) != 5 || kids[0] != "Bologna" {
		t.Errorf("Children(North) = %v", kids)
	}
	// Returned slice must be a copy.
	kids[0] = "mutated"
	if h.Children("North")[0] != "Bologna" {
		t.Error("Children returned shared storage")
	}
}

func TestAttributeType(t *testing.T) {
	h := ItalianGeography()
	typ, ok := h.AttributeType("Area")
	if !ok || typ != "City" {
		t.Errorf("AttributeType(Area) = %q, %v", typ, ok)
	}
	if super, ok := h.SuperType("City"); !ok || super != "Region" {
		t.Errorf("SuperType(City) = %q, %v", super, ok)
	}
	if vt, ok := h.TypeOfValue("Milano"); !ok || vt != "City" {
		t.Errorf("TypeOfValue(Milano) = %q, %v", vt, ok)
	}
}

func TestSubTypeCycleRejected(t *testing.T) {
	h := New()
	if err := h.AddSubType("A", "A"); err == nil {
		t.Error("self-loop accepted")
	}
	if err := h.AddSubType("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddSubType("B", "C"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddSubType("C", "A"); err == nil {
		t.Error("cycle accepted")
	}
	// The failed edge must not have been recorded.
	if _, ok := h.SuperType("C"); ok {
		t.Error("cycle edge partially recorded")
	}
}

func TestIsACycleRejected(t *testing.T) {
	h := New()
	if err := h.AddIsA("x", "x"); err == nil {
		t.Error("isA self-loop accepted")
	}
	if err := h.AddIsA("x", "y"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddIsA("y", "x"); err == nil {
		t.Error("isA cycle accepted")
	}
}

func TestIsATypeConsistency(t *testing.T) {
	h := New()
	if err := h.AddSubType("City", "Region"); err != nil {
		t.Fatal(err)
	}
	h.AddInstance("Milano", "City")
	h.AddInstance("Banana", "Fruit")
	if err := h.AddIsA("Milano", "Banana"); err == nil ||
		!strings.Contains(err.Error(), "type") {
		t.Errorf("inconsistent isA accepted: %v", err)
	}
	if err := h.AddIsA("Milano", "North"); err != nil {
		t.Errorf("isA with undeclared parent type rejected: %v", err)
	}
}

func TestRollUpRejectsTypeInconsistency(t *testing.T) {
	h := New()
	// Declared typing contradicts the recorded parent: instOf(parent) is
	// not the super-type of instOf(value). AddIsA before the typing is
	// declared, then tighten types.
	if err := h.AddIsA("Milano", "Weird"); err != nil {
		t.Fatal(err)
	}
	h.AddInstance("Milano", "City")
	h.AddInstance("Weird", "Shape")
	if err := h.AddSubType("City", "Region"); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.RollUp("Area", "Milano"); ok {
		t.Error("type-inconsistent roll-up allowed")
	}
}

func TestFacts(t *testing.T) {
	h := ItalianGeography()
	fs := h.Facts()
	want := map[string]bool{
		"typeof(Area,City)":      false,
		"subtypeof(City,Region)": false,
		"instof(Milano,City)":    false,
		"isa(Milano,North)":      false,
	}
	for _, f := range fs {
		key := f.Pred + "(" + strings.Join(f.Args, ",") + ")"
		if _, ok := want[key]; ok {
			want[key] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing fact %s", k)
		}
	}
}
