package hierarchy

import (
	"testing"
	"testing/quick"
)

func TestBuildIntervalLadder(t *testing.T) {
	h := New()
	cuts := []float64{0, 30, 60, 90}
	if err := h.BuildIntervalLadder("ResidentialRevenue", cuts); err != nil {
		t.Fatalf("BuildIntervalLadder: %v", err)
	}
	// Level 0 rolls into level 1.
	got, ok := h.RollUp("ResidentialRevenue", "[0..30)")
	if !ok || got != "[0..60)" {
		t.Fatalf("RollUp([0..30)) = %q, %v", got, ok)
	}
	got, ok = h.RollUp("ResidentialRevenue", "[0..60)")
	if !ok || got != "[0..90)" {
		t.Fatalf("RollUp([0..60)) = %q, %v", got, ok)
	}
	// Top does not roll.
	if _, ok := h.RollUp("ResidentialRevenue", "[0..90)"); ok {
		t.Fatal("top interval rolled up")
	}
	// Every level-0 interval reaches the top.
	for _, label := range []string{"[0..30)", "[30..60)", "[60..90)"} {
		v := label
		for i := 0; i < 10; i++ {
			p, ok := h.Parent(v)
			if !ok {
				break
			}
			v = p
		}
		if v != "[0..90)" {
			t.Errorf("%s climbs to %s, want [0..90)", label, v)
		}
	}
}

func TestBuildIntervalLadderOddCount(t *testing.T) {
	h := New()
	// Five intervals: 0-1,1-2,2-3,3-4,4-5.
	if err := h.BuildIntervalLadder("X", []float64{0, 1, 2, 3, 4, 5}); err != nil {
		t.Fatalf("BuildIntervalLadder: %v", err)
	}
	// The odd leftover [4..5) must still reach the top.
	v := "[4..5)"
	for i := 0; i < 10; i++ {
		p, ok := h.Parent(v)
		if !ok {
			break
		}
		v = p
	}
	if v != "[0..5)" {
		t.Fatalf("leftover climbs to %s, want [0..5)", v)
	}
}

func TestBuildIntervalLadderValidation(t *testing.T) {
	h := New()
	if err := h.BuildIntervalLadder("X", []float64{1}); err == nil {
		t.Error("single cut accepted")
	}
	if err := h.BuildIntervalLadder("X", []float64{0, 0}); err == nil {
		t.Error("non-ascending cuts accepted")
	}
	if err := h.BuildIntervalLadder("X", []float64{0, 2, 1}); err == nil {
		t.Error("descending cuts accepted")
	}
}

func TestMapToInterval(t *testing.T) {
	cuts := []float64{0, 30, 60, 90}
	cases := []struct {
		v    float64
		want string
		ok   bool
	}{
		{0, "[0..30)", true},
		{15, "[0..30)", true},
		{30, "[30..60)", true}, // boundary belongs to the upper interval
		{89.9, "[60..90)", true},
		{90, "[60..90)", true}, // top boundary is closed
		{-1, "", false},
		{91, "", false},
	}
	for _, c := range cases {
		got, ok := MapToInterval(c.v, cuts)
		if ok != c.ok || got != c.want {
			t.Errorf("MapToInterval(%g) = %q, %v; want %q, %v", c.v, got, ok, c.want, c.ok)
		}
	}
	if _, ok := MapToInterval(1, []float64{0}); ok {
		t.Error("degenerate cuts accepted")
	}
}

func TestIntervalLabelRoundTrip(t *testing.T) {
	cases := [][2]float64{{0, 30}, {-10, -5}, {-0.5, 0.5}, {1e6, 2e6}}
	for _, c := range cases {
		label := IntervalLabel(c[0], c[1])
		lo, hi, err := ParseIntervalLabel(label)
		if err != nil || lo != c[0] || hi != c[1] {
			t.Errorf("round trip of %v: %q -> %g, %g, %v", c, label, lo, hi, err)
		}
	}
	for _, bad := range []string{"", "[0..30", "0..30)", "[0-30)", "[a..b)"} {
		if _, _, err := ParseIntervalLabel(bad); err == nil {
			t.Errorf("ParseIntervalLabel(%q) succeeded", bad)
		}
	}
}

// Property: for in-range values, the mapped interval always contains the
// value (with the closed top boundary).
func TestMapToIntervalContainsValue(t *testing.T) {
	cuts := []float64{0, 10, 25, 50, 100}
	f := func(raw uint16) bool {
		v := float64(raw) / 655.35 // [0, 100]
		label, ok := MapToInterval(v, cuts)
		if !ok {
			return false
		}
		lo, hi, err := ParseIntervalLabel(label)
		if err != nil {
			return false
		}
		return v >= lo && (v < hi || (v == hi && hi == cuts[len(cuts)-1]))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Rolling up any level-0 interval preserves containment: the parent interval
// contains the child.
func TestLadderRollUpWidens(t *testing.T) {
	h := New()
	cuts := []float64{0, 5, 10, 20, 40, 80}
	if err := h.BuildIntervalLadder("X", cuts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(cuts); i++ {
		child := IntervalLabel(cuts[i], cuts[i+1])
		for {
			parent, ok := h.Parent(child)
			if !ok {
				break
			}
			clo, chi, err := ParseIntervalLabel(child)
			if err != nil {
				t.Fatal(err)
			}
			plo, phi, err := ParseIntervalLabel(parent)
			if err != nil {
				t.Fatal(err)
			}
			if plo > clo || phi < chi {
				t.Fatalf("parent %s does not contain child %s", parent, child)
			}
			child = parent
		}
	}
}
