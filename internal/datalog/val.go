// Package datalog implements a warded-Datalog±-style reasoning engine: the
// substrate that replaces the Vadalog system in this reproduction. It
// supports recursive rules with stratified negation, existential
// quantification in rule heads (implemented with labelled nulls and a
// Skolem-keyed restricted chase), monotonic aggregations with contributor
// semantics (msum, mcount, mprod, munion), equality-generating dependencies,
// comparison and arithmetic built-ins, and fact-level provenance for full
// explainability.
package datalog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates runtime values.
type Kind uint8

// Value kinds.
const (
	KStr Kind = iota
	KNum
	KNull
	KList
)

// Val is a runtime value: a string constant, a number, a labelled null, or a
// canonical (sorted, deduplicated) list representing a set built by munion.
type Val struct {
	k  Kind
	s  string
	n  float64
	id uint64
	l  []Val
}

// Str returns a string value.
func Str(s string) Val { return Val{k: KStr, s: s} }

// Num returns a numeric value.
func Num(n float64) Val { return Val{k: KNum, n: n} }

// NullVal returns the labelled null with the given id.
func NullVal(id uint64) Val { return Val{k: KNull, id: id} }

// List returns a set value: the elements are sorted and deduplicated so that
// equal sets have equal representations.
func List(elems ...Val) Val {
	l := append([]Val(nil), elems...)
	sort.Slice(l, func(i, j int) bool { return Compare(l[i], l[j]) < 0 })
	out := l[:0]
	for i, v := range l {
		if i == 0 || Compare(v, l[i-1]) != 0 {
			out = append(out, v)
		}
	}
	return Val{k: KList, l: out}
}

// Kind returns the value's kind.
func (v Val) Kind() Kind { return v.k }

// StrVal returns the string content of a KStr value.
func (v Val) StrVal() string {
	if v.k != KStr {
		panic(fmt.Sprintf("datalog: StrVal on %v", v))
	}
	return v.s
}

// NumVal returns the numeric content of a KNum value.
func (v Val) NumVal() float64 {
	if v.k != KNum {
		panic(fmt.Sprintf("datalog: NumVal on %v", v))
	}
	return v.n
}

// NullID returns the labelled-null id of a KNull value.
func (v Val) NullID() uint64 {
	if v.k != KNull {
		panic(fmt.Sprintf("datalog: NullID on %v", v))
	}
	return v.id
}

// Elems returns the elements of a KList value.
func (v Val) Elems() []Val {
	if v.k != KList {
		panic(fmt.Sprintf("datalog: Elems on %v", v))
	}
	return v.l
}

// String renders the value in source-compatible syntax where possible.
func (v Val) String() string {
	switch v.k {
	case KStr:
		return strconv.Quote(v.s)
	case KNum:
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	case KNull:
		return "⊥" + strconv.FormatUint(v.id, 10)
	case KList:
		parts := make([]string, len(v.l))
		for i, e := range v.l {
			parts[i] = e.String()
		}
		return "{" + strings.Join(parts, ",") + "}"
	default:
		panic("datalog: bad kind")
	}
}

// Key returns a canonical encoding usable as a map key; distinct values have
// distinct keys.
func (v Val) Key() string {
	var b strings.Builder
	v.appendKey(&b)
	return b.String()
}

func (v Val) appendKey(b *strings.Builder) {
	switch v.k {
	case KStr:
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(len(v.s)))
		b.WriteByte(':')
		b.WriteString(v.s)
	case KNum:
		b.WriteByte('n')
		b.WriteString(strconv.FormatFloat(v.n, 'g', -1, 64))
		b.WriteByte(';')
	case KNull:
		b.WriteByte('N')
		b.WriteString(strconv.FormatUint(v.id, 10))
		b.WriteByte(';')
	case KList:
		b.WriteByte('[')
		for _, e := range v.l {
			e.appendKey(b)
		}
		b.WriteByte(']')
	}
}

// Compare imposes a total order on values: numbers < strings < nulls <
// lists; within a kind the natural order applies (lexicographic for lists).
func Compare(a, b Val) int {
	if a.k != b.k {
		order := map[Kind]int{KNum: 0, KStr: 1, KNull: 2, KList: 3}
		return order[a.k] - order[b.k]
	}
	switch a.k {
	case KNum:
		switch {
		case a.n < b.n:
			return -1
		case a.n > b.n:
			return 1
		}
		return 0
	case KStr:
		return strings.Compare(a.s, b.s)
	case KNull:
		switch {
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		}
		return 0
	case KList:
		for i := 0; i < len(a.l) && i < len(b.l); i++ {
			if c := Compare(a.l[i], b.l[i]); c != 0 {
				return c
			}
		}
		return len(a.l) - len(b.l)
	default:
		panic("datalog: bad kind")
	}
}

// Equal reports value equality.
func Equal(a, b Val) bool { return Compare(a, b) == 0 }

// Contains reports whether list l contains x. It returns false for non-list
// values so that "X in L" is simply false when L is not a set.
func Contains(l, x Val) bool {
	if l.k != KList {
		return false
	}
	i := sort.Search(len(l.l), func(i int) bool { return Compare(l.l[i], x) >= 0 })
	return i < len(l.l) && Compare(l.l[i], x) == 0
}

// Tuple is a sequence of values: the arguments of a fact.
type Tuple []Val

// Key returns a canonical encoding of the tuple.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		v.appendKey(&b)
	}
	return b.String()
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}
