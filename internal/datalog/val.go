// Package datalog implements a warded-Datalog±-style reasoning engine: the
// substrate that replaces the Vadalog system in this reproduction. It
// supports recursive rules with stratified negation, existential
// quantification in rule heads (implemented with labelled nulls and a
// Skolem-keyed restricted chase), monotonic aggregations with contributor
// semantics (msum, mcount, mprod, munion), equality-generating dependencies,
// comparison and arithmetic built-ins, and fact-level provenance for full
// explainability.
package datalog

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates runtime values.
type Kind uint8

// Value kinds.
const (
	KStr Kind = iota
	KNum
	KNull
	KList
)

// Val is a runtime value: a string constant, a number, a labelled null, or a
// canonical (sorted, deduplicated) list representing a set built by munion.
type Val struct {
	k  Kind
	s  string
	n  float64
	id uint64
	l  []Val
}

// Str returns a string value.
func Str(s string) Val { return Val{k: KStr, s: s} }

// Num returns a numeric value.
func Num(n float64) Val { return Val{k: KNum, n: n} }

// NullVal returns the labelled null with the given id.
func NullVal(id uint64) Val { return Val{k: KNull, id: id} }

// List returns a set value: the elements are sorted and deduplicated so that
// equal sets have equal representations.
func List(elems ...Val) Val {
	l := append([]Val(nil), elems...)
	sort.Slice(l, func(i, j int) bool { return Compare(l[i], l[j]) < 0 })
	out := l[:0]
	for i, v := range l {
		if i == 0 || Compare(v, l[i-1]) != 0 {
			out = append(out, v)
		}
	}
	return Val{k: KList, l: out}
}

// Kind returns the value's kind.
func (v Val) Kind() Kind { return v.k }

// StrVal returns the string content of a KStr value.
func (v Val) StrVal() string {
	if v.k != KStr {
		panic(fmt.Sprintf("datalog: StrVal on %v", v))
	}
	return v.s
}

// NumVal returns the numeric content of a KNum value.
func (v Val) NumVal() float64 {
	if v.k != KNum {
		panic(fmt.Sprintf("datalog: NumVal on %v", v))
	}
	return v.n
}

// NullID returns the labelled-null id of a KNull value.
func (v Val) NullID() uint64 {
	if v.k != KNull {
		panic(fmt.Sprintf("datalog: NullID on %v", v))
	}
	return v.id
}

// Elems returns the elements of a KList value.
func (v Val) Elems() []Val {
	if v.k != KList {
		panic(fmt.Sprintf("datalog: Elems on %v", v))
	}
	return v.l
}

// String renders the value in source-compatible syntax where possible.
func (v Val) String() string {
	switch v.k {
	case KStr:
		return strconv.Quote(v.s)
	case KNum:
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	case KNull:
		return "⊥" + strconv.FormatUint(v.id, 10)
	case KList:
		parts := make([]string, len(v.l))
		for i, e := range v.l {
			parts[i] = e.String()
		}
		return "{" + strings.Join(parts, ",") + "}"
	default:
		panic("datalog: bad kind")
	}
}

// Key returns a canonical encoding usable as a map key; distinct values have
// distinct keys.
func (v Val) Key() string {
	var b strings.Builder
	v.appendKey(&b)
	return b.String()
}

func (v Val) appendKey(b *strings.Builder) {
	switch v.k {
	case KStr:
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(len(v.s)))
		b.WriteByte(':')
		b.WriteString(v.s)
	case KNum:
		b.WriteByte('n')
		b.WriteString(strconv.FormatFloat(v.n, 'g', -1, 64))
		b.WriteByte(';')
	case KNull:
		b.WriteByte('N')
		b.WriteString(strconv.FormatUint(v.id, 10))
		b.WriteByte(';')
	case KList:
		b.WriteByte('[')
		for _, e := range v.l {
			e.appendKey(b)
		}
		b.WriteByte(']')
	}
}

// Compare imposes a total order on values: numbers < strings < nulls <
// lists; within a kind the natural order applies (lexicographic for lists).
func Compare(a, b Val) int {
	if a.k != b.k {
		order := map[Kind]int{KNum: 0, KStr: 1, KNull: 2, KList: 3}
		return order[a.k] - order[b.k]
	}
	switch a.k {
	case KNum:
		switch {
		case a.n < b.n:
			return -1
		case a.n > b.n:
			return 1
		}
		return 0
	case KStr:
		return strings.Compare(a.s, b.s)
	case KNull:
		switch {
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		}
		return 0
	case KList:
		for i := 0; i < len(a.l) && i < len(b.l); i++ {
			if c := Compare(a.l[i], b.l[i]); c != 0 {
				return c
			}
		}
		return len(a.l) - len(b.l)
	default:
		panic("datalog: bad kind")
	}
}

// Equal reports value equality.
func Equal(a, b Val) bool { return Compare(a, b) == 0 }

// Contains reports whether list l contains x. It returns false for non-list
// values so that "X in L" is simply false when L is not a set.
func Contains(l, x Val) bool {
	if l.k != KList {
		return false
	}
	i := sort.Search(len(l.l), func(i int) bool { return Compare(l.l[i], x) >= 0 })
	return i < len(l.l) && Compare(l.l[i], x) == 0
}

// Tuple is a sequence of values: the arguments of a fact.
type Tuple []Val

// Key returns a canonical encoding of the tuple.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		v.appendKey(&b)
	}
	return b.String()
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// ---------------------------------------------------------------------------
// Value interning
//
// The columnar fact store (eval.go) does not hold Val structs: every constant
// is interned once into a dense uint32 id (vid), and facts become flat rows
// of vids. Interning gives the join layer O(1) equality (vid comparison),
// hash keys without string building, and a single place where the canonical
// Key() encoding — still needed for the seed-compatible orderings of
// aggregation folds and Skolem keys — is computed exactly once per distinct
// value instead of once per match attempt.
//
// Identity follows Compare/Equal: +0 and -0 intern to one vid, every NaN
// payload interns to one vid, labelled nulls intern by id, and lists intern
// by their element vids (List() already canonicalizes order and duplicates).
// Two values are Equal iff they intern to the same vid.
//
// The interner is shared by a database and all its clones: evaluation runs
// against a cloned EDB reuse the interned constants instead of re-encoding
// them, and concurrent runs over clones of one EDB are safe — all mutation
// happens under mu. Readers use an iview snapshot for lock-free access on
// the hot match path; a snapshot is refreshed (under mu) only when it sees a
// vid newer than itself, which can only happen after a happens-before edge
// through the same mutex.

// unboundVid marks an empty slot in a compiled-rule environment.
const unboundVid = ^uint32(0)

// canonNaN is the single bit pattern all NaN payloads intern to.
const canonNaN = 0x7ff8000000000001

func numBits(n float64) uint64 {
	if n == 0 {
		return 0 // collapse -0 into +0: Compare treats them as equal
	}
	if n != n {
		return canonNaN // collapse NaN payloads: Compare treats NaNs as equal
	}
	return math.Float64bits(n)
}

type interner struct {
	mu    sync.Mutex
	vals  []Val
	keys  []string // seed-format Key() per vid, computed at intern time
	strs  map[string]uint32
	nums  map[uint64]uint32
	nulls map[uint64]uint32
	lists map[string]uint32
	bytes atomic.Int64 // estimated heap footprint of the interned values
}

func newInterner() *interner {
	return &interner{
		strs:  make(map[string]uint32),
		nums:  make(map[uint64]uint32),
		nulls: make(map[uint64]uint32),
		lists: make(map[string]uint32),
	}
}

// valBytes estimates the heap footprint of one value: the Val struct and any
// string or nested list payload. Deliberately an estimate — the point is to
// bound runaway chases in bytes, not to mirror the allocator.
func valBytes(v Val) int64 {
	n := int64(48) // Val struct: kind, float, id, string header, slice header
	n += int64(len(v.s))
	for _, e := range v.l {
		n += valBytes(e)
	}
	return n
}

// internEntryOverhead is the rough per-vid cost beyond the value payload:
// the vals/keys slice entries, the kind map entry, and the cached key string
// header.
const internEntryOverhead = 96

// intern returns the dense id of v, inserting it if new.
func (in *interner) intern(v Val) uint32 {
	in.mu.Lock()
	id := in.internLocked(v)
	in.mu.Unlock()
	return id
}

func (in *interner) internLocked(v Val) uint32 {
	switch v.k {
	case KStr:
		if id, ok := in.strs[v.s]; ok {
			return id
		}
		id := in.appendLocked(v)
		in.strs[v.s] = id
		return id
	case KNum:
		b := numBits(v.n)
		if id, ok := in.nums[b]; ok {
			return id
		}
		id := in.appendLocked(Num(math.Float64frombits(b)))
		in.nums[b] = id
		return id
	case KNull:
		if id, ok := in.nulls[v.id]; ok {
			return id
		}
		id := in.appendLocked(v)
		in.nulls[v.id] = id
		return id
	case KList:
		k := in.listKeyLocked(v)
		if id, ok := in.lists[k]; ok {
			return id
		}
		id := in.appendLocked(v)
		in.lists[k] = id
		return id
	default:
		panic("datalog: bad kind")
	}
}

// listKeyLocked interns the elements of a list and returns the byte string
// of their vids — the list's identity under Compare, since List() already
// sorted and deduplicated the elements.
func (in *interner) listKeyLocked(v Val) string {
	b := make([]byte, 0, 4*len(v.l))
	for _, e := range v.l {
		ev := in.internLocked(e)
		b = append(b, byte(ev), byte(ev>>8), byte(ev>>16), byte(ev>>24))
	}
	return string(b)
}

func (in *interner) appendLocked(v Val) uint32 {
	id := uint32(len(in.vals))
	key := v.Key()
	in.vals = append(in.vals, v)
	in.keys = append(in.keys, key)
	in.bytes.Add(valBytes(v) + int64(len(key)) + internEntryOverhead)
	return id
}

// lookup returns the vid of v without inserting. The second result is false
// when v was never interned — in which case no stored fact can contain it.
func (in *interner) lookup(v Val) (uint32, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	switch v.k {
	case KStr:
		id, ok := in.strs[v.s]
		return id, ok
	case KNum:
		id, ok := in.nums[numBits(v.n)]
		return id, ok
	case KNull:
		id, ok := in.nulls[v.id]
		return id, ok
	case KList:
		for _, e := range v.l {
			if _, ok := in.lookupElemLocked(e); !ok {
				return 0, false
			}
		}
		id, ok := in.lists[in.peekListKeyLocked(v)]
		return id, ok
	default:
		panic("datalog: bad kind")
	}
}

func (in *interner) lookupElemLocked(v Val) (uint32, bool) {
	switch v.k {
	case KStr:
		id, ok := in.strs[v.s]
		return id, ok
	case KNum:
		id, ok := in.nums[numBits(v.n)]
		return id, ok
	case KNull:
		id, ok := in.nulls[v.id]
		return id, ok
	case KList:
		id, ok := in.lists[in.peekListKeyLocked(v)]
		return id, ok
	default:
		panic("datalog: bad kind")
	}
}

// peekListKeyLocked is listKeyLocked without inserting missing elements; a
// missing element yields a key that cannot be present in lists.
func (in *interner) peekListKeyLocked(v Val) string {
	b := make([]byte, 0, 4*len(v.l))
	for _, e := range v.l {
		ev, ok := in.lookupElemLocked(e)
		if !ok {
			return "\x00missing"
		}
		b = append(b, byte(ev), byte(ev>>8), byte(ev>>16), byte(ev>>24))
	}
	return string(b)
}

// iview is a goroutine-local read snapshot of an interner. val and key are
// lock-free for any vid the goroutine legitimately holds; the snapshot is
// refreshed under the interner lock when it is too short.
type iview struct {
	in   *interner
	vals []Val
	keys []string
}

func (v *iview) refresh() {
	v.in.mu.Lock()
	v.vals = v.in.vals
	v.keys = v.in.keys
	v.in.mu.Unlock()
}

func (v *iview) val(id uint32) Val {
	if int(id) >= len(v.vals) {
		v.refresh()
	}
	return v.vals[id]
}

func (v *iview) key(id uint32) string {
	if int(id) >= len(v.keys) {
		v.refresh()
	}
	return v.keys[id]
}
