// Package lint is a diagnostics-grade static analyzer for Vadalog programs.
//
// Where the engine reports the first fatal problem it trips over at
// evaluation time (a stratification error, an unwarded rule), lint runs a
// registry of independent passes over a parsed *datalog.Program and returns
// every finding as a structured, position-tagged Diagnostic with a stable
// code (VL001, VL002, …), a severity, and optional related positions. That
// is what lets the SDC program library be audited ahead of execution: a
// broken risk or anonymization program is caught before it burns a
// multi-hour job, and an uploaded program can be rejected with an exact,
// machine-readable explanation.
//
// Three source-level directives tune the analysis (written as `%` comments,
// so they are invisible to the parser):
//
//	% vadalint:input tuple qiord        extensional predicates (silences VL005)
//	% vadalint:output riskout           result predicates (silences VL004)
//	% vadalint:allow VL003 reason...    suppress codes on the next line
//	p(X) :- q(X). % vadalint:allow VL004   …or on the same line
//	% vadalint:allow-file VL008         suppress codes for the whole file
package lint

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"vadasa/internal/datalog"
)

// Severity ranks a diagnostic. Only SeverityError makes a program invalid;
// warnings flag likely bugs, infos flag notable-but-intentional constructs
// (existential variables, for instance).
type Severity uint8

// Severities, ordered from least to most severe.
const (
	SeverityInfo Severity = iota
	SeverityWarn
	SeverityError
)

func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarn:
		return "warn"
	case SeverityError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// MarshalText renders the severity for JSON output.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the textual form, so API clients can round-trip
// diagnostics.
func (s *Severity) UnmarshalText(b []byte) error {
	switch string(b) {
	case "info":
		*s = SeverityInfo
	case "warn":
		*s = SeverityWarn
	case "error":
		*s = SeverityError
	default:
		return fmt.Errorf("lint: unknown severity %q", b)
	}
	return nil
}

// Pos locates a diagnostic in program source. Line and Col are 1-based; Col
// is zero when only the line is known (programs built programmatically).
type Pos struct {
	File string `json:"file,omitempty"`
	Line int    `json:"line"`
	Col  int    `json:"col,omitempty"`
}

func (p Pos) String() string {
	file := p.File
	if file == "" {
		file = "<program>"
	}
	if p.Col > 0 {
		return fmt.Sprintf("%s:%d:%d", file, p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}

// Related points at a secondary position that explains a diagnostic — the
// first use of a predicate an arity clash contradicts, for example.
type Related struct {
	Pos     Pos    `json:"pos"`
	Message string `json:"message"`
}

// Diagnostic is one finding: position, severity, stable code, message, and
// any related positions.
type Diagnostic struct {
	Pos      Pos       `json:"pos"`
	Severity Severity  `json:"severity"`
	Code     string    `json:"code"`
	Message  string    `json:"message"`
	Related  []Related `json:"related,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s %s: %s", d.Pos, d.Severity, d.Code, d.Message)
}

// FormatText renders a diagnostic for terminal output, related positions
// indented beneath it.
func FormatText(d Diagnostic) string {
	var b strings.Builder
	b.WriteString(d.String())
	for _, rel := range d.Related {
		fmt.Fprintf(&b, "\n\t%s: %s", rel.Pos, rel.Message)
	}
	return b.String()
}

// Options tune an analysis run. The zero value lints with no declared
// extensional or output predicates and no suppressed codes.
type Options struct {
	// File names the program in diagnostic positions.
	File string
	// Inputs lists extensional predicates: expected to have no deriving
	// rule (silences VL005 for them).
	Inputs []string
	// Outputs lists result predicates: expected to be derived but unused
	// (silences VL004 for them).
	Outputs []string
	// Allow suppresses the listed diagnostic codes everywhere.
	Allow []string
}

// Check lints a parsed program. Directive comments are not visible on a
// parsed program; callers holding source text should prefer Source, which
// honours them.
func Check(p *datalog.Program, opts *Options) []Diagnostic {
	var o Options
	if opts != nil {
		o = *opts
	}
	ctx := &pctx{
		prog:    p,
		file:    o.File,
		inputs:  toSet(o.Inputs),
		outputs: toSet(o.Outputs),
	}
	for _, pass := range passes {
		pass.run(ctx)
	}
	diags := filterAllowed(ctx.diags, toSet(o.Allow), nil)
	sortDiagnostics(diags)
	return diags
}

// Source lints program text: it applies the vadalint directive comments,
// parses, and runs every pass. A parse failure is returned as a single
// VL000 diagnostic rather than an error, so broken programs flow through
// the same reporting pipeline as lint findings.
func Source(file, src string, opts *Options) []Diagnostic {
	var o Options
	if opts != nil {
		o = *opts
	}
	o.File = file
	dir := scanDirectives(src)
	o.Inputs = append(o.Inputs, dir.inputs...)
	o.Outputs = append(o.Outputs, dir.outputs...)
	o.Allow = append(o.Allow, dir.allowFile...)

	prog, err := datalog.Parse(src)
	if err != nil {
		return []Diagnostic{parseDiagnostic(file, err)}
	}
	ctx := &pctx{
		prog:    prog,
		file:    o.File,
		inputs:  toSet(o.Inputs),
		outputs: toSet(o.Outputs),
	}
	for _, pass := range passes {
		pass.run(ctx)
	}
	diags := filterAllowed(ctx.diags, toSet(o.Allow), dir.allowLines)
	sortDiagnostics(diags)
	return diags
}

// CheckFile lints one .vada file on disk.
func CheckFile(path string, opts *Options) ([]Diagnostic, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Source(path, string(src), opts), nil
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// Error carries the full diagnostic list across an error return — the 422
// payload a server hands back for a rejected program upload.
type Error struct {
	Diagnostics []Diagnostic
}

func (e *Error) Error() string {
	n := 0
	var first *Diagnostic
	for i := range e.Diagnostics {
		if e.Diagnostics[i].Severity == SeverityError {
			if first == nil {
				first = &e.Diagnostics[i]
			}
			n++
		}
	}
	if first == nil {
		return "lint: no errors"
	}
	if n == 1 {
		return fmt.Sprintf("lint: %s", first)
	}
	return fmt.Sprintf("lint: %s (and %d more errors)", first, n-1)
}

// Preflight validates a parsed program the way an engine front door should:
// it returns nil when no error-severity diagnostics are found, and a *Error
// carrying every diagnostic (warnings and infos included, for context)
// otherwise.
func Preflight(p *datalog.Program) error {
	diags := Check(p, nil)
	if HasErrors(diags) {
		return &Error{Diagnostics: diags}
	}
	return nil
}

// PreflightSource is Preflight over program text, with directive support.
func PreflightSource(file, src string) error {
	diags := Source(file, src, nil)
	if HasErrors(diags) {
		return &Error{Diagnostics: diags}
	}
	return nil
}

// parseDiagnostic converts a parser error into the VL000 diagnostic. The
// parser prefixes errors with "datalog: line N:", which is recovered for
// the position.
func parseDiagnostic(file string, err error) Diagnostic {
	msg := err.Error()
	line := 1
	if rest, ok := strings.CutPrefix(msg, "datalog: "); ok {
		msg = rest
		if after, ok := strings.CutPrefix(msg, "line "); ok {
			if i := strings.Index(after, ":"); i > 0 {
				if _, serr := fmt.Sscanf(after[:i], "%d", &line); serr == nil {
					msg = strings.TrimSpace(after[i+1:])
				}
			}
		}
	}
	return Diagnostic{
		Pos:      Pos{File: file, Line: line},
		Severity: SeverityError,
		Code:     CodeSyntax,
		Message:  msg,
	}
}

type directives struct {
	inputs     []string
	outputs    []string
	allowFile  []string
	allowLines map[int]map[string]bool // line -> suppressed codes
}

// scanDirectives extracts vadalint directive comments. A `vadalint:allow`
// on a comment-only line suppresses the codes on the following line; when
// it trails code, it suppresses them on its own line.
func scanDirectives(src string) directives {
	d := directives{allowLines: make(map[int]map[string]bool)}
	for i, raw := range strings.Split(src, "\n") {
		lineNo := i + 1
		ci := strings.Index(raw, "%")
		if ci < 0 {
			continue
		}
		comment := strings.TrimSpace(raw[ci+1:])
		comment = strings.TrimLeft(comment, "% ") // tolerate %% and padding
		if !strings.HasPrefix(comment, "vadalint:") {
			continue
		}
		rest := strings.TrimPrefix(comment, "vadalint:")
		fields := strings.FieldsFunc(rest, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
		if len(fields) == 0 {
			continue
		}
		verb, args := fields[0], fields[1:]
		switch verb {
		case "input":
			d.inputs = append(d.inputs, args...)
		case "output":
			d.outputs = append(d.outputs, args...)
		case "allow-file":
			d.allowFile = append(d.allowFile, codesOf(args)...)
		case "allow":
			target := lineNo
			if strings.TrimSpace(raw[:ci]) == "" {
				target = lineNo + 1 // comment-only line guards the next one
			}
			set := d.allowLines[target]
			if set == nil {
				set = make(map[string]bool)
				d.allowLines[target] = set
			}
			for _, c := range codesOf(args) {
				set[c] = true
			}
		}
	}
	return d
}

// codesOf keeps the leading VLxxx-shaped arguments: everything after the
// first non-code word is free-text justification.
func codesOf(args []string) []string {
	var out []string
	for _, a := range args {
		if !strings.HasPrefix(a, "VL") {
			break
		}
		out = append(out, a)
	}
	return out
}

func filterAllowed(diags []Diagnostic, allow map[string]bool, byLine map[int]map[string]bool) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if allow[d.Code] {
			continue
		}
		if set, ok := byLine[d.Pos.Line]; ok && set[d.Code] {
			continue
		}
		out = append(out, d)
	}
	return out
}

func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

func toSet(ss []string) map[string]bool {
	if len(ss) == 0 {
		return nil
	}
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}
