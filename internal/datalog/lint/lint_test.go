package lint_test

import (
	"encoding/json"
	"strings"
	"testing"

	"vadasa/internal/datalog"
	"vadasa/internal/datalog/lint"
)

// TestArityClashDiagnostic is the regression test for the parser gap: the
// same predicate used with different arities in different rules parses
// without complaint and at runtime the mismatched atom silently never
// unifies. The lint arity pass must produce this exact diagnostic.
func TestArityClashDiagnostic(t *testing.T) {
	src := "own(\"a\",\"b\",0.6).\nrel(X,Y) :- own(X,Y).\n"
	if _, err := datalog.Parse(src); err != nil {
		t.Fatalf("parser must accept the arity clash (that is the bug being linted): %v", err)
	}
	diags := lint.Source("clash.vada", src, &lint.Options{Outputs: []string{"rel"}})
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Code != lint.CodeArity || d.Severity != lint.SeverityError {
		t.Errorf("want %s error, got %s %s", lint.CodeArity, d.Severity, d.Code)
	}
	if d.Pos.Line != 2 || d.Pos.Col != 13 {
		t.Errorf("want position 2:13 (the own atom), got %d:%d", d.Pos.Line, d.Pos.Col)
	}
	if want := "predicate own used with 2 arguments, but with 3 at line 1"; d.Message != want {
		t.Errorf("message mismatch:\n got: %s\nwant: %s", d.Message, want)
	}
	if len(d.Related) != 1 || d.Related[0].Pos.Line != 1 {
		t.Errorf("want one related position at line 1, got %+v", d.Related)
	}
}

func TestValidateCatchesArityClash(t *testing.T) {
	p, err := datalog.Parse("own(\"a\",\"b\",0.6).\nrel(X,Y) :- own(X,Y).\n")
	if err != nil {
		t.Fatal(err)
	}
	err = datalog.Validate(p)
	if err == nil || !strings.Contains(err.Error(), "predicate own used with 2 arguments") {
		t.Errorf("datalog.Validate must reject the arity clash, got: %v", err)
	}
}

func mustParse(t *testing.T, src string) *datalog.Program {
	t.Helper()
	p, err := datalog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPreflight(t *testing.T) {
	good := mustParse(t, "p(X) :- q(X).\nq(\"a\").\n")
	if err := lint.Preflight(good); err != nil {
		t.Errorf("clean program must pass preflight, got %v", err)
	}
	bad := mustParse(t, "p(X) :- q(X), not p(X).\nq(\"a\").\n")
	err := lint.Preflight(bad)
	lerr, ok := err.(*lint.Error)
	if !ok {
		t.Fatalf("want *lint.Error, got %T (%v)", err, err)
	}
	found := false
	for _, d := range lerr.Diagnostics {
		if d.Code == lint.CodeNotStratified {
			found = true
		}
	}
	if !found {
		t.Errorf("want a %s diagnostic, got %v", lint.CodeNotStratified, lerr.Diagnostics)
	}
}

func TestParseErrorBecomesVL000(t *testing.T) {
	diags := lint.Source("broken.vada", "p(X :- q(X).\n", nil)
	if len(diags) != 1 || diags[0].Code != lint.CodeSyntax || diags[0].Severity != lint.SeverityError {
		t.Fatalf("want a single VL000 error, got %v", diags)
	}
	if diags[0].Pos.Line != 1 {
		t.Errorf("want line 1, got %d", diags[0].Pos.Line)
	}
}

// TestWardViolationDetail pins the refactored wardedness analysis: the
// violation carries the dangerous variable and the affected positions a
// ward would have to cover.
func TestWardViolationDetail(t *testing.T) {
	p := mustParse(t, `
		p(X,Z) :- q(X).
		t(Y) :- p(A,Y), p(B,Y), s(A), s(B).
	`)
	vs := datalog.WardViolations(p)
	if len(vs) != 1 {
		t.Fatalf("want one violation, got %d: %+v", len(vs), vs)
	}
	v := vs[0]
	if v.RuleIndex != 1 {
		t.Errorf("want rule 1, got %d", v.RuleIndex)
	}
	if len(v.Dangerous) != 1 || v.Dangerous[0] != "Y" {
		t.Errorf("want dangerous [Y], got %v", v.Dangerous)
	}
	if got := v.Positions["Y"]; len(got) != 2 || got[0] != "p[2]" || got[1] != "p[2]" {
		t.Errorf("want Y at [p[2] p[2]], got %v", got)
	}
	if err := datalog.CheckWarded(p); err == nil ||
		!strings.Contains(err.Error(), "rule 1 (line 3) is not warded: dangerous variables [Y]") {
		t.Errorf("CheckWarded wrapper must keep its message shape, got: %v", err)
	}
}

// TestSuppressionDirectives exercises allow / allow-file / input / output.
func TestSuppressionDirectives(t *testing.T) {
	src := `% vadalint:allow-file VL003
% vadalint:input q
% vadalint:output p
p(X) :- q(X,Y).
`
	if diags := lint.Source("ann.vada", src, nil); len(diags) != 0 {
		t.Errorf("allow-file must suppress the singleton, got %v", diags)
	}
	// Without the directive the singleton fires.
	src2 := "% vadalint:input q\n% vadalint:output p\np(X) :- q(X,Y).\n"
	diags := lint.Source("ann.vada", src2, nil)
	if len(diags) != 1 || diags[0].Code != lint.CodeSingleton {
		t.Errorf("want one VL003, got %v", diags)
	}
}

func TestDiagnosticJSONShape(t *testing.T) {
	diags := lint.Source("clash.vada", "own(\"a\").\nrel(X) :- own(X,X).\n",
		&lint.Options{Outputs: []string{"rel"}})
	if len(diags) == 0 {
		t.Fatal("expected diagnostics")
	}
	raw, err := json.Marshal(diags[0])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["severity"] != "error" {
		t.Errorf("severity must marshal as a string, got %v", m["severity"])
	}
	if m["code"] != lint.CodeArity {
		t.Errorf("want code %s, got %v", lint.CodeArity, m["code"])
	}
}

// TestPassRegistryDocumented keeps the registry table honest: every pass
// has a unique VLxxx code, a name, and documentation.
func TestPassRegistryDocumented(t *testing.T) {
	seen := make(map[string]bool)
	for _, p := range lint.Passes() {
		if !strings.HasPrefix(p.Code, "VL") || len(p.Code) != 5 {
			t.Errorf("pass %q has malformed code %q", p.Name, p.Code)
		}
		if seen[p.Code] {
			t.Errorf("duplicate code %s", p.Code)
		}
		seen[p.Code] = true
		if p.Name == "" || p.Doc == "" {
			t.Errorf("pass %s lacks name or doc", p.Code)
		}
	}
}
