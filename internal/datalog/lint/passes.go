package lint

import (
	"fmt"
	"sort"
	"strings"

	"vadasa/internal/datalog"
)

// Stable diagnostic codes. VL000 is produced by the parser bridge in
// Source, not by a pass; everything else maps 1:1 to a registry entry.
const (
	CodeSyntax        = "VL000" // parse error
	CodeExistential   = "VL001" // head variable not bound by any positive body literal
	CodeArity         = "VL002" // predicate used with inconsistent arities
	CodeSingleton     = "VL003" // variable occurs only once in a rule
	CodeUnused        = "VL004" // derived predicate never used
	CodeUnderivable   = "VL005" // body predicate never derivable
	CodeDuplicate     = "VL006" // duplicate or subsumed rule
	CodeUnwarded      = "VL007" // rule violates wardedness
	CodeExistCycle    = "VL008" // existential invention inside recursion
	CodeNotStratified = "VL009" // negation/head-binding aggregation through recursion
	CodeAggGroupNull  = "VL010" // aggregation grouped by an existential variable
)

// Pass is one registered analysis: a stable code, a short name, the default
// severity of its findings, and documentation — the registry drives both
// the analyzer and the docs table.
type Pass struct {
	Code     string
	Name     string
	Severity Severity
	Doc      string
	run      func(*pctx)
}

// Passes returns the registry, in execution order.
func Passes() []Pass { return passes }

var passes = []Pass{
	{CodeExistential, "existential-head", SeverityInfo,
		"head variable bound by no positive body literal: it is existential and invented as a labelled null (flags silent typos that turn a join variable into null invention)",
		passExistential},
	{CodeArity, "arity", SeverityError,
		"predicate used with different arities in different rules or facts; the engine never reports this — mismatched atoms silently never unify",
		passArity},
	{CodeSingleton, "singleton-var", SeverityWarn,
		"variable occurring exactly once in a rule (and not _-prefixed): almost always a typo that silently widens a join",
		passSingleton},
	{CodeUnused, "unused-pred", SeverityWarn,
		"intensional predicate derived by rules but used by none; undeclared outputs are dead code",
		passUnused},
	{CodeUnderivable, "underivable-pred", SeverityWarn,
		"body predicate with no deriving rule, no facts, and no input declaration: positive uses can never fire, negated uses are always true",
		passUnderivable},
	{CodeDuplicate, "duplicate-rule", SeverityWarn,
		"rule duplicating, or subsumed by, an earlier rule after canonical variable renaming",
		passDuplicate},
	{CodeUnwarded, "warded", SeverityError,
		"wardedness violation: dangerous variables (bound only at affected positions, propagating to the head) have no single ward atom — the decidability guarantee of Warded Datalog± is lost",
		passWarded},
	{CodeExistCycle, "existential-cycle", SeverityWarn,
		"existential rule on a recursive predicate cycle: the chase may invent unboundedly many labelled nulls; termination rests on wardedness and evaluation budgets",
		passExistCycle},
	{CodeNotStratified, "stratification", SeverityError,
		"negation or head-binding aggregation through recursion: the program has no stratification and the engine will refuse to evaluate it",
		passStratified},
	{CodeAggGroupNull, "agg-group-null", SeverityWarn,
		"aggregation grouped by an existential variable: every derivation invents a fresh labelled null and becomes its own group",
		passAggGroup},
}

// pctx is the shared state of one analysis run.
type pctx struct {
	prog    *datalog.Program
	file    string
	inputs  map[string]bool
	outputs map[string]bool
	diags   []Diagnostic
}

func (c *pctx) rulePos(r *datalog.Rule) Pos {
	return Pos{File: c.file, Line: r.Line, Col: r.Col}
}

func (c *pctx) atomPos(a *datalog.Atom, r *datalog.Rule) Pos {
	if a != nil && a.Line > 0 {
		return Pos{File: c.file, Line: a.Line, Col: a.Col}
	}
	return c.rulePos(r)
}

func (c *pctx) report(pos Pos, sev Severity, code, format string, args ...any) *Diagnostic {
	c.diags = append(c.diags, Diagnostic{
		Pos:      pos,
		Severity: sev,
		Code:     code,
		Message:  fmt.Sprintf(format, args...),
	})
	return &c.diags[len(c.diags)-1]
}

// ---- VL001: existential head variables -------------------------------------

func passExistential(c *pctx) {
	for i := range c.prog.Rules {
		r := &c.prog.Rules[i]
		if r.IsEGD {
			continue
		}
		for _, v := range r.Existential {
			c.report(c.rulePos(r), SeverityInfo, CodeExistential,
				"head variable %s is not bound by any positive body literal: it is existential and will be invented as a labelled null", v)
		}
	}
}

// ---- VL002: arity consistency ----------------------------------------------

func passArity(c *pctx) {
	type use struct {
		arity int
		pos   Pos
	}
	first := make(map[string]use)
	check := func(a *datalog.Atom, r *datalog.Rule) {
		pos := c.atomPos(a, r)
		prev, ok := first[a.Pred]
		if !ok {
			first[a.Pred] = use{arity: len(a.Args), pos: pos}
			return
		}
		if prev.arity == len(a.Args) {
			return
		}
		d := c.report(pos, SeverityError, CodeArity,
			"predicate %s used with %d arguments, but with %d at line %d",
			a.Pred, len(a.Args), prev.arity, prev.pos.Line)
		d.Related = []Related{{
			Pos:     prev.pos,
			Message: fmt.Sprintf("first use of %s, with %d arguments", a.Pred, prev.arity),
		}}
	}
	for i := range c.prog.Rules {
		r := &c.prog.Rules[i]
		for j := range r.Heads {
			check(&r.Heads[j], r)
		}
		for j := range r.Body {
			if a := r.Body[j].Atom; a != nil {
				check(a, r)
			}
		}
	}
}

// ---- VL003: singleton variables --------------------------------------------

func passSingleton(c *pctx) {
	for i := range c.prog.Rules {
		r := &c.prog.Rules[i]
		counts := make(map[string]int)
		bump := func(name string) { counts[name]++ }
		countTerm := func(t datalog.Term) {
			if t.Kind == datalog.TVar {
				bump(t.Name)
			}
		}
		countExpr := func(e datalog.Expr) {
			for _, v := range exprVars(e) {
				bump(v)
			}
		}
		for _, h := range r.Heads {
			for _, t := range h.Args {
				countTerm(t)
			}
		}
		if r.IsEGD {
			countTerm(r.EGDL)
			countTerm(r.EGDR)
		}
		for _, l := range r.Body {
			switch l.Kind {
			case datalog.LAtom, datalog.LNegAtom:
				for _, t := range l.Atom.Args {
					countTerm(t)
				}
			case datalog.LCmp:
				countExpr(l.L)
				countExpr(l.R)
			case datalog.LAssign:
				bump(l.Var)
				countExpr(l.AssignE)
			case datalog.LAggAssign:
				bump(l.Var)
				countExpr(l.Agg.Arg)
				countExpr(l.Agg.Contrib)
			case datalog.LAggCond:
				countExpr(l.Agg.Arg)
				countExpr(l.Agg.Contrib)
				countExpr(l.R)
			}
		}
		exist := toSet(r.Existential)
		var singles []string
		for v, n := range counts {
			if n == 1 && !strings.HasPrefix(v, "_") && !exist[v] {
				singles = append(singles, v)
			}
		}
		sort.Strings(singles)
		for _, v := range singles {
			c.report(c.rulePos(r), SeverityWarn, CodeSingleton,
				"variable %s occurs only once in this rule: likely a typo; prefix it with _ if intentional", v)
		}
	}
}

func exprVars(e datalog.Expr) []string {
	if e == nil {
		return nil
	}
	// Expr.vars is unexported; re-walk via the String round trip would be
	// lossy, so enumerate the concrete types instead.
	switch x := e.(type) {
	case datalog.ExprTerm:
		if x.T.Kind == datalog.TVar {
			return []string{x.T.Name}
		}
		return nil
	case datalog.ExprBin:
		return append(exprVars(x.L), exprVars(x.R)...)
	case datalog.ExprNeg:
		return exprVars(x.E)
	case datalog.ExprCall:
		var out []string
		for _, a := range x.Args {
			out = append(out, exprVars(a)...)
		}
		return out
	}
	return nil
}

// ---- VL004 / VL005: dead and underivable predicates ------------------------

func passUnused(c *pctx) {
	usedInBody := make(map[string]bool)
	for i := range c.prog.Rules {
		for _, l := range c.prog.Rules[i].Body {
			if l.Atom != nil {
				usedInBody[l.Atom.Pred] = true
			}
		}
	}
	reported := make(map[string]bool)
	for i := range c.prog.Rules {
		r := &c.prog.Rules[i]
		if len(r.Body) == 0 {
			continue // facts are data, not dead code
		}
		for j := range r.Heads {
			h := &r.Heads[j]
			if usedInBody[h.Pred] || c.outputs[h.Pred] || reported[h.Pred] {
				continue
			}
			reported[h.Pred] = true
			c.report(c.atomPos(h, r), SeverityWarn, CodeUnused,
				"predicate %s is derived but never used by any rule; if it is the program's output, declare it with '%% vadalint:output %s'",
				h.Pred, h.Pred)
		}
	}
}

func passUnderivable(c *pctx) {
	derivable := make(map[string]bool)
	for i := range c.prog.Rules {
		r := &c.prog.Rules[i]
		for _, h := range r.Heads {
			derivable[h.Pred] = true // rule heads and in-program facts alike
		}
	}
	for i := range c.prog.Rules {
		r := &c.prog.Rules[i]
		seen := make(map[string]bool) // one report per predicate per rule
		for _, l := range r.Body {
			if l.Atom == nil || derivable[l.Atom.Pred] || c.inputs[l.Atom.Pred] || seen[l.Atom.Pred] {
				continue
			}
			seen[l.Atom.Pred] = true
			if l.Kind == datalog.LNegAtom {
				c.report(c.atomPos(l.Atom, r), SeverityWarn, CodeUnderivable,
					"predicate %s is never derived and has no facts: this negation is always true (declare '%% vadalint:input %s' if it is extensional)",
					l.Atom.Pred, l.Atom.Pred)
			} else {
				c.report(c.atomPos(l.Atom, r), SeverityWarn, CodeUnderivable,
					"predicate %s is never derived and has no facts: this rule can never fire (declare '%% vadalint:input %s' if it is extensional)",
					l.Atom.Pred, l.Atom.Pred)
			}
		}
	}
}

// ---- VL006: duplicate and subsumed rules -----------------------------------

func passDuplicate(c *pctx) {
	type canon struct {
		head string
		body map[string]bool
		key  string
	}
	canons := make([]canon, len(c.prog.Rules))
	for i := range c.prog.Rules {
		canons[i] = canonicalize(&c.prog.Rules[i])
	}
	firstByKey := make(map[string]int)
	subsumable := func(i int) bool {
		r := &c.prog.Rules[i]
		return len(r.Existential) == 0 && !r.IsEGD && !hasAggregate(r) && len(r.Body) > 0
	}
	flagged := make(map[int]bool)
	for i := range canons {
		ci := canons[i]
		r := &c.prog.Rules[i]
		if prev, ok := firstByKey[ci.key]; ok {
			flagged[i] = true
			d := c.report(c.rulePos(r), SeverityWarn, CodeDuplicate,
				"rule duplicates the rule at line %d", c.prog.Rules[prev].Line)
			d.Related = []Related{{Pos: c.rulePos(&c.prog.Rules[prev]), Message: "first occurrence"}}
			continue
		}
		firstByKey[ci.key] = i

		// Subsumption (syntactic, conservative): of two rules with the
		// same canonical head, the one whose body literals are a strict
		// subset derives a superset of the other's conclusions, making
		// the more specific rule redundant. Existential heads and
		// aggregates change semantics, so they are skipped.
		if !subsumable(i) {
			continue
		}
		for j := 0; j < i; j++ {
			cj := canons[j]
			if cj.head != ci.head || !subsumable(j) || flagged[j] {
				continue
			}
			// The smaller body is the more general rule; the other one
			// is the redundant finding.
			gen, spec := j, i
			if len(canons[spec].body) <= len(canons[gen].body) {
				gen, spec = i, j
			}
			subset := true
			for lit := range canons[gen].body {
				if !canons[spec].body[lit] {
					subset = false
					break
				}
			}
			if subset && !flagged[spec] {
				flagged[spec] = true
				d := c.report(c.rulePos(&c.prog.Rules[spec]), SeverityWarn, CodeDuplicate,
					"rule is subsumed by the more general rule at line %d (its body literals are a subset of this rule's)",
					c.prog.Rules[gen].Line)
				d.Related = []Related{{Pos: c.rulePos(&c.prog.Rules[gen]), Message: "subsuming rule"}}
				if spec == i {
					break
				}
			}
		}
	}
}

func hasAggregate(r *datalog.Rule) bool {
	for _, l := range r.Body {
		if l.Kind == datalog.LAggAssign || l.Kind == datalog.LAggCond {
			return true
		}
	}
	return false
}

// canonicalize renders a rule with variables renamed in order of first
// appearance (head first, then body in literal order), and the body
// literals sorted — so duplicates survive both alpha-renaming and body
// reordering.
func canonicalize(r *datalog.Rule) struct {
	head string
	body map[string]bool
	key  string
} {
	rename := make(map[string]string)
	var head string
	if r.IsEGD {
		head = "EGD " + renameVars(r.EGDL.String()+"="+r.EGDR.String(), rename)
	} else {
		parts := make([]string, len(r.Heads))
		for i, h := range r.Heads {
			parts[i] = renameVars(h.String(), rename)
		}
		head = strings.Join(parts, ",")
	}
	body := make(map[string]bool, len(r.Body))
	lits := make([]string, len(r.Body))
	for i, l := range r.Body {
		lits[i] = renameVars(l.String(), rename)
		body[lits[i]] = true
	}
	sort.Strings(lits)
	return struct {
		head string
		body map[string]bool
		key  string
	}{head: head, body: body, key: head + " :- " + strings.Join(lits, ", ")}
}

// renameVars rewrites every variable token (uppercase- or _-initial
// identifier outside string literals) to a canonical name shared through
// rename, preserving everything else byte for byte.
func renameVars(s string, rename map[string]string) string {
	var b strings.Builder
	i := 0
	for i < len(s) {
		ch := s[i]
		switch {
		case ch == '"':
			j := i + 1
			for j < len(s) {
				if s[j] == '\\' {
					j += 2
					continue
				}
				if s[j] == '"' {
					j++
					break
				}
				j++
			}
			if j > len(s) {
				j = len(s)
			}
			b.WriteString(s[i:j])
			i = j
		case ch == '_' || (ch >= 'A' && ch <= 'Z'):
			j := i
			for j < len(s) && isIdentByte(s[j]) {
				j++
			}
			name := s[i:j]
			canon, ok := rename[name]
			if !ok {
				canon = fmt.Sprintf("V%d", len(rename))
				rename[name] = canon
			}
			b.WriteString(canon)
			i = j
		case isIdentByte(ch):
			j := i
			for j < len(s) && isIdentByte(s[j]) {
				j++
			}
			b.WriteString(s[i:j])
			i = j
		default:
			b.WriteByte(ch)
			i++
		}
	}
	return b.String()
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// ---- VL007: wardedness ------------------------------------------------------

func passWarded(c *pctx) {
	for _, v := range datalog.WardViolations(c.prog) {
		r := &c.prog.Rules[v.RuleIndex]
		parts := make([]string, len(v.Dangerous))
		for i, d := range v.Dangerous {
			if pos := v.Positions[d]; len(pos) > 0 {
				parts[i] = fmt.Sprintf("%s (at affected positions %s)", d, strings.Join(pos, ", "))
			} else {
				parts[i] = d
			}
		}
		c.report(c.rulePos(r), SeverityError, CodeUnwarded,
			"rule is not warded: dangerous variable(s) %s propagate to the head but no single body atom wards them",
			strings.Join(parts, "; "))
	}
}

// ---- VL008: existential invention inside recursion --------------------------

func passExistCycle(c *pctx) {
	scc := predSCCs(c.prog)
	unwarded := make(map[int]bool)
	for _, v := range datalog.WardViolations(c.prog) {
		unwarded[v.RuleIndex] = true
	}
	for i := range c.prog.Rules {
		r := &c.prog.Rules[i]
		if len(r.Existential) == 0 || unwarded[i] {
			continue // unwarded recursion is already the stronger VL007
		}
		cycle := ""
	scan:
		for _, h := range r.Heads {
			hc, ok := scc[h.Pred]
			if !ok {
				continue
			}
			for _, l := range r.Body {
				if l.Kind == datalog.LAtom {
					if bc, ok := scc[l.Atom.Pred]; ok && bc == hc {
						cycle = fmt.Sprintf("%s depends on %s", h.Pred, l.Atom.Pred)
						break scan
					}
				}
			}
		}
		if cycle != "" {
			c.report(c.rulePos(r), SeverityWarn, CodeExistCycle,
				"existential rule lies on a recursive cycle (%s): the chase may invent unboundedly many labelled nulls; termination rests on wardedness and evaluation budgets",
				cycle)
		}
	}
}

// ---- VL009: stratification ---------------------------------------------------

func passStratified(c *pctx) {
	scc := predSCCs(c.prog)
	seen := make(map[string]bool)
	for i := range c.prog.Rules {
		r := &c.prog.Rules[i]
		if r.IsEGD {
			continue
		}
		hasAggAssign := false
		for _, l := range r.Body {
			if l.Kind == datalog.LAggAssign {
				hasAggAssign = true
			}
		}
		for _, l := range r.Body {
			if l.Kind != datalog.LAtom && l.Kind != datalog.LNegAtom {
				continue
			}
			special := l.Kind == datalog.LNegAtom || hasAggAssign
			if !special {
				continue
			}
			bc, ok := scc[l.Atom.Pred]
			if !ok {
				continue
			}
			for _, h := range r.Heads {
				hc, ok := scc[h.Pred]
				if !ok || hc != bc {
					continue
				}
				key := fmt.Sprintf("%d/%s/%s", i, h.Pred, l.Atom.Pred)
				if seen[key] {
					continue
				}
				seen[key] = true
				cause := "stratified negation"
				if l.Kind != datalog.LNegAtom {
					cause = "head-binding aggregation"
				}
				c.report(c.atomPos(l.Atom, r), SeverityError, CodeNotStratified,
					"program is not stratifiable: %s depends on %s through %s inside a recursive cycle; the engine will refuse to evaluate it",
					h.Pred, l.Atom.Pred, cause)
			}
		}
	}
}

// ---- VL010: aggregation grouped by existentials ------------------------------

func passAggGroup(c *pctx) {
	for i := range c.prog.Rules {
		r := &c.prog.Rules[i]
		if len(r.Existential) == 0 {
			continue
		}
		var aggVar string
		hasAgg := false
		for _, l := range r.Body {
			switch l.Kind {
			case datalog.LAggAssign:
				hasAgg, aggVar = true, l.Var
			case datalog.LAggCond:
				hasAgg = true
			}
		}
		if !hasAgg {
			continue
		}
		exist := toSet(r.Existential)
		reported := make(map[string]bool)
		for _, h := range r.Heads {
			for _, t := range h.Args {
				if t.Kind == datalog.TVar && t.Name != aggVar && exist[t.Name] && !reported[t.Name] {
					reported[t.Name] = true
					c.report(c.rulePos(r), SeverityWarn, CodeAggGroupNull,
						"aggregation groups by existential variable %s: every derivation invents a fresh labelled null and forms its own single-member group", t.Name)
				}
			}
		}
	}
}

// predSCCs computes the strongly connected components of the predicate
// dependency graph (body atom → head, positive and negated alike) and
// returns, for each predicate on a genuine cycle, its component id.
// Predicates in singleton components without a self-loop are omitted, so a
// presence check doubles as an "is recursive" check.
func predSCCs(p *datalog.Program) map[string]int {
	adj := make(map[string]map[string]bool)
	node := func(s string) {
		if adj[s] == nil {
			adj[s] = make(map[string]bool)
		}
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.IsEGD {
			continue
		}
		for _, h := range r.Heads {
			node(h.Pred)
		}
		for _, l := range r.Body {
			if l.Atom == nil {
				continue
			}
			node(l.Atom.Pred)
			for _, h := range r.Heads {
				adj[l.Atom.Pred][h.Pred] = true
			}
		}
		// Multiple heads of one rule derive together; treat them as
		// mutually dependent, matching the evaluator's stratification.
		for a := 1; a < len(r.Heads); a++ {
			adj[r.Heads[0].Pred][r.Heads[a].Pred] = true
			adj[r.Heads[a].Pred][r.Heads[0].Pred] = true
		}
	}

	// Iterative Tarjan so fuzzed programs with long predicate chains
	// cannot overflow the goroutine stack.
	names := make([]string, 0, len(adj))
	for n := range adj {
		names = append(names, n)
	}
	sort.Strings(names)
	id := make(map[string]int, len(names))
	for i, n := range names {
		id[n] = i
	}
	succ := make([][]int, len(names))
	selfLoop := make([]bool, len(names))
	for from, tos := range adj {
		f := id[from]
		for to := range tos {
			t := id[to]
			if f == t {
				selfLoop[f] = true
			}
			succ[f] = append(succ[f], t)
		}
		sort.Ints(succ[f])
	}

	n := len(names)
	index := make([]int, n)
	low := make([]int, n)
	onstk := make([]bool, n)
	comp := make([]int, n)
	compSize := make(map[int]int)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	counter, ncomp := 0, 0

	type frame struct{ v, next int }
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		work := []frame{{v: start}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			v := fr.v
			if fr.next == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onstk[v] = true
			}
			advanced := false
			for fr.next < len(succ[v]) {
				w := succ[v][fr.next]
				fr.next++
				if index[w] == -1 {
					work = append(work, frame{v: w})
					advanced = true
					break
				} else if onstk[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onstk[w] = false
					comp[w] = ncomp
					compSize[ncomp]++
					if w == v {
						break
					}
				}
				ncomp++
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}

	out := make(map[string]int)
	for i, name := range names {
		if compSize[comp[i]] > 1 || selfLoop[i] {
			out[name] = comp[i]
		}
	}
	return out
}
