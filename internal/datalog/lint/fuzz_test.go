package lint_test

import (
	"testing"

	"vadasa/internal/datalog"
	"vadasa/internal/datalog/lint"
)

// FuzzLintNoPanic asserts the analyzer's core robustness contract: the
// linter never panics on any input — parser-accepted programs are analyzed,
// parser-rejected ones become a VL000 diagnostic, and neither path is
// allowed to crash.
func FuzzLintNoPanic(f *testing.F) {
	seeds := []string{
		"",
		"p(X) :- q(X).",
		"own(\"a\",\"b\",0.6).\nrel(X,Y) :- rel(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.",
		"p(X,Z) :- q(X).\nt(Y) :- p(A,Y), p(B,Y).",
		"win(X) :- move(X,Y), not win(Y).",
		"total(M,S) :- val(M,I,W), S = msum(W,[I]).",
		"C1 = C2 :- cat(M,A,C1), cat(M,A,C2).\ncat(\"db\",\"age\",\"qi\").",
		"comb(Z,I,N) :- comb(Z1,I,N1), qiord(A,N), N > N1.",
		"p(X) :- q(X), r(X).\np(A) :- r(A), q(A).\np(Y) :- q(Y).",
		"% vadalint:allow VL003 reason\np(X) :- q(X,Y).",
		"% vadalint:input q\n% vadalint:output p\np(X) :- q(X).",
		"a(1).\na(1,2).\na(1,2,3).",
		"p(X) :- X = 1 / 0, q(X).",
		"s(X) :- p(X), not q(X).\np(\"a\").\nq(\"a\").",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Source must absorb both parse errors and parser-accepted
		// programs without panicking.
		_ = lint.Source("fuzz.vada", src, nil)
		if p, err := datalog.Parse(src); err == nil {
			_ = lint.Check(p, &lint.Options{File: "fuzz.vada"})
			_ = lint.Preflight(p)
		}
	})
}
