package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vadasa/internal/datalog/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGolden pins every testdata program to its exact diagnostic output:
// codes, severities, line:col positions, messages, and related positions.
// Run with -update after a deliberate diagnostic change.
func TestGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.vada"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata/*.vada files")
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".vada")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			diags := lint.Source(filepath.Base(file), string(src), nil)
			var b strings.Builder
			for _, d := range diags {
				b.WriteString(lint.FormatText(d))
				b.WriteByte('\n')
			}
			got := b.String()
			golden := strings.TrimSuffix(file, ".vada") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			want := string(wantBytes)
			if got != want {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", file, got, want)
			}
		})
	}
}
