package datalog

// MustParse is a test-only convenience. The library deliberately does not
// export a panicking parse: production callers go through Parse, whose error
// return means malformed program text can never take a process down.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}
