package datalog

// Equivalence battery: the rebuilt engine (interned columnar store, join
// indexes, parallel strata) against the frozen seed engine, across the
// corpus programs, the fuzz seeds, and handwritten programs covering every
// literal kind, existential chase, EGDs and aggregation. EquivCheck runs
// each case sequentially and with 4 workers; `make race` runs this file
// under the race detector.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// fuzzEDB mirrors the FuzzRunSmall database.
func fuzzEDB() *Database {
	edb := NewDatabase()
	edb.Add("e", Str("a"))
	edb.Add("e", Str("b"))
	edb.Add("e2", Str("a"), Str("b"))
	edb.Add("e2", Str("b"), Str("a"))
	return edb
}

func graphEDB(seed int64, nodes, edges int) *Database {
	rng := rand.New(rand.NewSource(seed))
	edb := NewDatabase()
	for i := 0; i < nodes; i++ {
		edb.Add("node", Num(float64(i)))
	}
	for e := 0; e < edges; e++ {
		edb.Add("edge", Num(float64(rng.Intn(nodes))), Num(float64(rng.Intn(nodes))))
	}
	return edb
}

func TestEquivalenceCorpusPrograms(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "programs", "*.vada"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus glob: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		p := MustParse(string(src))
		edb := graphEDB(11, 12, 30)
		// The aggregation corpus program reads own(X,Y,W).
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 40; i++ {
			edb.Add("own",
				Str(fmt.Sprintf("p%d", rng.Intn(6))),
				Str(fmt.Sprintf("c%d", rng.Intn(6))),
				Num(float64(rng.Intn(10))/10))
		}
		EquivCheck(t, filepath.Base(f), p, edb, nil)
	}
}

func TestEquivalenceFuzzSeeds(t *testing.T) {
	seeds := []string{
		`p(X) :- e(X).`,
		`p(Y) :- p(X), e2(X,Y).`,
		`n(Y) :- n(X), succ(X,Y).` + ` succ(X,Y) :- n(X).` + ` n(zero).`,
		`q(X) :- e(X), not p(X). p(X) :- e(X).`,
		`t(G,S) :- e2(G,I), S = mcount([I]).`,
		`n(X),n(Y):-n(X).n(o),`, // regression corpus entry (parse may fail)
	}
	for i, src := range seeds {
		p, err := Parse(src)
		if err != nil {
			continue
		}
		EquivCheck(t, fmt.Sprintf("fuzz%d", i), p, fuzzEDB(),
			&Options{MaxFacts: 2000, MaxRounds: 200, MaxWork: 2_000_000})
	}
}

func TestEquivalenceHandwritten(t *testing.T) {
	cases := []struct {
		name string
		src  string
		edb  func() *Database
	}{
		{"closure", `
			path(X,Y) :- edge(X,Y).
			path(X,Z) :- path(X,Y), edge(Y,Z).`,
			func() *Database { return graphEDB(1, 10, 25) }},
		{"negation-strata", `
			linked(X) :- edge(X,_Y).
			linked(X) :- edge(_Y,X).
			isolated(X) :- node(X), not linked(X).
			pair(X,Y) :- isolated(X), isolated(Y), X < Y.`,
			func() *Database { return graphEDB(2, 14, 20) }},
		{"existential", `
			emp(X) :- works(X,_C).
			boss(X,Z) :- emp(X).
			sameboss(X,Y) :- boss(X,B), boss(Y,B).`,
			func() *Database {
				edb := NewDatabase()
				for i := 0; i < 5; i++ {
					edb.Add("works", Str(fmt.Sprintf("w%d", i)), Str("acme"))
				}
				return edb
			}},
		{"egd-unify", `
			d1(E,D) :- emp(E).
			d2(E,D) :- emp(E).
			dept(E,D) :- d1(E,D).
			dept(E,D) :- d2(E,D).
			D1 = D2 :- dept(E,D1), dept(E,D2).
			emp(ann). emp(bob).`,
			func() *Database { return NewDatabase() }},
		{"egd-violation", `
			cap(c1, 10). cap(c1, 20).
			A = B :- cap(X,A), cap(X,B).`,
			func() *Database { return NewDatabase() }},
		{"aggregation", `
			total(G,S) :- m(G,I,W), S = msum(W,[I]).
			big(G) :- m(G,I,_W), mcount([I]) >= 3.
			bag(G,L) :- m(G,I,W), L = munion(W,[I]).`,
			func() *Database {
				edb := NewDatabase()
				rng := rand.New(rand.NewSource(3))
				for i := 0; i < 30; i++ {
					edb.Add("m", Str(fmt.Sprintf("g%d", rng.Intn(4))),
						Num(float64(i)), Num(float64(rng.Intn(5))))
				}
				return edb
			}},
		{"assign-compare", `
			out(X, Y) :- src(X), Y = X * 2 + 1, Y > 4.
			eq(X) :- src(X), X = 3.
			half(X, H) :- src(X), H = X / 2.`,
			func() *Database {
				edb := NewDatabase()
				for i := 0; i < 8; i++ {
					edb.Add("src", Num(float64(i)))
				}
				return edb
			}},
		{"multihead-factrule", `
			base(a, 1). base(b, 2).
			lo(X), hi(X) :- base(X, _N).
			both(X) :- lo(X), hi(X).`,
			func() *Database { return NewDatabase() }},
		{"ground-query", `
			path(X,Y) :- edge(X,Y).
			path(X,Z) :- path(X,Y), edge(Y,Z).
			found(yes) :- path(0, 7).`,
			func() *Database { return graphEDB(4, 9, 22) }},
		{"repeated-vars", `
			selfloop(X) :- edge(X,X).
			sym(X,Y) :- edge(X,Y), edge(Y,X).`,
			func() *Database { return graphEDB(5, 8, 30) }},
		{"builtin-lists", `
			mem(X) :- item(L), cand(X), X in L.
			sized(L, N) :- item(L), N = len(L).`,
			func() *Database {
				edb := NewDatabase()
				edb.Add("item", List(Num(1), Num(2), Num(3)))
				edb.Add("item", List(Str("a")))
				edb.Add("cand", Num(2))
				edb.Add("cand", Str("a"))
				edb.Add("cand", Str("zz"))
				return edb
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			EquivCheck(t, tc.name, MustParse(tc.src), tc.edb(), nil)
		})
	}
}

// TestEquivalenceErrors pins diagnostic identity: semantic errors must carry
// the same message through both engines.
func TestEquivalenceErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"div-by-zero", `out(Y) :- e2(X,_Z), Y = 1 / 0.`},
		{"non-number", `out(Y) :- e(X), Y = X + 1.`},
		{"agg-non-number", `out(G,S) :- e2(G,I), S = msum(I,[I]).`},
		{"list-compare", `out(X) :- item(X), X > 3.`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			edb := fuzzEDB()
			edb.Add("item", List(Num(1)))
			EquivCheck(t, tc.name, MustParse(tc.src), edb, nil)
		})
	}
}

// TestEquivalenceRandomPrograms drives both engines over randomized graph
// workloads mixing recursion, negation and aggregation.
func TestEquivalenceRandomPrograms(t *testing.T) {
	src := `
		reach(X,Y) :- edge(X,Y).
		reach(X,Z) :- reach(X,Y), edge(Y,Z).
		indeg(Y,N) :- edge(X,Y), N = mcount([X]).
		sink(X) :- node(X), not hasout(X).
		hasout(X) :- edge(X,_Y).
		risky(X) :- sink(X), reach(_S, X).`
	p := MustParse(src)
	for trial := int64(0); trial < 6; trial++ {
		edb := graphEDB(100+trial, 6+int(trial)*3, 10+int(trial)*8)
		EquivCheck(t, fmt.Sprintf("random%d", trial), p, edb, nil)
	}
}

// TestEquivalenceParallelDelta uses an input large enough to cross the
// delta-partitioning threshold, so the buffered parallel emission path is
// exercised and must stay bit-identical.
func TestEquivalenceParallelDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	edb := NewDatabase()
	n := 3 * parallelCandidateMin
	for i := 0; i < n; i++ {
		edb.Add("r", Num(float64(i)), Num(float64(i%97)))
	}
	src := `
		cls(K, I) :- r(I, K).
		paircount(K, N) :- cls(K, I), N = mcount([I]).
		flagged(I) :- r(I, K), small(K).
		small(K) :- paircount(K, N), N < 100.`
	EquivCheck(t, "parallel-delta", MustParse(src), edb, nil)
}

// TestEquivalenceGOMAXPROCS4 reruns a representative slice of the battery
// pinned to GOMAXPROCS(4), the configuration the issue calls out for the
// race detector.
func TestEquivalenceGOMAXPROCS4(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	EquivCheck(t, "gomaxprocs4-closure", MustParse(`
		path(X,Y) :- edge(X,Y).
		path(X,Z) :- path(X,Y), edge(Y,Z).
		cnt(X,N) :- path(X,Y), N = mcount([Y]).`),
		graphEDB(42, 12, 40), nil)
	EquivCheck(t, "gomaxprocs4-egd", MustParse(`
		boss(X,Z) :- emp(X).
		B1 = B2 :- boss(X,B1), boss(X,B2).
		emp(ann). emp(bob). emp(cho).`),
		NewDatabase(), nil)
}

// TestTraceIdentical pins the trace stream: with tracing enabled the new
// engine must emit byte-identical round lines to the seed engine.
func TestTraceIdentical(t *testing.T) {
	p := MustParse(`
		linked(X) :- edge(X,_Y).
		isolated(X) :- node(X), not linked(X).
		reach(X,Y) :- edge(X,Y).
		reach(X,Z) :- reach(X,Y), edge(Y,Z).`)
	edb := graphEDB(9, 10, 18)
	var seedBuf, newBuf bytes.Buffer
	if _, err := seedRun(p, edb, &Options{Trace: &seedBuf}); err != nil {
		t.Fatal(err)
	}
	// Workers > 1 must not change the trace: tracing forces sequential
	// strata by contract.
	if _, err := Run(p, edb, &Options{Trace: &newBuf, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if seedBuf.String() != newBuf.String() {
		t.Fatalf("trace streams differ:\n--- seed ---\n%s--- new ---\n%s",
			seedBuf.String(), newBuf.String())
	}
}

// TestEvalStatsPopulated checks the observability block against ground truth
// on a program whose derivation counts are known.
func TestEvalStatsPopulated(t *testing.T) {
	p := MustParse(`
		path(X,Y) :- edge(X,Y).
		path(X,Z) :- path(X,Y), edge(Y,Z).`)
	edb := NewDatabase()
	for i := 0; i < 5; i++ {
		edb.Add("edge", Num(float64(i)), Num(float64(i+1)))
	}
	res, err := Run(p, edb, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.DerivedFacts != len(res.Facts("path")) {
		t.Fatalf("DerivedFacts = %d, want %d", s.DerivedFacts, len(res.Facts("path")))
	}
	if s.Rounds < 2 || s.MatchAttempts <= 0 || s.PeakBytes <= 0 || s.EGDPasses != 1 {
		t.Fatalf("implausible stats: %+v", s)
	}
	if s.Workers != 2 || s.MaxWork != 1_000_000_000 || s.Strata < 1 {
		t.Fatalf("option echo wrong: %+v", s)
	}
}
