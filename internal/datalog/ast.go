package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind discriminates terms of the surface syntax.
type TermKind uint8

// Term kinds.
const (
	TVar TermKind = iota
	TConst
)

// Term is a variable or a constant appearing in an atom or expression.
type Term struct {
	Kind TermKind
	Name string // variable name when Kind == TVar
	Val  Val    // constant value when Kind == TConst
}

// V returns a variable term.
func V(name string) Term { return Term{Kind: TVar, Name: name} }

// C returns a constant term.
func C(v Val) Term { return Term{Kind: TConst, Val: v} }

func (t Term) String() string {
	if t.Kind == TVar {
		return t.Name
	}
	return t.Val.String()
}

// Atom is a predicate applied to terms. Line/Col locate the predicate name
// in the source text when the atom came from the parser (zero for atoms
// built programmatically); static-analysis diagnostics anchor on them.
type Atom struct {
	Pred string
	Args []Term

	Line, Col int
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// Expr is an arithmetic/term expression evaluated against an environment.
type Expr interface {
	fmt.Stringer
	vars(set map[string]bool)
}

// ExprTerm is a leaf expression: a variable or constant.
type ExprTerm struct{ T Term }

func (e ExprTerm) String() string { return e.T.String() }
func (e ExprTerm) vars(set map[string]bool) {
	if e.T.Kind == TVar {
		set[e.T.Name] = true
	}
}

// ExprBin is a binary arithmetic expression over + - * /.
type ExprBin struct {
	Op   string
	L, R Expr
}

func (e ExprBin) String() string { return "(" + e.L.String() + e.Op + e.R.String() + ")" }
func (e ExprBin) vars(set map[string]bool) {
	e.L.vars(set)
	e.R.vars(set)
}

// ExprNeg is unary numeric negation.
type ExprNeg struct{ E Expr }

func (e ExprNeg) String() string           { return "-" + e.E.String() }
func (e ExprNeg) vars(set map[string]bool) { e.E.vars(set) }

// ExprCall is a built-in function call (abs, min, max, sqrt, pow, floor,
// ceil, log, concat, len) — the engine-side counterpart of Vadalog's
// function libraries.
type ExprCall struct {
	Name string
	Args []Expr
}

func (e ExprCall) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ",") + ")"
}

func (e ExprCall) vars(set map[string]bool) {
	for _, a := range e.Args {
		a.vars(set)
	}
}

// AggFn names a monotonic aggregation function.
type AggFn string

// Supported aggregation functions.
const (
	AggSum   AggFn = "msum"
	AggCount AggFn = "mcount"
	AggProd  AggFn = "mprod"
	AggUnion AggFn = "munion"
)

// Agg is a monotonic aggregation occurrence: Fn(Arg, [Contrib]). For mcount
// the Arg is nil. The group key is the tuple of all other variables
// appearing in the rule head; Contrib identifies the aggregation contributor
// of Section 4.3: for a fixed (group, contributor) pair only one
// contribution — the monotonically best — is retained, which is what lets
// anonymized tuple versions replace their predecessors inside aggregates.
type Agg struct {
	Fn      AggFn
	Arg     Expr // nil for mcount
	Contrib Expr
}

func (a Agg) String() string {
	if a.Arg == nil {
		return fmt.Sprintf("%s([%s])", a.Fn, a.Contrib)
	}
	return fmt.Sprintf("%s(%s,[%s])", a.Fn, a.Arg, a.Contrib)
}

// LitKind discriminates body literals.
type LitKind uint8

// Literal kinds.
const (
	LAtom    LitKind = iota // positive atom
	LNegAtom                // negated atom (stratified)
	LCmp                    // comparison between expressions
	LAssign                 // X = expr (binds X if free, compares otherwise)
	LAggAssign
	LAggCond
)

// Comparison operators.
const (
	OpEq = "=="
	OpNe = "!="
	OpLt = "<"
	OpLe = "<="
	OpGt = ">"
	OpGe = ">="
	OpIn = "in"
)

// Literal is one conjunct of a rule body.
type Literal struct {
	Kind LitKind

	Atom *Atom // LAtom, LNegAtom

	// LCmp: L Op R. LAssign: Var = AssignE.
	Op   string
	L, R Expr

	Var     string // LAssign / LAggAssign result variable
	AssignE Expr   // LAssign right-hand side

	// LAggAssign: Var = Agg. LAggCond: Agg Op R.
	Agg *Agg
}

func (l Literal) String() string {
	switch l.Kind {
	case LAtom:
		return l.Atom.String()
	case LNegAtom:
		return "not " + l.Atom.String()
	case LCmp:
		return l.L.String() + " " + l.Op + " " + l.R.String()
	case LAssign:
		return l.Var + " = " + l.AssignE.String()
	case LAggAssign:
		return l.Var + " = " + l.Agg.String()
	case LAggCond:
		return l.Agg.String() + " " + l.Op + " " + l.R.String()
	default:
		return "?"
	}
}

// Rule is a (possibly existential) rule, an EGD, or a fact. Facts are rules
// with an empty body and ground heads. EGDs have IsEGD set and use EGDL/EGDR
// instead of Heads.
type Rule struct {
	Heads []Atom
	Body  []Literal

	IsEGD      bool
	EGDL, EGDR Term

	// Existential holds the head variables that do not occur in the body:
	// they are invented as labelled nulls during the chase. Populated by
	// finalize.
	Existential []string

	Line int
	Col  int
}

func (r Rule) String() string {
	var head string
	if r.IsEGD {
		head = r.EGDL.String() + " = " + r.EGDR.String()
	} else {
		parts := make([]string, len(r.Heads))
		for i, h := range r.Heads {
			parts[i] = h.String()
		}
		head = strings.Join(parts, ", ")
	}
	if len(r.Body) == 0 {
		return head + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return head + " :- " + strings.Join(parts, ", ") + "."
}

// bodyVars returns the variables bound by the body: variables of positive
// atoms plus assignment/aggregate-assignment targets.
func (r Rule) bodyVars() map[string]bool {
	vars := make(map[string]bool)
	for _, l := range r.Body {
		switch l.Kind {
		case LAtom:
			for _, t := range l.Atom.Args {
				if t.Kind == TVar {
					vars[t.Name] = true
				}
			}
		case LAssign, LAggAssign:
			vars[l.Var] = true
		}
	}
	return vars
}

// finalize computes Existential and sanity-checks the rule shape. It returns
// an error for unsafe rules: negated atoms, comparisons, and expressions may
// only use body-bound variables; at most one aggregate per rule.
func (r *Rule) finalize() error {
	bound := r.bodyVars()
	check := func(e Expr, ctx string) error {
		if e == nil {
			return nil
		}
		set := make(map[string]bool)
		e.vars(set)
		for v := range set {
			if !bound[v] {
				return fmt.Errorf("line %d: unsafe variable %s in %s", r.Line, v, ctx)
			}
		}
		return nil
	}
	aggs := 0
	for _, l := range r.Body {
		switch l.Kind {
		case LNegAtom:
			for _, t := range l.Atom.Args {
				if t.Kind == TVar && !bound[t.Name] {
					return fmt.Errorf("line %d: unsafe variable %s in negated atom %s",
						r.Line, t.Name, l.Atom)
				}
			}
		case LCmp:
			if err := check(l.L, "comparison"); err != nil {
				return err
			}
			if err := check(l.R, "comparison"); err != nil {
				return err
			}
		case LAssign:
			if err := check(l.AssignE, "assignment"); err != nil {
				return err
			}
		case LAggAssign, LAggCond:
			aggs++
			if err := check(l.Agg.Arg, "aggregate"); err != nil {
				return err
			}
			if err := check(l.Agg.Contrib, "aggregate contributor"); err != nil {
				return err
			}
			if err := check(l.R, "aggregate comparison"); err != nil {
				return err
			}
		}
	}
	if aggs > 1 {
		return fmt.Errorf("line %d: at most one aggregate per rule", r.Line)
	}
	if r.IsEGD {
		for _, t := range []Term{r.EGDL, r.EGDR} {
			if t.Kind == TVar && !bound[t.Name] {
				return fmt.Errorf("line %d: unsafe variable %s in EGD head", r.Line, t.Name)
			}
		}
		return nil
	}
	exist := make(map[string]bool)
	for _, h := range r.Heads {
		for _, t := range h.Args {
			if t.Kind == TVar && !bound[t.Name] {
				exist[t.Name] = true
			}
		}
	}
	r.Existential = r.Existential[:0]
	for v := range exist {
		r.Existential = append(r.Existential, v)
	}
	sort.Strings(r.Existential)
	return nil
}

// headPreds returns the predicates defined by the rule head.
func (r Rule) headPreds() []string {
	var out []string
	for _, h := range r.Heads {
		out = append(out, h.Pred)
	}
	return out
}

// Program is a parsed set of rules and facts.
type Program struct {
	Rules []Rule
}

func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
