package datalog

import (
	"strings"
	"testing"
)

// FuzzParse hardens the parser: arbitrary input must either parse or return
// an error — never panic — and whatever parses must re-parse from its own
// String rendering to an identical program (printer/parser round trip).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`p(a).`,
		`path(X,Y) :- edge(X,Y).`,
		`path(X,Z) :- path(X,Y), edge(Y,Z).`,
		`rel(X,Y) :- rel(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.`,
		`total(M,S) :- val(M,I,W), S = msum(W,[I]).`,
		`s(X) :- p(X), not q(X).`,
		`C1 = C2 :- cat(M,A,C1), cat(M,A,C2).`,
		`f("str \" esc", -1.5e3).`,
		`t(X) :- p(X), X != "a", X >= "b", X in L, lst(L).`,
		`h(X) :- g(A,B), X = A + B * (A - B) / 2.`,
		`p(X,Z) :- q(X). % existential`,
		`% just a comment`,
		`f(⊥).`,
		"p(a) :- q(",
		strings.Repeat("p(a). ", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		rendered := p.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of rendered program failed: %v\nsource: %q\nrendered: %q",
				err, src, rendered)
		}
		if p2.String() != rendered {
			t.Fatalf("printer not a fixpoint:\nfirst:  %q\nsecond: %q", rendered, p2.String())
		}
	})
}

// FuzzRunSmall evaluates fuzzer-generated programs over a tiny fixed
// database under tight caps: evaluation must terminate with a result or an
// error, never hang or panic.
func FuzzRunSmall(f *testing.F) {
	seeds := []string{
		`p(X) :- e(X).`,
		`p(Y) :- p(X), e2(X,Y).`,
		`n(Y) :- n(X), succ(X,Y).` + ` succ(X,Y) :- n(X).` + ` n(zero).`,
		`q(X) :- e(X), not p(X). p(X) :- e(X).`,
		`t(G,S) :- e2(G,I), S = mcount([I]).`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		edb := NewDatabase()
		edb.Add("e", Str("a"))
		edb.Add("e", Str("b"))
		edb.Add("e2", Str("a"), Str("b"))
		edb.Add("e2", Str("b"), Str("a"))
		res, err := Run(p, edb, &Options{MaxFacts: 2000, MaxRounds: 200, MaxWork: 2_000_000})
		if err != nil {
			return
		}
		// The input facts must survive evaluation.
		if !res.Has("e", Str("a")) {
			t.Fatal("extensional fact lost")
		}
	})
}
