package datalog

import (
	"strings"
	"testing"
)

func TestParseFactsAndRules(t *testing.T) {
	p, err := Parse(`
		% ownership edges
		own("a","b",0.6).
		own("b","c",-0.25).
		rel(X,Y) :- own(X,Y,W), W > 0.5.
		rel(X,Y) :- rel(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.
	`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Rules) != 4 {
		t.Fatalf("got %d rules", len(p.Rules))
	}
	if p.Rules[1].Heads[0].Args[2].Val.NumVal() != -0.25 {
		t.Errorf("negative number constant mis-parsed: %v", p.Rules[1])
	}
	if p.Rules[3].Body[2].Kind != LAggCond {
		t.Errorf("aggregate condition mis-parsed: %v", p.Rules[3].Body[2])
	}
}

func TestParseAssignmentsAndAggAssign(t *testing.T) {
	p, err := Parse(`
		risk(I,R) :- grp(I,S), R = 1 / S.
		total(M,S) :- val(M,I,W), S = msum(W,[I]).
		cnt(M,C) :- val(M,I,W), C = mcount([I]).
		prod(M,P) :- val(M,I,W), P = mprod(1 - W, [I]).
		set(M,S) :- val(M,I,W), S = munion(I,[I]).
	`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	kinds := []LitKind{LAssign, LAggAssign, LAggAssign, LAggAssign, LAggAssign}
	for i, k := range kinds {
		if got := p.Rules[i].Body[1].Kind; got != k {
			t.Errorf("rule %d literal kind = %d, want %d", i, got, k)
		}
	}
	if p.Rules[2].Body[1].Agg.Fn != AggCount || p.Rules[2].Body[1].Agg.Arg != nil {
		t.Error("mcount parsed with an argument")
	}
}

func TestParseExistentialDetection(t *testing.T) {
	p, err := Parse(`comb(Z,I), inc(A,Z) :- tuplei(M,I,V), qi(M,A).`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	r := p.Rules[0]
	if len(r.Heads) != 2 {
		t.Fatalf("heads = %d", len(r.Heads))
	}
	if len(r.Existential) != 1 || r.Existential[0] != "Z" {
		t.Fatalf("Existential = %v, want [Z]", r.Existential)
	}
}

func TestParseEGD(t *testing.T) {
	p, err := Parse(`C1 = C2 :- cat(M,A,C1), cat(M,A,C2).`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.Rules[0].IsEGD {
		t.Fatal("EGD not recognized")
	}
}

func TestParseNegationAndComparisons(t *testing.T) {
	p, err := Parse(`
		s(X) :- p(X), not q(X).
		t(X) :- p(X), X != "a", X >= "b", X in L, lst(L).
	`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Rules[0].Body[1].Kind != LNegAtom {
		t.Error("negation mis-parsed")
	}
	ops := []string{OpNe, OpGe, OpIn}
	for i, op := range ops {
		if got := p.Rules[1].Body[1+i]; got.Kind != LCmp || got.Op != op {
			t.Errorf("literal %d: %v, want op %s", i, got, op)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	p, err := Parse(`f("a\"b\\c\nd\te").`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got := p.Rules[0].Heads[0].Args[0].Val.StrVal()
	if got != "a\"b\\c\nd\te" {
		t.Errorf("escapes = %q", got)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	p, err := Parse(`f(X) :- g(A,B,C), X = A + B * C - (A / B).`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := "((A+(B*C))-(A/B))"
	if got := p.Rules[0].Body[1].AssignE.String(); got != want {
		t.Errorf("expr = %s, want %s", got, want)
	}
}

func TestParseNumberThenPeriod(t *testing.T) {
	// "f(1)." must not swallow the terminator into the number, and
	// decimals must still work.
	p, err := Parse("f(1).\ng(2.5).\nh(X) :- f(X), X < 1.5.")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Rules[1].Heads[0].Args[0].Val.NumVal() != 2.5 {
		t.Error("decimal constant mangled")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`f(X).`, "contains variable"},
		{`f(X) :- g(Y).`, ""}, // existential head: fine, not an error
		{`f(X) :- not g(X).`, "unsafe"},
		{`f(X) :- g(X), Y > 1.`, "unsafe"},
		{`f(X) :- g(X), Z = Y + 1.`, "unsafe"},
		{`f() .`, "no arguments"},
		{`f(X) :- g(X), h(X)`, "expected"},
		{`X = Y.`, "EGD without a body"},
		{`f(X) :- g(X), 1 + 1 = X.`, "left side"},
		{`f("unterminated`, "unterminated"},
		{`f(X) :- g(X,W), S = msum(W,[X]), C = mcount([X]).`, "at most one aggregate"},
		{`f(X) :- g(X), msum(1,[X]) ~ 2.`, "unexpected character"},
		{`f(X) :- g(X), "a" < "b" < "c".`, "expected"},
		{`f("bad\qescape").`, "bad string literal"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if c.wantSub == "" {
			if err != nil {
				t.Errorf("Parse(%q) unexpected error: %v", c.src, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseRejectsBadInputWithoutPanicking(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Parse panicked on bad input: %v", r)
		}
	}()
	if _, err := Parse(`f(X).`); err == nil {
		t.Fatal("Parse accepted an unsafe fact")
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	src := `rel(X,Y) :- rel(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(p.Rules[0].String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", p.Rules[0].String(), err)
	}
	if p2.Rules[0].String() != p.Rules[0].String() {
		t.Errorf("round trip unstable: %q vs %q", p.Rules[0].String(), p2.Rules[0].String())
	}
}

func TestProgramString(t *testing.T) {
	p := MustParse("f(a).\ng(X) :- f(X).")
	s := p.String()
	if !strings.Contains(s, `f("a").`) || !strings.Contains(s, "g(X) :- f(X).") {
		t.Errorf("Program.String() = %q", s)
	}
}

func TestLowercaseIdentifiersAreStringConstants(t *testing.T) {
	p := MustParse(`cat(ig, area, quasi).`)
	args := p.Rules[0].Heads[0].Args
	if args[0].Val.StrVal() != "ig" || args[2].Val.StrVal() != "quasi" {
		t.Errorf("identifier constants mangled: %v", args)
	}
}
