package datalog_test

// Equivalence of the overhauled evaluator with the frozen seed engine over
// the declarative program library. This lives in the external test package
// so it can import internal/programs (which imports internal/datalog)
// without a cycle; EquivCheck itself is exported by export_test.go.

import (
	"testing"

	"vadasa/internal/categorize"
	"vadasa/internal/datalog"
	"vadasa/internal/hierarchy"
	"vadasa/internal/mdb"
	"vadasa/internal/programs"
	"vadasa/internal/synth"
)

func riskEDB(tuples int) *datalog.Database {
	edb := datalog.NewDatabase()
	d := synth.Generate(synth.Config{Tuples: tuples, QIs: 3, Dist: synth.DistU, Seed: 7})
	programs.TupleFacts(edb, d)
	return edb
}

// TestEquivalenceProgramLibrary drives every program constructor over a
// representative extensional database and requires result identity with the
// seed evaluator at every worker count.
func TestEquivalenceProgramLibrary(t *testing.T) {
	cases := []struct {
		name string
		prog *datalog.Program
		edb  func() *datalog.Database
	}{
		{"reidentification", programs.ReIdentification(3), func() *datalog.Database { return riskEDB(300) }},
		{"kanonymity", programs.KAnonymity(3, 4), func() *datalog.Database { return riskEDB(300) }},
		{"individual-risk", programs.IndividualRisk(3), func() *datalog.Database { return riskEDB(250) }},
		{"individual-risk-posterior", programs.IndividualRiskPosterior(3), func() *datalog.Database { return riskEDB(250) }},
		{"weight-estimation", programs.WeightEstimation(3, 30), func() *datalog.Database { return riskEDB(250) }},
		{"control", programs.Control(), func() *datalog.Database {
			edb := datalog.NewDatabase()
			edges := []struct {
				x, y string
				w    float64
			}{
				{"a", "b", 0.6}, {"a", "e", 0.7}, {"b", "c", 0.3}, {"e", "c", 0.3},
				{"c", "d", 0.9}, {"d", "f", 0.4}, {"x", "f", 0.2},
			}
			for _, e := range edges {
				edb.Add("own", datalog.Str(e.x), datalog.Str(e.y), datalog.Num(e.w))
			}
			return edb
		}},
		{"cluster-risk", programs.ClusterRisk(), func() *datalog.Database {
			edb := datalog.NewDatabase()
			risks := map[string]float64{"a": 0.5, "b": 0.2, "c": 0.1, "x": 0.3}
			for _, e := range []string{"a", "b", "c", "x"} {
				edb.Add("entity", datalog.Str(e))
				edb.Add("risk", datalog.Str(e), datalog.Num(risks[e]))
			}
			for _, r := range [][2]string{{"a", "b"}, {"b", "c"}} {
				edb.Add("rel", datalog.Str(r[0]), datalog.Str(r[1]))
			}
			return edb
		}},
		{"recoding", programs.Recoding(), func() *datalog.Database {
			edb := datalog.NewDatabase()
			programs.HierarchyFacts(edb, hierarchy.ItalianGeography())
			for _, c := range []string{"Milano", "Torino", "Roma", "Napoli"} {
				edb.Add("needrecode", datalog.Str("Area"), datalog.Str(c))
			}
			return edb
		}},
		{"combinations", programs.Combinations(), func() *datalog.Database {
			edb := datalog.NewDatabase()
			edb.Add("tuplei", datalog.Str("t1"))
			edb.Add("tuplei", datalog.Str("t2"))
			for i, a := range []string{"area", "sector", "employees"} {
				edb.Add("qiord", datalog.Str(a), datalog.Num(float64(i+1)))
			}
			return edb
		}},
		{"categorization", programs.Categorization(), func() *datalog.Database {
			edb := datalog.NewDatabase()
			programs.CategorizationEDB(edb, "I&G",
				[]string{"Id", "Area", "Sector", "Employees", "Weight", "FluxCapacitance"},
				[]categorize.Entry{
					{Attr: "id", Category: mdb.Identifier},
					{Attr: "geographic area", Category: mdb.QuasiIdentifier},
					{Attr: "product sector", Category: mdb.QuasiIdentifier},
					{Attr: "employees", Category: mdb.QuasiIdentifier},
					{Attr: "sampling weight", Category: mdb.Weight},
				},
				[]categorize.Similarity{
					categorize.Exact{}, categorize.Normalized{}, categorize.TokenOverlap{Min: 0.5},
				})
			return edb
		}},
		{"suppression", programs.SuppressionProgram(3), func() *datalog.Database {
			d := synth.Figure5()
			edb := datalog.NewDatabase()
			programs.TupleFacts(edb, d)
			edb.Add("suppress2", datalog.Num(1))
			return edb
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			datalog.EquivCheck(t, tc.name, tc.prog, tc.edb(), nil)
		})
	}
}
