package datalog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// The surface syntax is a Vadalog-flavoured Datalog:
//
//	% comment
//	own("a","b",0.6).                        facts
//	rel(X,Y) :- own(X,Y,W), W > 0.5.         rules with built-ins
//	rel(X,Y) :- rel(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.
//	cat(M,A,C) :- att(M,A), expbase(A1,C), sim(A,A1).
//	risk(I,R) :- grp(I,S), R = 1 / S.        assignments
//	total(M,S) :- val(M,I,W), S = msum(W,[I]).  head-binding aggregation
//	p(X,Z) :- q(X).                          Z existential -> labelled null
//	C1 = C2 :- cat(M,A,C1), cat(M,A,C2).     EGD
//	s(X) :- p(X), not q(X).                  stratified negation
//
// Lowercase identifiers are predicate names or string constants; uppercase
// (or underscore-prefixed) identifiers are variables; numbers and
// double-quoted strings are constants.

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tVar
	tNum
	tStr
	tPunct // ( ) [ ] , .
	tOp    // :- = == != < <= > >= + - * / in not
)

type token struct {
	kind tokKind
	text string
	num  float64
	line int
	col  int // 1-based byte column of the token start
}

type lexer struct {
	src       string
	pos       int
	line      int
	lineStart int // byte offset of the current line's first character
}

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("datalog: line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
			lx.lineStart = lx.pos
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '%':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tEOF, line: lx.line, col: lx.pos - lx.lineStart + 1}, nil

scan:
	start := lx.pos
	col := start - lx.lineStart + 1
	c := lx.src[lx.pos]
	switch {
	case c == '"':
		// Scan to the unescaped closing quote, then let strconv.Unquote
		// handle the full Go escape repertoire — the same one Val.String
		// emits, so printing and parsing are exact inverses.
		end := lx.pos + 1
		for end < len(lx.src) {
			switch lx.src[end] {
			case '\\':
				end += 2
				continue
			case '"':
				lit := lx.src[lx.pos : end+1]
				text, err := strconv.Unquote(lit)
				if err != nil {
					return token{}, lx.errf("bad string literal %s (%v)", lit, err)
				}
				lx.pos = end + 1
				return token{kind: tStr, text: text, line: lx.line, col: col}, nil
			case '\n':
				return token{}, lx.errf("unterminated string")
			default:
				end++
			}
		}
		return token{}, lx.errf("unterminated string")

	case c >= '0' && c <= '9':
		for lx.pos < len(lx.src) {
			ch := lx.src[lx.pos]
			if (ch >= '0' && ch <= '9') || ch == '.' || ch == 'e' || ch == 'E' ||
				((ch == '+' || ch == '-') && lx.pos > start &&
					(lx.src[lx.pos-1] == 'e' || lx.src[lx.pos-1] == 'E')) {
				lx.pos++
				continue
			}
			break
		}
		text := lx.src[start:lx.pos]
		// A trailing '.' is the statement terminator, not a decimal
		// point, when not followed by a digit.
		if strings.HasSuffix(text, ".") &&
			(lx.pos >= len(lx.src) || lx.src[lx.pos] < '0' || lx.src[lx.pos] > '9') {
			text = text[:len(text)-1]
			lx.pos--
		}
		n, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, lx.errf("bad number %q", text)
		}
		return token{kind: tNum, text: text, num: n, line: lx.line, col: col}, nil

	case isIdentStartByte(lx.src[lx.pos:]):
		for lx.pos < len(lx.src) {
			r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
			if !isIdentPart(r) {
				break
			}
			lx.pos += size
		}
		text := lx.src[start:lx.pos]
		if text == "not" || text == "in" {
			return token{kind: tOp, text: text, line: lx.line, col: col}, nil
		}
		r, _ := utf8.DecodeRuneInString(text)
		if unicode.IsUpper(r) || r == '_' {
			return token{kind: tVar, text: text, line: lx.line, col: col}, nil
		}
		return token{kind: tIdent, text: text, line: lx.line, col: col}, nil

	default:
		two := ""
		if lx.pos+1 < len(lx.src) {
			two = lx.src[lx.pos : lx.pos+2]
		}
		switch two {
		case ":-", "==", "!=", "<=", ">=":
			lx.pos += 2
			return token{kind: tOp, text: two, line: lx.line, col: col}, nil
		}
		switch c {
		case '(', ')', '[', ']', ',', '.':
			lx.pos++
			return token{kind: tPunct, text: string(c), line: lx.line, col: col}, nil
		case '=', '<', '>', '+', '-', '*', '/':
			lx.pos++
			return token{kind: tOp, text: string(c), line: lx.line, col: col}, nil
		}
		return token{}, lx.errf("unexpected character %q", c)
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

// isIdentStartByte decodes the leading rune of s before classifying it:
// converting a single byte of a multibyte rune with rune(c) would
// misclassify UTF-8 lead bytes (e.g. the 0xE2 of ⊥) as letters and stall the
// lexer on input it can never consume.
func isIdentStartByte(s string) bool {
	r, _ := utf8.DecodeRuneInString(s)
	return r != utf8.RuneError && isIdentStart(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses a program.
func Parse(src string) (*Program, error) {
	lx := &lexer{src: src, line: 1}
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tEOF {
			break
		}
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for p.peek().kind != tEOF {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		if err := r.finalize(); err != nil {
			return nil, fmt.Errorf("datalog: %w", err)
		}
		prog.Rules = append(prog.Rules, *r)
	}
	return prog, nil
}

func (p *parser) peek() token  { return p.toks[p.pos] }
func (p *parser) peek2() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("datalog: line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.peek()
	if t.kind != kind || t.text != text {
		return t, p.errf("expected %q, found %q", text, t.text)
	}
	return p.advance(), nil
}

func (p *parser) rule() (*Rule, error) {
	r := &Rule{Line: p.peek().line, Col: p.peek().col}
	// EGD heads start with a variable: X = Y :- body.
	if p.peek().kind == tVar {
		r.IsEGD = true
		l, err := p.term()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tOp, "="); err != nil {
			return nil, err
		}
		rt, err := p.term()
		if err != nil {
			return nil, err
		}
		r.EGDL, r.EGDR = l, rt
	} else {
		for {
			a, err := p.atom()
			if err != nil {
				return nil, err
			}
			r.Heads = append(r.Heads, *a)
			if p.peek().kind == tPunct && p.peek().text == "," {
				p.advance()
				continue
			}
			break
		}
	}
	switch t := p.peek(); {
	case t.kind == tPunct && t.text == ".":
		p.advance()
		if r.IsEGD {
			return nil, p.errf("EGD without a body")
		}
		for _, h := range r.Heads {
			for _, a := range h.Args {
				if a.Kind == TVar {
					return nil, p.errf("fact %s contains variable %s", h, a.Name)
				}
			}
		}
		return r, nil
	case t.kind == tOp && t.text == ":-":
		p.advance()
	default:
		return nil, p.errf("expected '.' or ':-', found %q", t.text)
	}
	for {
		l, err := p.literal()
		if err != nil {
			return nil, err
		}
		r.Body = append(r.Body, *l)
		if p.peek().kind == tPunct && p.peek().text == "," {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tPunct, "."); err != nil {
		return nil, err
	}
	return r, nil
}

func isBuiltinName(s string) bool {
	_, ok := builtins[s]
	return ok
}

func isAggName(s string) bool {
	switch AggFn(s) {
	case AggSum, AggCount, AggProd, AggUnion:
		return true
	}
	return false
}

func (p *parser) literal() (*Literal, error) {
	t := p.peek()
	switch {
	case t.kind == tOp && t.text == "not":
		p.advance()
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		return &Literal{Kind: LNegAtom, Atom: a}, nil

	case t.kind == tIdent && isBuiltinName(t.text) && p.peek2().kind == tPunct && p.peek2().text == "(":
		// A built-in call at the start of a literal begins a comparison,
		// e.g. abs(X - 10) > 15. Built-in names are reserved: they cannot
		// be predicate names when followed by '('.
		lhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		op := p.peek()
		if op.kind != tOp || !isCmpOp(op.text) {
			return nil, p.errf("built-in call needs a comparison operator, found %q", op.text)
		}
		p.advance()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Literal{Kind: LCmp, Op: normalizeOp(op.text), L: lhs, R: rhs}, nil

	case t.kind == tIdent && isAggName(t.text) && p.peek2().kind == tPunct && p.peek2().text == "(":
		agg, err := p.aggregate()
		if err != nil {
			return nil, err
		}
		op := p.peek()
		if op.kind != tOp || !isCmpOp(op.text) {
			return nil, p.errf("aggregate condition needs a comparison operator, found %q", op.text)
		}
		p.advance()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Literal{Kind: LAggCond, Op: normalizeOp(op.text), Agg: agg, R: rhs}, nil

	case t.kind == tIdent && p.peek2().kind == tPunct && p.peek2().text == "(":
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		return &Literal{Kind: LAtom, Atom: a}, nil
	}

	// Variable = aggregate?
	if t.kind == tVar && p.peek2().kind == tOp && p.peek2().text == "=" {
		save := p.pos
		v := p.advance().text
		p.advance() // =
		if n := p.peek(); n.kind == tIdent && isAggName(n.text) {
			agg, err := p.aggregate()
			if err != nil {
				return nil, err
			}
			return &Literal{Kind: LAggAssign, Var: v, Agg: agg}, nil
		}
		p.pos = save
	}

	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	op := p.peek()
	if op.kind != tOp || (!isCmpOp(op.text) && op.text != "=") {
		return nil, p.errf("expected comparison or assignment, found %q", op.text)
	}
	p.advance()
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if op.text == "=" {
		lv, ok := lhs.(ExprTerm)
		if !ok || lv.T.Kind != TVar {
			return nil, p.errf("left side of '=' must be a variable")
		}
		return &Literal{Kind: LAssign, Var: lv.T.Name, AssignE: rhs}, nil
	}
	return &Literal{Kind: LCmp, Op: normalizeOp(op.text), L: lhs, R: rhs}, nil
}

func isCmpOp(s string) bool {
	switch s {
	case "==", "!=", "<", "<=", ">", ">=", "in":
		return true
	}
	return false
}

func normalizeOp(s string) string { return s }

func (p *parser) aggregate() (*Agg, error) {
	name := p.advance().text
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	agg := &Agg{Fn: AggFn(name)}
	if agg.Fn != AggCount {
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		agg.Arg = arg
		if _, err := p.expect(tPunct, ","); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tPunct, "["); err != nil {
		return nil, err
	}
	contrib, err := p.expr()
	if err != nil {
		return nil, err
	}
	agg.Contrib = contrib
	if _, err := p.expect(tPunct, "]"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	return agg, nil
}

func (p *parser) atom() (*Atom, error) {
	t := p.peek()
	if t.kind != tIdent {
		return nil, p.errf("expected predicate name, found %q", t.text)
	}
	p.advance()
	a := &Atom{Pred: t.text, Line: t.line, Col: t.col}
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	if p.peek().kind == tPunct && p.peek().text == ")" {
		return nil, p.errf("predicate %s has no arguments", a.Pred)
	}
	for {
		term, err := p.term()
		if err != nil {
			return nil, err
		}
		a.Args = append(a.Args, term)
		if p.peek().kind == tPunct && p.peek().text == "," {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	return a, nil
}

func (p *parser) term() (Term, error) {
	t := p.advance()
	switch t.kind {
	case tVar:
		return V(t.text), nil
	case tIdent:
		return C(Str(t.text)), nil
	case tStr:
		return C(Str(t.text)), nil
	case tNum:
		return C(Num(t.num)), nil
	case tOp:
		if t.text == "-" && p.peek().kind == tNum {
			n := p.advance()
			return C(Num(-n.num)), nil
		}
	}
	return Term{}, p.errf("expected term, found %q", t.text)
}

func (p *parser) expr() (Expr, error) {
	return p.addExpr()
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tOp && (t.text == "+" || t.text == "-") {
			p.advance()
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = ExprBin{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tOp && (t.text == "*" || t.text == "/") {
			p.advance()
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = ExprBin{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.peek()
	if t.kind == tOp && t.text == "-" {
		p.advance()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return ExprNeg{E: e}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tIdent:
		if p.peek2().kind == tPunct && p.peek2().text == "(" {
			return p.callExpr()
		}
		term, err := p.term()
		if err != nil {
			return nil, err
		}
		return ExprTerm{T: term}, nil
	case tVar, tStr, tNum:
		term, err := p.term()
		if err != nil {
			return nil, err
		}
		return ExprTerm{T: term}, nil
	}
	return nil, p.errf("expected expression, found %q", t.text)
}

// callExpr parses a built-in function call inside an expression.
func (p *parser) callExpr() (Expr, error) {
	name := p.advance().text
	spec, ok := builtins[name]
	if !ok {
		return nil, p.errf("unknown function %q", name)
	}
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	var args []Expr
	if !(p.peek().kind == tPunct && p.peek().text == ")") {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.peek().kind == tPunct && p.peek().text == "," {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	if len(args) < spec.minArgs || (spec.maxArgs >= 0 && len(args) > spec.maxArgs) {
		return nil, p.errf("function %q takes %s, got %d arguments", name, spec.arityDoc, len(args))
	}
	return ExprCall{Name: name, Args: args}, nil
}
