package datalog

import (
	"fmt"
	"math"
	"strings"
)

// builtinSpec declares a built-in function's arity and implementation.
type builtinSpec struct {
	minArgs  int
	maxArgs  int // -1 = variadic
	arityDoc string
	apply    func(args []Val) (Val, error)
}

func numArg(name string, args []Val, i int) (float64, error) {
	if args[i].Kind() != KNum {
		return 0, fmt.Errorf("datalog: %s: argument %d is %s, want a number", name, i+1, args[i])
	}
	return args[i].NumVal(), nil
}

func unaryNum(name string, f func(float64) float64, check func(float64) error) builtinSpec {
	return builtinSpec{
		minArgs: 1, maxArgs: 1, arityDoc: "1 argument",
		apply: func(args []Val) (Val, error) {
			x, err := numArg(name, args, 0)
			if err != nil {
				return Val{}, err
			}
			if check != nil {
				if err := check(x); err != nil {
					return Val{}, err
				}
			}
			return Num(f(x)), nil
		},
	}
}

// builtins is the engine's function library — the counterpart of the
// external libraries Vadalog programs call with the # prefix.
var builtins = map[string]builtinSpec{
	"abs": unaryNum("abs", math.Abs, nil),
	"sqrt": unaryNum("sqrt", math.Sqrt, func(x float64) error {
		if x < 0 {
			return fmt.Errorf("datalog: sqrt of negative %g", x)
		}
		return nil
	}),
	"floor": unaryNum("floor", math.Floor, nil),
	"ceil":  unaryNum("ceil", math.Ceil, nil),
	"exp":   unaryNum("exp", math.Exp, nil),
	"log": unaryNum("log", math.Log, func(x float64) error {
		if x <= 0 {
			return fmt.Errorf("datalog: log of non-positive %g", x)
		}
		return nil
	}),
	"pow": {
		minArgs: 2, maxArgs: 2, arityDoc: "2 arguments",
		apply: func(args []Val) (Val, error) {
			x, err := numArg("pow", args, 0)
			if err != nil {
				return Val{}, err
			}
			y, err := numArg("pow", args, 1)
			if err != nil {
				return Val{}, err
			}
			return Num(math.Pow(x, y)), nil
		},
	},
	"min": {
		minArgs: 1, maxArgs: -1, arityDoc: "1+ arguments",
		apply: func(args []Val) (Val, error) {
			best, err := numArg("min", args, 0)
			if err != nil {
				return Val{}, err
			}
			for i := 1; i < len(args); i++ {
				x, err := numArg("min", args, i)
				if err != nil {
					return Val{}, err
				}
				if x < best {
					best = x
				}
			}
			return Num(best), nil
		},
	},
	"max": {
		minArgs: 1, maxArgs: -1, arityDoc: "1+ arguments",
		apply: func(args []Val) (Val, error) {
			best, err := numArg("max", args, 0)
			if err != nil {
				return Val{}, err
			}
			for i := 1; i < len(args); i++ {
				x, err := numArg("max", args, i)
				if err != nil {
					return Val{}, err
				}
				if x > best {
					best = x
				}
			}
			return Num(best), nil
		},
	},
	"concat": {
		minArgs: 1, maxArgs: -1, arityDoc: "1+ arguments",
		apply: func(args []Val) (Val, error) {
			var b strings.Builder
			for i, a := range args {
				switch a.Kind() {
				case KStr:
					b.WriteString(a.StrVal())
				case KNum:
					fmt.Fprintf(&b, "%g", a.NumVal())
				default:
					return Val{}, fmt.Errorf("datalog: concat: argument %d is %s", i+1, a)
				}
			}
			return Str(b.String()), nil
		},
	},
	"len": {
		minArgs: 1, maxArgs: 1, arityDoc: "1 argument",
		apply: func(args []Val) (Val, error) {
			switch args[0].Kind() {
			case KStr:
				return Num(float64(len(args[0].StrVal()))), nil
			case KList:
				return Num(float64(len(args[0].Elems()))), nil
			default:
				return Val{}, fmt.Errorf("datalog: len of %s", args[0])
			}
		},
	},
}
