package datalog

// This file is the execution layer of the rebuilt evaluator. The compiled
// plan (compile.go) reduces rule bodies to sequences of cSteps over interned
// ids; the walk here is a backtracking join over those steps with no map
// environments, no key strings and no per-candidate allocation. Parallelism
// comes in two independent shapes — whole strata whose read/write sets are
// disjoint, and partitions of a large delta within one rule — and both are
// constructed so the derived database, provenance, labelled-null identities
// and diagnostics are bit-identical to the sequential evaluator (see
// DESIGN.md §16 for the argument).

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"vadasa/internal/pool"
)

// fid packs a fact identity: predicate id in the high word, row position in
// the low. It replaces the pred+"/"+Key() strings the old engine built for
// every provenance and violation lookup.
func fid(pid, pos uint32) uint64 { return uint64(pid)<<32 | uint64(pos) }

type evaluator struct {
	ctx     context.Context
	prog    *Program
	opt     Options
	db      *Database
	prov    map[uint64]derivation
	strata  map[string]int
	nStrata int
	nullCtr uint64
	skolem  map[string]Val
	subst   map[uint64]Val
	orders  [][]int
	crules  []*cRule

	predIDs   map[string]uint32
	predNames []string

	workers  int
	work     atomic.Int64
	rounds   atomic.Int64
	chargeMu sync.Mutex
	charged  int64
	peak     int64

	parStrata int
	egdPasses int

	aggState []map[string]*aggGroup
}

// aggGroup accumulates one aggregation group. The contributor map is keyed
// by the interned id of the contributor expression — the same identity the
// old engine spelled as cv.Key() — and sortKey reproduces the old engine's
// group-key string so dirty groups flush in the identical order.
type aggGroup struct {
	groupVids []uint32
	sortKey   string
	used      []uint64
	contrib   map[uint32]Val
	emitted   bool
	dirty     bool
}

// stratumCtx is the per-stratum evaluation state: a private interner view
// and a private provenance map, so strata running in parallel never touch a
// shared map. Fact ids are globally unique (a fact is inserted once, by the
// one stratum that owns its predicate), so merging the maps afterwards is
// collision-free in any order.
type stratumCtx struct {
	ev   *evaluator
	iv   iview
	prov map[uint64]derivation
}

// pendEmit is one buffered head emission from a parallel delta partition:
// the body fact ids and the head rows, applied in partition order during the
// deterministic merge.
type pendEmit struct {
	used []uint64
	rows [][]uint32
}

// parallelCandidateMin is the smallest candidate count worth partitioning;
// below it the fork/join overhead exceeds the join work.
const parallelCandidateMin = 4096

// walkCtx is the state of one backtracking join walk. env is a flat slot
// array of interned ids; slots statically unbound at a step hold garbage
// from earlier candidates, which is safe because the fixed literal order
// means they are never read before the step that binds them.
type walkCtx struct {
	ev         *evaluator
	sc         *stratumCtx
	c          *cRule
	restrictLi int
	lo, hi     uint32
	env        []uint32
	used       []uint64
	iv         *iview
	err        error
	stop       bool
	buffer     *[]pendEmit
	derived    int
	rowBuf     []uint32
	gkeyBuf    []byte
}

func (w *walkCtx) spend() error {
	n := w.ev.work.Add(1)
	if n > w.ev.opt.MaxWork {
		return fmt.Errorf("datalog: exceeded the work budget of %d match attempts (join explosion?)", w.ev.opt.MaxWork)
	}
	if n&ctxPollMask == 0 {
		return w.ev.ctxErr()
	}
	return nil
}

func (ev *evaluator) ctxErr() error {
	if err := ev.ctx.Err(); err != nil {
		return fmt.Errorf("datalog: evaluation cancelled after %d match attempts: %w", ev.work.Load(), err)
	}
	return nil
}

// matchRow unifies a compiled atom pattern against a stored row. Binding
// writes the row id straight into the slot; checks compare ids, which is
// exactly Equal because the interner canonicalizes by the same equivalence
// Compare uses. No undo is needed (see walkCtx.env).
func matchRow(st *cStep, row []uint32, env []uint32) bool {
	if len(row) != len(st.args) {
		return false
	}
	for i := range st.args {
		a := &st.args[i]
		if a.slot < 0 {
			if row[i] != a.vid {
				return false
			}
		} else if a.bind {
			env[a.slot] = row[i]
		} else if env[a.slot] != row[i] {
			return false
		}
	}
	return true
}

// evalExprS evaluates an expression over the slot environment, decoding ids
// through the walk's interner view. Error strings match the map-environment
// evaluator exactly.
func (w *walkCtx) evalExprS(e Expr) (Val, error) {
	switch x := e.(type) {
	case ExprTerm:
		if x.T.Kind == TConst {
			return x.T.Val, nil
		}
		s, ok := w.c.slotOf[x.T.Name]
		if !ok || w.env[s] == unboundVid {
			return Val{}, fmt.Errorf("datalog: unbound variable %s", x.T.Name)
		}
		return w.iv.val(w.env[s]), nil
	case ExprNeg:
		v, err := w.evalExprS(x.E)
		if err != nil {
			return Val{}, err
		}
		if v.k != KNum {
			return Val{}, fmt.Errorf("datalog: unary '-' on non-number %s", v)
		}
		return Num(-v.n), nil
	case ExprCall:
		spec, ok := builtins[x.Name]
		if !ok {
			return Val{}, fmt.Errorf("datalog: unknown function %q", x.Name)
		}
		args := make([]Val, len(x.Args))
		for i, a := range x.Args {
			v, err := w.evalExprS(a)
			if err != nil {
				return Val{}, err
			}
			args[i] = v
		}
		return spec.apply(args)
	case ExprBin:
		l, err := w.evalExprS(x.L)
		if err != nil {
			return Val{}, err
		}
		r, err := w.evalExprS(x.R)
		if err != nil {
			return Val{}, err
		}
		if l.k != KNum || r.k != KNum {
			return Val{}, fmt.Errorf("datalog: arithmetic %q on non-numbers %s, %s", x.Op, l, r)
		}
		switch x.Op {
		case "+":
			return Num(l.n + r.n), nil
		case "-":
			return Num(l.n - r.n), nil
		case "*":
			return Num(l.n * r.n), nil
		case "/":
			if r.n == 0 {
				return Val{}, fmt.Errorf("datalog: division by zero")
			}
			return Num(l.n / r.n), nil
		}
	}
	return Val{}, fmt.Errorf("datalog: bad expression %v", e)
}

func (w *walkCtx) walk(step int) {
	if step == len(w.c.steps) {
		w.emit()
		return
	}
	st := &w.c.steps[step]
	switch st.kind {
	case LAtom:
		restricted := st.li == w.restrictLi
		if st.idx != nil {
			h := probeHash(st, w.env)
			if restricted {
				bucket := st.idx.m[h]
				// Bucket positions ascend with insertion, so the delta
				// window is a contiguous sub-slice.
				i := sort.Search(len(bucket), func(i int) bool { return bucket[i] >= w.lo })
				for ; i < len(bucket); i++ {
					pos := bucket[i]
					if pos >= w.hi {
						break
					}
					if err := w.spend(); err != nil {
						w.err = err
						return
					}
					if !matchRow(st, st.rel.row(int(pos)), w.env) {
						continue
					}
					w.used = append(w.used, fid(st.pid, pos))
					w.walk(step + 1)
					w.used = w.used[:len(w.used)-1]
					if w.err != nil || w.stop {
						return
					}
				}
				return
			}
			// Unrestricted: re-fetch the bucket each iteration so facts the
			// rule itself derives mid-pass stay visible, exactly like the
			// old engine's live byFirst scan.
			for i := 0; ; i++ {
				bucket := st.idx.m[h]
				if i >= len(bucket) {
					return
				}
				pos := bucket[i]
				if err := w.spend(); err != nil {
					w.err = err
					return
				}
				if !matchRow(st, st.rel.row(int(pos)), w.env) {
					continue
				}
				w.used = append(w.used, fid(st.pid, pos))
				w.walk(step + 1)
				w.used = w.used[:len(w.used)-1]
				if w.err != nil || w.stop {
					return
				}
			}
		}
		if restricted {
			for pos := w.lo; pos < w.hi; pos++ {
				if err := w.spend(); err != nil {
					w.err = err
					return
				}
				if !matchRow(st, st.rel.row(int(pos)), w.env) {
					continue
				}
				w.used = append(w.used, fid(st.pid, pos))
				w.walk(step + 1)
				w.used = w.used[:len(w.used)-1]
				if w.err != nil || w.stop {
					return
				}
			}
			return
		}
		for pos := uint32(0); int(pos) < st.rel.nrows(); pos++ {
			if err := w.spend(); err != nil {
				w.err = err
				return
			}
			if !matchRow(st, st.rel.row(int(pos)), w.env) {
				continue
			}
			w.used = append(w.used, fid(st.pid, pos))
			w.walk(step + 1)
			w.used = w.used[:len(w.used)-1]
			if w.err != nil || w.stop {
				return
			}
		}
	case LNegAtom:
		if cap(w.rowBuf) < len(st.args) {
			w.rowBuf = make([]uint32, len(st.args))
		}
		row := w.rowBuf[:len(st.args)]
		for i := range st.args {
			a := &st.args[i]
			if a.slot < 0 {
				row[i] = a.vid
				continue
			}
			v := w.env[a.slot]
			if v == unboundVid {
				w.err = fmt.Errorf("datalog: unbound variable %s", a.name)
				return
			}
			row[i] = v
		}
		if _, ok := st.rel.findRow(row); !ok {
			w.walk(step + 1)
		}
	case LCmp:
		lv, err := w.evalExprS(st.lit.L)
		if err != nil {
			w.err = err
			return
		}
		rv, err := w.evalExprS(st.lit.R)
		if err != nil {
			w.err = err
			return
		}
		ok, err := compare(st.lit.Op, lv, rv)
		if err != nil {
			w.err = fmt.Errorf("line %d: %w", w.c.r.Line, err)
			return
		}
		if ok {
			w.walk(step + 1)
		}
	case LAssign:
		v, err := w.evalExprS(st.lit.AssignE)
		if err != nil {
			w.err = err
			return
		}
		if st.preBound {
			if Equal(w.iv.val(w.env[st.assignSlot]), v) {
				w.walk(step + 1)
			}
			return
		}
		w.env[st.assignSlot] = w.ev.db.in.intern(v)
		w.walk(step + 1)
	}
}

func (w *walkCtx) emit() {
	c := w.c
	if c.aggLit >= 0 {
		if err := w.recordAgg(); err != nil {
			w.err = err
		}
		return
	}
	if w.buffer != nil {
		w.bufferEmit()
		return
	}
	n, err := w.sc.emitHeads(c, w.env, w.used)
	w.derived += n
	if err != nil {
		w.err = err
		return
	}
	if c.ground {
		// All (constant) heads are now present; no further body match can
		// add anything — stop at the first witness.
		w.stop = true
	}
}

// bufferEmit materializes head rows without inserting them; the partition
// merge applies them in order. Only parallelOK rules reach this path, so no
// existential resolution or aggregation happens here.
func (w *walkCtx) bufferEmit() {
	c := w.c
	pe := pendEmit{used: append([]uint64(nil), w.used...), rows: make([][]uint32, len(c.heads))}
	for hi := range c.heads {
		h := &c.heads[hi]
		row := make([]uint32, len(h.args))
		for i := range h.args {
			a := &h.args[i]
			if a.slot < 0 {
				row[i] = a.vid
				continue
			}
			v := w.env[a.slot]
			if v == unboundVid {
				w.err = fmt.Errorf("line %d: %w", c.r.Line, fmt.Errorf("datalog: unbound variable %s", a.name))
				return
			}
			row[i] = v
		}
		pe.rows[hi] = row
	}
	*w.buffer = append(*w.buffer, pe)
}

// emitHeads inserts every head under the current environment, minting
// labelled nulls for existential variables through the run-wide skolem
// table. Only sequential paths reach the existential branch, which keeps
// null-id minting deterministic.
func (sc *stratumCtx) emitHeads(c *cRule, env []uint32, used []uint64) (int, error) {
	ev := sc.ev
	if len(c.r.Existential) > 0 {
		var b strings.Builder
		b.WriteString(c.skolemPrefix)
		for i, name := range c.frontier {
			v := env[c.frontierSlots[i]]
			if v == unboundVid {
				continue // the old engine skipped unbound head vars here too
			}
			b.WriteString(name)
			b.WriteByte('=')
			b.WriteString(sc.iv.key(v))
			b.WriteByte(';')
		}
		base := b.String()
		for i, x := range c.r.Existential {
			key := base + "!" + x
			null, ok := ev.skolem[key]
			if !ok {
				ev.nullCtr++
				null = NullVal(ev.nullCtr)
				ev.skolem[key] = null
			}
			env[c.existSlots[i]] = ev.db.in.intern(ev.resolve(null))
		}
	}
	var usedCopy []uint64
	copied := false
	added := 0
	for hi := range c.heads {
		h := &c.heads[hi]
		row := make([]uint32, len(h.args))
		for i := range h.args {
			a := &h.args[i]
			if a.slot < 0 {
				row[i] = a.vid
				continue
			}
			v := env[a.slot]
			if v == unboundVid {
				return added, fmt.Errorf("line %d: %w", c.r.Line, fmt.Errorf("datalog: unbound variable %s", a.name))
			}
			row[i] = v
		}
		pos, isNew := h.rel.addRow(ev.db, row)
		if isNew {
			if !copied {
				usedCopy = append([]uint64(nil), used...)
				copied = true
			}
			sc.prov[fid(h.pid, pos)] = derivation{rule: c.ri, body: usedCopy}
			added++
		}
	}
	return added, nil
}

func (w *walkCtx) recordAgg() error {
	c := w.c
	ev := w.ev
	l := &c.r.Body[c.aggLit]

	w.gkeyBuf = w.gkeyBuf[:0]
	for i, s := range c.groupSlots {
		v := w.env[s]
		if v == unboundVid {
			return fmt.Errorf("datalog: line %d: head variable %s unbound at aggregate", c.r.Line, c.groupVars[i])
		}
		w.gkeyBuf = append(w.gkeyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	st := ev.aggState[c.ri]
	g, ok := st[string(w.gkeyBuf)]
	if !ok {
		g = &aggGroup{contrib: make(map[uint32]Val), groupVids: make([]uint32, len(c.groupSlots))}
		var b strings.Builder
		for i, s := range c.groupSlots {
			g.groupVids[i] = w.env[s]
			b.WriteString(w.iv.key(w.env[s]))
			b.WriteByte('|')
		}
		g.sortKey = b.String()
		g.used = append([]uint64(nil), w.used...)
		st[string(w.gkeyBuf)] = g
	}

	cv, err := w.evalExprS(l.Agg.Contrib)
	if err != nil {
		return err
	}
	var contribution Val
	switch l.Agg.Fn {
	case AggCount:
		contribution = Num(1)
	case AggUnion:
		v, err := w.evalExprS(l.Agg.Arg)
		if err != nil {
			return err
		}
		contribution = v
	default:
		v, err := w.evalExprS(l.Agg.Arg)
		if err != nil {
			return err
		}
		if v.k != KNum {
			return fmt.Errorf("datalog: line %d: %s over non-number %s", c.r.Line, l.Agg.Fn, v)
		}
		contribution = v
	}

	ck := ev.db.in.intern(cv)
	if old, ok := g.contrib[ck]; ok {
		if l.Agg.Fn == AggUnion {
			merged := List(append(old.Elems(), contribution)...)
			if !Equal(merged, old) {
				g.contrib[ck] = merged
				g.dirty = true
			}
		} else if Compare(contribution, old) > 0 {
			g.contrib[ck] = contribution
			g.dirty = true
		}
	} else {
		if l.Agg.Fn == AggUnion {
			contribution = List(contribution)
		}
		g.contrib[ck] = contribution
		g.dirty = true
	}
	return nil
}

func (sc *stratumCtx) flushAgg(c *cRule) (int, error) {
	ev := sc.ev
	l := &c.r.Body[c.aggLit]
	st := ev.aggState[c.ri]

	var dirty []*aggGroup
	for _, g := range st {
		if g.dirty {
			dirty = append(dirty, g)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].sortKey < dirty[j].sortKey })

	added := 0
	for _, g := range dirty {
		g.dirty = false
		contrib := make(map[string]Val, len(g.contrib))
		for vid, v := range g.contrib {
			contrib[sc.iv.key(vid)] = v
		}
		agg, err := foldAgg(l.Agg.Fn, contrib)
		if err != nil {
			return added, fmt.Errorf("line %d: %w", c.r.Line, err)
		}
		env := make([]uint32, c.nSlots)
		for i := range env {
			env[i] = unboundVid
		}
		for i, s := range c.groupSlots {
			env[s] = g.groupVids[i]
		}
		switch l.Kind {
		case LAggAssign:
			env[c.aggVarSlot] = ev.db.in.intern(agg)
		case LAggCond:
			menv := make(map[string]Val, len(c.groupVars))
			for i, n := range c.groupVars {
				menv[n] = sc.iv.val(g.groupVids[i])
			}
			rhs, err := evalExpr(l.R, menv)
			if err != nil {
				return added, err
			}
			ok, err := compare(l.Op, agg, rhs)
			if err != nil {
				return added, fmt.Errorf("line %d: %w", c.r.Line, err)
			}
			if !ok || g.emitted {
				continue
			}
			g.emitted = true
		}
		n, err := sc.emitHeads(c, env, g.used)
		added += n
		if err != nil {
			return added, err
		}
	}
	return added, nil
}

func (sc *stratumCtx) evalRule(c *cRule, restrictLi int, lo, hi uint32) (int, error) {
	w := walkCtx{
		ev: sc.ev, sc: sc, c: c,
		restrictLi: restrictLi, lo: lo, hi: hi,
		env: make([]uint32, c.nSlots),
		iv:  &sc.iv,
	}
	for i := range w.env {
		w.env[i] = unboundVid
	}
	w.walk(0)
	if w.err != nil {
		return w.derived, w.err
	}
	if c.aggLit >= 0 {
		n, err := sc.flushAgg(c)
		w.derived += n
		if err != nil {
			return w.derived, err
		}
	}
	return w.derived, nil
}

// evalRuleAuto runs one rule pass, applying the cheap static short-circuits
// (empty required relation, ground heads already present) and escalating to
// partitioned parallel evaluation when the candidate set is large enough.
func (sc *stratumCtx) evalRuleAuto(c *cRule, restrictLi int, lo, hi uint32) (int, error) {
	if c.pureAtoms {
		for i := range c.steps {
			st := &c.steps[i]
			if st.kind == LAtom && st.li != restrictLi && st.rel.nrows() == 0 && !c.headPreds[st.pred] {
				return 0, nil // a required relation is empty: no body match exists
			}
		}
	}
	if c.ground {
		all := true
		for i := range c.heads {
			if _, ok := c.heads[i].rel.findRow(c.heads[i].groundRow); !ok {
				all = false
				break
			}
		}
		if all {
			return 0, nil // every (constant) head already derived
		}
	}
	ev := sc.ev
	if ev.workers > 1 && c.parallelOK && len(c.steps) > 0 {
		st0 := &c.steps[0]
		if st0.kind == LAtom && st0.mask == 0 {
			var clo, chi uint32
			if st0.li == restrictLi {
				clo, chi = lo, hi
			} else {
				clo, chi = 0, uint32(st0.rel.nrows())
			}
			if int(chi)-int(clo) >= parallelCandidateMin {
				return sc.evalRuleParallel(c, restrictLi, lo, hi, clo, chi)
			}
		}
	}
	return sc.evalRule(c, restrictLi, lo, hi)
}

// chunkOut is one partition's buffered output.
type chunkOut struct {
	emits []pendEmit
	err   error
	done  bool
}

// evalRuleParallel evaluates one rule by partitioning the candidate rows of
// its first step across workers. Partitions buffer their emissions; the
// merge applies them in partition order, which reproduces the sequential
// engine's insertion order exactly: the rule's heads are disjoint from its
// body (parallelOK), so deferring the inserts cannot change any partition's
// matches.
func (sc *stratumCtx) evalRuleParallel(c *cRule, restrictLi int, lo, hi, clo, chi uint32) (int, error) {
	ev := sc.ev
	st0 := &c.steps[0]
	bounds := pool.ChunkBounds(int(chi - clo))
	outs := make([]chunkOut, len(bounds))
	pool.ForEach(ev.ctx, ev.workers, len(bounds), func(ci int) error {
		co := &outs[ci]
		liv := iview{in: ev.db.in}
		w := walkCtx{
			ev: ev, sc: sc, c: c,
			restrictLi: restrictLi, lo: lo, hi: hi,
			env:    make([]uint32, c.nSlots),
			iv:     &liv,
			buffer: &co.emits,
		}
		for i := range w.env {
			w.env[i] = unboundVid
		}
		b := bounds[ci]
		for pos := clo + uint32(b[0]); pos < clo+uint32(b[1]); pos++ {
			if err := w.spend(); err != nil {
				co.err = err
				break
			}
			if !matchRow(st0, st0.rel.row(int(pos)), w.env) {
				continue
			}
			w.used = append(w.used[:0], fid(st0.pid, pos))
			w.walk(1)
			if w.err != nil {
				co.err = w.err
				break
			}
		}
		co.done = true
		return nil
	})

	derived := 0
	for ci := range outs {
		co := &outs[ci]
		if !co.done {
			// Only a cancelled context leaves a partition unattempted.
			if err := ev.ctxErr(); err != nil {
				return derived, err
			}
			return derived, fmt.Errorf("datalog: internal: partition %d not evaluated", ci)
		}
		for _, pe := range co.emits {
			for hi2, row := range pe.rows {
				h := &c.heads[hi2]
				pos, isNew := h.rel.addRow(ev.db, row)
				if isNew {
					sc.prov[fid(h.pid, pos)] = derivation{rule: c.ri, body: pe.used}
					derived++
				}
			}
		}
		if co.err != nil {
			// The erroring partition's pre-error emissions are merged above,
			// matching the sequential engine's state at its first error.
			return derived, co.err
		}
	}
	return derived, nil
}

// fixpoint saturates one stratum by semi-naive iteration. The delta for a
// predicate is a contiguous row range — every insert during a round appends
// in derivation order, and while this stratum runs no other stratum may
// write its head relations (the level scheduler keeps write sets disjoint).
func (sc *stratumCtx) fixpoint(stratum int, rules []*cRule) error {
	ev := sc.ev
	headRels := make(map[string]*relation)
	for _, c := range rules {
		for i := range c.heads {
			headRels[c.heads[i].pred] = c.heads[i].rel
		}
	}
	preds := make([]string, 0, len(headRels))
	for p := range headRels {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	snap := func() map[string]uint32 {
		m := make(map[string]uint32, len(preds))
		for _, p := range preds {
			m[p] = uint32(headRels[p].nrows())
		}
		return m
	}

	before := snap()
	derived := 0
	for _, c := range rules {
		n, err := sc.evalRuleAuto(c, -1, 0, 0)
		derived += n
		if err != nil {
			return err
		}
	}
	after := snap()
	delta := make(map[string][2]uint32)
	for _, p := range preds {
		if after[p] > before[p] {
			delta[p] = [2]uint32{before[p], after[p]}
		}
	}
	ev.rounds.Add(1)
	if ev.opt.Trace != nil {
		fmt.Fprintf(ev.opt.Trace, "stratum %d seed: %d rules, %d facts derived, db %d\n",
			stratum, len(rules), derived, ev.db.Len())
	}
	if err := ev.chargeMemory(); err != nil {
		return err
	}

	for round := 0; len(delta) > 0; round++ {
		if round > ev.opt.MaxRounds {
			return fmt.Errorf("datalog: stratum %d exceeded %d rounds", stratum, ev.opt.MaxRounds)
		}
		if err := ev.ctxErr(); err != nil {
			return err
		}
		if ev.db.Len() > ev.opt.MaxFacts {
			return fmt.Errorf("datalog: database exceeded %d facts (runaway chase?)", ev.opt.MaxFacts)
		}
		if err := ev.chargeMemory(); err != nil {
			return err
		}
		before = snap()
		roundDerived := 0
		for _, c := range rules {
			for li := range c.r.Body {
				l := &c.r.Body[li]
				if l.Kind != LAtom {
					continue
				}
				if ev.strata[l.Atom.Pred] != stratum {
					continue
				}
				rng, ok := delta[l.Atom.Pred]
				if !ok {
					continue
				}
				n, err := sc.evalRuleAuto(c, li, rng[0], rng[1])
				roundDerived += n
				if err != nil {
					return err
				}
			}
		}
		after = snap()
		next := make(map[string][2]uint32)
		for _, p := range preds {
			if after[p] > before[p] {
				next[p] = [2]uint32{before[p], after[p]}
			}
		}
		ev.rounds.Add(1)
		if ev.opt.Trace != nil {
			fmt.Fprintf(ev.opt.Trace, "stratum %d round %d: %d facts derived, db %d\n",
				stratum, round+1, roundDerived, ev.db.Len())
		}
		delta = next
	}
	return nil
}

// runStrata evaluates every stratum. Sequential mode (one worker, or
// tracing) runs them in ascending order exactly like the old engine.
// Parallel mode schedules them by dependency level: two strata share a
// level only when their read and write predicate sets are fully disjoint —
// flow, anti and output dependences all force an ordering edge — so strata
// within a level commute and the merged result is bit-identical to the
// ascending sequential run. Existential strata additionally order among
// themselves so labelled-null ids mint in the sequential order.
func (ev *evaluator) runStrata() error {
	ruleStratum := make([]int, len(ev.prog.Rules))
	ev.aggState = make([]map[string]*aggGroup, len(ev.prog.Rules))
	for i := range ev.prog.Rules {
		r := &ev.prog.Rules[i]
		if r.IsEGD || len(r.Body) == 0 {
			ruleStratum[i] = -1
			continue
		}
		ruleStratum[i] = ev.strata[r.Heads[0].Pred]
		ev.aggState[i] = make(map[string]*aggGroup)
	}
	ev.resolvePlan()
	byStratum := make([][]*cRule, ev.nStrata)
	for i, s := range ruleStratum {
		if s >= 0 {
			byStratum[s] = append(byStratum[s], ev.crules[i])
		}
	}
	var active []int
	for s := 0; s < ev.nStrata; s++ {
		if len(byStratum[s]) > 0 {
			active = append(active, s)
		}
	}

	if ev.workers <= 1 || ev.opt.Trace != nil {
		for _, s := range active {
			sc := &stratumCtx{ev: ev, iv: iview{in: ev.db.in}, prov: ev.prov}
			if err := sc.fixpoint(s, byStratum[s]); err != nil {
				return err
			}
		}
		return nil
	}

	reads := make(map[int]map[string]bool, len(active))
	writes := make(map[int]map[string]bool, len(active))
	exist := make(map[int]bool, len(active))
	for _, s := range active {
		rs, ws := map[string]bool{}, map[string]bool{}
		for _, c := range byStratum[s] {
			for _, l := range c.r.Body {
				if l.Kind == LAtom || l.Kind == LNegAtom {
					rs[l.Atom.Pred] = true
				}
			}
			for _, h := range c.r.Heads {
				ws[h.Pred] = true
			}
			if len(c.r.Existential) > 0 {
				exist[s] = true
			}
		}
		reads[s], writes[s] = rs, ws
	}
	overlap := func(a, b map[string]bool) bool {
		if len(b) < len(a) {
			a, b = b, a
		}
		for p := range a {
			if b[p] {
				return true
			}
		}
		return false
	}
	level := make(map[int]int, len(active))
	maxLevel := 0
	for i, t := range active {
		lv := 0
		for _, s := range active[:i] {
			dep := overlap(writes[s], reads[t]) ||
				overlap(writes[s], writes[t]) ||
				overlap(reads[s], writes[t]) ||
				(exist[s] && exist[t]) // null minting must stay in stratum order
			if dep && level[s]+1 > lv {
				lv = level[s] + 1
			}
		}
		level[t] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}

	for lv := 0; lv <= maxLevel; lv++ {
		var group []int
		for _, s := range active {
			if level[s] == lv {
				group = append(group, s)
			}
		}
		if len(group) == 0 {
			continue
		}
		var seqS, parS []int
		for _, s := range group {
			if exist[s] {
				seqS = append(seqS, s)
			} else {
				parS = append(parS, s)
			}
		}
		if len(parS) < 2 {
			seqS = append(seqS, parS...)
			sort.Ints(seqS)
			parS = nil
		}

		ctxs := make(map[int]*stratumCtx, len(group))
		for _, s := range group {
			ctxs[s] = &stratumCtx{ev: ev, iv: iview{in: ev.db.in}, prov: make(map[uint64]derivation)}
		}
		lvlErr := error(nil)
		lvlErrStratum := int(^uint(0) >> 1)
		record := func(s int, err error) {
			if err != nil && s < lvlErrStratum {
				lvlErr, lvlErrStratum = err, s
			}
		}
		if len(parS) > 0 {
			ranP := make([]bool, len(parS))
			errsP := make([]error, len(parS))
			pool.ForEach(ev.ctx, ev.workers, len(parS), func(i int) error {
				ranP[i] = true
				errsP[i] = ctxs[parS[i]].fixpoint(parS[i], byStratum[parS[i]])
				return nil
			})
			for i, s := range parS {
				if !ranP[i] {
					record(s, ev.ctxErr())
					continue
				}
				record(s, errsP[i])
			}
			ev.parStrata += len(parS)
		}
		for _, s := range seqS {
			if err := ctxs[s].fixpoint(s, byStratum[s]); err != nil {
				record(s, err)
				break
			}
		}
		// Fact ids are globally unique across strata, so the merge order is
		// immaterial; ascending keeps it visibly deterministic.
		sort.Ints(group)
		for _, s := range group {
			for k, d := range ctxs[s].prov {
				ev.prov[k] = d
			}
		}
		if lvlErr != nil {
			return lvlErr
		}
	}
	return nil
}

func (ev *evaluator) chargeMemory() error {
	b := ev.db.EstimatedBytes()
	ev.chargeMu.Lock()
	defer ev.chargeMu.Unlock()
	if b > ev.peak {
		ev.peak = b
	}
	if ev.opt.Governor == nil {
		return nil
	}
	if b <= ev.charged {
		return nil
	}
	//governcharge:ok incremental charge; RunContext defers ReleaseBytes(ev.charged) for the whole run
	if err := ev.opt.Governor.ReserveBytes(b - ev.charged); err != nil {
		return fmt.Errorf("datalog: database estimated at %d bytes: %w", b, err)
	}
	ev.charged = b
	return nil
}

// runEGDs applies every EGD over the saturated database, unifying labelled
// nulls and collecting violations between distinct constants. EGDs run on
// the decoded-tuple path: they fire rarely, on small saturated relations,
// and the map-environment walk is the exact old-engine semantics.
func (ev *evaluator) runEGDs() (unified bool, viols []Violation, err error) {
	factCache := make(map[string][]Tuple)
	factsFor := func(pred string) []Tuple {
		if fs, ok := factCache[pred]; ok {
			return fs
		}
		fs := ev.db.insertionFacts(pred)
		factCache[pred] = fs
		return fs
	}
	for ri := range ev.prog.Rules {
		r := &ev.prog.Rules[ri]
		if !r.IsEGD {
			continue
		}
		if err := ev.ctxErr(); err != nil {
			return false, nil, err
		}
		env := make(map[string]Val)
		var evalErr error
		order := ev.orders[ri]
		var walk func(step int)
		walk = func(step int) {
			if evalErr != nil {
				return
			}
			if step == len(order) {
				l, errL := termVal(r.EGDL, env)
				if errL != nil {
					evalErr = errL
					return
				}
				rv, errR := termVal(r.EGDR, env)
				if errR != nil {
					evalErr = errR
					return
				}
				l, rv = ev.resolve(l), ev.resolve(rv)
				if Equal(l, rv) {
					return
				}
				switch {
				case l.k == KNull:
					ev.subst[l.id] = rv
					unified = true
				case rv.k == KNull:
					ev.subst[rv.id] = l
					unified = true
				default:
					viols = append(viols, Violation{Rule: r.String(), A: l, B: rv})
				}
				return
			}
			lit := &r.Body[order[step]]
			switch lit.Kind {
			case LAtom:
				for _, f := range factsFor(lit.Atom.Pred) {
					undo, ok := match(lit.Atom, f, env)
					if !ok {
						continue
					}
					walk(step + 1)
					undoBind(env, undo)
					if evalErr != nil {
						return
					}
				}
			case LNegAtom:
				t := make(Tuple, len(lit.Atom.Args))
				for i, a := range lit.Atom.Args {
					v, err := termVal(a, env)
					if err != nil {
						evalErr = err
						return
					}
					t[i] = v
				}
				if !ev.db.Has(lit.Atom.Pred, t...) {
					walk(step + 1)
				}
			case LCmp:
				lv, errL := evalExpr(lit.L, env)
				if errL != nil {
					evalErr = errL
					return
				}
				rv, errR := evalExpr(lit.R, env)
				if errR != nil {
					evalErr = errR
					return
				}
				ok, errC := compare(lit.Op, lv, rv)
				if errC != nil {
					evalErr = errC
					return
				}
				if ok {
					walk(step + 1)
				}
			case LAssign:
				v, errA := evalExpr(lit.AssignE, env)
				if errA != nil {
					evalErr = errA
					return
				}
				env[lit.Var] = v
				walk(step + 1)
				delete(env, lit.Var)
			default:
				evalErr = fmt.Errorf("datalog: aggregates are not allowed in EGD bodies")
			}
		}
		walk(0)
		if evalErr != nil {
			return false, nil, evalErr
		}
	}
	return unified, viols, nil
}

// resolve chases the null-substitution map, guarding against cycles, and
// resolves list elements recursively.
func (ev *evaluator) resolve(v Val) Val {
	for i := 0; v.k == KNull; i++ {
		next, ok := ev.subst[v.id]
		if !ok {
			return v
		}
		v = next
		if i > len(ev.subst) {
			return v
		}
	}
	if v.k == KList {
		elems := make([]Val, len(v.l))
		for i, e := range v.l {
			elems[i] = ev.resolve(e)
		}
		return List(elems...)
	}
	return v
}

// applySubst rewrites the database under the current null substitution.
// The rewrite walks predicates in sorted order and rows in insertion order,
// remapping fact ids as rows merge; provenance keys are rebuilt with a
// deterministic (ascending-id, first-wins) tie-break where two old facts
// collapse into one.
func (ev *evaluator) applySubst() {
	old := ev.db
	nd := &Database{in: old.in, rels: make(map[string]*relation, len(old.rels))}
	iv := iview{in: old.in}
	vidMemo := make(map[uint32]uint32)
	resolveVid := func(v uint32) uint32 {
		if nv, ok := vidMemo[v]; ok {
			return nv
		}
		nv := old.in.intern(ev.resolve(iv.val(v)))
		vidMemo[v] = nv
		return nv
	}
	remap := make(map[uint64]uint64)
	for _, pred := range old.predsInsertionSafe() {
		r := old.rels[pred]
		pid := ev.pid(pred)
		nr := nd.rel(pred)
		for pos := 0; pos < r.nrows(); pos++ {
			row := r.row(pos)
			nrow := make([]uint32, len(row))
			for i, v := range row {
				nrow[i] = resolveVid(v)
			}
			npos, _ := nr.addRow(nd, nrow)
			remap[fid(pid, uint32(pos))] = fid(pid, npos)
		}
	}
	ev.db = nd

	keys := make([]uint64, 0, len(ev.prov))
	for k := range ev.prov {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	np := make(map[uint64]derivation, len(ev.prov))
	for _, k := range keys {
		d := ev.prov[k]
		nk := k
		if r, ok := remap[k]; ok {
			nk = r
		}
		nb := make([]uint64, len(d.body))
		for i, f := range d.body {
			if r, ok := remap[f]; ok {
				nb[i] = r
			} else {
				nb[i] = f
			}
		}
		if _, exists := np[nk]; !exists {
			np[nk] = derivation{rule: d.rule, body: nb}
		}
	}
	ev.prov = np
}

// Run evaluates the program over the extensional database and returns the
// derived result. The input database is not modified.
func Run(p *Program, edb *Database, opt *Options) (*Result, error) {
	return RunContext(context.Background(), p, edb, opt)
}

// RunContext is Run with cancellation: the context is polled at round
// boundaries and every ctxPollMask match attempts, so a cancelled or
// deadline-expired context aborts the evaluation within a bounded amount of
// join work.
func RunContext(ctx context.Context, p *Program, edb *Database, opt *Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	strata, n, err := stratify(p)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{
		ctx:     ctx,
		prog:    p,
		opt:     opt.withDefaults(),
		db:      edb.clone(),
		prov:    make(map[uint64]derivation),
		strata:  strata,
		nStrata: n,
		nullCtr: edb.maxNullID(),
		skolem:  make(map[string]Val),
		subst:   make(map[uint64]Val),
		predIDs: make(map[string]uint32),
	}
	ev.workers = ev.opt.Workers
	if ev.workers <= 0 {
		ev.workers = runtime.GOMAXPROCS(0)
	}
	if ev.opt.Governor != nil {
		defer func() { ev.opt.Governor.ReleaseBytes(ev.charged) }()
	}
	if err := ev.chargeMemory(); err != nil {
		return nil, err
	}
	ev.orders = make([][]int, len(p.Rules))
	for i := range p.Rules {
		ord, err := literalOrder(&p.Rules[i])
		if err != nil {
			return nil, err
		}
		ev.orders[i] = ord
	}
	ev.crules = make([]*cRule, len(p.Rules))
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.IsEGD || len(r.Body) == 0 {
			continue
		}
		ev.crules[i] = ev.compileRule(i)
	}

	baseLen := ev.db.Len()
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.IsEGD || len(r.Body) > 0 {
			continue
		}
		for _, h := range r.Heads {
			t := make(Tuple, len(h.Args))
			for j, a := range h.Args {
				t[j] = a.Val
			}
			ev.db.addTuple(h.Pred, t)
		}
	}

	var violations []Violation
	type violKey struct {
		sid  int
		a, b uint32
	}
	seenViol := make(map[violKey]bool)
	ruleSID := make(map[string]int)
	for pass := 0; ; pass++ {
		if pass > ev.opt.MaxRounds {
			return nil, fmt.Errorf("datalog: EGD unification did not converge")
		}
		if err := ev.ctxErr(); err != nil {
			return nil, err
		}
		if err := ev.runStrata(); err != nil {
			return nil, err
		}
		ev.egdPasses++
		unified, viols, err := ev.runEGDs()
		if err != nil {
			return nil, err
		}
		for _, v := range viols {
			sid, ok := ruleSID[v.Rule]
			if !ok {
				sid = len(ruleSID)
				ruleSID[v.Rule] = sid
			}
			k := violKey{sid: sid, a: ev.db.in.intern(v.A), b: ev.db.in.intern(v.B)}
			if !seenViol[k] {
				seenViol[k] = true
				violations = append(violations, v)
			}
		}
		if !unified {
			break
		}
		ev.applySubst()
	}
	return &Result{
		db:         ev.db,
		prov:       ev.prov,
		rules:      p.Rules,
		Violations: violations,
		pids:       ev.predIDs,
		preds:      ev.predNames,
		Stats: EvalStats{
			Rounds:         int(ev.rounds.Load()),
			Strata:         ev.nStrata,
			ParallelStrata: ev.parStrata,
			DerivedFacts:   ev.db.Len() - baseLen,
			MatchAttempts:  ev.work.Load(),
			MaxWork:        ev.opt.MaxWork,
			PeakBytes:      ev.peak,
			EGDPasses:      ev.egdPasses,
			Workers:        ev.workers,
		},
	}, nil
}
