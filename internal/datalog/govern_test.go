package datalog

import (
	"errors"
	"testing"

	"vadasa/internal/govern"
)

// chainProgram derives a long chain: next(i, i+1) facts drive
// reach(X,Y) transitively, growing the database by O(n^2) facts.
func chainProgram(t *testing.T, n int) (*Program, *Database) {
	t.Helper()
	p, err := Parse(`
		reach(X,Y) :- next(X,Y).
		reach(X,Z) :- reach(X,Y), next(Y,Z).
	`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := NewDatabase()
	for i := 0; i < n; i++ {
		db.Add("next", Num(float64(i)), Num(float64(i+1)))
	}
	return p, db
}

// An evaluation whose database outgrows the byte budget aborts with a
// typed govern.ErrBudgetExceeded instead of exhausting memory.
func TestGovernorAbortsOversizedChase(t *testing.T) {
	p, db := chainProgram(t, 60) // ~1800 derived facts, far over 4 KiB
	g := govern.New("evaluation", govern.Limits{MaxBytes: 4 << 10})
	_, err := Run(p, db, &Options{Governor: g})
	var ebe *govern.ErrBudgetExceeded
	if !errors.As(err, &ebe) {
		t.Fatalf("err = %v, want *govern.ErrBudgetExceeded", err)
	}
	if ebe.Resource != govern.Memory {
		t.Fatalf("tripped resource = %s, want memory", ebe.Resource)
	}
	// The aborted run must have refunded everything it reserved.
	if got := g.Used(govern.Memory); got != 0 {
		t.Fatalf("governor still holds %d bytes after abort", got)
	}
}

// A run that fits its budget succeeds, and its reservation is released
// on return.
func TestGovernorReleasedAfterRun(t *testing.T) {
	p, db := chainProgram(t, 10)
	g := govern.New("evaluation", govern.Limits{MaxBytes: 10 << 20})
	res, err := Run(p, db, &Options{Governor: g})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Has("reach", Num(0), Num(10)) {
		t.Fatal("chase did not derive reach(0,10)")
	}
	if got := g.Used(govern.Memory); got != 0 {
		t.Fatalf("governor still holds %d bytes after run", got)
	}
}

func TestEstimatedBytesTracksInserts(t *testing.T) {
	db := NewDatabase()
	if db.EstimatedBytes() != 0 {
		t.Fatalf("empty database estimates %d bytes", db.EstimatedBytes())
	}
	db.Add("p", Str("hello"), Num(1))
	one := db.EstimatedBytes()
	if one <= 0 {
		t.Fatalf("estimate after insert = %d", one)
	}
	db.Add("p", Str("hello"), Num(1)) // duplicate: no growth
	if db.EstimatedBytes() != one {
		t.Fatalf("duplicate insert changed estimate: %d -> %d", one, db.EstimatedBytes())
	}
	db.Add("p", Str("world"), Num(2))
	if db.EstimatedBytes() <= one {
		t.Fatalf("estimate did not grow: %d -> %d", one, db.EstimatedBytes())
	}
	if c := db.clone(); c.EstimatedBytes() != db.EstimatedBytes() {
		t.Fatalf("clone estimate %d != original %d", c.EstimatedBytes(), db.EstimatedBytes())
	}
}
