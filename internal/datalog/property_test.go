package datalog

import (
	"fmt"
	"math/rand"
	"testing"
)

// Transitive closure computed by the engine must equal BFS reachability on
// random digraphs.
func TestClosureMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	prog := MustParse(`
		path(X,Y) :- edge(X,Y).
		path(X,Z) :- path(X,Y), edge(Y,Z).
	`)
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(8)
		edges := make(map[int]map[int]bool)
		edb := NewDatabase()
		m := 1 + rng.Intn(2*n)
		for e := 0; e < m; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if edges[a] == nil {
				edges[a] = make(map[int]bool)
			}
			edges[a][b] = true
			edb.Add("edge", Num(float64(a)), Num(float64(b)))
		}
		res, err := Run(prog, edb, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// BFS reachability from every node.
		for start := 0; start < n; start++ {
			reach := make(map[int]bool)
			queue := []int{start}
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for w := range edges[v] {
					if !reach[w] {
						reach[w] = true
						queue = append(queue, w)
					}
				}
			}
			for target := 0; target < n; target++ {
				want := reach[target]
				got := res.Has("path", Num(float64(start)), Num(float64(target)))
				if got != want {
					t.Fatalf("trial %d: path(%d,%d) = %v, want %v",
						trial, start, target, got, want)
				}
			}
		}
	}
}

// Engine msum grouping must match a reference map-based aggregation on
// random EAV facts, including contributor dedup.
func TestAggregationMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	prog := MustParse(`
		total(G,S) :- val(G,I,W), S = msum(W,[I]).
		cnt(G,C) :- val(G,I,W), C = mcount([I]).
	`)
	for trial := 0; trial < 15; trial++ {
		edb := NewDatabase()
		type key struct {
			g string
			i int
		}
		best := make(map[key]float64)
		m := 5 + rng.Intn(40)
		for e := 0; e < m; e++ {
			g := fmt.Sprintf("g%d", rng.Intn(4))
			i := rng.Intn(10)
			w := float64(rng.Intn(50))
			edb.Add("val", Str(g), Num(float64(i)), Num(w))
			k := key{g, i}
			if w > best[k] || best[k] == 0 {
				// Monotonic semantics keeps the max contribution per
				// contributor; zero entries need the comparison too.
				if old, ok := best[k]; !ok || w > old {
					best[k] = w
				}
			}
		}
		sums := make(map[string]float64)
		counts := make(map[string]int)
		for k, w := range best {
			sums[k.g] += w
			counts[k.g]++
		}
		res, err := Run(prog, edb, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, f := range res.Facts("total") {
			g := f[0].StrVal()
			if f[1].NumVal() != sums[g] {
				t.Fatalf("trial %d: total(%s) = %g, want %g", trial, g, f[1].NumVal(), sums[g])
			}
		}
		for _, f := range res.Facts("cnt") {
			g := f[0].StrVal()
			if int(f[1].NumVal()) != counts[g] {
				t.Fatalf("trial %d: cnt(%s) = %g, want %d", trial, g, f[1].NumVal(), counts[g])
			}
		}
	}
}

// The derived database must be a model: every rule instance with a
// satisfied body has its head satisfied (checked on the control program).
func TestControlClosureIsModel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	prog := MustParse(`
		ctr(X,X) :- own(X,Y,W).
		rel(X,Y) :- ctr(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.
		ctr(X,Y) :- rel(X,Y).
	`)
	for trial := 0; trial < 10; trial++ {
		edb := NewDatabase()
		n := 5 + rng.Intn(6)
		type edge struct {
			a, b int
			w    float64
		}
		var edges []edge
		for e := 0; e < n*2; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			w := 0.1 + 0.5*rng.Float64()
			edges = append(edges, edge{a, b, w})
			edb.Add("own", Num(float64(a)), Num(float64(b)), Num(w))
		}
		res, err := Run(prog, edb, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Model check rule 2: for each (X,Y), if the aggregated ownership
		// of Y over contributors Z with ctr(X,Z) exceeds 0.5, rel(X,Y)
		// must hold. Under the monotonic contributor semantics a
		// contributor Z with several own(Z,Y,·) facts counts once, with
		// its maximal share — the reference mirrors that.
		maxShare := make(map[[2]int]float64)
		for _, e := range edges {
			k := [2]int{e.a, e.b}
			if e.w > maxShare[k] {
				maxShare[k] = e.w
			}
		}
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				sum := 0.0
				for k, w := range maxShare {
					if k[1] != y {
						continue
					}
					if res.Has("ctr", Num(float64(x)), Num(float64(k[0]))) {
						sum += w
					}
				}
				if sum > 0.5 && !res.Has("rel", Num(float64(x)), Num(float64(y))) && x != y {
					t.Fatalf("trial %d: model check failed: rel(%d,%d) missing with joint %g",
						trial, x, y, sum)
				}
			}
		}
	}
}
