package datalog

import (
	"fmt"
	"sort"
)

// This file is the plan layer of the evaluator: each rule is compiled once
// per run into a cRule — variables become dense env slots, constants become
// interned ids, and every body atom gets a join-index selection computed
// from which of its columns are statically bound at its position in the
// literal order. The walk engine (engine.go) then runs entirely on uint32
// ids: no key strings, no map environments, no per-candidate allocation.

// cArg is one compiled atom argument: an interned constant or an env slot.
type cArg struct {
	slot int    // -1 for constants
	vid  uint32 // interned constant id when slot == -1
	bind bool   // variable occurrence that binds its slot (vs. checks it)
	name string // variable name, for seed-identical error messages
}

// cStep is one body literal in evaluation order. Atom steps carry the
// statically selected join index; rel/idx are resolved at the start of each
// strata pass (applySubst replaces the database between passes).
type cStep struct {
	kind LitKind
	li   int // index into r.Body
	lit  *Literal

	// LAtom / LNegAtom:
	pred string
	pid  uint32
	args []cArg
	// mask has bit i set when column i is bound before this step (a
	// constant or an already-bound variable) — the join-index selection
	// rule. Columns ≥ 64 are treated as unbound. Intra-atom repeated
	// variables do not contribute: their constraint is row-internal and
	// cannot be probed.
	mask   uint64
	nBound int

	// LAssign:
	assignSlot int
	preBound   bool // slot statically bound before this step: compare, don't bind

	// resolved per strata pass:
	rel *relation
	idx *joinIndex
}

// cHead is one compiled rule head.
type cHead struct {
	pred      string
	pid       uint32
	args      []cArg
	groundRow []uint32 // non-nil when every argument is a constant
	rel       *relation
}

// cRule is one compiled rule. EGD rules and fact rules are not compiled
// (they run on slower, simpler paths).
type cRule struct {
	ri     int
	r      *Rule
	order  []int
	nSlots int
	slotOf map[string]int

	steps  []cStep // in evaluation order, aggregate literal excluded
	aggLit int     // body index of the aggregate literal, -1 if none
	heads  []cHead

	// skolem/emission metadata
	skolemPrefix  string // "r<ri>|"
	frontier      []string
	frontierSlots []int
	existSlots    []int // env slots of r.Existential, in order

	// aggregation metadata
	groupVars  []string
	groupSlots []int
	aggVarSlot int // slot of the LAggAssign result variable, -1 otherwise

	// optimization eligibility
	ground     bool // all-constant heads, pure-atom body: first-witness early stop
	pureAtoms  bool // body is only (neg)atoms: empty-relation skip cannot hide errors
	parallelOK bool // no aggregate/existential, heads disjoint from body: delta partitioning
	headPreds  map[string]bool
}

// compileRule lowers one rule onto the slot/vid plane. Constants are
// interned into the run database's interner, which is shared across
// applySubst rewrites, so the compiled form stays valid for the whole run.
func (ev *evaluator) compileRule(ri int) *cRule {
	r := &ev.prog.Rules[ri]
	order := ev.orders[ri]
	c := &cRule{
		ri:           ri,
		r:            r,
		order:        order,
		slotOf:       make(map[string]int),
		aggLit:       -1,
		aggVarSlot:   -1,
		skolemPrefix: fmt.Sprintf("r%d|", ri),
		headPreds:    make(map[string]bool),
	}
	slot := func(name string) int {
		s, ok := c.slotOf[name]
		if !ok {
			s = c.nSlots
			c.slotOf[name] = s
			c.nSlots++
		}
		return s
	}
	// Pre-allocate slots for every variable the rule can mention, so that
	// expression evaluation can distinguish "unbound" from "unknown".
	var exprSlots func(e Expr)
	exprSlots = func(e Expr) {
		if e == nil {
			return
		}
		set := make(map[string]bool)
		e.vars(set)
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			slot(n)
		}
	}
	for _, l := range r.Body {
		switch l.Kind {
		case LAtom, LNegAtom:
			for _, t := range l.Atom.Args {
				if t.Kind == TVar {
					slot(t.Name)
				}
			}
		case LCmp:
			exprSlots(l.L)
			exprSlots(l.R)
		case LAssign:
			slot(l.Var)
			exprSlots(l.AssignE)
		case LAggAssign, LAggCond:
			if l.Kind == LAggAssign {
				slot(l.Var)
			}
			exprSlots(l.R)
			if l.Agg != nil {
				exprSlots(l.Agg.Arg)
				exprSlots(l.Agg.Contrib)
			}
		}
	}
	for _, h := range r.Heads {
		for _, t := range h.Args {
			if t.Kind == TVar {
				slot(t.Name)
			}
		}
	}

	for i, l := range r.Body {
		if l.Kind == LAggAssign || l.Kind == LAggCond {
			c.aggLit = i
			if l.Kind == LAggAssign {
				c.aggVarSlot = c.slotOf[l.Var]
			}
		}
	}

	// Walk the literal order simulating boundness, mirroring exactly what
	// the map-env engine bound at each step.
	bound := make(map[string]bool)
	for _, li := range order {
		l := &r.Body[li]
		if li == c.aggLit {
			break // the aggregate is always last; the walk stops before it
		}
		st := cStep{kind: l.Kind, li: li, lit: l}
		switch l.Kind {
		case LAtom, LNegAtom:
			st.pred = l.Atom.Pred
			st.pid = ev.pid(l.Atom.Pred)
			st.args = make([]cArg, len(l.Atom.Args))
			intra := make(map[string]bool)
			for i, t := range l.Atom.Args {
				if t.Kind == TConst {
					st.args[i] = cArg{slot: -1, vid: ev.db.in.intern(t.Val)}
					if i < 64 {
						st.mask |= 1 << uint(i)
						st.nBound++
					}
					continue
				}
				a := cArg{slot: c.slotOf[t.Name], name: t.Name}
				if bound[t.Name] {
					if i < 64 {
						st.mask |= 1 << uint(i)
						st.nBound++
					}
				} else if intra[t.Name] {
					// Row-internal equality: checkable, not probeable.
				} else {
					a.bind = true
					intra[t.Name] = true
				}
				st.args[i] = a
			}
			if l.Kind == LAtom {
				for _, t := range l.Atom.Args {
					if t.Kind == TVar {
						bound[t.Name] = true
					}
				}
			} else {
				// Negated atoms bind nothing; their args are ground lookups.
				st.mask, st.nBound = 0, 0
				for i := range st.args {
					st.args[i].bind = false
				}
			}
		case LAssign:
			st.assignSlot = c.slotOf[l.Var]
			st.preBound = bound[l.Var]
			bound[l.Var] = true
		}
		c.steps = append(c.steps, st)
	}

	for _, h := range r.Heads {
		ch := cHead{pred: h.Pred, pid: ev.pid(h.Pred), args: make([]cArg, len(h.Args))}
		allConst := true
		for i, t := range h.Args {
			if t.Kind == TConst {
				ch.args[i] = cArg{slot: -1, vid: ev.db.in.intern(t.Val)}
			} else {
				ch.args[i] = cArg{slot: c.slotOf[t.Name], name: t.Name}
				allConst = false
			}
		}
		if allConst {
			ch.groundRow = make([]uint32, len(ch.args))
			for i, a := range ch.args {
				ch.groundRow[i] = a.vid
			}
		}
		c.heads = append(c.heads, ch)
		c.headPreds[h.Pred] = true
	}

	ex := make(map[string]bool, len(r.Existential))
	for _, x := range r.Existential {
		ex[x] = true
		c.existSlots = append(c.existSlots, c.slotOf[x])
	}
	// Skolem frontier: every bound head-variable occurrence, sorted with
	// duplicates — byte-compatible with the seed engine's key building.
	for _, h := range r.Heads {
		for _, t := range h.Args {
			if t.Kind == TVar && !ex[t.Name] {
				c.frontier = append(c.frontier, t.Name)
			}
		}
	}
	sort.Strings(c.frontier)
	c.frontierSlots = make([]int, len(c.frontier))
	for i, n := range c.frontier {
		c.frontierSlots[i] = c.slotOf[n]
	}

	if c.aggLit >= 0 {
		c.groupVars = groupVarsOf(r, &r.Body[c.aggLit])
		c.groupSlots = make([]int, len(c.groupVars))
		for i, n := range c.groupVars {
			c.groupSlots[i] = c.slotOf[n]
		}
	}

	c.pureAtoms = c.aggLit == -1
	for _, l := range r.Body {
		if l.Kind != LAtom && l.Kind != LNegAtom {
			c.pureAtoms = false
		}
	}
	c.ground = c.pureAtoms && len(r.Existential) == 0
	if c.ground {
		for _, h := range c.heads {
			if h.groundRow == nil {
				c.ground = false
				break
			}
		}
	}
	c.parallelOK = c.aggLit == -1 && len(r.Existential) == 0 && !c.ground
	for _, l := range r.Body {
		if (l.Kind == LAtom || l.Kind == LNegAtom) && c.headPreds[l.Atom.Pred] {
			// Self-inserts must stay visible mid-pass: a positive atom over a
			// head predicate can match rows emitted earlier in the same pass,
			// and a negated one can stop matching after such an emission.
			// Buffered parallel emission would defer both effects.
			c.parallelOK = false
		}
	}
	return c
}

// groupVarsOf lists, in deterministic order, the head variables that form
// the aggregation group of rule r: everything except the aggregate result
// variable and the existential variables.
func groupVarsOf(r *Rule, l *Literal) []string {
	skip := map[string]bool{}
	if l.Kind == LAggAssign {
		skip[l.Var] = true
	}
	for _, x := range r.Existential {
		skip[x] = true
	}
	seen := map[string]bool{}
	var out []string
	for _, h := range r.Heads {
		for _, t := range h.Args {
			if t.Kind == TVar && !skip[t.Name] && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// probeHash computes the index key for a step's bound columns under env.
// It must agree with joinIndex.keyOf for any row whose masked columns carry
// exactly these values, which holds because both fold the same (column,
// vid) sequence in ascending column order.
func probeHash(st *cStep, env []uint32) uint64 {
	h := uint64(14695981039346656037)
	for i, a := range st.args {
		if i >= 64 || st.mask&(1<<uint(i)) == 0 {
			continue
		}
		v := a.vid
		if a.slot >= 0 {
			v = env[a.slot]
		}
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// resolvePlan points every compiled step and head at the current database's
// relations and builds the join indexes the plan selected. Called at the
// start of every strata pass — sequentially, before any parallel phase, so
// index construction never races with index probing.
func (ev *evaluator) resolvePlan() {
	// Freeze the relation map: every predicate the program can touch gets
	// its relation up front, so parallel strata never mutate ev.db.rels.
	for _, r := range ev.prog.Rules {
		for _, h := range r.Heads {
			ev.db.rel(h.Pred)
		}
		for _, l := range r.Body {
			if l.Kind == LAtom || l.Kind == LNegAtom {
				ev.db.rel(l.Atom.Pred)
			}
		}
	}
	for _, c := range ev.crules {
		if c == nil {
			continue
		}
		for i := range c.steps {
			st := &c.steps[i]
			if st.kind != LAtom && st.kind != LNegAtom {
				continue
			}
			st.rel = ev.db.rels[st.pred]
			st.idx = nil
			if st.kind == LAtom && st.mask != 0 && len(st.args) > 0 {
				st.idx = st.rel.getIndex(ev.db, len(st.args), st.mask)
			}
		}
		for i := range c.heads {
			c.heads[i].rel = ev.db.rels[c.heads[i].pred]
		}
	}
}

// pid returns the dense id of a predicate name, allocating one on first
// use. Fact ids (pid<<32 | row position) key provenance and violation
// dedup; the table lives on the evaluator so ids survive applySubst.
func (ev *evaluator) pid(pred string) uint32 {
	if id, ok := ev.predIDs[pred]; ok {
		return id
	}
	id := uint32(len(ev.predNames))
	ev.predIDs[pred] = id
	ev.predNames = append(ev.predNames, pred)
	return id
}
