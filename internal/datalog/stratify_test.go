package datalog

import (
	"strings"
	"testing"
)

func TestStratifyLayersNegation(t *testing.T) {
	p := MustParse(`
		base(a).
		mid(X) :- base(X).
		top(X) :- base(X), not mid(X).
	`)
	strata, n, err := stratify(p)
	if err != nil {
		t.Fatalf("stratify: %v", err)
	}
	if n < 2 {
		t.Fatalf("numStrata = %d, want >= 2", n)
	}
	if strata["top"] <= strata["mid"] {
		t.Fatalf("top stratum %d not above mid %d", strata["top"], strata["mid"])
	}
}

func TestStratifyAggAssignLayered(t *testing.T) {
	p := MustParse(`
		total(M,S) :- val(M,I,W), S = msum(W,[I]).
		over(M) :- total(M,S), S > 10.
	`)
	strata, _, err := stratify(p)
	if err != nil {
		t.Fatalf("stratify: %v", err)
	}
	if strata["total"] <= strata["val"] {
		t.Fatal("aggregate head not above its source")
	}
	if strata["over"] < strata["total"] {
		t.Fatal("over below total")
	}
}

func TestStratifyMutualRecursionSameStratum(t *testing.T) {
	p := MustParse(`
		p(X) :- q(X).
		q(X) :- p(X).
		p(X) :- e(X).
	`)
	strata, _, err := stratify(p)
	if err != nil {
		t.Fatalf("stratify: %v", err)
	}
	if strata["p"] != strata["q"] {
		t.Fatal("mutually recursive predicates in different strata")
	}
}

func TestStratifyRejectsNegativeCycle(t *testing.T) {
	p := MustParse(`
		p(X) :- e(X), not q(X).
		q(X) :- p(X).
	`)
	if _, _, err := stratify(p); err == nil ||
		!strings.Contains(err.Error(), "not stratified") {
		t.Fatalf("err = %v", err)
	}
}

func TestStratifyAllowsAggCondRecursion(t *testing.T) {
	p := MustParse(`
		rel(X,Y) :- own(X,Y,W), W > 0.5.
		rel(X,Y) :- rel(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.
	`)
	if _, _, err := stratify(p); err != nil {
		t.Fatalf("monotonic aggregate condition wrongly rejected: %v", err)
	}
}

func TestCheckWardedAcceptsPaperPrograms(t *testing.T) {
	// Algorithm 1 (attribute categorization) and the SUDA-style
	// combination generation (Algorithm 6 rules 2-3) are warded.
	programs := []string{
		`
		cat(M,A,C) :- att(M,A), expbase(A1,C), sim(A,A1).
		expbase(A,C) :- cat(M,A,C).
		catx(M,A,C) :- att(M,A).
		`,
		`
		comb(Z,I), inc(A,Z) :- tuplei(M,I), qi(M,A).
		`,
		`
		path(X,Y) :- edge(X,Y).
		path(X,Z) :- path(X,Y), edge(Y,Z).
		`,
	}
	for i, src := range programs {
		if err := CheckWarded(MustParse(src)); err != nil {
			t.Errorf("program %d wrongly rejected: %v", i, err)
		}
	}
}

func TestCheckWardedAcceptsNullJoinInWard(t *testing.T) {
	// The dangerous variable D occurs in a single body atom (the ward).
	p := MustParse(`
		dept(E,D) :- emp(E).
		deptinfo(E,D) :- dept(E,D), emp(E).
	`)
	if err := CheckWarded(p); err != nil {
		t.Fatalf("warded program rejected: %v", err)
	}
}

func TestCheckWardedRejectsDangerousJoin(t *testing.T) {
	// D is dangerous (only ever a null) and occurs in two body atoms that
	// are joined on it: the textbook non-warded pattern.
	p := MustParse(`
		dept(E,D) :- emp(E).
		grp(D,G) :- dept(E,D).
		bad(E,D) :- dept(E,D), grp(D,G).
	`)
	err := CheckWarded(p)
	if err == nil || !strings.Contains(err.Error(), "not warded") {
		t.Fatalf("err = %v, want wardedness rejection", err)
	}
}

func TestCheckWardedIgnoresPlainDatalog(t *testing.T) {
	p := MustParse(`
		p(X,Y) :- q(X), r(Y).
		s(X) :- p(X,Y), r(Y).
	`)
	if err := CheckWarded(p); err != nil {
		t.Fatalf("plain Datalog rejected: %v", err)
	}
}
