package datalog

import (
	"strings"
	"testing"
)

func TestExplainDerivationTree(t *testing.T) {
	res := run(t, `
		edge(a,b). edge(b,c).
		path(X,Y) :- edge(X,Y).
		path(X,Z) :- path(X,Y), edge(Y,Z).
	`, nil)
	ex, err := res.Explain("path", Str("a"), Str("c"))
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	for _, want := range []string{
		`path("a","c")`,
		"path(X,Z) :- path(X,Y), edge(Y,Z).",
		`edge("b","c")`,
		"[extensional]",
	} {
		if !strings.Contains(ex, want) {
			t.Errorf("explanation missing %q:\n%s", want, ex)
		}
	}
}

func TestExplainExtensionalFact(t *testing.T) {
	edb := NewDatabase()
	edb.Add("edge", Str("a"), Str("b"))
	res := run(t, `path(X,Y) :- edge(X,Y).`, edb)
	ex, err := res.Explain("edge", Str("a"), Str("b"))
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(ex, "[extensional]") {
		t.Errorf("explanation = %q", ex)
	}
}

func TestExplainMissingFact(t *testing.T) {
	res := run(t, `p(a).`, nil)
	if _, err := res.Explain("p", Str("zzz")); err == nil {
		t.Fatal("Explain of absent fact did not error")
	}
}

func TestExplainCyclicDerivationTerminates(t *testing.T) {
	res := run(t, `
		e(a,b). e(b,a).
		p(X,Y) :- e(X,Y).
		p(X,Z) :- p(X,Y), p(Y,Z).
	`, nil)
	ex, err := res.Explain("p", Str("a"), Str("a"))
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if len(ex) > 100_000 {
		t.Fatalf("explanation suspiciously large (%d bytes)", len(ex))
	}
}

func TestProvenanceRule(t *testing.T) {
	res := run(t, `
		edge(a,b).
		path(X,Y) :- edge(X,Y).
	`, nil)
	ri, ok := res.ProvenanceRule("path", Str("a"), Str("b"))
	if !ok || ri != 1 {
		t.Fatalf("ProvenanceRule(path) = %d, %v; want 1, true", ri, ok)
	}
	ri, ok = res.ProvenanceRule("edge", Str("a"), Str("b"))
	if !ok || ri != -1 {
		t.Fatalf("ProvenanceRule(edge) = %d, %v; want -1, true", ri, ok)
	}
	if _, ok := res.ProvenanceRule("path", Str("x"), Str("y")); ok {
		t.Fatal("ProvenanceRule of absent fact reported ok")
	}
}

func TestQueryPatterns(t *testing.T) {
	res := run(t, `
		edge(a,b). edge(b,c). edge(a,c). loop(a,a).
		path(X,Y) :- edge(X,Y).
	`, nil)
	// Bound first argument.
	got := res.Query("path", C(Str("a")), V("Y"))
	if len(got) != 2 {
		t.Fatalf("path(a, Y) = %v", got)
	}
	if v, ok := got[0].Get("Y"); !ok || v.StrVal() != "b" {
		t.Fatalf("first binding = %v", got[0])
	}
	// All-variable pattern.
	if got := res.Query("path", V("X"), V("Y")); len(got) != 3 {
		t.Fatalf("path(X,Y) has %d bindings", len(got))
	}
	// Repeated variable: only the self-loop matches.
	if got := res.Query("loop", V("X"), V("X")); len(got) != 1 {
		t.Fatalf("loop(X,X) = %v", got)
	}
	// Ground query.
	if got := res.Query("path", C(Str("a")), C(Str("b"))); len(got) != 1 || len(got[0].Vars) != 0 {
		t.Fatalf("ground query = %v", got)
	}
	// No match, unknown variable lookup.
	if got := res.Query("path", C(Str("zz")), V("Y")); len(got) != 0 {
		t.Fatalf("unexpected bindings %v", got)
	}
	if _, ok := (Binding{}).Get("nope"); ok {
		t.Fatal("empty binding resolved a variable")
	}
}
