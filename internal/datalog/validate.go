package datalog

import "fmt"

// Validate is the engine's pre-flight check for a parsed program: predicate
// arity consistency, stratifiability, and wardedness — the structural
// properties the paper's safety argument rests on. It reports the first
// problem found as a plain error, which makes it cheap to call on every
// uploaded program before evaluation; callers that want the full,
// position-tagged diagnostic list use internal/datalog/lint instead.
//
// Validate is opt-in: Run/RunContext do not call it, so programmatically
// built programs (and deliberately partial test programs) evaluate
// unchanged. Servers accepting untrusted program text should call it (or
// the lint preflight) before spending any evaluation budget.
func Validate(p *Program) error {
	if err := checkArities(p); err != nil {
		return err
	}
	if _, _, err := stratify(p); err != nil {
		return err
	}
	return CheckWarded(p)
}

// checkArities reports the first predicate used with two different arities.
// The evaluator never complains about this: a mismatched atom simply never
// unifies, so the rule silently never fires — one of the hardest Datalog
// typos to spot at runtime.
func checkArities(p *Program) error {
	type use struct {
		arity int
		line  int
	}
	first := make(map[string]use)
	check := func(a *Atom, line int) error {
		if a == nil {
			return nil
		}
		if a.Line != 0 {
			line = a.Line
		}
		if prev, ok := first[a.Pred]; ok {
			if prev.arity != len(a.Args) {
				return fmt.Errorf(
					"datalog: line %d: predicate %s used with %d arguments, but with %d at line %d",
					line, a.Pred, len(a.Args), prev.arity, prev.line)
			}
			return nil
		}
		first[a.Pred] = use{arity: len(a.Args), line: line}
		return nil
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		for j := range r.Heads {
			if err := check(&r.Heads[j], r.Line); err != nil {
				return err
			}
		}
		for j := range r.Body {
			if err := check(r.Body[j].Atom, r.Line); err != nil {
				return err
			}
		}
	}
	return nil
}
